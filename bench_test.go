package sensornet_test

// One benchmark per table/figure of the paper's evaluation. Each bench
// regenerates its figure end-to-end on a reduced ("quick") grid so that
// `go test -bench=.` doubles as a smoke reproduction of the whole
// evaluation; run cmd/experiments for the full paper grids.

import (
	"context"
	"fmt"
	"testing"

	"sensornet/internal/buckets"
	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/optimize"
	"sensornet/internal/sim"
)

func benchPresetAnalytic() experiments.Preset {
	pre := experiments.QuickAnalytic()
	pre.Rhos = []float64{20, 80, 140}
	pre.Grid = []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1}
	return pre
}

func benchPresetSim() experiments.Preset {
	pre := experiments.QuickSim()
	pre.Rhos = []float64{20, 80}
	pre.Grid = []float64{0.05, 0.2, 0.6, 1}
	pre.Runs = 3
	return pre
}

func analyticSurface(b *testing.B) *experiments.Surface {
	b.Helper()
	s, err := experiments.AnalyticSurface(benchPresetAnalytic())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func simSurface(b *testing.B) *experiments.Surface {
	b.Helper()
	s, err := experiments.SimSurface(benchPresetSim())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFig4Reachability regenerates Fig. 4: analytic reachability
// of PB_CAM within 5 phases and the optimal-probability curve.
func BenchmarkFig4Reachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := analyticSurface(b)
		f := experiments.Fig4(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig5Latency regenerates Fig. 5: analytic latency to the 72%
// reachability target.
func BenchmarkFig5Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := analyticSurface(b)
		f := experiments.Fig5(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig6Energy regenerates Fig. 6: analytic broadcast count to
// the 72% reachability target.
func BenchmarkFig6Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := analyticSurface(b)
		f := experiments.Fig6(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig7Budget regenerates Fig. 7: analytic reachability under a
// 35-broadcast budget.
func BenchmarkFig7Budget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := analyticSurface(b)
		f := experiments.Fig7(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig8SimReachability regenerates Fig. 8: simulated
// reachability of PB_CAM in 5 phases.
func BenchmarkFig8SimReachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := simSurface(b)
		f := experiments.Fig8(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig9SimLatency regenerates Fig. 9: simulated latency to the
// 63% reachability target.
func BenchmarkFig9SimLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := simSurface(b)
		f := experiments.Fig9(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig10SimEnergy regenerates Fig. 10: simulated broadcast
// count to the 63% reachability target.
func BenchmarkFig10SimEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := simSurface(b)
		f := experiments.Fig10(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig11SimBudget regenerates Fig. 11: simulated reachability
// under an 80-broadcast budget.
func BenchmarkFig11SimBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := simSurface(b)
		f := experiments.Fig11(s)
		if len(f.Series["optimalP"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig12SuccessRate regenerates Fig. 12: the flooding success
// rate vs optimal probability correlation.
func BenchmarkFig12SuccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := analyticSurface(b)
		f, err := experiments.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series["ratio"]) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkCFMBaseline regenerates the §4 CFM flooding closed forms
// next to the CAM analysis.
func BenchmarkCFMBaseline(b *testing.B) {
	pre := benchPresetAnalytic()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CFMBaseline(pre); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCarrierSenseAblation regenerates the Appendix A collision
// scope ablation.
func BenchmarkCarrierSenseAblation(b *testing.B) {
	pre := benchPresetAnalytic()
	pre.Rhos = []float64{80}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CarrierSenseAblation(pre); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMuMode compares the real-valued μ extension modes on
// one analytic sweep (the DESIGN.md "μ at non-integer K" decision).
func BenchmarkAblationMuMode(b *testing.B) {
	for _, mode := range []buckets.KMode{buckets.KLinear, buckets.KPoisson, buckets.KRound} {
		b.Run(mode.String(), func(b *testing.B) {
			pre := benchPresetAnalytic()
			for i := 0; i < b.N; i++ {
				for _, rho := range pre.Rhos {
					cfg := pre.AnalyticConfig(rho)
					cfg.KMode = mode
					if _, err := optimize.SweepAnalytic(cfg, pre.Grid, pre.Constraints); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationAsync compares the slot-aligned and asynchronous
// simulation engines at one operating point.
func BenchmarkAblationAsync(b *testing.B) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			pre := benchPresetSim()
			pre.Async = async
			for i := 0; i < b.N; i++ {
				cfg := pre.SimConfig(80)
				cfg.Seed = int64(i)
				if _, err := optimize.SweepSim(cfg, []float64{0.2}, pre.Constraints, 2, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorDenseFlooding is the raw simulator cost at the
// paper's largest configuration (rho=140, N=3500, flooding).
func BenchmarkSimulatorDenseFlooding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{P: 5, S: 3, Rho: 140, Seed: int64(i)}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostFunctions regenerates the empirical CFM cost-function
// table (the paper's §6 proposal realised by internal/reliable).
func BenchmarkCostFunctions(b *testing.B) {
	pre := benchPresetAnalytic()
	pre.Rhos = []float64{20, 60}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CostFunctions(pre, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPercolation regenerates the grid+CFM percolation transition
// (the related-work cross-check with p_c = 0.593).
func BenchmarkPercolation(b *testing.B) {
	grid := []float64{0.4, 0.55, 0.6, 0.65, 0.8}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Percolation(12, grid, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollisionProfile regenerates the collision-rate explanation
// of the reachability bell curves.
func BenchmarkCollisionProfile(b *testing.B) {
	pre := benchPresetSim()
	pre.Grid = []float64{0.1, 1}
	pre.Runs = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CollisionProfile(pre, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotSweep regenerates the backoff-window ablation.
func BenchmarkSlotSweep(b *testing.B) {
	grid := []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	c := optimize.Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SlotSweep(80, []int{1, 3, 8}, grid, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldScaling regenerates the O(P·r) latency scaling study.
func BenchmarkFieldScaling(b *testing.B) {
	c := optimize.Constraints{Latency: 5, Reach: 0.5, Budget: 35}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FieldScaling(80, []int{3, 6, 9}, 0.15, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemeComparison regenerates the all-schemes table.
func BenchmarkSchemeComparison(b *testing.B) {
	pre := benchPresetSim()
	pre.Runs = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SchemeComparison(pre, []float64{40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShootoutCampaign regenerates the cross-scheme shootout
// (flooding, tuned PB, counter and distance suppression) across the
// CFM, CAM and SINR channel columns at one density.
func BenchmarkShootoutCampaign(b *testing.B) {
	pre := benchPresetSim()
	pre.Runs = 2
	for i := 0; i < b.N; i++ {
		f, err := experiments.Shootout(pre, []float64{40})
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Tables) == 0 {
			b.Fatal("empty shootout figure")
		}
	}
}

// BenchmarkHeterogeneity regenerates the hotspot-field comparison.
func BenchmarkHeterogeneity(b *testing.B) {
	pre := benchPresetSim()
	pre.Runs = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Heterogeneity(pre, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefinedCFM regenerates the density-priced CFM table.
func BenchmarkRefinedCFM(b *testing.B) {
	pre := benchPresetAnalytic()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RefinedCFM(pre, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCampaign measures the engine-backed simulated
// campaign (the Figs. 8-11 surfaces plus the analytic figures) at
// several worker counts: workers=1 is the fully sequential baseline,
// and the higher counts track the engine's wall-clock speedup in the
// perf trajectory.
func BenchmarkEngineCampaign(b *testing.B) {
	pa := benchPresetAnalytic()
	ps := benchPresetSim()
	ps.Runs = 4
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := experiments.Campaign{
					Analytic: pa, Sim: ps,
					Engine: engine.New(engine.Config{Workers: workers}),
				}
				figs, err := c.RunContext(context.Background(), nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(figs) != 10 {
					b.Fatalf("campaign produced %d figures", len(figs))
				}
			}
		})
	}
}

// BenchmarkEngineCachedCampaign measures the same campaign with a warm
// result cache: the cost of a no-change rerun, i.e. the engine's cache
// lookup plus figure assembly.
func BenchmarkEngineCachedCampaign(b *testing.B) {
	pa := benchPresetAnalytic()
	ps := benchPresetSim()
	eng := engine.New(engine.Config{Cache: engine.NewCache("", experiments.CacheSalt)})
	c := experiments.Campaign{Analytic: pa, Sim: ps, Engine: eng}
	if _, err := c.RunContext(context.Background(), nil); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunContext(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOverhead measures the engine's per-job scheduling cost
// with no-op jobs: the fixed tax every sweep pays per grid row.
func BenchmarkEngineOverhead(b *testing.B) {
	eng := engine.New(engine.Config{Workers: 4})
	jobs := make([]engine.Job, 64)
	for i := range jobs {
		jobs[i] = engine.JobFunc{JobName: "noop",
			Fn: func(context.Context) (any, error) { return nil, nil }}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJointDesign regenerates the joint (p, s) optimisation.
func BenchmarkJointDesign(b *testing.B) {
	pre := benchPresetSim()
	pre.Runs = 2
	pre.Grid = []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.JointDesign(pre, 100, 15, []int{1, 3, 6}); err != nil {
			b.Fatal(err)
		}
	}
}
