// Command analyze evaluates the paper's analytical framework for
// PB_CAM: a single (density, probability) run, or a probability sweep
// with the optimal operating points for all four §4.1 metrics.
//
// Examples:
//
//	analyze -rho 100 -p 0.1            # one analytic run
//	analyze -rho 100 -sweep            # full probability sweep + optima
//	analyze -rho 100 -sweep -carrier   # Appendix A collision model
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sensornet/internal/core"
	"sensornet/internal/export"
	"sensornet/internal/mathx"
)

func main() {
	var (
		p       = flag.Int("P", 5, "field radius in transmission radii (rings)")
		s       = flag.Int("S", 3, "slots per time phase")
		rho     = flag.Float64("rho", 60, "density: average neighbours per node")
		prob    = flag.Float64("p", 0.1, "broadcast probability")
		sweep   = flag.Bool("sweep", false, "sweep p over the paper grid and report optima")
		carrier = flag.Bool("carrier", false, "use the Appendix A carrier-sensing collision model")
		latency = flag.Float64("latency", 5, "latency constraint in phases (metric 1)")
		reach   = flag.Float64("reach", 0.72, "reachability constraint (metrics 3 and 4)")
		budget  = flag.Float64("budget", 35, "broadcast budget (metric 5)")
		step    = flag.Float64("step", 0.01, "sweep grid step")
		csvPath = flag.String("csv", "", "write the run timeline as CSV to this file")
	)
	flag.Parse()

	m := core.NetworkModel{P: *p, S: *s, Rho: *rho, R: 1, Comm: core.CAM}
	if *carrier {
		m.Comm = core.CAMCarrierSense
	}
	c := core.Constraints{Latency: *latency, Reach: *reach, Budget: *budget}

	if *sweep {
		if err := runSweep(m, c, *step); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}
	if err := runSingle(m, c, *prob, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func runSingle(m core.NetworkModel, c core.Constraints, p float64, csvPath string) error {
	tl, err := m.Analyze(p)
	if err != nil {
		return err
	}
	if csvPath != "" {
		fh, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		err = export.TimelineCSV(fh, tl)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("model: %v, P=%d, s=%d, rho=%g (N=%.0f), p=%g\n\n",
		m.Comm, m.P, m.S, m.Rho, m.N(), p)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\treachability\tbroadcasts")
	for i := range tl.Phases {
		fmt.Fprintf(tw, "%.0f\t%.4f\t%.1f\n", tl.Phases[i], tl.CumReach[i], tl.CumBroadcasts[i])
	}
	tw.Flush()
	fmt.Println()
	fmt.Printf("reachability @ %g phases:    %.4f\n", c.Latency, tl.ReachabilityAtPhase(c.Latency))
	if l, ok := tl.LatencyToReach(c.Reach); ok {
		fmt.Printf("latency to %.0f%% reach:       %.2f phases\n", c.Reach*100, l)
	} else {
		fmt.Printf("latency to %.0f%% reach:       unreachable\n", c.Reach*100)
	}
	if b, ok := tl.BroadcastsToReach(c.Reach); ok {
		fmt.Printf("broadcasts to %.0f%% reach:    %.1f\n", c.Reach*100, b)
	} else {
		fmt.Printf("broadcasts to %.0f%% reach:    unreachable\n", c.Reach*100)
	}
	fmt.Printf("reachability @ %g broadcasts: %.4f\n", c.Budget, tl.ReachabilityAtBudget(c.Budget))
	return nil
}

func runSweep(m core.NetworkModel, c core.Constraints, step float64) error {
	grid := mathx.Range(step, 1, step)
	pts, err := m.Sweep(c, grid)
	if err != nil {
		return err
	}
	fmt.Printf("model: %v, P=%d, s=%d, rho=%g (N=%.0f)\n\n", m.Comm, m.P, m.S, m.Rho, m.N())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "p\treach@%gph\tlatency@%.0f%%\tbroadcasts@%.0f%%\treach@%gbc\n",
		c.Latency, c.Reach*100, c.Reach*100, c.Budget)
	for _, pt := range pts {
		fmt.Fprintf(tw, "%.2f\t%s\t%s\t%s\t%s\n", pt.P,
			fm(pt.ReachAtL), fm(pt.Latency), fm(pt.Broadcasts), fm(pt.ReachAtBudget))
	}
	tw.Flush()
	fmt.Println()
	for _, obj := range []core.Objective{core.MaxReachability, core.MinLatency,
		core.MinEnergy, core.MaxReachabilityAtBudget} {
		o, err := m.OptimalProbability(obj, c, grid)
		if err != nil {
			fmt.Printf("%-28v infeasible\n", obj)
			continue
		}
		fmt.Printf("%-28v p*=%.2f value=%.3f\n", obj, o.P, o.Value)
	}
	return nil
}

func fm(v float64) string {
	if !mathx.IsFinite(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
