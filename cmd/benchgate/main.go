// Benchgate is the perf regression gate: it compares a fresh bench
// snapshot (scripts/bench.sh output) against a committed baseline
// BENCH_<n>.json and fails if any tracked benchmark disappeared or any
// metric regressed past its tolerance ratio. scripts/check.sh runs it
// against the latest committed snapshot:
//
//	go run ./cmd/benchgate -baseline BENCH_7.json -current /tmp/bench.json
//
// Tolerances default to internal/bench.DefaultTolerance (allocs/op
// tight, bytes/op moderate, ns/op loose — smoke runs use -benchtime=1x
// where timing is mostly warmup noise) and can be overridden per
// metric for ad-hoc comparisons.
package main

import (
	"flag"
	"fmt"
	"os"

	"sensornet/internal/bench"
)

func main() {
	tol := bench.DefaultTolerance
	baseline := flag.String("baseline", "", "committed BENCH_<n>.json snapshot to gate against")
	current := flag.String("current", "", "fresh snapshot from scripts/bench.sh")
	flag.Float64Var(&tol.Ns, "ns", tol.Ns, "max allowed ns/op ratio vs baseline")
	flag.Float64Var(&tol.Bytes, "bytes", tol.Bytes, "max allowed B/op ratio vs baseline")
	flag.Float64Var(&tol.Allocs, "allocs", tol.Allocs, "max allowed allocs/op ratio vs baseline")
	flag.Float64Var(&tol.P50, "p50", tol.P50, "max allowed loadgen p50 latency ratio vs baseline")
	flag.Float64Var(&tol.P99, "p99", tol.P99, "max allowed loadgen p99 latency ratio vs baseline")
	flag.Float64Var(&tol.ErrorRate, "error-rate", tol.ErrorRate, "absolute error-rate allowance over the baseline")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline BENCH_n.json -current fresh.json [-ns r] [-bytes r] [-allocs r] [-p50 r] [-p99 r] [-error-rate a]")
		os.Exit(2)
	}

	base, err := bench.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := bench.Load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	violations := bench.Compare(base, cur, tol)
	if len(violations) == 0 {
		fmt.Printf("benchgate: %d benchmark(s) within tolerance of %s\n", len(base.Benchmarks), *baseline)
		return
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "benchgate: %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s\n", len(violations), *baseline)
	os.Exit(1)
}
