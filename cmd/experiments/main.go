// Command experiments regenerates the paper's evaluation: every figure
// of §4.2 (analytic) and §5 (simulated), the Fig. 12 success-rate
// correlation, the CFM baseline, and the carrier-sensing ablation.
//
// Examples:
//
//	experiments -figure all -quick          # fast coarse-grid campaign
//	experiments -figure fig4                # one figure, paper grids
//	experiments -figure all -out report.txt # full campaign to a file
//	experiments -figure all -workers=8      # saturate 8 cores
//	experiments -figure all -cache-dir .cache/experiments  # reuse results
//	experiments -figure degradation -quick -deg-rho 40 \
//	    -crash-rates 0,0.2,0.4 -loss-rates 0,0.3    # fault tolerance study
//
// Sharded sweeps split a figure's cacheable job set across processes
// (or hosts sharing the cache directory) and merge from the cache:
//
//	experiments -figure fig8 -cache-dir D -shard 0/2   # process 1
//	experiments -figure fig8 -cache-dir D -shard 1/2   # process 2
//	experiments -figure fig8 -cache-dir D -merge 2     # assemble, never recompute
//	experiments -cache-dir D -serve :8080              # tuning queries from cache
//
// Distributed sweeps need no shared filesystem: a coordinator leases
// jobs over HTTP, workers on any host execute them and post results
// back, and the coordinator's cache directory ends up byte-identical
// to a local run — a killed worker's leases fail over to the rest:
//
//	experiments -figure fig8 -cache-dir D -coordinator :9090   # lease server
//	experiments -figure fig8 -worker http://host:9090          # per worker host
//	experiments -figure fig8 -cache-dir D -merge 1             # assemble
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sensornet/internal/chaos"
	"sensornet/internal/dist"
	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/export"
	"sensornet/internal/serve"
)

func main() {
	var (
		figure = flag.String("figure", "all",
			"fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig12sim|cfm|carrier|costfn|percolation|collisions|slots|field|schemes|hetero|refinedcfm|joint|mumode|degradation|shootout|all")
		quick    = flag.Bool("quick", false, "coarse grids and few runs (fast)")
		skipSim  = flag.Bool("skip-sim", false, "omit the simulated figures")
		out      = flag.String("out", "", "write the report to a file instead of stdout")
		csvDir   = flag.String("csv-dir", "", "additionally dump figure series as CSV files into this directory")
		runs     = flag.Int("runs", 0, "override simulation runs per grid point")
		async    = flag.Bool("async", false, "simulate with unaligned phase grids")
		workers  = flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "per-job timeout (0 = none)")
		cacheDir = flag.String("cache-dir", "", "persist surface results here and reuse them across runs")
		stats    = flag.Bool("stats", false, "print engine telemetry to stderr when done")

		shard     = flag.String("shard", "", "compute only shard i of M (\"i/M\") of the figure's cacheable jobs into -cache-dir; no figure is rendered")
		merge     = flag.Int("merge", 0, "assemble the figure strictly from -cache-dir, assuming this many shards; missing shards are reported, never recomputed")
		jsonOut   = flag.Bool("json", false, "with -merge: print missing shards/jobs as JSON on stdout when the merge is incomplete")
		serveAddr = flag.String("serve", "", "serve tuning queries from cached surfaces on this address (e.g. :8080); requires -cache-dir")

		serveBudget   = flag.Float64("serve-budget", 0, "with -serve: admission-controlled write-through budget in jobs/sec for filling cache misses (0 = strict never-recompute)")
		serveBurst    = flag.Int("serve-burst", 0, "with -serve-budget: token-bucket burst capacity (0 = ceil of the rate)")
		serveInflight = flag.Int("serve-inflight", 0, "with -serve-budget: max concurrently admitted fill jobs (0 = unbounded)")

		coordAddr = flag.String("coordinator", "", "serve the figure's job queue to remote workers on this address (e.g. :9090); results land in -cache-dir; exits when the campaign completes")
		workerURL = flag.String("worker", "", "pull job leases from the coordinator at this URL and execute them locally; run with the same -figure/-quick flags as the coordinator")
		workerID  = flag.String("worker-id", "", "worker identity reported to the coordinator (default host:pid)")
		leaseTTL  = flag.Duration("lease-ttl", 30*time.Second, "coordinator lease time-to-live; an un-heartbeated lease fails over after this long")
		distShard = flag.Int("dist-shards", 2, "coordinator queue partitions (nominally the planned worker count)")
		failAfter = flag.Int("worker-fail-after", 0, "fault injection: worker exits (code 7) holding a lease after completing this many jobs")
		addrFile  = flag.String("dist-addr-file", "", "coordinator writes its actual listen address here once bound (for :0 listeners in scripts)")

		chaosProfile = flag.String("chaos-profile", "off", "fault injection: wrap the worker's HTTP transport in seed-deterministic chaos (off|mild|hostile); requires -worker")
		chaosSeed    = flag.Int64("chaos-seed", 0, "root seed for -chaos-profile fault streams; the same seed and profile replay the identical fault schedule")

		degRho       = flag.Float64("deg-rho", 60, "density for the degradation study")
		crashRates   = flag.String("crash-rates", "", "comma-separated crash rates for -figure degradation (default 0,0.1,0.2,0.4)")
		lossRates    = flag.String("loss-rates", "", "comma-separated link-loss rates for -figure degradation (default 0,0.1,0.3)")
		shootRhoSpec = flag.String("shoot-rhos", "", "comma-separated densities for -figure shootout (default 40,100)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for live profiling; off by default")
	)
	flag.Parse()

	// stopProfiles flushes any requested pprof profiles; called on every
	// exit path (os.Exit skips defers).
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	stopPprof, err := startPprofServer(*pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -pprof:", err)
		os.Exit(1)
	}
	defer stopPprof()

	deg := degParams{rho: *degRho}
	if deg.crash, err = parseRates(*crashRates); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -crash-rates:", err)
		os.Exit(2)
	}
	if deg.loss, err = parseRates(*lossRates); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -loss-rates:", err)
		os.Exit(2)
	}
	shootRhos, err := parseRhos(*shootRhoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -shoot-rhos:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	pa, ps := experiments.PaperAnalytic(), experiments.PaperSim()
	if *quick {
		pa, ps = experiments.QuickAnalytic(), experiments.QuickSim()
	}
	if *runs > 0 {
		ps.Runs = *runs
	}
	ps.Async = *async

	var spec engine.ShardSpec
	if *shard != "" {
		if spec, err = engine.ParseShardSpec(*shard); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -shard:", err)
			os.Exit(2)
		}
	}
	cacheOnly := *merge > 0 || *serveAddr != ""
	if (*shard != "" || cacheOnly || *coordAddr != "") && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -shard/-merge/-serve/-coordinator need -cache-dir (the shared result store)")
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*shard != "", *merge > 0, *serveAddr != "", *coordAddr != "", *workerURL != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "experiments: -shard/-merge/-serve/-coordinator/-worker are exclusive: pick one")
		os.Exit(2)
	}
	if *failAfter > 0 && *workerURL == "" {
		fmt.Fprintln(os.Stderr, "experiments: -worker-fail-after only applies to -worker")
		os.Exit(2)
	}
	if (*serveBudget > 0 || *serveBurst > 0 || *serveInflight > 0) && *serveAddr == "" {
		fmt.Fprintln(os.Stderr, "experiments: -serve-budget/-serve-burst/-serve-inflight only apply to -serve")
		os.Exit(2)
	}
	chaosProf, err := chaos.ParseProfile(*chaosProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -chaos-profile:", err)
		os.Exit(2)
	}
	if chaosProf != nil && *workerURL == "" {
		fmt.Fprintln(os.Stderr, "experiments: -chaos-profile only applies to -worker (the coordinator must stay truthful; proxy it for coordinator-side chaos)")
		os.Exit(2)
	}

	var cache *engine.Cache
	if *cacheDir != "" {
		cache = engine.NewCache(*cacheDir, experiments.CacheSalt)
	} else if *workerURL != "" {
		// A worker always gets at least an in-memory cache: a re-leased
		// job it already computed (its lease expired, then failed back
		// over to it) is answered from cache instead of re-executed.
		cache = engine.NewCache("", experiments.CacheSalt)
	}
	eng := engine.New(engine.Config{
		Workers:   *workers,
		Timeout:   *timeout,
		Cache:     cache,
		Shard:     spec,
		CacheOnly: cacheOnly,
		// A zero -serve-budget leaves Budget nil: the strict
		// never-recompute serving contract stays the explicit default.
		Budget: engine.NewBudget(*serveBudget, *serveBurst, *serveInflight),
	})

	// Ctrl-C cancels outstanding jobs and exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch {
	case *coordAddr != "":
		err = runCoordinator(ctx, *coordAddr, *addrFile, cache, distConfig{
			figure: *figure, pa: pa, ps: ps, deg: deg, shootRhos: shootRhos, skipSim: *skipSim,
			shards: *distShard, ttl: *leaseTTL, workers: eng.Workers(),
		}, w)
	case *workerURL != "":
		err = runWorker(ctx, *workerURL, *workerID, eng, distConfig{
			figure: *figure, pa: pa, ps: ps, deg: deg, shootRhos: shootRhos, skipSim: *skipSim,
			failAfter: *failAfter, chaosProf: chaosProf, chaosSeed: *chaosSeed,
		}, w)
	case *serveAddr != "":
		err = runServe(ctx, *serveAddr, *addrFile, eng, pa, ps, shootRhos)
	case *shard != "":
		err = runShard(ctx, eng, *figure, pa, ps, deg, shootRhos, *skipSim, w)
	default:
		err = run(ctx, eng, *figure, pa, ps, deg, shootRhos, *skipSim, w, *csvDir)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, eng.Stats())
		if cache != nil {
			cs := cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d stores\n",
				cs.Hits, cs.Misses, cs.Stores)
		}
	}
	if err != nil {
		stopProfiles()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		if errors.Is(err, dist.ErrFailInjected) {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(7)
		}
		var missing *engine.MissingError
		if errors.As(err, &missing) {
			if *jsonOut {
				if jerr := printMissingJSON(os.Stdout, missing, *merge); jerr != nil {
					fmt.Fprintln(os.Stderr, "experiments: -json:", jerr)
				}
			}
			fmt.Fprintf(os.Stderr, "experiments: merge incomplete: %d job(s) not in the cache", len(missing.Jobs))
			if *merge > 1 {
				fmt.Fprintf(os.Stderr, "; run (or re-run) shard(s) %v of %d", missing.MissingShards(*merge), *merge)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// printMissingJSON renders an incomplete merge machine-readably: the
// shard indices still owed to the cache plus every missing job, so
// scripts can re-dispatch exactly the remaining work.
func printMissingJSON(w io.Writer, missing *engine.MissingError, total int) error {
	if total < 1 {
		total = 1
	}
	type jobJSON struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
		Shard       int    `json:"shard"`
	}
	out := struct {
		Shards        int       `json:"shards"`
		MissingShards []int     `json:"missingShards"`
		Jobs          []jobJSON `json:"jobs"`
	}{Shards: total, MissingShards: missing.MissingShards(total)}
	for _, j := range missing.Jobs {
		out.Jobs = append(out.Jobs, jobJSON{
			Name: j.Name, Fingerprint: j.Fingerprint,
			Shard: engine.ShardOf(j.Fingerprint, total),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runShard computes this process's shard of the figure's jobs into the
// shared cache and reports what it did; rendering is the merge step's
// business.
func runShard(ctx context.Context, eng *engine.Engine, figure string,
	pa, ps experiments.Preset, deg degParams, shootRhos []float64, skipSim bool, w io.Writer) error {
	jobs, err := experiments.FigureJobs(figure, pa, ps, deg.rho, deg.crash, deg.loss, shootRhos, skipSim, eng.Workers())
	if err != nil {
		return err
	}
	rep, err := experiments.RunShard(ctx, eng, jobs)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, rep)
	return err
}

// distConfig carries the flags both distributed roles need to rebuild
// the same job set: the figure, presets, and degradation knobs pin the
// fingerprints, which are the protocol's only job identity.
type distConfig struct {
	figure    string
	pa, ps    experiments.Preset
	deg       degParams
	shootRhos []float64
	skipSim   bool
	shards    int
	ttl       time.Duration
	workers   int
	failAfter int
	chaosProf *chaos.Profile
	chaosSeed int64
}

func (d distConfig) jobs() ([]engine.Job, error) {
	return experiments.FigureJobs(d.figure, d.pa, d.ps, d.deg.rho, d.deg.crash, d.deg.loss, d.shootRhos, d.skipSim, d.workers)
}

// runCoordinator serves the figure's job queue until every job is
// terminal (or the context is cancelled), shutting the listener down
// gracefully, then reports the final campaign stats. Jobs retired after
// repeated worker failures make the run fail.
func runCoordinator(ctx context.Context, addr, addrFile string, cache *engine.Cache,
	cfg distConfig, w io.Writer) error {
	jobs, err := cfg.jobs()
	if err != nil {
		return err
	}
	coord, err := dist.NewCoordinator(dist.Config{
		Sink:     cache,
		Shards:   cfg.shards,
		LeaseTTL: cfg.ttl,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		},
	}, jobs)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{
		Handler:           coord,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "experiments: coordinating %d job(s) on %s (%d shard queues, %s lease TTL)\n",
		len(jobs), ln.Addr(), cfg.shards, cfg.ttl)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		// Graceful drain: stop granting leases, let in-flight heartbeats
		// and results land, then shut down. Bounded by the lease TTL —
		// past that every outstanding lease has expired and the drain
		// resolves by itself.
		coord.Drain()
		fmt.Fprintln(os.Stderr, "experiments: interrupt — draining (in-flight leases finish; Ctrl-C again to force)")
		drainTimer := time.NewTimer(cfg.ttl + 5*time.Second)
		forceCtx, forceStop := signal.NotifyContext(context.Background(), os.Interrupt)
		select {
		case <-coord.Drained():
			// Same beat as the Done path below: a worker between its
			// result post and its next lease poll must observe Draining,
			// not a refused socket.
			select {
			case <-time.After(time.Second):
			case <-forceCtx.Done():
			}
		case <-drainTimer.C:
		case <-forceCtx.Done():
		}
		drainTimer.Stop()
		forceStop()
	case <-coord.Done():
		// Give idle pollers a beat to collect their Done response before
		// the listener refuses new connections.
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}

	s := coord.Stats()
	fmt.Fprintf(w, "coordinator: %d/%d jobs completed (%d cached at start), %d failed, %d steals, %d leases expired, %d workers, %d ingested, %d duplicates, %d backpressured, %d dup-ingests\n",
		s.Completed, s.Jobs, s.CachedAtStart, s.Failed, s.Steals, s.Expired, len(s.Workers),
		s.Ingested, s.Duplicates, s.Backpressured, cache.Stats().IngestDupes)
	if ctx.Err() != nil {
		return context.Canceled
	}
	if failed := coord.FailedJobs(); len(failed) > 0 {
		names := make([]string, len(failed))
		for i, j := range failed {
			names[i] = j.Name
		}
		return fmt.Errorf("campaign incomplete: %d job(s) retired after repeated worker failures: %s",
			len(failed), strings.Join(names, ", "))
	}
	return nil
}

// runWorker executes leases from the coordinator until the campaign
// completes. The -worker-fail-after fault surfaces as
// dist.ErrFailInjected, which main maps to exit code 7.
func runWorker(ctx context.Context, url, id string, eng *engine.Engine,
	cfg distConfig, w io.Writer) error {
	jobs, err := cfg.jobs()
	if err != nil {
		return err
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var client *http.Client
	if cfg.chaosProf != nil {
		// Seed-deterministic hostile transport between this worker and
		// the coordinator: same -chaos-seed + -chaos-profile ⇒ the
		// identical fault schedule, so a flaky-looking run replays.
		client = &http.Client{
			Timeout:   30 * time.Second,
			Transport: chaos.Wrap(nil, cfg.chaosProf, cfg.chaosSeed),
		}
		fmt.Fprintf(os.Stderr, "experiments: chaos transport %q enabled (seed %d)\n",
			cfg.chaosProf.Name, cfg.chaosSeed)
	}
	worker, err := dist.NewWorker(dist.WorkerConfig{
		ID:        id,
		BaseURL:   url,
		Engine:    eng,
		Jobs:      jobs,
		Client:    client,
		FailAfter: cfg.failAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	rep, err := worker.Run(ctx)
	if rep != nil {
		fmt.Fprintln(w, rep)
	}
	return err
}

// runServe blocks serving tuning queries until the context is
// cancelled (Ctrl-C), then shuts the listener down gracefully. The
// surface snapshots are warmed eagerly, so a server over a populated
// cache pays its cache reads before the first request; cold surfaces
// are reported and left to retry per request (shards may publish
// later). addrFile, when set, receives the bound listen address (for
// :0 listeners in scripts).
func runServe(ctx context.Context, addr, addrFile string, eng *engine.Engine,
	pa, ps experiments.Preset, shootRhos []float64) error {
	srv, err := serve.NewCtx(ctx, eng, pa, ps, serve.WithShootoutRhos(shootRhos))
	if err != nil {
		return err
	}
	if err := srv.Warm(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: serve warm-up incomplete (cold surfaces retry per request):", err)
	}
	if b := eng.Budget(); b != nil {
		fmt.Fprintf(os.Stderr, "experiments: write-through %s\n", b.Stats())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       5 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "experiments: serving tuning queries on %s\n", ln.Addr())
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutCtx)
	}
}

// startPprofServer optionally serves net/http/pprof on its own mux and
// listener — never the serving or coordinator mux, so enabling
// profiling cannot expose debug handlers on a public port by accident.
// Returns the shutdown function (a no-op when addr is empty).
func startPprofServer(addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// No WriteTimeout: profile captures stream for ?seconds=N.
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "experiments: -pprof:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "experiments: pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutCtx)
	}, nil
}

// startProfiles starts the requested pprof captures and returns the
// function that flushes them, safe to call more than once. Profiling is
// entirely off when both paths are empty.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			}
		}
	}
}

// degParams collects the -figure degradation knobs. Empty rate slices
// pick the study's defaults.
type degParams struct {
	rho         float64
	crash, loss []float64
}

// parseRhos parses a comma-separated list of positive densities; an
// empty string means "use the default pair". Unlike parseRates, rhos
// are not bounded by 1.
func parseRhos(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad density %q: %v", p, err)
		}
		if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			return nil, fmt.Errorf("density %v not a positive finite number", r)
		}
		rhos = append(rhos, r)
	}
	return rhos, nil
}

// parseRates parses a comma-separated list of rates in [0, 1]; an
// empty string means "use the default grid".
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", p, err)
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %v outside [0, 1]", r)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// dumpCSV writes each figure's density-indexed series to
// <dir>/<figureID>.csv.
func dumpCSV(dir string, rhos []float64, figs ...*experiments.FigureResult) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figs {
		fh, err := os.Create(filepath.Join(dir, f.ID+".csv"))
		if err != nil {
			return err
		}
		err = export.SeriesCSV(fh, f, rhos)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func run(ctx context.Context, eng *engine.Engine, figure string, pa, ps experiments.Preset,
	deg degParams, shootRhos []float64, skipSim bool, w io.Writer, csvDir string) error {
	if figure == "all" {
		c := experiments.Campaign{Analytic: pa, Sim: ps, SkipSim: skipSim,
			Extras: true, Engine: eng}
		figs, err := c.RunContext(ctx, w)
		if err != nil {
			return err
		}
		return dumpCSV(csvDir, pa.Rhos, figs...)
	}

	var f *experiments.FigureResult
	var err error
	switch {
	case experiments.NeedsAnalyticSurface(figure):
		var surf *experiments.Surface
		surf, err = experiments.AnalyticSurfaceCtx(ctx, eng, pa)
		if err != nil {
			return err
		}
		switch figure {
		case "fig4":
			f = experiments.Fig4(surf)
		case "fig5":
			f = experiments.Fig5(surf)
		case "fig6":
			f = experiments.Fig6(surf)
		case "fig7":
			f = experiments.Fig7(surf)
		case "fig12":
			f, err = experiments.Fig12(surf)
		}
	case experiments.NeedsSimSurface(figure):
		var surf *experiments.Surface
		surf, err = experiments.SimSurfaceCtx(ctx, eng, ps)
		if err != nil {
			return err
		}
		switch figure {
		case "fig8":
			f = experiments.Fig8(surf)
		case "fig9":
			f = experiments.Fig9(surf)
		case "fig10":
			f = experiments.Fig10(surf)
		case "fig11":
			f = experiments.Fig11(surf)
		case "fig12sim":
			f, err = experiments.SimSuccessRate(ps, surf)
		}
	case figure == "cfm":
		f, err = experiments.CFMBaseline(pa)
	case figure == "carrier":
		f, err = experiments.CarrierSenseAblation(pa)
	case figure == "costfn":
		f, err = experiments.CostFunctions(pa, 5)
	case figure == "collisions":
		f, err = experiments.CollisionProfile(ps, 100)
	case figure == "schemes":
		f, err = experiments.SchemeComparison(ps, []float64{40, 100})
	case figure == "hetero":
		f, err = experiments.Heterogeneity(ps, 80)
	case figure == "refinedcfm":
		f, err = experiments.RefinedCFM(pa, 5)
	case figure == "joint":
		f, err = experiments.JointDesign(ps, 100, 15, []int{1, 2, 3, 4, 6, 9})
	case figure == "mumode":
		f, err = experiments.MuModeAblation(pa)
	case figure == "degradation":
		f, err = experiments.DegradationCtx(ctx, eng, ps, deg.rho, deg.crash, deg.loss)
	case figure == "shootout":
		f, err = experiments.ShootoutCtx(ctx, eng, ps, shootRhos)
	case figure == "slots":
		f, err = experiments.SlotSweep(80, []int{1, 2, 3, 4, 6, 8, 12}, pa.Grid, pa.Constraints)
	case figure == "field":
		f, err = experiments.FieldScaling(80, []int{3, 5, 8, 12, 16}, 0.15, pa.Constraints)
	case figure == "percolation":
		var grid []float64
		for p := 0.35; p <= 0.9; p += 0.05 {
			grid = append(grid, p)
		}
		f, err = experiments.Percolation(18, grid, 10, 1)
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}
	if err != nil {
		return err
	}
	if err := f.Render(w); err != nil {
		return err
	}
	return dumpCSV(csvDir, pa.Rhos, f)
}
