// Command loadgen is the closed-loop load generator behind the serving
// latency tier: it drives a running `experiments -serve` instance with
// a mixed query distribution at a target aggregate QPS and reports
// end-to-end latency percentiles and the error rate.
//
// Closed-loop means each connection waits for its response before
// issuing the next request, paced globally to -qps; latency is
// measured per request, client-side. The query mix is seeded and
// deterministic: the same -seed replays the same request sequence.
//
// Examples:
//
//	loadgen -url http://127.0.0.1:8080 -quick -qps 200 -duration 10s
//	loadgen -url ... -quick -out artifacts/loadgen.json \
//	    -max-p99 50ms -max-error-rate 0            # smoke gate
//	loadgen -url ... -quick -bench-merge BENCH.json # latency tier
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"sensornet/internal/bench"
	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/metrics"
	"sensornet/internal/optimize"
)

func main() {
	var (
		url      = flag.String("url", "", "base URL of a running `experiments -serve` (e.g. http://127.0.0.1:8080)")
		qps      = flag.Float64("qps", 200, "target aggregate request rate (0 = unthrottled)")
		duration = flag.Duration("duration", 5*time.Second, "how long to generate load")
		conns    = flag.Int("conns", 8, "concurrent closed-loop connections")
		surfaces = flag.String("surfaces", "analytic", "comma-separated surfaces to query: analytic,sim")
		quick    = flag.Bool("quick", true, "build the query mix from the quick presets (match the server's -quick)")
		seed     = flag.Int64("seed", 1, "query-mix seed; the same seed replays the same sequence")
		name     = flag.String("name", "serve-load", "run name recorded in reports and bench snapshots")
		out      = flag.String("out", "", "write the JSON report to this file (stdout otherwise)")
		merge    = flag.String("bench-merge", "", "merge this run into an existing BENCH json snapshot's latency section")

		maxP99   = flag.Duration("max-p99", 0, "fail (exit 1) when p99 exceeds this bound (0 = unchecked)")
		maxErr   = flag.Float64("max-error-rate", -1, "fail (exit 1) when the error rate exceeds this fraction (negative = unchecked)")
		httpTout = flag.Duration("request-timeout", 10*time.Second, "per-request client timeout")
	)
	flag.Parse()
	if *url == "" {
		fmt.Fprintln(os.Stderr, "usage: loadgen -url http://host:port [-qps n] [-duration d] [-conns n] [-surfaces analytic,sim] [-quick] [-out f] [-bench-merge f]")
		os.Exit(2)
	}

	mix, err := queryMix(*surfaces, *quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	rep := run(strings.TrimRight(*url, "/"), mix, *qps, *duration, *conns, *seed, *httpTout)
	rep.Name = *name

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	body = append(body, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
	} else {
		os.Stdout.Write(body)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests in %.2fs (%.0f/s), %.2f%% errors, p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms\n",
		rep.Requests, rep.DurationS, rep.ActualQPS, rep.ErrorRate*100,
		rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)

	if *merge != "" {
		if err := mergeBench(*merge, rep); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -bench-merge:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: merged latency run %q into %s\n", rep.Name, *merge)
	}

	if fails := gateFailures(rep, *maxP99, *maxErr); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "loadgen:", f)
		}
		os.Exit(1)
	}
}

// gateFailures evaluates the -max-p99/-max-error-rate gate. A gated run
// that produced no requests, or no successful ones, fails outright: the
// percentile fields sit at their zero values (or describe only error
// latencies), so the bound checks alone would pass trivially against a
// dead server — exactly the green-gate-on-outage failure mode the gate
// exists to catch.
func gateFailures(rep *report, maxP99 time.Duration, maxErr float64) []string {
	gated := maxP99 > 0 || maxErr >= 0
	if !gated {
		return nil
	}
	if rep.Requests == 0 {
		return []string{"gate failed: the run produced zero requests, so the latency and error-rate bounds were never exercised (is the server up?)"}
	}
	var fails []string
	if rep.Requests == rep.Errors {
		fails = append(fails, fmt.Sprintf("gate failed: all %d requests errored, so the percentiles describe only failures", rep.Requests))
	}
	if maxP99 > 0 && rep.P99Ms > float64(maxP99)/float64(time.Millisecond) {
		fails = append(fails, fmt.Sprintf("p99 %.2fms exceeds the %s bound", rep.P99Ms, maxP99))
	}
	if maxErr >= 0 && rep.ErrorRate > maxErr {
		fails = append(fails, fmt.Sprintf("error rate %.4f exceeds the %.4f bound", rep.ErrorRate, maxErr))
	}
	return fails
}

// report is the loadgen JSON output; the latency fields mirror
// bench.LatencyResult so a run can merge straight into a snapshot.
type report struct {
	Name      string  `json:"name"`
	URL       string  `json:"url"`
	TargetQPS float64 `json:"target_qps"`
	ActualQPS float64 `json:"actual_qps"`
	DurationS float64 `json:"duration_s"`
	Conns     int     `json:"conns"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	// Statuses counts responses by HTTP status ("error" = transport
	// failure).
	Statuses map[string]int `json:"statuses"`
}

// queryMix builds the candidate request paths: every optimal
// (surface, metric, rho) tuple, every surface row, and the full
// surface dump — the shapes the serving tier answers.
func queryMix(surfaces string, quick bool) ([]string, error) {
	pa, ps := experiments.PaperAnalytic(), experiments.PaperSim()
	if quick {
		pa, ps = experiments.QuickAnalytic(), experiments.QuickSim()
	}
	var paths []string
	for _, name := range strings.Split(surfaces, ",") {
		var pre experiments.Preset
		switch name = strings.TrimSpace(name); name {
		case "analytic":
			pre = pa
		case "sim":
			pre = ps
		default:
			return nil, fmt.Errorf("unknown surface %q: want analytic or sim", name)
		}
		for _, sel := range optimize.Selectors() {
			for _, rho := range pre.Rhos {
				paths = append(paths, fmt.Sprintf("/api/optimal?surface=%s&metric=%s&rho=%g", name, sel.Name, rho))
			}
		}
		for _, rho := range pre.Rhos {
			paths = append(paths, fmt.Sprintf("/api/surface?surface=%s&rho=%g", name, rho))
		}
		paths = append(paths, "/api/surface?surface="+name)
	}
	return paths, nil
}

// run drives the closed loop: conns workers share a pacing ticker and
// pull deterministic queries from their own seeded streams.
func run(base string, mix []string, qps float64, duration time.Duration, conns int, seed int64, timeout time.Duration) *report {
	if conns < 1 {
		conns = 1
	}
	var ticks <-chan time.Time
	if qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / qps))
		defer t.Stop()
		ticks = t.C
	}
	deadline := time.After(duration)
	stop := make(chan struct{})
	go func() {
		<-deadline
		close(stop)
	}()

	type sample struct {
		ms     float64
		status string
		err    bool
	}
	results := make([][]sample, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(engine.DeriveSeed(seed, "loadgen-conn", c)))
			client := &http.Client{Timeout: timeout}
			for {
				if ticks != nil {
					select {
					case <-ticks:
					case <-stop:
						return
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				url := base + mix[rng.Intn(len(mix))]
				t0 := time.Now()
				resp, err := client.Get(url)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				s := sample{ms: ms}
				if err != nil {
					s.status, s.err = "error", true
				} else {
					resp.Body.Close()
					s.status = fmt.Sprintf("%d", resp.StatusCode)
					s.err = resp.StatusCode != http.StatusOK
				}
				results[c] = append(results[c], s)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		URL: base, TargetQPS: qps, Conns: conns,
		DurationS: elapsed.Seconds(),
		Statuses:  map[string]int{},
	}
	var lat []float64
	for _, rs := range results {
		for _, s := range rs {
			rep.Requests++
			rep.Statuses[s.status]++
			if s.err {
				rep.Errors++
			}
			lat = append(lat, s.ms)
			if s.ms > rep.MaxMs {
				rep.MaxMs = s.ms
			}
		}
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
		rep.ActualQPS = float64(rep.Requests) / elapsed.Seconds()
		rep.P50Ms = metrics.Percentile(lat, 50)
		rep.P90Ms = metrics.Percentile(lat, 90)
		rep.P99Ms = metrics.Percentile(lat, 99)
	}
	return rep
}

// mergeBench folds the run into a bench snapshot's latency section,
// replacing a same-named run and preserving everything else.
func mergeBench(path string, rep *report) error {
	snap, err := bench.Load(path)
	if err != nil {
		return err
	}
	lr := bench.LatencyResult{
		Name: rep.Name, Requests: rep.Requests, ErrorRate: rep.ErrorRate,
		P50Ms: rep.P50Ms, P90Ms: rep.P90Ms, P99Ms: rep.P99Ms, MaxMs: rep.MaxMs,
	}
	replaced := false
	for i, r := range snap.Latency {
		if r.Name == lr.Name {
			snap.Latency[i] = lr
			replaced = true
			break
		}
	}
	if !replaced {
		snap.Latency = append(snap.Latency, lr)
	}
	body, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}
