package main

import (
	"strings"
	"testing"
	"time"
)

// TestGateFailsOnZeroRequests is the dead-server regression: a gated
// run with zero requests leaves every percentile at its zero value, and
// before the fix both bound checks passed trivially.
func TestGateFailsOnZeroRequests(t *testing.T) {
	rep := &report{}
	fails := gateFailures(rep, 750*time.Millisecond, 0)
	if len(fails) == 0 {
		t.Fatal("zero-request gated run must fail")
	}
	if !strings.Contains(fails[0], "zero requests") {
		t.Fatalf("failure message should name the zero-request cause, got %q", fails[0])
	}
	// Either bound alone arms the gate.
	if len(gateFailures(rep, 750*time.Millisecond, -1)) == 0 {
		t.Fatal("-max-p99 alone must arm the zero-request check")
	}
	if len(gateFailures(rep, 0, 0)) == 0 {
		t.Fatal("-max-error-rate alone must arm the zero-request check")
	}
}

// TestGateFailsOnAllErrors pins the all-failures case: the latency
// percentiles then describe only error samples (timeouts, refused
// connections), which says nothing about serving latency.
func TestGateFailsOnAllErrors(t *testing.T) {
	rep := &report{Requests: 10, Errors: 10, ErrorRate: 1, P99Ms: 0.1}
	fails := gateFailures(rep, 750*time.Millisecond, 1)
	if len(fails) == 0 {
		t.Fatal("all-error gated run must fail even inside the bounds")
	}
	if !strings.Contains(fails[0], "errored") {
		t.Fatalf("failure message should name the all-errors cause, got %q", fails[0])
	}
}

func TestGateBoundsStillEnforced(t *testing.T) {
	rep := &report{Requests: 100, Errors: 5, ErrorRate: 0.05, P99Ms: 900}
	fails := gateFailures(rep, 750*time.Millisecond, 0.01)
	if len(fails) != 2 {
		t.Fatalf("want p99 and error-rate failures, got %v", fails)
	}
}

func TestGatePassesHealthyRun(t *testing.T) {
	rep := &report{Requests: 100, P99Ms: 10}
	if fails := gateFailures(rep, 750*time.Millisecond, 0); len(fails) != 0 {
		t.Fatalf("healthy run should pass, got %v", fails)
	}
}

func TestGateUncheckedRunNeverFails(t *testing.T) {
	// No bounds set: even a dead run is not gated (report-only mode).
	if fails := gateFailures(&report{}, 0, -1); len(fails) != 0 {
		t.Fatalf("ungated run should never fail, got %v", fails)
	}
}
