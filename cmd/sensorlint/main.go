// Sensorlint enforces this repository's determinism and context
// contracts as static checks: seed derivation through
// engine.DeriveSeed, no wall-clock or global-rand reads in libraries,
// contexts flowing down from callers, no exact float comparison, and
// concurrency routed through the engine pool. Run it over the module:
//
//	go run ./cmd/sensorlint ./...
//
// It exits non-zero on findings; see internal/lint for the checks and
// the //lint:ignore suppression convention.
package main

import (
	"os"

	"sensornet/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
