// Command simulate runs the network simulator (the repository's
// GloMoSim substitute) for one configuration: a broadcast scheme over a
// uniform disk deployment under CFM, CAM, or CAM with carrier sensing.
//
// Examples:
//
//	simulate -rho 100 -p 0.1 -runs 30
//	simulate -rho 100 -protocol flooding -model cfm
//	simulate -rho 60 -p 0.2 -async          # unaligned phase grids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"sensornet/internal/channel"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
	"sensornet/internal/trace"
)

func main() {
	var (
		p       = flag.Int("P", 5, "field radius in transmission radii")
		s       = flag.Int("S", 3, "slots per time phase")
		rho     = flag.Float64("rho", 60, "density: average neighbours per node")
		prob    = flag.Float64("p", 0.1, "broadcast probability (pb protocol)")
		proto   = flag.String("protocol", "pb", "broadcast scheme: pb|flooding|counter|distance")
		thresh  = flag.Int("threshold", 3, "counter scheme suppression threshold")
		minDist = flag.Float64("mindist", 0.5, "distance scheme suppression distance")
		model   = flag.String("model", "cam", "communication model: cfm|cam|cam+cs")
		runs    = flag.Int("runs", 10, "independent random runs")
		seed    = flag.Int64("seed", 1, "base random seed")
		async   = flag.Bool("async", false, "per-node random phase offsets")
		latency = flag.Float64("latency", 5, "latency constraint in phases")
		reach   = flag.Float64("reach", 0.63, "reachability constraint")
		budget  = flag.Float64("budget", 80, "broadcast budget")
		showTr  = flag.Bool("trace", false, "collect and print the per-phase collision profile (first run)")
	)
	flag.Parse()

	cfg := sim.Config{P: *p, S: *s, Rho: *rho, Seed: *seed, Async: *async}
	switch strings.ToLower(*model) {
	case "cfm":
		cfg.Model = channel.CFM
	case "cam":
		cfg.Model = channel.CAM
	case "cam+cs", "cs", "carrier":
		cfg.Model = channel.CAMCarrierSense
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown model %q\n", *model)
		os.Exit(2)
	}
	switch strings.ToLower(*proto) {
	case "pb":
		cfg.Protocol = protocol.Probability{P: *prob}
	case "flooding":
		cfg.Protocol = protocol.Flooding{}
	case "counter":
		cfg.Protocol = protocol.Counter{Threshold: *thresh}
	case "distance":
		cfg.Protocol = protocol.Distance{MinDist: *minDist}
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	agg, err := sim.RunMany(cfg, *runs, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}

	fmt.Printf("%s over %v, P=%d, s=%d, rho=%g, %d runs (async=%v)\n\n",
		cfg.Protocol.Name(), cfg.Model, *p, *s, *rho, *runs, *async)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tmean\tstddev\t95% CI\tfeasible")
	report := func(name string, xs []float64) {
		sm := metrics.Summarize(xs)
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t±%.3f\t%.0f%%\n",
			name, sm.Mean, sm.StdDev, sm.CI95, metrics.FeasibleFraction(xs)*100)
	}
	report(fmt.Sprintf("reachability @ %g phases", *latency), agg.ReachabilityAtPhase(*latency))
	report(fmt.Sprintf("latency to %.0f%% (phases)", *reach*100), agg.LatencyToReach(*reach))
	report(fmt.Sprintf("broadcasts to %.0f%%", *reach*100), agg.BroadcastsToReach(*reach))
	report(fmt.Sprintf("reachability @ %g broadcasts", *budget), agg.ReachabilityAtBudget(*budget))
	report("broadcast success rate", agg.SuccessRates())
	var finals, totals []float64
	for _, r := range agg.Runs {
		finals = append(finals, r.Timeline.FinalReachability())
		totals = append(totals, float64(r.Broadcasts))
	}
	report("final reachability", finals)
	report("total broadcasts", totals)
	tw.Flush()

	fmt.Println("\nmean timeline:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\treachability\tbroadcasts")
	for i := range agg.Mean.Phases {
		fmt.Fprintf(tw, "%.0f\t%.4f\t%.1f\n",
			agg.Mean.Phases[i], agg.Mean.CumReach[i], agg.Mean.CumBroadcasts[i])
	}
	tw.Flush()

	if *showTr {
		var col trace.Collector
		cfg.Tracer = &col
		if _, err := sim.Run(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		fmt.Println("\ncollision profile (single traced run):")
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\ttx\tdeliveries\tcollisions\tfirst-rx\tcancels")
		for i, ps := range col.Phases() {
			if ps == (trace.PhaseStats{}) {
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n", i,
				ps.Transmissions, ps.Deliveries, ps.Collisions,
				ps.FirstReceives, ps.Cancels)
		}
		tw.Flush()
		fmt.Printf("\noverall collision rate: %.3f\n", col.CollisionRate())
	}
}
