// Package sensornet reproduces "On Communication Models for Algorithm
// Design in Networked Sensor Systems: A Case Study" (Yu, Hong,
// Prasanna, 2005): formal Collision Free (CFM) and Collision Aware
// (CAM) link models, the PB_CAM probability-based broadcasting scheme,
// the paper's analytical optimisation framework, and a discrete-event
// network simulator that validates it.
//
// The public entry point is sensornet/internal/core (NetworkModel and
// the Fig. 1(b) analyse-optimise-simulate loop); cmd/analyze,
// cmd/simulate and cmd/experiments expose it on the command line, and
// examples/ holds runnable scenarios. The root-level benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation.
package sensornet
