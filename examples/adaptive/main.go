// Adaptive demonstrates the Fig. 12 insight: the ratio between the
// latency-optimal broadcast probability and the flooding success rate
// is nearly constant across densities. A deployment can therefore tune
// itself without knowing its density — measure the success rate of a
// short flooding burst, multiply by a pre-calibrated constant, and use
// the result as the broadcast probability.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sensornet/internal/core"
	"sensornet/internal/protocol"
)

func main() {
	c := core.Constraints{Latency: 5, Reach: 0.72, Budget: 35}

	// Calibrate the ratio once, on a single reference density.
	ref := core.DefaultModel()
	ref.Rho = 60
	refOpt, err := ref.OptimalProbability(core.MaxReachability, c, nil)
	if err != nil {
		log.Fatal(err)
	}
	refRate, err := ref.FloodingSuccessRate()
	if err != nil {
		log.Fatal(err)
	}
	ratio := refOpt.P / refRate
	fmt.Printf("calibration at rho=60: p*=%.2f, flooding success rate=%.3f, ratio=%.1f\n\n",
		refOpt.P, refRate, ratio)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rho\tmeasured success rate\tadaptive p\ttrue p*\treach (adaptive)\treach (true p*)")
	for _, rho := range []float64{20, 40, 80, 120, 140} {
		m := core.DefaultModel()
		m.Rho = rho

		// "Measure" the success rate by simulating one flooding burst
		// (in a live network this is a short calibration round; the
		// density itself is never used below).
		burst, err := m.SimulateProtocol(protocol.Flooding{}, 99)
		if err != nil {
			log.Fatal(err)
		}
		adaptiveP := clamp(ratio*burst.SuccessRate, 0.01, 1)

		trueOpt, err := m.OptimalProbability(core.MaxReachability, c, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%g\t%.3f\t%.2f\t%.2f\t%.3f\t%.3f\n",
			rho, burst.SuccessRate, adaptiveP, trueOpt.P,
			meanReach(m, adaptiveP), meanReach(m, trueOpt.P))
	}
	tw.Flush()
	fmt.Println("\nThe adaptive probability tracks the density-aware optimum without knowing rho.")
}

func meanReach(m core.NetworkModel, p float64) float64 {
	agg, err := m.SimulateMany(p, 7, 8)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, r := range agg.Runs {
		sum += r.Timeline.ReachabilityAtPhase(5)
	}
	return sum / float64(len(agg.Runs))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
