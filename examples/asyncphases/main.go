// Asyncphases probes the synchronisation assumption: the paper's
// analysis aligns all time phases network-wide, but the PB_CAM
// algorithm itself never requires it. This example runs the same
// configurations through the slot-aligned engine and the asynchronous
// engine (every node keeps a private random phase offset, collisions
// resolved in continuous time) and compares the outcomes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sensornet/internal/core"
)

func main() {
	m := core.DefaultModel()
	m.Rho = 100

	fmt.Printf("sync vs async PB_CAM, rho=%g, N=%.0f, mean of 10 runs\n\n", m.Rho, m.N())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tsync reach@6\tasync reach@6\tsync broadcasts\tasync broadcasts")
	for _, p := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		sr, sb := run(m, p, false)
		ar, ab := run(m, p, true)
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.0f\t%.0f\n", p, sr, ar, sb, ab)
	}
	tw.Flush()
	fmt.Println("\nUnaligned transmissions can straddle two slots, so asynchrony widens the")
	fmt.Println("collision window and costs some reachability — but the bell shape and the")
	fmt.Println("location of the optimal probability persist, so the analysis carried out under")
	fmt.Println("the synchronisation assumption still guides the choice of p in a free-running network.")
}

func run(m core.NetworkModel, p float64, async bool) (reach, broadcasts float64) {
	const runs = 10
	for seed := int64(0); seed < runs; seed++ {
		if async {
			r, err := m.SimulateAsync(p, seed)
			if err != nil {
				log.Fatal(err)
			}
			reach += r.Timeline.ReachabilityAtPhase(6)
			broadcasts += float64(r.Broadcasts)
		} else {
			r, err := m.Simulate(p, seed)
			if err != nil {
				log.Fatal(err)
			}
			reach += r.Timeline.ReachabilityAtPhase(6)
			broadcasts += float64(r.Broadcasts)
		}
	}
	return reach / runs, broadcasts / runs
}
