// Datagather runs the library's second case study: aggregating data
// collection (convergecast), the application class the paper's related
// work designs under CFM. Every node's reading flows up a BFS tree to
// the sink, aggregated along the way.
//
// Designing against CFM gives the textbook schedule — one slot per tree
// level, N-1 transmissions. Running the same algorithm over CAM
// requires contention windows and acknowledgments, and this example
// measures how the gap between the two models grows with density:
// exactly the "CFM analysis can be misleading" argument of the paper,
// for unicast traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/gather"
)

func main() {
	fmt.Println("aggregating data collection: CFM schedule vs CAM execution")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rho\tnodes\tCFM slots\tCAM slots\tCFM tx\tCAM tx\tCAM coverage")
	for _, rho := range []float64{10, 20, 40, 80} {
		var cfmSlots, camSlots, cfmTx, camTx, coverage float64
		const runs = 5
		for seed := int64(0); seed < runs; seed++ {
			dep, err := deploy.Generate(deploy.Config{P: 4, Rho: rho},
				//lint:ignore seedderive the example sweeps explicit root seeds 0..runs-1; nothing is derived
				rand.New(rand.NewSource(seed)))
			if err != nil {
				log.Fatal(err)
			}
			cfm, err := gather.Run(dep, gather.Config{Model: channel.CFM})
			if err != nil {
				log.Fatal(err)
			}
			cam, err := gather.Run(dep, gather.Config{
				Model: channel.CAM, Window: 3, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			cfmSlots += float64(cfm.Slots)
			camSlots += float64(cam.Slots)
			cfmTx += float64(cfm.Transmissions)
			camTx += float64(cam.Transmissions)
			coverage += cam.Coverage
		}
		n := rho * 16
		fmt.Fprintf(tw, "%g\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f\n",
			rho, n, cfmSlots/runs, camSlots/runs, cfmTx/runs, camTx/runs, coverage/runs)
	}
	tw.Flush()
	fmt.Println("\nThe CFM schedule is a lower bound; collision handling multiplies both the")
	fmt.Println("time and the transmission count, and the time gap widens with density —")
	fmt.Println("the cost CFM-level analysis silently ignores.")
}
