// Energybudget plays out the paper's motivating scenario: an alarm
// message must reach most of a dense sensor field while spending as
// few transmissions as possible (each broadcast costs e_a on the
// sender and every listening neighbour).
//
// It also demonstrates the "Refine" edge of the Fig. 1(b) methodology
// loop: the analytical energy optimum is a mean-field prediction that
// ignores stochastic die-out, so the example starts from it and raises
// p until simulation confirms the coverage target, then compares the
// refined PB_CAM against flooding and counter-based suppression.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sensornet/internal/core"
	"sensornet/internal/protocol"
)

func main() {
	m := core.DefaultModel()
	m.Rho = 120 // dense field: collisions dominate

	target := 0.70
	c := core.Constraints{Latency: 5, Reach: target, Budget: 35}

	// Step 1: analytic energy optimum (the design-time starting point).
	opt, err := m.OptimalProbability(core.MinEnergy, c, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alarm dissemination over N=%.0f nodes (rho=%g), target reach %.0f%%\n",
		m.N(), m.Rho, target*100)
	fmt.Printf("analytic energy optimum: p=%.2f predicting %.0f broadcasts\n", opt.P, opt.Value)

	// Step 2: refine against the simulator — raise p until the target
	// coverage holds on average (mean-field analysis ignores die-out).
	p := opt.P
	for ; p < 1; p *= 1.5 {
		if meanFinalReach(m, protocol.Probability{P: p}) >= target {
			break
		}
	}
	if p > 1 {
		p = 1
	}
	fmt.Printf("refined by simulation:   p=%.2f\n\n", p)

	// Step 3: compare strategies.
	costs := m.Costs()
	perBroadcast := costs.Energy * (1 + m.Rho) // sender + expected listeners

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tfinal reach\tbroadcasts\tenergy (e_a units)\tphases to target")
	schemes := []struct {
		name string
		p    protocol.Protocol
	}{
		{"flooding", protocol.Flooding{}},
		{fmt.Sprintf("PB_CAM p=%.2f", p), protocol.Probability{P: p}},
		{"counter(threshold=3)", protocol.Counter{Threshold: 3}},
	}
	for _, s := range schemes {
		var reach, bcast, latency float64
		var feasible int
		const runs = 8
		for seed := int64(0); seed < runs; seed++ {
			res, err := m.SimulateProtocol(s.p, seed)
			if err != nil {
				log.Fatal(err)
			}
			reach += res.Timeline.FinalReachability()
			bcast += float64(res.Broadcasts)
			if l, ok := res.Timeline.LatencyToReach(target); ok {
				latency += l
				feasible++
			}
		}
		reach /= runs
		bcast /= runs
		lat := "-"
		if feasible > 0 {
			lat = fmt.Sprintf("%.1f", latency/float64(feasible))
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.0f\t%.0f\t%s\n",
			s.name, reach, bcast, bcast*perBroadcast, lat)
	}
	tw.Flush()
	fmt.Println("\nThe refined PB_CAM meets the coverage target at a fraction of flooding's")
	fmt.Println("energy; counter-based suppression saves little in comparison.")
}

func meanFinalReach(m core.NetworkModel, pr protocol.Protocol) float64 {
	const runs = 6
	sum := 0.0
	for seed := int64(100); seed < 100+runs; seed++ {
		res, err := m.SimulateProtocol(pr, seed)
		if err != nil {
			log.Fatal(err)
		}
		sum += res.Timeline.FinalReachability()
	}
	return sum / runs
}
