// Quickstart: define an abstract network model, predict PB_CAM's
// behaviour analytically, pick a good broadcast probability, and check
// the prediction against the simulator — the whole Fig. 1(b) loop in a
// few lines.
package main

import (
	"fmt"
	"log"

	"sensornet/internal/core"
)

func main() {
	// The abstract network model: a disk of 5 transmission radii,
	// 3 backoff slots per phase, ~100 neighbours per node, collision
	// aware links.
	m := core.DefaultModel()
	m.Rho = 100

	// Ask the analytical framework for the probability that maximises
	// reachability within 5 time phases.
	c := core.Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	opt, err := m.OptimalProbability(core.MaxReachability, c, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: N=%.0f nodes, rho=%g neighbours/node\n", m.N(), m.Rho)
	fmt.Printf("analytic optimum: p*=%.2f predicting %.1f%% reachability in %g phases\n",
		opt.P, opt.Value*100, c.Latency)

	// Validate on the simulator (10 random deployments).
	agg, err := m.SimulateMany(opt.P, 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, r := range agg.Runs {
		sum += r.Timeline.ReachabilityAtPhase(c.Latency)
	}
	fmt.Printf("simulated:        %.1f%% reachability (mean of %d runs)\n",
		sum/float64(len(agg.Runs))*100, len(agg.Runs))

	// Compare with naive flooding under the same collision-aware model.
	flood, err := m.Simulate(1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flooding (p=1):   %.1f%% reachability, %d broadcasts\n",
		flood.Timeline.ReachabilityAtPhase(c.Latency)*100, flood.Broadcasts)
}
