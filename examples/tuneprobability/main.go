// Tuneprobability walks the design methodology of Fig. 1(b) across a
// range of deployment densities: for each density it derives the
// latency-optimal broadcast probability from the analytical model and
// validates the choice against simulation, comparing with the naive
// density-oblivious default — simple flooding (p = 1).
//
// Flooding is near-optimal in sparse fields but collapses under
// collisions as the network densifies; the tuned probability holds its
// reachability roughly flat, which is the paper's central scalability
// claim.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sensornet/internal/core"
)

func main() {
	c := core.Constraints{Latency: 5, Reach: 0.72, Budget: 35}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rho\tp* (analytic)\tpredicted reach\tsim reach @ p*\tsim reach @ flooding")
	for _, rho := range []float64{20, 60, 100, 140} {
		m := core.DefaultModel()
		m.Rho = rho

		opt, err := m.OptimalProbability(core.MaxReachability, c, nil)
		if err != nil {
			log.Fatal(err)
		}
		tuned := simulatedReach(m, opt.P, c.Latency)
		flood := simulatedReach(m, 1, c.Latency)
		fmt.Fprintf(tw, "%g\t%.2f\t%.3f\t%.3f\t%.3f\n",
			rho, opt.P, opt.Value, tuned, flood)
	}
	tw.Flush()
	fmt.Println("\nThe analytic model is optimistic in absolute terms (it ignores stochastic")
	fmt.Println("die-out), but its tuned probability keeps simulated reachability roughly flat")
	fmt.Println("across a 7x density range while flooding degrades steadily.")
}

func simulatedReach(m core.NetworkModel, p, latency float64) float64 {
	agg, err := m.SimulateMany(p, 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, r := range agg.Runs {
		sum += r.Timeline.ReachabilityAtPhase(latency)
	}
	return sum / float64(len(agg.Runs))
}
