package sensornet_test

// Examples are part of the public contract: each must build and run to
// completion, producing the headline line its documentation promises.
// The full set takes tens of seconds, so it is skipped in -short mode.

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./examples/"+dir)
	cmd.Dir = "."
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("example %s failed: %v\nstderr: %s", dir, err, errb.String())
	}
	return out.String()
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"analytic optimum", "simulated", "flooding"}},
		{"tuneprobability", []string{"rho", "p* (analytic)", "flooding degrades"}},
		{"energybudget", []string{"refined by simulation", "flooding", "PB_CAM"}},
		{"adaptive", []string{"calibration", "adaptive p", "true p*"}},
		{"asyncphases", []string{"sync reach@6", "async reach@6"}},
		{"datagather", []string{"CFM slots", "CAM slots", "coverage"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			out := runExample(t, c.dir)
			for _, want := range c.want {
				if !strings.Contains(out, want) {
					t.Fatalf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}
