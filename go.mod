module sensornet

go 1.22
