package sensornet_test

// End-to-end integration tests: the full stack (deployment → channel →
// protocol → simulator → metrics) cross-checked against the analytical
// framework, asserting the paper's headline claims on small campaigns.

import (
	"math"
	"strings"
	"testing"

	"sensornet/internal/core"
	"sensornet/internal/experiments"
	"sensornet/internal/metrics"
)

func TestEndToEndHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign in -short mode")
	}
	pre := experiments.QuickAnalytic()
	surf, err := experiments.AnalyticSurface(pre)
	if err != nil {
		t.Fatal(err)
	}

	// Claim 1 (Figs. 4-5): the latency-type optimal probability
	// decreases rapidly with density.
	fig4 := experiments.Fig4(surf)
	optP := fig4.Series["optimalP"]
	if !(optP[0] > 2*optP[len(optP)-1]) {
		t.Fatalf("claim 1: optimal p should drop sharply: %v", optP)
	}

	// Claim 2 (Figs. 6-7): the energy-type optimal probability stays
	// small (paper: within ~0.1) over the whole density range.
	fig6 := experiments.Fig6(surf)
	for i, p := range fig6.Series["optimalP"] {
		if !math.IsNaN(p) && p > 0.15 {
			t.Fatalf("claim 2: energy-optimal p[%d]=%v too large", i, p)
		}
	}

	// Claim 3 (Fig. 4b): with the right p, PB_CAM's achievable
	// reachability is density-independent.
	vals := fig4.Series["optimalValue"]
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi-lo > 0.12 {
		t.Fatalf("claim 3: optimal reachability varies too much: %v", vals)
	}

	// Claim 4 (Fig. 12): optimal-p / flooding-success-rate is nearly
	// density-invariant.
	fig12, err := experiments.Fig12(surf)
	if err != nil {
		t.Fatal(err)
	}
	ratios := fig12.Series["ratio"]
	rlo, rhi := math.Inf(1), math.Inf(-1)
	for _, r := range ratios {
		if math.IsNaN(r) {
			continue
		}
		rlo, rhi = math.Min(rlo, r), math.Max(rhi, r)
	}
	if rhi/rlo > 2 {
		t.Fatalf("claim 4: ratio not stable: %v", ratios)
	}
}

func TestEndToEndMethodologyLoop(t *testing.T) {
	// The Fig. 1(b) loop at one density: analyse → optimise → simulate,
	// then confirm the tuned probability beats flooding in simulation.
	m := core.DefaultModel()
	m.Rho = 120
	c := core.Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	opt, err := m.OptimalProbability(core.MaxReachability, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(p float64) float64 {
		agg, err := m.SimulateMany(p, 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(agg.ReachabilityAtPhase(5)).Mean
	}
	tuned, flood := mean(opt.P), mean(1)
	if tuned <= flood {
		t.Fatalf("tuned p=%.2f (%v) should beat flooding (%v) at rho=120",
			opt.P, tuned, flood)
	}
}

func TestEndToEndCampaignReport(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign render in -short mode")
	}
	pre := experiments.QuickAnalytic()
	pre.Rhos = []float64{40, 120}
	var b strings.Builder
	c := experiments.Campaign{Analytic: pre, SkipSim: true, Extras: true}
	figs, err := c.Run(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 11 { // fig4..7, fig12, cfm, carrier, costfn, slots, field, percolation
		t.Fatalf("campaign produced %d figures, want 11", len(figs))
	}
	out := b.String()
	for _, want := range []string{"fig4", "fig7", "fig12", "CFM", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("campaign report missing %q", want)
		}
	}
}
