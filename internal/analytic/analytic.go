// Package analytic implements the paper's analytical framework for
// probability-based broadcasting under the Collision Aware Model
// (§4.2.2 and Appendix A).
//
// The deployment disk of radius P·r is split into P concentric rings of
// width r. The engine tracks n_j^i — the expected number of nodes in
// ring j that first receive the packet during time phase i — through the
// recursion of Eq. (4): a node at distance x inside ring j hears an
// expected g(x) freshly-informed neighbours, of which a fraction p
// broadcast in the next phase, each in one of s random slots; the
// probability that at least one slot carries exactly one in-range
// transmission is μ(g(x)·p, s). With carrier sensing enabled the
// Appendix A variant μ'(g(x)·p, h(x)·p, s) is used, where h(x) counts
// potential interferers in the sensing annulus.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"sensornet/internal/buckets"
	"sensornet/internal/geom"
	"sensornet/internal/metrics"
)

// Config parameterises one analytic evaluation of PB_CAM.
type Config struct {
	// P is the number of rings; the field has radius P·r (paper: 5).
	P int
	// S is the number of slots per time phase (paper: 3).
	S int
	// Rho is the node density expressed as the expected number of
	// neighbours per node, ρ = δπr² (paper: 20..140).
	Rho float64
	// R is the transmission radius. The model is scale-free in R; it
	// defaults to 1.
	R float64
	// Prob is the broadcast probability p of PB_CAM. Prob = 1 is
	// simple flooding in CAM.
	Prob float64
	// KMode selects the real-valued extension of μ (default KLinear).
	KMode buckets.KMode
	// BinomialMix evaluates the success probability as the exact
	// Binomial(round(g(x)), p) mixture over sender counts instead of
	// μ at the expected count g(x)·p — the most literal reading of
	// PB_CAM contention, exposed for ablation. Ignored under
	// CarrierSense.
	BinomialMix bool
	// CarrierSense enables the Appendix A collision model, in which
	// concurrent transmissions within twice the transmission radius
	// of the receiver also destroy reception.
	CarrierSense bool
	// IntegrationPoints is the number of Simpson subintervals per ring
	// for the Eq. (4) integral (default 64).
	IntegrationPoints int
	// MaxPhases caps the tracked execution length (default 64).
	MaxPhases int
	// Epsilon terminates the recursion once the expected number of new
	// receivers in a phase falls below it (default 1e-9).
	Epsilon float64
	// TrackSuccessRate additionally accumulates the broadcast success
	// rate model used by Fig. 12.
	TrackSuccessRate bool
	// NaiveIntegrand evaluates the Eq. (4) integrand directly at every
	// Simpson node of every phase instead of precomputing the
	// phase-invariant geometry lattice once per Run. The two paths are
	// bit-identical (the equality regression tests pin them together);
	// the naive path exists as that reference and for profiling the
	// table speedup.
	NaiveIntegrand bool
	// Profile, when non-nil, makes the field radially heterogeneous:
	// ring populations are redistributed proportionally to
	// Profile(r/fieldRadius) (matching deploy.Config.Profile), while
	// the total node count ρP² is preserved. The within-ring uniform
	// assumption of the recursion is kept.
	Profile func(rNorm float64) float64
}

func (c *Config) applyDefaults() {
	//lint:ignore floateq exact zero is the "unset" sentinel for config fields, not a computed value
	if c.R == 0 {
		c.R = 1
	}
	if c.IntegrationPoints == 0 {
		c.IntegrationPoints = 64
	}
	if c.MaxPhases == 0 {
		c.MaxPhases = 64
	}
	//lint:ignore floateq exact zero is the "unset" sentinel for config fields, not a computed value
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.P < 1:
		return errors.New("analytic: P must be >= 1")
	case c.S < 1:
		return errors.New("analytic: S must be >= 1")
	case c.Rho <= 0:
		return errors.New("analytic: Rho must be > 0")
	case c.R < 0:
		return errors.New("analytic: R must be >= 0")
	case c.Prob < 0 || c.Prob > 1:
		return fmt.Errorf("analytic: Prob %v outside [0,1]", c.Prob)
	case c.IntegrationPoints < 0:
		return errors.New("analytic: IntegrationPoints must be >= 0")
	default:
		return nil
	}
}

// Result is the outcome of one analytic evaluation.
type Result struct {
	// Timeline carries the cumulative reachability and broadcast-count
	// series used for all four performance metrics.
	Timeline metrics.Timeline
	// RingReceived[i][j-1] is n_j^{i+1}: expected first-time receivers
	// in ring j during phase i+1.
	RingReceived [][]float64
	// RingNodes[j-1] is the expected node population of ring j (after
	// any radial profile redistribution).
	RingNodes []float64
	// N is the expected total node count δπ(Pr)² (= ρP²).
	N float64
	// Phases is the number of phases until termination.
	Phases int
	// SuccessRate is the opportunity-weighted mean broadcast success
	// rate (only populated when Config.TrackSuccessRate is set).
	SuccessRate float64
}

// Run evaluates the analytical model. It returns an error only for
// invalid configurations; a p = 0 run is valid and reaches nobody beyond
// ring 1... nobody at all beyond the source broadcast's first ring.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()

	rp := geom.RingPartition{R: cfg.R, P: cfg.P}
	delta := cfg.Rho / (math.Pi * cfg.R * cfg.R) // node density per unit area
	n := cfg.Rho * float64(cfg.P) * float64(cfg.P)

	ringArea := make([]float64, cfg.P+1) // 1-indexed
	ringNodes := make([]float64, cfg.P+1)
	for j := 1; j <= cfg.P; j++ {
		ringArea[j] = rp.RingArea(j)
		ringNodes[j] = delta * ringArea[j]
	}
	if cfg.Profile != nil {
		redistributeRings(cfg, rp, n, ringNodes)
	}
	// Per-ring density of all nodes, for the success-rate model.
	deltaRing := make([]float64, cfg.P+1)
	for j := 1; j <= cfg.P; j++ {
		if ringArea[j] > 0 {
			deltaRing[j] = ringNodes[j] / ringArea[j]
		}
	}

	// recv[j]: cumulative expected receivers in ring j;
	// lastNew[j]: receivers during the previous phase (the broadcasters
	// of the current phase, after thinning by p).
	recv := make([]float64, cfg.P+2)
	lastNew := make([]float64, cfg.P+2)

	res := &Result{N: n}
	res.RingNodes = append(res.RingNodes, ringNodes[1:cfg.P+1]...)
	tl := &res.Timeline
	tl.N = n
	appendSample := func(phase float64, reached, broadcasts float64) {
		tl.Phases = append(tl.Phases, phase)
		tl.CumReach = append(tl.CumReach, reached/n)
		tl.CumBroadcasts = append(tl.CumBroadcasts, broadcasts)
	}

	// Phase 0 anchor: only the source holds the packet.
	appendSample(0, 1, 0)

	// Phase 1: the source broadcasts alone; every node in ring 1
	// receives (n_1^1 = δπr² = ρ).
	recv[1] = ringNodes[1]
	lastNew[1] = ringNodes[1]
	res.RingReceived = append(res.RingReceived, snapshotRings(lastNew, cfg.P))
	totalRecv := ringNodes[1]
	totalBroadcasts := 1.0
	appendSample(1, 1+totalRecv, totalBroadcasts)

	var succWeighted, oppWeighted float64

	// The phase-invariant geometry lattice (see tables.go), plus the
	// per-phase scratch hoisted out of the loop so the recursion's
	// steady state allocates nothing per phase beyond its result rows.
	var tab *geomTable
	if !cfg.NaiveIntegrand {
		tab = newGeomTable(cfg, rp)
	}
	freshDensity := make([]float64, cfg.P+2)
	newRecv := make([]float64, cfg.P+1)

	for phase := 2; phase <= cfg.MaxPhases; phase++ {
		// Broadcasters this phase: last phase's fresh receivers,
		// thinned by p.
		broadcasters := 0.0
		for j := 1; j <= cfg.P; j++ {
			broadcasters += lastNew[j] * cfg.Prob
		}
		totalBroadcasts += broadcasters
		if broadcasters <= cfg.Epsilon {
			appendSample(float64(phase), 1+totalRecv, totalBroadcasts)
			break
		}

		// Density of fresh receivers per ring, for g(x) and h(x).
		for j := range freshDensity {
			freshDensity[j] = 0
		}
		for j := 1; j <= cfg.P; j++ {
			if ringArea[j] > 0 {
				freshDensity[j] = lastNew[j] / ringArea[j]
			}
		}

		for j := range newRecv {
			newRecv[j] = 0
		}
		phaseNew := 0.0
		for j := 1; j <= cfg.P; j++ {
			remaining := ringNodes[j] - recv[j]
			if remaining <= cfg.Epsilon {
				continue
			}
			var integral float64
			if tab != nil {
				integral = tab.phaseIntegral(&cfg, freshDensity, j)
			} else {
				integrand := func(x float64) float64 {
					radial := cfg.R*float64(j-1) + x
					g := expectedFresh(rp, freshDensity, j, x)
					var success float64
					switch {
					case cfg.CarrierSense:
						h := expectedFreshAnnulus(rp, freshDensity, j, x)
						success = buckets.MuCSReal(g*cfg.Prob, h*cfg.Prob, cfg.S, cfg.KMode)
					case cfg.BinomialMix:
						success = buckets.MuBinomial(int(math.Round(g)), cfg.Prob, cfg.S)
					default:
						success = buckets.MuReal(g*cfg.Prob, cfg.S, cfg.KMode)
					}
					return radial * success
				}
				integral = simpson(integrand, 0, cfg.R, cfg.IntegrationPoints)
			}
			nji := 2 * math.Pi * (remaining / ringArea[j]) * integral
			if nji < 0 {
				nji = 0
			}
			if nji > remaining {
				nji = remaining
			}
			newRecv[j] = nji
			phaseNew += nji
		}

		if cfg.TrackSuccessRate && cfg.Prob > 0 {
			var s, o float64
			if tab != nil {
				s, o = tab.successRate(&cfg, deltaRing, freshDensity)
			} else {
				s, o = successRateContribution(cfg, rp, deltaRing, freshDensity)
			}
			succWeighted += s
			oppWeighted += o
		}

		for j := 1; j <= cfg.P; j++ {
			recv[j] += newRecv[j]
			lastNew[j] = newRecv[j]
		}
		totalRecv += phaseNew
		res.RingReceived = append(res.RingReceived, snapshotRings(lastNew, cfg.P))
		appendSample(float64(phase), 1+totalRecv, totalBroadcasts)

		if phaseNew <= cfg.Epsilon {
			break
		}
	}

	res.Phases = len(tl.Phases) - 1
	if cfg.TrackSuccessRate && oppWeighted > 0 {
		res.SuccessRate = succWeighted / oppWeighted
	}
	return res, nil
}

// expectedFresh computes g(x): the expected number of nodes within
// transmission range of a node at offset x inside ring j that received
// the packet during the previous phase (Eq. 3).
func expectedFresh(rp geom.RingPartition, freshDensity []float64, j int, x float64) float64 {
	a := rp.TransmissionAreas(j, x)
	g := 0.0
	for d := 0; d < 3; d++ {
		k := j - 1 + d
		if k >= 1 && k <= rp.P {
			g += freshDensity[k] * a[d]
		}
	}
	return g
}

// expectedFreshAnnulus computes h(x): the expected number of
// freshly-informed nodes in the carrier-sensing annulus (between r and
// 2r) of a node at offset x inside ring j (Eq. A.2).
func expectedFreshAnnulus(rp geom.RingPartition, freshDensity []float64, j int, x float64) float64 {
	b := rp.CarrierSenseAreas(j, x)
	h := 0.0
	for d := 0; d < 5; d++ {
		k := j - 2 + d
		if k >= 1 && k <= rp.P {
			h += freshDensity[k] * b[d]
		}
	}
	return h
}

// successRateContribution accumulates the Fig. 12 success-rate model for
// one phase: the expected number of successful (sender → neighbour)
// deliveries and the expected number of delivery opportunities, both
// integrated over every node position in the field.
//
// A node at offset x in ring j sees K = g(x)·p contending transmissions
// spread over s slots; the expected number it decodes is the expected
// number of singleton slots, K·((s-1)/s)^(K-1). Opportunities are K
// itself: each in-range transmission is one chance to deliver.
func successRateContribution(cfg Config, rp geom.RingPartition, deltaRing []float64, freshDensity []float64) (succ, opp float64) {
	for j := 1; j <= cfg.P; j++ {
		integrandS := func(x float64) float64 {
			radial := cfg.R*float64(j-1) + x
			k := expectedFresh(rp, freshDensity, j, x) * cfg.Prob
			return radial * buckets.ExpectedSingletons(k, cfg.S)
		}
		integrandO := func(x float64) float64 {
			radial := cfg.R*float64(j-1) + x
			k := expectedFresh(rp, freshDensity, j, x) * cfg.Prob
			return radial * k
		}
		succ += 2 * math.Pi * deltaRing[j] * simpson(integrandS, 0, cfg.R, cfg.IntegrationPoints)
		opp += 2 * math.Pi * deltaRing[j] * simpson(integrandO, 0, cfg.R, cfg.IntegrationPoints)
	}
	return succ, opp
}

// redistributeRings reweights ring populations by the radial profile,
// keeping the total at n. Ring j's weight is the profile-weighted area
// integral over its radial span.
func redistributeRings(cfg Config, rp geom.RingPartition, n float64, ringNodes []float64) {
	field := rp.FieldRadius()
	weights := make([]float64, cfg.P+1)
	total := 0.0
	for j := 1; j <= cfg.P; j++ {
		lo := cfg.R * float64(j-1)
		hi := cfg.R * float64(j)
		w := simpson(func(r float64) float64 {
			return cfg.Profile(r/field) * r
		}, lo, hi, cfg.IntegrationPoints)
		if w < 0 {
			w = 0
		}
		weights[j] = w
		total += w
	}
	if total <= 0 {
		return
	}
	for j := 1; j <= cfg.P; j++ {
		ringNodes[j] = n * weights[j] / total
	}
}

func snapshotRings(lastNew []float64, p int) []float64 {
	out := make([]float64, p)
	copy(out, lastNew[1:p+1])
	return out
}
