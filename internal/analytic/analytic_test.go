package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"sensornet/internal/buckets"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

func paperConfig(rho, p float64) Config {
	return Config{P: 5, S: 3, Rho: rho, Prob: p}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{P: 0, S: 3, Rho: 20, Prob: 0.1},
		{P: 5, S: 0, Rho: 20, Prob: 0.1},
		{P: 5, S: 3, Rho: 0, Prob: 0.1},
		{P: 5, S: 3, Rho: 20, Prob: -0.1},
		{P: 5, S: 3, Rho: 20, Prob: 1.1},
		{P: 5, S: 3, Rho: 20, Prob: 0.1, R: -1},
		{P: 5, S: 3, Rho: 20, Prob: 0.1, IntegrationPoints: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestRunProducesValidTimeline(t *testing.T) {
	res := mustRun(t, paperConfig(60, 0.2))
	if !res.Timeline.Valid() {
		t.Fatalf("invalid timeline: %+v", res.Timeline)
	}
}

func TestNodeCountMatchesDensity(t *testing.T) {
	res := mustRun(t, paperConfig(40, 0.1))
	if got, want := res.N, 40.0*25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("N = %v, want %v", got, want)
	}
}

func TestPhaseOneReachesFirstRing(t *testing.T) {
	res := mustRun(t, paperConfig(60, 0.5))
	// After phase 1, exactly ring 1 (ρ nodes) plus the source holds
	// the packet: reach = (1 + ρ)/N.
	want := (1 + 60.0) / res.N
	got := res.Timeline.ReachabilityAtPhase(1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("reach@1 = %v, want %v", got, want)
	}
	if got := res.Timeline.CumBroadcasts[1]; got != 1 {
		t.Fatalf("broadcasts@1 = %v, want 1 (the source)", got)
	}
}

func TestZeroProbabilityStopsAfterSource(t *testing.T) {
	res := mustRun(t, paperConfig(60, 0))
	tl := res.Timeline
	if got, want := tl.FinalReachability(), (1+60.0)/res.N; math.Abs(got-want) > 1e-9 {
		t.Fatalf("final reach = %v, want %v", got, want)
	}
	if tl.TotalBroadcasts() != 1 {
		t.Fatalf("total broadcasts = %v, want 1", tl.TotalBroadcasts())
	}
}

func TestFloodingEnergyScalesWithNodes(t *testing.T) {
	// With p = 1 every node that receives broadcasts once, so the total
	// broadcast count approaches the number of reached nodes.
	res := mustRun(t, paperConfig(60, 1))
	tl := res.Timeline
	reached := tl.FinalReachability() * res.N
	if math.Abs(tl.TotalBroadcasts()-reached) > 0.02*reached {
		t.Fatalf("flooding broadcasts %v vs reached %v", tl.TotalBroadcasts(), reached)
	}
}

func TestRingConservationProperty(t *testing.T) {
	// Cumulative receivers per ring never exceed the ring's node count.
	f := func(rhoRaw, pRaw uint8) bool {
		rho := 20 + float64(rhoRaw%120)
		p := 0.05 + float64(pRaw%95)/100
		res, err := Run(paperConfig(rho, p))
		if err != nil {
			return false
		}
		delta := rho / math.Pi
		cum := make([]float64, 6)
		for _, phase := range res.RingReceived {
			for j, v := range phase {
				if v < -1e-9 {
					return false
				}
				cum[j+1] += v
			}
		}
		for j := 1; j <= 5; j++ {
			nodes := delta * math.Pi * float64(2*j-1)
			if cum[j] > nodes*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReachabilityBellCurveAtHighDensity(t *testing.T) {
	// Paper Fig. 4(a): at ρ = 140 the reachability within 5 phases
	// peaks at a small p and collapses for flooding.
	rho := 140.0
	rLow := mustRun(t, paperConfig(rho, 0.01)).Timeline.ReachabilityAtPhase(5)
	rOpt := mustRun(t, paperConfig(rho, 0.1)).Timeline.ReachabilityAtPhase(5)
	rFlood := mustRun(t, paperConfig(rho, 1)).Timeline.ReachabilityAtPhase(5)
	if !(rOpt > rLow && rOpt > rFlood) {
		t.Fatalf("no bell curve: low %v, opt %v, flood %v", rLow, rOpt, rFlood)
	}
	// Fig. 4(b): flooding reaches roughly half of the optimum.
	if ratio := rFlood / rOpt; ratio > 0.75 || ratio < 0.3 {
		t.Fatalf("flooding/optimal reach ratio %v outside plausible band", ratio)
	}
}

func TestOptimalProbabilityDecreasesWithDensity(t *testing.T) {
	// Paper Fig. 4(b): the reachability-maximising p drops as ρ grows.
	best := func(rho float64) float64 {
		bestP, bestR := 0.0, -1.0
		for p := 0.02; p <= 1.0; p += 0.02 {
			r := mustRun(t, paperConfig(rho, p)).Timeline.ReachabilityAtPhase(5)
			if r > bestR {
				bestP, bestR = p, r
			}
		}
		return bestP
	}
	p20 := best(20)
	p140 := best(140)
	if p140 >= p20 {
		t.Fatalf("optimal p should decrease with density: p(20)=%v, p(140)=%v", p20, p140)
	}
	if p140 > 0.2 {
		t.Fatalf("optimal p at rho=140 = %v, expected small", p140)
	}
}

func TestLatencyDualityWithReachability(t *testing.T) {
	// §4.1: metrics 1 and 3 are duals. If reach@5 = R at some p, then
	// latency to R is 5 phases (up to interpolation error).
	res := mustRun(t, paperConfig(60, 0.2))
	r5 := res.Timeline.ReachabilityAtPhase(5)
	lat, ok := res.Timeline.LatencyToReach(r5)
	if !ok {
		t.Fatal("latency to achieved reachability must exist")
	}
	if math.Abs(lat-5) > 1e-6 {
		t.Fatalf("latency duality: lat=%v, want 5", lat)
	}
}

func TestEnergyOptimalProbabilityIsSmall(t *testing.T) {
	// Paper Fig. 6(b): the broadcast count needed for a fixed
	// reachability is minimised by p in (0, 0.1].
	rho := 60.0
	target := 0.72
	bestP, bestB := math.NaN(), math.Inf(1)
	for p := 0.01; p <= 1.0; p += 0.01 {
		res := mustRun(t, paperConfig(rho, p))
		b, ok := res.Timeline.BroadcastsToReach(target)
		if ok && b < bestB {
			bestP, bestB = p, b
		}
	}
	if math.IsNaN(bestP) {
		t.Fatal("no feasible p found")
	}
	if bestP > 0.12 {
		t.Fatalf("energy-optimal p = %v, expected <= ~0.1", bestP)
	}
	// Fig. 6: the optimal broadcast count stays small (paper: within
	// ~40 for its configuration).
	if bestB > 80 {
		t.Fatalf("optimal broadcast count %v unexpectedly large", bestB)
	}
}

func TestBudgetReachabilityFavoursSmallP(t *testing.T) {
	// Paper Fig. 7: with a budget of 35 broadcasts, small p wins big
	// over flooding.
	rho := 100.0
	small := mustRun(t, paperConfig(rho, 0.02)).Timeline.ReachabilityAtBudget(35)
	flood := mustRun(t, paperConfig(rho, 1)).Timeline.ReachabilityAtBudget(35)
	if small <= flood {
		t.Fatalf("budgeted reach: small-p %v should beat flooding %v", small, flood)
	}
	if flood > 0.25 {
		t.Fatalf("flooding under budget = %v, paper expects < ~0.2", flood)
	}
}

func TestCarrierSenseReducesReachability(t *testing.T) {
	// Appendix A: counting interferers in the sensing annulus can only
	// add collisions.
	plain := mustRun(t, paperConfig(60, 0.2)).Timeline.ReachabilityAtPhase(5)
	cfg := paperConfig(60, 0.2)
	cfg.CarrierSense = true
	cs := mustRun(t, cfg).Timeline.ReachabilityAtPhase(5)
	if cs > plain+1e-9 {
		t.Fatalf("carrier sense should not increase reach: %v > %v", cs, plain)
	}
	if cs <= 0 {
		t.Fatalf("carrier-sense run should still make progress, got %v", cs)
	}
}

func TestKModesBroadlyAgree(t *testing.T) {
	base := mustRun(t, paperConfig(60, 0.15)).Timeline.ReachabilityAtPhase(5)
	for _, mode := range []buckets.KMode{buckets.KPoisson, buckets.KRound} {
		cfg := paperConfig(60, 0.15)
		cfg.KMode = mode
		got := mustRun(t, cfg).Timeline.ReachabilityAtPhase(5)
		if math.Abs(got-base) > 0.12 {
			t.Errorf("mode %v diverges: %v vs linear %v", mode, got, base)
		}
	}
}

func TestIntegrationResolutionConverged(t *testing.T) {
	coarse := paperConfig(60, 0.2)
	coarse.IntegrationPoints = 32
	fine := paperConfig(60, 0.2)
	fine.IntegrationPoints = 256
	a := mustRun(t, coarse).Timeline.ReachabilityAtPhase(5)
	b := mustRun(t, fine).Timeline.ReachabilityAtPhase(5)
	if math.Abs(a-b) > 1e-3 {
		t.Fatalf("integration not converged: %v vs %v", a, b)
	}
}

func TestMaxPhasesCapRespected(t *testing.T) {
	cfg := paperConfig(60, 0.1)
	cfg.MaxPhases = 3
	res := mustRun(t, cfg)
	if res.Timeline.Duration() > 3 {
		t.Fatalf("duration %v exceeds cap", res.Timeline.Duration())
	}
}

func TestSuccessRateTracked(t *testing.T) {
	cfg := paperConfig(60, 1)
	cfg.TrackSuccessRate = true
	res := mustRun(t, cfg)
	if !(res.SuccessRate > 0 && res.SuccessRate < 1) {
		t.Fatalf("flooding success rate = %v, want in (0,1)", res.SuccessRate)
	}
	// Dense flooding collides heavily: the success rate must be small.
	if res.SuccessRate > 0.3 {
		t.Fatalf("flooding success rate %v unexpectedly high", res.SuccessRate)
	}
}

func TestSuccessRateDecreasesWithDensity(t *testing.T) {
	rate := func(rho float64) float64 {
		cfg := paperConfig(rho, 1)
		cfg.TrackSuccessRate = true
		return mustRun(t, cfg).SuccessRate
	}
	if !(rate(140) < rate(40)) {
		t.Fatalf("success rate should fall with density: %v vs %v", rate(140), rate(40))
	}
}

func TestSuccessRateNotTrackedByDefault(t *testing.T) {
	res := mustRun(t, paperConfig(60, 1))
	if res.SuccessRate != 0 {
		t.Fatalf("untracked success rate = %v, want 0", res.SuccessRate)
	}
}

func BenchmarkRunRho60(b *testing.B) {
	cfg := paperConfig(60, 0.2)
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunRho140CarrierSense(b *testing.B) {
	cfg := paperConfig(140, 0.1)
	cfg.CarrierSense = true
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBinomialMixMode(t *testing.T) {
	base := paperConfig(60, 0.15)
	mix := paperConfig(60, 0.15)
	mix.BinomialMix = true
	a := mustRun(t, base).Timeline.ReachabilityAtPhase(5)
	b := mustRun(t, mix).Timeline.ReachabilityAtPhase(5)
	if b <= 0 || b > 1 {
		t.Fatalf("binomial-mix reach %v implausible", b)
	}
	// The exact mixture accounts for sender-count variance, which can
	// only soften the mean-field estimate; both must stay in the same
	// regime.
	if math.Abs(a-b) > 0.2 {
		t.Fatalf("binomial mix %v far from mean-field %v", b, a)
	}
}

func TestBinomialMixIgnoredUnderCarrierSense(t *testing.T) {
	cs := paperConfig(60, 0.15)
	cs.CarrierSense = true
	csMix := cs
	csMix.BinomialMix = true
	a := mustRun(t, cs).Timeline.ReachabilityAtPhase(5)
	b := mustRun(t, csMix).Timeline.ReachabilityAtPhase(5)
	if a != b {
		t.Fatalf("BinomialMix should be inert under carrier sense: %v vs %v", a, b)
	}
}
