package analytic

import (
	"math"

	"sensornet/internal/metrics"
)

// CFMFlooding returns the closed-form performance of simple flooding
// under the Collision Free Model (§4): every transmission succeeds, so
// the packet advances one ring per phase, reaches every node, and costs
// exactly one broadcast per node.
//
// The returned timeline has the same shape as a CAM evaluation so the
// two models can be compared through the same metric extraction code.
func CFMFlooding(p int, rho float64) metrics.Timeline {
	if p < 1 || rho <= 0 {
		return metrics.Timeline{}
	}
	n := rho * float64(p) * float64(p)
	tl := metrics.Timeline{N: n}
	tl.Phases = append(tl.Phases, 0)
	tl.CumReach = append(tl.CumReach, 1/n)
	tl.CumBroadcasts = append(tl.CumBroadcasts, 0)
	reached := 1.0    // the source
	broadcasts := 0.0 // broadcasts performed so far
	pending := 1.0    // nodes that received last phase and broadcast next
	for phase := 1; phase <= p; phase++ {
		broadcasts += pending
		// All nodes in ring `phase` receive during this phase.
		fresh := rho * float64(2*phase-1)
		reached += fresh
		pending = fresh
		tl.Phases = append(tl.Phases, float64(phase))
		tl.CumReach = append(tl.CumReach, math.Min(1, reached/n))
		tl.CumBroadcasts = append(tl.CumBroadcasts, broadcasts)
	}
	// The outermost ring's nodes still broadcast once after receiving.
	broadcasts += pending
	tl.Phases = append(tl.Phases, float64(p+1))
	tl.CumReach = append(tl.CumReach, math.Min(1, reached/n))
	tl.CumBroadcasts = append(tl.CumBroadcasts, broadcasts)
	return tl
}
