package analytic

import (
	"math"
	"testing"
)

func TestCFMFloodingFullReachability(t *testing.T) {
	tl := CFMFlooding(5, 60)
	if !tl.Valid() {
		t.Fatal("CFM timeline invalid")
	}
	if tl.FinalReachability() != 1 {
		t.Fatalf("CFM flooding reach = %v, want 1", tl.FinalReachability())
	}
}

func TestCFMFloodingLatencyIsP(t *testing.T) {
	tl := CFMFlooding(5, 60)
	lat, ok := tl.LatencyToReach(1)
	if !ok {
		t.Fatal("full reachability must be achieved")
	}
	if lat > 5 {
		t.Fatalf("CFM flooding latency = %v, want <= P phases", lat)
	}
}

func TestCFMFloodingEnergyIsN(t *testing.T) {
	tl := CFMFlooding(5, 60)
	n := 60.0 * 25
	if math.Abs(tl.TotalBroadcasts()-(n+1)) > 1e-9 {
		t.Fatalf("CFM flooding broadcasts = %v, want N+1 = %v", tl.TotalBroadcasts(), n+1)
	}
}

func TestCFMFloodingDegenerate(t *testing.T) {
	if len(CFMFlooding(0, 60).Phases) != 0 {
		t.Fatal("P = 0 should give empty timeline")
	}
	if len(CFMFlooding(5, 0).Phases) != 0 {
		t.Fatal("rho = 0 should give empty timeline")
	}
}

func TestCFMBeatsCAMFloodingAtHighDensity(t *testing.T) {
	// The whole point of the paper: CFM's prediction for flooding is
	// wildly optimistic compared with the collision-aware analysis.
	cfm := CFMFlooding(5, 140)
	cam := mustRun(t, paperConfig(140, 1)).Timeline
	if cfm.ReachabilityAtPhase(5) != 1 {
		t.Fatalf("CFM reach@5 = %v, want 1", cfm.ReachabilityAtPhase(5))
	}
	if cam.ReachabilityAtPhase(5) > 0.7 {
		t.Fatalf("CAM flooding reach@5 = %v, expected heavy collision loss", cam.ReachabilityAtPhase(5))
	}
}
