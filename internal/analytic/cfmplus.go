package analytic

import (
	"errors"
	"math"

	"sensornet/internal/mathx"
	"sensornet/internal/metrics"
)

// CostModel is the refined CFM the paper proposes in its conclusion:
// transmissions still succeed atomically (preserving CFM's programming
// simplicity), but each reliable broadcast is priced by
// density-dependent cost functions t_f(ρ) and e_f(ρ) calibrated from
// measurements of a real collision-resolving substrate (see the
// reliable package). Time is in slots, energy in units of e_a.
type CostModel struct {
	Time   func(rho float64) float64
	Energy func(rho float64) float64
}

// FitCostModel least-squares-fits affine cost functions through
// measured (density, time, energy) samples — the calibration step that
// turns reliable-broadcast measurements into a refined CFM.
func FitCostModel(rhos, times, energies []float64) (CostModel, error) {
	mt, bt, ok1 := mathx.LinearFit(rhos, times)
	me, be, ok2 := mathx.LinearFit(rhos, energies)
	if !ok1 || !ok2 {
		return CostModel{}, errors.New("analytic: cost-model fit needs >= 2 distinct densities")
	}
	clampPos := func(v float64) float64 { return math.Max(1, v) }
	return CostModel{
		Time:   func(rho float64) float64 { return clampPos(mt*rho + bt) },
		Energy: func(rho float64) float64 { return clampPos(me*rho + be) },
	}, nil
}

// UnitCostModel is the naive CFM: every reliable broadcast costs one
// slot and one transmission regardless of density.
func UnitCostModel() CostModel {
	one := func(float64) float64 { return 1 }
	return CostModel{Time: one, Energy: one}
}

// CFMFloodingWithCosts prices simple flooding under the refined CFM:
// the wavefront still crosses one ring per round and reaches everyone
// (collision-free semantics), but each round takes t_f(ρ) slots and
// each node's broadcast costs e_f(ρ). The returned timeline's Phases
// axis is measured in slots divided by s·t_a — i.e. in the same
// "phases" unit as the CAM analyses with s slots per phase — so the two
// models can be read against each other.
func CFMFloodingWithCosts(p int, s int, rho float64, cm CostModel) metrics.Timeline {
	if p < 1 || s < 1 || rho <= 0 || cm.Time == nil || cm.Energy == nil {
		return metrics.Timeline{}
	}
	n := rho * float64(p) * float64(p)
	tf := cm.Time(rho)
	ef := cm.Energy(rho)
	phaseLen := float64(s)

	tl := metrics.Timeline{N: n}
	tl.Phases = append(tl.Phases, 0)
	tl.CumReach = append(tl.CumReach, 1/n)
	tl.CumBroadcasts = append(tl.CumBroadcasts, 0)
	reached := 1.0
	energy := 0.0
	pending := 1.0
	for round := 1; round <= p; round++ {
		energy += pending * ef
		fresh := rho * float64(2*round-1)
		reached += fresh
		pending = fresh
		tl.Phases = append(tl.Phases, float64(round)*tf/phaseLen)
		tl.CumReach = append(tl.CumReach, math.Min(1, reached/n))
		tl.CumBroadcasts = append(tl.CumBroadcasts, energy)
	}
	energy += pending * ef
	tl.Phases = append(tl.Phases, float64(p+1)*tf/phaseLen)
	tl.CumReach = append(tl.CumReach, math.Min(1, reached/n))
	tl.CumBroadcasts = append(tl.CumBroadcasts, energy)
	return tl
}
