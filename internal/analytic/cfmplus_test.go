package analytic

import (
	"math"
	"testing"
)

func TestFitCostModelRecoverLine(t *testing.T) {
	rhos := []float64{20, 60, 100, 140}
	times := make([]float64, len(rhos))
	energies := make([]float64, len(rhos))
	for i, r := range rhos {
		times[i] = 2.5*r + 10
		energies[i] = 2.4*r + 5
	}
	cm, err := FitCostModel(rhos, times, energies)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.Time(80); math.Abs(got-(2.5*80+10)) > 1e-6 {
		t.Fatalf("time fit at 80 = %v", got)
	}
	if got := cm.Energy(80); math.Abs(got-(2.4*80+5)) > 1e-6 {
		t.Fatalf("energy fit at 80 = %v", got)
	}
}

func TestFitCostModelClampsBelowOne(t *testing.T) {
	cm, err := FitCostModel([]float64{10, 20}, []float64{-5, -2}, []float64{-1, -1.5})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Time(15) < 1 || cm.Energy(15) < 1 {
		t.Fatal("costs must clamp at 1 (a transmission cannot be free)")
	}
}

func TestFitCostModelDegenerate(t *testing.T) {
	if _, err := FitCostModel([]float64{10}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample should error")
	}
}

func TestCFMFloodingWithUnitCostsMatchesNaive(t *testing.T) {
	refined := CFMFloodingWithCosts(5, 1, 60, UnitCostModel())
	naive := CFMFlooding(5, 60)
	if !refined.Valid() {
		t.Fatal("refined timeline invalid")
	}
	if math.Abs(refined.FinalReachability()-naive.FinalReachability()) > 1e-12 {
		t.Fatal("unit-cost refined CFM should match naive CFM reach")
	}
	if math.Abs(refined.TotalBroadcasts()-naive.TotalBroadcasts()) > 1e-9 {
		t.Fatalf("unit-cost energy %v vs naive %v",
			refined.TotalBroadcasts(), naive.TotalBroadcasts())
	}
}

func TestCFMPlusPredictsHonestLatency(t *testing.T) {
	// With calibrated costs, the refined CFM's latency prediction for
	// reliable flooding grows with density while the naive CFM's does
	// not — the paper's point about CFM hiding collision pressure.
	cm, err := FitCostModel(
		[]float64{20, 60, 100, 140},
		[]float64{53, 165, 289, 368}, // measured ACK t_f from costfn
		[]float64{52, 163, 288, 366},
	)
	if err != nil {
		t.Fatal(err)
	}
	latAt := func(rho float64) float64 {
		tl := CFMFloodingWithCosts(5, 3, rho, cm)
		lat, ok := tl.LatencyToReach(0.99)
		if !ok {
			t.Fatal("refined CFM must reach everyone")
		}
		return lat
	}
	if !(latAt(140) > 3*latAt(20)) {
		t.Fatalf("refined latency should grow strongly with density: %v vs %v",
			latAt(20), latAt(140))
	}
	naive := CFMFlooding(5, 140)
	nLat, _ := naive.LatencyToReach(0.99)
	if !(latAt(140) > 10*nLat) {
		t.Fatalf("honest costs should dwarf the naive prediction: %v vs %v",
			latAt(140), nLat)
	}
}

func TestCFMFloodingWithCostsDegenerate(t *testing.T) {
	if len(CFMFloodingWithCosts(0, 3, 60, UnitCostModel()).Phases) != 0 {
		t.Fatal("P=0 should give empty timeline")
	}
	if len(CFMFloodingWithCosts(5, 0, 60, UnitCostModel()).Phases) != 0 {
		t.Fatal("s=0 should give empty timeline")
	}
	if len(CFMFloodingWithCosts(5, 3, 0, UnitCostModel()).Phases) != 0 {
		t.Fatal("rho=0 should give empty timeline")
	}
	if len(CFMFloodingWithCosts(5, 3, 60, CostModel{}).Phases) != 0 {
		t.Fatal("nil cost functions should give empty timeline")
	}
}
