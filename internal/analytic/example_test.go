package analytic_test

import (
	"fmt"

	"sensornet/internal/analytic"
)

// One analytic evaluation gives the full execution timeline; the bell
// curve of Fig. 4 appears by sweeping Prob.
func ExampleRun() {
	res, err := analytic.Run(analytic.Config{P: 5, S: 3, Rho: 100, Prob: 0.13})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("N = %.0f nodes\n", res.N)
	fmt.Printf("reach@5 = %.2f\n", res.Timeline.ReachabilityAtPhase(5))
	// Output:
	// N = 2500 nodes
	// reach@5 = 0.84
}

// The tuning law p* = C/rho collapses Fig. 4(b) into one constant.
func ExampleCalibrateLaw() {
	law, err := analytic.CalibrateLaw(5, 3, 60, 5, 0.01)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("p*(20)  = %.2f\n", law.P(20))
	fmt.Printf("p*(140) = %.2f\n", law.P(140))
	// Output:
	// p*(20)  = 0.63
	// p*(140) = 0.09
}

// The naive CFM promises P-phase flooding at any density; pricing it
// with measured cost functions (the paper's §6 proposal) exposes the
// real cost of reliability.
func ExampleCFMFloodingWithCosts() {
	cm, err := analytic.FitCostModel(
		[]float64{20, 140},
		[]float64{53, 368}, // measured ACK/retransmit slot costs
		[]float64{52, 366},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	naive := analytic.CFMFlooding(5, 140)
	refined := analytic.CFMFloodingWithCosts(5, 3, 140, cm)
	nl, _ := naive.LatencyToReach(0.99)
	rl, _ := refined.LatencyToReach(0.99)
	fmt.Printf("naive latency:   %.0f phases\n", nl)
	fmt.Printf("refined latency: %.0f phases\n", rl)
	// Output:
	// naive latency:   5 phases
	// refined latency: 610 phases
}
