package analytic

import "sensornet/internal/mathx"

// simpson wraps the composite Simpson rule used throughout the ring
// recursion, isolating the quadrature choice in one place.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	return mathx.SimpsonN(f, a, b, n)
}
