package analytic

import (
	"errors"
	"math"
)

// OptimalProbabilityLaw captures an empirical regularity of the
// framework that the paper's Fig. 4(b) hints at: the latency-optimal
// broadcast probability scales almost exactly as p*(ρ) = C/ρ, with C
// depending only on the slot count and the latency budget. Calibrating
// C once (at a reference density) therefore yields a closed-form tuning
// rule for every density — the analytic twin of the Fig. 12
// success-rate trick, and the rationale behind the degree-adaptive
// protocol (each node privately sets p = C/degree).
type OptimalProbabilityLaw struct {
	// C is the calibrated constant: the target expected number of
	// broadcasters per neighbourhood.
	C float64
	// S and Latency record the calibration context.
	S       int
	Latency float64
}

// CalibrateLaw sweeps the broadcast probability at the reference
// density refRho and returns the law fitted through the located
// optimum. The sweep uses the given grid resolution (e.g. 0.01).
func CalibrateLaw(p, s int, refRho, latency, step float64) (OptimalProbabilityLaw, error) {
	if step <= 0 || step > 0.5 {
		return OptimalProbabilityLaw{}, errors.New("analytic: bad calibration step")
	}
	bestP, bestR := math.NaN(), -1.0
	for prob := step; prob <= 1+1e-9; prob += step {
		res, err := Run(Config{P: p, S: s, Rho: refRho, Prob: math.Min(prob, 1)})
		if err != nil {
			return OptimalProbabilityLaw{}, err
		}
		if r := res.Timeline.ReachabilityAtPhase(latency); r > bestR {
			bestP, bestR = math.Min(prob, 1), r
		}
	}
	if math.IsNaN(bestP) {
		return OptimalProbabilityLaw{}, errors.New("analytic: calibration found no optimum")
	}
	return OptimalProbabilityLaw{C: bestP * refRho, S: s, Latency: latency}, nil
}

// P returns the law's predicted latency-optimal broadcast probability
// at density rho, clamped to (0, 1].
func (l OptimalProbabilityLaw) P(rho float64) float64 {
	if rho <= 0 {
		return 1
	}
	p := l.C / rho
	if p > 1 {
		return 1
	}
	if p <= 0 {
		return 0
	}
	return p
}
