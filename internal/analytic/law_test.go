package analytic

import (
	"math"
	"testing"
)

func TestCalibrateLawConstant(t *testing.T) {
	law, err := CalibrateLaw(5, 3, 60, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Full-grid campaigns put p*·rho between ~12 and ~13.5 for the
	// paper configuration.
	if law.C < 10 || law.C > 16 {
		t.Fatalf("calibrated C = %v, expected ~12-13", law.C)
	}
}

func TestLawPredictsOptimaAcrossDensities(t *testing.T) {
	law, err := CalibrateLaw(5, 3, 60, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// At each density, the law's p must achieve nearly the reachability
	// of the true grid optimum.
	for _, rho := range []float64{20, 100, 140} {
		bestR := -1.0
		for p := 0.02; p <= 1; p += 0.02 {
			res, err := Run(Config{P: 5, S: 3, Rho: rho, Prob: p})
			if err != nil {
				t.Fatal(err)
			}
			if r := res.Timeline.ReachabilityAtPhase(5); r > bestR {
				bestR = r
			}
		}
		res, err := Run(Config{P: 5, S: 3, Rho: rho, Prob: law.P(rho)})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Timeline.ReachabilityAtPhase(5)
		if got < bestR-0.03 {
			t.Fatalf("rho=%v: law reach %v vs optimum %v", rho, got, bestR)
		}
	}
}

func TestLawClamping(t *testing.T) {
	law := OptimalProbabilityLaw{C: 12}
	if law.P(6) != 1 {
		t.Fatalf("law should clamp to 1 at low density, got %v", law.P(6))
	}
	if law.P(0) != 1 {
		t.Fatal("non-positive density should default to flooding")
	}
	if p := law.P(1200); math.Abs(p-0.01) > 1e-12 {
		t.Fatalf("law P(1200) = %v, want 0.01", p)
	}
	neg := OptimalProbabilityLaw{C: -1}
	if neg.P(10) != 0 {
		t.Fatal("negative constant should clamp to 0")
	}
}

func TestCalibrateLawBadStep(t *testing.T) {
	if _, err := CalibrateLaw(5, 3, 60, 5, 0); err == nil {
		t.Fatal("zero step should error")
	}
	if _, err := CalibrateLaw(5, 3, 60, 5, 0.9); err == nil {
		t.Fatal("oversized step should error")
	}
}

func TestCalibrateLawPropagatesErrors(t *testing.T) {
	if _, err := CalibrateLaw(0, 3, 60, 5, 0.1); err == nil {
		t.Fatal("invalid model should error")
	}
}
