package analytic

import (
	"math"
	"testing"
)

func TestProfileUniformMatchesDefault(t *testing.T) {
	// A constant profile must reproduce the homogeneous model exactly.
	base := mustRun(t, paperConfig(60, 0.2))
	cfg := paperConfig(60, 0.2)
	cfg.Profile = func(float64) float64 { return 7 } // any constant
	prof := mustRun(t, cfg)
	a := base.Timeline.ReachabilityAtPhase(5)
	b := prof.Timeline.ReachabilityAtPhase(5)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("constant profile changed the model: %v vs %v", a, b)
	}
}

func TestProfilePreservesTotalPopulation(t *testing.T) {
	cfg := paperConfig(60, 1)
	cfg.Profile = func(r float64) float64 { return 1 - 0.8*r }
	res := mustRun(t, cfg)
	// Flooding eventually reaches essentially everyone; the timeline's
	// final reach is bounded by 1 and the implied totals must match N.
	if res.N != 60.0*25 {
		t.Fatalf("N = %v, want 1500", res.N)
	}
	if res.Timeline.FinalReachability() > 1+1e-9 {
		t.Fatalf("reach exceeded 1: %v", res.Timeline.FinalReachability())
	}
}

func TestProfileHotspotSpeedsCentreSlowsEdge(t *testing.T) {
	// Centre-heavy fields deliver the inner rings faster (denser
	// relays) but starve the outer rings.
	uni := mustRun(t, paperConfig(60, 0.15))
	cfg := paperConfig(60, 0.15)
	cfg.Profile = func(r float64) float64 { return math.Max(0.05, 1-1.2*r) }
	hot := mustRun(t, cfg)

	cum := func(res *Result, ring int) (got float64) {
		for _, phase := range res.RingReceived {
			got += phase[ring]
		}
		return got
	}
	// Compare coverage fractions directly: reached/placed per ring 5.
	uniFrac := cum(uni, 4) / uni.RingNodes[4]
	hotPlaced := hot.RingNodes[4]
	hotFrac := cum(hot, 4) / hotPlaced
	if hotPlaced >= uni.RingNodes[4] {
		t.Fatalf("hotspot should thin the outer ring: %v vs %v", hotPlaced, uni.RingNodes[4])
	}
	if hotFrac > uniFrac+0.05 {
		t.Fatalf("hotspot outer coverage %v should not beat uniform %v", hotFrac, uniFrac)
	}
}

func TestProfileZeroIsIgnored(t *testing.T) {
	cfg := paperConfig(60, 0.2)
	cfg.Profile = func(float64) float64 { return 0 }
	res := mustRun(t, cfg)
	// Degenerate profiles keep the homogeneous populations.
	base := mustRun(t, paperConfig(60, 0.2))
	if math.Abs(res.Timeline.FinalReachability()-base.Timeline.FinalReachability()) > 1e-9 {
		t.Fatal("zero profile should fall back to uniform")
	}
}
