package analytic

import (
	"math"

	"sensornet/internal/buckets"
	"sensornet/internal/geom"
)

// geomTable caches the phase-invariant geometry of one Run. The Eq. (4)
// integrand evaluates rp.TransmissionAreas (and, under carrier sensing,
// rp.CarrierSenseAreas) at every Simpson node of every ring in every
// phase, yet those area splits depend only on (ring, node offset) — the
// lens-intersection trigonometry is identical across phases. The table
// evaluates the whole (ring j, Simpson node x_i) lattice once per Run;
// each phase's integral then reduces to a dot product of the cached
// area vectors with the fresh-receiver densities plus one μ evaluation
// per node.
//
// Summation follows mathx.SimpsonN exactly — same nodes (x_0 = 0,
// x_n = R exactly, interior x_i = i·h), same weight application order —
// so the table-driven path is bit-identical to the naive integrand it
// replaces (Config.NaiveIntegrand keeps the reference path; the
// equality tests pin the two together).
type geomTable struct {
	n int     // Simpson subintervals (even, >= 2)
	h float64 // node spacing R/n

	// Per ring j (row j-1), per node i in 0..n:
	radial [][]float64      // cfg.R·(j-1) + x_i, the integrand's radial factor
	tx     [][][3]float64   // rp.TransmissionAreas(j, x_i)
	cs     [][][5]float64   // rp.CarrierSenseAreas(j, x_i); nil unless carrier sensing
}

// simpsonIntervals mirrors mathx.SimpsonN's normalisation of the
// subinterval count, so table nodes land exactly on the quadrature's.
func simpsonIntervals(n int) int {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	return n
}

// newGeomTable precomputes the geometry lattice for one configuration.
func newGeomTable(cfg Config, rp geom.RingPartition) *geomTable {
	n := simpsonIntervals(cfg.IntegrationPoints)
	t := &geomTable{
		n:      n,
		h:      cfg.R / float64(n),
		radial: make([][]float64, cfg.P),
		tx:     make([][][3]float64, cfg.P),
	}
	if cfg.CarrierSense {
		t.cs = make([][][5]float64, cfg.P)
	}
	for j := 1; j <= cfg.P; j++ {
		radial := make([]float64, n+1)
		tx := make([][3]float64, n+1)
		var cs [][5]float64
		if cfg.CarrierSense {
			cs = make([][5]float64, n+1)
		}
		for i := 0; i <= n; i++ {
			x := t.node(i, cfg.R)
			radial[i] = cfg.R*float64(j-1) + x
			tx[i] = rp.TransmissionAreas(j, x)
			if cs != nil {
				cs[i] = rp.CarrierSenseAreas(j, x)
			}
		}
		t.radial[j-1] = radial
		t.tx[j-1] = tx
		if cs != nil {
			t.cs[j-1] = cs
		}
	}
	return t
}

// node returns Simpson node i exactly as SimpsonN visits it: the
// endpoints are the exact interval bounds, interior nodes are a + i·h.
func (t *geomTable) node(i int, r float64) float64 {
	switch i {
	case 0:
		return 0
	case t.n:
		return r
	default:
		return float64(i) * t.h
	}
}

// freshAt computes g(x_i) for a node in ring j: the dot product of the
// cached transmission-area split with the fresh-receiver densities, in
// the same accumulation order as expectedFresh.
func (t *geomTable) freshAt(p int, fresh []float64, j, i int) float64 {
	a := &t.tx[j-1][i]
	g := 0.0
	for d := 0; d < 3; d++ {
		k := j - 1 + d
		if k >= 1 && k <= p {
			g += fresh[k] * a[d]
		}
	}
	return g
}

// freshAnnulusAt computes h(x_i) from the cached carrier-sense annulus
// split, mirroring expectedFreshAnnulus.
func (t *geomTable) freshAnnulusAt(p int, fresh []float64, j, i int) float64 {
	b := &t.cs[j-1][i]
	h := 0.0
	for d := 0; d < 5; d++ {
		k := j - 2 + d
		if k >= 1 && k <= p {
			h += fresh[k] * b[d]
		}
	}
	return h
}

// successAt evaluates the Eq. (4) success probability at lattice node
// (j, i) for the current phase's fresh densities.
func (t *geomTable) successAt(cfg *Config, fresh []float64, j, i int) float64 {
	g := t.freshAt(cfg.P, fresh, j, i)
	switch {
	case cfg.CarrierSense:
		h := t.freshAnnulusAt(cfg.P, fresh, j, i)
		return buckets.MuCSReal(g*cfg.Prob, h*cfg.Prob, cfg.S, cfg.KMode)
	case cfg.BinomialMix:
		return buckets.MuBinomial(int(math.Round(g)), cfg.Prob, cfg.S)
	default:
		return buckets.MuReal(g*cfg.Prob, cfg.S, cfg.KMode)
	}
}

// phaseIntegral evaluates ring j's Eq. (4) integral for one phase from
// the cached lattice, with SimpsonN's exact accumulation order.
func (t *geomTable) phaseIntegral(cfg *Config, fresh []float64, j int) float64 {
	radial := t.radial[j-1]
	sum := radial[0]*t.successAt(cfg, fresh, j, 0) +
		radial[t.n]*t.successAt(cfg, fresh, j, t.n)
	for i := 1; i < t.n; i++ {
		v := radial[i] * t.successAt(cfg, fresh, j, i)
		if i%2 == 1 {
			sum += 4 * v
		} else {
			sum += 2 * v
		}
	}
	return sum * t.h / 3
}

// successRate accumulates one phase of the Fig. 12 success-rate model
// from the cached lattice: per ring, the singleton-slot and opportunity
// integrals share the g(x_i) dot products. Each integral reproduces
// successRateContribution's SimpsonN evaluation bit for bit.
func (t *geomTable) successRate(cfg *Config, deltaRing, fresh []float64) (succ, opp float64) {
	for j := 1; j <= cfg.P; j++ {
		radial := t.radial[j-1]
		kv := func(i int) float64 { return t.freshAt(cfg.P, fresh, j, i) * cfg.Prob }
		k0, kn := kv(0), kv(t.n)
		sumS := radial[0]*buckets.ExpectedSingletons(k0, cfg.S) +
			radial[t.n]*buckets.ExpectedSingletons(kn, cfg.S)
		sumO := radial[0]*k0 + radial[t.n]*kn
		for i := 1; i < t.n; i++ {
			k := kv(i)
			vS := radial[i] * buckets.ExpectedSingletons(k, cfg.S)
			vO := radial[i] * k
			if i%2 == 1 {
				sumS += 4 * vS
				sumO += 4 * vO
			} else {
				sumS += 2 * vS
				sumO += 2 * vO
			}
		}
		succ += 2 * math.Pi * deltaRing[j] * (sumS * t.h / 3)
		opp += 2 * math.Pi * deltaRing[j] * (sumO * t.h / 3)
	}
	return succ, opp
}
