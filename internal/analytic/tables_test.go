package analytic

import (
	"math"
	"testing"
)

// tableEqualityTol is the pinned bound between the table-driven and
// naive evaluations. The table path replays SimpsonN's exact node set
// and accumulation order over precomputed area splits, so in practice
// the two paths agree bit for bit; 1e-12 is the contract the tests
// enforce.
const tableEqualityTol = 1e-12

// tableEqualityConfigs spans the model variants whose integrands the
// geometry table must reproduce: the plain Eq. (4) recursion, the
// Appendix A carrier-sensing variant, the Binomial contention mix, the
// success-rate tracking of Fig. 12, a radially heterogeneous field,
// and off-default R / integration grids.
func tableEqualityConfigs() map[string]Config {
	hotspot := func(r float64) float64 { return 1.5 - r }
	return map[string]Config{
		"plain":        {P: 5, S: 3, Rho: 80, Prob: 0.2},
		"flooding":     {P: 5, S: 3, Rho: 140, Prob: 1},
		"carrierSense": {P: 5, S: 3, Rho: 80, Prob: 0.15, CarrierSense: true},
		"binomialMix":  {P: 5, S: 3, Rho: 60, Prob: 0.3, BinomialMix: true},
		"successRate":  {P: 5, S: 3, Rho: 100, Prob: 1, TrackSuccessRate: true},
		"profile":      {P: 4, S: 3, Rho: 60, Prob: 0.25, Profile: hotspot},
		"csSuccess": {P: 5, S: 3, Rho: 80, Prob: 0.4, CarrierSense: true,
			TrackSuccessRate: true},
		"oddGrid":  {P: 5, S: 3, Rho: 80, Prob: 0.2, IntegrationPoints: 33},
		"scaledR":  {P: 5, S: 2, Rho: 40, Prob: 0.5, R: 2.5},
		"tinyGrid": {P: 3, S: 3, Rho: 30, Prob: 0.6, IntegrationPoints: 1},
	}
}

func diffWithin(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: NaN mismatch: table %v, naive %v", label, got, want)
	}
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: table %v vs naive %v (diff %g > %g)",
			label, got, want, math.Abs(got-want), tol)
	}
}

// TestGeomTableMatchesNaiveIntegrand pins the table-driven Eq. (4)
// evaluation to the naive per-phase integrand across every model
// variant: identical phase counts and every timeline / ring-recursion /
// success-rate value within 1e-12.
func TestGeomTableMatchesNaiveIntegrand(t *testing.T) {
	for name, cfg := range tableEqualityConfigs() {
		t.Run(name, func(t *testing.T) {
			table, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			naiveCfg := cfg
			naiveCfg.NaiveIntegrand = true
			naive, err := Run(naiveCfg)
			if err != nil {
				t.Fatal(err)
			}

			if table.Phases != naive.Phases {
				t.Fatalf("phase count: table %d, naive %d", table.Phases, naive.Phases)
			}
			diffWithin(t, "N", table.N, naive.N, tableEqualityTol)
			diffWithin(t, "SuccessRate", table.SuccessRate, naive.SuccessRate, tableEqualityTol)

			if len(table.Timeline.Phases) != len(naive.Timeline.Phases) {
				t.Fatalf("timeline length: table %d, naive %d",
					len(table.Timeline.Phases), len(naive.Timeline.Phases))
			}
			for i := range table.Timeline.Phases {
				diffWithin(t, "CumReach", table.Timeline.CumReach[i],
					naive.Timeline.CumReach[i], tableEqualityTol)
				diffWithin(t, "CumBroadcasts", table.Timeline.CumBroadcasts[i],
					naive.Timeline.CumBroadcasts[i], tableEqualityTol)
			}

			if len(table.RingReceived) != len(naive.RingReceived) {
				t.Fatalf("RingReceived length: table %d, naive %d",
					len(table.RingReceived), len(naive.RingReceived))
			}
			for i := range table.RingReceived {
				for j := range table.RingReceived[i] {
					diffWithin(t, "RingReceived", table.RingReceived[i][j],
						naive.RingReceived[i][j], tableEqualityTol)
				}
			}
		})
	}
}

// TestGeomTableBitIdentical asserts the stronger property the table
// construction is designed for: because it replays SimpsonN's exact
// nodes and weight order, the fast path is not merely close but
// bit-identical on the plain and carrier-sense variants.
func TestGeomTableBitIdentical(t *testing.T) {
	for _, cfg := range []Config{
		{P: 5, S: 3, Rho: 80, Prob: 0.2},
		{P: 5, S: 3, Rho: 120, Prob: 0.1, CarrierSense: true},
	} {
		table, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		naiveCfg := cfg
		naiveCfg.NaiveIntegrand = true
		naive, err := Run(naiveCfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range table.Timeline.CumReach {
			if table.Timeline.CumReach[i] != naive.Timeline.CumReach[i] {
				t.Fatalf("CumReach[%d]: table %x, naive %x", i,
					table.Timeline.CumReach[i], naive.Timeline.CumReach[i])
			}
		}
	}
}
