// Package bench loads and compares the BENCH_<n>.json perf-trajectory
// snapshots written by scripts/bench.sh, backing the bench regression
// gate in scripts/check.sh (cmd/benchgate). The gate compares a fresh
// smoke run against the latest committed snapshot: every benchmark in
// the baseline must still exist, and no metric may exceed its
// tolerance ratio.
//
// Tolerances are deliberately asymmetric across metrics. allocs/op is
// nearly deterministic, so it gets the tightest ratio — an allocation
// regression in a hot loop is exactly the class of drift the gate
// exists to catch. bytes/op wobbles with map growth and pooling, so
// it gets some slack. ns/op at -benchtime=1x is dominated by warmup
// noise on a shared machine, so it only catches order-of-magnitude
// blowups; the committed snapshots (run at 5x) are the place to read
// real timing trends.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Result is one benchmark's measurement in a snapshot.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// LatencyResult is one closed-loop load run (cmd/loadgen) in a
// snapshot: end-to-end serving latency percentiles in milliseconds
// plus the error rate, keyed by the run's configured name.
type LatencyResult struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	ErrorRate float64 `json:"error_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// Snapshot is the parsed form of one BENCH_<n>.json file.
type Snapshot struct {
	Date       string          `json:"date"`
	Benchtime  string          `json:"benchtime"`
	Benchmarks []Result        `json:"benchmarks"`
	Latency    []LatencyResult `json:"latency,omitempty"`
}

// Load reads and parses a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: %s holds no benchmarks", path)
	}
	return &s, nil
}

// Tolerance holds the per-metric regression ratios: current may be at
// most base*ratio before the gate fails. The latency fields gate the
// loadgen percentiles — ratios like Ns (wall-clock on a shared
// machine is noisy, so they only catch blowups) — and ErrorRate is an
// absolute allowance on top of the baseline rate, not a ratio, since
// healthy baselines are exactly zero.
type Tolerance struct {
	Ns     float64
	Bytes  float64
	Allocs float64

	P50       float64
	P99       float64
	ErrorRate float64
}

// DefaultTolerance is the check.sh gate configuration; see the package
// comment for why the ratios differ.
var DefaultTolerance = Tolerance{
	Ns: 4.0, Bytes: 1.6, Allocs: 1.35,
	P50: 6.0, P99: 6.0, ErrorRate: 0.02,
}

// Violation is one metric of one benchmark exceeding its tolerance,
// or a baseline benchmark missing from the current run.
type Violation struct {
	Bench   string
	Metric  string // "ns/op", "B/op", "allocs/op", or "missing"
	Base    float64
	Current float64
	Limit   float64 // tolerance ratio applied (0 for "missing")
}

func (v Violation) String() string {
	if v.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but missing from the current run", v.Bench)
	}
	if v.Metric == "error_rate" {
		return fmt.Sprintf("%s: error_rate rose %.3f -> %.3f (allowance +%.3f)",
			v.Bench, v.Base, v.Current, v.Limit)
	}
	return fmt.Sprintf("%s: %s regressed %.4g -> %.4g (%.2fx, limit %.2fx)",
		v.Bench, v.Metric, v.Base, v.Current, v.Current/v.Base, v.Limit)
}

// Compare gates current against baseline. Benchmarks only in current
// are ignored (new coverage is welcome); benchmarks only in baseline
// are violations (losing coverage silently would hollow out the gate).
// A zero baseline metric is skipped — there is no ratio to take, and
// the snapshots' hot loops all allocate and take time anyway.
func Compare(baseline, current *Snapshot, tol Tolerance) []Violation {
	cur := map[string]Result{}
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	var out []Violation
	base := append([]Result(nil), baseline.Benchmarks...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	for _, b := range base {
		c, ok := cur[b.Name]
		if !ok {
			out = append(out, Violation{Bench: b.Name, Metric: "missing"})
			continue
		}
		check := func(metric string, baseV, curV, limit float64) {
			if baseV > 0 && curV > baseV*limit {
				out = append(out, Violation{
					Bench: b.Name, Metric: metric,
					Base: baseV, Current: curV, Limit: limit,
				})
			}
		}
		check("ns/op", b.NsPerOp, c.NsPerOp, tol.Ns)
		check("B/op", b.BytesPerOp, c.BytesPerOp, tol.Bytes)
		check("allocs/op", b.AllocsPerOp, c.AllocsPerOp, tol.Allocs)
	}
	out = append(out, compareLatency(baseline, current, tol)...)
	return out
}

// compareLatency gates the loadgen runs the same way Compare gates the
// micro-benchmarks: every baseline run must still exist, percentiles
// are ratio-bounded, and the error rate may exceed the baseline's by
// at most the absolute ErrorRate allowance.
func compareLatency(baseline, current *Snapshot, tol Tolerance) []Violation {
	cur := map[string]LatencyResult{}
	for _, r := range current.Latency {
		cur[r.Name] = r
	}
	var out []Violation
	base := append([]LatencyResult(nil), baseline.Latency...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	for _, b := range base {
		c, ok := cur[b.Name]
		if !ok {
			out = append(out, Violation{Bench: b.Name, Metric: "missing"})
			continue
		}
		if b.P50Ms > 0 && c.P50Ms > b.P50Ms*tol.P50 {
			out = append(out, Violation{Bench: b.Name, Metric: "p50_ms",
				Base: b.P50Ms, Current: c.P50Ms, Limit: tol.P50})
		}
		if b.P99Ms > 0 && c.P99Ms > b.P99Ms*tol.P99 {
			out = append(out, Violation{Bench: b.Name, Metric: "p99_ms",
				Base: b.P99Ms, Current: c.P99Ms, Limit: tol.P99})
		}
		if c.ErrorRate > b.ErrorRate+tol.ErrorRate {
			out = append(out, Violation{Bench: b.Name, Metric: "error_rate",
				Base: b.ErrorRate, Current: c.ErrorRate, Limit: tol.ErrorRate})
		}
	}
	return out
}
