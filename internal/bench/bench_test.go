package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(results ...Result) *Snapshot {
	return &Snapshot{Date: "2026-08-07T00:00:00Z", Benchtime: "1x", Benchmarks: results}
}

func TestCompareClean(t *testing.T) {
	base := snap(
		Result{Name: "A", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 10},
		Result{Name: "B", NsPerOp: 2000, BytesPerOp: 800, AllocsPerOp: 20},
	)
	cur := snap(
		Result{Name: "A", NsPerOp: 3900, BytesPerOp: 790, AllocsPerOp: 13},
		Result{Name: "B", NsPerOp: 1500, BytesPerOp: 800, AllocsPerOp: 20},
		Result{Name: "New", NsPerOp: 9e9, BytesPerOp: 9e9, AllocsPerOp: 9e9},
	)
	if v := Compare(base, cur, DefaultTolerance); len(v) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", v)
	}
}

func TestCompareRegressions(t *testing.T) {
	base := snap(Result{Name: "A", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 100})
	cur := snap(Result{Name: "A", NsPerOp: 5000, BytesPerOp: 801, AllocsPerOp: 136})
	v := Compare(base, cur, DefaultTolerance)
	if len(v) != 3 {
		t.Fatalf("want all three metrics flagged, got %v", v)
	}
	for i, metric := range []string{"ns/op", "B/op", "allocs/op"} {
		if v[i].Metric != metric {
			t.Fatalf("violation %d is %q, want %q", i, v[i].Metric, metric)
		}
		if !strings.Contains(v[i].String(), metric) {
			t.Fatalf("violation string %q does not name its metric", v[i].String())
		}
	}
}

func TestCompareMissingBench(t *testing.T) {
	base := snap(
		Result{Name: "A", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1},
		Result{Name: "Gone", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1},
	)
	cur := snap(Result{Name: "A", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1})
	v := Compare(base, cur, DefaultTolerance)
	if len(v) != 1 || v[0].Metric != "missing" || v[0].Bench != "Gone" {
		t.Fatalf("want one missing-bench violation for Gone, got %v", v)
	}
}

func TestCompareZeroBaselineSkipped(t *testing.T) {
	base := snap(Result{Name: "A", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 0})
	cur := snap(Result{Name: "A", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 7})
	if v := Compare(base, cur, DefaultTolerance); len(v) != 0 {
		t.Fatalf("zero-baseline metrics must be skipped, got %v", v)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	content := `{
  "date": "2026-08-07T00:00:00Z",
  "benchtime": "1x",
  "benchmarks": [
    {"name": "SimulatorDenseFlooding", "ns_per_op": 18040588, "bytes_per_op": 2581744, "allocs_per_op": 118}
  ]
}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "SimulatorDenseFlooding" ||
		s.Benchmarks[0].AllocsPerOp != 118 {
		t.Fatalf("round-trip mangled the snapshot: %+v", s)
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("an empty snapshot must not load: the gate would silently pass")
	}
}

func latSnap(results ...LatencyResult) *Snapshot {
	s := snap(Result{Name: "A", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1})
	s.Latency = results
	return s
}

func TestCompareLatencyClean(t *testing.T) {
	base := latSnap(LatencyResult{Name: "serve-analytic", Requests: 300,
		ErrorRate: 0, P50Ms: 0.5, P90Ms: 1.0, P99Ms: 2.0, MaxMs: 5})
	cur := latSnap(LatencyResult{Name: "serve-analytic", Requests: 310,
		ErrorRate: 0.01, P50Ms: 2.9, P90Ms: 6, P99Ms: 11.9, MaxMs: 40})
	if v := Compare(base, cur, DefaultTolerance); len(v) != 0 {
		t.Fatalf("within-tolerance latency run flagged: %v", v)
	}
}

func TestCompareLatencyRegressions(t *testing.T) {
	base := latSnap(LatencyResult{Name: "serve-analytic",
		ErrorRate: 0, P50Ms: 0.5, P99Ms: 2.0})
	cur := latSnap(LatencyResult{Name: "serve-analytic",
		ErrorRate: 0.5, P50Ms: 3.1, P99Ms: 12.5})
	v := Compare(base, cur, DefaultTolerance)
	if len(v) != 3 {
		t.Fatalf("want p50, p99, and error_rate flagged, got %v", v)
	}
	for i, metric := range []string{"p50_ms", "p99_ms", "error_rate"} {
		if v[i].Metric != metric {
			t.Fatalf("violation %d is %q, want %q", i, v[i].Metric, metric)
		}
		if !strings.Contains(v[i].String(), metric) {
			t.Fatalf("violation string %q does not name its metric", v[i].String())
		}
	}
}

func TestCompareLatencyMissingRun(t *testing.T) {
	base := latSnap(LatencyResult{Name: "serve-analytic", P50Ms: 1, P99Ms: 1})
	cur := latSnap()
	v := Compare(base, cur, DefaultTolerance)
	if len(v) != 1 || v[0].Metric != "missing" || v[0].Bench != "serve-analytic" {
		t.Fatalf("want one missing-run violation, got %v", v)
	}
}

func TestCompareNoLatencyBackCompat(t *testing.T) {
	// Old snapshots carry no latency section: the gate must not invent
	// violations for them.
	base := snap(Result{Name: "A", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1})
	cur := latSnap(LatencyResult{Name: "new-run", P50Ms: 99, P99Ms: 99, ErrorRate: 1})
	if v := Compare(base, cur, DefaultTolerance); len(v) != 0 {
		t.Fatalf("latency-free baseline produced violations: %v", v)
	}
}
