package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(results ...Result) *Snapshot {
	return &Snapshot{Date: "2026-08-07T00:00:00Z", Benchtime: "1x", Benchmarks: results}
}

func TestCompareClean(t *testing.T) {
	base := snap(
		Result{Name: "A", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 10},
		Result{Name: "B", NsPerOp: 2000, BytesPerOp: 800, AllocsPerOp: 20},
	)
	cur := snap(
		Result{Name: "A", NsPerOp: 3900, BytesPerOp: 790, AllocsPerOp: 13},
		Result{Name: "B", NsPerOp: 1500, BytesPerOp: 800, AllocsPerOp: 20},
		Result{Name: "New", NsPerOp: 9e9, BytesPerOp: 9e9, AllocsPerOp: 9e9},
	)
	if v := Compare(base, cur, DefaultTolerance); len(v) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", v)
	}
}

func TestCompareRegressions(t *testing.T) {
	base := snap(Result{Name: "A", NsPerOp: 1000, BytesPerOp: 500, AllocsPerOp: 100})
	cur := snap(Result{Name: "A", NsPerOp: 5000, BytesPerOp: 801, AllocsPerOp: 136})
	v := Compare(base, cur, DefaultTolerance)
	if len(v) != 3 {
		t.Fatalf("want all three metrics flagged, got %v", v)
	}
	for i, metric := range []string{"ns/op", "B/op", "allocs/op"} {
		if v[i].Metric != metric {
			t.Fatalf("violation %d is %q, want %q", i, v[i].Metric, metric)
		}
		if !strings.Contains(v[i].String(), metric) {
			t.Fatalf("violation string %q does not name its metric", v[i].String())
		}
	}
}

func TestCompareMissingBench(t *testing.T) {
	base := snap(
		Result{Name: "A", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1},
		Result{Name: "Gone", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1},
	)
	cur := snap(Result{Name: "A", NsPerOp: 1, BytesPerOp: 1, AllocsPerOp: 1})
	v := Compare(base, cur, DefaultTolerance)
	if len(v) != 1 || v[0].Metric != "missing" || v[0].Bench != "Gone" {
		t.Fatalf("want one missing-bench violation for Gone, got %v", v)
	}
}

func TestCompareZeroBaselineSkipped(t *testing.T) {
	base := snap(Result{Name: "A", NsPerOp: 1000, BytesPerOp: 0, AllocsPerOp: 0})
	cur := snap(Result{Name: "A", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 7})
	if v := Compare(base, cur, DefaultTolerance); len(v) != 0 {
		t.Fatalf("zero-baseline metrics must be skipped, got %v", v)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	content := `{
  "date": "2026-08-07T00:00:00Z",
  "benchtime": "1x",
  "benchmarks": [
    {"name": "SimulatorDenseFlooding", "ns_per_op": 18040588, "bytes_per_op": 2581744, "allocs_per_op": 118}
  ]
}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "SimulatorDenseFlooding" ||
		s.Benchmarks[0].AllocsPerOp != 118 {
		t.Fatalf("round-trip mangled the snapshot: %+v", s)
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("an empty snapshot must not load: the gate would silently pass")
	}
}
