// Package buckets computes the slot-contention success probabilities at
// the heart of the paper's analytical framework.
//
// PB_CAM backoff drops each contending broadcast into one of s uniformly
// random time slots ("buckets"). A receiver decodes a packet iff some
// slot carries exactly one transmission within its range (Assumption 6),
// and — under the Appendix A carrier-sensing extension — additionally no
// transmission from the sensing annulus in that slot.
//
// The package exposes the paper's recursive definition (Eq. 2 and
// Eq. A.1) as a reference oracle, and an exact O(s) inclusion–exclusion
// closed form used in hot loops, together with several real-valued
// extensions for non-integer expected sender counts.
package buckets

import (
	"math"

	"sensornet/internal/mathx"
)

// Mu returns μ(K, s): the probability that, when K identical items are
// dropped independently and uniformly into s buckets, at least one
// bucket holds exactly one item. It is computed with the exact
// inclusion–exclusion identity
//
//	μ(K, s) = Σ_{t=1}^{min(K,s)} (-1)^{t+1} C(s,t) · K!/(K-t)! · (s-t)^{K-t} / s^K,
//
// summing over the number t of buckets simultaneously forced to hold
// exactly one item. Degenerate arguments (K <= 0 or s <= 0) yield 0.
func Mu(k, s int) float64 {
	if k <= 0 || s <= 0 {
		return 0
	}
	if k == 1 {
		return 1
	}
	logS := math.Log(float64(s))
	tMax := min(k, s)
	sum := 0.0
	for t := 1; t <= tMax; t++ {
		var logTerm float64
		if s == t {
			// (s-t)^(K-t) is 0^(K-t): nonzero only when K == t.
			if k != t {
				continue
			}
			logTerm = mathx.LogBinomial(s, t) + mathx.LogFallingFactorial(k, t) -
				float64(k)*logS
		} else {
			logTerm = mathx.LogBinomial(s, t) + mathx.LogFallingFactorial(k, t) +
				float64(k-t)*math.Log(float64(s-t)) - float64(k)*logS
		}
		term := math.Exp(logTerm)
		if t%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
	}
	return mathx.Clamp(sum, 0, 1)
}

// MuRecursive evaluates μ(K, s) with the paper's recursion (Eq. 2),
// conditioning on the number of items landing in the first bucket. It is
// exponentially slower than Mu and exists as the property-test oracle
// for it. Results are memoised per call tree.
func MuRecursive(k, s int) float64 {
	memo := make(map[[2]int]float64)
	return muRec(k, s, memo)
}

func muRec(k, s int, memo map[[2]int]float64) float64 {
	if k <= 0 || s <= 0 {
		return 0
	}
	if k == 1 {
		return 1
	}
	if s == 1 {
		return 0 // k >= 2 items all share the single bucket
	}
	key := [2]int{k, s}
	if v, ok := memo[key]; ok {
		return v
	}
	// Condition on i = number of items in the first bucket.
	// i == 1 succeeds outright; otherwise recurse on the remaining
	// k-i items and s-1 buckets.
	logInv := -math.Log(float64(s))
	logRest := math.Log(float64(s-1)) - math.Log(float64(s))
	sum := 0.0
	for i := 0; i <= k; i++ {
		p := math.Exp(mathx.LogBinomial(k, i) + float64(i)*logInv + float64(k-i)*logRest)
		if i == 1 {
			sum += p
		} else {
			sum += p * muRec(k-i, s-1, memo)
		}
	}
	memo[key] = sum
	return sum
}

// KMode selects how real-valued expected sender counts are mapped onto
// the integer-argument μ.
type KMode int

const (
	// KLinear interpolates μ linearly between ⌊K⌋ and ⌈K⌉ (default:
	// the smoothest faithful reading of the paper's μ(g(x)·p, s)).
	KLinear KMode = iota
	// KPoisson treats the sender count as Poisson with mean K and
	// mixes μ over it.
	KPoisson
	// KRound evaluates μ at the nearest integer.
	KRound
)

// String implements fmt.Stringer for diagnostics and bench labels.
func (m KMode) String() string {
	switch m {
	case KLinear:
		return "linear"
	case KPoisson:
		return "poisson"
	case KRound:
		return "round"
	default:
		return "unknown"
	}
}

// poissonTailCut bounds the Poisson mixture truncation error.
const poissonTailCut = 1e-12

// MuReal evaluates μ at a real-valued expected item count k using the
// chosen mode. Negative k yields 0.
func MuReal(k float64, s int, mode KMode) float64 {
	if k <= 0 || s <= 0 {
		return 0
	}
	switch mode {
	case KPoisson:
		return muPoisson(k, s)
	case KRound:
		return Mu(int(math.Round(k)), s)
	default:
		lo := int(math.Floor(k))
		hi := lo + 1
		t := k - float64(lo)
		if t == 0 {
			return Mu(lo, s)
		}
		return mathx.Lerp(Mu(lo, s), Mu(hi, s), t)
	}
}

func muPoisson(lambda float64, s int) float64 {
	// Mix over the Poisson sender count; truncate once the remaining
	// tail mass cannot move the result by poissonTailCut.
	sum, mass := 0.0, 0.0
	limit := int(lambda + 12*math.Sqrt(lambda) + 20)
	for k := 0; k <= limit; k++ {
		p := mathx.PoissonPMF(lambda, k)
		mass += p
		if k >= 1 {
			sum += p * Mu(k, s)
		}
		if mass > 1-poissonTailCut && k > int(lambda) {
			break
		}
	}
	return mathx.Clamp(sum, 0, 1)
}

// MuBinomial mixes μ over a Binomial(n, p) sender count: the exact law
// of the number of broadcasters among n candidate senders that each
// transmit with probability p. It is the most literal reading of PB_CAM
// contention and is exposed for ablation against MuReal.
func MuBinomial(n int, p float64, s int) float64 {
	if n <= 0 || p <= 0 || s <= 0 {
		return 0
	}
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += mathx.BinomialPMF(n, p, k) * Mu(k, s)
	}
	return mathx.Clamp(sum, 0, 1)
}

// ExpectedSingletons returns the expected number of buckets holding
// exactly one item when k items (real-valued, treated as the binomial
// mean) are dropped into s buckets: k · ((s-1)/s)^(k-1). This drives the
// flooding success-rate model behind Fig. 12.
func ExpectedSingletons(k float64, s int) float64 {
	if k <= 0 || s <= 0 {
		return 0
	}
	if s == 1 {
		if k <= 1 {
			return k
		}
		return 0
	}
	return k * math.Pow(float64(s-1)/float64(s), k-1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
