package buckets

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMuHandValues(t *testing.T) {
	cases := []struct {
		k, s int
		want float64
	}{
		{1, 1, 1},
		{1, 3, 1},
		{2, 1, 0},
		{2, 2, 0.5},     // the two items must land in different buckets
		{2, 3, 2.0 / 3}, // P(different buckets) = 2/3
		{3, 1, 0},
		{0, 3, 0},
		{-1, 3, 0},
		{5, 0, 0},
		{3, 3, 1 - 1.0/9}, // complement: all three in one bucket (1/9)... see below
	}
	// For k=3, s=3: outcomes without any singleton bucket are
	// "all three together" (3/27) — any 2+1 split has a singleton, and
	// 1+1+1 has three. So μ = 1 - 3/27 = 8/9.
	cases[len(cases)-1].want = 8.0 / 9
	for _, c := range cases {
		if got := Mu(c.k, c.s); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mu(%d,%d) = %v, want %v", c.k, c.s, got, c.want)
		}
	}
}

func TestMuMatchesPaperRecursionProperty(t *testing.T) {
	f := func(kRaw, sRaw uint8) bool {
		k := int(kRaw%25) + 1
		s := int(sRaw%8) + 1
		return almostEqual(Mu(k, s), MuRecursive(k, s), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMuMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ k, s int }{{4, 3}, {7, 3}, {12, 5}, {2, 2}, {30, 3}}
	const trials = 200000
	for _, c := range cases {
		hits := 0
		counts := make([]int, c.s)
		for trial := 0; trial < trials; trial++ {
			for i := range counts {
				counts[i] = 0
			}
			for i := 0; i < c.k; i++ {
				counts[rng.Intn(c.s)]++
			}
			for _, n := range counts {
				if n == 1 {
					hits++
					break
				}
			}
		}
		got := float64(hits) / trials
		want := Mu(c.k, c.s)
		if !almostEqual(got, want, 0.005) {
			t.Errorf("Mu(%d,%d): Monte Carlo %v vs analytic %v", c.k, c.s, got, want)
		}
	}
}

func TestMuInUnitIntervalProperty(t *testing.T) {
	f := func(kRaw uint16, sRaw uint8) bool {
		k := int(kRaw % 600)
		s := int(sRaw % 20)
		v := Mu(k, s)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuLargeKDecaysWithS3(t *testing.T) {
	// With s = 3 slots and many senders, collisions dominate: μ must
	// decay towards 0 monotonically for large K.
	prev := Mu(10, 3)
	for k := 11; k <= 200; k++ {
		cur := Mu(k, 3)
		if cur > prev+1e-12 {
			t.Fatalf("μ(%d,3)=%v > μ(%d,3)=%v; expected decay", k, cur, k-1, prev)
		}
		prev = cur
	}
	if prev > 1e-6 {
		t.Fatalf("μ(200,3)=%v, expected near 0", prev)
	}
}

func TestMuMoreSlotsHelpProperty(t *testing.T) {
	// For a fixed K >= 2, adding slots never hurts.
	f := func(kRaw, sRaw uint8) bool {
		k := int(kRaw%30) + 2
		s := int(sRaw%10) + 1
		return Mu(k, s+1)+1e-12 >= Mu(k, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMuRealLinearEndpoints(t *testing.T) {
	for k := 1; k <= 10; k++ {
		if got := MuReal(float64(k), 3, KLinear); !almostEqual(got, Mu(k, 3), 1e-12) {
			t.Errorf("MuReal at integer %d = %v, want %v", k, got, Mu(k, 3))
		}
	}
	// Between 0 and 1 the linear mode is the identity (μ(0)=0, μ(1)=1).
	if got := MuReal(0.4, 3, KLinear); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("MuReal(0.4) = %v, want 0.4", got)
	}
}

func TestMuRealMidpoint(t *testing.T) {
	got := MuReal(2.5, 3, KLinear)
	want := (Mu(2, 3) + Mu(3, 3)) / 2
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("MuReal(2.5,3) = %v, want %v", got, want)
	}
}

func TestMuRealNegativeAndZero(t *testing.T) {
	for _, mode := range []KMode{KLinear, KPoisson, KRound} {
		if MuReal(0, 3, mode) != 0 || MuReal(-2, 3, mode) != 0 {
			t.Errorf("mode %v: non-positive k should give 0", mode)
		}
	}
}

func TestMuRealRound(t *testing.T) {
	if got := MuReal(2.4, 3, KRound); got != Mu(2, 3) {
		t.Fatalf("KRound(2.4) = %v, want Mu(2,3)", got)
	}
	if got := MuReal(2.6, 3, KRound); got != Mu(3, 3) {
		t.Fatalf("KRound(2.6) = %v, want Mu(3,3)", got)
	}
}

func TestMuRealPoissonMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lambda, s := 4.2, 3
	const trials = 300000
	hits := 0
	counts := make([]int, s)
	for trial := 0; trial < trials; trial++ {
		for i := range counts {
			counts[i] = 0
		}
		// Sample Poisson via Knuth (lambda is small).
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				break
			}
			k++
		}
		for i := 0; i < k; i++ {
			counts[rng.Intn(s)]++
		}
		for _, n := range counts {
			if n == 1 {
				hits++
				break
			}
		}
	}
	got := float64(hits) / trials
	want := MuReal(lambda, s, KPoisson)
	if !almostEqual(got, want, 0.005) {
		t.Fatalf("Poisson mixture: Monte Carlo %v vs analytic %v", got, want)
	}
}

func TestMuRealModesAgreeAtLargeK(t *testing.T) {
	// All interpolation modes must agree in the collision-dominated
	// regime where μ is nearly 0.
	for _, mode := range []KMode{KLinear, KPoisson, KRound} {
		if v := MuReal(150, 3, mode); v > 0.01 {
			t.Errorf("mode %v at K=150: %v, expected ~0", mode, v)
		}
	}
}

func TestMuBinomialBasics(t *testing.T) {
	// p = 1 degenerates to Mu(n, s).
	if got := MuBinomial(5, 1, 3); !almostEqual(got, Mu(5, 3), 1e-12) {
		t.Fatalf("MuBinomial(5,1,3) = %v, want Mu(5,3)", got)
	}
	if MuBinomial(0, 0.5, 3) != 0 || MuBinomial(5, 0, 3) != 0 {
		t.Fatal("degenerate binomial mixtures should be 0")
	}
}

func TestMuBinomialCloseToLinearAtSmallP(t *testing.T) {
	// With n = 100, p = 0.03 the binomial is close to Poisson(3); both
	// smooth modes should be within a few percent of each other.
	nb := MuBinomial(100, 0.03, 3)
	po := MuReal(3, 3, KPoisson)
	if !almostEqual(nb, po, 0.02) {
		t.Fatalf("binomial %v vs poisson %v diverge", nb, po)
	}
}

func TestExpectedSingletons(t *testing.T) {
	if got := ExpectedSingletons(1, 3); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("one item: %v, want 1", got)
	}
	// Two items, two buckets: E[#singletons] = 2 · (1/2) = 1.
	if got := ExpectedSingletons(2, 2); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("2 items 2 buckets: %v, want 1", got)
	}
	if ExpectedSingletons(0, 3) != 0 || ExpectedSingletons(-1, 3) != 0 {
		t.Fatal("non-positive k should give 0")
	}
}

func TestExpectedSingletonsMatchesBinomialMean(t *testing.T) {
	// For integer k, E[#singletons] = s · k · (1/s) · ((s-1)/s)^(k-1).
	for _, c := range []struct{ k, s int }{{3, 3}, {7, 4}, {20, 5}} {
		want := float64(c.s) * float64(c.k) * (1.0 / float64(c.s)) *
			math.Pow(float64(c.s-1)/float64(c.s), float64(c.k-1))
		got := ExpectedSingletons(float64(c.k), c.s)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("ExpectedSingletons(%d,%d) = %v, want %v", c.k, c.s, got, want)
		}
	}
}

func TestKModeString(t *testing.T) {
	if KLinear.String() != "linear" || KPoisson.String() != "poisson" ||
		KRound.String() != "round" || KMode(99).String() != "unknown" {
		t.Fatal("KMode.String labels wrong")
	}
}

func BenchmarkMuClosedForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Mu(1+i%140, 3)
	}
}

func BenchmarkMuRecursive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MuRecursive(1+i%25, 3)
	}
}

func BenchmarkMuRealLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MuReal(float64(i%140)+0.37, 3, KLinear)
	}
}

func BenchmarkMuRealPoisson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MuReal(float64(i%40)+0.37, 3, KPoisson)
	}
}
