package buckets

import (
	"math"

	"sensornet/internal/mathx"
)

// MuCS returns μ'(K1, K2, s) from Appendix A: the probability that, when
// K1 type-A items (in-range senders) and K2 type-B items (senders in the
// carrier-sensing annulus) are dropped independently and uniformly into
// s buckets, at least one bucket holds exactly one type-A item and no
// type-B item. Computed with the exact inclusion–exclusion identity
//
//	μ'(K1,K2,s) = Σ_{t=1}^{min(K1,s)} (-1)^{t+1} C(s,t) · K1!/(K1-t)! · (s-t)^{K1+K2-t} / s^{K1+K2}.
func MuCS(k1, k2, s int) float64 {
	if k1 <= 0 || k2 < 0 || s <= 0 {
		return 0
	}
	if k1 == 1 && k2 == 0 {
		return 1
	}
	logS := math.Log(float64(s))
	total := k1 + k2
	tMax := min(k1, s)
	sum := 0.0
	for t := 1; t <= tMax; t++ {
		var logTerm float64
		if s == t {
			if total != t { // 0^(K1+K2-t) vanishes unless exponent is 0
				continue
			}
			logTerm = mathx.LogBinomial(s, t) + mathx.LogFallingFactorial(k1, t) -
				float64(total)*logS
		} else {
			logTerm = mathx.LogBinomial(s, t) + mathx.LogFallingFactorial(k1, t) +
				float64(total-t)*math.Log(float64(s-t)) - float64(total)*logS
		}
		term := math.Exp(logTerm)
		if t%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
	}
	return mathx.Clamp(sum, 0, 1)
}

// MuCSRecursive evaluates μ'(K1, K2, s) with the Appendix A recursion
// (Eq. A.1), conditioning on the first bucket's contents. It is the
// property-test oracle for MuCS and is only practical for small counts.
func MuCSRecursive(k1, k2, s int) float64 {
	memo := make(map[[3]int]float64)
	return muCSRec(k1, k2, s, memo)
}

func muCSRec(k1, k2, s int, memo map[[3]int]float64) float64 {
	if k1 <= 0 || k2 < 0 || s <= 0 {
		return 0
	}
	if k1 == 1 && k2 == 0 {
		return 1
	}
	if s == 1 {
		return 0 // all items share the single bucket; k1+k2 >= 2 here
	}
	key := [3]int{k1, k2, s}
	if v, ok := memo[key]; ok {
		return v
	}
	logInv := -math.Log(float64(s))
	logRest := math.Log(float64(s-1)) - math.Log(float64(s))
	sum := 0.0
	for i := 0; i <= k1; i++ {
		logA := mathx.LogBinomial(k1, i) + float64(i)*logInv + float64(k1-i)*logRest
		for j := 0; j <= k2; j++ {
			p := math.Exp(logA + mathx.LogBinomial(k2, j) + float64(j)*logInv +
				float64(k2-j)*logRest)
			if i == 1 && j == 0 {
				sum += p
			} else {
				sum += p * muCSRec(k1-i, k2-j, s-1, memo)
			}
		}
	}
	memo[key] = sum
	return sum
}

// MuCSReal evaluates μ' at real-valued expected counts using the chosen
// mode. KLinear bilinearly interpolates over the four surrounding
// integer grid points; KPoisson mixes over two independent Poisson
// counts; KRound rounds both arguments.
func MuCSReal(k1, k2 float64, s int, mode KMode) float64 {
	if k1 <= 0 || s <= 0 {
		return 0
	}
	if k2 < 0 {
		k2 = 0
	}
	switch mode {
	case KPoisson:
		return muCSPoisson(k1, k2, s)
	case KRound:
		return MuCS(int(math.Round(k1)), int(math.Round(k2)), s)
	default:
		f1, f2 := math.Floor(k1), math.Floor(k2)
		t1, t2 := k1-f1, k2-f2
		i1, i2 := int(f1), int(f2)
		v00 := MuCS(i1, i2, s)
		v10 := MuCS(i1+1, i2, s)
		v01 := MuCS(i1, i2+1, s)
		v11 := MuCS(i1+1, i2+1, s)
		return mathx.Lerp(mathx.Lerp(v00, v10, t1), mathx.Lerp(v01, v11, t1), t2)
	}
}

func muCSPoisson(l1, l2 float64, s int) float64 {
	lim1 := int(l1 + 12*math.Sqrt(l1) + 20)
	lim2 := int(l2 + 12*math.Sqrt(l2) + 20)
	sum := 0.0
	for a := 1; a <= lim1; a++ {
		pa := mathx.PoissonPMF(l1, a)
		if pa < poissonTailCut && a > int(l1) {
			break
		}
		inner := 0.0
		for b := 0; b <= lim2; b++ {
			pb := mathx.PoissonPMF(l2, b)
			inner += pb * MuCS(a, b, s)
			if pb < poissonTailCut && b > int(l2) {
				break
			}
		}
		sum += pa * inner
	}
	return mathx.Clamp(sum, 0, 1)
}
