package buckets

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMuCSHandValues(t *testing.T) {
	cases := []struct {
		k1, k2, s int
		want      float64
	}{
		{1, 0, 1, 1},
		{1, 0, 5, 1},
		{0, 3, 4, 0},
		{-1, 0, 3, 0},
		{2, 0, 4, 0}, // falls back to μ semantics below
		{1, 1, 1, 0}, // single bucket holds both A and B
	}
	// {2,0,4}: with no B items μ' = μ.
	cases[4].want = Mu(2, 4)
	for _, c := range cases {
		if got := MuCS(c.k1, c.k2, c.s); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("MuCS(%d,%d,%d) = %v, want %v", c.k1, c.k2, c.s, got, c.want)
		}
	}
}

func TestMuCSOneEach(t *testing.T) {
	// K1 = 1, K2 = 1, s = 2: success iff the two items land in
	// different buckets = 1/2.
	if got := MuCS(1, 1, 2); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("MuCS(1,1,2) = %v, want 0.5", got)
	}
	// s = 3: P(different) = 2/3.
	if got := MuCS(1, 1, 3); !almostEqual(got, 2.0/3, 1e-12) {
		t.Fatalf("MuCS(1,1,3) = %v, want 2/3", got)
	}
}

func TestMuCSReducesToMuWithoutInterferers(t *testing.T) {
	f := func(kRaw, sRaw uint8) bool {
		k := int(kRaw%30) + 1
		s := int(sRaw%8) + 1
		return almostEqual(MuCS(k, 0, s), Mu(k, s), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuCSMatchesRecursionProperty(t *testing.T) {
	f := func(k1Raw, k2Raw, sRaw uint8) bool {
		k1 := int(k1Raw%10) + 1
		k2 := int(k2Raw % 10)
		s := int(sRaw%5) + 1
		return almostEqual(MuCS(k1, k2, s), MuCSRecursive(k1, k2, s), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMuCSMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ k1, k2, s int }{{3, 2, 3}, {5, 8, 4}, {2, 1, 2}, {8, 3, 3}}
	const trials = 200000
	for _, c := range cases {
		hits := 0
		a := make([]int, c.s)
		b := make([]int, c.s)
		for trial := 0; trial < trials; trial++ {
			for i := 0; i < c.s; i++ {
				a[i], b[i] = 0, 0
			}
			for i := 0; i < c.k1; i++ {
				a[rng.Intn(c.s)]++
			}
			for i := 0; i < c.k2; i++ {
				b[rng.Intn(c.s)]++
			}
			for i := 0; i < c.s; i++ {
				if a[i] == 1 && b[i] == 0 {
					hits++
					break
				}
			}
		}
		got := float64(hits) / trials
		want := MuCS(c.k1, c.k2, c.s)
		if !almostEqual(got, want, 0.005) {
			t.Errorf("MuCS(%d,%d,%d): Monte Carlo %v vs analytic %v",
				c.k1, c.k2, c.s, got, want)
		}
	}
}

func TestMuCSInterferenceHurtsProperty(t *testing.T) {
	// Adding carrier-sensing interferers can only lower the success
	// probability.
	f := func(k1Raw, k2Raw, sRaw uint8) bool {
		k1 := int(k1Raw%20) + 1
		k2 := int(k2Raw % 40)
		s := int(sRaw%8) + 1
		return MuCS(k1, k2+1, s) <= MuCS(k1, k2, s)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMuCSBoundedByMuProperty(t *testing.T) {
	f := func(k1Raw, k2Raw, sRaw uint8) bool {
		k1 := int(k1Raw%30) + 1
		k2 := int(k2Raw % 60)
		s := int(sRaw%8) + 1
		v := MuCS(k1, k2, s)
		return v >= 0 && v <= Mu(k1, s)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuCSRealEndpointsAndModes(t *testing.T) {
	if got := MuCSReal(3, 2, 3, KLinear); !almostEqual(got, MuCS(3, 2, 3), 1e-12) {
		t.Fatalf("integer grid point = %v, want %v", got, MuCS(3, 2, 3))
	}
	if MuCSReal(0, 2, 3, KLinear) != 0 {
		t.Fatal("k1 = 0 should give 0")
	}
	if got := MuCSReal(3, -4, 3, KLinear); !almostEqual(got, MuCS(3, 0, 3), 1e-12) {
		t.Fatal("negative k2 should clamp to 0")
	}
	if got := MuCSReal(2.6, 1.4, 3, KRound); got != MuCS(3, 1, 3) {
		t.Fatalf("KRound = %v, want MuCS(3,1,3)", got)
	}
}

func TestMuCSRealBilinearInterior(t *testing.T) {
	// The bilinear value must lie within the envelope of its four
	// corners.
	k1, k2 := 3.3, 2.7
	corners := []float64{
		MuCS(3, 2, 3), MuCS(4, 2, 3), MuCS(3, 3, 3), MuCS(4, 3, 3),
	}
	lo, hi := corners[0], corners[0]
	for _, v := range corners {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	got := MuCSReal(k1, k2, 3, KLinear)
	if got < lo-1e-12 || got > hi+1e-12 {
		t.Fatalf("bilinear %v outside corner envelope [%v,%v]", got, lo, hi)
	}
}

func TestMuCSRealPoissonAgreesWithLinearRoughly(t *testing.T) {
	a := MuCSReal(4, 3, 3, KPoisson)
	b := MuCSReal(4, 3, 3, KLinear)
	if math.Abs(a-b) > 0.15 {
		t.Fatalf("poisson %v and linear %v diverge unreasonably", a, b)
	}
}

func BenchmarkMuCSClosedForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MuCS(1+i%60, i%180, 3)
	}
}

func BenchmarkMuCSRealLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MuCSReal(float64(i%60)+0.4, float64(i%180)+0.2, 3, KLinear)
	}
}
