package buckets_test

import (
	"fmt"

	"sensornet/internal/buckets"
)

// μ(K, s) is the probability that a receiver decodes at least one
// packet when K neighbours each transmit in one of s random slots:
// the contention kernel of the whole analytical framework.
func ExampleMu() {
	for _, k := range []int{1, 3, 10, 50} {
		fmt.Printf("mu(%d, 3) = %.3f\n", k, buckets.Mu(k, 3))
	}
	// Output:
	// mu(1, 3) = 1.000
	// mu(3, 3) = 0.889
	// mu(10, 3) = 0.256
	// mu(50, 3) = 0.000
}

// The carrier-sensing variant additionally requires silence from the
// annulus between r and 2r (Appendix A).
func ExampleMuCS() {
	fmt.Printf("in-range only:    %.3f\n", buckets.MuCS(3, 0, 3))
	fmt.Printf("plus interferers: %.3f\n", buckets.MuCS(3, 5, 3))
	// Output:
	// in-range only:    0.889
	// plus interferers: 0.173
}
