package buckets

import (
	"math"
	"testing"
)

// FuzzMuInvariants checks the bucket-probability invariants for
// arbitrary (K, s): range, interferers only hurt, and agreement between
// the closed form and the paper's recursion on the small-argument
// domain where the recursion is tractable.
func FuzzMuInvariants(f *testing.F) {
	f.Add(3, 3, 2)
	f.Add(1, 1, 0)
	f.Add(20, 5, 7)
	f.Fuzz(func(t *testing.T, k, s, k2 int) {
		if k < 0 || k > 300 || s < 0 || s > 40 || k2 < 0 || k2 > 300 {
			t.Skip()
		}
		v := Mu(k, s)
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("Mu(%d,%d) = %v", k, s, v)
		}
		cs := MuCS(k, k2, s)
		if math.IsNaN(cs) || cs < 0 || cs > v+1e-12 {
			t.Fatalf("MuCS(%d,%d,%d) = %v exceeds Mu = %v", k, k2, s, cs, v)
		}
		if k <= 18 && s <= 6 {
			ref := MuRecursive(k, s)
			if math.Abs(v-ref) > 1e-9 {
				t.Fatalf("closed form %v != recursion %v at (%d,%d)", v, ref, k, s)
			}
		}
		if k <= 8 && k2 <= 8 && s <= 4 {
			ref := MuCSRecursive(k, k2, s)
			if math.Abs(cs-ref) > 1e-9 {
				t.Fatalf("CS closed form %v != recursion %v at (%d,%d,%d)", cs, ref, k, k2, s)
			}
		}
	})
}

// FuzzMuRealModes checks that every real-K extension stays in [0, 1]
// and agrees with the integer grid at integer arguments.
func FuzzMuRealModes(f *testing.F) {
	f.Add(2.5, 3)
	f.Add(0.1, 1)
	f.Add(140.0, 3)
	f.Fuzz(func(t *testing.T, k float64, s int) {
		if math.IsNaN(k) || math.IsInf(k, 0) || k < -10 || k > 500 || s < 0 || s > 20 {
			t.Skip()
		}
		for _, mode := range []KMode{KLinear, KPoisson, KRound} {
			v := MuReal(k, s, mode)
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("MuReal(%v,%d,%v) = %v", k, s, mode, v)
			}
		}
		if k == math.Trunc(k) && k >= 0 && k < 400 {
			want := Mu(int(k), s)
			if got := MuReal(k, s, KLinear); math.Abs(got-want) > 1e-12 {
				t.Fatalf("linear mode at integer %v: %v != %v", k, got, want)
			}
		}
	})
}
