// Package channel implements the paper's link-level communication
// models over a fixed deployment.
//
// Under CFM (Collision Free Model, §3.2.1) every transmission is an
// atomic operation delivered to all neighbours. Under CAM (Collision
// Aware Model, §3.2.2, Assumption 6) a packet is received only when it
// is the sole transmission audible at the receiver for its entire
// duration; the carrier-sensing variant (Appendix A) additionally
// requires silence from every node within twice the transmission
// radius. ModelSINR sharpens CAM's binary collision disk into physical
// interference (Halldórsson & Mitra's local-broadcasting setting): each
// receiver sums the path-loss power of every audible transmitter and a
// packet decodes iff its signal-to-interference-plus-noise ratio meets
// the threshold β. Radios are half-duplex: a transmitting node receives
// nothing during its own slot.
package channel

import (
	"errors"
	"fmt"

	"sensornet/internal/deploy"
)

// Model selects the link-level communication model.
type Model int

const (
	// CFM is the Collision Free Model: transmissions always succeed.
	CFM Model = iota
	// CAM is the Collision Aware Model: concurrent in-range
	// transmissions to a common receiver all collide.
	CAM
	// CAMCarrierSense is CAM extended with a carrier-sensing range of
	// twice the transmission radius (Appendix A).
	CAMCarrierSense
	// ModelSINR is the physical-interference model: a reception decodes
	// iff signal/(N₀ + interference) >= β, where signal and interference
	// are normalised path-loss gains (d/R)^-α precomputed per edge by
	// the deployment. Interference is summed over transmitters within
	// the sensing range 2R (gains beyond it are at most 2^-α and are
	// truncated; the deployment must be generated WithSensing and with
	// GainAlpha set).
	ModelSINR
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CFM:
		return "CFM"
	case CAM:
		return "CAM"
	case CAMCarrierSense:
		return "CAM+CS"
	case ModelSINR:
		return "SINR"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// SINRParams parameterises ModelSINR.
type SINRParams struct {
	// Alpha is the path-loss exponent; gains fall off as (d/R)^-Alpha.
	// It must match the deployment's GainAlpha.
	Alpha float64
	// Beta is the decode threshold: signal >= Beta·(N0 + interference).
	Beta float64
	// N0 is the noise floor in the same normalised power units as the
	// gains (a transmitter at the range edge has power exactly 1).
	N0 float64
}

// DefaultSINRParams returns the repo's reference SINR operating point:
// α = 3 (a common terrestrial path-loss exponent), β = 1.5, N₀ = 0.2.
// β·N₀ = 0.3 <= 1, so an interference-free transmitter still reaches
// every neighbour out to the range edge — a lone SINR transmission
// behaves exactly like a lone CAM transmission, which keeps the models
// comparable in the shootout campaign.
func DefaultSINRParams() SINRParams {
	return SINRParams{Alpha: 3, Beta: 1.5, N0: 0.2}
}

// Validate reports whether the parameters describe a usable channel.
func (p SINRParams) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("channel: SINR Alpha must be > 0, got %g", p.Alpha)
	}
	if p.Beta <= 0 {
		return fmt.Errorf("channel: SINR Beta must be > 0, got %g", p.Beta)
	}
	if p.N0 < 0 {
		return fmt.Errorf("channel: SINR N0 must be >= 0, got %g", p.N0)
	}
	return nil
}

// Costs carries the per-transmission cost constants of a model: (t_f,
// e_f) for CFM and (t_a, e_a) for CAM, in arbitrary units. The analysis
// counts broadcasts, so these are exposed for cost reporting only.
type Costs struct {
	Time   float64
	Energy float64
}

// DefaultCosts returns unit costs with the paper's ordering
// t_a <= t_f, e_a <= e_f: CFM's atomic reliable delivery is allowed to
// be more expensive than a raw CAM transmission.
func DefaultCosts(m Model) Costs {
	if m == CFM {
		return Costs{Time: 1.5, Energy: 1.5}
	}
	return Costs{Time: 1, Energy: 1}
}

// Resolver computes the outcome of slot-aligned concurrent
// transmissions over one deployment. It is stateful only within a call
// to ResolveSlot and reusable across slots and runs; epoch stamping
// avoids O(N) clearing per slot.
type Resolver struct {
	model Model
	dep   *deploy.Deployment

	stamp    []uint32  // epoch of the last write to count/from/power
	count    []int32   // in-range transmitters audible this slot
	from     []int32   // the unique transmitter when count == 1
	sense    []int32   // sensing-annulus transmitters audible this slot
	power    []float64 // SINR: total audible path-loss power this slot
	txStamp  []uint32  // epoch marking nodes transmitting this slot
	colStamp []uint32  // epoch deduplicating collision reports
	epoch    uint32

	sinr SINRParams // decode parameters when model is ModelSINR

	unicastScratch []int32 // sender list reused by ResolveSlotUnicast
	faultScratch   []int32 // up-transmitter list reused by ResolveSlotFaults
}

// Faults is the non-collision failure filter ResolveSlotFaults layers
// over a model's collision resolution: node-level outages (crash-stop,
// sleep, energy depletion) and per-packet link loss. Implementations
// must be deterministic for a fixed fault plan. The resolver consults
// TxUp once per transmitter before collision resolution, RxUp once per
// audible (transmitter, receiver) pair, and DropPacket exactly once per
// reception that survived both collision resolution and the RxUp
// filter, in a deterministic order (transmitters in txs order,
// receivers in neighbour-list order).
type Faults interface {
	// TxUp reports whether node u is able to transmit this slot. Down
	// transmitters are filtered out before collision resolution: a dead
	// radio does not interfere.
	TxUp(u int32) bool
	// RxUp reports whether node v is able to receive this slot. A down
	// receiver loses every packet aimed at it, collisions included.
	RxUp(v int32) bool
	// DropPacket reports whether the from→to packet, though decodable,
	// is independently lost to the lossy link layer.
	DropPacket(from, to int32) bool
}

// NewResolver builds a resolver for the model over dep. Carrier sensing
// requires the deployment to have been generated WithSensing; ModelSINR
// additionally requires precomputed gain tables and uses
// DefaultSINRParams (use NewResolverSINR to choose them).
func NewResolver(model Model, dep *deploy.Deployment) (*Resolver, error) {
	if model == ModelSINR {
		return NewResolverSINR(dep, DefaultSINRParams())
	}
	if dep == nil {
		return nil, errors.New("channel: nil deployment")
	}
	if model == CAMCarrierSense && dep.Sensing == nil {
		return nil, errors.New("channel: carrier-sense model needs deploy.Config.WithSensing")
	}
	return newResolver(model, dep), nil
}

// NewResolverSINR builds a ModelSINR resolver with explicit decode
// parameters. The deployment must carry both neighbour and sensing gain
// tables (deploy.Config.WithSensing plus GainAlpha) and its GainAlpha
// must equal params.Alpha — the tables are the precomputed form of the
// model's path loss, so a mismatch would silently decode under a
// different exponent than requested.
func NewResolverSINR(dep *deploy.Deployment, params SINRParams) (*Resolver, error) {
	if dep == nil {
		return nil, errors.New("channel: nil deployment")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if dep.Gains == nil || dep.SensingGains == nil {
		return nil, errors.New("channel: SINR model needs deploy.Config.WithSensing and GainAlpha (precomputed gain tables)")
	}
	//lint:ignore floateq both sides are the same configured constant, not computed values; any drift is a wiring bug
	if dep.GainAlpha != params.Alpha {
		return nil, fmt.Errorf("channel: deployment gains use alpha=%g but SINR params say alpha=%g",
			dep.GainAlpha, params.Alpha)
	}
	r := newResolver(ModelSINR, dep)
	r.power = make([]float64, dep.N())
	r.sinr = params
	return r, nil
}

// newResolver allocates the shared per-node scratch.
func newResolver(model Model, dep *deploy.Deployment) *Resolver {
	n := dep.N()
	return &Resolver{
		model:    model,
		dep:      dep,
		stamp:    make([]uint32, n),
		count:    make([]int32, n),
		from:     make([]int32, n),
		sense:    make([]int32, n),
		txStamp:  make([]uint32, n),
		colStamp: make([]uint32, n),
	}
}

// SINR returns the resolver's decode parameters (zero unless the model
// is ModelSINR).
func (r *Resolver) SINR() SINRParams { return r.sinr }

// Model returns the resolver's communication model.
func (r *Resolver) Model() Model { return r.model }

// ResolveSlot determines which transmissions in one time slot are
// delivered, invoking deliver(from, to) for every successful
// (transmitter, receiver) pair. Transmitters never receive in their own
// slot. The deliver callbacks are grouped by transmitter, in the order
// transmitters appear in txs.
func (r *Resolver) ResolveSlot(txs []int32, deliver func(from, to int32)) {
	r.ResolveSlotTraced(txs, deliver, nil)
}

// ResolveSlotTraced is ResolveSlot with collision observability: when
// collided is non-nil it is invoked once per receiver whose reception
// was destroyed this slot, with the number of in-range transmitters it
// heard (a carrier-sense kill with a single in-range transmitter
// reports 1). CFM never collides.
func (r *Resolver) ResolveSlotTraced(txs []int32, deliver func(from, to int32), collided func(to, heard int32)) {
	r.resolve(txs, deliver, collided, nil, nil)
}

// ResolveSlotFaults is ResolveSlotTraced with a fault filter layered on
// top of collision resolution. Down transmitters (TxUp false) are
// removed before resolution and neither deliver nor interfere. For each
// surviving (transmitter, receiver) pair: a down receiver loses the
// packet to lost (fault outranks collision — a sleeping radio does not
// observe the channel); a collided reception reports to collided as
// usual; a reception that survives collision resolution is delivered
// unless DropPacket loses it, in which case lost fires instead. lost
// receives one call per lost (from, to) pair; a nil fault filter makes
// this identical to ResolveSlotTraced.
func (r *Resolver) ResolveSlotFaults(txs []int32, f Faults,
	deliver func(from, to int32), collided func(to, heard int32), lost func(from, to int32)) {
	if f != nil {
		up := r.faultScratch[:0]
		for _, s := range txs {
			if f.TxUp(s) {
				up = append(up, s)
			}
		}
		r.faultScratch = up
		txs = up
	}
	r.resolve(txs, deliver, collided, f, lost)
}

// resolve is the shared slot-resolution core behind the public entry
// points. f and lost may be nil (fault-free resolution).
func (r *Resolver) resolve(txs []int32, deliver func(from, to int32), collided func(to, heard int32),
	f Faults, lost func(from, to int32)) {
	if len(txs) == 0 {
		return
	}
	r.epoch++
	for _, s := range txs {
		r.txStamp[s] = r.epoch
	}
	if r.model == CFM {
		for _, s := range txs {
			for _, v := range r.dep.Neighbors[s] {
				if r.txStamp[v] == r.epoch {
					continue
				}
				if f != nil && !f.RxUp(v) {
					if lost != nil {
						lost(s, v)
					}
					continue
				}
				if f != nil && f.DropPacket(s, v) {
					if lost != nil {
						lost(s, v)
					}
					continue
				}
				deliver(s, v)
			}
		}
		return
	}
	if r.model == ModelSINR {
		r.resolveSINR(txs, deliver, collided, f, lost)
		return
	}
	// Pass 1: tally audible transmitters per receiver.
	for _, s := range txs {
		for _, v := range r.dep.Neighbors[s] {
			if r.stamp[v] != r.epoch {
				r.stamp[v] = r.epoch
				r.count[v] = 0
				r.sense[v] = 0
			}
			r.count[v]++
			r.from[v] = s
		}
		if r.model == CAMCarrierSense {
			for _, v := range r.dep.Sensing[s] {
				if r.stamp[v] != r.epoch {
					r.stamp[v] = r.epoch
					r.count[v] = 0
					r.sense[v] = 0
				}
				r.sense[v]++
			}
		}
	}
	// Pass 2: deliver where exactly one in-range transmitter was heard
	// (and, under carrier sensing, no annulus interferer). Destroyed
	// receptions are reported once per receiver when requested; fault
	// losses (down receiver, dropped packet) once per pair.
	for _, s := range txs {
		for _, v := range r.dep.Neighbors[s] {
			if r.txStamp[v] == r.epoch {
				continue // half-duplex: v is transmitting
			}
			if f != nil && !f.RxUp(v) {
				if lost != nil {
					lost(s, v)
				}
				continue
			}
			ok := r.count[v] == 1 && r.from[v] == s &&
				(r.model != CAMCarrierSense || r.sense[v] == 0)
			switch {
			case ok && f != nil && f.DropPacket(s, v):
				if lost != nil {
					lost(s, v)
				}
			case ok:
				deliver(s, v)
			case collided != nil && r.colStamp[v] != r.epoch:
				r.colStamp[v] = r.epoch
				collided(v, r.count[v])
			}
		}
	}
}

// resolveSINR is the physical-interference slot core. Pass 1 sums every
// audible transmitter's precomputed path-loss gain into each receiver's
// power accumulator — in-range edges via the neighbour gain table,
// annulus edges (R, 2R] via the sensing gain table; interferers beyond
// 2R contribute at most 2^-α each and are truncated, a documented
// approximation that keeps the slot loop linear in the lists the
// deployment already carries. Pass 2 decodes each in-range (s, v) pair
// iff gain(s,v) >= β·(N₀ + totalPower(v) − gain(s,v)): the pair's own
// signal is subtracted from the accumulated total, so no per-pair state
// is needed beyond the shared accumulator. count/from are maintained
// exactly as under CAM so collided reports carry the same heard
// semantics, and accumulation order (txs order, then list order) is
// fixed, making the float sums bit-reproducible.
//
// With β >= 1 at most one transmitter can decode at a receiver per
// slot; with β < 1 several may (capture), and a receiver can then both
// deliver and report a destroyed reception in the same slot.
func (r *Resolver) resolveSINR(txs []int32, deliver func(from, to int32), collided func(to, heard int32),
	f Faults, lost func(from, to int32)) {
	for _, s := range txs {
		gains := r.dep.Gains[s]
		for i, v := range r.dep.Neighbors[s] {
			if r.stamp[v] != r.epoch {
				r.stamp[v] = r.epoch
				r.count[v] = 0
				r.power[v] = 0
			}
			r.count[v]++
			r.from[v] = s
			r.power[v] += gains[i]
		}
		sgains := r.dep.SensingGains[s]
		for i, v := range r.dep.Sensing[s] {
			if r.stamp[v] != r.epoch {
				r.stamp[v] = r.epoch
				r.count[v] = 0
				r.power[v] = 0
			}
			r.power[v] += sgains[i]
		}
	}
	beta, n0 := r.sinr.Beta, r.sinr.N0
	for _, s := range txs {
		gains := r.dep.Gains[s]
		for i, v := range r.dep.Neighbors[s] {
			if r.txStamp[v] == r.epoch {
				continue // half-duplex: v is transmitting
			}
			if f != nil && !f.RxUp(v) {
				if lost != nil {
					lost(s, v)
				}
				continue
			}
			sig := gains[i]
			ok := sig >= beta*(n0+r.power[v]-sig)
			switch {
			case ok && f != nil && f.DropPacket(s, v):
				if lost != nil {
					lost(s, v)
				}
			case ok:
				deliver(s, v)
			case collided != nil && r.colStamp[v] != r.epoch:
				r.colStamp[v] = r.epoch
				collided(v, r.count[v])
			}
		}
	}
}
