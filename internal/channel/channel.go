// Package channel implements the paper's two link-level communication
// models over a fixed deployment.
//
// Under CFM (Collision Free Model, §3.2.1) every transmission is an
// atomic operation delivered to all neighbours. Under CAM (Collision
// Aware Model, §3.2.2, Assumption 6) a packet is received only when it
// is the sole transmission audible at the receiver for its entire
// duration; the carrier-sensing variant (Appendix A) additionally
// requires silence from every node within twice the transmission
// radius. Radios are half-duplex: a transmitting node receives nothing
// during its own slot.
package channel

import (
	"errors"
	"fmt"

	"sensornet/internal/deploy"
)

// Model selects the link-level communication model.
type Model int

const (
	// CFM is the Collision Free Model: transmissions always succeed.
	CFM Model = iota
	// CAM is the Collision Aware Model: concurrent in-range
	// transmissions to a common receiver all collide.
	CAM
	// CAMCarrierSense is CAM extended with a carrier-sensing range of
	// twice the transmission radius (Appendix A).
	CAMCarrierSense
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CFM:
		return "CFM"
	case CAM:
		return "CAM"
	case CAMCarrierSense:
		return "CAM+CS"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Costs carries the per-transmission cost constants of a model: (t_f,
// e_f) for CFM and (t_a, e_a) for CAM, in arbitrary units. The analysis
// counts broadcasts, so these are exposed for cost reporting only.
type Costs struct {
	Time   float64
	Energy float64
}

// DefaultCosts returns unit costs with the paper's ordering
// t_a <= t_f, e_a <= e_f: CFM's atomic reliable delivery is allowed to
// be more expensive than a raw CAM transmission.
func DefaultCosts(m Model) Costs {
	if m == CFM {
		return Costs{Time: 1.5, Energy: 1.5}
	}
	return Costs{Time: 1, Energy: 1}
}

// Resolver computes the outcome of slot-aligned concurrent
// transmissions over one deployment. It is stateful only within a call
// to ResolveSlot and reusable across slots and runs; epoch stamping
// avoids O(N) clearing per slot.
type Resolver struct {
	model Model
	dep   *deploy.Deployment

	stamp    []uint32 // epoch of the last write to count/from
	count    []int32  // in-range transmitters audible this slot
	from     []int32  // the unique transmitter when count == 1
	sense    []int32  // sensing-annulus transmitters audible this slot
	txStamp  []uint32 // epoch marking nodes transmitting this slot
	colStamp []uint32 // epoch deduplicating collision reports
	epoch    uint32

	unicastScratch []int32 // sender list reused by ResolveSlotUnicast
	faultScratch   []int32 // up-transmitter list reused by ResolveSlotFaults
}

// Faults is the non-collision failure filter ResolveSlotFaults layers
// over a model's collision resolution: node-level outages (crash-stop,
// sleep, energy depletion) and per-packet link loss. Implementations
// must be deterministic for a fixed fault plan. The resolver consults
// TxUp once per transmitter before collision resolution, RxUp once per
// audible (transmitter, receiver) pair, and DropPacket exactly once per
// reception that survived both collision resolution and the RxUp
// filter, in a deterministic order (transmitters in txs order,
// receivers in neighbour-list order).
type Faults interface {
	// TxUp reports whether node u is able to transmit this slot. Down
	// transmitters are filtered out before collision resolution: a dead
	// radio does not interfere.
	TxUp(u int32) bool
	// RxUp reports whether node v is able to receive this slot. A down
	// receiver loses every packet aimed at it, collisions included.
	RxUp(v int32) bool
	// DropPacket reports whether the from→to packet, though decodable,
	// is independently lost to the lossy link layer.
	DropPacket(from, to int32) bool
}

// NewResolver builds a resolver for the model over dep. Carrier sensing
// requires the deployment to have been generated WithSensing.
func NewResolver(model Model, dep *deploy.Deployment) (*Resolver, error) {
	if dep == nil {
		return nil, errors.New("channel: nil deployment")
	}
	if model == CAMCarrierSense && dep.Sensing == nil {
		return nil, errors.New("channel: carrier-sense model needs deploy.Config.WithSensing")
	}
	n := dep.N()
	return &Resolver{
		model:    model,
		dep:      dep,
		stamp:    make([]uint32, n),
		count:    make([]int32, n),
		from:     make([]int32, n),
		sense:    make([]int32, n),
		txStamp:  make([]uint32, n),
		colStamp: make([]uint32, n),
	}, nil
}

// Model returns the resolver's communication model.
func (r *Resolver) Model() Model { return r.model }

// ResolveSlot determines which transmissions in one time slot are
// delivered, invoking deliver(from, to) for every successful
// (transmitter, receiver) pair. Transmitters never receive in their own
// slot. The deliver callbacks are grouped by transmitter, in the order
// transmitters appear in txs.
func (r *Resolver) ResolveSlot(txs []int32, deliver func(from, to int32)) {
	r.ResolveSlotTraced(txs, deliver, nil)
}

// ResolveSlotTraced is ResolveSlot with collision observability: when
// collided is non-nil it is invoked once per receiver whose reception
// was destroyed this slot, with the number of in-range transmitters it
// heard (a carrier-sense kill with a single in-range transmitter
// reports 1). CFM never collides.
func (r *Resolver) ResolveSlotTraced(txs []int32, deliver func(from, to int32), collided func(to, heard int32)) {
	r.resolve(txs, deliver, collided, nil, nil)
}

// ResolveSlotFaults is ResolveSlotTraced with a fault filter layered on
// top of collision resolution. Down transmitters (TxUp false) are
// removed before resolution and neither deliver nor interfere. For each
// surviving (transmitter, receiver) pair: a down receiver loses the
// packet to lost (fault outranks collision — a sleeping radio does not
// observe the channel); a collided reception reports to collided as
// usual; a reception that survives collision resolution is delivered
// unless DropPacket loses it, in which case lost fires instead. lost
// receives one call per lost (from, to) pair; a nil fault filter makes
// this identical to ResolveSlotTraced.
func (r *Resolver) ResolveSlotFaults(txs []int32, f Faults,
	deliver func(from, to int32), collided func(to, heard int32), lost func(from, to int32)) {
	if f != nil {
		up := r.faultScratch[:0]
		for _, s := range txs {
			if f.TxUp(s) {
				up = append(up, s)
			}
		}
		r.faultScratch = up
		txs = up
	}
	r.resolve(txs, deliver, collided, f, lost)
}

// resolve is the shared slot-resolution core behind the public entry
// points. f and lost may be nil (fault-free resolution).
func (r *Resolver) resolve(txs []int32, deliver func(from, to int32), collided func(to, heard int32),
	f Faults, lost func(from, to int32)) {
	if len(txs) == 0 {
		return
	}
	r.epoch++
	for _, s := range txs {
		r.txStamp[s] = r.epoch
	}
	if r.model == CFM {
		for _, s := range txs {
			for _, v := range r.dep.Neighbors[s] {
				if r.txStamp[v] == r.epoch {
					continue
				}
				if f != nil && !f.RxUp(v) {
					if lost != nil {
						lost(s, v)
					}
					continue
				}
				if f != nil && f.DropPacket(s, v) {
					if lost != nil {
						lost(s, v)
					}
					continue
				}
				deliver(s, v)
			}
		}
		return
	}
	// Pass 1: tally audible transmitters per receiver.
	for _, s := range txs {
		for _, v := range r.dep.Neighbors[s] {
			if r.stamp[v] != r.epoch {
				r.stamp[v] = r.epoch
				r.count[v] = 0
				r.sense[v] = 0
			}
			r.count[v]++
			r.from[v] = s
		}
		if r.model == CAMCarrierSense {
			for _, v := range r.dep.Sensing[s] {
				if r.stamp[v] != r.epoch {
					r.stamp[v] = r.epoch
					r.count[v] = 0
					r.sense[v] = 0
				}
				r.sense[v]++
			}
		}
	}
	// Pass 2: deliver where exactly one in-range transmitter was heard
	// (and, under carrier sensing, no annulus interferer). Destroyed
	// receptions are reported once per receiver when requested; fault
	// losses (down receiver, dropped packet) once per pair.
	for _, s := range txs {
		for _, v := range r.dep.Neighbors[s] {
			if r.txStamp[v] == r.epoch {
				continue // half-duplex: v is transmitting
			}
			if f != nil && !f.RxUp(v) {
				if lost != nil {
					lost(s, v)
				}
				continue
			}
			ok := r.count[v] == 1 && r.from[v] == s &&
				(r.model != CAMCarrierSense || r.sense[v] == 0)
			switch {
			case ok && f != nil && f.DropPacket(s, v):
				if lost != nil {
					lost(s, v)
				}
			case ok:
				deliver(s, v)
			case collided != nil && r.colStamp[v] != r.epoch:
				r.colStamp[v] = r.epoch
				collided(v, r.count[v])
			}
		}
	}
}
