package channel

import (
	"math/rand"
	"testing"

	"sensornet/internal/deploy"
	"sensornet/internal/geom"
)

// lineDeployment builds a hand-placed deployment on a line with unit
// transmission radius: positions control adjacency exactly.
func lineDeployment(t *testing.T, xs []float64, sensing bool) *deploy.Deployment {
	t.Helper()
	d := &deploy.Deployment{R: 1, FieldRadius: 100}
	for _, x := range xs {
		d.Pos = append(d.Pos, geom.Point{X: x})
	}
	// Build adjacency by brute force.
	n := len(xs)
	d.Neighbors = make([][]int32, n)
	if sensing {
		d.Sensing = make([][]int32, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dd := d.Pos[i].Dist(d.Pos[j])
			if dd <= 1 {
				d.Neighbors[i] = append(d.Neighbors[i], int32(j))
			} else if sensing && dd <= 2 {
				d.Sensing[i] = append(d.Sensing[i], int32(j))
			}
		}
	}
	return d
}

type delivery struct{ from, to int32 }

func collect(r *Resolver, txs []int32) []delivery {
	var out []delivery
	r.ResolveSlot(txs, func(from, to int32) {
		out = append(out, delivery{from, to})
	})
	return out
}

func TestNewResolverValidation(t *testing.T) {
	if _, err := NewResolver(CAM, nil); err == nil {
		t.Fatal("nil deployment should error")
	}
	d := lineDeployment(t, []float64{0, 0.5}, false)
	if _, err := NewResolver(CAMCarrierSense, d); err == nil {
		t.Fatal("carrier sense without sensing lists should error")
	}
	if _, err := NewResolver(CAM, d); err != nil {
		t.Fatalf("CAM resolver: %v", err)
	}
}

func TestSingleTransmitterDeliversToAllNeighbors(t *testing.T) {
	// 0 - 1 - 2 chain: node 1 in range of both.
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CAM, d)
	got := collect(r, []int32{1})
	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want 2", got)
	}
}

func TestCollisionAtCommonReceiver(t *testing.T) {
	// Nodes 0 and 2 both neighbour 1; transmitting together collides
	// at 1 but each also has a private neighbour.
	d := lineDeployment(t, []float64{0, 0.9, 1.8, -0.9, 2.7}, false)
	// adjacency: 0-{1,3}, 1-{0,2}, 2-{1,4}, 3-{0}, 4-{2}
	r, _ := NewResolver(CAM, d)
	got := collect(r, []int32{0, 2})
	want := map[delivery]bool{{0, 3}: true, {2, 4}: true}
	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want exactly the private neighbours", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected delivery %v", g)
		}
	}
}

func TestCFMIgnoresCollisions(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CFM, d)
	got := collect(r, []int32{0, 2})
	// Both deliver to node 1 despite the concurrency.
	if len(got) != 2 {
		t.Fatalf("CFM deliveries = %v, want 2", got)
	}
}

func TestHalfDuplexTransmittersDoNotReceive(t *testing.T) {
	// 0 and 1 are mutual neighbours, both transmit.
	d := lineDeployment(t, []float64{0, 0.5}, false)
	for _, m := range []Model{CFM, CAM} {
		r, _ := NewResolver(m, d)
		if got := collect(r, []int32{0, 1}); len(got) != 0 {
			t.Fatalf("%v: transmitters received: %v", m, got)
		}
	}
}

func TestCarrierSenseBlocksAnnulusInterference(t *testing.T) {
	// 1 transmits to 0; node at distance 1.5 from 0 is outside range
	// but inside sensing distance. Plain CAM delivers; CAM+CS does not.
	d := lineDeployment(t, []float64{0, 0.9, 1.5}, true)
	cam, _ := NewResolver(CAM, d)
	cs, _ := NewResolver(CAMCarrierSense, d)
	// 1 -> 0 while 2 transmits concurrently. Node 2 neighbours 1
	// (distance 0.6) so at node 1 there is collision anyway; check
	// receiver 0: distance 0->2 is 1.5: sensing only.
	got := collect(cam, []int32{1, 2})
	delivered0 := false
	for _, g := range got {
		if g.to == 0 {
			delivered0 = true
		}
	}
	if !delivered0 {
		t.Fatal("plain CAM should deliver to node 0")
	}
	got = collect(cs, []int32{1, 2})
	for _, g := range got {
		if g.to == 0 {
			t.Fatalf("carrier sense should block delivery to node 0: %v", got)
		}
	}
}

func TestEpochReuseAcrossSlots(t *testing.T) {
	// Reusing the resolver must not leak state between slots.
	d := lineDeployment(t, []float64{0, 0.9, 1.8, -0.9, 2.7}, false)
	r, _ := NewResolver(CAM, d)
	_ = collect(r, []int32{0, 2}) // collision at 1
	got := collect(r, []int32{0}) // now 0 alone: delivers to 1 and 3
	if len(got) != 2 {
		t.Fatalf("second slot deliveries = %v, want 2", got)
	}
}

func TestEmptySlot(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.9}, false)
	r, _ := NewResolver(CAM, d)
	if got := collect(r, nil); got != nil {
		t.Fatalf("empty slot should deliver nothing, got %v", got)
	}
}

func TestThreeWayCollision(t *testing.T) {
	// Star: centre 0 with three leaves all transmitting.
	d := &deploy.Deployment{R: 1, FieldRadius: 10}
	d.Pos = []geom.Point{{}, {X: 0.9}, {X: -0.9}, {Y: 0.9}}
	d.Neighbors = [][]int32{{1, 2, 3}, {0}, {0}, {0}}
	r, _ := NewResolver(CAM, d)
	if got := collect(r, []int32{1, 2, 3}); len(got) != 0 {
		t.Fatalf("three-way collision should deliver nothing, got %v", got)
	}
}

func TestModelString(t *testing.T) {
	if CFM.String() != "CFM" || CAM.String() != "CAM" ||
		CAMCarrierSense.String() != "CAM+CS" || Model(9).String() != "Model(9)" {
		t.Fatal("Model string labels wrong")
	}
}

func TestDefaultCostsOrdering(t *testing.T) {
	cfm, cam := DefaultCosts(CFM), DefaultCosts(CAM)
	if !(cam.Time <= cfm.Time && cam.Energy <= cfm.Energy) {
		t.Fatal("paper requires t_a <= t_f and e_a <= e_f")
	}
	if DefaultCosts(CAMCarrierSense) != cam {
		t.Fatal("CS costs should match CAM")
	}
}

func TestResolverAgainstBruteForceRandom(t *testing.T) {
	// Random deployments: resolver must agree with a direct
	// per-receiver recount.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		dep, err := deploy.Generate(deploy.Config{P: 3, Rho: 12, WithSensing: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := NewResolver(CAMCarrierSense, dep)
		var txs []int32
		for i := 0; i < dep.N(); i++ {
			if rng.Float64() < 0.2 {
				txs = append(txs, int32(i))
			}
		}
		got := map[delivery]bool{}
		r.ResolveSlot(txs, func(f, to int32) { got[delivery{f, to}] = true })

		isTx := map[int32]bool{}
		for _, s := range txs {
			isTx[s] = true
		}
		want := map[delivery]bool{}
		for v := 0; v < dep.N(); v++ {
			if isTx[int32(v)] {
				continue
			}
			inRange, sensing := []int32{}, 0
			for _, s := range txs {
				dd := dep.Pos[v].Dist(dep.Pos[s])
				if dd <= dep.R {
					inRange = append(inRange, s)
				} else if dd <= 2*dep.R {
					sensing++
				}
			}
			if len(inRange) == 1 && sensing == 0 {
				want[delivery{inRange[0], int32(v)}] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: resolver %d deliveries, brute force %d", trial, len(got), len(want))
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("trial %d: spurious delivery %v", trial, k)
			}
		}
	}
}

func BenchmarkResolveSlotDense(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dep, err := deploy.Generate(deploy.Config{P: 5, Rho: 140}, rng)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := NewResolver(CAM, dep)
	var txs []int32
	for i := 0; i < dep.N(); i += 20 {
		txs = append(txs, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ResolveSlot(txs, func(from, to int32) {})
	}
}
