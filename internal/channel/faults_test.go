package channel

import (
	"reflect"
	"testing"
)

// scriptFaults is a hand-scripted fault filter: fixed down sets plus a
// per-pair drop table, with call counting for the one-draw-per-pair
// contract.
type scriptFaults struct {
	txDown, rxDown map[int32]bool
	drop           map[delivery]bool
	dropCalls      []delivery
}

func (s *scriptFaults) TxUp(u int32) bool { return !s.txDown[u] }
func (s *scriptFaults) RxUp(v int32) bool { return !s.rxDown[v] }
func (s *scriptFaults) DropPacket(from, to int32) bool {
	s.dropCalls = append(s.dropCalls, delivery{from, to})
	return s.drop[delivery{from, to}]
}

func newScriptFaults() *scriptFaults {
	return &scriptFaults{
		txDown: map[int32]bool{},
		rxDown: map[int32]bool{},
		drop:   map[delivery]bool{},
	}
}

type faultOutcome struct {
	delivered []delivery
	collided  map[int32]int32
	lost      []delivery
}

func resolveFaults(r *Resolver, txs []int32, f Faults) faultOutcome {
	out := faultOutcome{collided: map[int32]int32{}}
	r.ResolveSlotFaults(txs,
		f,
		func(from, to int32) { out.delivered = append(out.delivered, delivery{from, to}) },
		func(to, heard int32) { out.collided[to] = heard },
		func(from, to int32) { out.lost = append(out.lost, delivery{from, to}) },
	)
	return out
}

// The tests run on the line 0-1-2 at spacing 0.8: 0~1 and 1~2 are in
// range, 0 and 2 are not, so both endpoints transmitting collide at
// the middle node under CAM.

func TestFaultsDeadTransmitterDoesNotInterfere(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.8, 1.6}, false)
	r, err := NewResolver(CAM, d)
	if err != nil {
		t.Fatal(err)
	}
	// Both endpoints transmit: baseline is a collision at node 1.
	base := resolveFaults(r, []int32{0, 2}, newScriptFaults())
	if len(base.delivered) != 0 || base.collided[1] != 2 {
		t.Fatalf("baseline should collide at node 1: %+v", base)
	}
	// Kill transmitter 2: its radio is silent, so 0→1 now decodes.
	f := newScriptFaults()
	f.txDown[2] = true
	got := resolveFaults(r, []int32{0, 2}, f)
	want := []delivery{{0, 1}}
	if !reflect.DeepEqual(got.delivered, want) || len(got.collided) != 0 || len(got.lost) != 0 {
		t.Fatalf("dead transmitter must not interfere: %+v", got)
	}
}

func TestFaultsDownReceiverOutranksCollision(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.8, 1.6}, false)
	r, err := NewResolver(CAM, d)
	if err != nil {
		t.Fatal(err)
	}
	f := newScriptFaults()
	f.rxDown[1] = true
	got := resolveFaults(r, []int32{0, 2}, f)
	// Node 1 is down: both packets aimed at it are lost to the fault,
	// and no collision is reported — a sleeping radio does not observe
	// the channel.
	wantLost := []delivery{{0, 1}, {2, 1}}
	if !reflect.DeepEqual(got.lost, wantLost) {
		t.Fatalf("lost = %+v, want %+v", got.lost, wantLost)
	}
	if len(got.collided) != 0 || len(got.delivered) != 0 {
		t.Fatalf("down receiver must suppress collision reports: %+v", got)
	}
	if len(f.dropCalls) != 0 {
		t.Fatalf("DropPacket must not be consulted for down receivers: %v", f.dropCalls)
	}
}

func TestFaultsDropPacketOnlyForDecodableReceptions(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.8, 1.6}, false)
	r, err := NewResolver(CAM, d)
	if err != nil {
		t.Fatal(err)
	}
	// Single transmitter at node 1 reaches both neighbours; drop the
	// 1→0 packet only.
	f := newScriptFaults()
	f.drop[delivery{1, 0}] = true
	got := resolveFaults(r, []int32{1}, f)
	if want := []delivery{{1, 0}}; !reflect.DeepEqual(got.lost, want) {
		t.Fatalf("lost = %+v, want %+v", got.lost, want)
	}
	if want := []delivery{{1, 2}}; !reflect.DeepEqual(got.delivered, want) {
		t.Fatalf("delivered = %+v, want %+v", got.delivered, want)
	}
	// Exactly one draw per decodable reception, in deterministic order.
	if want := []delivery{{1, 0}, {1, 2}}; !reflect.DeepEqual(f.dropCalls, want) {
		t.Fatalf("dropCalls = %+v, want %+v", f.dropCalls, want)
	}
}

func TestFaultsCFMPath(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.8, 1.6}, false)
	r, err := NewResolver(CFM, d)
	if err != nil {
		t.Fatal(err)
	}
	f := newScriptFaults()
	f.rxDown[0] = true
	f.drop[delivery{1, 2}] = true
	got := resolveFaults(r, []int32{1}, f)
	wantLost := []delivery{{1, 0}, {1, 2}}
	if !reflect.DeepEqual(got.lost, wantLost) || len(got.delivered) != 0 {
		t.Fatalf("CFM fault path: %+v, want lost %+v", got, wantLost)
	}
	// Only the up receiver's packet consulted the loss layer.
	if want := []delivery{{1, 2}}; !reflect.DeepEqual(f.dropCalls, want) {
		t.Fatalf("dropCalls = %+v, want %+v", f.dropCalls, want)
	}
}

func TestFaultsNilFilterMatchesTraced(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.8, 1.6}, false)
	r, err := NewResolver(CAM, d)
	if err != nil {
		t.Fatal(err)
	}
	var traced faultOutcome
	traced.collided = map[int32]int32{}
	r.ResolveSlotTraced([]int32{0, 2},
		func(from, to int32) { traced.delivered = append(traced.delivered, delivery{from, to}) },
		func(to, heard int32) { traced.collided[to] = heard })
	got := resolveFaults(r, []int32{0, 2}, nil)
	if !reflect.DeepEqual(got.delivered, traced.delivered) || !reflect.DeepEqual(got.collided, traced.collided) {
		t.Fatalf("nil filter diverges: %+v vs %+v", got, traced)
	}
}
