package channel

import (
	"math/rand"
	"testing"

	"sensornet/internal/deploy"
)

// withLineGains attaches path-gain tables to a hand-placed line
// deployment, mirroring what deploy.Generate precomputes when
// Config.GainAlpha is set.
func withLineGains(d *deploy.Deployment, alpha float64) *deploy.Deployment {
	r2 := d.R * d.R
	d.GainAlpha = alpha
	d.Gains = make([][]float64, len(d.Pos))
	d.SensingGains = make([][]float64, len(d.Pos))
	for i, nbrs := range d.Neighbors {
		for _, j := range nbrs {
			dd := d.Pos[i].Dist2(d.Pos[j])
			d.Gains[i] = append(d.Gains[i], deploy.PathGain(dd, r2, alpha))
		}
	}
	for i, ann := range d.Sensing {
		for _, j := range ann {
			dd := d.Pos[i].Dist2(d.Pos[j])
			d.SensingGains[i] = append(d.SensingGains[i], deploy.PathGain(dd, r2, alpha))
		}
	}
	return d
}

func TestSINRParamsValidate(t *testing.T) {
	if err := DefaultSINRParams().Validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	bad := []SINRParams{
		{Alpha: 0, Beta: 1, N0: 0},
		{Alpha: -1, Beta: 1, N0: 0},
		{Alpha: 2, Beta: 0, N0: 0},
		{Alpha: 2, Beta: -1, N0: 0},
		{Alpha: 2, Beta: 1, N0: -0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %+v should be rejected", p)
		}
	}
}

func TestNewResolverSINRValidation(t *testing.T) {
	if _, err := NewResolverSINR(nil, DefaultSINRParams()); err == nil {
		t.Fatal("nil deployment should error")
	}
	// No gain tables.
	plain := lineDeployment(t, []float64{0, 0.5}, true)
	if _, err := NewResolverSINR(plain, DefaultSINRParams()); err == nil {
		t.Fatal("deployment without gain tables should error")
	}
	if _, err := NewResolver(ModelSINR, plain); err == nil {
		t.Fatal("NewResolver(ModelSINR) without gain tables should error")
	}
	// Exponent mismatch between tables and params.
	d := withLineGains(lineDeployment(t, []float64{0, 0.5}, true), 2)
	if _, err := NewResolverSINR(d, DefaultSINRParams()); err == nil {
		t.Fatal("gain-table exponent mismatch should error")
	}
	p := DefaultSINRParams()
	p.Alpha = 2
	if _, err := NewResolverSINR(d, p); err != nil {
		t.Fatalf("valid SINR resolver: %v", err)
	}
}

func TestSINRSingleTransmitterReachesAllNeighbors(t *testing.T) {
	// With the default parameters a lone transmitter decodes at every
	// in-range receiver: the worst-case range-edge gain is 1 and
	// β·N₀ = 0.3 < 1, matching CAM's single-transmitter behaviour.
	d := withLineGains(lineDeployment(t, []float64{0, 0.9, 1.8}, true), DefaultSINRParams().Alpha)
	r, err := NewResolver(ModelSINR, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(r, []int32{1}); len(got) != 2 {
		t.Fatalf("deliveries = %v, want both neighbours", got)
	}
}

func TestSINRCaptureStrongTransmitterWins(t *testing.T) {
	// Receiver 0 hears a near transmitter (0.3 away, gain ≈ 37) and a
	// far one (1.0 away, gain 1). CAM calls this a collision; SINR
	// decodes the strong signal and destroys only the weak one.
	d := withLineGains(lineDeployment(t, []float64{0, 0.3, 1.0}, true), DefaultSINRParams().Alpha)
	cam, _ := NewResolver(CAM, d)
	if got := collect(cam, []int32{1, 2}); len(got) != 0 {
		t.Fatalf("CAM should collide at receiver 0, got %v", got)
	}
	r, _ := NewResolver(ModelSINR, d)
	var colls int
	var got []delivery
	r.ResolveSlotTraced([]int32{1, 2},
		func(from, to int32) { got = append(got, delivery{from, to}) },
		func(to, heard int32) { colls++ })
	if len(got) != 1 || got[0] != (delivery{1, 0}) {
		t.Fatalf("deliveries = %v, want capture of the strong transmitter only", got)
	}
	if colls != 1 {
		t.Fatalf("collided reports = %d, want 1 (the destroyed weak reception)", colls)
	}
}

func TestSINRAnnulusInterferenceBlocksDecode(t *testing.T) {
	// The interferer at 1.05 is outside receiver 0's range (no CAM
	// collision possible) but its sensing-annulus power still drags the
	// edge signal below threshold: 1.166 < 1.5·(0.2 + 0.864).
	d := withLineGains(lineDeployment(t, []float64{0, 0.95, 1.05}, true), DefaultSINRParams().Alpha)
	r, _ := NewResolver(ModelSINR, d)
	for _, g := range collect(r, []int32{1, 2}) {
		if g.to == 0 {
			t.Fatalf("annulus interference should block delivery to node 0: %v", g)
		}
	}
}

// TestSINRResolverAgainstBruteForceRandom is the SINR counterpart of
// TestResolverAgainstBruteForceRandom: the resolver's precomputed-gain
// fast path must agree bit for bit with a naive O(n²) recount that sums
// path-loss power per receiver directly from positions. Both sides
// accumulate in txs order with identical deploy.PathGain terms, so the
// decode decisions — float comparisons included — must match exactly.
func TestSINRResolverAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	params := DefaultSINRParams()
	for trial := 0; trial < 20; trial++ {
		dep, err := deploy.Generate(deploy.Config{
			P: 3, Rho: 12, WithSensing: true, GainAlpha: params.Alpha,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewResolverSINR(dep, params)
		if err != nil {
			t.Fatal(err)
		}
		var txs []int32
		for i := 0; i < dep.N(); i++ {
			if rng.Float64() < 0.2 {
				txs = append(txs, int32(i))
			}
		}
		got := map[delivery]bool{}
		gotColl := map[int32]bool{}
		r.ResolveSlotTraced(txs,
			func(f, to int32) { got[delivery{f, to}] = true },
			func(to, heard int32) { gotColl[to] = true })

		isTx := map[int32]bool{}
		for _, s := range txs {
			isTx[s] = true
		}
		r2 := dep.R * dep.R
		s2 := 4 * r2
		want := map[delivery]bool{}
		wantColl := map[int32]bool{}
		for v := 0; v < dep.N(); v++ {
			if isTx[int32(v)] {
				continue
			}
			power := 0.0
			for _, s := range txs {
				if dd := dep.Pos[v].Dist2(dep.Pos[s]); dd <= s2 {
					power += deploy.PathGain(dd, r2, params.Alpha)
				}
			}
			for _, s := range txs {
				dd := dep.Pos[v].Dist2(dep.Pos[s])
				if dd > r2 {
					continue
				}
				sig := deploy.PathGain(dd, r2, params.Alpha)
				if sig >= params.Beta*(params.N0+power-sig) {
					want[delivery{s, int32(v)}] = true
				} else {
					wantColl[int32(v)] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: resolver %d deliveries, brute force %d", trial, len(got), len(want))
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("trial %d: spurious delivery %v", trial, k)
			}
		}
		if len(gotColl) != len(wantColl) {
			t.Fatalf("trial %d: resolver %d collided receivers, brute force %d",
				trial, len(gotColl), len(wantColl))
		}
		for v := range gotColl {
			if !wantColl[v] {
				t.Fatalf("trial %d: spurious collision report at %d", trial, v)
			}
		}
	}
}

func TestSINRModelString(t *testing.T) {
	if ModelSINR.String() != "SINR" {
		t.Fatalf("ModelSINR.String() = %q", ModelSINR.String())
	}
}

func TestSINREpochReuseAcrossSlots(t *testing.T) {
	// Reusing the resolver must not leak accumulated power between
	// slots: after a crowded slot, a lone transmitter decodes cleanly.
	d := withLineGains(lineDeployment(t, []float64{0, 0.9, 1.8}, true), DefaultSINRParams().Alpha)
	r, _ := NewResolver(ModelSINR, d)
	_ = collect(r, []int32{0, 2}) // both interfere at receiver 1
	if got := collect(r, []int32{1}); len(got) != 2 {
		t.Fatalf("second slot deliveries = %v, want both neighbours", got)
	}
}
