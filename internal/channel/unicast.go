package channel

// Unicast is a point-to-point transmission attempt within one slot.
// Under CAM a unicast occupies the channel exactly like a broadcast —
// every neighbour of the sender hears it and it collides with any other
// concurrent transmission audible at the addressee (§3.2.2 treats both
// primitives uniformly) — but only the addressee consumes the packet.
type Unicast struct {
	From, To int32
}

// ResolveSlotUnicast determines which unicast attempts in one slot
// succeed, invoking deliver for each. The same transmission set also
// produces overhearing at third parties; overhear (optional, may be
// nil) is invoked for every successful (transmitter, bystander) pair
// exactly as ResolveSlot would deliver them, which lets snooping-based
// protocols share the primitive.
//
// Under CFM every attempt whose addressee is a neighbour succeeds.
func (r *Resolver) ResolveSlotUnicast(txs []Unicast, deliver func(Unicast), overhear func(from, to int32)) {
	if len(txs) == 0 {
		return
	}
	senders := r.unicastScratch[:0]
	for _, u := range txs {
		senders = append(senders, u.From)
	}
	r.unicastScratch = senders

	isNeighbor := func(a, b int32) bool {
		for _, v := range r.dep.Neighbors[a] {
			if v == b {
				return true
			}
		}
		return false
	}

	if r.model == CFM {
		for _, u := range txs {
			if isNeighbor(u.From, u.To) {
				deliver(u)
			}
		}
		if overhear != nil {
			r.ResolveSlot(senders, func(from, to int32) {
				overhear(from, to)
			})
		}
		return
	}

	// CAM: run the broadcast resolution over the senders; a unicast
	// succeeds iff its addressee would have decoded the sender's
	// packet as a broadcast receiver.
	r.ResolveSlot(senders, func(from, to int32) {
		delivered := false
		for _, u := range txs {
			if u.From == from && u.To == to {
				deliver(u)
				delivered = true
			}
		}
		if !delivered && overhear != nil {
			overhear(from, to)
		}
	})
}
