package channel

import (
	"testing"
)

func collectUnicast(r *Resolver, txs []Unicast) (got []Unicast, heard []delivery) {
	r.ResolveSlotUnicast(txs,
		func(u Unicast) { got = append(got, u) },
		func(from, to int32) { heard = append(heard, delivery{from, to}) })
	return got, heard
}

func TestUnicastSingleDelivery(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CAM, d)
	got, heard := collectUnicast(r, []Unicast{{From: 1, To: 0}})
	if len(got) != 1 || got[0] != (Unicast{From: 1, To: 0}) {
		t.Fatalf("unicast deliveries = %v", got)
	}
	// Node 2 overhears the transmission.
	if len(heard) != 1 || heard[0] != (delivery{1, 2}) {
		t.Fatalf("overhearing = %v", heard)
	}
}

func TestUnicastCollision(t *testing.T) {
	// 0 and 2 both send to 1 concurrently: both fail.
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CAM, d)
	got, _ := collectUnicast(r, []Unicast{{From: 0, To: 1}, {From: 2, To: 1}})
	if len(got) != 0 {
		t.Fatalf("colliding unicasts delivered: %v", got)
	}
}

func TestUnicastOutOfRangeAddressee(t *testing.T) {
	// 0 sends to 2, which is out of range: no delivery, but 1 overhears.
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CAM, d)
	got, heard := collectUnicast(r, []Unicast{{From: 0, To: 2}})
	if len(got) != 0 {
		t.Fatalf("out-of-range unicast delivered: %v", got)
	}
	if len(heard) != 1 || heard[0] != (delivery{0, 1}) {
		t.Fatalf("expected node 1 to overhear, got %v", heard)
	}
}

func TestUnicastCFMAlwaysDelivers(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CFM, d)
	got, _ := collectUnicast(r, []Unicast{{From: 0, To: 1}, {From: 2, To: 1}})
	if len(got) != 2 {
		t.Fatalf("CFM unicasts = %v, want both delivered", got)
	}
	// Out-of-range addressee still fails under CFM (no link).
	got, _ = collectUnicast(r, []Unicast{{From: 0, To: 2}})
	if len(got) != 0 {
		t.Fatalf("CFM should not bridge non-links: %v", got)
	}
}

func TestUnicastEmptySlot(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.9}, false)
	r, _ := NewResolver(CAM, d)
	got, heard := collectUnicast(r, nil)
	if got != nil || heard != nil {
		t.Fatal("empty slot should do nothing")
	}
}

func TestUnicastNilOverhear(t *testing.T) {
	d := lineDeployment(t, []float64{0, 0.9, 1.8}, false)
	r, _ := NewResolver(CAM, d)
	var got []Unicast
	r.ResolveSlotUnicast([]Unicast{{From: 1, To: 0}},
		func(u Unicast) { got = append(got, u) }, nil)
	if len(got) != 1 {
		t.Fatalf("deliveries with nil overhear = %v", got)
	}
}

func TestUnicastMixedWithCollisionsAtThirdParty(t *testing.T) {
	// Chain 3-0-1-2-4 (indices by position): transmitters 0 and 2 both
	// audible at 1, so 1 decodes nothing; their unicasts to private
	// neighbours succeed.
	d := lineDeployment(t, []float64{0, 0.9, 1.8, -0.9, 2.7}, false)
	r, _ := NewResolver(CAM, d)
	got, _ := collectUnicast(r, []Unicast{{From: 0, To: 3}, {From: 2, To: 4}})
	if len(got) != 2 {
		t.Fatalf("private unicasts should survive: %v", got)
	}
}
