// Package chaos is a seed-deterministic hostile network: an
// http.RoundTripper wrapper that drops, delays, duplicates, truncates,
// and bit-corrupts HTTP traffic with per-path rates, every decision
// drawn from an engine.DeriveSeed stream keyed on (seed, path,
// per-path sequence number, decision label). The i-th request on a
// path therefore suffers the exact same faults on every run with the
// same seed and profile — a chaos run is a replayable experiment, not
// a dice roll, which is the same philosophy internal/faults applies to
// the simulated sensor field and the paper applies to its channel
// models: design against the loss, then prove the output identical
// anyway.
//
// The wrapper sits below the retry layer it is meant to exercise: the
// dist worker's post loop and the coordinator's idempotent ingest must
// absorb everything this package throws — dropped requests (the server
// never saw it), dropped responses (the server DID see it, the
// acknowledgement died: the classic duplicate-delivery trap),
// duplicated requests (the server saw it twice), and truncated or
// bit-flipped bodies in either direction (caught by the protocol's
// X-Body-Sum checksums and turned into retries).
//
// Wrap(base, nil, 0) returns base unchanged — the disabled path adds
// zero overhead, not even a pointer indirection.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sensornet/internal/engine"
)

// ErrInjected is the sentinel wrapped by every transport error this
// package fabricates (dropped requests and dropped responses), so
// callers can tell injected faults from real network trouble.
var ErrInjected = errors.New("chaos: injected transport fault")

// Rates are the per-request fault probabilities, each in [0, 1].
// Truncate and Corrupt are drawn independently for the request and the
// response direction.
type Rates struct {
	// DropRequest is the probability the request never reaches the
	// server (connection refused / packet lost on the way out).
	DropRequest float64 `json:"dropRequest"`
	// DropResponse is the probability the server processes the request
	// but the reply is lost — the dangerous half: any side effect has
	// already happened when the client sees the error.
	DropResponse float64 `json:"dropResponse"`
	// Duplicate is the probability the request is delivered twice (the
	// extra copy's response is discarded).
	Duplicate float64 `json:"duplicate"`
	// Delay is the probability the request is held before forwarding,
	// for a uniform duration in (0, MaxDelay].
	Delay float64 `json:"delay"`
	// MaxDelay bounds injected delays; <= 0 means 50ms.
	MaxDelay time.Duration `json:"maxDelay"`
	// Truncate is the probability a body is cut short mid-stream.
	Truncate float64 `json:"truncate"`
	// Corrupt is the probability a single body byte has one bit
	// flipped.
	Corrupt float64 `json:"corrupt"`
}

// zero reports whether every rate is off.
func (r Rates) zero() bool {
	return r.DropRequest <= 0 && r.DropResponse <= 0 && r.Duplicate <= 0 &&
		r.Delay <= 0 && r.Truncate <= 0 && r.Corrupt <= 0
}

// Profile names a fault mix: default rates plus per-path overrides
// (keyed by exact URL path, e.g. "/api/result").
type Profile struct {
	Name    string
	Default Rates
	PerPath map[string]Rates
}

// rates resolves the effective rates for a path.
func (p *Profile) rates(path string) Rates {
	if r, ok := p.PerPath[path]; ok {
		return r
	}
	return p.Default
}

// Mild is a lightly lossy network: occasional drops and delays, no
// payload damage. Useful as a first hardening target.
func Mild() *Profile {
	return &Profile{
		Name: "mild",
		Default: Rates{
			DropRequest:  0.05,
			DropResponse: 0.03,
			Duplicate:    0.03,
			Delay:        0.15,
			MaxDelay:     20 * time.Millisecond,
		},
	}
}

// Hostile is the full fault mix the chaos smoke runs under: drops in
// both directions, duplicated deliveries, injected latency, and body
// truncation/corruption — with the result path's acknowledgements
// extra lossy, because a lost result ack is the classic path to a
// duplicate post.
func Hostile() *Profile {
	base := Rates{
		DropRequest:  0.10,
		DropResponse: 0.06,
		Duplicate:    0.08,
		Delay:        0.25,
		MaxDelay:     30 * time.Millisecond,
		Truncate:     0.04,
		Corrupt:      0.04,
	}
	result := base
	result.DropResponse = 0.15
	return &Profile{
		Name:    "hostile",
		Default: base,
		PerPath: map[string]Rates{"/api/result": result},
	}
}

// ParseProfile resolves a profile by name. "" and "off" mean no chaos
// (nil profile).
func ParseProfile(name string) (*Profile, error) {
	switch name {
	case "", "off":
		return nil, nil
	case "mild":
		return Mild(), nil
	case "hostile":
		return Hostile(), nil
	default:
		return nil, fmt.Errorf("chaos: unknown profile %q (want off, mild, or hostile)", name)
	}
}

// Fault is one recorded chaos decision, in per-path sequence order.
// The slice of these is the run's fault schedule; two transports with
// equal (seed, profile) driven through equal request sequences record
// equal schedules.
type Fault struct {
	Path string        `json:"path"`
	Seq  int           `json:"seq"`  // per-path request ordinal, from 0
	Kind string        `json:"kind"` // delay|drop-request|duplicate|truncate-request|corrupt-request|drop-response|truncate-response|corrupt-response
	Dur  time.Duration `json:"dur,omitempty"`
}

// Transport is the fault-injecting RoundTripper. Construct with New
// (or Wrap); safe for concurrent use.
type Transport struct {
	base    http.RoundTripper
	profile *Profile
	seed    int64

	mu     sync.Mutex
	seq    map[string]int
	faults []Fault
}

// New wraps base (nil means http.DefaultTransport) in a chaos
// transport drawing from the given seed. The profile must be non-nil;
// use Wrap when "maybe disabled" is the natural call shape.
func New(base http.RoundTripper, profile *Profile, seed int64) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, profile: profile, seed: seed, seq: map[string]int{}}
}

// Wrap returns base unchanged when the profile is nil or all-zero —
// the disabled path short-circuits to the raw transport with zero
// added work — and a fault-injecting Transport otherwise.
func Wrap(base http.RoundTripper, profile *Profile, seed int64) http.RoundTripper {
	if profile == nil || (profile.Default.zero() && len(profile.PerPath) == 0) {
		if base == nil {
			return http.DefaultTransport
		}
		return base
	}
	return New(base, profile, seed)
}

// Faults snapshots the recorded fault schedule so far.
func (t *Transport) Faults() []Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Fault, len(t.faults))
	copy(out, t.faults)
	return out
}

// frac maps a decision label onto a uniform [0, 1) draw that is a pure
// function of (seed, path, seq, label).
func (t *Transport) frac(path string, seq int, label string) float64 {
	draw := engine.DeriveSeed(t.seed, "chaos", path, seq, label)
	return float64(draw) / float64(uint64(1)<<63)
}

func (t *Transport) record(f Fault) {
	t.mu.Lock()
	t.faults = append(t.faults, f)
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper: the request is assigned its
// per-path ordinal, then every fault decision for this (path, ordinal)
// is evaluated in a fixed order — delay, drop-request, request
// mutations, duplicate, forward, drop-response, response mutations.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	path := req.URL.Path
	t.mu.Lock()
	seq := t.seq[path]
	t.seq[path]++
	t.mu.Unlock()
	r := t.profile.rates(path)

	if t.frac(path, seq, "delay") < r.Delay {
		maxDelay := r.MaxDelay
		if maxDelay <= 0 {
			maxDelay = 50 * time.Millisecond
		}
		d := time.Duration(t.frac(path, seq, "delay-len") * float64(maxDelay))
		if d <= 0 {
			d = time.Millisecond
		}
		t.record(Fault{Path: path, Seq: seq, Kind: "delay", Dur: d})
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			closeBody(req)
			return nil, req.Context().Err()
		}
		timer.Stop()
	}

	if t.frac(path, seq, "drop-request") < r.DropRequest {
		t.record(Fault{Path: path, Seq: seq, Kind: "drop-request"})
		closeBody(req)
		return nil, fmt.Errorf("chaos: request %s#%d dropped: %w", path, seq, ErrInjected)
	}

	// Request-body damage needs a replayable body; requests without
	// GetBody (streaming uploads) pass through unmutated.
	if req.GetBody != nil {
		if t.frac(path, seq, "truncate-request") < r.Truncate {
			cut := t.frac(path, seq, "truncate-request-at")
			if mutated, ok := mutateRequest(req, func(b []byte) []byte { return truncate(b, cut) }); ok {
				t.record(Fault{Path: path, Seq: seq, Kind: "truncate-request"})
				req = mutated
			}
		}
		if t.frac(path, seq, "corrupt-request") < r.Corrupt {
			at := t.frac(path, seq, "corrupt-request-at")
			bit := uint(t.frac(path, seq, "corrupt-request-bit") * 8)
			if mutated, ok := mutateRequest(req, func(b []byte) []byte { return flipBit(b, at, bit) }); ok {
				t.record(Fault{Path: path, Seq: seq, Kind: "corrupt-request"})
				req = mutated
			}
		}
		if t.frac(path, seq, "duplicate") < r.Duplicate {
			t.record(Fault{Path: path, Seq: seq, Kind: "duplicate"})
			t.sendShadow(req)
		}
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	if t.frac(path, seq, "drop-response") < r.DropResponse {
		t.record(Fault{Path: path, Seq: seq, Kind: "drop-response"})
		drain(resp)
		return nil, fmt.Errorf("chaos: response %s#%d dropped after the server processed it: %w", path, seq, ErrInjected)
	}
	if t.frac(path, seq, "truncate-response") < r.Truncate {
		cut := t.frac(path, seq, "truncate-response-at")
		if err := mutateResponse(resp, func(b []byte) []byte { return truncate(b, cut) }); err != nil {
			return nil, err
		}
		t.record(Fault{Path: path, Seq: seq, Kind: "truncate-response"})
	}
	if t.frac(path, seq, "corrupt-response") < r.Corrupt {
		at := t.frac(path, seq, "corrupt-response-at")
		bit := uint(t.frac(path, seq, "corrupt-response-bit") * 8)
		if err := mutateResponse(resp, func(b []byte) []byte { return flipBit(b, at, bit) }); err != nil {
			return nil, err
		}
		t.record(Fault{Path: path, Seq: seq, Kind: "corrupt-response"})
	}
	return resp, nil
}

// sendShadow delivers one extra copy of the request and discards the
// outcome: the server observes a duplicate arrival, the client never
// learns about it. Failures are swallowed — a lost shadow is
// indistinguishable from no duplication, which is fine for a fault
// injector.
func (t *Transport) sendShadow(req *http.Request) {
	body, err := req.GetBody()
	if err != nil {
		return
	}
	shadow := req.Clone(req.Context())
	shadow.Body = body
	resp, err := t.base.RoundTrip(shadow)
	if err != nil {
		return
	}
	drain(resp)
}

// mutateRequest rewrites the request body through f, returning a clone
// with a consistent ContentLength and a replayable GetBody.
func mutateRequest(req *http.Request, f func([]byte) []byte) (*http.Request, bool) {
	src, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	raw, err := io.ReadAll(src)
	src.Close()
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	if req.Body != nil {
		req.Body.Close()
	}
	mutated := f(raw)
	out := req.Clone(req.Context())
	out.Body = io.NopCloser(bytes.NewReader(mutated))
	out.ContentLength = int64(len(mutated))
	out.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(mutated)), nil
	}
	return out, true
}

// mutateResponse buffers the response body, rewrites it through f, and
// swaps in the damaged copy. Headers (including any body checksum the
// server set) are left intact — that is the point: the receiver's
// integrity check must notice.
func mutateResponse(resp *http.Response, f func([]byte) []byte) error {
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		return nil
	}
	mutated := f(raw)
	resp.Body = io.NopCloser(bytes.NewReader(mutated))
	resp.ContentLength = int64(len(mutated))
	return nil
}

// truncate cuts b to a strict prefix chosen by cut in [0, 1).
func truncate(b []byte, cut float64) []byte {
	n := int(cut * float64(len(b)))
	if n >= len(b) {
		n = len(b) - 1
	}
	if n < 0 {
		n = 0
	}
	return b[:n]
}

// flipBit flips one bit of the byte at relative position at in [0, 1).
func flipBit(b []byte, at float64, bit uint) []byte {
	if len(b) == 0 {
		return b
	}
	out := make([]byte, len(b))
	copy(out, b)
	i := int(at * float64(len(out)))
	if i >= len(out) {
		i = len(out) - 1
	}
	out[i] ^= 1 << (bit % 8)
	return out
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// drain discards a response the client will never see (a shadow
// duplicate's or a dropped one's), reading it out so the underlying
// connection can be reused.
func drain(resp *http.Response) {
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		resp.Body.Close()
		return
	}
	resp.Body.Close()
}
