package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer replies with the request body and counts arrivals.
func echoServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
		//lint:ignore errdrop test echo server; a failed write surfaces as a client-side read error
		_, _ = w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func post(t *testing.T, client *http.Client, url, path, body string) (string, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// TestWrapDisabledIsIdentity pins the zero-overhead-when-disabled
// contract: a nil or all-zero profile returns the base RoundTripper
// itself, not a wrapper.
func TestWrapDisabledIsIdentity(t *testing.T) {
	base := &http.Transport{}
	if got := Wrap(base, nil, 42); got != http.RoundTripper(base) {
		t.Fatal("Wrap(base, nil) did not return base unchanged")
	}
	if got := Wrap(base, &Profile{Name: "empty"}, 42); got != http.RoundTripper(base) {
		t.Fatal("Wrap(base, all-zero profile) did not return base unchanged")
	}
	if got := Wrap(nil, nil, 0); got != http.RoundTripper(http.DefaultTransport) {
		t.Fatal("Wrap(nil, nil) did not return the default transport")
	}
	if _, ok := Wrap(base, Hostile(), 42).(*Transport); !ok {
		t.Fatal("Wrap with a live profile did not return a chaos Transport")
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"", "off"} {
		p, err := ParseProfile(name)
		if p != nil || err != nil {
			t.Errorf("ParseProfile(%q) = %v, %v; want nil, nil", name, p, err)
		}
	}
	for _, name := range []string{"mild", "hostile"} {
		p, err := ParseProfile(name)
		if err != nil || p == nil || p.Name != name {
			t.Errorf("ParseProfile(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParseProfile("apocalyptic"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// driveSequence sends a fixed request sequence through a fresh chaos
// transport and returns its recorded fault schedule.
func driveSequence(t *testing.T, url string, seed int64, profile *Profile) []Fault {
	t.Helper()
	tr := New(nil, profile, seed)
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	for i := 0; i < 60; i++ {
		path := "/api/lease"
		if i%3 == 1 {
			path = "/api/result"
		}
		if i%3 == 2 {
			path = "/api/heartbeat"
		}
		// Outcomes are irrelevant here; only the decision stream is
		// under test.
		//lint:ignore errdrop chaos faults are expected failures in this determinism probe
		_, _ = post(t, client, url, path, `{"worker":"w","n":`+string(rune('0'+i%10))+`}`)
	}
	return tr.Faults()
}

// TestDeterministicSchedule is the replay anchor: same seed, same
// profile, same request sequence ⇒ identical fault schedule, down to
// the injected delay durations. A different seed diverges.
func TestDeterministicSchedule(t *testing.T) {
	srv, _ := echoServer(t)
	a := driveSequence(t, srv.URL, 42, Hostile())
	b := driveSequence(t, srv.URL, 42, Hostile())
	if len(a) == 0 {
		t.Fatal("hostile profile injected no faults across 60 requests")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", a, b)
	}
	kinds := map[string]bool{}
	for _, f := range a {
		kinds[f.Kind] = true
	}
	if len(kinds) < 3 {
		t.Fatalf("schedule exercised only %v", kinds)
	}
	c := driveSequence(t, srv.URL, 43, Hostile())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// certain returns a profile that applies exactly one fault kind with
// probability 1.
func certain(set func(*Rates)) *Profile {
	var r Rates
	set(&r)
	return &Profile{Name: "certain", Default: r}
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: New(nil, certain(func(r *Rates) { r.DropRequest = 1 }), 1)}
	_, err := post(t, client, srv.URL, "/x", "hello")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests, want 0", hits.Load())
	}
}

func TestDropResponseAfterServerProcessed(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: New(nil, certain(func(r *Rates) { r.DropResponse = 1 }), 1)}
	_, err := post(t, client, srv.URL, "/x", "hello")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (the side effect happened)", hits.Load())
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	srv, hits := echoServer(t)
	client := &http.Client{Transport: New(nil, certain(func(r *Rates) { r.Duplicate = 1 }), 1)}
	body, err := post(t, client, srv.URL, "/x", "hello")
	if err != nil || body != "hello" {
		t.Fatalf("post = %q, %v", body, err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

func TestCorruptResponseSameLengthOneBit(t *testing.T) {
	srv, _ := echoServer(t)
	const msg = "the quick brown fox"
	client := &http.Client{Transport: New(nil, certain(func(r *Rates) { r.Corrupt = 1 }), 1)}
	body, err := post(t, client, srv.URL, "/x", msg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt fires on both directions (independent draws at rate 1):
	// the echoed bytes must differ from the original but keep length.
	if len(body) != len(msg) {
		t.Fatalf("corrupted body length %d, want %d", len(body), len(msg))
	}
	if body == msg {
		t.Fatal("corrupt rate 1 left the body intact")
	}
	diff := 0
	for i := range msg {
		if body[i] != msg[i] {
			diff++
		}
	}
	if diff > 2 {
		t.Fatalf("%d bytes differ, want at most 2 (one per direction)", diff)
	}
}

func TestTruncateShortensBody(t *testing.T) {
	srv, _ := echoServer(t)
	const msg = "0123456789abcdef0123456789abcdef"
	client := &http.Client{Transport: New(nil, certain(func(r *Rates) { r.Truncate = 1 }), 7)}
	body, err := post(t, client, srv.URL, "/x", msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) >= len(msg) {
		t.Fatalf("truncated round trip returned %d bytes, want < %d", len(body), len(msg))
	}
	if !strings.HasPrefix(msg, body) {
		t.Fatalf("truncation is not a prefix: %q", body)
	}
}

func TestDelayRecordsDuration(t *testing.T) {
	srv, _ := echoServer(t)
	prof := certain(func(r *Rates) { r.Delay = 1; r.MaxDelay = 5 * time.Millisecond })
	tr := New(nil, prof, 3)
	client := &http.Client{Transport: tr}
	start := time.Now()
	if _, err := post(t, client, srv.URL, "/x", "hi"); err != nil {
		t.Fatal(err)
	}
	faults := tr.Faults()
	if len(faults) != 1 || faults[0].Kind != "delay" || faults[0].Dur <= 0 {
		t.Fatalf("faults = %v", faults)
	}
	if elapsed := time.Since(start); elapsed < faults[0].Dur {
		t.Fatalf("elapsed %v < recorded delay %v", elapsed, faults[0].Dur)
	}
}

// TestPerPathRates: a per-path override applies on that path only.
func TestPerPathRates(t *testing.T) {
	srv, hits := echoServer(t)
	prof := &Profile{
		Name:    "split",
		PerPath: map[string]Rates{"/lossy": {DropRequest: 1}},
	}
	client := &http.Client{Transport: New(nil, prof, 9)}
	if _, err := post(t, client, srv.URL, "/lossy", "x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("lossy path err = %v", err)
	}
	if body, err := post(t, client, srv.URL, "/clean", "x"); err != nil || body != "x" {
		t.Fatalf("clean path = %q, %v", body, err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

// TestPerPathSequencesIndependent: each path numbers its own requests,
// so interleaving traffic on other paths cannot shift a path's fault
// schedule — the property that makes multi-endpoint runs replayable.
func TestPerPathSequencesIndependent(t *testing.T) {
	srv, _ := echoServer(t)
	prof := Hostile()

	solo := New(nil, prof, 11)
	soloClient := &http.Client{Transport: solo}
	for i := 0; i < 20; i++ {
		//lint:ignore errdrop chaos faults are expected failures in this determinism probe
		_, _ = post(t, soloClient, srv.URL, "/api/result", "payload")
	}

	mixed := New(nil, prof, 11)
	mixedClient := &http.Client{Transport: mixed}
	for i := 0; i < 20; i++ {
		//lint:ignore errdrop chaos faults are expected failures in this determinism probe
		_, _ = post(t, mixedClient, srv.URL, "/api/lease", "noise")
		//lint:ignore errdrop chaos faults are expected failures in this determinism probe
		_, _ = post(t, mixedClient, srv.URL, "/api/result", "payload")
	}

	filter := func(fs []Fault) []Fault {
		var out []Fault
		for _, f := range fs {
			if f.Path == "/api/result" {
				out = append(out, f)
			}
		}
		return out
	}
	a, b := filter(solo.Faults()), filter(mixed.Faults())
	if len(a) == 0 {
		t.Fatal("no faults on /api/result across 20 hostile requests")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("interleaved traffic shifted the /api/result schedule:\n%v\nvs\n%v", a, b)
	}
}

// TestDamagedBodyKeepsHeaderIntact: corruption touches the body only;
// a checksum header set by the sender survives to expose it.
func TestDamagedBodyKeepsHeaderIntact(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Body-Sum", "expected-sum")
		//lint:ignore errdrop test server; a failed write surfaces client-side
		_, _ = w.Write([]byte("payload-bytes"))
	}))
	defer srv.Close()
	client := &http.Client{Transport: New(nil, certain(func(r *Rates) { r.Corrupt = 1 }), 5)}
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Body-Sum") != "expected-sum" {
		t.Fatal("corruption damaged the header")
	}
	if bytes.Equal(data, []byte("payload-bytes")) {
		t.Fatal("body not corrupted")
	}
}
