// Package core is the public face of the library: the abstract network
// model of Fig. 1(a) — deployment, communication model, programming
// primitives and cost functions — together with the PB_CAM broadcast
// algorithm and the design-methodology loop of Fig. 1(b): specify the
// algorithm, analyse it on the model, and tune its free parameter
// against a user-chosen performance metric.
//
// Typical use:
//
//	m := core.DefaultModel()                  // P=5, s=3, CAM
//	m.Rho = 100                               // measured density
//	opt, _ := m.OptimalProbability(core.MaxReachability,
//	    core.Constraints{Latency: 5, Reach: 0.72, Budget: 35})
//	res, _ := m.Simulate(opt.P, 42)           // validate on the simulator
package core

import (
	"errors"
	"fmt"
	"math"

	"sensornet/internal/analytic"
	"sensornet/internal/buckets"
	"sensornet/internal/channel"
	"sensornet/internal/metrics"
	"sensornet/internal/optimize"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// Re-exported leaf types, so examples and tools need only this package.
type (
	// Timeline is a broadcast execution reduced to cumulative
	// reachability and broadcast count at phase boundaries.
	Timeline = metrics.Timeline
	// Constraints fixes the §4.1 metric constraint levels.
	Constraints = optimize.Constraints
	// Optimum is a located optimal broadcast probability.
	Optimum = optimize.Optimum
	// Point carries all four metric values at one probability.
	Point = optimize.Point
	// Model is a link-level communication model identifier.
	Model = channel.Model
	// Summary aggregates per-run metric samples.
	Summary = metrics.Summary
)

// Communication model identifiers.
const (
	CFM             = channel.CFM
	CAM             = channel.CAM
	CAMCarrierSense = channel.CAMCarrierSense
)

// NetworkModel is the abstract network model algorithms are designed
// against: a uniform disk deployment of density Rho (neighbours per
// node) with P rings of transmission radius R, slotted phases of S
// slots, and a link-level communication model.
type NetworkModel struct {
	// P is the field radius in transmission radii.
	P int
	// S is the number of backoff slots per time phase.
	S int
	// Rho is the density as average neighbours per node (δπr²).
	Rho float64
	// R is the transmission radius (scale parameter; default 1).
	R float64
	// Comm selects the communication model (default CAM).
	Comm Model
}

// DefaultModel returns the paper's evaluation model: P = 5, s = 3,
// CAM, unit radius, density 60.
func DefaultModel() NetworkModel {
	return NetworkModel{P: 5, S: 3, Rho: 60, R: 1, Comm: CAM}
}

// Validate reports whether the model is usable.
func (m NetworkModel) Validate() error {
	if m.P < 1 || m.S < 1 || m.Rho <= 0 {
		return fmt.Errorf("core: invalid model %+v", m)
	}
	return nil
}

// N returns the expected node count δπ(Pr)² = ρP².
func (m NetworkModel) N() float64 {
	return m.Rho * float64(m.P) * float64(m.P)
}

// Costs returns the per-transmission cost constants of the model's
// communication layer.
func (m NetworkModel) Costs() channel.Costs {
	return channel.DefaultCosts(m.Comm)
}

// Analyze evaluates the paper's analytical framework for PB_CAM with
// broadcast probability p and returns the predicted timeline.
func (m NetworkModel) Analyze(p float64) (Timeline, error) {
	if err := m.Validate(); err != nil {
		return Timeline{}, err
	}
	if m.Comm == CFM {
		//lint:ignore floateq flooding is exactly p = 1 by definition; callers pass the literal, nothing is computed
		if p != 1 {
			return Timeline{}, errors.New("core: CFM analysis covers flooding (p = 1) only")
		}
		return analytic.CFMFlooding(m.P, m.Rho), nil
	}
	res, err := analytic.Run(m.analyticConfig(p))
	if err != nil {
		return Timeline{}, err
	}
	return res.Timeline, nil
}

// FloodingSuccessRate returns the modelled mean broadcast success rate
// of simple flooding under CAM (the Fig. 12 quantity).
func (m NetworkModel) FloodingSuccessRate() (float64, error) {
	cfg := m.analyticConfig(1)
	cfg.TrackSuccessRate = true
	res, err := analytic.Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.SuccessRate, nil
}

// Simulate runs one simulation of PB_CAM with probability p.
func (m NetworkModel) Simulate(p float64, seed int64) (*sim.Result, error) {
	return sim.Run(m.simConfig(protocol.Probability{P: p}, seed, false))
}

// SimulateAsync runs one simulation with per-node random phase offsets
// (no network-wide slot alignment).
func (m NetworkModel) SimulateAsync(p float64, seed int64) (*sim.Result, error) {
	return sim.Run(m.simConfig(protocol.Probability{P: p}, seed, true))
}

// SimulateProtocol runs one simulation of an arbitrary broadcast
// scheme (flooding, counter-based, distance-based, ...).
func (m NetworkModel) SimulateProtocol(pr protocol.Protocol, seed int64) (*sim.Result, error) {
	return sim.Run(m.simConfig(pr, seed, false))
}

// SimulateMany runs `runs` independent simulations of PB_CAM and
// aggregates them.
func (m NetworkModel) SimulateMany(p float64, seed int64, runs int) (*sim.Aggregate, error) {
	cfg := m.simConfig(protocol.Probability{P: p}, seed, false)
	return sim.RunMany(cfg, runs, 0)
}

// Objective selects which §4.1 metric OptimalProbability optimises.
type Objective int

const (
	// MaxReachability maximises reachability within the latency
	// constraint (metric 1, Fig. 4).
	MaxReachability Objective = iota
	// MinLatency minimises latency to the reachability constraint
	// (metric 3, Fig. 5).
	MinLatency
	// MinEnergy minimises broadcasts to the reachability constraint
	// (metric 4, Fig. 6).
	MinEnergy
	// MaxReachabilityAtBudget maximises reachability within the
	// broadcast budget (metric 5, Fig. 7).
	MaxReachabilityAtBudget
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaxReachability:
		return "max-reachability@latency"
	case MinLatency:
		return "min-latency@reachability"
	case MinEnergy:
		return "min-energy@reachability"
	case MaxReachabilityAtBudget:
		return "max-reachability@budget"
	default:
		return "unknown"
	}
}

// OptimalProbability performs the Fig. 1(b) optimisation: it sweeps the
// broadcast probability over grid (defaulting to the paper's
// 0.01..1.00 step 0.01 when nil) on the analytical model and returns
// the optimum for the objective.
func (m NetworkModel) OptimalProbability(obj Objective, c Constraints, grid []float64) (Optimum, error) {
	if err := m.Validate(); err != nil {
		return Optimum{}, err
	}
	if grid == nil {
		grid = defaultGrid()
	}
	pts, err := optimize.SweepAnalytic(m.analyticConfig(0), grid, c)
	if err != nil {
		return Optimum{}, err
	}
	var o Optimum
	var ok bool
	switch obj {
	case MaxReachability:
		o, ok = optimize.MaxReachAtLatency(pts)
	case MinLatency:
		o, ok = optimize.MinLatency(pts)
	case MinEnergy:
		o, ok = optimize.MinBroadcasts(pts)
	case MaxReachabilityAtBudget:
		o, ok = optimize.MaxReachAtBudget(pts)
	default:
		return Optimum{}, fmt.Errorf("core: unknown objective %d", int(obj))
	}
	if !ok {
		return Optimum{}, fmt.Errorf("core: no feasible probability for %v under %+v", obj, c)
	}
	return o, nil
}

// OptimalProbabilityRefined is OptimalProbability followed by a
// golden-section refinement over the bracketing grid interval, so a
// coarse grid still yields a sharp optimum. maxEvals bounds the extra
// model evaluations (default 24 when <= 0).
func (m NetworkModel) OptimalProbabilityRefined(obj Objective, c Constraints, grid []float64, maxEvals int) (Optimum, error) {
	if grid == nil {
		grid = defaultGrid()
	}
	if maxEvals <= 0 {
		maxEvals = 24
	}
	coarse, err := m.OptimalProbability(obj, c, grid)
	if err != nil {
		return Optimum{}, err
	}
	pts, err := optimize.SweepAnalytic(m.analyticConfig(0), grid, c)
	if err != nil {
		return Optimum{}, err
	}
	eval := func(p float64) float64 {
		res, err := analytic.Run(m.analyticConfig(p))
		if err != nil {
			return math.NaN()
		}
		switch obj {
		case MaxReachability:
			return res.Timeline.ReachabilityAtPhase(c.Latency)
		case MinLatency:
			if l, ok := res.Timeline.LatencyToReach(c.Reach); ok {
				return l
			}
		case MinEnergy:
			if b, ok := res.Timeline.BroadcastsToReach(c.Reach); ok {
				return b
			}
		case MaxReachabilityAtBudget:
			return res.Timeline.ReachabilityAtBudget(c.Budget)
		}
		return math.NaN()
	}
	maximise := obj == MaxReachability || obj == MaxReachabilityAtBudget
	return optimize.RefineOptimum(pts, coarse, eval, maximise, maxEvals), nil
}

// Sweep exposes the raw analytic metric sweep for custom analyses.
func (m NetworkModel) Sweep(c Constraints, grid []float64) ([]Point, error) {
	if grid == nil {
		grid = defaultGrid()
	}
	return optimize.SweepAnalytic(m.analyticConfig(0), grid, c)
}

func defaultGrid() []float64 {
	g := make([]float64, 100)
	for i := range g {
		g[i] = float64(i+1) / 100
	}
	return g
}

func (m NetworkModel) analyticConfig(p float64) analytic.Config {
	return analytic.Config{
		P: m.P, S: m.S, Rho: m.Rho, R: m.R, Prob: p,
		KMode:        buckets.KLinear,
		CarrierSense: m.Comm == CAMCarrierSense,
	}
}

func (m NetworkModel) simConfig(pr protocol.Protocol, seed int64, async bool) sim.Config {
	return sim.Config{
		P: m.P, S: m.S, Rho: m.Rho, R: m.R,
		Model:    m.Comm,
		Protocol: pr,
		Seed:     seed,
		Async:    async,
	}
}
