package core

import (
	"math"
	"testing"

	"sensornet/internal/protocol"
)

func TestDefaultModelValid(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N() != 60*25 {
		t.Fatalf("N = %v, want 1500", m.N())
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	for _, m := range []NetworkModel{
		{P: 0, S: 3, Rho: 60},
		{P: 5, S: 0, Rho: 60},
		{P: 5, S: 3, Rho: 0},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("expected error for %+v", m)
		}
	}
}

func TestAnalyzeCAM(t *testing.T) {
	m := DefaultModel()
	tl, err := m.Analyze(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Valid() {
		t.Fatal("invalid analytic timeline")
	}
	if tl.ReachabilityAtPhase(5) <= 0 {
		t.Fatal("no progress predicted")
	}
}

func TestAnalyzeCFMFloodingOnly(t *testing.T) {
	m := DefaultModel()
	m.Comm = CFM
	tl, err := m.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.FinalReachability() != 1 {
		t.Fatalf("CFM flooding reach = %v, want 1", tl.FinalReachability())
	}
	if _, err := m.Analyze(0.5); err == nil {
		t.Fatal("CFM analysis should reject p != 1")
	}
}

func TestAnalyzeInvalidModel(t *testing.T) {
	m := NetworkModel{}
	if _, err := m.Analyze(0.5); err == nil {
		t.Fatal("invalid model should error")
	}
}

func TestOptimalProbabilityObjectives(t *testing.T) {
	m := DefaultModel()
	m.Rho = 100
	c := Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	grid := []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1}

	reach, err := m.OptimalProbability(MaxReachability, c, grid)
	if err != nil {
		t.Fatal(err)
	}
	if reach.P >= 0.7 {
		t.Fatalf("reach-optimal p = %v, expected moderate", reach.P)
	}
	lat, err := m.OptimalProbability(MinLatency, c, grid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat.P-reach.P) > 0.2 {
		t.Fatalf("duality: latency-optimal %v far from reach-optimal %v", lat.P, reach.P)
	}
	energy, err := m.OptimalProbability(MinEnergy, c, grid)
	if err != nil {
		t.Fatal(err)
	}
	if energy.P > 0.2 {
		t.Fatalf("energy-optimal p = %v, expected small", energy.P)
	}
	budget, err := m.OptimalProbability(MaxReachabilityAtBudget, c, grid)
	if err != nil {
		t.Fatal(err)
	}
	if budget.P > 0.2 {
		t.Fatalf("budget-optimal p = %v, expected small", budget.P)
	}
}

func TestOptimalProbabilityDefaultGrid(t *testing.T) {
	m := DefaultModel()
	o, err := m.OptimalProbability(MaxReachability,
		Constraints{Latency: 5, Reach: 0.72, Budget: 35}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.P <= 0 || o.P > 1 {
		t.Fatalf("optimal p %v outside (0,1]", o.P)
	}
}

func TestOptimalProbabilityUnknownObjective(t *testing.T) {
	m := DefaultModel()
	if _, err := m.OptimalProbability(Objective(99),
		Constraints{Latency: 5}, []float64{0.1}); err == nil {
		t.Fatal("unknown objective should error")
	}
}

func TestOptimalProbabilityInfeasible(t *testing.T) {
	m := DefaultModel()
	m.Rho = 20
	// At rho = 20 and p = 0.01 too few nodes relay per phase; a 72%
	// reachability target is never met (cf. Fig. 5's missing points).
	if _, err := m.OptimalProbability(MinLatency,
		Constraints{Latency: 5, Reach: 0.72, Budget: 35}, []float64{0.01}); err == nil {
		t.Fatal("infeasible constraint should error")
	}
}

func TestSimulateConsistency(t *testing.T) {
	m := DefaultModel()
	m.Rho = 40
	res, err := m.Simulate(0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1000 {
		t.Fatalf("simulated N = %d, want 1000", res.N)
	}
	if !res.Timeline.Valid() {
		t.Fatal("invalid simulated timeline")
	}
}

func TestSimulateAsync(t *testing.T) {
	m := DefaultModel()
	m.Rho = 30
	res, err := m.SimulateAsync(0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Timeline.Valid() {
		t.Fatal("invalid async timeline")
	}
}

func TestSimulateProtocolFlooding(t *testing.T) {
	m := DefaultModel()
	m.Rho = 30
	m.Comm = CFM
	res, err := m.SimulateProtocol(protocol.Flooding{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != res.Connected {
		t.Fatalf("CFM flooding reached %d of %d", res.Reached, res.Connected)
	}
}

func TestSimulateMany(t *testing.T) {
	m := DefaultModel()
	m.Rho = 30
	agg, err := m.SimulateMany(0.3, 11, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Runs) != 5 {
		t.Fatalf("runs = %d, want 5", len(agg.Runs))
	}
}

func TestAnalysisPredictsSimulationBallpark(t *testing.T) {
	// The methodology claim: the analytic prediction tracks the
	// simulation. The paper's own calibration has a systematic
	// optimistic offset (0.72 analytic vs 0.63 simulated at the
	// optimum) because the mean-field recursion ignores stochastic
	// die-out; we assert the same relationship — close at moderate p,
	// analytic never pessimistic by much.
	m := DefaultModel()
	m.Rho = 80
	simReach := func(p float64) float64 {
		agg, err := m.SimulateMany(p, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, r := range agg.Runs {
			sum += r.Timeline.ReachabilityAtPhase(5)
		}
		return sum / float64(len(agg.Runs))
	}
	anaReach := func(p float64) float64 {
		tl, err := m.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		return tl.ReachabilityAtPhase(5)
	}
	for _, p := range []float64{0.25, 0.5, 1} {
		pred, got := anaReach(p), simReach(p)
		if math.Abs(pred-got) > 0.3 {
			t.Fatalf("p=%v: analytic %v vs simulated %v diverge", p, pred, got)
		}
		if got > pred+0.1 {
			t.Fatalf("p=%v: simulation %v should not beat the collision-free-ish analysis %v",
				p, got, pred)
		}
	}
}

func TestFloodingSuccessRate(t *testing.T) {
	m := DefaultModel()
	m.Rho = 100
	rate, err := m.FloodingSuccessRate()
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate >= 0.5 {
		t.Fatalf("flooding success rate %v implausible at rho=100", rate)
	}
}

func TestObjectiveStrings(t *testing.T) {
	for _, c := range []struct {
		o    Objective
		want string
	}{
		{MaxReachability, "max-reachability@latency"},
		{MinLatency, "min-latency@reachability"},
		{MinEnergy, "min-energy@reachability"},
		{MaxReachabilityAtBudget, "max-reachability@budget"},
		{Objective(42), "unknown"},
	} {
		if got := c.o.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int(c.o), got, c.want)
		}
	}
}

func TestCostsOrdering(t *testing.T) {
	cam := DefaultModel()
	cfm := DefaultModel()
	cfm.Comm = CFM
	if cam.Costs().Energy > cfm.Costs().Energy {
		t.Fatal("e_a should not exceed e_f")
	}
}

func TestDeployFacade(t *testing.T) {
	m := DefaultModel()
	m.Rho = 30
	dep, err := m.Deploy(1)
	if err != nil {
		t.Fatal(err)
	}
	if dep.N() != 750 {
		t.Fatalf("deployed N = %d, want 750", dep.N())
	}
	if dep.Sensing != nil {
		t.Fatal("plain CAM should not build sensing lists")
	}
	m.Comm = CAMCarrierSense
	dep, err = m.Deploy(1)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Sensing == nil {
		t.Fatal("carrier-sense model should build sensing lists")
	}
}

func TestGatherFacadeCFMvsCAM(t *testing.T) {
	m := DefaultModel()
	m.Rho = 25
	m.Comm = CFM
	cfm, err := m.Gather(2)
	if err != nil {
		t.Fatal(err)
	}
	m.Comm = CAM
	cam, err := m.Gather(2)
	if err != nil {
		t.Fatal(err)
	}
	if cfm.Coverage != 1 {
		t.Fatalf("CFM gather coverage %v, want 1", cfm.Coverage)
	}
	if cam.Slots <= cfm.Slots {
		t.Fatalf("CAM gather %d slots should exceed CFM %d", cam.Slots, cfm.Slots)
	}
}

func TestReliableBroadcastCostFacade(t *testing.T) {
	m := DefaultModel()
	m.Rho = 30
	res, err := m.ReliableBroadcastCost(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("reliable broadcast incomplete: %+v", res)
	}
	if res.Transmissions <= res.Neighbors {
		t.Fatalf("reliable broadcast too cheap: %+v", res)
	}
}

func TestTDMACostFacade(t *testing.T) {
	m := DefaultModel()
	m.Rho = 20
	frame, err := m.TDMACost(4)
	if err != nil {
		t.Fatal(err)
	}
	// The two-hop conflict neighbourhood has ~4rho nodes; greedy
	// colouring needs at least the max clique, which is > rho.
	if frame < 10 || frame > 500 {
		t.Fatalf("TDMA frame %d implausible for rho=20", frame)
	}
}

func TestSimulateTracedFacade(t *testing.T) {
	m := DefaultModel()
	m.Rho = 40
	res, col, err := m.SimulateTraced(0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if col.Totals().Transmissions != res.Broadcasts {
		t.Fatalf("trace tx %d != result %d", col.Totals().Transmissions, res.Broadcasts)
	}
	if col.CollisionRate() < 0 || col.CollisionRate() > 1 {
		t.Fatalf("collision rate %v", col.CollisionRate())
	}
}

func TestOptimalProbabilityRefinedSharpensCoarseGrid(t *testing.T) {
	m := DefaultModel()
	m.Rho = 100
	c := Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	coarse := []float64{0.05, 0.15, 0.3, 0.6, 1}
	grid, err := m.OptimalProbability(MaxReachability, c, coarse)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := m.OptimalProbabilityRefined(MaxReachability, c, coarse, 0)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Value < grid.Value {
		t.Fatalf("refinement regressed: %v < %v", refined.Value, grid.Value)
	}
	// The fine-grid optimum sits near 0.13; the refined coarse result
	// must land close.
	if math.Abs(refined.P-0.13) > 0.05 {
		t.Fatalf("refined p = %v, want near 0.13", refined.P)
	}
}

func TestOptimalProbabilityRefinedMinObjective(t *testing.T) {
	m := DefaultModel()
	m.Rho = 60
	c := Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	coarse := []float64{0.02, 0.1, 0.3, 1}
	grid, err := m.OptimalProbability(MinEnergy, c, coarse)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := m.OptimalProbabilityRefined(MinEnergy, c, coarse, 16)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Value > grid.Value {
		t.Fatalf("energy refinement regressed: %v > %v", refined.Value, grid.Value)
	}
}

func TestOptimalProbabilityRefinedPropagatesInfeasible(t *testing.T) {
	m := DefaultModel()
	m.Rho = 20
	c := Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	if _, err := m.OptimalProbabilityRefined(MinLatency, c, []float64{0.01}, 8); err == nil {
		t.Fatal("infeasible constraint should error")
	}
}
