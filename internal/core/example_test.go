package core_test

import (
	"fmt"

	"sensornet/internal/core"
)

// The Fig. 1(b) methodology in four lines: define the abstract network
// model, state the performance constraints, and ask the analytical
// framework for the optimal broadcast probability.
func ExampleNetworkModel_OptimalProbability() {
	m := core.DefaultModel() // P=5 rings, s=3 slots, CAM
	m.Rho = 100              // measured density: neighbours per node

	c := core.Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	opt, err := m.OptimalProbability(core.MaxReachability, c, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("p* = %.2f\n", opt.P)
	fmt.Printf("predicted reachability = %.2f\n", opt.Value)
	// Output:
	// p* = 0.13
	// predicted reachability = 0.84
}

// Analytic evaluation of one operating point: the timeline exposes all
// four §4.1 metrics.
func ExampleNetworkModel_Analyze() {
	m := core.DefaultModel()
	m.Rho = 100
	tl, err := m.Analyze(0.13)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("reach in 5 phases: %.2f\n", tl.ReachabilityAtPhase(5))
	if lat, ok := tl.LatencyToReach(0.72); ok {
		fmt.Printf("phases to 72%%: %.1f\n", lat)
	}
	// Output:
	// reach in 5 phases: 0.84
	// phases to 72%: 4.6
}

// Flooding is PB_CAM with p = 1; under CAM its reachability within the
// deadline collapses at high density, which is the paper's core
// motivation.
func ExampleNetworkModel_Analyze_flooding() {
	m := core.DefaultModel()
	m.Rho = 140
	tl, err := m.Analyze(1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("flooding reach in 5 phases at rho=140: %.2f\n", tl.ReachabilityAtPhase(5))
	// Output:
	// flooding reach in 5 phases at rho=140: 0.45
}
