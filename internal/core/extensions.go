package core

import (
	"math/rand"

	"sensornet/internal/deploy"
	"sensornet/internal/gather"
	"sensornet/internal/protocol"
	"sensornet/internal/reliable"
	"sensornet/internal/sim"
	"sensornet/internal/trace"
)

// Deploy samples one concrete deployment of the model (with
// carrier-sensing neighbour lists when the model needs them).
func (m NetworkModel) Deploy(seed int64) (*deploy.Deployment, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return deploy.Generate(deploy.Config{
		P: m.P, R: m.R, Rho: m.Rho,
		WithSensing: m.Comm == CAMCarrierSense,
		//lint:ignore seedderive Deploy's contract is to seed the root RNG from the caller's seed verbatim
	}, rand.New(rand.NewSource(seed)))
}

// Gather runs one aggregating data-collection round (convergecast) on
// the model: readings flow up a BFS tree to the source. Under CFM the
// cost is the textbook lower bound; under CAM the same algorithm pays
// for contention windows and acknowledgments.
func (m NetworkModel) Gather(seed int64) (*gather.Result, error) {
	dep, err := m.Deploy(seed)
	if err != nil {
		return nil, err
	}
	return gather.Run(dep, gather.Config{
		Model:  m.Comm,
		Window: m.S,
		Seed:   seed,
	})
}

// ReliableBroadcastCost measures what one CFM-grade reliable local
// broadcast actually costs on this model's density, using the
// ACK/retransmit realisation of §3.2.1 (adaptive windows). The result's
// Slots and Transmissions are the empirical t_f and e_f.
func (m NetworkModel) ReliableBroadcastCost(seed int64) (reliable.AckResult, error) {
	dep, err := m.Deploy(seed)
	if err != nil {
		return reliable.AckResult{}, err
	}
	return reliable.AckBroadcast(dep, 0, reliable.AckConfig{
		Window: m.S, Adaptive: true, Seed: seed,
	})
}

// TDMACost builds a two-hop TDMA schedule for a deployment of the model
// and returns its frame length: the latency price of the
// multi-packet-reception realisation of CFM.
func (m NetworkModel) TDMACost(seed int64) (frameLen int, err error) {
	cfg := deploy.Config{P: m.P, R: m.R, Rho: m.Rho, WithSensing: true}
	//lint:ignore seedderive TDMACost seeds the root RNG from the caller's seed verbatim, mirroring Deploy
	dep, err := deploy.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	sched, err := reliable.BuildTDMA(dep)
	if err != nil {
		return 0, err
	}
	return sched.FrameLen, nil
}

// SimulateTraced runs one PB_CAM simulation with a trace collector
// attached and returns both the result and the collected channel
// statistics (collision profile, per-phase activity).
func (m NetworkModel) SimulateTraced(p float64, seed int64) (*sim.Result, *trace.Collector, error) {
	col := &trace.Collector{}
	cfg := m.simConfig(protocol.Probability{P: p}, seed, false)
	cfg.Tracer = col
	res, err := sim.Run(cfg)
	return res, col, err
}
