// Package deploy generates and indexes the sensor-field deployments the
// paper evaluates on: N = δπ(Pr)² nodes uniformly distributed in a disk
// of radius P·r with the broadcast source at the centre (§4).
//
// Deployments precompute neighbour lists (and, optionally, the
// carrier-sensing lists of nodes between r and 2r) with a uniform-grid
// spatial index, so simulation runs never pay an O(N²) neighbour scan.
package deploy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sensornet/internal/geom"
)

// Config describes a deployment to generate.
type Config struct {
	// P is the field radius in units of the transmission radius.
	P int
	// R is the transmission radius (defaults to 1).
	R float64
	// Rho is the target density as expected neighbours per node,
	// ρ = δπr². The node count becomes round(ρ·P²).
	Rho float64
	// N overrides the node count directly when positive (Rho is then
	// only informational).
	N int
	// Grid switches from uniform random placement to a square lattice
	// with spacing just under R, so each interior node has exactly its
	// four lattice neighbours in range — the grid deployment of the
	// percolation analysis the paper cites. Rho and N are ignored; the
	// node count is the number of lattice points inside the field.
	Grid bool
	// Profile, when non-nil, makes the deployment radially
	// heterogeneous: the local density at distance r from the centre
	// is proportional to Profile(r/fieldRadius). The node count still
	// follows Rho (interpreted as the field-wide mean density), so
	// profiles redistribute rather than add nodes. Profile must be
	// non-negative on [0, 1] and not identically zero.
	Profile func(rNorm float64) float64
	// WithSensing additionally builds the carrier-sensing neighbour
	// lists (nodes at distance in (r, 2r]).
	WithSensing bool
	// GainAlpha, when positive, additionally precomputes per-edge
	// path-loss gains g = (d/R)^-GainAlpha for every neighbour (and,
	// with WithSensing, every sensing-annulus) edge during the same
	// single distance pass that builds the lists. The normalised form
	// makes the gain exactly 1 at the range edge regardless of R, so
	// SINR decode thresholds are radius-independent. Zero leaves the
	// gain tables nil.
	GainAlpha float64
}

func (c *Config) applyDefaults() {
	//lint:ignore floateq exact zero is the "unset" sentinel for config fields, not a computed value
	if c.R == 0 {
		c.R = 1
	}
}

// Validate reports whether the configuration can produce a deployment.
func (c Config) Validate() error {
	if c.P < 1 {
		return errors.New("deploy: P must be >= 1")
	}
	if c.R < 0 {
		return errors.New("deploy: R must be >= 0")
	}
	if c.N <= 0 && c.Rho <= 0 && !c.Grid {
		return errors.New("deploy: need Rho > 0, N > 0, or Grid")
	}
	if c.N < 0 {
		return fmt.Errorf("deploy: negative N %d", c.N)
	}
	if c.GainAlpha < 0 {
		return fmt.Errorf("deploy: negative GainAlpha %g", c.GainAlpha)
	}
	return nil
}

// Deployment is an immutable snapshot of a deployed network. Node 0 is
// the broadcast source at the field centre.
type Deployment struct {
	// Pos holds node positions; Pos[0] is the origin.
	Pos []geom.Point
	// R is the transmission radius.
	R float64
	// FieldRadius is P·R.
	FieldRadius float64
	// Neighbors[i] lists nodes within distance R of node i (symmetric,
	// i excluded).
	Neighbors [][]int32
	// Sensing[i] lists nodes at distance in (R, 2R] of node i; nil
	// unless requested at generation time.
	Sensing [][]int32
	// Gains[i][k] is the path-loss gain (d/R)^-GainAlpha of the edge to
	// Neighbors[i][k]; SensingGains[i][k] likewise for Sensing[i][k].
	// Both are nil unless Config.GainAlpha was positive. Gains are
	// symmetric because distance is.
	Gains        [][]float64
	SensingGains [][]float64
	// GainAlpha records the path-loss exponent the gain tables were
	// built with (0 when absent).
	GainAlpha float64
}

// N returns the number of nodes including the source.
func (d *Deployment) N() int { return len(d.Pos) }

// Generate samples a deployment using rng. The result is deterministic
// for a given rng state.
func Generate(cfg Config, rng *rand.Rand) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	field := float64(cfg.P) * cfg.R
	d := &Deployment{R: cfg.R, FieldRadius: field}
	if cfg.Grid {
		d.Pos = latticePositions(field, cfg.R)
	} else {
		n := cfg.N
		if n == 0 {
			n = int(math.Round(cfg.Rho * float64(cfg.P) * float64(cfg.P)))
		}
		if n < 1 {
			n = 1
		}
		d.Pos = make([]geom.Point, n)
		d.Pos[0] = geom.Point{} // source at the centre
		sample := uniformRadius
		if cfg.Profile != nil {
			sample = profileSampler(cfg.Profile)
		}
		for i := 1; i < n; i++ {
			rr := field * sample(rng)
			th := 2 * math.Pi * rng.Float64()
			d.Pos[i] = geom.Point{X: rr * math.Cos(th), Y: rr * math.Sin(th)}
		}
	}
	d.buildNeighbors(cfg.WithSensing, cfg.GainAlpha)
	return d, nil
}

// PathGain is the normalised path-loss gain at squared distance dd for
// squared range r2 and exponent alpha: (d/R)^-alpha computed directly
// from the squared quantities, (dd/r2)^(-alpha/2). Coincident points
// are clamped to a tiny positive squared distance so the gain stays a
// large finite number instead of +Inf (whose interference arithmetic
// would produce NaN). Exposed so brute-force cross-checks can
// reproduce the precomputed tables bit for bit.
func PathGain(dd, r2, alpha float64) float64 {
	if dd < 1e-12*r2 {
		dd = 1e-12 * r2
	}
	return math.Pow(dd/r2, -0.5*alpha)
}

// uniformRadius samples a normalised radius for a uniform disk:
// r ~ sqrt(U).
func uniformRadius(rng *rand.Rand) float64 {
	return math.Sqrt(rng.Float64())
}

// profileSampler builds a normalised-radius sampler whose density at
// radius r is proportional to profile(r)·r (the r factor accounts for
// ring circumference), using rejection sampling against the weight's
// maximum on a fine grid.
func profileSampler(profile func(float64) float64) func(*rand.Rand) float64 {
	const probes = 256
	maxW := 0.0
	for i := 0; i <= probes; i++ {
		r := float64(i) / probes
		if w := profile(r) * r; w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return uniformRadius
	}
	return func(rng *rand.Rand) float64 {
		for {
			r := rng.Float64()
			if w := profile(r) * r; w >= 0 && rng.Float64()*maxW < w {
				return r
			}
		}
	}
}

// latticePositions returns the square-lattice points inside the field
// disk, source first. The spacing sits just below the transmission
// radius so lattice neighbours are unambiguously in range and
// diagonals unambiguously out.
func latticePositions(field, r float64) []geom.Point {
	spacing := 0.999 * r
	max := int(field / spacing)
	pos := []geom.Point{{}} // source at the origin
	for i := -max; i <= max; i++ {
		for j := -max; j <= max; j++ {
			if i == 0 && j == 0 {
				continue
			}
			p := geom.Point{X: float64(i) * spacing, Y: float64(j) * spacing}
			if p.Norm() <= field {
				pos = append(pos, p)
			}
		}
	}
	return pos
}

// buildNeighbors fills the neighbour (and optionally sensing) lists with
// a uniform grid of cell size 2R so that both ranges need only a 3×3
// cell scan when sensing lists are requested, and of size R otherwise.
//
// All lists of one kind share a single flat backing array: the scan
// appends every accepted candidate to the shared array (whose capacity
// is pre-sized from the expected degree, so growth is rare) and per-node
// sub-slices are carved afterwards. Growing each of the N lists by
// repeated append dominated the simulator's whole allocation profile
// (~97% of allocs at ρ=140); the flat layout reduces the build to a
// handful of allocations and keeps each node's neighbours contiguous —
// without a second distance pass.
func (d *Deployment) buildNeighbors(withSensing bool, gainAlpha float64) {
	n := len(d.Pos)
	d.Neighbors = make([][]int32, n)
	if withSensing {
		d.Sensing = make([][]int32, n)
	}
	withGains := gainAlpha > 0
	if withGains {
		d.GainAlpha = gainAlpha
		d.Gains = make([][]float64, n)
		if withSensing {
			d.SensingGains = make([][]float64, n)
		}
	}
	reach := d.R
	if withSensing {
		reach = 2 * d.R
	}
	if reach <= 0 {
		return
	}
	idx := newGridIndex(d.Pos, reach)
	r2 := d.R * d.R
	s2 := 4 * d.R * d.R

	// Expected totals: mean degree ≈ (n-1)·(R/field)², sensing annulus
	// holds 3× the disk's area. 10% slack absorbs density fluctuations.
	estDeg := float64(n-1) * r2 / (d.FieldRadius * d.FieldRadius)
	est := int(1.1*float64(n)*estDeg) + 64

	nbrCount := make([]int32, n)
	nbrFlat := make([]int32, 0, est)
	var senseCount []int32
	var senseFlat []int32
	if withSensing {
		senseCount = make([]int32, n)
		senseFlat = make([]int32, 0, 3*est)
	}
	// Gain values ride the same flat-array discipline as the index
	// lists: appended during the one distance pass (the squared distance
	// is already in hand), carved into per-node sub-slices afterwards.
	var nbrGainFlat, senseGainFlat []float64
	if withGains {
		nbrGainFlat = make([]float64, 0, est)
		if withSensing {
			senseGainFlat = make([]float64, 0, 3*est)
		}
	}
	for i := 0; i < n; i++ {
		pi := d.Pos[i]
		idx.visitCandidates(pi, func(j int32) {
			if int(j) == i {
				return
			}
			dd := pi.Dist2(d.Pos[j])
			switch {
			case dd <= r2:
				nbrFlat = append(nbrFlat, j)
				nbrCount[i]++
				if withGains {
					nbrGainFlat = append(nbrGainFlat, PathGain(dd, r2, gainAlpha))
				}
			case withSensing && dd <= s2:
				senseFlat = append(senseFlat, j)
				senseCount[i]++
				if withGains {
					senseGainFlat = append(senseGainFlat, PathGain(dd, r2, gainAlpha))
				}
			}
		})
	}

	for i, off := 0, 0; i < n; i++ {
		end := off + int(nbrCount[i])
		d.Neighbors[i] = nbrFlat[off:end:end]
		if withGains {
			d.Gains[i] = nbrGainFlat[off:end:end]
		}
		off = end
	}
	if withSensing {
		for i, off := 0, 0; i < n; i++ {
			end := off + int(senseCount[i])
			d.Sensing[i] = senseFlat[off:end:end]
			if withGains {
				d.SensingGains[i] = senseGainFlat[off:end:end]
			}
			off = end
		}
	}
}

// Degree returns the neighbour count of node i.
func (d *Deployment) Degree(i int) int { return len(d.Neighbors[i]) }

// AvgDegree returns the mean neighbour count over all nodes.
func (d *Deployment) AvgDegree() float64 {
	if len(d.Pos) == 0 {
		return 0
	}
	sum := 0
	for i := range d.Pos {
		sum += len(d.Neighbors[i])
	}
	return float64(sum) / float64(len(d.Pos))
}

// ReachableFromSource returns the number of nodes (including the source)
// connected to node 0 in the communication graph: the ceiling on any
// broadcast scheme's reachability.
func (d *Deployment) ReachableFromSource() int {
	n := len(d.Pos)
	if n == 0 {
		return 0
	}
	seen := make([]bool, n)
	seen[0] = true
	queue := []int32{0}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.Neighbors[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count
}

// RingOf returns the 1-indexed ring of node i under the paper's P-ring
// partition of the field.
func (d *Deployment) RingOf(i int) int {
	rp := geom.RingPartition{R: d.R, P: int(math.Round(d.FieldRadius / d.R))}
	return rp.RingOf(d.Pos[i].Norm())
}
