package deploy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sensornet/internal/geom"
)

func gen(t *testing.T, cfg Config, seed int64) *Deployment {
	t.Helper()
	d, err := Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{P: 0, Rho: 20},
		{P: 5, R: -1, Rho: 20},
		{P: 5},
		{P: 5, N: -3},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestNodeCountFromDensity(t *testing.T) {
	d := gen(t, Config{P: 5, Rho: 20}, 1)
	if d.N() != 500 {
		t.Fatalf("N = %d, want 500", d.N())
	}
}

func TestExplicitNOverridesRho(t *testing.T) {
	d := gen(t, Config{P: 5, Rho: 20, N: 123}, 1)
	if d.N() != 123 {
		t.Fatalf("N = %d, want 123", d.N())
	}
}

func TestSourceAtCentre(t *testing.T) {
	d := gen(t, Config{P: 5, Rho: 20}, 2)
	if d.Pos[0].Norm() != 0 {
		t.Fatal("node 0 must sit at the origin")
	}
}

func TestAllNodesInsideField(t *testing.T) {
	d := gen(t, Config{P: 4, R: 2, Rho: 30}, 3)
	for i, p := range d.Pos {
		if p.Norm() > d.FieldRadius+1e-9 {
			t.Fatalf("node %d at %v outside field radius %v", i, p, d.FieldRadius)
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	d := gen(t, Config{P: 3, Rho: 25}, 4)
	adj := make(map[[2]int32]bool)
	for i, ns := range d.Neighbors {
		for _, j := range ns {
			adj[[2]int32{int32(i), j}] = true
		}
	}
	for k := range adj {
		if !adj[[2]int32{k[1], k[0]}] {
			t.Fatalf("edge %v not symmetric", k)
		}
	}
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	d := gen(t, Config{P: 3, Rho: 15}, 5)
	r2 := d.R * d.R
	for i := range d.Pos {
		want := map[int32]bool{}
		for j := range d.Pos {
			if i != j && d.Pos[i].Dist2(d.Pos[j]) <= r2 {
				want[int32(j)] = true
			}
		}
		if len(want) != len(d.Neighbors[i]) {
			t.Fatalf("node %d: grid found %d neighbours, brute force %d",
				i, len(d.Neighbors[i]), len(want))
		}
		for _, j := range d.Neighbors[i] {
			if !want[j] {
				t.Fatalf("node %d: spurious neighbour %d", i, j)
			}
		}
	}
}

func TestSensingListsMatchBruteForce(t *testing.T) {
	d := gen(t, Config{P: 3, Rho: 15, WithSensing: true}, 6)
	r2, s2 := d.R*d.R, 4*d.R*d.R
	for i := range d.Pos {
		want := map[int32]bool{}
		for j := range d.Pos {
			if i == j {
				continue
			}
			dd := d.Pos[i].Dist2(d.Pos[j])
			if dd > r2 && dd <= s2 {
				want[int32(j)] = true
			}
		}
		if len(want) != len(d.Sensing[i]) {
			t.Fatalf("node %d: sensing %d vs brute force %d",
				i, len(d.Sensing[i]), len(want))
		}
	}
}

func TestSensingNilWithoutRequest(t *testing.T) {
	d := gen(t, Config{P: 3, Rho: 15}, 7)
	if d.Sensing != nil {
		t.Fatal("sensing lists should be nil unless requested")
	}
}

func TestAvgDegreeTracksRho(t *testing.T) {
	// Interior nodes see ~ρ neighbours; the field average sits a bit
	// below due to boundary effects. Check the ballpark over several
	// seeds.
	rho := 40.0
	sum := 0.0
	for seed := int64(0); seed < 5; seed++ {
		d := gen(t, Config{P: 5, Rho: rho}, seed)
		sum += d.AvgDegree()
	}
	avg := sum / 5
	if avg < 0.6*rho || avg > 1.05*rho {
		t.Fatalf("avg degree %v implausible for rho %v", avg, rho)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := gen(t, Config{P: 4, Rho: 25}, 42)
	b := gen(t, Config{P: 4, Rho: 25}, 42)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("positions diverge at node %d for equal seeds", i)
		}
	}
}

func TestReachableFromSourceDenseNetwork(t *testing.T) {
	d := gen(t, Config{P: 5, Rho: 40}, 8)
	reach := d.ReachableFromSource()
	// A ρ = 40 uniform disk is connected with overwhelming probability.
	if float64(reach) < 0.99*float64(d.N()) {
		t.Fatalf("only %d/%d nodes connected to source", reach, d.N())
	}
}

func TestReachableFromSourceSparse(t *testing.T) {
	// A near-empty field cannot all be connected.
	d := gen(t, Config{P: 10, Rho: 0.5}, 9)
	if got := d.ReachableFromSource(); got > d.N()/2 {
		t.Fatalf("sparse network unexpectedly connected: %d/%d", got, d.N())
	}
}

func TestDegreeAccessor(t *testing.T) {
	d := gen(t, Config{P: 3, Rho: 20}, 10)
	if d.Degree(0) != len(d.Neighbors[0]) {
		t.Fatal("Degree accessor mismatch")
	}
}

func TestRingOfSourceAndEdge(t *testing.T) {
	d := gen(t, Config{P: 5, Rho: 20}, 11)
	if d.RingOf(0) != 1 {
		t.Fatalf("source ring = %d, want 1", d.RingOf(0))
	}
	for i := range d.Pos {
		ring := d.RingOf(i)
		if ring < 1 || ring > 5 {
			t.Fatalf("node %d ring %d outside [1,5]", i, ring)
		}
	}
}

func TestUniformityByRingProperty(t *testing.T) {
	// Expected node share per ring is proportional to ring area:
	// (2j-1)/P². Check with a generous tolerance on a large sample.
	d := gen(t, Config{P: 5, Rho: 200}, 12)
	counts := make([]int, 6)
	for i := range d.Pos {
		counts[d.RingOf(i)]++
	}
	n := float64(d.N())
	for j := 1; j <= 5; j++ {
		want := float64(2*j-1) / 25
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 0.03 {
			t.Errorf("ring %d share %v, want ~%v", j, got, want)
		}
	}
}

func TestSingleNodeDeployment(t *testing.T) {
	d := gen(t, Config{P: 1, N: 1}, 13)
	if d.N() != 1 || len(d.Neighbors[0]) != 0 {
		t.Fatal("single-node deployment malformed")
	}
	if d.ReachableFromSource() != 1 {
		t.Fatal("single node should reach itself")
	}
}

func TestGridIndexDegenerate(t *testing.T) {
	g := newGridIndex(nil, 1)
	called := false
	g.visitCandidates(geom.Point{}, func(int32) { called = true })
	if called {
		t.Fatal("empty index should visit nothing")
	}
}

func TestNeighborListsStableUnderSensingOption(t *testing.T) {
	// Building with sensing lists must not change the plain neighbour
	// lists (the grid cell size differs internally).
	f := func(seed int64) bool {
		a, err1 := Generate(Config{P: 3, Rho: 12}, rand.New(rand.NewSource(seed)))
		b, err2 := Generate(Config{P: 3, Rho: 12, WithSensing: true}, rand.New(rand.NewSource(seed)))
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Neighbors {
			if len(a.Neighbors[i]) != len(b.Neighbors[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateRho60(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{P: 5, Rho: 60}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateRho140Sensing(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{P: 5, Rho: 140, WithSensing: true}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGridDeploymentStructure(t *testing.T) {
	d := gen(t, Config{P: 6, Grid: true}, 1)
	if d.Pos[0].Norm() != 0 {
		t.Fatal("grid source must sit at the origin")
	}
	// Interior nodes have exactly 4 lattice neighbours.
	interior := 0
	for i := range d.Pos {
		if d.Pos[i].Norm() < d.FieldRadius-2*d.R {
			interior++
			if got := d.Degree(i); got != 4 {
				t.Fatalf("interior grid node %d has %d neighbours, want 4", i, got)
			}
		}
	}
	if interior == 0 {
		t.Fatal("no interior nodes to check")
	}
	// The lattice fills the disk: ~ pi * (P/0.999)^2 points.
	want := math.Pi * 36
	if math.Abs(float64(d.N())-want) > 0.15*want {
		t.Fatalf("grid node count %d far from %v", d.N(), want)
	}
}

func TestGridDeterministicAndRNGFree(t *testing.T) {
	a := gen(t, Config{P: 4, Grid: true}, 1)
	b := gen(t, Config{P: 4, Grid: true}, 999)
	if a.N() != b.N() {
		t.Fatal("grid layout must not depend on the seed")
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("grid positions must not depend on the seed")
		}
	}
}

func TestGridValidatesWithoutRho(t *testing.T) {
	if _, err := Generate(Config{P: 3, Grid: true}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("grid config without Rho should be valid: %v", err)
	}
}
