package deploy

import (
	"math/rand"
	"testing"
)

func TestGainTablesMatchPathGain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := Generate(Config{P: 3, Rho: 15, WithSensing: true, GainAlpha: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.GainAlpha != 3 {
		t.Fatalf("GainAlpha = %v, want 3", d.GainAlpha)
	}
	r2 := d.R * d.R
	for i := range d.Pos {
		if len(d.Gains[i]) != len(d.Neighbors[i]) {
			t.Fatalf("node %d: %d gains for %d neighbours", i, len(d.Gains[i]), len(d.Neighbors[i]))
		}
		for k, j := range d.Neighbors[i] {
			want := PathGain(d.Pos[i].Dist2(d.Pos[j]), r2, 3)
			if d.Gains[i][k] != want {
				t.Fatalf("gain(%d,%d) = %v, want %v (bit-exact)", i, j, d.Gains[i][k], want)
			}
			if d.Gains[i][k] < 1 {
				t.Fatalf("in-range gain(%d,%d) = %v < 1: normalisation is (d/R)^-α", i, j, d.Gains[i][k])
			}
		}
		if len(d.SensingGains[i]) != len(d.Sensing[i]) {
			t.Fatalf("node %d: %d sensing gains for %d annulus nodes", i, len(d.SensingGains[i]), len(d.Sensing[i]))
		}
		for k, j := range d.Sensing[i] {
			want := PathGain(d.Pos[i].Dist2(d.Pos[j]), r2, 3)
			if d.SensingGains[i][k] != want {
				t.Fatalf("sensing gain(%d,%d) = %v, want %v (bit-exact)", i, j, d.SensingGains[i][k], want)
			}
			if g := d.SensingGains[i][k]; g >= 1 {
				t.Fatalf("annulus gain(%d,%d) = %v >= 1", i, j, g)
			}
		}
	}
}

func TestGainTablesNilWithoutGainAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := Generate(Config{P: 3, Rho: 15, WithSensing: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.Gains != nil || d.SensingGains != nil || d.GainAlpha != 0 {
		t.Fatal("gain tables should stay nil when GainAlpha is unset")
	}
}

// TestGainAlphaDoesNotPerturbPositions pins the common-random-numbers
// property the shootout campaign leans on: positions are sampled before
// the neighbour build, so enabling sensing lists or gain tables must
// not shift a single node. The same seed therefore deploys identical
// fields under CFM, CAM, and SINR.
func TestGainAlphaDoesNotPerturbPositions(t *testing.T) {
	base, err := Generate(Config{P: 3, Rho: 15}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	gained, err := Generate(Config{P: 3, Rho: 15, WithSensing: true, GainAlpha: 3}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Pos) != len(gained.Pos) {
		t.Fatalf("node counts differ: %d vs %d", len(base.Pos), len(gained.Pos))
	}
	for i := range base.Pos {
		if base.Pos[i] != gained.Pos[i] {
			t.Fatalf("node %d moved: %v vs %v", i, base.Pos[i], gained.Pos[i])
		}
	}
}

func TestValidateRejectsNegativeGainAlpha(t *testing.T) {
	cfg := Config{P: 3, Rho: 15, GainAlpha: -1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative GainAlpha should be rejected")
	}
}

func TestPathGainClampsCoincidentPoints(t *testing.T) {
	g := PathGain(0, 1, 3)
	if g != PathGain(1e-13, 1, 3) {
		t.Fatal("sub-clamp distances should all hit the clamp value")
	}
	if g <= 0 || g != g || g > 1e20 {
		t.Fatalf("clamped gain = %v, want large finite positive", g)
	}
}
