package deploy

import (
	"math"

	"sensornet/internal/geom"
)

// gridIndex is a uniform-grid spatial index over node positions. Cell
// size equals the query radius, so every point within that radius of a
// query point lies in the 3×3 block of cells around it.
type gridIndex struct {
	cell    float64
	minX    float64
	minY    float64
	cols    int
	rows    int
	buckets [][]int32
}

func newGridIndex(pos []geom.Point, cell float64) *gridIndex {
	g := &gridIndex{cell: cell}
	if len(pos) == 0 || cell <= 0 {
		return g
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pos {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/cell) + 1
	g.rows = int((maxY-minY)/cell) + 1
	// Count-then-fill into one flat backing array: growing each bucket
	// by append costs an allocation per growth step across thousands of
	// cells, where the flat layout needs exactly three.
	g.buckets = make([][]int32, g.cols*g.rows)
	counts := make([]int32, len(g.buckets))
	for _, p := range pos {
		counts[g.cellOf(p)]++
	}
	flat := make([]int32, len(pos))
	off := 0
	for c := range g.buckets {
		g.buckets[c] = flat[off : off : off+int(counts[c])]
		off += int(counts[c])
	}
	for i, p := range pos {
		c := g.cellOf(p)
		g.buckets[c] = append(g.buckets[c], int32(i))
	}
	return g
}

func (g *gridIndex) cellOf(p geom.Point) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// visitCandidates invokes fn for every indexed point in the 3×3 cell
// block around p: a superset of the points within g.cell of p.
func (g *gridIndex) visitCandidates(p geom.Point, fn func(int32)) {
	if len(g.buckets) == 0 {
		return
	}
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, id := range g.buckets[y*g.cols+x] {
				fn(id)
			}
		}
	}
}
