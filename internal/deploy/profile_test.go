package deploy

import (
	"math"
	"math/rand"
	"testing"
)

func TestProfileHotspotConcentratesCentre(t *testing.T) {
	// Density falling linearly to zero at the edge: far more nodes in
	// the inner half-radius than uniform placement would put there.
	hotspot := func(r float64) float64 { return 1 - r }
	d := gen(t, Config{P: 5, Rho: 100, Profile: hotspot}, 1)
	u := gen(t, Config{P: 5, Rho: 100}, 1)
	inner := func(dep *Deployment) float64 {
		count := 0
		for _, p := range dep.Pos {
			if p.Norm() < dep.FieldRadius/2 {
				count++
			}
		}
		return float64(count) / float64(dep.N())
	}
	if !(inner(d) > inner(u)+0.15) {
		t.Fatalf("hotspot inner share %v not above uniform %v", inner(d), inner(u))
	}
}

func TestProfilePreservesNodeCount(t *testing.T) {
	d := gen(t, Config{P: 5, Rho: 40, Profile: func(r float64) float64 { return r }}, 2)
	if d.N() != 1000 {
		t.Fatalf("N = %d, want 1000", d.N())
	}
}

func TestProfileEdgeWeighted(t *testing.T) {
	// Density rising with radius: outer ring overpopulated relative to
	// uniform.
	edge := func(r float64) float64 { return r * r }
	d := gen(t, Config{P: 5, Rho: 100, Profile: edge}, 3)
	outer := 0
	for i := range d.Pos {
		if d.RingOf(i) == 5 {
			outer++
		}
	}
	share := float64(outer) / float64(d.N())
	// Uniform share of ring 5 is 9/25 = 0.36; r² weighting pushes it
	// well above.
	if share < 0.45 {
		t.Fatalf("edge profile outer share %v, want > 0.45", share)
	}
}

func TestProfileMatchesExpectedRadialLaw(t *testing.T) {
	// For profile(r) = r the radial CDF is r³ (density ∝ r·r); the
	// median radius is 2^(-1/3).
	d := gen(t, Config{P: 10, Rho: 100, Profile: func(r float64) float64 { return r }}, 4)
	radii := make([]float64, 0, d.N())
	for _, p := range d.Pos[1:] { // skip the pinned source
		radii = append(radii, p.Norm()/d.FieldRadius)
	}
	below := 0
	median := math.Pow(0.5, 1.0/3)
	for _, r := range radii {
		if r < median {
			below++
		}
	}
	frac := float64(below) / float64(len(radii))
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("median check: %v of mass below theoretical median", frac)
	}
}

func TestProfileDegenerateFallsBackToUniform(t *testing.T) {
	// An identically-zero profile cannot be normalised; the sampler
	// falls back to uniform rather than looping forever.
	d, err := Generate(Config{P: 3, Rho: 30, Profile: func(float64) float64 { return 0 }},
		rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 270 {
		t.Fatalf("N = %d, want 270", d.N())
	}
}
