// Package design implements the top-down half of the paper's Fig. 1(a)
// methodology: an algorithm is specified against the abstract network
// model with its tunable parameters declared, and an optimisation
// driver explores the parameter space against a user-chosen performance
// objective. PB_CAM's single parameter p is the paper's case study;
// the same driver tunes multi-parameter algorithms (e.g. the broadcast
// probability jointly with the backoff window).
package design

import (
	"errors"
	"fmt"

	"sensornet/internal/metrics"
)

// Parameter declares one tunable design- or run-time parameter.
type Parameter struct {
	// Name labels the parameter in reports.
	Name string
	// Grid enumerates the candidate values explored for this
	// parameter. Must be non-empty.
	Grid []float64
}

// Algorithm is an algorithm specification: a name, the declared
// parameters, and an evaluation hook that maps one parameter assignment
// to a performance timeline on the network model (analytically or by
// simulation — the driver does not care).
type Algorithm struct {
	Name   string
	Params []Parameter
	// Evaluate returns the execution timeline under the given
	// parameter assignment (same order as Params).
	Evaluate func(values []float64) (metrics.Timeline, error)
}

// Validate reports whether the specification is complete.
func (a Algorithm) Validate() error {
	if a.Evaluate == nil {
		return errors.New("design: algorithm needs an Evaluate hook")
	}
	if len(a.Params) == 0 {
		return errors.New("design: algorithm declares no parameters")
	}
	for _, p := range a.Params {
		if len(p.Grid) == 0 {
			return fmt.Errorf("design: parameter %q has an empty grid", p.Name)
		}
	}
	return nil
}

// Objective scores a timeline; ok reports feasibility (e.g. a
// reachability constraint that was never met).
type Objective struct {
	Name     string
	Maximise bool
	Score    func(metrics.Timeline) (value float64, ok bool)
}

// MaxReachabilityAt returns the §4.1 metric-1 objective.
func MaxReachabilityAt(latency float64) Objective {
	return Objective{
		Name:     fmt.Sprintf("max reachability @ %g phases", latency),
		Maximise: true,
		Score: func(tl metrics.Timeline) (float64, bool) {
			return tl.ReachabilityAtPhase(latency), true
		},
	}
}

// MinLatencyTo returns the §4.1 metric-3 objective.
func MinLatencyTo(reach float64) Objective {
	return Objective{
		Name: fmt.Sprintf("min latency to %.0f%%", reach*100),
		Score: func(tl metrics.Timeline) (float64, bool) {
			return tl.LatencyToReach(reach)
		},
	}
}

// MinEnergyTo returns the §4.1 metric-4 objective.
func MinEnergyTo(reach float64) Objective {
	return Objective{
		Name: fmt.Sprintf("min broadcasts to %.0f%%", reach*100),
		Score: func(tl metrics.Timeline) (float64, bool) {
			return tl.BroadcastsToReach(reach)
		},
	}
}

// MaxReachabilityWithin returns the §4.1 metric-5 objective.
func MaxReachabilityWithin(budget float64) Objective {
	return Objective{
		Name:     fmt.Sprintf("max reachability @ %g broadcasts", budget),
		Maximise: true,
		Score: func(tl metrics.Timeline) (float64, bool) {
			return tl.ReachabilityAtBudget(budget), true
		},
	}
}

// Result is a tuned parameter assignment.
type Result struct {
	// Values is the best assignment found (same order as Params).
	Values []float64
	// Value is the objective at the optimum.
	Value float64
	// Evaluations counts model evaluations spent.
	Evaluations int
}

// Tune explores the full parameter grid (Cartesian product) and returns
// the feasible assignment optimising the objective. The search is
// exhaustive and deterministic: with the paper's grids, parameter
// spaces stay small enough that exactness beats heuristics.
func Tune(alg Algorithm, obj Objective) (*Result, error) {
	if err := alg.Validate(); err != nil {
		return nil, err
	}
	if obj.Score == nil {
		return nil, errors.New("design: objective needs a Score hook")
	}
	idx := make([]int, len(alg.Params))
	values := make([]float64, len(alg.Params))
	best := &Result{}
	found := false
	for {
		for i, p := range alg.Params {
			values[i] = p.Grid[idx[i]]
		}
		tl, err := alg.Evaluate(values)
		best.Evaluations++
		if err != nil {
			return nil, fmt.Errorf("design: evaluating %v: %w", values, err)
		}
		if v, ok := obj.Score(tl); ok {
			better := !found ||
				(obj.Maximise && v > best.Value) ||
				(!obj.Maximise && v < best.Value)
			if better {
				best.Value = v
				best.Values = append(best.Values[:0], values...)
				found = true
			}
		}
		// Advance the mixed-radix counter.
		k := 0
		for k < len(idx) {
			idx[k]++
			if idx[k] < len(alg.Params[k].Grid) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(idx) {
			break
		}
	}
	if !found {
		return nil, errors.New("design: no feasible assignment for " + obj.Name)
	}
	return best, nil
}
