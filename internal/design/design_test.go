package design

import (
	"errors"
	"math"
	"testing"

	"sensornet/internal/metrics"
)

// toyAlgorithm has a known optimum: the "timeline" reaches level
// 1-(x-0.4)² instantly, so MaxReachabilityAt(1) peaks at x = 0.4.
func toyAlgorithm(grid []float64) Algorithm {
	return Algorithm{
		Name:   "toy",
		Params: []Parameter{{Name: "x", Grid: grid}},
		Evaluate: func(values []float64) (metrics.Timeline, error) {
			x := values[0]
			level := 1 - (x-0.4)*(x-0.4)
			return metrics.Timeline{
				N:             100,
				Phases:        []float64{0, 1},
				CumReach:      []float64{level, level},
				CumBroadcasts: []float64{0, 1},
			}, nil
		},
	}
}

func TestTuneFindsKnownOptimum(t *testing.T) {
	grid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	res, err := Tune(toyAlgorithm(grid), MaxReachabilityAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 0.4 {
		t.Fatalf("tuned x = %v, want 0.4", res.Values[0])
	}
	if res.Evaluations != len(grid) {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, len(grid))
	}
}

func TestTuneMinimisation(t *testing.T) {
	alg := Algorithm{
		Name:   "latency-toy",
		Params: []Parameter{{Name: "x", Grid: []float64{1, 2, 3}}},
		Evaluate: func(values []float64) (metrics.Timeline, error) {
			// Reaches 100% at phase = x.
			return metrics.Timeline{
				N:             10,
				Phases:        []float64{0, values[0]},
				CumReach:      []float64{0.1, 1},
				CumBroadcasts: []float64{0, 5},
			}, nil
		},
	}
	res, err := Tune(alg, MinLatencyTo(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 1 {
		t.Fatalf("tuned x = %v, want 1", res.Values[0])
	}
}

func TestTuneMultiParameterCartesian(t *testing.T) {
	var seen [][2]float64
	alg := Algorithm{
		Name: "pair",
		Params: []Parameter{
			{Name: "a", Grid: []float64{1, 2}},
			{Name: "b", Grid: []float64{10, 20, 30}},
		},
		Evaluate: func(values []float64) (metrics.Timeline, error) {
			seen = append(seen, [2]float64{values[0], values[1]})
			level := values[0] * values[1] / 60 // max at (2, 30)
			return metrics.Timeline{N: 10, Phases: []float64{0, 1},
				CumReach:      []float64{level, level},
				CumBroadcasts: []float64{0, 1}}, nil
		},
	}
	res, err := Tune(alg, MaxReachabilityAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("visited %d assignments, want 6", len(seen))
	}
	if res.Values[0] != 2 || res.Values[1] != 30 {
		t.Fatalf("tuned to %v, want (2, 30)", res.Values)
	}
}

func TestTuneInfeasibleEverywhere(t *testing.T) {
	alg := toyAlgorithm([]float64{0.1, 0.9})
	if _, err := Tune(alg, MinLatencyTo(2)); err == nil { // reach 200% impossible
		t.Fatal("infeasible objective should error")
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(Algorithm{}, MaxReachabilityAt(1)); err == nil {
		t.Fatal("missing Evaluate should error")
	}
	alg := toyAlgorithm([]float64{0.5})
	alg.Params = nil
	if _, err := Tune(alg, MaxReachabilityAt(1)); err == nil {
		t.Fatal("no parameters should error")
	}
	alg = toyAlgorithm(nil)
	if _, err := Tune(alg, MaxReachabilityAt(1)); err == nil {
		t.Fatal("empty grid should error")
	}
	if _, err := Tune(toyAlgorithm([]float64{0.5}), Objective{}); err == nil {
		t.Fatal("missing Score should error")
	}
}

func TestTunePropagatesEvaluateErrors(t *testing.T) {
	boom := errors.New("boom")
	alg := Algorithm{
		Name:   "bad",
		Params: []Parameter{{Name: "x", Grid: []float64{1}}},
		Evaluate: func([]float64) (metrics.Timeline, error) {
			return metrics.Timeline{}, boom
		},
	}
	if _, err := Tune(alg, MaxReachabilityAt(1)); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestObjectiveNames(t *testing.T) {
	for _, o := range []Objective{
		MaxReachabilityAt(5), MinLatencyTo(0.72), MinEnergyTo(0.72),
		MaxReachabilityWithin(35),
	} {
		if o.Name == "" || o.Score == nil {
			t.Fatalf("malformed objective %+v", o)
		}
	}
}

func TestPBCAMSpecMatchesDirectAnalysis(t *testing.T) {
	grid := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1}
	res, err := Tune(PBCAM(5, 3, 100, grid), MaxReachabilityAt(5))
	if err != nil {
		t.Fatal(err)
	}
	// The analytic optimum at rho=100 sits near p = 0.13 (Fig. 4b).
	if res.Values[0] < 0.1 || res.Values[0] > 0.2 {
		t.Fatalf("tuned p = %v, expected near 0.13", res.Values[0])
	}
	if math.Abs(res.Value-0.835) > 0.02 {
		t.Fatalf("tuned reach = %v, expected ~0.835", res.Value)
	}
}

func TestPBCAMJointRescalesLatency(t *testing.T) {
	// The joint specification must measure time in common units: an
	// s=6 run's phases count double compared to the s=3 reference.
	alg := PBCAMJoint(5, 100, []float64{0.2}, []float64{6}, 3)
	tl, err := alg.Evaluate([]float64{0.2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Phases[1] != 2 {
		t.Fatalf("phase 1 at s=6 should rescale to 2 reference phases, got %v", tl.Phases[1])
	}
}
