package design_test

import (
	"fmt"

	"sensornet/internal/design"
)

// Tuning the paper's case study through the generic methodology driver:
// specify PB_CAM against the analytical model, pick an objective, tune.
func ExampleTune() {
	grid := []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1}
	alg := design.PBCAM(5, 3, 100, grid)
	res, err := design.Tune(alg, design.MaxReachabilityAt(5))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("best p = %.2f (reach %.2f, %d evaluations)\n",
		res.Values[0], res.Value, res.Evaluations)
	// Output:
	// best p = 0.15 (reach 0.83, 7 evaluations)
}

// Joint optimisation over two parameters: the broadcast probability and
// the backoff window, compared fairly on a common slot-time axis.
func ExampleTune_joint() {
	alg := design.PBCAMJoint(5, 100,
		[]float64{0.05, 0.1, 0.2, 0.4},
		[]float64{1, 3, 6}, 3)
	res, err := design.Tune(alg, design.MaxReachabilityAt(5)) // 15-slot budget
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("best (p, s) = (%.2f, %.0f)\n", res.Values[0], res.Values[1])
	// Output:
	// best (p, s) = (0.10, 1)
}
