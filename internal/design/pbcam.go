package design

import (
	"math"

	"sensornet/internal/analytic"
	"sensornet/internal/metrics"
)

// PBCAM specifies the paper's case-study algorithm against the
// analytical model: probability-based broadcasting with the broadcast
// probability p as its tunable parameter (Fig. 1(b)).
func PBCAM(p, s int, rho float64, grid []float64) Algorithm {
	return Algorithm{
		Name:   "PB_CAM",
		Params: []Parameter{{Name: "p", Grid: grid}},
		Evaluate: func(values []float64) (metrics.Timeline, error) {
			res, err := analytic.Run(analytic.Config{
				P: p, S: s, Rho: rho, Prob: values[0],
			})
			if err != nil {
				return metrics.Timeline{}, err
			}
			return res.Timeline, nil
		},
	}
}

// PBCAMJoint extends the specification with the backoff window as a
// second design parameter. Because a phase of s slots lasts s slot
// times, the returned timelines are re-scaled to a common slot-time
// axis (phases of refSlots slots), so latency objectives compare
// fairly across window sizes.
func PBCAMJoint(p int, rho float64, probGrid []float64, slotGrid []float64, refSlots int) Algorithm {
	return Algorithm{
		Name: "PB_CAM(p,s)",
		Params: []Parameter{
			{Name: "p", Grid: probGrid},
			{Name: "s", Grid: slotGrid},
		},
		Evaluate: func(values []float64) (metrics.Timeline, error) {
			s := int(math.Round(values[1]))
			res, err := analytic.Run(analytic.Config{
				P: p, S: s, Rho: rho, Prob: values[0],
			})
			if err != nil {
				return metrics.Timeline{}, err
			}
			tl := res.Timeline
			// Rescale the phase axis: one s-slot phase equals
			// s/refSlots reference phases.
			scale := float64(s) / float64(refSlots)
			scaled := metrics.Timeline{
				N:             tl.N,
				Phases:        make([]float64, len(tl.Phases)),
				CumReach:      tl.CumReach,
				CumBroadcasts: tl.CumBroadcasts,
			}
			for i, ph := range tl.Phases {
				scaled.Phases[i] = ph * scale
			}
			return scaled, nil
		},
	}
}
