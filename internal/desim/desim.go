// Package desim is a minimal discrete-event simulation kernel: a
// priority queue of timestamped callbacks and a virtual clock.
//
// The network simulator uses it for the asynchronous execution mode,
// where per-node phase offsets make transmissions overlap at arbitrary
// real-valued times; the slot-aligned mode short-circuits to plain
// loops. Ties are broken deterministically by (time, priority,
// insertion sequence), so runs are reproducible for a given seed.
package desim

import "container/heap"

// Priority orders events that share a timestamp. Lower runs first.
// Ending a transmission before starting the next one at the same
// instant reproduces non-overlapping back-to-back slots.
type Priority int

// Standard priorities used by the radio simulation.
const (
	PriorityEnd   Priority = 0
	PriorityStart Priority = 1
	PriorityOther Priority = 2
)

type event struct {
	time float64
	prio Priority
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq heap ordering must break ties on bitwise-equal times only; an epsilon would make the event order ambiguous
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded event loop over virtual time. The zero
// value is ready to use.
type Engine struct {
	pq      eventHeap
	now     float64
	seq     uint64
	stopped bool
	// Processed counts executed events, for instrumentation.
	Processed uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.pq) }

// At schedules fn at absolute virtual time t with the given priority.
// Scheduling in the past is clamped to the current time (the event
// still runs, immediately after the current one).
func (e *Engine) At(t float64, prio Priority, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{time: t, prio: prio, seq: e.seq, fn: fn})
}

// After schedules fn at Now()+delay.
func (e *Engine) After(delay float64, prio Priority, fn func()) {
	e.At(e.now+delay, prio, fn)
}

// Stop makes Run return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue drains or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() float64 {
	return e.RunUntil(-1)
}

// RunUntil executes events with time <= horizon (a negative horizon
// means no limit). Events beyond the horizon stay queued; the clock
// stops at the last executed event.
func (e *Engine) RunUntil(horizon float64) float64 {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		if horizon >= 0 && e.pq[0].time > horizon {
			break
		}
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.time
		e.Processed++
		ev.fn()
	}
	return e.now
}
