package desim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	times := []float64{3, 1, 2, 0.5, 2.5}
	for _, tm := range times {
		tm := tm
		e.At(tm, PriorityOther, func() { got = append(got, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("executed %d events, want %d", len(got), len(times))
	}
}

func TestTieBreakByPriority(t *testing.T) {
	var e Engine
	var got []string
	e.At(1, PriorityStart, func() { got = append(got, "start") })
	e.At(1, PriorityEnd, func() { got = append(got, "end") })
	e.At(1, PriorityOther, func() { got = append(got, "other") })
	e.Run()
	if got[0] != "end" || got[1] != "start" || got[2] != "other" {
		t.Fatalf("priority tie-break wrong: %v", got)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(2, PriorityOther, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order not preserved: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	var e Engine
	e.At(5, PriorityOther, func() {
		if e.Now() != 5 {
			t.Errorf("Now inside event = %v, want 5", e.Now())
		}
	})
	end := e.Run()
	if end != 5 {
		t.Fatalf("final time = %v, want 5", end)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	var fired float64 = -1
	e.At(2, PriorityOther, func() {
		e.After(3, PriorityOther, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 5 {
		t.Fatalf("After event fired at %v, want 5", fired)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	var e Engine
	var order []string
	e.At(4, PriorityOther, func() {
		order = append(order, "first")
		e.At(1, PriorityOther, func() { order = append(order, "late") })
	})
	e.At(6, PriorityOther, func() { order = append(order, "second") })
	e.Run()
	if len(order) != 3 || order[1] != "late" {
		t.Fatalf("past event should run immediately after current: %v", order)
	}
	if e.Now() != 6 {
		t.Fatalf("clock = %v, want 6", e.Now())
	}
}

func TestStop(t *testing.T) {
	var e Engine
	ran := 0
	e.At(1, PriorityOther, func() { ran++; e.Stop() })
	e.At(2, PriorityOther, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran %d", ran)
	}
	if e.Len() != 1 {
		t.Fatalf("stopped engine should keep pending events, got %d", e.Len())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var e Engine
	ran := 0
	for _, tm := range []float64{1, 2, 3, 4} {
		e.At(tm, PriorityOther, func() { ran++ })
	}
	e.RunUntil(2.5)
	if ran != 2 {
		t.Fatalf("horizon run executed %d, want 2", ran)
	}
	e.Run()
	if ran != 4 {
		t.Fatalf("resumed run executed %d total, want 4", ran)
	}
}

func TestProcessedCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.At(float64(i), PriorityOther, func() {})
	}
	e.Run()
	if e.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed)
	}
}

func TestHeavyRandomLoadStaysOrdered(t *testing.T) {
	var e Engine
	rng := rand.New(rand.NewSource(9))
	last := -1.0
	ok := true
	for i := 0; i < 5000; i++ {
		tm := rng.Float64() * 100
		e.At(tm, PriorityOther, func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			// Cascading events.
			if rng.Intn(10) == 0 {
				e.After(rng.Float64(), PriorityOther, func() {})
			}
		})
	}
	e.Run()
	if !ok {
		t.Fatal("clock moved backwards under load")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.At(rng.Float64()*1000, PriorityOther, func() {})
		}
		e.Run()
	}
}
