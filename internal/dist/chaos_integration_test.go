// The chaos acceptance test: a real coordinator and two real workers
// separated by a seed-deterministic hostile transport that drops,
// delays, duplicates, truncates, and bit-corrupts traffic — plus one
// worker killed mid-run — must still converge to a cache directory
// byte-identical to a plain local run, with every payload ingested
// exactly once.
package dist_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"sync"
	"testing"
	"time"

	"sensornet/internal/chaos"
	"sensornet/internal/dist"
	"sensornet/internal/engine"
	"sensornet/internal/experiments"
)

func TestDistributedChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign takes a few seconds")
	}
	pre := tinyAnalyticPreset()
	jobs := experiments.SurfaceJobs(pre, false, 1)
	if len(jobs) != 16 {
		t.Fatalf("job set size = %d, want 16", len(jobs))
	}

	// Reference: an unsharded local run into its own cache dir.
	localDir := t.TempDir()
	localEng := engine.New(engine.Config{
		Workers: 4, Cache: engine.NewCache(localDir, experiments.CacheSalt)})
	localSurf, err := experiments.AnalyticSurfaceCtx(context.Background(), localEng, pre)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: the coordinator sits behind a chaos reverse proxy
	// (server-side hostility), and each worker's own client is wrapped
	// in an independently seeded chaos transport (client-side
	// hostility). Both fault schedules are pure functions of their
	// seeds, so a failing run replays exactly.
	distDir := t.TempDir()
	distCache := engine.NewCache(distDir, experiments.CacheSalt)
	coord, err := dist.NewCoordinator(dist.Config{
		Sink:     distCache,
		Shards:   2,
		LeaseTTL: 500 * time.Millisecond,
		Logf:     t.Logf,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	target, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(&httputil.ReverseProxy{
		Rewrite:   func(pr *httputil.ProxyRequest) { pr.SetURL(target) },
		Transport: chaos.New(nil, chaos.Mild(), 101),
		ErrorLog:  nil, // injected faults surface as 502s the workers retry
	})
	defer proxy.Close()

	// Workers get in-memory engine caches so a re-leased job they
	// already ran is answered from cache, not recomputed.
	workerCfg := func(id string, seed int64, failAfter int) dist.WorkerConfig {
		return dist.WorkerConfig{
			ID:      id,
			BaseURL: proxy.URL,
			Engine: engine.New(engine.Config{
				Workers: 2, Cache: engine.NewCache("", experiments.CacheSalt)}),
			Jobs: jobs,
			Client: &http.Client{
				Timeout:   30 * time.Second,
				Transport: chaos.Wrap(nil, chaos.Hostile(), seed),
			},
			Poll:      20 * time.Millisecond,
			FailAfter: failAfter,
			Logf:      t.Logf,
		}
	}
	cfgs := []dist.WorkerConfig{
		workerCfg("w-dying", 202, 1), // killed holding a lease after 1 job
		workerCfg("w-survivor", 303, 0),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	reports := make([]*dist.WorkerReport, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		w, err := dist.NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *dist.Worker) {
			defer wg.Done()
			reports[i], errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()

	if !errors.Is(errs[0], dist.ErrFailInjected) {
		t.Fatalf("dying worker error = %v, want ErrFailInjected", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("surviving worker error = %v", errs[1])
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator not done after workers drained")
	}

	// Exactly-once end to end: every job ingested once at the protocol
	// layer, and nothing slipped past it into the cache twice.
	s := coord.Stats()
	if s.Completed != len(jobs) || s.Failed != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Ingested != len(jobs) {
		t.Fatalf("Ingested = %d, want exactly %d", s.Ingested, len(jobs))
	}
	if dupes := distCache.Stats().IngestDupes; dupes != 0 {
		t.Fatalf("cache absorbed %d duplicate ingests; the protocol layer must catch them all", dupes)
	}
	t.Logf("chaos campaign: %d completed, %d duplicates absorbed, %d leases expired, %d steals",
		s.Completed, s.Duplicates, s.Expired, s.Steals)

	// Byte identity at the cache layer: same file names, same bytes.
	localTree, distTree := readTree(t, localDir), readTree(t, distDir)
	if len(localTree) == 0 || len(localTree) != len(distTree) {
		t.Fatalf("cache trees differ in size: local %d, dist %d", len(localTree), len(distTree))
	}
	for name, lb := range localTree {
		db, ok := distTree[name]
		if !ok {
			t.Fatalf("distributed cache missing entry %s", name)
		}
		if string(lb) != string(db) {
			t.Fatalf("cache entry %s differs:\n%s\nvs\n%s", name, lb, db)
		}
	}

	// Merge identity: a cache-only engine over the chaos-built cache
	// assembles the same surface the local run computed.
	mergeEng := engine.New(engine.Config{
		Workers: 4, CacheOnly: true,
		Cache: engine.NewCache(distDir, experiments.CacheSalt)})
	distSurf, err := experiments.AnalyticSurfaceCtx(context.Background(), mergeEng, pre)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localSurf, distSurf) {
		t.Fatal("merged surface differs from the local run's")
	}
}
