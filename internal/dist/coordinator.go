package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"sensornet/internal/engine"
	"sensornet/internal/trace"
)

// Config parameterises a Coordinator.
type Config struct {
	// Sink receives posted result payloads; jobs it already has results
	// for are completed at construction time (a resumed campaign).
	// Required. engine.Cache implements it.
	Sink engine.ResultSink
	// Shards is the number of queue partitions — nominally the planned
	// worker count. Jobs are assigned by engine.ShardOf(fingerprint),
	// the same content-hash split the coordinator-free -shard mode uses.
	// <= 1 means one queue (stealing never triggers).
	Shards int
	// LeaseTTL bounds how long a lease lives without a heartbeat before
	// its job fails over; defaults to 30s.
	LeaseTTL time.Duration
	// MaxJobFailures retires a job after this many worker-reported
	// failures, so a poison job cannot wedge the campaign; defaults
	// to 3.
	MaxJobFailures int
	// IngestBurst bounds how many result payloads the coordinator admits
	// per IngestWindow before answering 429 + Retry-After; the deferred
	// worker keeps its lease and retries. Defaults to 256 per second —
	// far above steady-state for real campaigns, low enough that a
	// thundering herd of re-posted duplicates cannot monopolise the
	// coordinator lock.
	IngestBurst int
	// IngestWindow is the sliding window IngestBurst is measured over;
	// defaults to 1s.
	IngestWindow time.Duration
	// Now is the coordinator's clock; defaults to time.Now. Tests
	// inject a fake to drive lease expiry deterministically.
	Now func() time.Time
	// Spans, when non-nil, receives one span per completed or failed
	// lease (Name = job, Worker = shard, Duration = lease wall time),
	// making lease churn observable through the same telemetry the
	// engine uses.
	Spans *trace.SpanLog
	// Logf, when non-nil, receives protocol-level diagnostics (lease
	// expiries, steals, ingest failures).
	Logf func(format string, args ...any)
}

// jobState is one job's lifecycle position.
type jobState uint8

const (
	statePending jobState = iota
	stateLeased
	stateDone
	stateFailed
)

type distJob struct {
	spec     JobSpec
	shard    int
	state    jobState
	failures int
	leaseID  string // active lease, when stateLeased
}

type leaseInfo struct {
	id       string
	fp       string
	worker   string
	deadline time.Time
	started  time.Time
	stolen   bool
}

type workerInfo struct {
	id       string
	shard    int
	lastSeen time.Time
	stats    WorkerStats
}

// Coordinator serves a lease-based job queue over HTTP. It is an
// http.Handler; the caller owns the http.Server around it (timeouts,
// graceful Shutdown). All state transitions happen under one mutex on
// request paths — there are no background goroutines; lease expiry is
// swept lazily at the top of every request.
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu        sync.Mutex
	jobs      map[string]*distJob // by fingerprint
	queues    [][]string          // pending fingerprints per shard
	leases    map[string]*leaseInfo
	workers   map[string]*workerInfo
	order     []string // fingerprints in submission order, for reporting
	nextShard int
	leaseSeq  int

	total, cached, completed, failed      int
	steals, expired, requeued, duplicates int
	ingestErrors, ingested, backpressured int

	// ingestTimes is the sliding backpressure window: admission times of
	// the most recent ingests, pruned to IngestWindow on every check.
	ingestTimes []time.Time

	// shardMean tracks an exponential moving average of observed job
	// runtime per shard (seconds, from lease grant to accepted result),
	// and shardObs how many samples each mean has absorbed. Stealing
	// weighs queues by len × mean runtime, so the victim is the shard
	// with the most outstanding *work*, not merely the most entries.
	shardMean []float64
	shardObs  []int

	draining    bool
	drained     chan struct{}
	drainedOnce sync.Once

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator builds a coordinator over the campaign's cacheable
// jobs. Jobs already present in the sink complete immediately (resume);
// duplicate fingerprints collapse to one queue entry; a job with no
// fingerprint is an error — a result that cannot be content-addressed
// cannot travel the wire.
func NewCoordinator(cfg Config, jobs []engine.Job) (*Coordinator, error) {
	if cfg.Sink == nil {
		return nil, errors.New("dist: coordinator needs a result sink (engine.Cache)")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxJobFailures <= 0 {
		cfg.MaxJobFailures = 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.IngestBurst <= 0 {
		cfg.IngestBurst = 256
	}
	if cfg.IngestWindow <= 0 {
		cfg.IngestWindow = time.Second
	}
	c := &Coordinator{
		cfg:       cfg,
		jobs:      map[string]*distJob{},
		queues:    make([][]string, cfg.Shards),
		leases:    map[string]*leaseInfo{},
		workers:   map[string]*workerInfo{},
		shardMean: make([]float64, cfg.Shards),
		shardObs:  make([]int, cfg.Shards),
		done:      make(chan struct{}),
		drained:   make(chan struct{}),
	}
	for _, j := range jobs {
		fp := j.Fingerprint()
		if fp == "" {
			return nil, fmt.Errorf("dist: job %q has no fingerprint: uncacheable jobs cannot be distributed", j.Name())
		}
		if _, dup := c.jobs[fp]; dup {
			continue
		}
		dj := &distJob{
			spec:  JobSpec{Name: j.Name(), Fingerprint: fp},
			shard: engine.ShardOf(fp, cfg.Shards),
		}
		c.jobs[fp] = dj
		c.order = append(c.order, fp)
		c.total++
		if cfg.Sink.HasResult(fp) {
			dj.state = stateDone
			c.cached++
			c.completed++
		} else {
			c.queues[dj.shard] = append(c.queues[dj.shard], fp)
		}
	}
	if c.completed == c.total {
		c.doneOnce.Do(func() { close(c.done) })
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+PathResult, c.handleResult)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	mux.HandleFunc("GET "+PathHealth, c.handleHealth)
	c.mux = mux
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Done returns a channel closed once every job is terminal (completed
// or retired failed). The cmd layer selects on it to shut the server
// down when the campaign finishes.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Drain moves the coordinator into graceful shutdown: no new leases
// are granted (workers asking for one see Draining and exit), while
// in-flight heartbeats and results keep landing normally. Once the
// last outstanding lease resolves — its result posted, its failure
// recorded, or its deadline expired — the Drained channel closes.
// Drain is idempotent and safe from any goroutine (the cmd layer calls
// it from the signal handler).
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	c.logf("dist: draining — %d leases in flight, no new leases will be granted", len(c.leases))
	c.checkDrainedLocked()
}

// Drained returns a channel closed once Drain was called and every
// outstanding lease has resolved. It never closes before Drain.
func (c *Coordinator) Drained() <-chan struct{} { return c.drained }

// checkDrainedLocked closes the drained channel when a drain has been
// requested and no leases remain in flight. Called wherever the lease
// table can shrink: results, failures, and expiry sweeps.
func (c *Coordinator) checkDrainedLocked() {
	if c.draining && len(c.leases) == 0 {
		c.drainedOnce.Do(func() { close(c.drained) })
	}
}

// Stats snapshots the coordinator's state.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsLocked()
}

func (c *Coordinator) statsLocked() Stats {
	now := c.cfg.Now()
	s := Stats{
		Jobs: c.total, CachedAtStart: c.cached,
		Completed: c.completed, Failed: c.failed,
		Leased: len(c.leases),
		Steals: c.steals, Expired: c.expired, Requeued: c.requeued,
		Duplicates: c.duplicates, IngestErrors: c.ingestErrors,
		Ingested: c.ingested, Backpressured: c.backpressured,
		Draining: c.draining,
	}
	for _, q := range c.queues {
		s.Pending += len(q)
	}
	for _, w := range c.workers {
		ws := w.stats
		ws.LastSeenAgoMillis = now.Sub(w.lastSeen).Milliseconds()
		s.Workers = append(s.Workers, ws)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	return s
}

// FailedJobs lists the retired jobs, in submission order.
func (c *Coordinator) FailedJobs() []JobSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []JobSpec
	for _, fp := range c.order {
		if j := c.jobs[fp]; j.state == stateFailed {
			out = append(out, j.spec)
		}
	}
	return out
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// sweepLocked re-enqueues every expired lease at the front of its
// shard's queue, so failed-over work is picked up before fresh work.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, id)
		c.expired++
		j := c.jobs[l.fp]
		if j == nil || j.state != stateLeased {
			continue
		}
		j.state = statePending
		j.leaseID = ""
		c.queues[j.shard] = append([]string{l.fp}, c.queues[j.shard]...)
		c.logf("dist: lease %s (%s) on worker %s expired; job re-enqueued on shard %d",
			id, j.spec.Name, l.worker, j.shard)
	}
	// A drain waits only for leases; expiry resolves them too.
	c.checkDrainedLocked()
}

// touchWorkerLocked registers a worker on first contact (assigning it
// the next shard queue round-robin) and refreshes its liveness.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerInfo {
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{id: id, shard: c.nextShard % c.cfg.Shards}
		w.stats = WorkerStats{ID: id, Shard: w.shard}
		c.nextShard++
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// popLocked takes the next leasable fingerprint for a worker on shard:
// the front of its own queue, else the tail of the queue holding the
// most outstanding *work* (a steal). Stale queue entries — jobs already
// terminal or re-leased — are dropped lazily.
func (c *Coordinator) popLocked(shard int) (fp string, stolen, ok bool) {
	if fp, ok := c.popQueueLocked(shard, false); ok {
		return fp, false, true
	}
	// Steal from the victim queue's tail: the victim keeps draining its
	// front, the thief eats the slack from the other end. The victim is
	// the shard whose remaining work — queue length weighted by observed
	// per-job runtime — is largest, so a short queue of slow jobs
	// outranks a long queue of fast ones. With no runtime samples yet
	// every shard weighs 1.0 per entry and this degrades to
	// longest-queue, the pre-deadline-aware policy.
	for {
		victim, best := -1, 0.0
		for i, q := range c.queues {
			if i == shard || len(q) == 0 {
				continue
			}
			est := float64(len(q)) * c.meanRuntimeLocked(i)
			if victim < 0 || est > best {
				victim, best = i, est
			}
		}
		if victim < 0 {
			return "", false, false
		}
		if fp, ok := c.popQueueLocked(victim, true); ok {
			return fp, true, true
		}
	}
}

// meanRuntimeLocked estimates one job's runtime on a shard, in
// seconds: the shard's own EWMA when it has samples, else the mean
// over shards that do, else 1.0 (any constant works — with no samples
// anywhere the weights cancel and victim selection is queue length).
func (c *Coordinator) meanRuntimeLocked(shard int) float64 {
	if c.shardObs[shard] > 0 {
		return c.shardMean[shard]
	}
	sum, n := 0.0, 0
	for i, obs := range c.shardObs {
		if obs > 0 {
			sum += c.shardMean[i]
			n++
		}
	}
	if n > 0 {
		return sum / float64(n)
	}
	return 1.0
}

// observeRuntimeLocked folds one completed lease's wall time into its
// shard's runtime EWMA (α = 0.3: recent jobs dominate, one outlier
// does not).
func (c *Coordinator) observeRuntimeLocked(shard int, d time.Duration) {
	if d < 0 {
		return
	}
	sec := d.Seconds()
	if c.shardObs[shard] == 0 {
		c.shardMean[shard] = sec
	} else {
		const alpha = 0.3
		c.shardMean[shard] = alpha*sec + (1-alpha)*c.shardMean[shard]
	}
	c.shardObs[shard]++
}

func (c *Coordinator) popQueueLocked(shard int, fromTail bool) (string, bool) {
	q := c.queues[shard]
	for len(q) > 0 {
		var fp string
		if fromTail {
			fp, q = q[len(q)-1], q[:len(q)-1]
		} else {
			fp, q = q[0], q[1:]
		}
		if j := c.jobs[fp]; j != nil && j.state == statePending {
			c.queues[shard] = q
			return fp, true
		}
	}
	c.queues[shard] = q
	return "", false
}

// nextExpiryHintLocked computes how long an idle worker should wait
// before asking again, from the age of the outstanding leases: the
// time until the soonest deadline, clamped to [50ms, LeaseTTL/4].
func (c *Coordinator) nextExpiryHintLocked(now time.Time) time.Duration {
	hint := c.cfg.LeaseTTL / 4
	for _, l := range c.leases {
		if until := l.deadline.Sub(now); until < hint {
			hint = until
		}
	}
	if hint < 50*time.Millisecond {
		hint = 50 * time.Millisecond
	}
	return hint
}

func (c *Coordinator) checkDoneLocked() {
	if c.completed+c.failed == c.total {
		c.doneOnce.Do(func() { close(c.done) })
	}
}

// ackLocked stamps a result acknowledgment with the coordinator's
// terminal state. The worker whose post completes the campaign (or
// resolves the last draining lease) learns it from this very response
// — one lease poll later the server may already be gone.
func (c *Coordinator) ackLocked(r ResultResponse) ResultResponse {
	r.Done = c.completed+c.failed == c.total
	r.Draining = c.draining
	return r
}

func (c *Coordinator) recordSpan(l *leaseInfo, name string, shard int, now time.Time, failed bool) {
	if c.cfg.Spans == nil {
		return
	}
	c.cfg.Spans.Record(trace.Span{
		Name: name, Worker: shard, Attempt: 1,
		Duration: now.Sub(l.started), Failed: failed,
	})
}

// --- HTTP handlers ---

// bodySum computes the hex sha256 carried in HeaderBodySum.
func bodySum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// writeJSON marshals the response up front so its checksum can travel
// in HeaderBodySum — a client seeing a mismatched sum knows the bytes
// were damaged in transit and retries rather than acting on them.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the protocol's plain structs; fail loud rather
		// than emit an unverifiable body.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderBodySum, bodySum(data))
	w.WriteHeader(status)
	// The status line is already out; a short write leaves the client a
	// truncated body that fails its checksum and retries.
	_, _ = w.Write(data)
}

// decodeBody reads one JSON request body, bounded so a misbehaving
// client cannot balloon coordinator memory, and — when the worker
// attached a HeaderBodySum — verifies the bytes arrived intact before
// parsing them. A sum mismatch is a 400 the worker treats as
// retryable; a fresh send re-rolls the transport's fault dice.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	const maxBody = 64 << 20 // surface rows are small; 64 MiB is generous
	body := http.MaxBytesReader(w, r.Body, maxBody)
	data, err := io.ReadAll(body)
	if err == nil {
		if want := r.Header.Get(HeaderBodySum); want != "" && want != bodySum(data) {
			err = errors.New("dist: request body checksum mismatch (corrupted in transit)")
		}
	}
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return false
	}
	return true
}

// Handlers compute their response entirely under the lock and write it
// only after release (the lockheld check enforces this): an Encode to a
// stalled worker must not hold up every other lease, heartbeat, and
// result behind one slow reader.

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "dist: lease request without a worker id"})
		return
	}
	writeJSON(w, http.StatusOK, c.lease(req))
}

// lease grants (or defers) one lease under the coordinator lock.
func (c *Coordinator) lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.sweepLocked(now)
	wi := c.touchWorkerLocked(req.Worker, now)

	resp := LeaseResponse{Shard: wi.shard}
	if c.completed+c.failed == c.total {
		resp.Done = true
		return resp
	}
	if c.draining {
		// Graceful shutdown: the campaign is not done, but no more work
		// will be handed out. The worker finishes nothing-in-particular
		// and exits; unfinished jobs stay pending for a resumed run.
		resp.Draining = true
		return resp
	}
	fp, stolen, ok := c.popLocked(wi.shard)
	if !ok {
		// Everything outstanding is leased elsewhere; it may fail over,
		// so the worker should poll again when that could next happen:
		// the soonest lease deadline, clamped to [50ms, TTL/4] so a
		// heartbeat-extended fleet still gets polled at the old cadence
		// and a nearly expired lease is probed promptly.
		resp.RetryMillis = c.nextExpiryHintLocked(now).Milliseconds()
		return resp
	}
	j := c.jobs[fp]
	c.leaseSeq++
	l := &leaseInfo{
		id:       fmt.Sprintf("lease-%d", c.leaseSeq),
		fp:       fp,
		worker:   req.Worker,
		deadline: now.Add(c.cfg.LeaseTTL),
		started:  now,
		stolen:   stolen,
	}
	c.leases[l.id] = l
	j.state = stateLeased
	j.leaseID = l.id
	wi.stats.Leased++
	if stolen {
		c.steals++
		wi.stats.Stolen++
		c.logf("dist: worker %s (shard %d) stole %s from shard %d's tail",
			req.Worker, wi.shard, j.spec.Name, j.shard)
	}
	resp.Job = &j.spec
	resp.LeaseID = l.id
	resp.TTLMillis = c.cfg.LeaseTTL.Milliseconds()
	resp.Stolen = stolen
	return resp
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, c.heartbeat(req))
}

// heartbeat extends one lease under the coordinator lock.
func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.sweepLocked(now)
	if req.Worker != "" {
		c.touchWorkerLocked(req.Worker, now)
	}
	l, ok := c.leases[req.LeaseID]
	if !ok {
		return HeartbeatResponse{Extended: false}
	}
	l.deadline = now.Add(c.cfg.LeaseTTL)
	return HeartbeatResponse{Extended: true, TTLMillis: c.cfg.LeaseTTL.Milliseconds()}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	status, body, retryAfter := c.result(req)
	if retryAfter > 0 {
		secs := int64(retryAfter / time.Second)
		if retryAfter%time.Second > 0 {
			secs++ // Retry-After is whole seconds; round up, never down to 0
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, body)
}

// result ingests one posted shard result under the coordinator lock,
// returning the HTTP status, response body, and (for 429) a
// Retry-After hint for the handler to write after release. The
// IngestResult call stays inside the critical section deliberately: it
// is a local content-addressed cache write, and admitting a result
// must be atomic with the job-state transition or a concurrent
// duplicate post could double-count completion.
func (c *Coordinator) result(req ResultRequest) (int, any, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.sweepLocked(now)
	if req.Worker != "" {
		c.touchWorkerLocked(req.Worker, now)
	}
	j, ok := c.jobs[req.Fingerprint]
	if !ok {
		return http.StatusNotFound, ResultResponse{Accepted: false}, 0
	}
	l := c.leases[req.LeaseID] // may be nil: expired leases still publish
	releaseLease := func() {
		if j.leaseID != "" {
			delete(c.leases, j.leaseID)
			j.leaseID = ""
		}
		if l != nil && l.fp == req.Fingerprint {
			delete(c.leases, l.id)
		}
	}

	if req.Error != "" {
		if wi := c.workers[req.Worker]; wi != nil {
			wi.stats.Failures++
		}
		if j.state == stateDone || j.state == stateFailed {
			c.duplicates++
			releaseLease()
			c.checkDrainedLocked()
			return http.StatusOK, c.ackLocked(ResultResponse{Accepted: true, Duplicate: true}), 0
		}
		if l != nil {
			c.recordSpan(l, j.spec.Name, j.shard, now, true)
		}
		releaseLease()
		c.checkDrainedLocked()
		j.failures++
		if j.failures >= c.cfg.MaxJobFailures {
			j.state = stateFailed
			c.failed++
			c.logf("dist: job %s retired after %d failures (last: %s)",
				j.spec.Name, j.failures, req.Error)
			c.checkDoneLocked()
			return http.StatusOK, c.ackLocked(ResultResponse{Accepted: true, Retired: true}), 0
		}
		// Requeue at the tail: a failing job must not starve the healthy
		// front of the queue.
		j.state = statePending
		c.queues[j.shard] = append(c.queues[j.shard], req.Fingerprint)
		c.requeued++
		c.logf("dist: job %s failed on worker %s (%s); re-enqueued (%d/%d failures)",
			j.spec.Name, req.Worker, req.Error, j.failures, c.cfg.MaxJobFailures)
		return http.StatusOK, c.ackLocked(ResultResponse{Accepted: true}), 0
	}

	if j.state == stateDone {
		// A late post from an expired lease: content addressing makes it
		// byte-identical to what we already stored, so absorb it without
		// touching the sink — duplicates are free and never re-ingested.
		c.duplicates++
		releaseLease()
		c.checkDrainedLocked()
		return http.StatusOK, c.ackLocked(ResultResponse{Accepted: true, Duplicate: true}), 0
	}
	// Backpressure applies only to fresh payloads about to be ingested:
	// duplicates and failure reports cost nothing, and a 429 must leave
	// the job's state (and the worker's lease) exactly as it found them
	// so the deferred retry is a plain replay.
	if wait, ok := c.admitIngestLocked(now); !ok {
		c.backpressured++
		return http.StatusTooManyRequests,
			map[string]string{"error": "dist: ingest budget exhausted; retry after backoff"}, wait
	}
	if err := c.cfg.Sink.IngestResult(req.Fingerprint, req.Payload); err != nil {
		c.ingestErrors++
		c.logf("dist: ingesting result of %s from worker %s: %v", j.spec.Name, req.Worker, err)
		return http.StatusInternalServerError, map[string]string{"error": err.Error()}, 0
	}
	c.ingested++
	if l != nil {
		c.recordSpan(l, j.spec.Name, j.shard, now, false)
		c.observeRuntimeLocked(j.shard, now.Sub(l.started))
	}
	releaseLease()
	c.checkDrainedLocked()
	if j.state == stateFailed {
		// A success arriving after the job was retired un-retires it:
		// the result is real and content-addressed, so keep it.
		c.failed--
	}
	j.state = stateDone
	c.completed++
	if wi := c.workers[req.Worker]; wi != nil {
		wi.stats.Completed++
	}
	c.checkDoneLocked()
	return http.StatusOK, c.ackLocked(ResultResponse{Accepted: true}), 0
}

// admitIngestLocked charges one ingest against the sliding-window
// budget. When the window is full it reports how long until its oldest
// admission ages out — the Retry-After the deferred worker is told.
func (c *Coordinator) admitIngestLocked(now time.Time) (time.Duration, bool) {
	cutoff := now.Add(-c.cfg.IngestWindow)
	keep := c.ingestTimes[:0]
	for _, t := range c.ingestTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	c.ingestTimes = keep
	if len(c.ingestTimes) >= c.cfg.IngestBurst {
		wait := c.ingestTimes[0].Sub(cutoff)
		if wait <= 0 {
			wait = time.Millisecond
		}
		return wait, false
	}
	c.ingestTimes = append(c.ingestTimes, now)
	return 0, true
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.sweepLocked(c.cfg.Now())
	s := c.statsLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, s)
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	s := c.Stats()
	status := "ok"
	if s.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "jobs": s.Jobs})
}
