package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sensornet/internal/engine"
)

// fakeSink is an in-memory engine.ResultSink that counts ingests per
// fingerprint, so tests can pin exactly-once delivery through the
// protocol layer.
type fakeSink struct {
	mu      sync.Mutex
	results map[string][]byte
	counts  map[string]int
	failFor map[string]bool // fingerprints whose ingest errors
}

func newFakeSink() *fakeSink {
	return &fakeSink{results: map[string][]byte{}, counts: map[string]int{}, failFor: map[string]bool{}}
}

func (s *fakeSink) HasResult(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.results[fp]
	return ok
}

func (s *fakeSink) IngestResult(fp string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failFor[fp] {
		return fmt.Errorf("sink: injected ingest failure for %s", fp)
	}
	s.counts[fp]++
	s.results[fp] = append([]byte(nil), payload...)
	return nil
}

// ingests reports how many times a fingerprint's payload reached the
// sink.
func (s *fakeSink) ingests(fp string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[fp]
}

// fakeClock drives Config.Now deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func jobsFor(fps ...string) []engine.Job {
	var out []engine.Job
	for _, fp := range fps {
		out = append(out, engine.JobFunc{Key: fp})
	}
	return out
}

// fpsOnShard generates n distinct fingerprints that all hash to the
// given shard under shards partitions, so queue placement in tests is
// deterministic by construction rather than by luck.
func fpsOnShard(t *testing.T, shard, shards, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		fp := fmt.Sprintf("job-%d", i)
		if engine.ShardOf(fp, shards) == shard {
			out = append(out, fp)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d fingerprints on shard %d/%d", n, shard, shards)
	}
	return out
}

// call POSTs (or GETs, for status) one protocol message through the
// coordinator's public handler and decodes the response.
func call(t *testing.T, c *Coordinator, method, path string, req, resp any) int {
	t.Helper()
	var body bytes.Buffer
	if req != nil {
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	hr := httptest.NewRequest(method, path, &body)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, hr)
	if resp != nil && (rec.Code == http.StatusOK || rec.Code == http.StatusNotFound) {
		if err := json.Unmarshal(rec.Body.Bytes(), resp); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, path, rec.Body.Bytes(), err)
		}
	}
	return rec.Code
}

func lease(t *testing.T, c *Coordinator, worker string) LeaseResponse {
	t.Helper()
	var resp LeaseResponse
	if code := call(t, c, http.MethodPost, PathLease, LeaseRequest{Worker: worker}, &resp); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	return resp
}

func postResult(t *testing.T, c *Coordinator, req ResultRequest) (ResultResponse, int) {
	t.Helper()
	var resp ResultResponse
	code := call(t, c, http.MethodPost, PathResult, req, &resp)
	return resp, code
}

func isDone(c *Coordinator) bool {
	select {
	case <-c.Done():
		return true
	default:
		return false
	}
}

func TestLeaseLifecycle(t *testing.T) {
	clock := newFakeClock()
	sink := newFakeSink()
	c, err := NewCoordinator(Config{Sink: sink, Shards: 1, LeaseTTL: 10 * time.Second, Now: clock.Now},
		jobsFor("a", "b"))
	if err != nil {
		t.Fatal(err)
	}

	l := lease(t, c, "w1")
	if l.Done || l.Job == nil || l.LeaseID == "" || l.TTLMillis != 10000 {
		t.Fatalf("first lease = %+v", l)
	}
	first := l.Job.Fingerprint

	resp, _ := postResult(t, c, ResultRequest{
		Worker: "w1", LeaseID: l.LeaseID, Fingerprint: first, Payload: []byte(`1.5`)})
	if !resp.Accepted || resp.Duplicate {
		t.Fatalf("result ack = %+v", resp)
	}
	if !sink.HasResult(first) {
		t.Fatal("sink missing the posted result")
	}
	if isDone(c) {
		t.Fatal("done with one job outstanding")
	}

	l2 := lease(t, c, "w1")
	if l2.Job == nil || l2.Job.Fingerprint == first {
		t.Fatalf("second lease = %+v", l2)
	}
	postResult(t, c, ResultRequest{
		Worker: "w1", LeaseID: l2.LeaseID, Fingerprint: l2.Job.Fingerprint, Payload: []byte(`2.5`)})
	if !isDone(c) {
		t.Fatal("not done after both results")
	}
	if l3 := lease(t, c, "w1"); !l3.Done {
		t.Fatalf("lease after completion = %+v", l3)
	}

	s := c.Stats()
	if s.Completed != 2 || s.Pending != 0 || s.Leased != 0 || s.Expired != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.Workers) != 1 || s.Workers[0].Completed != 2 || s.Workers[0].Leased != 2 {
		t.Fatalf("worker stats = %+v", s.Workers)
	}
}

// TestLeaseExpiryRequeues pins the failover path: a lease whose
// deadline passes without a heartbeat re-enqueues its job at the front
// of the queue, and another worker picks it up.
func TestLeaseExpiryRequeues(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1, LeaseTTL: time.Second, Now: clock.Now},
		jobsFor("a", "b"))
	if err != nil {
		t.Fatal(err)
	}

	l := lease(t, c, "dying")
	if l.Job == nil {
		t.Fatalf("lease = %+v", l)
	}

	// Within the TTL the job stays leased: a second worker gets the
	// *other* job, not this one.
	clock.Advance(500 * time.Millisecond)
	other := lease(t, c, "survivor")
	if other.Job == nil || other.Job.Fingerprint == l.Job.Fingerprint {
		t.Fatalf("second worker got %+v, want the other job", other)
	}
	postResult(t, c, ResultRequest{Worker: "survivor", LeaseID: other.LeaseID,
		Fingerprint: other.Job.Fingerprint, Payload: []byte(`1`)})

	// Past the deadline the dead worker's job fails over.
	clock.Advance(2 * time.Second)
	failover := lease(t, c, "survivor")
	if failover.Job == nil || failover.Job.Fingerprint != l.Job.Fingerprint {
		t.Fatalf("failover lease = %+v, want %s", failover, l.Job.Fingerprint)
	}
	if s := c.Stats(); s.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", s.Expired)
	}

	// The dead worker's late result is still absorbed (idempotent), then
	// the survivor's own post counts as a duplicate.
	late, _ := postResult(t, c, ResultRequest{Worker: "dying", LeaseID: l.LeaseID,
		Fingerprint: l.Job.Fingerprint, Payload: []byte(`2`)})
	if !late.Accepted || late.Duplicate {
		t.Fatalf("late post = %+v", late)
	}
	dup, _ := postResult(t, c, ResultRequest{Worker: "survivor", LeaseID: failover.LeaseID,
		Fingerprint: failover.Job.Fingerprint, Payload: []byte(`2`)})
	if !dup.Accepted || !dup.Duplicate {
		t.Fatalf("post after late completion = %+v", dup)
	}
	if !isDone(c) {
		t.Fatal("campaign not done")
	}
}

// TestHeartbeatExtendsLease: heartbeats hold a long-running lease past
// its original deadline; without them it would have failed over.
func TestHeartbeatExtendsLease(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1, LeaseTTL: time.Second, Now: clock.Now},
		jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}
	l := lease(t, c, "w1")

	for i := 0; i < 5; i++ {
		clock.Advance(700 * time.Millisecond) // past half, inside TTL
		var hb HeartbeatResponse
		call(t, c, http.MethodPost, PathHeartbeat,
			HeartbeatRequest{Worker: "w1", LeaseID: l.LeaseID}, &hb)
		if !hb.Extended {
			t.Fatalf("beat %d not extended", i)
		}
	}
	// 3.5s of wall time against a 1s TTL, still held: no expiry, and an
	// idle second worker finds nothing leasable.
	if s := c.Stats(); s.Expired != 0 || s.Leased != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if idle := lease(t, c, "w2"); idle.Job != nil || idle.Done || idle.RetryMillis <= 0 {
		t.Fatalf("idle lease = %+v, want retry hint", idle)
	}

	// A heartbeat for an unknown (expired or bogus) lease says so.
	var hb HeartbeatResponse
	call(t, c, http.MethodPost, PathHeartbeat,
		HeartbeatRequest{Worker: "w1", LeaseID: "lease-999"}, &hb)
	if hb.Extended {
		t.Fatal("unknown lease extended")
	}
}

// TestWorkStealing pins the rebalancing path: a worker whose own queue
// is empty serves from the tail of the longest other queue, flagged as
// stolen on both the wire and the stats.
func TestWorkStealing(t *testing.T) {
	clock := newFakeClock()
	fps := fpsOnShard(t, 0, 2, 3) // all jobs on shard 0
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 2, LeaseTTL: 10 * time.Second, Now: clock.Now},
		jobsFor(fps...))
	if err != nil {
		t.Fatal(err)
	}

	// First contact assigns shards round-robin: w0 → shard 0, w1 → shard 1.
	l0 := lease(t, c, "w0")
	if l0.Shard != 0 || l0.Stolen || l0.Job == nil || l0.Job.Fingerprint != fps[0] {
		t.Fatalf("w0 lease = %+v, want own-queue front %s", l0, fps[0])
	}
	// w1's own queue is empty: it steals the *tail* of shard 0's queue.
	l1 := lease(t, c, "w1")
	if l1.Shard != 1 || !l1.Stolen || l1.Job == nil || l1.Job.Fingerprint != fps[2] {
		t.Fatalf("w1 lease = %+v, want stolen tail %s", l1, fps[2])
	}

	s := c.Stats()
	if s.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", s.Steals)
	}
	var w1Stats WorkerStats
	for _, ws := range s.Workers {
		if ws.ID == "w1" {
			w1Stats = ws
		}
	}
	if w1Stats.Stolen != 1 || w1Stats.Leased != 1 {
		t.Fatalf("w1 stats = %+v", w1Stats)
	}

	// The victim keeps draining its front, unaware of the theft.
	l0b := lease(t, c, "w0")
	if l0b.Stolen || l0b.Job == nil || l0b.Job.Fingerprint != fps[1] {
		t.Fatalf("w0 second lease = %+v, want %s", l0b, fps[1])
	}
}

// TestFailureRetirementAndRecovery: worker-reported failures requeue at
// the tail up to the cap, then retire the job; a later success
// un-retires it.
func TestFailureRetirementAndRecovery(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{
		Sink: newFakeSink(), Shards: 1, LeaseTTL: 10 * time.Second,
		MaxJobFailures: 2, Now: clock.Now,
	}, jobsFor("poison", "healthy"))
	if err != nil {
		t.Fatal(err)
	}

	l := lease(t, c, "w1")
	r1, _ := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l.LeaseID,
		Fingerprint: l.Job.Fingerprint, Error: "boom"})
	if !r1.Accepted || r1.Retired {
		t.Fatalf("first failure = %+v", r1)
	}
	if s := c.Stats(); s.Requeued != 1 {
		t.Fatalf("Requeued = %d", s.Requeued)
	}

	// The failed job went to the tail: the next lease is the healthy one.
	l2 := lease(t, c, "w1")
	if l2.Job.Fingerprint == l.Job.Fingerprint {
		t.Fatal("failed job not requeued at tail")
	}
	postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l2.LeaseID,
		Fingerprint: l2.Job.Fingerprint, Payload: []byte(`1`)})

	// Second failure hits the cap and retires the job.
	l3 := lease(t, c, "w1")
	r2, _ := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l3.LeaseID,
		Fingerprint: l3.Job.Fingerprint, Error: "boom again"})
	if !r2.Retired {
		t.Fatalf("capped failure = %+v", r2)
	}
	if !isDone(c) {
		t.Fatal("campaign with a retired job should be terminal")
	}
	failed := c.FailedJobs()
	if len(failed) != 1 || failed[0].Fingerprint != l.Job.Fingerprint {
		t.Fatalf("FailedJobs = %+v", failed)
	}

	// A straggler's success un-retires: the result is real.
	rr, _ := postResult(t, c, ResultRequest{Worker: "w2",
		Fingerprint: l.Job.Fingerprint, Payload: []byte(`2`)})
	if !rr.Accepted {
		t.Fatalf("late success = %+v", rr)
	}
	if got := c.FailedJobs(); len(got) != 0 {
		t.Fatalf("FailedJobs after recovery = %+v", got)
	}
	if s := c.Stats(); s.Failed != 0 || s.Completed != 2 {
		t.Fatalf("stats after recovery = %+v", s)
	}
}

func TestCachedJobsCompleteAtConstruction(t *testing.T) {
	sink := newFakeSink()
	sink.results["a"] = []byte(`1`)
	sink.results["b"] = []byte(`2`)
	c, err := NewCoordinator(Config{Sink: sink}, jobsFor("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if !isDone(c) {
		t.Fatal("fully cached campaign not done at construction")
	}
	s := c.Stats()
	if s.CachedAtStart != 2 || s.Completed != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if l := lease(t, c, "w1"); !l.Done {
		t.Fatalf("lease = %+v", l)
	}
}

func TestResultValidation(t *testing.T) {
	clock := newFakeClock()
	sink := newFakeSink()
	sink.failFor["bad-ingest"] = true
	c, err := NewCoordinator(Config{Sink: sink, Now: clock.Now},
		jobsFor("a", "bad-ingest"))
	if err != nil {
		t.Fatal(err)
	}

	// Unknown fingerprint: 404, not accepted, campaign unaffected.
	resp, code := postResult(t, c, ResultRequest{Worker: "w1", Fingerprint: "nope", Payload: []byte(`1`)})
	if code != http.StatusNotFound || resp.Accepted {
		t.Fatalf("unknown fp: code %d resp %+v", code, resp)
	}

	// Sink ingest failure surfaces as a 500 and the job stays pending
	// (leaseable again) rather than silently completing.
	var ingestLease LeaseResponse
	for {
		l := lease(t, c, "w1")
		if l.Job == nil {
			t.Fatal("ran out of jobs before finding bad-ingest")
		}
		if l.Job.Fingerprint == "bad-ingest" {
			ingestLease = l
			break
		}
		postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l.LeaseID,
			Fingerprint: l.Job.Fingerprint, Payload: []byte(`1`)})
	}
	var rr ResultResponse
	code = call(t, c, http.MethodPost, PathResult, ResultRequest{Worker: "w1",
		LeaseID: ingestLease.LeaseID, Fingerprint: "bad-ingest", Payload: []byte(`1`)}, &rr)
	if code != http.StatusInternalServerError {
		t.Fatalf("ingest failure: code %d", code)
	}
	if s := c.Stats(); s.IngestErrors != 1 {
		t.Fatalf("IngestErrors = %d", s.IngestErrors)
	}
	if isDone(c) {
		t.Fatal("done despite failed ingest")
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{}, jobsFor("a")); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := NewCoordinator(Config{Sink: newFakeSink()},
		[]engine.Job{engine.JobFunc{JobName: "anon"}}); err == nil {
		t.Error("fingerprint-less job accepted")
	}
	// Duplicate fingerprints collapse to one queue entry.
	c, err := NewCoordinator(Config{Sink: newFakeSink()}, jobsFor("a", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Jobs != 2 {
		t.Fatalf("Jobs = %d, want 2 after dedupe", s.Jobs)
	}
}

func TestStatusAndHealthEndpoints(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Now: clock.Now}, jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}
	lease(t, c, "w1")
	clock.Advance(250 * time.Millisecond)

	var s Stats
	if code := call(t, c, http.MethodGet, PathStatus, nil, &s); code != http.StatusOK {
		t.Fatalf("status: code %d", code)
	}
	if s.Jobs != 1 || s.Leased != 1 || s.Done() {
		t.Fatalf("status = %+v", s)
	}
	if len(s.Workers) != 1 || s.Workers[0].LastSeenAgoMillis != 250 {
		t.Fatalf("worker liveness = %+v", s.Workers)
	}

	var h map[string]any
	if code := call(t, c, http.MethodGet, PathHealth, nil, &h); code != http.StatusOK {
		t.Fatalf("health: code %d", code)
	}
	if h["status"] != "ok" {
		t.Fatalf("health = %v", h)
	}
}
