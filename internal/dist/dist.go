// Package dist is the multi-host execution backend for experiment
// campaigns: a stdlib net/http coordinator that serves a lease-based
// job queue, and a worker loop that pulls leases, executes jobs on the
// local engine, and posts results back.
//
// The wire identity of a job is its engine fingerprint — the same
// content-derived string that addresses the result cache — so the
// protocol needs no job registry, no serialised closures, and no
// version handshake beyond the cache salt already baked into every
// fingerprint. A worker is pointed at the same figure/preset flags as
// the coordinator, rebuilds the identical job set locally, and the
// fingerprint is all the coordinator ever has to send.
//
// Results travel as the raw JSON payload bytes the job's codec
// produces — exactly the bytes engine.Cache.Put would store — and the
// coordinator ingests them through engine.ResultSink, whose *Cache
// implementation funnels into the same disk-envelope writer as local
// stores. A campaign merged from remotely posted results is therefore
// byte-identical to one computed in a single process; that property is
// the package's acceptance test.
//
// Failover is lease-based: each lease carries a deadline, workers
// heartbeat to extend it, and an expired lease re-enqueues its job at
// the front of its shard queue, so a killed worker's work fails over
// to the survivors automatically. Because results are content
// addressed, a slow worker whose lease expired may still post its
// result late — the coordinator accepts it idempotently (a duplicate
// of a byte-identical payload is harmless), so no fencing is needed.
//
// Work is partitioned into shard queues by engine.ShardOf so each
// worker drains an affine slice of the campaign, and an idle worker
// steals from the tail of the longest remaining queue — measurably
// rebalancing the uneven splits content hashing produces.
package dist

import "encoding/json"

// HeaderBodySum carries a hex sha256 of the message body, set by
// workers on every request and by the coordinator on every response.
// Either side verifies it before parsing, so a transport that corrupts
// or truncates bytes (see internal/chaos) produces a retryable
// integrity failure instead of silently ingesting damaged JSON — the
// guard that keeps byte-identical merges true under hostile networks.
const HeaderBodySum = "X-Body-Sum"

// Protocol endpoints served by the Coordinator.
const (
	// PathLease is POSTed by workers to obtain one leased job.
	PathLease = "/api/lease"
	// PathHeartbeat is POSTed by workers to extend a running lease.
	PathHeartbeat = "/api/heartbeat"
	// PathResult is POSTed by workers to publish a result (or report a
	// job failure).
	PathResult = "/api/result"
	// PathStatus serves coordinator Stats as JSON.
	PathStatus = "/api/status"
	// PathHealth is the liveness endpoint.
	PathHealth = "/healthz"
)

// JobSpec is a job's wire identity: its telemetry name plus the
// content-addressed fingerprint that is both its queue key and its
// cache address.
type JobSpec struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// LeaseRequest asks the coordinator for one job lease.
type LeaseRequest struct {
	// Worker identifies the requesting worker; the coordinator assigns
	// each new worker a shard queue on first contact.
	Worker string `json:"worker"`
}

// LeaseResponse answers a lease request. Exactly one of four shapes
// comes back: Done (campaign complete — stop), Draining (the
// coordinator is shutting down and grants no new leases — finish and
// exit), Job set (a lease), or none of those (nothing leasable right
// now — retry after RetryMillis; jobs may reappear when an expired
// lease re-enqueues).
type LeaseResponse struct {
	Done        bool     `json:"done,omitempty"`
	Draining    bool     `json:"draining,omitempty"`
	Job         *JobSpec `json:"job,omitempty"`
	LeaseID     string   `json:"leaseId,omitempty"`
	TTLMillis   int64    `json:"ttlMillis,omitempty"`
	Shard       int      `json:"shard"`
	Stolen      bool     `json:"stolen,omitempty"`
	RetryMillis int64    `json:"retryMillis,omitempty"`
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"leaseId"`
}

// HeartbeatResponse reports whether the lease is still held. Extended
// false means the lease expired and was re-enqueued (or its job
// completed elsewhere); the worker may keep computing — a late result
// is still accepted idempotently — but must not count on the lease.
type HeartbeatResponse struct {
	Extended  bool  `json:"extended"`
	TTLMillis int64 `json:"ttlMillis,omitempty"`
}

// ResultRequest publishes the outcome of a leased job. On success,
// Payload carries the job codec's JSON encoding of the result — the
// exact bytes the coordinator's cache stores. On failure, Error carries
// the worker-side error text and Payload is empty.
type ResultRequest struct {
	Worker      string          `json:"worker"`
	LeaseID     string          `json:"leaseId,omitempty"`
	Fingerprint string          `json:"fingerprint"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// ResultResponse acknowledges a posted result.
type ResultResponse struct {
	// Accepted reports the payload was ingested (or the failure
	// recorded). False only for requests naming unknown fingerprints.
	Accepted bool `json:"accepted"`
	// Duplicate marks a result for a job that had already completed —
	// harmless by content addressing, counted for observability.
	Duplicate bool `json:"duplicate,omitempty"`
	// Retired marks a failure report that exhausted the job's failure
	// budget: the job will not be re-leased.
	Retired bool `json:"retired,omitempty"`
	// Done reports the campaign is complete as of this acknowledgment.
	// The poster whose result (or failure report) finishes the campaign
	// learns it here and can exit immediately — its next lease poll
	// would race the coordinator's shutdown and hit a closed socket.
	Done bool `json:"done,omitempty"`
	// Draining reports the coordinator is winding down: no further
	// leases will be granted, and the server closes once the in-flight
	// leases resolve. Same race as Done — the poster that lands the
	// final draining lease must not poll again.
	Draining bool `json:"draining,omitempty"`
}

// Stats snapshots the coordinator's queue, lease, and worker state for
// the /api/status endpoint and end-of-campaign reporting.
type Stats struct {
	// Jobs is the campaign size; CachedAtStart the jobs already present
	// in the sink when the coordinator was built (a resumed campaign).
	Jobs          int `json:"jobs"`
	CachedAtStart int `json:"cachedAtStart"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	Pending       int `json:"pending"`
	Leased        int `json:"leased"`
	// Steals counts leases served from another shard's queue tail;
	// Expired the leases whose deadline passed and whose jobs were
	// re-enqueued; Requeued the failure-triggered re-enqueues;
	// Duplicates the idempotently absorbed late results.
	Steals       int `json:"steals"`
	Expired      int `json:"expired"`
	Requeued     int `json:"requeued"`
	Duplicates   int `json:"duplicates"`
	IngestErrors int `json:"ingestErrors"`
	// Ingested counts result payloads actually written into the sink —
	// the exactly-once counterpart of Duplicates: Ingested never exceeds
	// the job count no matter how many times results are delivered.
	Ingested int `json:"ingested"`
	// Backpressured counts result posts deferred with 429 + Retry-After
	// because the ingest budget was exhausted.
	Backpressured int `json:"backpressured"`
	// Draining reports the coordinator has stopped granting leases and
	// is waiting for in-flight work to land.
	Draining bool `json:"draining,omitempty"`
	// Workers lists every worker that ever contacted the coordinator,
	// sorted by ID.
	Workers []WorkerStats `json:"workers"`
}

// WorkerStats is one worker's liveness and throughput as the
// coordinator sees it.
type WorkerStats struct {
	ID    string `json:"id"`
	Shard int    `json:"shard"`
	// Leased counts leases granted; Stolen the subset served from other
	// shards' queues; Completed the results accepted; Failures the
	// failure reports.
	Leased    int `json:"leased"`
	Stolen    int `json:"stolen"`
	Completed int `json:"completed"`
	Failures  int `json:"failures"`
	// LastSeenAgoMillis is the time since the worker's last request,
	// at the instant the stats were snapshotted.
	LastSeenAgoMillis int64 `json:"lastSeenAgoMillis"`
}

// Done reports whether every job reached a terminal state (completed
// or retired failed).
func (s Stats) Done() bool { return s.Completed+s.Failed == s.Jobs }
