package dist

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestLateResultAfterReLeaseExactlyOnce pins the idempotent re-lease
// contract: a job whose lease expired and was granted again produces
// exactly one sink ingest no matter how many workers post its result —
// the first post wins, every later one is absorbed as a duplicate
// without touching the sink.
func TestLateResultAfterReLeaseExactlyOnce(t *testing.T) {
	clock := newFakeClock()
	sink := newFakeSink()
	c, err := NewCoordinator(Config{Sink: sink, Shards: 1, LeaseTTL: time.Second, Now: clock.Now},
		jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}

	// w1 leases the job, goes quiet, and the lease fails over to w2.
	l1 := lease(t, c, "w1")
	clock.Advance(2 * time.Second)
	l2 := lease(t, c, "w2")
	if l2.Job == nil || l2.Job.Fingerprint != "a" {
		t.Fatalf("failover lease = %+v", l2)
	}

	// w2 completes first; the slow w1 posts the same result late.
	r2, _ := postResult(t, c, ResultRequest{Worker: "w2", LeaseID: l2.LeaseID,
		Fingerprint: "a", Payload: []byte(`1.5`)})
	if !r2.Accepted || r2.Duplicate {
		t.Fatalf("winner post = %+v", r2)
	}
	r1, _ := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l1.LeaseID,
		Fingerprint: "a", Payload: []byte(`1.5`)})
	if !r1.Accepted || !r1.Duplicate {
		t.Fatalf("late post = %+v, want accepted duplicate", r1)
	}

	if n := sink.ingests("a"); n != 1 {
		t.Fatalf("sink ingested %d times, want exactly 1", n)
	}
	s := c.Stats()
	if s.Ingested != 1 || s.Duplicates != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestBackpressure429 pins the ingest-budget contract: once the
// sliding window fills, a fresh result post is deferred with 429 +
// Retry-After while the worker keeps its lease, and a replay after the
// window drains is accepted unchanged. Duplicates stay free — they
// never charge the budget.
func TestBackpressure429(t *testing.T) {
	clock := newFakeClock()
	sink := newFakeSink()
	c, err := NewCoordinator(Config{
		Sink: sink, Shards: 1, LeaseTTL: time.Minute, Now: clock.Now,
		IngestBurst: 2, IngestWindow: time.Second,
	}, jobsFor("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}

	type held struct{ lease LeaseResponse }
	var leases []held
	for i := 0; i < 3; i++ {
		l := lease(t, c, "w1")
		if l.Job == nil {
			t.Fatalf("lease %d = %+v", i, l)
		}
		leases = append(leases, held{l})
	}

	// First two posts fit the budget.
	for i := 0; i < 2; i++ {
		r, code := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: leases[i].lease.LeaseID,
			Fingerprint: leases[i].lease.Job.Fingerprint, Payload: []byte(`1`)})
		if code != http.StatusOK || !r.Accepted {
			t.Fatalf("post %d: code %d resp %+v", i, code, r)
		}
	}

	// The third exhausts it: 429, Retry-After set, lease retained, job
	// not completed, sink untouched.
	third := leases[2].lease
	body, _ := json.Marshal(ResultRequest{Worker: "w1", LeaseID: third.LeaseID,
		Fingerprint: third.Job.Fingerprint, Payload: []byte(`1`)})
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, PathResult, bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget post: code %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	s := c.Stats()
	if s.Backpressured != 1 || s.Ingested != 2 || s.Completed != 2 || s.Leased != 1 {
		t.Fatalf("stats after 429 = %+v", s)
	}
	if sink.ingests(third.Job.Fingerprint) != 0 {
		t.Fatal("429'd payload reached the sink")
	}

	// A duplicate post while the window is full is still absorbed for
	// free — no 429, no ingest.
	dup, code := postResult(t, c, ResultRequest{Worker: "w1",
		Fingerprint: leases[0].lease.Job.Fingerprint, Payload: []byte(`1`)})
	if code != http.StatusOK || !dup.Duplicate {
		t.Fatalf("duplicate under backpressure: code %d resp %+v", code, dup)
	}

	// After the window drains, the identical replay lands.
	clock.Advance(2 * time.Second)
	r, code := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: third.LeaseID,
		Fingerprint: third.Job.Fingerprint, Payload: []byte(`1`)})
	if code != http.StatusOK || !r.Accepted || r.Duplicate {
		t.Fatalf("replay after window: code %d resp %+v", code, r)
	}
	if !isDone(c) {
		t.Fatal("campaign not done after replay")
	}
	if s := c.Stats(); s.Ingested != 3 {
		t.Fatalf("Ingested = %d, want 3", s.Ingested)
	}
}

func isDrained(c *Coordinator) bool {
	select {
	case <-c.Drained():
		return true
	default:
		return false
	}
}

// TestDrain pins the graceful-shutdown protocol: after Drain no new
// leases are granted, status and health reflect draining, in-flight
// results still land, and Drained closes once the last lease resolves.
func TestDrain(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1, LeaseTTL: time.Minute, Now: clock.Now},
		jobsFor("a", "b"))
	if err != nil {
		t.Fatal(err)
	}

	l := lease(t, c, "w1")
	c.Drain()
	c.Drain() // idempotent
	if isDrained(c) {
		t.Fatal("drained with a lease in flight")
	}

	// No new leases: a worker asking sees Draining, not a job and not
	// Done (the campaign is unfinished).
	idle := lease(t, c, "w2")
	if !idle.Draining || idle.Done || idle.Job != nil {
		t.Fatalf("lease while draining = %+v", idle)
	}
	var s Stats
	call(t, c, http.MethodGet, PathStatus, nil, &s)
	if !s.Draining {
		t.Fatal("status does not show draining")
	}
	var h map[string]any
	call(t, c, http.MethodGet, PathHealth, nil, &h)
	if h["status"] != "draining" {
		t.Fatalf("health = %v", h)
	}

	// The in-flight heartbeat and result still land normally.
	var hb HeartbeatResponse
	call(t, c, http.MethodPost, PathHeartbeat, HeartbeatRequest{Worker: "w1", LeaseID: l.LeaseID}, &hb)
	if !hb.Extended {
		t.Fatal("heartbeat rejected during drain")
	}
	r, _ := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l.LeaseID,
		Fingerprint: l.Job.Fingerprint, Payload: []byte(`1`)})
	if !r.Accepted {
		t.Fatalf("in-flight result during drain = %+v", r)
	}
	if !r.Draining {
		t.Fatal("result ack during drain must carry Draining so the poster exits without another lease poll")
	}
	if !isDrained(c) {
		t.Fatal("not drained after the last lease resolved")
	}
	if isDone(c) {
		t.Fatal("drain must not mark an unfinished campaign done")
	}
}

// TestDrainResolvesByExpiry: a drain does not wait forever on a dead
// worker — the lease's own TTL resolves it.
func TestDrainResolvesByExpiry(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1, LeaseTTL: time.Second, Now: clock.Now},
		jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}
	lease(t, c, "doomed")
	c.Drain()
	if isDrained(c) {
		t.Fatal("drained early")
	}
	clock.Advance(2 * time.Second)
	// Any request sweeps; status is the natural probe.
	var s Stats
	call(t, c, http.MethodGet, PathStatus, nil, &s)
	if s.Expired != 1 {
		t.Fatalf("Expired = %d", s.Expired)
	}
	if !isDrained(c) {
		t.Fatal("expiry did not resolve the drain")
	}
}

// TestDrainWithNoLeases: draining an idle coordinator completes
// immediately.
func TestDrainWithNoLeases(t *testing.T) {
	c, err := NewCoordinator(Config{Sink: newFakeSink()}, jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}
	c.Drain()
	if !isDrained(c) {
		t.Fatal("idle drain did not complete at once")
	}
}

// TestDeadlineAwareStealing pins the victim-selection upgrade: the
// thief steals from the shard with the most outstanding *work* (queue
// length × observed runtime), not the longest queue. Shard 0 holds two
// slow jobs, shard 1 four fast ones; with runtime samples in place the
// two slow jobs outweigh the four fast ones.
func TestDeadlineAwareStealing(t *testing.T) {
	clock := newFakeClock()
	slow := fpsOnShard(t, 0, 3, 3)
	fast := fpsOnShard(t, 1, 3, 5)
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 3, LeaseTTL: time.Hour, Now: clock.Now},
		jobsFor(append(append([]string{}, slow...), fast...)...))
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin shard assignment on first contact: w0→0, w1→1, w2→2.
	// w0 runs one slow job (10s observed), w1 one fast job (1s).
	l0 := lease(t, c, "w0")
	if l0.Shard != 0 || l0.Stolen {
		t.Fatalf("w0 lease = %+v", l0)
	}
	clock.Advance(10 * time.Second)
	postResult(t, c, ResultRequest{Worker: "w0", LeaseID: l0.LeaseID,
		Fingerprint: l0.Job.Fingerprint, Payload: []byte(`1`)})
	l1 := lease(t, c, "w1")
	if l1.Shard != 1 || l1.Stolen {
		t.Fatalf("w1 lease = %+v", l1)
	}
	clock.Advance(time.Second)
	postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l1.LeaseID,
		Fingerprint: l1.Job.Fingerprint, Payload: []byte(`1`)})

	// Shard 0: 2 × 10s = 20s of work. Shard 1: 4 × 1s = 4s. A naive
	// longest-queue thief would raid shard 1; the runtime-weighted one
	// must raid shard 0's tail.
	l2 := lease(t, c, "w2")
	if l2.Shard != 2 || !l2.Stolen || l2.Job == nil {
		t.Fatalf("w2 lease = %+v, want a steal", l2)
	}
	if l2.Job.Fingerprint != slow[2] {
		t.Fatalf("stole %s, want shard 0's tail %s", l2.Job.Fingerprint, slow[2])
	}
}

// TestRetryHintTracksLeaseAge: the nothing-leasable retry hint follows
// the soonest outstanding lease deadline, clamped to [50ms, TTL/4] —
// an idle worker probes right when failover could free work.
func TestRetryHintTracksLeaseAge(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1, LeaseTTL: 10 * time.Second, Now: clock.Now},
		jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}
	lease(t, c, "busy")

	// Fresh lease: remaining 10s clamps down to TTL/4.
	if idle := lease(t, c, "idle"); idle.RetryMillis != 2500 {
		t.Fatalf("fresh-lease hint = %dms, want 2500", idle.RetryMillis)
	}
	// 9s in: 1s remains — the hint tracks it.
	clock.Advance(9 * time.Second)
	if idle := lease(t, c, "idle"); idle.RetryMillis != 1000 {
		t.Fatalf("aged-lease hint = %dms, want 1000", idle.RetryMillis)
	}
	// 40ms from expiry: clamped up to 50ms, never a hot spin.
	clock.Advance(960 * time.Millisecond)
	if idle := lease(t, c, "idle"); idle.RetryMillis != 50 {
		t.Fatalf("near-expiry hint = %dms, want 50", idle.RetryMillis)
	}
}

// TestRequestChecksumVerified pins the wire-integrity contract: a
// request whose HeaderBodySum does not match its bytes is rejected
// with 400 before any state changes, one that matches is processed,
// and every response carries a sum matching its own body.
func TestRequestChecksumVerified(t *testing.T) {
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1}, jobsFor("a"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(LeaseRequest{Worker: "w1"})

	// Damaged: sum of different bytes.
	req := httptest.NewRequest(http.MethodPost, PathLease, bytes.NewReader(body))
	req.Header.Set(HeaderBodySum, bodySum([]byte("other bytes")))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt request: code %d, want 400", rec.Code)
	}
	if s := c.Stats(); s.Leased != 0 {
		t.Fatal("corrupt lease request mutated state")
	}

	// Intact: correct sum passes, and the response checks out against
	// its own advertised sum.
	req = httptest.NewRequest(http.MethodPost, PathLease, bytes.NewReader(body))
	req.Header.Set(HeaderBodySum, bodySum(body))
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("intact request: code %d", rec.Code)
	}
	if got, want := rec.Header().Get(HeaderBodySum), bodySum(rec.Body.Bytes()); got != want {
		t.Fatalf("response sum %q does not match body sum %q", got, want)
	}
	var l LeaseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &l); err != nil || l.Job == nil {
		t.Fatalf("lease response = %+v, %v", l, err)
	}

	// No header at all: legacy clients still work (sums are verified
	// only when present).
	req = httptest.NewRequest(http.MethodPost, PathHealth, nil)
	rec = httptest.NewRecorder()
	req.Method = http.MethodGet
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("health without sum: code %d", rec.Code)
	}
}

// TestResultAckCarriesDone: only the post that completes the campaign
// is acknowledged with Done — the poster exits on the spot instead of
// racing the coordinator's shutdown with one more lease poll.
func TestResultAckCarriesDone(t *testing.T) {
	c, err := NewCoordinator(Config{Sink: newFakeSink(), Shards: 1}, jobsFor("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	l1 := lease(t, c, "w1")
	r1, _ := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l1.LeaseID,
		Fingerprint: l1.Job.Fingerprint, Payload: []byte(`1`)})
	if !r1.Accepted || r1.Done {
		t.Fatalf("first ack = %+v, want accepted and not done (one job remains)", r1)
	}
	l2 := lease(t, c, "w1")
	r2, _ := postResult(t, c, ResultRequest{Worker: "w1", LeaseID: l2.LeaseID,
		Fingerprint: l2.Job.Fingerprint, Payload: []byte(`2`)})
	if !r2.Accepted || !r2.Done {
		t.Fatalf("final ack = %+v, want Done", r2)
	}
	if !isDone(c) {
		t.Fatal("coordinator not done")
	}
}
