// Integration tests for the distributed backend: a real coordinator
// behind httptest, real workers executing real analytic surface jobs on
// real engines, including the kill-one-worker failover from the
// acceptance criteria. External test package so only the public API is
// exercised (and so experiments can be imported without ceremony).
package dist_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sensornet/internal/dist"
	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/trace"
)

// tinyAnalyticPreset is a fast real campaign: 2 densities × 8 grid
// points = 16 analytic point jobs.
func tinyAnalyticPreset() experiments.Preset {
	pre := experiments.QuickAnalytic()
	pre.Rhos = []float64{40, 100}
	pre.Grid = []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1}
	return pre
}

// readTree returns relative path → content for every file under dir.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runDistributed drives a full campaign through a coordinator and the
// given worker configs, returning the coordinator (for stats) and each
// worker's (report, error) in order.
func runDistributed(t *testing.T, cache *engine.Cache, jobs []engine.Job, spans *trace.SpanLog, workerCfgs []dist.WorkerConfig) (*dist.Coordinator, []*dist.WorkerReport, []error) {
	t.Helper()
	coord, err := dist.NewCoordinator(dist.Config{
		Sink:     cache,
		Shards:   len(workerCfgs),
		LeaseTTL: 300 * time.Millisecond,
		Spans:    spans,
		Logf:     t.Logf,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	reports := make([]*dist.WorkerReport, len(workerCfgs))
	errs := make([]error, len(workerCfgs))
	var wg sync.WaitGroup
	for i, cfg := range workerCfgs {
		cfg.BaseURL = srv.URL
		w, err := dist.NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *dist.Worker) {
			defer wg.Done()
			reports[i], errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	return coord, reports, errs
}

// TestDistributedMergesByteIdentical is the acceptance anchor: a
// 2-worker distributed campaign — with one worker killed mid-run by
// fault injection — produces a cache directory byte-identical to a
// plain local run, and the merged surface is equal.
func TestDistributedMergesByteIdentical(t *testing.T) {
	pre := tinyAnalyticPreset()
	jobs := experiments.SurfaceJobs(pre, false, 1)
	if len(jobs) != 16 {
		t.Fatalf("job set size = %d, want 16", len(jobs))
	}

	// Reference: an unsharded local run into its own cache dir.
	localDir := t.TempDir()
	localEng := engine.New(engine.Config{
		Workers: 4, Cache: engine.NewCache(localDir, experiments.CacheSalt)})
	localSurf, err := experiments.AnalyticSurfaceCtx(context.Background(), localEng, pre)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: coordinator over a fresh cache dir, two workers; the
	// first dies after one completed job while holding a lease.
	distDir := t.TempDir()
	spans := &trace.SpanLog{}
	workerEngine := func() *engine.Engine { return engine.New(engine.Config{Workers: 2}) }
	coord, reports, errs := runDistributed(t,
		engine.NewCache(distDir, experiments.CacheSalt), jobs, spans,
		[]dist.WorkerConfig{
			{ID: "w-dying", Engine: workerEngine(), Jobs: jobs, FailAfter: 1, Poll: 20 * time.Millisecond},
			{ID: "w-survivor", Engine: workerEngine(), Jobs: jobs, Poll: 20 * time.Millisecond},
		})

	if !errors.Is(errs[0], dist.ErrFailInjected) {
		t.Fatalf("dying worker error = %v, want ErrFailInjected", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("surviving worker error = %v", errs[1])
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator not done after workers drained")
	}
	s := coord.Stats()
	if s.Completed != len(jobs) || s.Failed != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Expired < 1 {
		t.Fatalf("Expired = %d: the killed worker's lease never failed over", s.Expired)
	}
	if reports[1].Completed < len(jobs)-reports[0].Completed {
		t.Fatalf("survivor completed %d of %d", reports[1].Completed, len(jobs))
	}
	if spans.Len() < len(jobs) {
		t.Fatalf("lease spans = %d, want >= %d", spans.Len(), len(jobs))
	}

	// Byte identity at the cache layer: same file names, same bytes.
	localTree, distTree := readTree(t, localDir), readTree(t, distDir)
	if len(localTree) == 0 || len(localTree) != len(distTree) {
		t.Fatalf("cache trees differ in size: local %d, dist %d", len(localTree), len(distTree))
	}
	for name, lb := range localTree {
		db, ok := distTree[name]
		if !ok {
			t.Fatalf("distributed cache missing entry %s", name)
		}
		if string(lb) != string(db) {
			t.Fatalf("cache entry %s differs:\n%s\nvs\n%s", name, lb, db)
		}
	}

	// Merge identity: a cache-only engine over the distributed cache
	// assembles the same surface the local run computed.
	mergeEng := engine.New(engine.Config{
		Workers: 4, CacheOnly: true,
		Cache: engine.NewCache(distDir, experiments.CacheSalt)})
	distSurf, err := experiments.AnalyticSurfaceCtx(context.Background(), mergeEng, pre)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localSurf, distSurf) {
		t.Fatal("merged surface differs from the local run's")
	}
}

// TestDistributedResume: a second coordinator over the same cache dir
// finds every job cached and is done before any worker lifts a finger.
func TestDistributedResume(t *testing.T) {
	pre := tinyAnalyticPreset()
	jobs := experiments.SurfaceJobs(pre, false, 1)
	dir := t.TempDir()

	cache := engine.NewCache(dir, experiments.CacheSalt)
	_, reports, errs := runDistributed(t, cache, jobs, nil,
		[]dist.WorkerConfig{{ID: "w1", Engine: engine.New(engine.Config{Workers: 2}), Jobs: jobs}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if reports[0].Completed != len(jobs) {
		t.Fatalf("single worker completed %d of %d", reports[0].Completed, len(jobs))
	}

	resumed, err := dist.NewCoordinator(dist.Config{
		Sink: engine.NewCache(dir, experiments.CacheSalt), Shards: 2,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-resumed.Done():
	default:
		t.Fatal("resumed coordinator over a full cache is not done")
	}
	if s := resumed.Stats(); s.CachedAtStart != len(jobs) {
		t.Fatalf("CachedAtStart = %d, want %d", s.CachedAtStart, len(jobs))
	}
}

// TestWorkerUnknownJob: a worker leased a fingerprint outside its job
// set reports the mismatch as a job failure rather than wedging.
func TestWorkerUnknownJob(t *testing.T) {
	pre := tinyAnalyticPreset()
	jobs := experiments.SurfaceJobs(pre, false, 1)

	// The worker only knows half the campaign.
	coord, err := dist.NewCoordinator(dist.Config{
		Sink:           engine.NewCache(t.TempDir(), experiments.CacheSalt),
		MaxJobFailures: 1,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	w, err := dist.NewWorker(dist.WorkerConfig{
		ID: "w1", BaseURL: srv.URL,
		Engine: engine.New(engine.Config{Workers: 2}),
		Jobs:   jobs[:len(jobs)/2],
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("no failures reported for unknown jobs")
	}
	if got := len(coord.FailedJobs()); got != len(jobs)-len(jobs)/2 {
		t.Fatalf("FailedJobs = %d, want %d", got, len(jobs)-len(jobs)/2)
	}
}

func TestNewWorkerValidation(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	jobs := []engine.Job{engine.JobFunc{Key: "k"}}
	cases := []dist.WorkerConfig{
		{BaseURL: "http://x", Engine: eng, Jobs: jobs}, // no ID
		{ID: "w", Engine: eng, Jobs: jobs},             // no URL
		{ID: "w", BaseURL: "http://x", Jobs: jobs},     // no engine
		{ID: "w", BaseURL: "http://x", Engine: eng},    // no jobs
	}
	for i, cfg := range cases {
		if _, err := dist.NewWorker(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
