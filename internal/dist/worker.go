package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sensornet/internal/engine"
)

// ErrFailInjected is returned by Worker.Run when the FailAfter fault
// hook fires: the worker exits while holding a lease, simulating a
// crashed host so failover can be exercised deterministically (the
// same philosophy as internal/faults, applied to the fleet itself).
var ErrFailInjected = errors.New("dist: worker fail-after limit reached (injected fault); exiting with a lease held")

// WorkerConfig parameterises a worker loop.
type WorkerConfig struct {
	// ID names this worker to the coordinator; required and expected to
	// be unique per process (e.g. host+pid).
	ID string
	// BaseURL is the coordinator's root URL (e.g. http://host:8080).
	BaseURL string
	// Engine executes leased jobs, bringing the retry/backoff,
	// per-attempt timeout, and panic-recovery discipline campaigns
	// already rely on. Required. Its cache, if any, is worker-local.
	Engine *engine.Engine
	// Jobs is the campaign's full job set (the same FigureJobs the
	// coordinator was built over); the worker indexes it by fingerprint
	// and executes whichever jobs it is leased.
	Jobs []engine.Job
	// Client performs the HTTP requests; defaults to a client with a
	// 30s request timeout.
	Client *http.Client
	// Poll is the idle wait between lease attempts when the coordinator
	// has nothing leasable; the coordinator's RetryMillis hint, when
	// present, takes precedence. Defaults to 250ms.
	Poll time.Duration
	// FailAfter, when > 0, injects a crash: after that many posted
	// results the worker takes one more lease and exits with
	// ErrFailInjected without executing it.
	FailAfter int
	// Logf, when non-nil, receives per-lease diagnostics.
	Logf func(format string, args ...any)
}

// WorkerReport summarises one worker's pass over a campaign.
type WorkerReport struct {
	// Leased counts leases obtained; Stolen the subset taken from other
	// shards' queues; Completed the results posted; Failed the jobs
	// whose execution or encoding failed (reported to the coordinator).
	Leased, Stolen, Completed, Failed int
	// Shard is the queue the coordinator assigned this worker.
	Shard int
}

// String renders the report as the one-line summary the -worker CLI
// prints.
func (r WorkerReport) String() string {
	return fmt.Sprintf("worker shard %d: %d leased (%d stolen), %d completed, %d failed",
		r.Shard, r.Leased, r.Stolen, r.Completed, r.Failed)
}

// Worker pulls leases from a coordinator and executes them on the
// local engine.
type Worker struct {
	cfg  WorkerConfig
	jobs map[string]engine.Job
	base string
}

// NewWorker validates the config and indexes the job set.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("dist: worker needs an ID")
	}
	if cfg.BaseURL == "" {
		return nil, errors.New("dist: worker needs the coordinator URL")
	}
	if cfg.Engine == nil {
		return nil, errors.New("dist: worker needs an engine")
	}
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("dist: worker has an empty job set")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	w := &Worker{
		cfg:  cfg,
		jobs: make(map[string]engine.Job, len(cfg.Jobs)),
		base: strings.TrimSuffix(cfg.BaseURL, "/"),
	}
	for _, j := range cfg.Jobs {
		if fp := j.Fingerprint(); fp != "" {
			w.jobs[fp] = j
		}
	}
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// post sends one JSON request and decodes the JSON response, retrying
// transient transport failures a few times so a briefly unreachable
// coordinator does not kill the worker.
func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: encoding %s request: %w", path, err)
	}
	var lastErr error
	backoff := time.NewTimer(0)
	if !backoff.Stop() {
		<-backoff.C
	}
	defer backoff.Stop()
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			backoff.Reset(time.Duration(attempt) * 200 * time.Millisecond)
			select {
			case <-backoff.C:
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		}
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hr.Header.Set("Content-Type", "application/json")
		res, err := w.cfg.Client.Do(hr)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if res.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("dist: %s: coordinator said %s: %s", path, res.Status, strings.TrimSpace(string(data)))
			if res.StatusCode >= 500 {
				continue // coordinator-side trouble may clear
			}
			return lastErr
		}
		if resp == nil {
			return nil
		}
		if err := json.Unmarshal(data, resp); err != nil {
			return fmt.Errorf("dist: %s: bad response %q: %w", path, data, err)
		}
		return nil
	}
	return fmt.Errorf("dist: %s: giving up after retries: %w", path, lastErr)
}

// Run pulls leases until the coordinator reports the campaign done (or
// ctx is cancelled, or the FailAfter fault fires). The returned report
// is valid even alongside a non-nil error.
func (w *Worker) Run(ctx context.Context) (*WorkerReport, error) {
	rep := &WorkerReport{}
	poll := time.NewTimer(0)
	if !poll.Stop() {
		<-poll.C
	}
	defer poll.Stop()
	for {
		if err := ctx.Err(); err != nil {
			return rep, context.Cause(ctx)
		}
		var lease LeaseResponse
		if err := w.post(ctx, PathLease, LeaseRequest{Worker: w.cfg.ID}, &lease); err != nil {
			return rep, err
		}
		rep.Shard = lease.Shard
		if lease.Done {
			return rep, nil
		}
		if lease.Job == nil {
			wait := w.cfg.Poll
			if lease.RetryMillis > 0 {
				wait = time.Duration(lease.RetryMillis) * time.Millisecond
			}
			poll.Reset(wait)
			select {
			case <-poll.C:
			case <-ctx.Done():
				poll.Stop()
				return rep, context.Cause(ctx)
			}
			continue
		}
		rep.Leased++
		if lease.Stolen {
			rep.Stolen++
		}
		if w.cfg.FailAfter > 0 && rep.Completed >= w.cfg.FailAfter {
			// Die holding the lease: the coordinator's expiry sweep must
			// fail this job over to another worker.
			return rep, ErrFailInjected
		}
		if err := w.runLease(ctx, lease, rep); err != nil {
			return rep, err
		}
	}
}

// runLease executes one leased job and posts its outcome. Only
// transport-level or cancellation errors propagate; job failures are
// reported to the coordinator and the loop continues.
func (w *Worker) runLease(ctx context.Context, lease LeaseResponse, rep *WorkerReport) error {
	spec := *lease.Job
	job, ok := w.jobs[spec.Fingerprint]
	if !ok {
		rep.Failed++
		w.logf("dist: leased job %s is not in this worker's job set (figure/preset flags differ from the coordinator?)", spec.Name)
		return w.post(ctx, PathResult, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
			Error: "job not in worker job set (figure/preset mismatch)",
		}, nil)
	}

	// Heartbeat while the job computes, at a third of the lease TTL so
	// two beats can be lost before the lease fails over.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	interval := time.Duration(lease.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = 5 * time.Second
	}
	//lint:ignore baregoroutine the heartbeat must tick while the leased job computes on the engine pool; it is bounded (one per lease), cancel-aware, and joined before the result is posted
	go w.heartbeat(hbCtx, lease, interval, hbDone)
	results, err := w.cfg.Engine.Run(ctx, []engine.Job{job})
	stopHB()
	<-hbDone

	if err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		rep.Failed++
		w.logf("dist: job %s failed: %v", spec.Name, err)
		return w.post(ctx, PathResult, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
			Error: err.Error(),
		}, nil)
	}
	payload, err := engine.EncodeResult(job, results[0].Value)
	if err != nil {
		rep.Failed++
		return w.post(ctx, PathResult, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
			Error: err.Error(),
		}, nil)
	}
	if err := w.post(ctx, PathResult, ResultRequest{
		Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
		Payload: payload,
	}, nil); err != nil {
		return err
	}
	rep.Completed++
	w.logf("dist: job %s completed and posted (%d bytes)", spec.Name, len(payload))
	return nil
}

// heartbeat extends the lease until ctx is cancelled (the job
// finished) or the coordinator reports the lease lost, in which case
// it stops beating — the job keeps computing and its late result is
// still absorbed idempotently.
func (w *Worker) heartbeat(ctx context.Context, lease LeaseResponse, interval time.Duration, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var resp HeartbeatResponse
		err := w.post(ctx, PathHeartbeat, HeartbeatRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("dist: heartbeat for %s failed: %v", lease.Job.Name, err)
			continue
		}
		if !resp.Extended {
			w.logf("dist: lease %s lost (expired and failed over); finishing the job anyway", lease.LeaseID)
			return
		}
	}
}
