package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sensornet/internal/engine"
)

// ErrFailInjected is returned by Worker.Run when the FailAfter fault
// hook fires: the worker exits while holding a lease, simulating a
// crashed host so failover can be exercised deterministically (the
// same philosophy as internal/faults, applied to the fleet itself).
var ErrFailInjected = errors.New("dist: worker fail-after limit reached (injected fault); exiting with a lease held")

// WorkerConfig parameterises a worker loop.
type WorkerConfig struct {
	// ID names this worker to the coordinator; required and expected to
	// be unique per process (e.g. host+pid).
	ID string
	// BaseURL is the coordinator's root URL (e.g. http://host:8080).
	BaseURL string
	// Engine executes leased jobs, bringing the retry/backoff,
	// per-attempt timeout, and panic-recovery discipline campaigns
	// already rely on. Required. Its cache, if any, is worker-local.
	Engine *engine.Engine
	// Jobs is the campaign's full job set (the same FigureJobs the
	// coordinator was built over); the worker indexes it by fingerprint
	// and executes whichever jobs it is leased.
	Jobs []engine.Job
	// Client performs the HTTP requests; defaults to a client with a
	// 30s request timeout.
	Client *http.Client
	// Poll is the idle wait between lease attempts when the coordinator
	// has nothing leasable; the coordinator's RetryMillis hint, when
	// present, takes precedence. Defaults to 250ms.
	Poll time.Duration
	// PostAttempts bounds the retry loop around each protocol request;
	// defaults to 10. Every failure is retried — transport errors,
	// checksum mismatches, and error statuses alike — because under a
	// chaotic transport any single response is unreliable evidence, and
	// the protocol is idempotent end to end: a replayed lease request,
	// heartbeat, or result post is always safe.
	PostAttempts int
	// PostBackoff spaces the retries; the zero value means the shared
	// engine discipline with Base 100ms, Max 2s. A 429's Retry-After
	// overrides the computed delay.
	PostBackoff engine.BackoffPolicy
	// FailAfter, when > 0, injects a crash: after that many posted
	// results the worker takes one more lease and exits with
	// ErrFailInjected without executing it.
	FailAfter int
	// Logf, when non-nil, receives per-lease diagnostics.
	Logf func(format string, args ...any)
}

// WorkerReport summarises one worker's pass over a campaign.
type WorkerReport struct {
	// Leased counts leases obtained; Stolen the subset taken from other
	// shards' queues; Completed the results posted; Failed the jobs
	// whose execution or encoding failed (reported to the coordinator).
	Leased, Stolen, Completed, Failed int
	// FromCache counts completed leases answered from the worker's own
	// engine cache without recomputing — the idempotent re-lease path: a
	// job this worker already ran (under a lease that later expired and
	// failed back over to it) costs one cache read, not a re-execution.
	FromCache int
	// Drained reports the coordinator told this worker it was draining;
	// the worker finished its in-flight job and exited cleanly.
	Drained bool
	// Shard is the queue the coordinator assigned this worker.
	Shard int
}

// String renders the report as the one-line summary the -worker CLI
// prints.
func (r WorkerReport) String() string {
	s := fmt.Sprintf("worker shard %d: %d leased (%d stolen), %d completed (%d from cache), %d failed",
		r.Shard, r.Leased, r.Stolen, r.Completed, r.FromCache, r.Failed)
	if r.Drained {
		s += " [drained]"
	}
	return s
}

// Worker pulls leases from a coordinator and executes them on the
// local engine.
type Worker struct {
	cfg  WorkerConfig
	jobs map[string]engine.Job
	base string
	// ttlMillis remembers the lease TTL the coordinator last granted
	// (updated by Run, read by retryAfter to bound Retry-After hints).
	ttlMillis atomic.Int64
}

// NewWorker validates the config and indexes the job set.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("dist: worker needs an ID")
	}
	if cfg.BaseURL == "" {
		return nil, errors.New("dist: worker needs the coordinator URL")
	}
	if cfg.Engine == nil {
		return nil, errors.New("dist: worker needs an engine")
	}
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("dist: worker has an empty job set")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.PostAttempts <= 0 {
		cfg.PostAttempts = 10
	}
	if cfg.PostBackoff.Base <= 0 {
		cfg.PostBackoff.Base = 100 * time.Millisecond
	}
	if cfg.PostBackoff.Max <= 0 {
		cfg.PostBackoff.Max = 2 * time.Second
	}
	w := &Worker{
		cfg:  cfg,
		jobs: make(map[string]engine.Job, len(cfg.Jobs)),
		base: strings.TrimSuffix(cfg.BaseURL, "/"),
	}
	for _, j := range cfg.Jobs {
		if fp := j.Fingerprint(); fp != "" {
			w.jobs[fp] = j
		}
	}
	return w, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// post sends one JSON request and decodes the JSON response. The
// request carries a HeaderBodySum integrity checksum and the response's
// is verified before parsing, so a transport that corrupts or
// truncates bytes produces a retry, never a silently damaged message.
// Every failure — transport error, non-200 status, checksum mismatch,
// undecodable body — is retried up to PostAttempts times on the shared
// engine backoff discipline; a 429's Retry-After overrides the
// computed delay. Retrying everything is sound because the protocol is
// idempotent end to end (duplicate leases, heartbeats, and result
// posts are all absorbed), and under a hostile transport a "permanent"
// status may itself be damage.
func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: encoding %s request: %w", path, err)
	}
	sum := bodySum(body)
	var lastErr error
	backoff := time.NewTimer(0)
	if !backoff.Stop() {
		<-backoff.C
	}
	defer backoff.Stop()
	wait := time.Duration(0)
	for attempt := 1; attempt <= w.cfg.PostAttempts; attempt++ {
		if attempt > 1 {
			backoff.Reset(wait)
			select {
			case <-backoff.C:
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		}
		// Default spacing for the next round; a Retry-After below
		// overrides it.
		wait = w.cfg.PostBackoff.Delay(path, attempt)
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set(HeaderBodySum, sum)
		res, err := w.cfg.Client.Do(hr)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if want := res.Header.Get(HeaderBodySum); want != "" && want != bodySum(data) {
			lastErr = fmt.Errorf("dist: %s: response body checksum mismatch (corrupted in transit)", path)
			continue
		}
		if res.StatusCode == http.StatusTooManyRequests {
			lastErr = fmt.Errorf("dist: %s: coordinator backpressured the post", path)
			if ra := w.retryAfter(res); ra > 0 {
				wait = ra
			}
			continue
		}
		if res.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("dist: %s: coordinator said %s: %s", path, res.Status, strings.TrimSpace(string(data)))
			continue
		}
		if resp == nil {
			return nil
		}
		if err := json.Unmarshal(data, resp); err != nil {
			lastErr = fmt.Errorf("dist: %s: bad response %q: %w", path, data, err)
			continue
		}
		return nil
	}
	return fmt.Errorf("dist: %s: giving up after %d attempts: %w", path, w.cfg.PostAttempts, lastErr)
}

// retryAfter parses a Retry-After header's delay-seconds form,
// returning 0 when absent or unparseable (HTTP-date form is not worth
// supporting for a header we mint ourselves). A value that does parse
// is clamped into the coordinator's own hint range, [50ms, TTL/4]: the
// header crosses an untrusted (and, under internal/chaos, actively
// corrupted) transport, so a flipped digit must not stall a worker for
// hours ("9999999") or turn the backoff into a hot spin ("0", "-3").
func (w *Worker) retryAfter(res *http.Response) time.Duration {
	v := res.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	d := time.Duration(secs) * time.Second
	lo, hi := 50*time.Millisecond, w.ttl()/4
	if hi < lo {
		hi = lo
	}
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// ttl is the lease TTL the coordinator last granted, defaulting to the
// protocol's usual 30s before the first lease response arrives.
func (w *Worker) ttl() time.Duration {
	if ms := w.ttlMillis.Load(); ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return 30 * time.Second
}

// Run pulls leases until the coordinator reports the campaign done (or
// ctx is cancelled, or the FailAfter fault fires). The returned report
// is valid even alongside a non-nil error.
func (w *Worker) Run(ctx context.Context) (*WorkerReport, error) {
	rep := &WorkerReport{}
	poll := time.NewTimer(0)
	if !poll.Stop() {
		<-poll.C
	}
	defer poll.Stop()
	for {
		if err := ctx.Err(); err != nil {
			return rep, context.Cause(ctx)
		}
		var lease LeaseResponse
		if err := w.post(ctx, PathLease, LeaseRequest{Worker: w.cfg.ID}, &lease); err != nil {
			return rep, err
		}
		rep.Shard = lease.Shard
		if lease.TTLMillis > 0 {
			w.ttlMillis.Store(lease.TTLMillis)
		}
		if lease.Done {
			return rep, nil
		}
		if lease.Draining {
			// Graceful shutdown: the coordinator grants no more work.
			// Anything this worker finished has already been posted, so
			// exit cleanly; unfinished jobs stay with the coordinator.
			w.logf("dist: coordinator is draining; exiting after %d completed", rep.Completed)
			rep.Drained = true
			return rep, nil
		}
		if lease.Job == nil {
			wait := w.cfg.Poll
			if lease.RetryMillis > 0 {
				wait = time.Duration(lease.RetryMillis) * time.Millisecond
			}
			poll.Reset(wait)
			select {
			case <-poll.C:
			case <-ctx.Done():
				poll.Stop()
				return rep, context.Cause(ctx)
			}
			continue
		}
		rep.Leased++
		if lease.Stolen {
			rep.Stolen++
		}
		if w.cfg.FailAfter > 0 && rep.Completed >= w.cfg.FailAfter {
			// Die holding the lease: the coordinator's expiry sweep must
			// fail this job over to another worker.
			return rep, ErrFailInjected
		}
		stop, err := w.runLease(ctx, lease, rep)
		if err != nil {
			return rep, err
		}
		if stop {
			// The result acknowledgment said the campaign is over (done or
			// draining): exit now. Another lease poll would race the
			// coordinator's shutdown and find a closed socket.
			return rep, nil
		}
	}
}

// postResult posts one result (or failure report) and interprets the
// acknowledgment's terminal flags. It returns stop=true when the
// coordinator reported the campaign done or draining — the worker must
// exit without polling again, because the post it just made may be the
// very one that lets the coordinator shut down.
func (w *Worker) postResult(ctx context.Context, req ResultRequest, rep *WorkerReport) (bool, error) {
	var resp ResultResponse
	if err := w.post(ctx, PathResult, req, &resp); err != nil {
		return false, err
	}
	if resp.Draining {
		rep.Drained = true
		w.logf("dist: coordinator is draining; exiting after this result")
		return true, nil
	}
	if resp.Done {
		w.logf("dist: campaign complete; exiting")
		return true, nil
	}
	return false, nil
}

// runLease executes one leased job and posts its outcome. Only
// transport-level or cancellation errors propagate; job failures are
// reported to the coordinator and the loop continues. stop=true means
// the result acknowledgment reported the campaign terminal (done or
// draining) and the worker must exit without another lease poll.
func (w *Worker) runLease(ctx context.Context, lease LeaseResponse, rep *WorkerReport) (stop bool, err error) {
	spec := *lease.Job
	job, ok := w.jobs[spec.Fingerprint]
	if !ok {
		rep.Failed++
		w.logf("dist: leased job %s is not in this worker's job set (figure/preset flags differ from the coordinator?)", spec.Name)
		return w.postResult(ctx, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
			Error: "job not in worker job set (figure/preset mismatch)",
		}, rep)
	}

	// Heartbeat while the job computes, at a third of the lease TTL so
	// two beats can be lost before the lease fails over.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	interval := time.Duration(lease.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = 5 * time.Second
	}
	//lint:ignore baregoroutine the heartbeat must tick while the leased job computes on the engine pool; it is bounded (one per lease), cancel-aware, and joined before the result is posted
	go w.heartbeat(hbCtx, lease, interval, hbDone)
	results, err := w.cfg.Engine.Run(ctx, []engine.Job{job})
	stopHB()
	<-hbDone

	if err != nil {
		if ctx.Err() != nil {
			return false, context.Cause(ctx)
		}
		rep.Failed++
		w.logf("dist: job %s failed: %v", spec.Name, err)
		return w.postResult(ctx, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
			Error: err.Error(),
		}, rep)
	}
	payload, err := engine.EncodeResult(job, results[0].Value)
	if err != nil {
		rep.Failed++
		return w.postResult(ctx, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
			Error: err.Error(),
		}, rep)
	}
	stop, err = w.postResult(ctx, ResultRequest{
		Worker: w.cfg.ID, LeaseID: lease.LeaseID, Fingerprint: spec.Fingerprint,
		Payload: payload,
	}, rep)
	if err != nil {
		return false, err
	}
	rep.Completed++
	if results[0].FromCache {
		// A re-leased job this worker had already computed: the engine
		// cache answered without re-executing (idempotent re-lease).
		rep.FromCache++
	}
	w.logf("dist: job %s completed and posted (%d bytes, fromCache=%v)",
		spec.Name, len(payload), results[0].FromCache)
	return stop, nil
}

// heartbeat extends the lease until ctx is cancelled (the job
// finished) or the coordinator reports the lease lost, in which case
// it stops beating — the job keeps computing and its late result is
// still absorbed idempotently.
func (w *Worker) heartbeat(ctx context.Context, lease LeaseResponse, interval time.Duration, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var resp HeartbeatResponse
		err := w.post(ctx, PathHeartbeat, HeartbeatRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("dist: heartbeat for %s failed: %v", lease.Job.Name, err)
			continue
		}
		if !resp.Extended {
			w.logf("dist: lease %s lost (expired and failed over); finishing the job anyway", lease.LeaseID)
			return
		}
	}
}
