package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sensornet/internal/chaos"
	"sensornet/internal/engine"
)

// scriptedServer runs an httptest server over a handler func and
// returns its URL.
func scriptedServer(t *testing.T, h http.HandlerFunc) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

func testWorker(t *testing.T, url string, mutate func(*WorkerConfig)) *Worker {
	t.Helper()
	encode, decode := func(v any) ([]byte, error) { return json.Marshal(v) },
		func(b []byte) (any, error) {
			var v float64
			err := json.Unmarshal(b, &v)
			return v, err
		}
	cfg := WorkerConfig{
		ID:      "w-test",
		BaseURL: url,
		Engine:  engine.New(engine.Config{Workers: 1, Cache: engine.NewCache("", "salt")}),
		Jobs: []engine.Job{engine.JobFunc{
			Key:      "fp-1",
			Fn:       func(ctx context.Context) (any, error) { return 1.5, nil },
			EncodeFn: encode, DecodeFn: decode,
		}},
		Poll:        5 * time.Millisecond,
		PostBackoff: engine.BackoffPolicy{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkerPostSetsChecksumAndRetriesAllFailures pins the rebuilt
// retry loop: the request carries HeaderBodySum, and a 400, a garbage
// body, and a 500 are each retried — under a hostile transport no
// single response is trusted evidence, and the protocol is idempotent.
func TestWorkerPostSetsChecksumAndRetriesAllFailures(t *testing.T) {
	var hits atomic.Int64
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if got := r.Header.Get(HeaderBodySum); got == "" {
			t.Errorf("request %d missing %s", n, HeaderBodySum)
		}
		switch n {
		case 1:
			http.Error(w, "bad request", http.StatusBadRequest)
		case 2:
			//lint:ignore errdrop scripted test server
			_, _ = w.Write([]byte("{not json"))
		case 3:
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			writeJSON(w, http.StatusOK, HeartbeatResponse{Extended: true})
		}
	})
	w := testWorker(t, url, nil)
	var resp HeartbeatResponse
	if err := w.post(context.Background(), PathHeartbeat, HeartbeatRequest{Worker: "w-test"}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Extended || hits.Load() != 4 {
		t.Fatalf("resp %+v after %d hits, want success on hit 4", resp, hits.Load())
	}
}

// TestWorkerPostVerifiesResponseChecksum: a response whose body does
// not match its advertised sum is retried, not parsed.
func TestWorkerPostVerifiesResponseChecksum(t *testing.T) {
	var hits atomic.Int64
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Valid JSON a naive client would happily accept — but the
			// sum says the bytes were damaged in transit.
			w.Header().Set(HeaderBodySum, bodySum([]byte(`{"extended":true}`)))
			//lint:ignore errdrop scripted test server
			_, _ = w.Write([]byte(`{"extended":false}`))
			return
		}
		writeJSON(w, http.StatusOK, HeartbeatResponse{Extended: true})
	})
	w := testWorker(t, url, nil)
	var resp HeartbeatResponse
	if err := w.post(context.Background(), PathHeartbeat, HeartbeatRequest{Worker: "w-test"}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Extended || hits.Load() != 2 {
		t.Fatalf("resp %+v after %d hits, want retry then success", resp, hits.Load())
	}
}

// TestWorkerPostHonorsRetryAfter: a 429's Retry-After overrides the
// backoff schedule — the deferred post waits at least that long.
func TestWorkerPostHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusOK, ResultResponse{Accepted: true})
	})
	w := testWorker(t, url, nil)
	start := time.Now()
	var resp ResultResponse
	if err := w.post(context.Background(), PathResult, ResultRequest{Worker: "w-test", Fingerprint: "fp-1"}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted || hits.Load() != 2 {
		t.Fatalf("resp %+v after %d hits", resp, hits.Load())
	}
	// PostBackoff caps at 2ms here, so a ≥1s wait proves Retry-After won.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("replay after %v, want ≥ 1s (Retry-After honored)", elapsed)
	}
}

// TestWorkerPostGivesUpAfterAttempts: a persistently failing endpoint
// exhausts PostAttempts and surfaces the last error.
func TestWorkerPostGivesUpAfterAttempts(t *testing.T) {
	var hits atomic.Int64
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	})
	w := testWorker(t, url, func(c *WorkerConfig) { c.PostAttempts = 3 })
	err := w.post(context.Background(), PathHeartbeat, HeartbeatRequest{Worker: "w-test"}, nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("%d hits, want 3", hits.Load())
	}
}

// TestWorkerDrainingExit: a Draining lease response makes the worker
// exit cleanly with the drain recorded, not treat it as done or error.
func TestWorkerDrainingExit(t *testing.T) {
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, LeaseResponse{Draining: true, Shard: 2})
	})
	w := testWorker(t, url, nil)
	rep, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.Shard != 2 || rep.Leased != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if s := rep.String(); !strings.Contains(s, "[drained]") {
		t.Fatalf("report string %q does not mention the drain", s)
	}
}

// TestWorkerExitsOnResultAckTerminal pins the shutdown race fix: the
// worker whose result post completes the campaign (or resolves the
// last draining lease) learns it from the acknowledgment itself and
// exits without another lease poll — by then the coordinator's server
// may already be closed.
func TestWorkerExitsOnResultAckTerminal(t *testing.T) {
	for _, tc := range []struct {
		name    string
		ack     ResultResponse
		drained bool
	}{
		{"done", ResultResponse{Accepted: true, Done: true}, false},
		{"draining", ResultResponse{Accepted: true, Draining: true}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var leasePolls atomic.Int64
			url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
				switch r.URL.Path {
				case PathLease:
					leasePolls.Add(1)
					writeJSON(w, http.StatusOK, LeaseResponse{
						Job:     &JobSpec{Name: "fp-1", Fingerprint: "fp-1"},
						LeaseID: "lease-1", TTLMillis: 60000,
					})
				case PathResult:
					writeJSON(w, http.StatusOK, tc.ack)
				default:
					writeJSON(w, http.StatusOK, HeartbeatResponse{Extended: true})
				}
			})
			w := testWorker(t, url, nil)
			rep, err := w.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Completed != 1 || rep.Drained != tc.drained {
				t.Fatalf("report = %+v, want 1 completed, drained=%v", rep, tc.drained)
			}
			if leasePolls.Load() != 1 {
				t.Fatalf("worker polled for a lease %d times, want exactly 1 (no poll after a terminal ack)", leasePolls.Load())
			}
		})
	}
}

// TestWorkerReLeaseAnsweredFromCache pins the idempotent re-lease
// path end to end on the worker side: when the coordinator grants the
// same job twice (its first lease expired after the result was
// computed but before the grant was observed), the second execution is
// served from the worker's own engine cache — one real computation,
// two posted results.
func TestWorkerReLeaseAnsweredFromCache(t *testing.T) {
	var executions atomic.Int64
	var leases atomic.Int64
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathLease:
			n := leases.Add(1)
			if n <= 2 {
				// The same job, twice: lease 1 "expired" coordinator-side
				// and was granted again.
				writeJSON(w, http.StatusOK, LeaseResponse{
					Job:     &JobSpec{Name: "fp-1", Fingerprint: "fp-1"},
					LeaseID: "lease-" + string(rune('0'+n)), TTLMillis: 60000,
				})
				return
			}
			writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		case PathResult:
			var req ResultRequest
			if decodeBody(w, r, &req) {
				writeJSON(w, http.StatusOK, ResultResponse{Accepted: true, Duplicate: leases.Load() > 1})
			}
		default:
			writeJSON(w, http.StatusOK, HeartbeatResponse{Extended: true})
		}
	})
	w := testWorker(t, url, func(c *WorkerConfig) {
		c.Jobs = []engine.Job{engine.JobFunc{
			Key: "fp-1",
			Fn: func(ctx context.Context) (any, error) {
				executions.Add(1)
				return 1.5, nil
			},
			EncodeFn: func(v any) ([]byte, error) { return json.Marshal(v) },
			DecodeFn: func(b []byte) (any, error) {
				var v float64
				err := json.Unmarshal(b, &v)
				return v, err
			},
		}}
	})
	rep, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 {
		t.Fatalf("job executed %d times, want 1 (re-lease must hit the cache)", executions.Load())
	}
	if rep.Completed != 2 || rep.FromCache != 1 {
		t.Fatalf("report = %+v, want 2 completed with 1 from cache", rep)
	}
}

// TestRetryAfterClamped pins the clamp on the Retry-After hint: the
// header crosses an untrusted transport, so parsed values are forced
// into the coordinator's own [50ms, TTL/4] hint range — no multi-hour
// stalls from a corrupted digit, no hot spin from "0" or a negative.
func TestRetryAfterClamped(t *testing.T) {
	w := testWorker(t, "http://unused.invalid", nil)
	resp := func(v string) *http.Response {
		r := &http.Response{Header: http.Header{}}
		if v != "" {
			r.Header.Set("Retry-After", v)
		}
		return r
	}
	// Before any lease the TTL defaults to 30s, so the range is
	// [50ms, 7.5s].
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},                             // absent: fall back to computed backoff
		{"soon", 0},                         // unparseable: same
		{"-3", 50 * time.Millisecond},       // negative: clamp low, not ignore
		{"0", 50 * time.Millisecond},        // zero would hot-spin
		{"2", 2 * time.Second},              // in range: honored
		{"999999", 7500 * time.Millisecond}, // ~11 days: clamp to TTL/4
	} {
		if got := w.retryAfter(resp(tc.header)); got != tc.want {
			t.Errorf("Retry-After %q: %v, want %v", tc.header, got, tc.want)
		}
	}
	// After a lease granted TTLMillis=200 the ceiling tightens to 50ms.
	w.ttlMillis.Store(200)
	if got := w.retryAfter(resp("999999")); got != 50*time.Millisecond {
		t.Errorf("post-lease clamp = %v, want 50ms", got)
	}
	if got := w.retryAfter(resp("2")); got != 50*time.Millisecond {
		t.Errorf("in-range value above the tightened ceiling = %v, want 50ms", got)
	}
}

// TestWorkerHostileRetryAfterBounded runs a full lease→compute→result
// round against a scripted coordinator that backpressures the result
// post with an absurd Retry-After ("999999" seconds), under the chaos
// hostile transport. Before the clamp a single such 429 stalled the
// worker for ~11 days; with it, every deferred post waits at most
// TTL/4, so the campaign completes promptly despite the hostile hint
// plus the transport's drops, duplicates, and corruption.
func TestWorkerHostileRetryAfterBounded(t *testing.T) {
	var accepted atomic.Bool
	var resultHits atomic.Int64
	url := scriptedServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathLease:
			if accepted.Load() {
				writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
				return
			}
			writeJSON(w, http.StatusOK, LeaseResponse{
				LeaseID: "L1", TTLMillis: 200,
				Job: &JobSpec{Name: "j", Fingerprint: "fp-1"},
			})
		case PathHeartbeat:
			writeJSON(w, http.StatusOK, HeartbeatResponse{Extended: true, TTLMillis: 200})
		case PathResult:
			if !accepted.Load() && resultHits.Add(1) <= 3 {
				w.Header().Set("Retry-After", "999999")
				w.WriteHeader(http.StatusTooManyRequests)
				return
			}
			accepted.Store(true)
			writeJSON(w, http.StatusOK, ResultResponse{Accepted: true, Done: true})
		default:
			http.NotFound(w, r)
		}
	})
	w := testWorker(t, url, func(c *WorkerConfig) {
		c.PostAttempts = 50
		c.Client = &http.Client{
			Timeout:   5 * time.Second,
			Transport: chaos.Wrap(http.DefaultTransport, chaos.Hostile(), 7),
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	rep, err := w.Run(ctx)
	if err != nil {
		t.Fatalf("worker run: %v (report %+v)", err, rep)
	}
	if rep.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (report %+v)", rep.Completed, rep)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("run took %v: the Retry-After clamp did not bound the backpressure wait", elapsed)
	}
}
