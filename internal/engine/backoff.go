package engine

import "time"

// BackoffPolicy is the repo's one retry-wait discipline: exponential
// doubling from Base, capped at Max, then deterministically jittered
// into [d/2, d) by a DeriveSeed stream keyed on a caller-chosen label
// and the attempt number. The engine's transient-retry ladder and the
// dist worker's HTTP post loop share this policy, so simultaneous
// failures across a fleet never retry in lockstep yet every schedule
// is reproducible without a shared RNG.
type BackoffPolicy struct {
	// Base is the pre-jitter delay before the first retry; <= 0 means
	// 50ms.
	Base time.Duration
	// Max caps the doubled delay (before jitter); <= 0 means 5s.
	Max time.Duration
}

// Delay returns the wait before the retry that follows failed attempt
// `attempt` (1-based): doubling capped at Max, jittered into [d/2, d).
// The jitter is a pure function of (label, attempt), so equal inputs
// always sleep equally long.
func (p BackoffPolicy) Delay(label string, attempt int) time.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	frac := float64(DeriveSeed(int64(attempt), "retry-backoff", label)) / float64(uint64(1)<<63)
	return d/2 + time.Duration(frac*float64(d/2))
}
