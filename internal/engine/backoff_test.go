package engine

import (
	"testing"
	"time"
)

// TestBackoffPolicyShape pins the shared retry-wait discipline: capped
// doubling with deterministic jitter in [d/2, d).
func TestBackoffPolicyShape(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond}
	caps := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
		800 * time.Millisecond,
	}
	for i, want := range caps {
		a := i + 1
		d := p.Delay("job-x", a)
		if d < want/2 || d >= want {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", a, d, want/2, want)
		}
	}
}

// TestBackoffPolicyDeterministic: equal (label, attempt) always sleeps
// equally long; distinct labels de-synchronise.
func TestBackoffPolicyDeterministic(t *testing.T) {
	p := BackoffPolicy{Base: time.Second, Max: time.Minute}
	if p.Delay("a", 3) != p.Delay("a", 3) {
		t.Fatal("same inputs, different delays")
	}
	// Jitter spreads across labels: with 16 labels the odds of all
	// collapsing onto one value are nil for a working hash.
	seen := map[time.Duration]bool{}
	for _, l := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[p.Delay(l, 3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter did not spread: %v", seen)
	}
}

// TestBackoffPolicyDefaults: the zero policy is usable (engine
// defaults: 50ms base, 5s cap).
func TestBackoffPolicyDefaults(t *testing.T) {
	var p BackoffPolicy
	d1 := p.Delay("x", 1)
	if d1 < 25*time.Millisecond || d1 >= 50*time.Millisecond {
		t.Errorf("zero-policy attempt 1 delay = %v", d1)
	}
	d20 := p.Delay("x", 20)
	if d20 < 2500*time.Millisecond || d20 >= 5*time.Second {
		t.Errorf("zero-policy deep-attempt delay = %v, want capped near 5s", d20)
	}
}

// TestEngineUsesBackoffPolicy: the engine's retry ladder delegates to
// the shared policy (identical schedule).
func TestEngineUsesBackoffPolicy(t *testing.T) {
	e := New(Config{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second, Retries: 3})
	p := BackoffPolicy{Base: 100 * time.Millisecond, Max: time.Second}
	for a := 1; a <= 5; a++ {
		if got, want := e.retryBackoff("job-y", a), p.Delay("job-y", a); got != want {
			t.Fatalf("attempt %d: engine %v, policy %v", a, got, want)
		}
	}
}
