package engine

import (
	"fmt"
	"sync"
	"time"
)

// Budget is the compute-admission gate behind write-through serving: a
// token bucket over jobs/sec combined with a max-in-flight bound. A
// CacheOnly engine carrying a Budget may fill a cache miss by actually
// executing the job — but only while the bucket holds a token and the
// in-flight bound has room; once the budget is exhausted the engine
// degrades to the strict behaviour (the miss comes back Missing and the
// serving layer answers 503 with the unpublished jobs). The nil *Budget
// admits nothing, so "no budget configured" is exactly the historical
// never-recompute contract.
//
// Budget is safe for concurrent use. Time is read through an injectable
// clock so the refill schedule is testable; the engine package is on the
// determinism allowlist for wall-clock reads (admission timing cannot
// change result bytes — results stay content-addressed).
type Budget struct {
	mu       sync.Mutex
	rate     float64 // tokens refilled per second
	burst    float64 // bucket capacity
	tokens   float64
	last     time.Time
	maxInFly int // 0 = unbounded
	inFlight int
	now      func() time.Time

	admitted int64
	denied   int64
}

// NewBudget builds an admission budget refilling `rate` tokens/sec with
// the given burst capacity and in-flight bound. The bucket starts full,
// so a fresh server can fill up to `burst` rows immediately. A burst
// < 1 defaults to ceil(rate) (at least 1); maxInFlight <= 0 means
// unbounded. A rate <= 0 returns nil — the budget that admits nothing.
func NewBudget(rate float64, burst, maxInFlight int) *Budget {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst < 1 {
		b = float64(int(rate))
		if b < rate {
			b++ // ceil for fractional rates
		}
		if b < 1 {
			b = 1
		}
	}
	if maxInFlight < 0 {
		maxInFlight = 0
	}
	return &Budget{rate: rate, burst: b, tokens: b, maxInFly: maxInFlight,
		now: time.Now}
}

// TryAcquire consumes one token and one in-flight slot, reporting
// whether the job was admitted. Never blocks. Every successful acquire
// must be paired with a Release once the job finishes.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 || (b.maxInFly > 0 && b.inFlight >= b.maxInFly) {
		b.denied++
		return false
	}
	b.tokens--
	b.inFlight++
	b.admitted++
	return true
}

// Release returns the in-flight slot taken by a successful TryAcquire.
// Tokens are deliberately not refunded: the job ran, the work is spent.
func (b *Budget) Release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.inFlight > 0 {
		b.inFlight--
	}
	b.mu.Unlock()
}

// BudgetStats snapshots the gate's configuration and counters.
type BudgetStats struct {
	Rate        float64 `json:"rate"`
	Burst       float64 `json:"burst"`
	MaxInFlight int     `json:"maxInFlight"`
	InFlight    int     `json:"inFlight"`
	Admitted    int64   `json:"admitted"`
	Denied      int64   `json:"denied"`
}

// Stats returns the budget's counters (zero value for a nil budget).
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Rate: b.rate, Burst: b.burst, MaxInFlight: b.maxInFly,
		InFlight: b.inFlight, Admitted: b.admitted, Denied: b.denied}
}

// String renders the stats one-line for logs and /healthz text.
func (s BudgetStats) String() string {
	return fmt.Sprintf("budget: %.3g jobs/s (burst %.0f, max in-flight %d): %d admitted, %d denied, %d in flight",
		s.Rate, s.Burst, s.MaxInFlight, s.Admitted, s.Denied, s.InFlight)
}
