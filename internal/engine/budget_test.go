package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a Budget deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBudget(rate float64, burst, inFlight int) (*Budget, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBudget(rate, burst, inFlight)
	if b != nil {
		b.now = clk.now
		b.last = clk.t
	}
	return b, clk
}

func TestBudgetNilAdmitsNothing(t *testing.T) {
	var b *Budget
	if b.TryAcquire() {
		t.Fatal("nil budget admitted a job")
	}
	b.Release() // must not panic
	if s := b.Stats(); s != (BudgetStats{}) {
		t.Fatalf("nil budget stats = %+v", s)
	}
	if NewBudget(0, 0, 0) != nil {
		t.Fatal("NewBudget(0) should be the nil admit-nothing budget")
	}
	if NewBudget(-1, 0, 0) != nil {
		t.Fatal("NewBudget(-1) should be the nil admit-nothing budget")
	}
}

func TestBudgetTokenBucket(t *testing.T) {
	b, clk := testBudget(2, 3, 0) // 2 tokens/s, burst 3
	// The bucket starts full: exactly burst admissions back to back.
	for i := 0; i < 3; i++ {
		if !b.TryAcquire() {
			t.Fatalf("acquire %d denied with a full bucket", i)
		}
		b.Release()
	}
	if b.TryAcquire() {
		t.Fatal("acquire succeeded on an empty bucket")
	}
	// Half a second refills one token at 2/s.
	clk.advance(500 * time.Millisecond)
	if !b.TryAcquire() {
		t.Fatal("refill after 500ms at 2 jobs/s denied")
	}
	b.Release()
	if b.TryAcquire() {
		t.Fatal("second acquire after a one-token refill succeeded")
	}
	// A long idle period caps at burst, not elapsed*rate.
	clk.advance(time.Hour)
	admitted := 0
	for b.TryAcquire() {
		b.Release()
		admitted++
	}
	if admitted != 3 {
		t.Fatalf("after a long idle: %d admissions, want the burst cap 3", admitted)
	}
	s := b.Stats()
	if s.Admitted != 7 || s.Denied != 3 {
		t.Fatalf("stats %+v, want 7 admitted / 3 denied", s)
	}
}

func TestBudgetMaxInFlight(t *testing.T) {
	b, _ := testBudget(1000, 10, 2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("first two acquires denied")
	}
	if b.TryAcquire() {
		t.Fatal("third concurrent acquire exceeded maxInFlight=2")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("acquire denied after a Release freed a slot")
	}
	if got := b.Stats().InFlight; got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
}

func TestBudgetBurstDefaults(t *testing.T) {
	if b := NewBudget(2.5, 0, 0); b.burst != 3 {
		t.Fatalf("burst default for rate 2.5 = %g, want ceil = 3", b.burst)
	}
	if b := NewBudget(0.25, 0, 0); b.burst != 1 {
		t.Fatalf("burst default for rate 0.25 = %g, want min 1", b.burst)
	}
	if b := NewBudget(4, 9, 0); b.burst != 9 {
		t.Fatalf("explicit burst = %g, want 9", b.burst)
	}
}

// budgetJob is a counting cacheable job for write-through tests.
func budgetJob(fp string, runs *atomic.Int64) Job {
	return JobFunc{
		JobName: fp,
		Key:     fp,
		Fn: func(ctx context.Context) (any, error) {
			runs.Add(1)
			return fp + "-value", nil
		},
	}
}

// TestCacheOnlyWriteThrough is the admission-control acceptance test:
// a CacheOnly engine with a Budget fills misses up to the budget and
// degrades to Missing beyond it; without a Budget nothing executes.
func TestCacheOnlyWriteThrough(t *testing.T) {
	cache := NewCache("", "test-salt")
	var runs atomic.Int64
	b, _ := testBudget(1, 2, 0) // burst 2, no refill during the test
	eng := New(Config{Workers: 1, Cache: cache, CacheOnly: true, Budget: b})

	jobs := []Job{budgetJob("a", &runs), budgetJob("b", &runs), budgetJob("c", &runs)}
	results, err := eng.Run(context.Background(), jobs)
	var missing *MissingError
	if !asMissing(err, &missing) {
		t.Fatalf("Run error = %v, want a *MissingError for the over-budget job", err)
	}
	if len(missing.Jobs) != 1 || missing.Jobs[0].Name != "c" {
		t.Fatalf("missing jobs = %+v, want exactly the over-budget job c", missing.Jobs)
	}
	if runs.Load() != 2 {
		t.Fatalf("%d jobs executed, want the 2 the budget admitted", runs.Load())
	}
	if results[0].Value != "a-value" || results[1].Value != "b-value" {
		t.Fatalf("admitted results = %+v", results[:2])
	}
	if !results[2].Missing {
		t.Fatalf("over-budget result = %+v, want Missing", results[2])
	}
	// The filled rows are published: a strict engine over the same
	// cache now answers them without computing.
	strict := New(Config{Workers: 1, Cache: cache, CacheOnly: true})
	res2, err := strict.Run(context.Background(), jobs[:2])
	if err != nil {
		t.Fatalf("strict re-run over the filled cache: %v", err)
	}
	if !res2[0].FromCache || !res2[1].FromCache {
		t.Fatalf("filled rows not served from cache: %+v", res2)
	}
	if runs.Load() != 2 {
		t.Fatalf("strict engine executed jobs: %d runs", runs.Load())
	}
}

// TestCacheOnlyWithoutBudgetUnchanged pins the strict contract byte for
// byte: no Budget, no execution, every miss Missing.
func TestCacheOnlyWithoutBudgetUnchanged(t *testing.T) {
	var runs atomic.Int64
	eng := New(Config{Workers: 2, Cache: NewCache("", "test-salt"), CacheOnly: true})
	jobs := []Job{budgetJob("a", &runs), budgetJob("b", &runs)}
	results, err := eng.Run(context.Background(), jobs)
	var missing *MissingError
	if !asMissing(err, &missing) || len(missing.Jobs) != 2 {
		t.Fatalf("err = %v, want MissingError with both jobs", err)
	}
	if runs.Load() != 0 {
		t.Fatalf("strict CacheOnly executed %d jobs", runs.Load())
	}
	for _, r := range results {
		if !r.Missing {
			t.Fatalf("result %+v, want Missing", r)
		}
	}
}

func asMissing(err error, target **MissingError) bool {
	return errors.As(err, target)
}

func TestBudgetStatsString(t *testing.T) {
	b, _ := testBudget(5, 10, 3)
	b.TryAcquire()
	got := b.Stats().String()
	want := "budget: 5 jobs/s (burst 10, max in-flight 3): 1 admitted, 0 denied, 1 in flight"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
