package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a content-addressed result store with two layers: an
// in-memory map holding live result values, and an optional on-disk
// JSON store (one file per entry) that survives across processes.
// Entries are addressed by sha256(salt ‖ fingerprint), so changing the
// code-version salt invalidates every prior entry at once.
type Cache struct {
	dir  string
	salt string

	// Warnf, when non-nil, receives diagnostics about recoverable disk
	// problems (corrupt entries treated as misses). Defaults to
	// log.Printf; set to a no-op to silence.
	Warnf func(format string, args ...any)

	mu          sync.Mutex
	mem         map[string]any
	raw         map[string][]byte // ingested payloads not yet decoded
	hits        int
	misses      int
	stores      int
	corrupt     int
	ingestDupes int
}

// envelope is the on-disk cache entry format. The fingerprint is
// retained verbatim so an address-level hash collision (or a salt
// mix-up) is detected on read instead of silently returning a wrong
// result.
type envelope struct {
	Fingerprint string          `json:"fingerprint"`
	Salt        string          `json:"salt"`
	Payload     json.RawMessage `json:"payload"`
}

// NewCache returns a cache salted with the given code-version string.
// A non-empty dir enables the on-disk layer rooted there (created on
// first store).
func NewCache(dir, salt string) *Cache {
	return &Cache{dir: dir, salt: salt,
		mem: make(map[string]any), raw: make(map[string][]byte)}
}

// key computes the content address of a fingerprint under the cache's
// salt.
func (c *Cache) key(fingerprint string) string {
	h := sha256.New()
	h.Write([]byte(c.salt))
	h.Write([]byte{0x1f})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// Get looks a fingerprint up, first in memory (decoded values, then
// raw ingested payloads), then (when decode is non-nil and a directory
// is configured) on disk. Raw and disk hits are promoted into the
// decoded memory layer.
func (c *Cache) Get(fingerprint string, decode func([]byte) (any, error)) (any, bool) {
	if c == nil || fingerprint == "" {
		return nil, false
	}
	k := c.key(fingerprint)
	c.mu.Lock()
	if v, ok := c.mem[k]; ok {
		c.hits++
		c.mu.Unlock()
		return v, true
	}
	payload, hasRaw := c.raw[k]
	c.mu.Unlock()

	if hasRaw && decode != nil {
		if v, err := decode(payload); err == nil {
			c.mu.Lock()
			c.mem[k] = v
			delete(c.raw, k)
			c.hits++
			c.mu.Unlock()
			return v, true
		}
		// An undecodable ingested payload degrades to a miss, exactly
		// like a corrupt disk entry.
		c.mu.Lock()
		c.corrupt++
		delete(c.raw, k)
		c.mu.Unlock()
	}

	if c.dir != "" && decode != nil {
		if v, ok := c.diskGet(k, fingerprint, decode); ok {
			c.mu.Lock()
			c.mem[k] = v
			c.hits++
			c.mu.Unlock()
			return v, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// readEnvelope reads and parses the disk entry at key, without
// validating it against any particular fingerprint.
func (c *Cache) readEnvelope(key string) (envelope, bool) {
	var env envelope
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return env, false
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return env, false
	}
	return env, true
}

func (c *Cache) diskGet(key, fingerprint string, decode func([]byte) (any, error)) (any, bool) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false // absent: a plain miss
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		c.discardCorrupt(key, fingerprint, fmt.Errorf("unmarshal: %w", err))
		return nil, false
	}
	if env.Fingerprint != fingerprint || env.Salt != c.salt {
		c.discardCorrupt(key, fingerprint, errors.New("fingerprint/salt mismatch"))
		return nil, false
	}
	v, err := decode(env.Payload)
	if err != nil {
		c.discardCorrupt(key, fingerprint, fmt.Errorf("decode payload: %w", err))
		return nil, false
	}
	return v, true
}

// discardCorrupt handles an unreadable disk entry: a truncated write
// from a killed process, a stale format, or an address collision. The
// entry is logged, counted, and removed so the job recomputes and the
// fresh Put overwrites it — corruption degrades to a cache miss, never
// to a failed job.
func (c *Cache) discardCorrupt(key, fingerprint string, reason error) {
	c.mu.Lock()
	c.corrupt++
	warnf := c.Warnf
	c.mu.Unlock()
	if warnf == nil {
		warnf = log.Printf
	}
	warnf("engine: cache entry %s (fingerprint %q) is corrupt, treating as a miss: %v",
		key, fingerprint, reason)
	os.Remove(c.path(key))
}

// Put stores a result under a fingerprint. When encode is non-nil and
// a directory is configured, the entry is also written to disk; encode
// failures degrade to memory-only caching rather than failing the job.
func (c *Cache) Put(fingerprint string, v any, encode func(any) ([]byte, error)) {
	if c == nil || fingerprint == "" {
		return
	}
	k := c.key(fingerprint)
	c.mu.Lock()
	c.mem[k] = v
	c.stores++
	c.mu.Unlock()

	if c.dir == "" || encode == nil {
		return
	}
	payload, err := encode(v)
	if err != nil || !json.Valid(payload) {
		return
	}
	//lint:ignore errdrop disk failures deliberately degrade to memory-only caching; the result is already in mem and the job must not fail over a full disk
	_ = c.storeDisk(k, fingerprint, payload)
}

// storeDisk writes one envelope to disk. It is the single disk-write
// path — Put and IngestResult both funnel through it, which is what
// makes remotely posted results byte-identical to locally computed
// ones.
func (c *Cache) storeDisk(key, fingerprint string, payload []byte) error {
	raw, err := json.Marshal(envelope{Fingerprint: fingerprint, Salt: c.salt, Payload: payload})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	// Write-rename so concurrent readers never observe a torn entry.
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// CacheStats reports cache effectiveness counters. Corrupt counts disk
// entries that could not be read back (torn writes, stale formats) and
// were discarded as misses. IngestDupes counts IngestResult calls for
// fingerprints that already had a valid stored result — duplicate wire
// deliveries absorbed without rewriting the entry.
type CacheStats struct {
	Hits, Misses, Stores int
	Corrupt              int
	IngestDupes          int
}

// Stats returns the cache's counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Stores: c.stores,
		Corrupt: c.corrupt, IngestDupes: c.ingestDupes}
}
