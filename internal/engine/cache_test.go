package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func jsonCodec() (func(any) ([]byte, error), func([]byte) (any, error)) {
	encode := func(v any) ([]byte, error) { return json.Marshal(v) }
	decode := func(b []byte) (any, error) {
		var v float64
		err := json.Unmarshal(b, &v)
		return v, err
	}
	return encode, decode
}

func TestCacheMemoryRoundTrip(t *testing.T) {
	c := NewCache("", "salt")
	if _, ok := c.Get("k", nil); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k", 3.5, nil)
	v, ok := c.Get("k", nil)
	if !ok || v != 3.5 {
		t.Fatalf("got %v %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheDiskPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	encode, decode := jsonCodec()

	first := NewCache(dir, "salt")
	first.Put("fp", 2.25, encode)

	// A fresh instance (cold memory layer) must hit via disk.
	second := NewCache(dir, "salt")
	v, ok := second.Get("fp", decode)
	if !ok || v != 2.25 {
		t.Fatalf("disk layer miss: %v %v", v, ok)
	}
	// And promote the value into memory: a nil decoder now suffices.
	v, ok = second.Get("fp", nil)
	if !ok || v != 2.25 {
		t.Fatalf("promotion failed: %v %v", v, ok)
	}
}

func TestCacheSaltInvalidatesEntries(t *testing.T) {
	dir := t.TempDir()
	encode, decode := jsonCodec()
	NewCache(dir, "v1").Put("fp", 1.0, encode)
	if _, ok := NewCache(dir, "v2").Get("fp", decode); ok {
		t.Fatal("entry survived a salt bump")
	}
}

func TestCacheRejectsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	encode, decode := jsonCodec()
	c := NewCache(dir, "salt")
	c.Put("fp", 1.5, encode)

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries %v err %v", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(dir, "salt")
	fresh.Warnf = func(string, ...any) {}
	if _, ok := fresh.Get("fp", decode); ok {
		t.Fatal("corrupt entry served")
	}
	if s := fresh.Stats(); s.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", s.Corrupt)
	}
}

func TestCacheEnvelopeFingerprintChecked(t *testing.T) {
	dir := t.TempDir()
	encode, decode := jsonCodec()
	c := NewCache(dir, "salt")
	c.Put("fp", 9.0, encode)

	// Rewrite the entry claiming a different fingerprint: the address
	// matches but the identity check must reject it.
	entries, _ := os.ReadDir(dir)
	path := filepath.Join(dir, entries[0].Name())
	raw, _ := json.Marshal(envelope{Fingerprint: "other", Salt: "salt",
		Payload: json.RawMessage("9")})
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(dir, "salt")
	fresh.Warnf = func(string, ...any) {}
	if _, ok := fresh.Get("fp", decode); ok {
		t.Fatal("mismatched fingerprint served")
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("fp", nil); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("fp", 1, nil) // must not panic
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
}

func TestEngineDiskCacheSkipsRecomputeAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	var computes atomic.Int64
	mkJob := func() Job {
		return JobFunc{
			JobName:  "expensive",
			Key:      "expensive-key",
			EncodeFn: func(v any) ([]byte, error) { return json.Marshal(v) },
			DecodeFn: func(b []byte) (any, error) {
				var v string
				err := json.Unmarshal(b, &v)
				return v, err
			},
			Fn: func(context.Context) (any, error) {
				computes.Add(1)
				return "result", nil
			},
		}
	}
	for i := 0; i < 2; i++ {
		eng := New(Config{Workers: 2, Cache: NewCache(dir, "salt")})
		results, err := eng.Run(context.Background(), []Job{mkJob()})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Value != "result" {
			t.Fatalf("run %d: %v", i, results[0].Value)
		}
		if wantCached := i > 0; results[0].FromCache != wantCached {
			t.Fatalf("run %d: FromCache = %v, want %v", i, results[0].FromCache, wantCached)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times across engines, want 1", n)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(t.TempDir(), "salt")
	encode, decode := jsonCodec()
	eng := New(Config{Workers: 8})
	jobs := make([]Job, 64)
	for i := range jobs {
		i := i
		jobs[i] = JobFunc{JobName: fmt.Sprintf("c%d", i),
			Fn: func(context.Context) (any, error) {
				fp := fmt.Sprintf("fp%d", i%8)
				c.Put(fp, float64(i%8), encode)
				if v, ok := c.Get(fp, decode); ok {
					return v, nil
				}
				return nil, nil
			}}
	}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
}
