package engine

import (
	"os"
	"sync"
	"testing"
)

// corruptEntry plants an unreadable disk entry for fp in c's directory,
// bypassing the write path (as a torn write from a killed process
// would).
func corruptEntry(t *testing.T, c *Cache, fp string) {
	t.Helper()
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(c.key(fp)), []byte(`{"fingerprint":"`), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptHealConcurrentReaders exercises the self-healing path
// under reader concurrency: many goroutines Get a corrupt entry at
// once. Every reader must observe a plain miss (never a wrong value,
// never a panic), the entry must be discarded, and a subsequent Put
// must heal it for all readers. Run under -race this also pins the
// heal path's locking.
func TestCorruptHealConcurrentReaders(t *testing.T) {
	encode, decode := testCodec()
	const fp = "corrupt-concurrent"
	c := NewCache(t.TempDir(), "s")
	c.Warnf = func(string, ...any) {} // expected corruption noise
	corruptEntry(t, c, fp)

	const readers = 16
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, ok := c.Get(fp, decode); ok {
				t.Errorf("Get on a corrupt entry returned %v", v)
			}
		}()
	}
	wg.Wait()

	if got := c.Stats().Corrupt; got < 1 {
		t.Fatalf("Corrupt = %d, want >= 1 discard", got)
	}
	if _, err := os.Stat(c.path(c.key(fp))); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not removed: %v", err)
	}

	// Heal: a recompute's Put rewrites the entry; every reader (and a
	// fresh cache over the same dir) now sees the healed value.
	c.Put(fp, 9.75, encode)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, ok := c.Get(fp, decode); !ok || v.(float64) != 9.75 {
				t.Errorf("healed Get = %v, %v", v, ok)
			}
		}()
	}
	wg.Wait()
	fresh := NewCache(c.dir, "s")
	if v, ok := fresh.Get(fp, decode); !ok || v.(float64) != 9.75 {
		t.Fatalf("healed entry not durable: %v, %v", v, ok)
	}
}

// TestCorruptHealRaceWithRewrite interleaves the heal (discard +
// recompute-Put) with concurrent readers of the same key: readers must
// only ever observe a miss or the healed value. This is the
// heal-rewrite vs second-reader race the single-reader tests of the
// fault-tolerance PR left uncovered.
func TestCorruptHealRaceWithRewrite(t *testing.T) {
	encode, decode := testCodec()
	const fp = "heal-rewrite-race"
	c := NewCache(t.TempDir(), "s")
	c.Warnf = func(string, ...any) {}

	for round := 0; round < 20; round++ {
		corruptEntry(t, c, fp)
		// Memory layers would mask the disk path after the first heal:
		// clear them so every round exercises diskGet.
		c.mu.Lock()
		c.mem = map[string]any{}
		c.raw = map[string][]byte{}
		c.mu.Unlock()

		var wg sync.WaitGroup
		// One goroutine plays the recomputing worker: it reads (triggering
		// the discard) then rewrites, exactly as the engine does on a
		// corrupt-entry miss.
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := c.Get(fp, decode); !ok {
				c.Put(fp, 1.5, encode)
			}
		}()
		// The rest are concurrent readers racing the heal.
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if v, ok := c.Get(fp, decode); ok && v.(float64) != 1.5 {
					t.Errorf("reader observed a wrong value %v during heal", v)
				}
			}()
		}
		wg.Wait()

		// After the dust settles the entry is healed and readable.
		if v, ok := c.Get(fp, decode); !ok || v.(float64) != 1.5 {
			t.Fatalf("round %d: post-heal Get = %v, %v", round, v, ok)
		}
	}
}
