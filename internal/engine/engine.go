package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"sensornet/internal/metrics"
	"sensornet/internal/trace"
)

// Config parameterises an Engine.
type Config struct {
	// Workers bounds job concurrency; <= 0 means runtime.GOMAXPROCS.
	Workers int
	// Timeout bounds each job attempt; 0 means no per-job timeout.
	Timeout time.Duration
	// Retries is the number of re-attempts granted to jobs that fail
	// with a Transient error (0 = fail on first error).
	Retries int
	// Backoff is the delay before the first retry, doubling per
	// attempt. Defaults to 50ms when Retries > 0.
	Backoff time.Duration
	// MaxBackoff caps the doubled retry delay (before jitter), so a
	// deep retry chain cannot sleep unboundedly. Defaults to 5s.
	MaxBackoff time.Duration
	// Cache, when non-nil, short-circuits jobs whose fingerprint has a
	// stored result and stores fresh results after success.
	Cache *Cache
	// Shard, when Sharded(), restricts execution to the jobs this
	// process owns (assignment by fingerprint content hash, see
	// ShardSpec): unowned cacheable jobs come back Skipped without
	// executing. Uncacheable jobs are always owned.
	Shard ShardSpec
	// CacheOnly forbids computation of cacheable jobs: a cache miss
	// yields a Missing result instead of executing, and Run returns a
	// *MissingError aggregating every such job. The merge and serve
	// paths use this to guarantee they never recompute shard work.
	// Uncacheable jobs (empty fingerprint) still execute.
	CacheOnly bool
	// Budget, when non-nil on a CacheOnly engine, turns strict
	// never-recompute into admission-controlled write-through: a cache
	// miss may execute (and publish) the job if the budget admits it;
	// an exhausted budget degrades to the Missing behaviour above.
	// Identical concurrent fills dedup through a per-fingerprint
	// singleflight, so N racers cost one execution and one token.
	// Ignored when CacheOnly is false.
	Budget *Budget
	// Spans receives one trace span per attempt and cache hit;
	// defaults to a fresh log owned by the engine.
	Spans *trace.SpanLog
	// OnEvent, when non-nil, observes the engine's progress events.
	// It is called from worker goroutines and must be cheap and
	// concurrency-safe.
	OnEvent func(Event)
}

// EventKind labels an engine progress event.
type EventKind uint8

const (
	// EventStart fires when a job attempt begins executing.
	EventStart EventKind = iota
	// EventDone fires when a job attempt returns (ok or failed).
	EventDone
	// EventRetry fires when a transient failure schedules a retry.
	EventRetry
	// EventCacheHit fires when a job is satisfied from the cache.
	EventCacheHit
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventDone:
		return "done"
	case EventRetry:
		return "retry"
	case EventCacheHit:
		return "cache-hit"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one engine progress notification.
type Event struct {
	Kind     EventKind
	Job      string
	Worker   int
	Attempt  int
	Duration time.Duration
	Err      error
}

// Result is the outcome of one job.
type Result struct {
	// Name is the job's Name().
	Name string
	// Value is the job's computed (or cached) result.
	Value any
	// Err is the job's final error, nil on success.
	Err error
	// Attempts counts executions (0 for a pure cache hit).
	Attempts int
	// Duration is the total execution time across attempts.
	Duration time.Duration
	// FromCache marks results satisfied without executing the job.
	FromCache bool
	// Skipped marks jobs owned by another shard (Config.Shard): not
	// executed, Value nil.
	Skipped bool
	// Missing marks cacheable jobs a CacheOnly run could not satisfy:
	// not executed, Value nil.
	Missing bool
}

// Engine is a reusable concurrent job executor. It is safe for use
// from multiple goroutines; batches submitted concurrently share the
// cache and telemetry but are executed independently.
type Engine struct {
	cfg     Config
	spans   *trace.SpanLog
	flights flightGroup

	mu      sync.Mutex
	batches int
	jobs    int
	hits    int
	retries int
	wall    time.Duration
}

// New builds an Engine, applying Config defaults.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Spans == nil {
		cfg.Spans = &trace.SpanLog{}
	}
	return &Engine{cfg: cfg, spans: cfg.Spans}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Cache returns the engine's cache (nil when caching is disabled).
func (e *Engine) Cache() *Cache { return e.cfg.Cache }

// Shard returns the engine's shard assignment (zero when unsharded).
func (e *Engine) Shard() ShardSpec { return e.cfg.Shard }

// CacheOnly reports whether the engine refuses to compute cacheable
// jobs.
func (e *Engine) CacheOnly() bool { return e.cfg.CacheOnly }

// Budget returns the engine's write-through admission gate (nil when
// the engine is strictly never-recompute).
func (e *Engine) Budget() *Budget { return e.cfg.Budget }

// Spans returns the engine's telemetry span log.
func (e *Engine) Spans() *trace.SpanLog { return e.spans }

// Run executes the jobs on the worker pool and returns their results
// in submission order. On failure the first error encountered is
// returned (wrapped with the job name) alongside the partial results;
// outstanding jobs are cancelled. When ctx is cancelled, the returned
// error wraps the context's cause (errors.Is(err, context.Canceled)
// holds for a plain cancel).
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(jobs))
	workers := e.cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range idxCh {
				res := e.runJob(ctx, worker, jobs[idx])
				results[idx] = res
				if res.Err != nil {
					fail(res.Err)
				}
			}
		}(w)
	}

feed:
	for i := range jobs {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()

	e.account(len(jobs), results, time.Since(start))

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err == nil && ctx.Err() != nil {
		err = fmt.Errorf("engine: %w", context.Cause(ctx))
	}
	if err == nil && e.cfg.CacheOnly {
		var missing []MissingJob
		for i, r := range results {
			if r.Missing {
				missing = append(missing, MissingJob{
					Name: r.Name, Fingerprint: jobs[i].Fingerprint()})
			}
		}
		if len(missing) > 0 {
			err = &MissingError{Jobs: missing}
		}
	}
	return results, err
}

// runJob executes one job with cache lookup, per-attempt timeout, and
// transient-failure retry.
func (e *Engine) runJob(ctx context.Context, worker int, job Job) Result {
	name := job.Name()
	res := Result{Name: name}
	fp := job.Fingerprint()
	if !e.cfg.Shard.Owns(fp) {
		res.Skipped = true
		return res
	}
	encode, decode := codecOf(job)
	epoch := e.spans.Epoch()

	cached := func(v any) Result {
		res.Value = v
		res.FromCache = true
		e.spans.Record(trace.Span{Name: name, Worker: worker, Cached: true,
			Start: time.Since(epoch)})
		e.emit(Event{Kind: EventCacheHit, Job: name, Worker: worker})
		return res
	}
	if v, ok := e.cfg.Cache.Get(fp, decode); ok {
		return cached(v)
	}
	if e.cfg.CacheOnly && fp != "" && e.cfg.Budget == nil {
		// Strict never-recompute: not an error per job — the batch keeps
		// draining so the merge step can report every missing shard at
		// once, and Run aggregates the misses into one *MissingError.
		res.Missing = true
		return res
	}

	// About to compute a publishable result: coalesce with any
	// concurrent execution of the same fingerprint. The leader falls
	// through to the attempt loop; followers wait, then act on how the
	// flight resolved.
	if fp != "" && e.cfg.Cache != nil {
		for {
			call, leader := e.flights.join(fp)
			if leader {
				defer func() {
					out := flightFailed
					switch {
					case res.Missing:
						out = flightMissing
					case res.Err == nil:
						out = flightStored
					}
					e.flights.finish(fp, call, out)
				}()
				break
			}
			out, err := call.wait(ctx)
			if err != nil {
				res.Err = jobError(name, err)
				return res
			}
			switch out {
			case flightStored:
				if v, ok := e.cfg.Cache.Get(fp, decode); ok {
					return cached(v)
				}
				// The leader succeeded but the cache could not hold the
				// value (codec-less disk round-trip); loop and take a
				// turn ourselves.
			case flightMissing:
				res.Missing = true
				return res
			case flightFailed:
				// The leader's attempt errored independently of ours;
				// loop and take our own turn.
			}
		}
	}

	// Write-through admission: the flight leader pays one token for the
	// whole cohort. Denial degrades to the strict Missing behaviour.
	if e.cfg.CacheOnly && fp != "" {
		if !e.cfg.Budget.TryAcquire() {
			res.Missing = true
			return res
		}
		defer e.cfg.Budget.Release()
	}

	attempts := 1 + e.cfg.Retries
	// One reusable backoff timer for the whole attempt ladder: time.After
	// in the retry loop would allocate a timer per attempt that lingers
	// until it fires even after the retry proceeds.
	backoff := time.NewTimer(time.Hour)
	if !backoff.Stop() {
		<-backoff.C
	}
	defer backoff.Stop()
	for a := 1; a <= attempts; a++ {
		if err := ctx.Err(); err != nil {
			res.Err = jobError(name, context.Cause(ctx))
			return res
		}
		res.Attempts = a
		e.emit(Event{Kind: EventStart, Job: name, Worker: worker, Attempt: a})
		attemptCtx, cancelAttempt := ctx, context.CancelFunc(func() {})
		if e.cfg.Timeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeoutCause(ctx, e.cfg.Timeout,
				fmt.Errorf("job %q exceeded its %v timeout: %w", name, e.cfg.Timeout, context.DeadlineExceeded))
		}
		began := time.Now()
		v, err := safeRun(attemptCtx, job)
		cancelAttempt()
		dur := time.Since(began)
		res.Duration += dur
		e.spans.Record(trace.Span{Name: name, Worker: worker, Attempt: a,
			Start: began.Sub(epoch), Duration: dur, Failed: err != nil})
		e.emit(Event{Kind: EventDone, Job: name, Worker: worker, Attempt: a,
			Duration: dur, Err: err})
		if err == nil {
			res.Value = v
			res.Err = nil
			e.cfg.Cache.Put(fp, v, encode)
			return res
		}
		res.Err = jobError(name, err)
		if !IsTransient(err) || a == attempts || ctx.Err() != nil {
			return res
		}
		e.noteRetry()
		e.emit(Event{Kind: EventRetry, Job: name, Worker: worker, Attempt: a, Err: err})
		backoff.Reset(e.retryBackoff(name, a))
		select {
		case <-backoff.C:
		case <-ctx.Done():
			res.Err = jobError(name, context.Cause(ctx))
			return res
		}
	}
	return res
}

// retryBackoff is the delay before the retry following failed attempt
// a, per the shared BackoffPolicy (capped doubling, deterministic
// per-job jitter).
func (e *Engine) retryBackoff(name string, a int) time.Duration {
	return BackoffPolicy{Base: e.cfg.Backoff, Max: e.cfg.MaxBackoff}.Delay(name, a)
}

// safeRun executes one job attempt, converting a panic into an error
// carrying the stack: a crashing job fails its own Result instead of
// taking down the whole campaign. The panic error is not Transient, so
// it is never retried.
func safeRun(ctx context.Context, job Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return job.Run(ctx)
}

func codecOf(job Job) (func(any) ([]byte, error), func([]byte) (any, error)) {
	if c, ok := job.(Codec); ok {
		return c.ResultCodec()
	}
	return nil, nil
}

func (e *Engine) emit(ev Event) {
	if e.cfg.OnEvent != nil {
		e.cfg.OnEvent(ev)
	}
}

func (e *Engine) noteRetry() {
	e.mu.Lock()
	e.retries++
	e.mu.Unlock()
}

func (e *Engine) account(jobs int, results []Result, wall time.Duration) {
	hits := 0
	for _, r := range results {
		if r.FromCache {
			hits++
		}
	}
	e.mu.Lock()
	e.batches++
	e.jobs += jobs
	e.hits += hits
	e.wall += wall
	e.mu.Unlock()
}

// Stats summarises everything the engine has executed so far.
type Stats struct {
	Workers   int
	Batches   int
	Jobs      int
	CacheHits int
	Retries   int
	// Wall is the summed wall-clock time of all Run calls; Busy the
	// summed execution time across workers; Utilization their ratio
	// normalised by the worker count.
	Wall        time.Duration
	Busy        time.Duration
	Utilization float64
	// JobSeconds summarises per-attempt execution times in seconds.
	JobSeconds metrics.Summary
}

// Stats snapshots the engine's cumulative telemetry.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Workers:   e.cfg.Workers,
		Batches:   e.batches,
		Jobs:      e.jobs,
		CacheHits: e.hits,
		Retries:   e.retries,
		Wall:      e.wall,
	}
	e.mu.Unlock()
	var secs []float64
	for _, sp := range e.spans.Spans() {
		if !sp.Cached {
			secs = append(secs, sp.Duration.Seconds())
			s.Busy += sp.Duration
		}
	}
	s.JobSeconds = metrics.Summarize(secs)
	if s.Wall > 0 && s.Workers > 0 {
		s.Utilization = float64(s.Busy) / (float64(s.Workers) * float64(s.Wall))
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"engine: %d jobs in %d batches on %d workers: wall %v, busy %v (%.0f%% utilization), %d cache hits, %d retries, job mean %.3fs",
		s.Jobs, s.Batches, s.Workers, s.Wall.Round(time.Millisecond),
		s.Busy.Round(time.Millisecond), 100*s.Utilization, s.CacheHits,
		s.Retries, s.JobSeconds.Mean)
}

// Map fans fn out over items on the engine and returns the outputs in
// item order: the ordered-batch convenience used by sweep loops. Jobs
// created by Map are not cached (no fingerprint).
func Map[T, R any](ctx context.Context, e *Engine, name string, items []T,
	fn func(ctx context.Context, item T, i int) (R, error)) ([]R, error) {

	jobs := make([]Job, len(items))
	for i := range items {
		i := i
		jobs[i] = JobFunc{
			JobName: fmt.Sprintf("%s[%d]", name, i),
			Fn: func(ctx context.Context) (any, error) {
				return fn(ctx, items[i], i)
			},
		}
	}
	results, err := e.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]R, len(items))
	for i, r := range results {
		v, ok := r.Value.(R)
		if !ok {
			return nil, fmt.Errorf("engine: job %q returned %T", r.Name, r.Value)
		}
		out[i] = v
	}
	return out, nil
}
