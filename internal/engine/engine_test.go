package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func constJob(name string, v any) JobFunc {
	return JobFunc{JobName: name, Fn: func(context.Context) (any, error) { return v, nil }}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	eng := New(Config{Workers: 8})
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = constJob(fmt.Sprintf("j%d", i), i)
	}
	results, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != i {
			t.Fatalf("result[%d] = %v, want %d", i, r.Value, i)
		}
		if r.Attempts != 1 || r.FromCache {
			t.Fatalf("result[%d] unexpected execution record: %+v", i, r)
		}
	}
}

func TestRunEmptyBatch(t *testing.T) {
	eng := New(Config{})
	results, err := eng.Run(context.Background(), nil)
	if err != nil || results != nil {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

func TestRunDefaultsWorkers(t *testing.T) {
	eng := New(Config{})
	if eng.Workers() <= 0 {
		t.Fatalf("default worker count %d", eng.Workers())
	}
}

func TestCancellationReturnsPromptlyWithWrappedCanceled(t *testing.T) {
	eng := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = JobFunc{
			JobName: fmt.Sprintf("block%d", i),
			Fn: func(ctx context.Context) (any, error) {
				if once.CompareAndSwap(false, true) {
					close(started)
				}
				<-ctx.Done()
				return nil, ctx.Err()
			},
		}
	}
	go func() {
		<-started
		cancel()
	}()
	deadline := time.Now().Add(5 * time.Second)
	_, err := eng.Run(ctx, jobs)
	if time.Now().After(deadline) {
		t.Fatal("cancellation did not return promptly")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestCacheHitSkipsRecompute(t *testing.T) {
	var computes atomic.Int64
	job := JobFunc{
		JobName: "counted",
		Key:     "counted-key",
		Fn: func(context.Context) (any, error) {
			computes.Add(1)
			return 42, nil
		},
	}
	eng := New(Config{Workers: 4, Cache: NewCache("", "test-salt")})
	for round := 0; round < 3; round++ {
		results, err := eng.Run(context.Background(), []Job{job})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Value != 42 {
			t.Fatalf("round %d: value %v", round, results[0].Value)
		}
		if wantCached := round > 0; results[0].FromCache != wantCached {
			t.Fatalf("round %d: FromCache = %v", round, results[0].FromCache)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("job computed %d times, want 1", n)
	}
	if s := eng.Stats(); s.CacheHits != 2 {
		t.Fatalf("stats cache hits = %d, want 2", s.CacheHits)
	}
}

func TestDistinctFingerprintsDoNotShareEntries(t *testing.T) {
	cache := NewCache("", "salt")
	eng := New(Config{Workers: 1, Cache: cache})
	mk := func(key string, v int) Job {
		return JobFunc{JobName: key, Key: key,
			Fn: func(context.Context) (any, error) { return v, nil }}
	}
	results, err := eng.Run(context.Background(),
		[]Job{mk("a", 1), mk("b", 2), mk("a", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != 1 || results[1].Value != 2 {
		t.Fatalf("values %v %v", results[0].Value, results[1].Value)
	}
	// Same key as job 0: served from cache with job 0's result.
	if !results[2].FromCache || results[2].Value != 1 {
		t.Fatalf("duplicate key not deduplicated: %+v", results[2])
	}
}

func TestRetryStopsAfterConfiguredAttempts(t *testing.T) {
	var attempts atomic.Int64
	job := JobFunc{
		JobName: "flaky",
		Fn: func(context.Context) (any, error) {
			attempts.Add(1)
			return nil, Transient(errors.New("spurious"))
		},
	}
	eng := New(Config{Workers: 1, Retries: 2, Backoff: time.Millisecond})
	results, err := eng.Run(context.Background(), []Job{job})
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", n)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("result attempts = %d, want 3", results[0].Attempts)
	}
	if !strings.Contains(err.Error(), "flaky") {
		t.Fatalf("error %q does not name the job", err)
	}
	if s := eng.Stats(); s.Retries != 2 {
		t.Fatalf("stats retries = %d, want 2", s.Retries)
	}
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	var attempts atomic.Int64
	job := JobFunc{
		JobName: "recovers",
		Fn: func(context.Context) (any, error) {
			if attempts.Add(1) < 3 {
				return nil, Transient(errors.New("not yet"))
			}
			return "ok", nil
		},
	}
	eng := New(Config{Workers: 1, Retries: 3, Backoff: time.Millisecond})
	results, err := eng.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Value != "ok" || results[0].Attempts != 3 {
		t.Fatalf("result %+v", results[0])
	}
}

func TestNonTransientFailureIsNotRetried(t *testing.T) {
	var attempts atomic.Int64
	sentinel := errors.New("fatal")
	job := JobFunc{JobName: "fatal", Fn: func(context.Context) (any, error) {
		attempts.Add(1)
		return nil, sentinel
	}}
	eng := New(Config{Workers: 1, Retries: 5, Backoff: time.Millisecond})
	_, err := eng.Run(context.Background(), []Job{job})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("attempts = %d, want 1", n)
	}
}

func TestPerJobTimeout(t *testing.T) {
	job := JobFunc{JobName: "slow", Fn: func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return "too late", nil
		}
	}}
	eng := New(Config{Workers: 1, Timeout: 10 * time.Millisecond})
	start := time.Now()
	_, err := eng.Run(context.Background(), []Job{job})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout not enforced promptly")
	}
}

func TestFirstErrorCancelsBatch(t *testing.T) {
	var ran atomic.Int64
	jobs := []Job{
		JobFunc{JobName: "boom", Fn: func(context.Context) (any, error) {
			return nil, errors.New("boom")
		}},
	}
	for i := 0; i < 64; i++ {
		jobs = append(jobs, JobFunc{JobName: fmt.Sprintf("later%d", i),
			Fn: func(ctx context.Context) (any, error) {
				ran.Add(1)
				return nil, nil
			}})
	}
	eng := New(Config{Workers: 1})
	_, err := eng.Run(context.Background(), jobs)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// With one worker the failing job runs first and cancels the feed:
	// the remaining jobs must not all have executed.
	if n := ran.Load(); n == 64 {
		t.Fatal("batch not cancelled after first error")
	}
}

func TestTelemetrySpansAndStats(t *testing.T) {
	var events atomic.Int64
	eng := New(Config{Workers: 2, OnEvent: func(Event) { events.Add(1) }})
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = JobFunc{JobName: fmt.Sprintf("t%d", i),
			Fn: func(context.Context) (any, error) {
				time.Sleep(2 * time.Millisecond)
				return nil, nil
			}}
	}
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Jobs != 6 || s.Batches != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Busy <= 0 || s.Wall <= 0 {
		t.Fatalf("no time accounted: %+v", s)
	}
	if s.Utilization <= 0 || s.Utilization > 1.01 {
		t.Fatalf("utilization %v out of range", s.Utilization)
	}
	if s.JobSeconds.Count != 6 || s.JobSeconds.Mean <= 0 {
		t.Fatalf("job time summary %+v", s.JobSeconds)
	}
	if eng.Spans().Len() != 6 {
		t.Fatalf("spans = %d, want 6", eng.Spans().Len())
	}
	if events.Load() != 12 { // start + done per job
		t.Fatalf("events = %d, want 12", events.Load())
	}
	if str := s.String(); !strings.Contains(str, "6 jobs") {
		t.Fatalf("stats string %q", str)
	}
}

func TestMapPreservesOrderAndTypes(t *testing.T) {
	eng := New(Config{Workers: 4})
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	out, err := Map(context.Background(), eng, "square", items,
		func(_ context.Context, x, _ int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := items[i] * items[i]; v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestTransientPredicates(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) should be nil")
	}
	base := errors.New("x")
	if !IsTransient(Transient(base)) {
		t.Fatal("wrapped error should be transient")
	}
	if IsTransient(base) {
		t.Fatal("plain error should not be transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient should preserve the error chain")
	}
}
