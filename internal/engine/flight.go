package engine

import (
	"context"
	"sync"
)

// Per-fingerprint singleflight: when several goroutines race to compute
// the same cacheable job — concurrent serving requests write-through
// filling one cold row, or overlapping batches sharing work — exactly
// one leader executes and publishes to the cache; everyone else waits
// and re-reads. N racing identical fills then cost one execution and
// one budget token instead of N.

// flightOutcome tells waiters how a flight resolved.
type flightOutcome uint8

const (
	// flightFailed: the leader's attempt errored; take your own turn.
	flightFailed flightOutcome = iota
	// flightStored: the result landed in the cache; re-read it.
	flightStored
	// flightMissing: the admission budget denied the fill; report
	// Missing without burning another token on a doomed election.
	flightMissing
)

// flightCall is one in-progress execution of a fingerprint.
type flightCall struct {
	done    chan struct{}
	outcome flightOutcome
}

// wait blocks until the flight resolves or ctx is cancelled.
func (c *flightCall) wait(ctx context.Context) (flightOutcome, error) {
	select {
	case <-c.done:
		return c.outcome, nil
	case <-ctx.Done():
		return flightFailed, context.Cause(ctx)
	}
}

// flightGroup coalesces concurrent executions per fingerprint.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// join returns the in-flight call for fp and whether this caller was
// elected leader (no call was in flight, a fresh one is registered).
func (g *flightGroup) join(fp string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[fp]; ok {
		return c, false
	}
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[fp] = c
	return c, true
}

// finish publishes the leader's outcome and wakes every waiter. The
// entry is deregistered first, so a waiter that loops re-joins a fresh
// flight instead of the resolved one.
func (g *flightGroup) finish(fp string, c *flightCall, out flightOutcome) {
	g.mu.Lock()
	delete(g.calls, fp)
	g.mu.Unlock()
	c.outcome = out
	close(c.done)
}
