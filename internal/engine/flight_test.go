package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightDedupsConcurrentIdenticalJobs: N goroutines racing the same
// fingerprint through one engine execute it exactly once; everyone else
// is served from the cache the leader published.
func TestFlightDedupsConcurrentIdenticalJobs(t *testing.T) {
	cache := NewCache("", "test-salt")
	eng := New(Config{Workers: 4, Cache: cache})
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	job := JobFunc{
		JobName: "slow",
		Key:     "slow-fp",
		Fn: func(ctx context.Context) (any, error) {
			runs.Add(1)
			close(started)
			<-release
			return 42, nil
		},
	}

	const racers = 8
	var wg sync.WaitGroup
	results := make([]Result, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := eng.Run(context.Background(), []Job{job})
			errs[i] = err
			if len(rs) == 1 {
				results[i] = rs[0]
			}
		}(i)
	}
	<-started // the leader is executing; the rest must be waiting
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if runs.Load() != 1 {
		t.Fatalf("job executed %d times across %d racers, want exactly 1", runs.Load(), racers)
	}
	computed := 0
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if r.Value != 42 {
			t.Fatalf("racer %d value = %v", i, r.Value)
		}
		if !r.FromCache {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d racers report computing, want 1 leader", computed)
	}
}

// TestFlightFollowerRetriesAfterLeaderFailure: a failed leader does not
// poison the fingerprint — the next caller takes its own turn.
func TestFlightFollowerRetriesAfterLeaderFailure(t *testing.T) {
	cache := NewCache("", "test-salt")
	eng := New(Config{Workers: 2, Cache: cache})
	var attempt atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	job := JobFunc{
		JobName: "flaky",
		Key:     "flaky-fp",
		Fn: func(ctx context.Context) (any, error) {
			if attempt.Add(1) == 1 {
				close(started)
				<-release
				return nil, errors.New("leader boom")
			}
			return "ok", nil
		},
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), []Job{job})
		leaderErr <- err
	}()
	<-started
	followerDone := make(chan Result, 1)
	go func() {
		rs, err := eng.Run(context.Background(), []Job{job})
		if err != nil {
			followerDone <- Result{Err: err}
			return
		}
		followerDone <- rs[0]
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	close(release)

	if err := <-leaderErr; err == nil {
		t.Fatal("leader run should fail")
	}
	r := <-followerDone
	if r.Err != nil || r.Value != "ok" {
		t.Fatalf("follower result = %+v, want its own successful attempt", r)
	}
	if attempt.Load() != 2 {
		t.Fatalf("%d attempts, want leader fail + follower retry", attempt.Load())
	}
}

// TestFlightBudgetDenialPropagates: when the flight leader is denied by
// the admission budget, waiting followers come back Missing without
// re-running the election (one denial, not N).
func TestFlightBudgetDenialPropagates(t *testing.T) {
	cache := NewCache("", "test-salt")
	b, _ := testBudget(1, 1, 0) // one token, no refill
	eng := New(Config{Workers: 4, Cache: cache, CacheOnly: true, Budget: b})
	// Drain the single token with a throwaway fill.
	if _, err := eng.Run(context.Background(), []Job{budgetJob("warm", new(atomic.Int64))}); err != nil {
		t.Fatalf("warm fill: %v", err)
	}

	var runs atomic.Int64
	job := budgetJob("cold", &runs)
	const racers = 6
	var wg sync.WaitGroup
	missing := atomic.Int64{}
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, _ := eng.Run(context.Background(), []Job{job})
			if len(rs) == 1 && rs[0].Missing {
				missing.Add(1)
			}
		}()
	}
	wg.Wait()
	if runs.Load() != 0 {
		t.Fatalf("budget-denied job executed %d times", runs.Load())
	}
	if missing.Load() != racers {
		t.Fatalf("%d/%d racers saw Missing", missing.Load(), racers)
	}
}

// TestFlightWaitCancellation: a follower whose context dies while
// waiting gets the context error, not a hang.
func TestFlightWaitCancellation(t *testing.T) {
	cache := NewCache("", "test-salt")
	eng := New(Config{Workers: 2, Cache: cache})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	job := JobFunc{
		JobName: "stuck",
		Key:     "stuck-fp",
		Fn: func(ctx context.Context) (any, error) {
			close(started)
			<-release
			return 1, nil
		},
	}
	go eng.Run(context.Background(), []Job{job})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, []Job{job})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower never returned")
	}
}
