package engine

import (
	"encoding/json"
	"fmt"
)

// ResultSink is the result-ingest surface a remote executor posts
// through: a coordinator that receives computed payloads over the wire
// lands them here so they become indistinguishable from locally stored
// results. *Cache implements it — IngestResult writes the exact disk
// envelope Put would write, so a campaign merged from remotely posted
// results is byte-identical to one computed in-process.
type ResultSink interface {
	// HasResult reports whether a valid stored result exists for the
	// fingerprint. It never computes and never decodes the payload.
	HasResult(fingerprint string) bool
	// IngestResult stores raw payload bytes (the job codec's encoding)
	// under the fingerprint. The payload must be valid JSON — the same
	// constraint Put enforces before writing disk entries.
	IngestResult(fingerprint string, payload []byte) error
}

// HasResult implements ResultSink: a fingerprint has a result when it
// is live in memory (decoded or raw) or readable and well-formed on
// disk. Corrupt disk entries report false (and are left for the read
// path's self-healing to discard).
func (c *Cache) HasResult(fingerprint string) bool {
	if c == nil || fingerprint == "" {
		return false
	}
	k := c.key(fingerprint)
	c.mu.Lock()
	_, inMem := c.mem[k]
	_, inRaw := c.raw[k]
	c.mu.Unlock()
	if inMem || inRaw {
		return true
	}
	if c.dir == "" {
		return false
	}
	env, ok := c.readEnvelope(k)
	return ok && env.Fingerprint == fingerprint && env.Salt == c.salt
}

// IngestResult implements ResultSink. The payload is kept in the raw
// in-memory layer (promoted to a decoded value on the next Get) and,
// when a directory is configured, written to disk through the same
// envelope path Put uses — so remotely computed entries are
// byte-identical to local ones.
//
// Ingest is idempotent by content addressing: a fingerprint that
// already has a valid stored result is not rewritten — the duplicate
// is counted (CacheStats.IngestDupes) and dropped, which keeps a
// replayed or duplicated wire delivery from ever touching the entry a
// reader may be holding open. Distributed callers dedupe by job state
// before ingesting, so a nonzero IngestDupes count means a duplicate
// slipped past the protocol layer.
func (c *Cache) IngestResult(fingerprint string, payload []byte) error {
	if c == nil {
		return fmt.Errorf("engine: ingest into a nil cache")
	}
	if fingerprint == "" {
		return fmt.Errorf("engine: ingest with an empty fingerprint")
	}
	if !json.Valid(payload) {
		return fmt.Errorf("engine: ingest %q: payload is not valid JSON", fingerprint)
	}
	if c.HasResult(fingerprint) {
		c.mu.Lock()
		c.ingestDupes++
		c.mu.Unlock()
		return nil
	}
	k := c.key(fingerprint)
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.mu.Lock()
	c.raw[k] = buf
	c.stores++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.storeDisk(k, fingerprint, payload)
}

// EncodeResult serialises a job's computed value with the job's own
// codec: the exact payload bytes Put stores on disk, and therefore the
// exact bytes a remote worker must post back so the coordinator's cache
// stays byte-identical to a local run. Jobs without an encoder (or
// without a Codec at all) cannot publish remotely.
func EncodeResult(job Job, v any) ([]byte, error) {
	encode, _ := codecOf(job)
	if encode == nil {
		return nil, fmt.Errorf("engine: job %q has no result encoder", job.Name())
	}
	payload, err := encode(v)
	if err != nil {
		return nil, fmt.Errorf("engine: encoding result of job %q: %w", job.Name(), err)
	}
	if !json.Valid(payload) {
		return nil, fmt.Errorf("engine: job %q encoded a non-JSON payload", job.Name())
	}
	return payload, nil
}
