package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testCodec() (func(any) ([]byte, error), func([]byte) (any, error)) {
	encode := func(v any) ([]byte, error) { return json.Marshal(v) }
	decode := func(b []byte) (any, error) {
		var v float64
		err := json.Unmarshal(b, &v)
		return v, err
	}
	return encode, decode
}

// readDirFiles returns name → content for every file in dir.
func readDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestIngestByteIdenticalToPut is the remote-execution byte-identity
// anchor at the cache layer: ingesting the encoded payload produces the
// exact same disk entry (same file name, same bytes) as a local Put of
// the computed value.
func TestIngestByteIdenticalToPut(t *testing.T) {
	encode, _ := testCodec()
	const fp = "job-fingerprint"
	v := 42.5

	localDir, remoteDir := t.TempDir(), t.TempDir()
	local := NewCache(localDir, "salt-v1")
	local.Put(fp, v, encode)

	payload, err := encode(v)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewCache(remoteDir, "salt-v1")
	if err := remote.IngestResult(fp, payload); err != nil {
		t.Fatal(err)
	}

	lf, rf := readDirFiles(t, localDir), readDirFiles(t, remoteDir)
	if len(lf) != 1 || len(rf) != 1 {
		t.Fatalf("want one entry per dir, got %d and %d", len(lf), len(rf))
	}
	for name, lb := range lf {
		rb, ok := rf[name]
		if !ok {
			t.Fatalf("ingested entry file name differs: local has %q, remote has %v", name, keys(rf))
		}
		if !bytes.Equal(lb, rb) {
			t.Fatalf("ingested entry differs from local Put:\n%s\nvs\n%s", lb, rb)
		}
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestIngestHasResultAndGet(t *testing.T) {
	encode, decode := testCodec()
	c := NewCache(t.TempDir(), "s")
	const fp = "fp-1"
	if c.HasResult(fp) {
		t.Fatal("HasResult true before any store")
	}
	payload, _ := encode(7.25)
	if err := c.IngestResult(fp, payload); err != nil {
		t.Fatal(err)
	}
	if !c.HasResult(fp) {
		t.Fatal("HasResult false after ingest")
	}
	v, ok := c.Get(fp, decode)
	if !ok || v.(float64) != 7.25 {
		t.Fatalf("Get after ingest = %v, %v", v, ok)
	}
	// A fresh cache over the same dir sees the entry purely from disk.
	c2 := NewCache(c.dir, "s")
	if !c2.HasResult(fp) {
		t.Fatal("HasResult false from disk")
	}
	if v, ok := c2.Get(fp, decode); !ok || v.(float64) != 7.25 {
		t.Fatalf("disk Get after ingest = %v, %v", v, ok)
	}
}

// TestIngestMemoryOnly: with no directory configured the ingested raw
// payload still satisfies Get in-process.
func TestIngestMemoryOnly(t *testing.T) {
	_, decode := testCodec()
	c := NewCache("", "s")
	if err := c.IngestResult("fp", []byte("3.5")); err != nil {
		t.Fatal(err)
	}
	if !c.HasResult("fp") {
		t.Fatal("HasResult false after memory-only ingest")
	}
	if v, ok := c.Get("fp", decode); !ok || v.(float64) != 3.5 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	c := NewCache(t.TempDir(), "s")
	if err := c.IngestResult("", []byte("1")); err == nil {
		t.Error("empty fingerprint accepted")
	}
	if err := c.IngestResult("fp", []byte("{not json")); err == nil {
		t.Error("invalid JSON payload accepted")
	}
	if c.HasResult("fp") {
		t.Error("rejected ingest left a result behind")
	}
	var nilCache *Cache
	if err := nilCache.IngestResult("fp", []byte("1")); err == nil {
		t.Error("nil cache accepted an ingest")
	}
	if nilCache.HasResult("fp") {
		t.Error("nil cache reports a result")
	}
}

// TestIngestDuplicateAbsorbed: re-ingesting a fingerprint that already
// has a valid result is a counted no-op — the stored entry is not
// rewritten (no second disk write a reader could observe mid-rename)
// and IngestDupes records the absorbed duplicate.
func TestIngestDuplicateAbsorbed(t *testing.T) {
	_, decode := testCodec()
	c := NewCache(t.TempDir(), "s")
	if err := c.IngestResult("fp", []byte("1.5")); err != nil {
		t.Fatal(err)
	}
	before := readDirFiles(t, c.dir)
	if err := c.IngestResult("fp", []byte("1.5")); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.IngestDupes != 1 {
		t.Fatalf("IngestDupes = %d, want 1", s.IngestDupes)
	}
	if s.Stores != 1 {
		t.Fatalf("Stores = %d, want 1 (duplicate must not re-store)", s.Stores)
	}
	after := readDirFiles(t, c.dir)
	if len(before) != 1 || len(after) != 1 {
		t.Fatalf("entry counts: before %d, after %d", len(before), len(after))
	}
	if v, ok := c.Get("fp", decode); !ok || v.(float64) != 1.5 {
		t.Fatalf("Get after duplicate ingest = %v, %v", v, ok)
	}
	// The memory-only layer dedupes too.
	m := NewCache("", "s")
	if err := m.IngestResult("fp", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := m.IngestResult("fp", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.IngestDupes != 1 || s.Stores != 1 {
		t.Fatalf("memory-only dedupe stats = %+v", s)
	}
}

// TestIngestWrongSaltInvisible: an entry ingested under one salt is not
// a result under another (the salt partitions the address space).
func TestIngestWrongSaltInvisible(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(dir, "v1")
	if err := c1.IngestResult("fp", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if NewCache(dir, "v2").HasResult("fp") {
		t.Fatal("result visible under a different salt")
	}
}

func TestEncodeResult(t *testing.T) {
	encode, decode := testCodec()
	job := JobFunc{Key: "k", EncodeFn: encode, DecodeFn: decode}
	payload, err := EncodeResult(job, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "2.5" {
		t.Fatalf("payload = %q", payload)
	}
	if _, err := EncodeResult(JobFunc{Key: "k"}, 2.5); err == nil {
		t.Error("job without an encoder accepted")
	}
	bad := JobFunc{Key: "k", EncodeFn: func(any) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}}
	if _, err := EncodeResult(bad, 2.5); err == nil {
		t.Error("failing encoder not surfaced")
	}
	nonJSON := JobFunc{Key: "k", EncodeFn: func(any) ([]byte, error) {
		return []byte("{truncated"), nil
	}}
	if _, err := EncodeResult(nonJSON, 2.5); err == nil {
		t.Error("non-JSON payload accepted")
	}
}
