// Package engine is the shared execution substrate for experiment
// campaigns and parameter sweeps: a worker pool that runs Jobs
// concurrently with context cancellation, per-job timeouts, bounded
// retry with backoff for transient failures, and a content-addressed
// result cache so that re-running a campaign recomputes only what
// changed. Results always come back in submission order, so callers
// that assemble figures or CSV rows from a batch are byte-identical
// regardless of worker count.
package engine

import (
	"context"
	"errors"
	"fmt"
)

// Job is one unit of executable work.
type Job interface {
	// Name identifies the job in telemetry and error messages.
	Name() string
	// Fingerprint is a stable content-derived identity of the job's
	// configuration: two jobs with equal fingerprints must compute
	// equal results. An empty fingerprint disables caching.
	Fingerprint() string
	// Run computes the job's result. Implementations should honour ctx
	// cancellation at their natural granularity (e.g. between
	// replications).
	Run(ctx context.Context) (any, error)
}

// Codec lets a job participate in the on-disk cache layer by
// serialising its result to and from JSON. Either function may be nil,
// which keeps the job's cache entries in memory only.
type Codec interface {
	ResultCodec() (encode func(any) ([]byte, error), decode func([]byte) (any, error))
}

// JobFunc is the funcional Job (and Codec) implementation used by all
// in-repo callers.
type JobFunc struct {
	// JobName is the telemetry name; defaults to Key when empty.
	JobName string
	// Key is the job's fingerprint; empty disables caching.
	Key string
	// Fn computes the result.
	Fn func(ctx context.Context) (any, error)
	// EncodeFn/DecodeFn serialise the result for the disk cache layer;
	// leave nil for memory-only caching.
	EncodeFn func(any) ([]byte, error)
	DecodeFn func([]byte) (any, error)
}

// Name implements Job.
func (j JobFunc) Name() string {
	if j.JobName != "" {
		return j.JobName
	}
	return j.Key
}

// Fingerprint implements Job.
func (j JobFunc) Fingerprint() string { return j.Key }

// Run implements Job.
func (j JobFunc) Run(ctx context.Context) (any, error) { return j.Fn(ctx) }

// ResultCodec implements Codec.
func (j JobFunc) ResultCodec() (func(any) ([]byte, error), func([]byte) (any, error)) {
	return j.EncodeFn, j.DecodeFn
}

// transientError marks an error as transient: the engine retries the
// job (up to its retry budget) instead of failing the batch.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the engine treats the failure as retryable.
// It returns nil for a nil err.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or any error it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// jobError wraps a job failure with the job's name so batch errors are
// attributable.
func jobError(name string, err error) error {
	return fmt.Errorf("engine: job %q: %w", name, err)
}
