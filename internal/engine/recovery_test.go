package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestJobPanicBecomesError: a panicking job must surface as that job's
// error — naming the job and carrying the stack — not as a process
// crash, and must not be retried.
func TestJobPanicBecomesError(t *testing.T) {
	var runs atomic.Int64
	eng := New(Config{Workers: 2, Retries: 3, Backoff: time.Millisecond})
	jobs := []Job{JobFunc{
		JobName: "crasher",
		Fn: func(context.Context) (any, error) {
			runs.Add(1)
			panic("boom: nil deployment")
		},
	}}
	results, err := eng.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("panicking job must fail the batch")
	}
	for _, want := range []string{"crasher", "panicked", "boom: nil deployment"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// The stack trace should point at this test file.
	if !strings.Contains(results[0].Err.Error(), "recovery_test.go") {
		t.Errorf("job error carries no stack:\n%v", results[0].Err)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("panic was retried: %d runs", n)
	}
}

// TestCancelDuringBackoffSleep: cancelling the context while a retry
// backoff sleep is in flight must return promptly with the
// cancellation cause, not wait out the backoff.
func TestCancelDuringBackoffSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sleeping := make(chan struct{})
	eng := New(Config{
		Workers: 1,
		Retries: 1,
		Backoff: time.Hour, // the test fails by timeout if the sleep wins
		OnEvent: func(ev Event) {
			if ev.Kind == EventRetry {
				close(sleeping)
			}
		},
	})
	go func() {
		<-sleeping
		cancel()
	}()
	start := time.Now()
	results, err := eng.Run(ctx, []Job{JobFunc{
		JobName: "flaky",
		Fn: func(context.Context) (any, error) {
			return nil, Transient(errors.New("try again"))
		},
	}})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, backoff sleep was not interrupted", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(results[0].Err.Error(), "flaky") {
		t.Errorf("job error %v does not name the job", results[0].Err)
	}
}

// TestRetryBackoffCapAndJitter: delays double from Backoff, never
// exceed MaxBackoff, land in [d/2, d), and are a pure function of
// (job, attempt).
func TestRetryBackoffCapAndJitter(t *testing.T) {
	eng := New(Config{Backoff: 50 * time.Millisecond, MaxBackoff: 200 * time.Millisecond})
	for _, tc := range []struct {
		attempt int
		lo, hi  time.Duration
	}{
		{1, 25 * time.Millisecond, 50 * time.Millisecond},
		{2, 50 * time.Millisecond, 100 * time.Millisecond},
		{3, 100 * time.Millisecond, 200 * time.Millisecond},
		{4, 100 * time.Millisecond, 200 * time.Millisecond}, // capped
		{60, 100 * time.Millisecond, 200 * time.Millisecond},
	} {
		d := eng.retryBackoff("job-a", tc.attempt)
		if d < tc.lo || d >= tc.hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", tc.attempt, d, tc.lo, tc.hi)
		}
		if d != eng.retryBackoff("job-a", tc.attempt) {
			t.Errorf("attempt %d: backoff is not deterministic", tc.attempt)
		}
	}
	// Different jobs desynchronise: across a fleet of names, at least
	// two distinct delays at the same attempt.
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		seen[eng.retryBackoff(fmt.Sprintf("job-%d", i), 4)] = true
	}
	if len(seen) < 2 {
		t.Error("jitter produced identical delays for every job name")
	}
}

func diskJob(name, key string, fn func(context.Context) (any, error)) JobFunc {
	return JobFunc{
		JobName:  name,
		Key:      key,
		EncodeFn: func(v any) ([]byte, error) { return json.Marshal(v) },
		DecodeFn: func(b []byte) (any, error) {
			var v float64
			err := json.Unmarshal(b, &v)
			return v, err
		},
		Fn: fn,
	}
}

// TestTornCacheEntryRecovered: a truncated disk entry (a write cut off
// by a kill) degrades to a miss — logged, counted, recomputed, and
// overwritten with a good entry — instead of failing the job.
func TestTornCacheEntryRecovered(t *testing.T) {
	dir := t.TempDir()
	var computes atomic.Int64
	job := diskJob("row", "row-key", func(context.Context) (any, error) {
		computes.Add(1)
		return 4.5, nil
	})

	first := NewCache(dir, "salt")
	first.Warnf = func(string, ...any) {}
	if _, err := New(Config{Workers: 1, Cache: first}).Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}

	// Tear the entry: keep a prefix of the valid JSON.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries %v err %v", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var warned atomic.Int64
	second := NewCache(dir, "salt")
	second.Warnf = func(string, ...any) { warned.Add(1) }
	results, err := New(Config{Workers: 1, Cache: second}).Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatalf("torn entry failed the job: %v", err)
	}
	if results[0].FromCache || results[0].Value != 4.5 {
		t.Fatalf("torn entry must recompute: %+v", results[0])
	}
	if computes.Load() != 2 {
		t.Fatalf("computes = %d, want 2", computes.Load())
	}
	if warned.Load() == 0 {
		t.Error("corruption was not logged")
	}
	if got := second.Stats().Corrupt; got != 1 {
		t.Errorf("Corrupt = %d, want 1", got)
	}

	// The recompute's Put healed the entry: a cold cache now hits disk.
	third := NewCache(dir, "salt")
	res, err := New(Config{Workers: 1, Cache: third}).Run(context.Background(), []Job{job})
	if err != nil || !res[0].FromCache {
		t.Fatalf("healed entry not served from disk: %+v, %v", res[0], err)
	}
}

// TestResumeFromDiskCache: a batch killed mid-flight leaves its
// completed jobs on disk; re-running the same batch against the same
// cache dir serves those from the cache and computes only the rest.
func TestResumeFromDiskCache(t *testing.T) {
	dir := t.TempDir()
	const n = 8
	mkJobs := func(computes *atomic.Int64) []Job {
		jobs := make([]Job, n)
		for i := range jobs {
			v := float64(i)
			jobs[i] = diskJob(fmt.Sprintf("row%d", i), fmt.Sprintf("row-key-%d", i),
				func(context.Context) (any, error) {
					computes.Add(1)
					return v, nil
				})
		}
		return jobs
	}

	// First run: cancel after the third completed job. Put runs after
	// the EventDone emit, so completed jobs are on disk by the time the
	// next job reports.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	var computed1 atomic.Int64
	killed := New(Config{
		Workers: 1,
		Cache:   NewCache(dir, "salt"),
		OnEvent: func(ev Event) {
			if ev.Kind == EventDone && done.Add(1) == 3 {
				cancel()
			}
		},
	})
	if _, err := killed.Run(ctx, mkJobs(&computed1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: err = %v, want context.Canceled", err)
	}
	if computed1.Load() >= n {
		t.Fatalf("kill came too late to test resumption: %d/%d computed", computed1.Load(), n)
	}

	// Second run, fresh engine and cold memory: completes, with the
	// already-computed rows served from disk.
	var computed2 atomic.Int64
	resumed := New(Config{Workers: 1, Cache: NewCache(dir, "salt")})
	results, err := resumed.Run(context.Background(), mkJobs(&computed2))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, r := range results {
		if r.Value != float64(i) {
			t.Fatalf("result[%d] = %v", i, r.Value)
		}
		if r.FromCache {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("resume used %d cached rows, want >= 2", hits)
	}
	// Every row is computed exactly once across both runs.
	if computed1.Load()+computed2.Load() != n {
		t.Errorf("rows computed %d+%d times, want %d total",
			computed1.Load(), computed2.Load(), n)
	}
}
