package engine

import (
	"fmt"
	"hash/fnv"
)

// splitmix64 is the finaliser of the SplitMix64 generator: a cheap,
// well-mixed bijection on 64-bit words. Nearby inputs (base, base+1)
// land on unrelated outputs, which is exactly the property the ad-hoc
// `seed*7919+int64(rho)` derivations lacked: affine maps of nearby
// seeds collide across nearby parameter values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashParts folds the formatted parts into one 64-bit FNV-1a digest,
// separating fields so ("ab","c") and ("a","bc") differ.
func hashParts(parts []any) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x1f", p)
	}
	return h.Sum64()
}

// DeriveSeed derives a deterministic, collision-resistant child seed
// from a base seed and a sequence of labelling parts (experiment name,
// density, replication index, ...). The same inputs always yield the
// same seed; any change to base or parts yields an unrelated one. The
// result is non-negative so it can feed APIs that reserve negative
// seeds.
func DeriveSeed(base int64, parts ...any) int64 {
	x := splitmix64(splitmix64(uint64(base)) ^ hashParts(parts))
	return int64(x &^ (1 << 63))
}

// Fingerprint builds a stable, collision-free cache key from the
// formatted parts. The full formatted content is retained (the cache
// layer hashes it for addressing), so two distinct configurations can
// never alias one cache entry.
func Fingerprint(parts ...any) string {
	out := make([]byte, 0, 64)
	for i, p := range parts {
		if i > 0 {
			out = append(out, '\x1f')
		}
		out = fmt.Appendf(out, "%v", p)
	}
	return string(out)
}
