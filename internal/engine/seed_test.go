package engine

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(7, "costfn", 40.0)
	b := DeriveSeed(7, "costfn", 40.0)
	if a != b {
		t.Fatalf("same inputs, different seeds: %d vs %d", a, b)
	}
	if a < 0 {
		t.Fatalf("seed %d negative", a)
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	base := DeriveSeed(7, "costfn", 40.0)
	for name, other := range map[string]int64{
		"base":  DeriveSeed(8, "costfn", 40.0),
		"label": DeriveSeed(7, "hetero", 40.0),
		"part":  DeriveSeed(7, "costfn", 60.0),
		"arity": DeriveSeed(7, "costfn", 40.0, 0),
	} {
		if other == base {
			t.Fatalf("changing %s did not change the seed", name)
		}
	}
}

// TestDeriveSeedAvoidsAffineCollisions reproduces the collision class
// of the former seed*7919+rho derivation: nearby (seed, rho) pairs that
// alias under an affine map must not alias under DeriveSeed.
func TestDeriveSeedAvoidsAffineCollisions(t *testing.T) {
	// Affine: 0*7919+7919 == 1*7919+0, so (seed=0, rho=7919) and
	// (seed=1, rho=0) collided. More practically, seeds 0..n and the
	// paper's rho grid 20..140 step 20 generate dense affine overlap.
	seen := map[int64][2]any{}
	for seed := int64(0); seed < 50; seed++ {
		for _, rho := range []float64{20, 40, 60, 80, 100, 120, 140} {
			s := DeriveSeed(seed, "costfn-deploy", rho)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%v) and %v both map to %d",
					seed, rho, prev, s)
			}
			seen[s] = [2]any{seed, rho}
		}
	}
}

func TestFingerprintSeparatesFields(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("field boundaries not preserved")
	}
	if Fingerprint("a", 1, 2.5) != Fingerprint("a", 1, 2.5) {
		t.Fatal("fingerprint not deterministic")
	}
	if Fingerprint([]float64{1, 2}) == Fingerprint([]float64{1, 2, 3}) {
		t.Fatal("slice contents not captured")
	}
}
