package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// ShardSpec identifies one shard of a multi-process sweep: this
// process computes only the jobs whose fingerprint hashes to Index out
// of Total. The zero value (Total 0, like Total 1) is the unsharded
// spec that owns every job.
//
// Assignment is by content hash of the job fingerprint — the same
// string that addresses the result cache — so it is deterministic
// across processes and hosts, independent of submission order, and
// stable as long as the job's parameters (and CacheSalt) are stable.
// Shards therefore partition any job set exactly: every job belongs to
// one and only one shard.
type ShardSpec struct {
	// Index is this process's shard in [0, Total).
	Index int
	// Total is the number of shards; <= 1 means unsharded.
	Total int
}

// ParseShardSpec parses the "i/M" form used by the -shard flag.
func ParseShardSpec(s string) (ShardSpec, error) {
	idx, total, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("engine: shard spec %q: want \"i/M\"", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(idx))
	m, err2 := strconv.Atoi(strings.TrimSpace(total))
	if err1 != nil || err2 != nil {
		return ShardSpec{}, fmt.Errorf("engine: shard spec %q: want \"i/M\"", s)
	}
	spec := ShardSpec{Index: i, Total: m}
	return spec, spec.Validate()
}

// Validate reports whether the spec is realisable.
func (s ShardSpec) Validate() error {
	if s.Total < 0 || s.Index < 0 {
		return fmt.Errorf("engine: shard %d/%d: negative", s.Index, s.Total)
	}
	if s.Total > 0 && s.Index >= s.Total {
		return fmt.Errorf("engine: shard index %d outside [0, %d)", s.Index, s.Total)
	}
	return nil
}

// Sharded reports whether the spec actually splits work.
func (s ShardSpec) Sharded() bool { return s.Total > 1 }

// String renders the spec in the "i/M" flag form.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Total) }

// Owns reports whether this shard computes the job with the given
// fingerprint. Unsharded specs own everything, as do uncacheable jobs
// (empty fingerprint): a job that cannot publish its result through
// the shared cache is useless to compute remotely, so every shard that
// needs it computes it locally.
func (s ShardSpec) Owns(fingerprint string) bool {
	if !s.Sharded() || fingerprint == "" {
		return true
	}
	return ShardOf(fingerprint, s.Total) == s.Index
}

// ShardOf maps a job fingerprint onto one of total shards by content
// hash (first 8 bytes of sha256, big-endian, mod total). total <= 1
// always maps to shard 0.
func ShardOf(fingerprint string, total int) int {
	if total <= 1 {
		return 0
	}
	sum := sha256.Sum256([]byte(fingerprint))
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(total))
}

// MissingJob identifies one cacheable job a cache-only run could not
// satisfy, together with the shard responsible for computing it.
type MissingJob struct {
	Name        string
	Fingerprint string
}

// MissingError aggregates every cache miss of a cache-only Run. The
// merge step reports it instead of recomputing: the listed jobs belong
// to shards that have not (yet) published their results.
type MissingError struct {
	Jobs []MissingJob
}

// Error implements error.
func (e *MissingError) Error() string {
	return fmt.Sprintf("engine: cache-only run: %d job(s) not in cache", len(e.Jobs))
}

// MissingShards returns the sorted distinct shard indices (under a
// total-shard split) responsible for the missing jobs.
func (e *MissingError) MissingShards(total int) []int {
	seen := make(map[int]bool)
	for _, j := range e.Jobs {
		seen[ShardOf(j.Fingerprint, total)] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ { // insertion sort: the slice is tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
