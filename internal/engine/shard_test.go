package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestParseShardSpec(t *testing.T) {
	good := map[string]ShardSpec{
		"0/1":   {0, 1},
		"0/2":   {0, 2},
		"1/2":   {1, 2},
		"7/16":  {7, 16},
		" 1/2 ": {1, 2}, // Cut splits on "/", fields are trimmed
	}
	for in, want := range good {
		got, err := ParseShardSpec(in)
		if err != nil || got != want {
			t.Errorf("ParseShardSpec(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "1", "2/2", "3/2", "-1/2", "1/-2", "a/b", "1/2/3"} {
		if _, err := ParseShardSpec(in); err == nil {
			t.Errorf("ParseShardSpec(%q) succeeded, want error", in)
		}
	}
}

// TestShardAssignmentPartitions: every fingerprint is owned by exactly
// one of the M shards, assignment is deterministic, and ShardOf stays
// within range.
func TestShardAssignmentPartitions(t *testing.T) {
	const total = 3
	specs := make([]ShardSpec, total)
	for i := range specs {
		specs[i] = ShardSpec{Index: i, Total: total}
	}
	counts := make([]int, total)
	for i := 0; i < 200; i++ {
		fp := Fingerprint("shard-test", i, float64(i)*0.25)
		s := ShardOf(fp, total)
		if s != ShardOf(fp, total) {
			t.Fatalf("ShardOf(%q) not deterministic", fp)
		}
		if s < 0 || s >= total {
			t.Fatalf("ShardOf(%q, %d) = %d out of range", fp, total, s)
		}
		owners := 0
		for _, spec := range specs {
			if spec.Owns(fp) {
				owners++
				if spec.Index != s {
					t.Fatalf("shard %v owns %q but ShardOf says %d", spec, fp, s)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("fingerprint %q owned by %d shards, want exactly 1", fp, owners)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shard %d owns no fingerprints out of 200: degenerate assignment", i)
		}
	}
}

// TestUnshardedAndUncacheableAlwaysOwned: the zero spec owns everything
// and every shard owns fingerprint-less jobs (they cannot publish
// through the cache, so skipping them anywhere would lose them
// everywhere).
func TestUnshardedAndUncacheableAlwaysOwned(t *testing.T) {
	if !(ShardSpec{}).Owns("anything") {
		t.Error("zero ShardSpec must own every job")
	}
	for i := 0; i < 4; i++ {
		if !(ShardSpec{Index: i, Total: 4}).Owns("") {
			t.Errorf("shard %d/4 must own uncacheable (empty-fingerprint) jobs", i)
		}
	}
}

// countJob is a cacheable job that counts its executions.
func countJob(name string, runs *atomic.Int64) Job {
	return JobFunc{
		JobName:  name,
		Key:      Fingerprint("count-job", name),
		EncodeFn: func(v any) ([]byte, error) { return json.Marshal(v) },
		DecodeFn: func(b []byte) (any, error) {
			var x float64
			err := json.Unmarshal(b, &x)
			return x, err
		},
		Fn: func(context.Context) (any, error) {
			runs.Add(1)
			return float64(len(name)), nil
		},
	}
}

// TestShardedEngineSkipsUnownedJobs: a sharded engine executes exactly
// its own jobs; the rest come back Skipped without running, and
// uncacheable jobs run on every shard.
func TestShardedEngineSkipsUnownedJobs(t *testing.T) {
	const total = 2
	var jobs []Job
	var runs atomic.Int64
	for i := 0; i < 10; i++ {
		jobs = append(jobs, countJob(fmt.Sprintf("job-%d", i), &runs))
	}
	var uncacheable atomic.Int64
	jobs = append(jobs, JobFunc{JobName: "uncacheable",
		Fn: func(context.Context) (any, error) { uncacheable.Add(1); return 1, nil }})

	executed := 0
	for idx := 0; idx < total; idx++ {
		runs.Store(0)
		eng := New(Config{Workers: 2, Shard: ShardSpec{Index: idx, Total: total}})
		results, err := eng.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Name == "uncacheable" {
				if r.Skipped {
					t.Fatalf("shard %d skipped the uncacheable job", idx)
				}
				continue
			}
			owns := eng.Shard().Owns(jobs[i].(JobFunc).Key)
			if owns == r.Skipped {
				t.Fatalf("shard %d: job %q owned=%v but Skipped=%v", idx, r.Name, owns, r.Skipped)
			}
			if r.Skipped && r.Value != nil {
				t.Fatalf("skipped job %q carries a value", r.Name)
			}
		}
		executed += int(runs.Load())
	}
	if executed != 10 {
		t.Fatalf("shards executed %d cacheable jobs in total, want exactly 10 (a partition)", executed)
	}
	if n := uncacheable.Load(); n != total {
		t.Fatalf("uncacheable job ran %d times, want once per shard (%d)", n, total)
	}
}

// TestCacheOnlyReportsMissing: a cache-only engine never computes a
// cacheable job — present entries come from the cache, absent ones
// come back Missing, and Run aggregates them into one *MissingError
// (draining the whole batch rather than failing fast, so the merge
// step can report every missing shard at once). Uncacheable jobs still
// execute.
func TestCacheOnlyReportsMissing(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	warm := countJob("warm", &runs)
	cold1 := countJob("cold-1", &runs)
	cold2 := countJob("cold-2", &runs)

	// Publish only "warm" into the shared cache.
	pub := New(Config{Workers: 1, Cache: NewCache(dir, "shard-test-salt")})
	if _, err := pub.Run(context.Background(), []Job{warm}); err != nil {
		t.Fatal(err)
	}

	runs.Store(0)
	var uncacheable atomic.Int64
	eng := New(Config{Workers: 2, CacheOnly: true, Cache: NewCache(dir, "shard-test-salt")})
	results, err := eng.Run(context.Background(), []Job{warm, cold1, cold2, JobFunc{
		JobName: "uncacheable",
		Fn:      func(context.Context) (any, error) { uncacheable.Add(1); return 1, nil },
	}})

	var missing *MissingError
	if !errors.As(err, &missing) {
		t.Fatalf("err = %v, want *MissingError", err)
	}
	if len(missing.Jobs) != 2 {
		t.Fatalf("MissingError lists %d jobs, want 2 (the whole batch drains): %+v",
			len(missing.Jobs), missing.Jobs)
	}
	if runs.Load() != 0 {
		t.Fatalf("cache-only engine computed %d cacheable jobs, want 0", runs.Load())
	}
	if uncacheable.Load() != 1 {
		t.Fatal("cache-only engine must still execute uncacheable jobs")
	}
	if !results[0].FromCache {
		t.Error("warm job not served from cache")
	}
	if !results[1].Missing || !results[2].Missing {
		t.Errorf("cold jobs not marked Missing: %+v, %+v", results[1], results[2])
	}

	// The missing jobs map back to the shards that must (re)run.
	want := map[int]bool{}
	for _, j := range missing.Jobs {
		want[ShardOf(j.Fingerprint, 4)] = true
	}
	got := missing.MissingShards(4)
	if len(got) != len(want) {
		t.Fatalf("MissingShards(4) = %v, want the owners of %+v", got, missing.Jobs)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("MissingShards not sorted ascending: %v", got)
		}
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("MissingShards(4) = %v includes shard %d which owns nothing missing", got, s)
		}
	}
}
