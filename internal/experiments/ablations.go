package experiments

import (
	"fmt"
	"math"

	"sensornet/internal/analytic"
	"sensornet/internal/metrics"
	"sensornet/internal/optimize"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
	"sensornet/internal/trace"
)

// CollisionProfile explains the bell curves mechanistically: at one
// density it sweeps the broadcast probability and measures, in the
// simulator, the fraction of reception opportunities destroyed by
// collisions alongside the achieved reachability.
func CollisionProfile(pre Preset, rho float64) (*FigureResult, error) {
	f := &FigureResult{ID: "collisions",
		Title:  fmt.Sprintf("Collision profile of PB_CAM at rho=%g", rho),
		Series: map[string][]float64{}}
	t := Table{Title: fmt.Sprintf("channel outcome vs p (mean of %d runs)", pre.Runs)}
	t.Header = []string{"p", "reach@L", "deliveries", "collisions", "collision rate"}

	var rates, reach []float64
	for _, p := range pre.Grid {
		var sumRate, sumReach, sumDel, sumCol float64
		for r := 0; r < pre.Runs; r++ {
			var col trace.Collector
			cfg := pre.SimConfig(rho)
			cfg.Protocol = protocol.Probability{P: p}
			//lint:ignore seedderive sequential seeds pair replications across grid probabilities (variance reduction by common random numbers)
			cfg.Seed = pre.Seed + int64(r)
			cfg.Tracer = &col
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			sumRate += col.CollisionRate()
			sumReach += res.Timeline.ReachabilityAtPhase(pre.Constraints.Latency)
			tot := col.Totals()
			sumDel += float64(tot.Deliveries)
			sumCol += float64(tot.Collisions)
		}
		n := float64(pre.Runs)
		rates = append(rates, sumRate/n)
		reach = append(reach, sumReach/n)
		t.Add(fmt.Sprintf("%.2f", p), fmtF(sumReach/n), fmtF1(sumDel/n),
			fmtF1(sumCol/n), fmtF(sumRate/n))
	}
	f.Series["collisionRate"] = rates
	f.Series["reach"] = reach
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"reachability bells over p because the collision rate rises monotonically while the transmission count grows")
	return f, nil
}

// SlotSweep studies the backoff window: the paper fixes s = 3 slots per
// phase; this ablation sweeps s in the analytical model and reports the
// optimal probability and achievable reachability for each, at one
// density.
func SlotSweep(rho float64, slots []int, grid []float64, c optimize.Constraints) (*FigureResult, error) {
	f := &FigureResult{ID: "slots",
		Title:  fmt.Sprintf("Backoff slots per phase (analytic, rho=%g)", rho),
		Series: map[string][]float64{}}
	t := Table{Title: "optimal operating point vs slots per phase"}
	t.Header = []string{"s", "optimal p", "reach@L", "latency-to-target @ opt"}

	var optPs, reachs []float64
	for _, s := range slots {
		cfg := analytic.Config{P: 5, S: s, Rho: rho}
		pts, err := optimize.SweepAnalytic(cfg, grid, c)
		if err != nil {
			return nil, err
		}
		o, ok := optimize.MaxReachAtLatency(pts)
		if !ok {
			return nil, fmt.Errorf("experiments: no optimum for s=%d", s)
		}
		// Latency at the same operating point.
		lat := math.NaN()
		for _, pt := range pts {
			//lint:ignore floateq o.P is a verbatim copy of one pts[i].P; this looks up that same point by identity
			if pt.P == o.P {
				lat = pt.Latency
			}
		}
		t.Add(fmt.Sprintf("%d", s), fmt.Sprintf("%.2f", o.P), fmtF(o.Value), fmtF(lat))
		optPs = append(optPs, o.P)
		reachs = append(reachs, o.Value)
	}
	f.Series["optimalP"] = optPs
	f.Series["optimalReach"] = reachs
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"more slots thin out per-slot contention, so the optimal p rises with s while the achievable reachability improves with diminishing returns")
	return f, nil
}

// FieldScaling fixes the density and grows the field radius P,
// reporting how far and how fast the broadcast travels: the paper's
// O(P·r) latency intuition, quantified on the collision-aware model.
func FieldScaling(rho float64, fields []int, p float64, c optimize.Constraints) (*FigureResult, error) {
	f := &FigureResult{ID: "field",
		Title:  fmt.Sprintf("Field-radius scaling (analytic, rho=%g, p=%g)", rho, p),
		Series: map[string][]float64{}}
	t := Table{Title: "reach and latency vs field radius P"}
	t.Header = []string{"P", "N", "final reach", "latency to target", "broadcasts to target"}

	var lats []float64
	for _, pp := range fields {
		cfg := analytic.Config{P: pp, S: 3, Rho: rho, Prob: p, MaxPhases: 4 * pp}
		res, err := analytic.Run(cfg)
		if err != nil {
			return nil, err
		}
		tl := res.Timeline
		lat, ok := tl.LatencyToReach(c.Reach)
		latS := "-"
		if ok {
			latS = fmt.Sprintf("%.2f", lat)
		} else {
			lat = math.NaN()
		}
		bc, okB := tl.BroadcastsToReach(c.Reach)
		bcS := "-"
		if okB {
			bcS = fmt.Sprintf("%.1f", bc)
		}
		t.Add(fmt.Sprintf("%d", pp), fmt.Sprintf("%.0f", res.N),
			fmtF(tl.FinalReachability()), latS, bcS)
		lats = append(lats, lat)
	}
	f.Series["latency"] = lats
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"latency grows linearly in the field radius: the collision-aware wavefront still advances O(1) rings per phase at a well-chosen p")
	return f, nil
}

// timelineAt is a small helper for tests: the analytic timeline at one
// configuration.
func timelineAt(pp, s int, rho, p float64) (metrics.Timeline, error) {
	res, err := analytic.Run(analytic.Config{P: pp, S: s, Rho: rho, Prob: p})
	if err != nil {
		return metrics.Timeline{}, err
	}
	return res.Timeline, nil
}
