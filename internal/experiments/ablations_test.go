package experiments

import (
	"math"
	"testing"

	"sensornet/internal/mathx"
	"sensornet/internal/optimize"
)

func TestCollisionProfileShape(t *testing.T) {
	pre := QuickSim()
	pre.Rhos = []float64{60}
	pre.Grid = []float64{0.05, 0.3, 1}
	pre.Runs = 3
	f, err := CollisionProfile(pre, 60)
	if err != nil {
		t.Fatal(err)
	}
	rates := f.Series["collisionRate"]
	if len(rates) != 3 {
		t.Fatalf("series length %d", len(rates))
	}
	// Collision rate rises monotonically with p.
	if !(rates[0] < rates[2]) {
		t.Fatalf("collision rate should rise with p: %v", rates)
	}
	for _, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate %v outside [0,1]", r)
		}
	}
}

func TestSlotSweepShape(t *testing.T) {
	grid := mathx.Range(0.02, 1, 0.02)
	c := optimize.Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	f, err := SlotSweep(80, []int{1, 3, 8}, grid, c)
	if err != nil {
		t.Fatal(err)
	}
	optP := f.Series["optimalP"]
	reach := f.Series["optimalReach"]
	// More slots -> weakly larger optimal p and better reachability.
	if !(optP[2] >= optP[0]) {
		t.Fatalf("optimal p should rise with slots: %v", optP)
	}
	if !(reach[2] > reach[0]) {
		t.Fatalf("reachability should improve with slots: %v", reach)
	}
}

func TestSlotSweepErrorPropagation(t *testing.T) {
	c := optimize.Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	if _, err := SlotSweep(80, []int{0}, []float64{0.1}, c); err == nil {
		t.Fatal("invalid slot count should error")
	}
}

func TestFieldScalingLatencyLinear(t *testing.T) {
	c := optimize.Constraints{Latency: 5, Reach: 0.5, Budget: 35}
	f, err := FieldScaling(80, []int{3, 6, 9}, 0.15, c)
	if err != nil {
		t.Fatal(err)
	}
	lats := f.Series["latency"]
	for _, l := range lats {
		if math.IsNaN(l) {
			t.Fatalf("latency infeasible: %v", lats)
		}
	}
	// Monotone growth with P...
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("latency should grow with field radius: %v", lats)
	}
	// ...and roughly linear: the increment 6->9 is within 2.5x of the
	// increment 3->6.
	d1, d2 := lats[1]-lats[0], lats[2]-lats[1]
	if d2 > 2.5*d1 || d1 > 2.5*d2 {
		t.Fatalf("latency growth far from linear: %v", lats)
	}
}

func TestTimelineAtHelper(t *testing.T) {
	tl, err := timelineAt(5, 3, 60, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Valid() {
		t.Fatal("helper timeline invalid")
	}
	if _, err := timelineAt(0, 3, 60, 0.2); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestSchemeComparison(t *testing.T) {
	pre := QuickSim()
	pre.Runs = 3
	f, err := SchemeComparison(pre, []float64{40})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tables) != 1 {
		t.Fatalf("tables = %d, want 1", len(f.Tables))
	}
	if len(f.Tables[0].Rows) != 7 {
		t.Fatalf("schemes = %d, want 7", len(f.Tables[0].Rows))
	}
	if c := f.Series["lawC"][0]; c < 10 || c > 16 {
		t.Fatalf("law constant %v implausible", c)
	}
}

func TestHeterogeneity(t *testing.T) {
	pre := QuickSim()
	pre.Runs = 4
	f, err := Heterogeneity(pre, 60)
	if err != nil {
		t.Fatal(err)
	}
	reach := f.Series["reachAtL"]
	if len(reach) != 3 {
		t.Fatalf("series length %d", len(reach))
	}
	// Degree-adaptive (index 2) should not trail the global fixed p
	// (index 1) on the hotspot field by any meaningful margin.
	if reach[2] < reach[1]-0.05 {
		t.Fatalf("degree-adaptive %v trails fixed p %v on heterogeneous field",
			reach[2], reach[1])
	}
}

func TestRefinedCFM(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{20, 60, 100}
	f, err := RefinedCFM(pre, 2)
	if err != nil {
		t.Fatal(err)
	}
	lat := f.Series["refinedLatency"]
	if len(lat) != 3 {
		t.Fatalf("series length %d", len(lat))
	}
	// Refined latency grows with density (honest costs), unlike the
	// naive CFM's constant P rounds.
	if !(lat[2] > lat[0]) {
		t.Fatalf("refined latency should grow with density: %v", lat)
	}
	if f.Series["fitTimeAt100"][0] < 50 {
		t.Fatalf("fitted t_f(100) = %v too small", f.Series["fitTimeAt100"][0])
	}
}

func TestJointDesign(t *testing.T) {
	pre := QuickSim()
	pre.Runs = 6
	pre.Grid = mathx.Range(0.04, 1, 0.04)
	f, err := JointDesign(pre, 100, 15, []int{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	simReach := f.Series["simReach"]
	if len(simReach) != 3 {
		t.Fatalf("series length %d", len(simReach))
	}
	// The finding both engines agree on: s=1 beats s=6 under a fixed
	// slot budget, with s=3 in between or below s=1.
	if !(simReach[0] > simReach[2]) {
		t.Fatalf("s=1 should beat s=6 under a slot budget: %v", simReach)
	}
	ana := f.Series["analyticReach"]
	if !(ana[0] > ana[2]) {
		t.Fatalf("analytic ordering should agree: %v", ana)
	}
}

func TestMuModeAblation(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{40, 120}
	pre.Grid = mathx.Range(0.04, 1, 0.04)
	f, err := MuModeAblation(pre)
	if err != nil {
		t.Fatal(err)
	}
	// Every mode preserves the headline shapes: p* decreases with
	// density and the plateau stays flat per mode.
	for _, name := range []string{"linear", "poisson", "round", "binomial"} {
		ps := f.Series[name+"P"]
		reach := f.Series[name+"Reach"]
		if len(ps) != 2 || len(reach) != 2 {
			t.Fatalf("%s series incomplete: %v %v", name, ps, reach)
		}
		if !(ps[1] < ps[0]) {
			t.Fatalf("%s: optimal p should fall with density: %v", name, ps)
		}
		if math.Abs(reach[1]-reach[0]) > 0.1 {
			t.Fatalf("%s: plateau not flat: %v", name, reach)
		}
	}
}
