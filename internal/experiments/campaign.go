package experiments

import (
	"context"
	"fmt"
	"io"

	"sensornet/internal/engine"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// Campaign runs a set of figures and renders them to one writer.
type Campaign struct {
	Analytic Preset
	Sim      Preset
	// SkipSim drops the simulated figures (8-11 and the simulated
	// success-rate table), for fast analytic-only reports.
	SkipSim bool
	// Extras enables the CFM baseline and carrier-sense ablation.
	Extras bool
	// Engine, when non-nil, executes the campaign's jobs; a default
	// engine (GOMAXPROCS workers, no cache) is used otherwise.
	Engine *engine.Engine
}

// campaignOrder is the canonical emission order: figures are rendered
// and returned in this sequence no matter how the engine schedules the
// underlying jobs, so campaign reports and CSV dumps are byte-identical
// for any worker count.
var campaignOrder = []string{
	"fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "fig10", "fig11", "fig12sim",
	"fig12",
	"cfm", "carrier", "costfn", "slots", "field", "percolation",
}

// Run executes the campaign, streaming each figure to w as it
// completes, and returns all results.
func (c Campaign) Run(w io.Writer) ([]*FigureResult, error) {
	return c.RunContext(context.Background(), w)
}

// RunContext executes the campaign on the engine: every surface row
// (analytic and simulated) is submitted as one concurrent batch, then
// the figures that run their own model evaluations form a second
// batch, and the results are emitted in canonical order. Cancelling
// ctx aborts outstanding jobs and returns an error wrapping the
// context's cause.
func (c Campaign) RunContext(ctx context.Context, w io.Writer) ([]*FigureResult, error) {
	eng := c.Engine
	if eng == nil {
		eng = defaultEngine(c.Analytic)
	}

	// Batch 1: the metric surfaces behind Figs. 4-11 — one job per
	// (density, probability) point for the analytic engine, one per
	// density row for the simulator (whose rows share per-replication
	// deployments internally and are too coarse to split further
	// without resampling them).
	jobs := analyticPointJobs(c.Analytic)
	nAnalytic := len(jobs)
	if !c.SkipSim {
		for _, rho := range c.Sim.Rhos {
			jobs = append(jobs, simRowJob(c.Sim, rho, eng.Workers()))
		}
	}
	rows, err := eng.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	surf, err := analyticSurfaceFromPoints(c.Analytic, rows[:nAnalytic])
	if err != nil {
		return nil, err
	}
	var simSurf *Surface
	if !c.SkipSim {
		if simSurf, err = surfaceFromResults(c.Sim, rows[nAnalytic:], true); err != nil {
			return nil, err
		}
	}

	figs := map[string]*FigureResult{
		"fig4": Fig4(surf), "fig5": Fig5(surf),
		"fig6": Fig6(surf), "fig7": Fig7(surf),
	}
	if simSurf != nil {
		figs["fig8"], figs["fig9"] = Fig8(simSurf), Fig9(simSurf)
		figs["fig10"], figs["fig11"] = Fig10(simSurf), Fig11(simSurf)
	}

	// Batch 2: figures that evaluate the models themselves.
	var figJobs []engine.Job
	addFig := func(id string, fn func(ctx context.Context) (*FigureResult, error)) {
		figJobs = append(figJobs, engine.JobFunc{
			JobName: id,
			Fn: func(ctx context.Context) (any, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return fn(ctx)
			},
		})
	}
	if simSurf != nil {
		addFig("fig12sim", func(ctx context.Context) (*FigureResult, error) {
			return simSuccessRateCtx(ctx, c.Sim, simSurf, eng.Workers())
		})
	}
	addFig("fig12", func(context.Context) (*FigureResult, error) { return Fig12(surf) })
	if c.Extras {
		addFig("cfm", func(context.Context) (*FigureResult, error) {
			return CFMBaseline(c.Analytic)
		})
		addFig("carrier", func(context.Context) (*FigureResult, error) {
			return CarrierSenseAblation(c.Analytic)
		})
		addFig("costfn", func(context.Context) (*FigureResult, error) {
			return CostFunctions(c.Analytic, 5)
		})
		addFig("slots", func(context.Context) (*FigureResult, error) {
			return SlotSweep(80, []int{1, 2, 3, 4, 6, 8},
				c.Analytic.Grid, c.Analytic.Constraints)
		})
		addFig("field", func(context.Context) (*FigureResult, error) {
			return FieldScaling(80, []int{3, 5, 8, 12}, 0.15,
				c.Analytic.Constraints)
		})
		addFig("percolation", func(context.Context) (*FigureResult, error) {
			grid := make([]float64, 0, 12)
			for p := 0.35; p <= 0.9; p += 0.05 {
				grid = append(grid, p)
			}
			return Percolation(18, grid, 10, 1)
		})
	}
	derived, err := eng.Run(ctx, figJobs)
	if err != nil {
		return nil, err
	}
	for _, r := range derived {
		f, ok := r.Value.(*FigureResult)
		if !ok {
			return nil, fmt.Errorf("experiments: job %q returned %T, want *FigureResult",
				r.Name, r.Value)
		}
		figs[r.Name] = f
	}

	var out []*FigureResult
	for _, id := range campaignOrder {
		f, ok := figs[id]
		if !ok {
			continue
		}
		out = append(out, f)
		if w != nil {
			if err := f.Render(w); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SimSuccessRate measures the flooding success rate in the simulator
// per density and compares it with the simulated optimal probability
// from the Fig. 8 surface: the measured counterpart of Fig. 12.
func SimSuccessRate(pre Preset, surf *Surface) (*FigureResult, error) {
	return simSuccessRateCtx(context.Background(), pre, surf, pre.Workers)
}

func simSuccessRateCtx(ctx context.Context, pre Preset, surf *Surface, workers int) (*FigureResult, error) {
	f := &FigureResult{ID: "fig12sim",
		Title:  "Simulated flooding success rate vs optimal probability",
		Series: map[string][]float64{}}
	fig8 := Fig8(surf)
	optP := fig8.Series["optimalP"]

	t := Table{Title: "simulated success rate of flooding vs optimal p"}
	t.Header = []string{"rho", "success rate", "optimal p", "ratio"}
	var rates, ratios []float64
	for i, rho := range pre.Rhos {
		cfg := pre.SimConfig(rho)
		cfg.Protocol = protocol.Flooding{}
		agg, err := sim.RunManyCtx(ctx, cfg, pre.Runs, workers)
		if err != nil {
			return nil, err
		}
		rate := metrics.Summarize(agg.SuccessRates()).Mean
		ratio := optP[i] / rate
		rates = append(rates, rate)
		ratios = append(ratios, ratio)
		t.Add(fmt.Sprintf("%g", rho), fmtF(rate), fmtF(optP[i]), fmtF1(ratio))
	}
	f.Series["successRate"] = rates
	f.Series["optimalP"] = optP
	f.Series["ratio"] = ratios
	f.Tables = []Table{t}
	return f, nil
}
