package experiments

import (
	"fmt"
	"io"

	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// Campaign runs a set of figures and renders them to one writer.
type Campaign struct {
	Analytic Preset
	Sim      Preset
	// SkipSim drops the simulated figures (8-11 and the simulated
	// success-rate table), for fast analytic-only reports.
	SkipSim bool
	// Extras enables the CFM baseline and carrier-sense ablation.
	Extras bool
}

// Run executes the campaign, streaming each figure to w as it
// completes, and returns all results.
func (c Campaign) Run(w io.Writer) ([]*FigureResult, error) {
	var out []*FigureResult
	emit := func(f *FigureResult, err error) error {
		if err != nil {
			return err
		}
		out = append(out, f)
		if w != nil {
			return f.Render(w)
		}
		return nil
	}

	surf, err := AnalyticSurface(c.Analytic)
	if err != nil {
		return nil, err
	}
	if err := emit(Fig4(surf), nil); err != nil {
		return nil, err
	}
	if err := emit(Fig5(surf), nil); err != nil {
		return nil, err
	}
	if err := emit(Fig6(surf), nil); err != nil {
		return nil, err
	}
	if err := emit(Fig7(surf), nil); err != nil {
		return nil, err
	}
	if !c.SkipSim {
		simSurf, err := SimSurface(c.Sim)
		if err != nil {
			return nil, err
		}
		if err := emit(Fig8(simSurf), nil); err != nil {
			return nil, err
		}
		if err := emit(Fig9(simSurf), nil); err != nil {
			return nil, err
		}
		if err := emit(Fig10(simSurf), nil); err != nil {
			return nil, err
		}
		if err := emit(Fig11(simSurf), nil); err != nil {
			return nil, err
		}
		if err := emit(SimSuccessRate(c.Sim, simSurf)); err != nil {
			return nil, err
		}
	}
	if err := emit(Fig12(surf)); err != nil {
		return nil, err
	}
	if c.Extras {
		if err := emit(CFMBaseline(c.Analytic)); err != nil {
			return nil, err
		}
		if err := emit(CarrierSenseAblation(c.Analytic)); err != nil {
			return nil, err
		}
		if err := emit(CostFunctions(c.Analytic, 5)); err != nil {
			return nil, err
		}
		if err := emit(SlotSweep(80, []int{1, 2, 3, 4, 6, 8},
			c.Analytic.Grid, c.Analytic.Constraints)); err != nil {
			return nil, err
		}
		if err := emit(FieldScaling(80, []int{3, 5, 8, 12}, 0.15,
			c.Analytic.Constraints)); err != nil {
			return nil, err
		}
		grid := make([]float64, 0, 12)
		for p := 0.35; p <= 0.9; p += 0.05 {
			grid = append(grid, p)
		}
		if err := emit(Percolation(18, grid, 10, 1)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SimSuccessRate measures the flooding success rate in the simulator
// per density and compares it with the simulated optimal probability
// from the Fig. 8 surface: the measured counterpart of Fig. 12.
func SimSuccessRate(pre Preset, surf *Surface) (*FigureResult, error) {
	f := &FigureResult{ID: "fig12sim",
		Title:  "Simulated flooding success rate vs optimal probability",
		Series: map[string][]float64{}}
	fig8 := Fig8(surf)
	optP := fig8.Series["optimalP"]

	t := Table{Title: "simulated success rate of flooding vs optimal p"}
	t.Header = []string{"rho", "success rate", "optimal p", "ratio"}
	var rates, ratios []float64
	for i, rho := range pre.Rhos {
		cfg := pre.SimConfig(rho)
		cfg.Protocol = protocol.Flooding{}
		agg, err := sim.RunMany(cfg, pre.Runs, pre.Workers)
		if err != nil {
			return nil, err
		}
		rate := metrics.Summarize(agg.SuccessRates()).Mean
		ratio := optP[i] / rate
		rates = append(rates, rate)
		ratios = append(ratios, ratio)
		t.Add(fmt.Sprintf("%g", rho), fmtF(rate), fmtF(optP[i]), fmtF1(ratio))
	}
	f.Series["successRate"] = rates
	f.Series["optimalP"] = optP
	f.Series["ratio"] = ratios
	f.Tables = []Table{t}
	return f, nil
}
