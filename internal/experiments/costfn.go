package experiments

import (
	"fmt"

	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/metrics"
	"sensornet/internal/reliable"
)

// CostFunctions realises the paper's concluding proposal: measure the
// real time and energy costs t_f(ρ), e_f(ρ) of a *reliable* broadcast
// (i.e. of implementing CFM on top of CAM) as functions of node
// density, for the two §3.2.1 realisations — ACK/retransmit and TDMA.
//
// The resulting cost functions are what a refined CFM would plug in so
// that collision pressure is visible to high-level algorithm design
// without exposing the collisions themselves.
func CostFunctions(pre Preset, seeds int) (*FigureResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	f := &FigureResult{ID: "costfn",
		Title:  "Empirical CFM cost functions t_f(rho), e_f(rho)",
		Series: map[string][]float64{}}
	t := Table{Title: "cost per reliable local broadcast (means over deployments)"}
	t.Header = []string{"rho", "ACK t_f (slots)", "ACK e_f (tx)", "TDMA frame",
		"TDMA t_f (slots)", "TDMA e_f (tx)"}

	var ackT, ackE, tdmaT []float64
	for _, rho := range pre.Rhos {
		var slots, txs, frames []float64
		for seed := int64(0); seed < int64(seeds); seed++ {
			// Deployment and protocol seeds are derived through the
			// engine's splitmix mixer: the former affine derivation
			// (seed*7919+rho) collided across nearby (seed, rho) pairs.
			dep, err := deploy.Generate(deploy.Config{
				P: pre.P, Rho: rho, WithSensing: true,
			}, seededRand(engine.DeriveSeed(seed, "costfn-deploy", rho)))
			if err != nil {
				return nil, err
			}
			ack, err := reliable.AckBroadcast(dep, 0, reliable.AckConfig{
				Window: pre.S, Adaptive: true,
				Seed: engine.DeriveSeed(seed, "costfn-ack", rho),
			})
			if err != nil {
				return nil, err
			}
			if ack.Complete {
				slots = append(slots, float64(ack.Slots))
				txs = append(txs, float64(ack.Transmissions))
			}
			sched, err := reliable.BuildTDMA(dep)
			if err != nil {
				return nil, err
			}
			frames = append(frames, float64(sched.FrameLen))
		}
		mSlots := metrics.Summarize(slots).Mean
		mTxs := metrics.Summarize(txs).Mean
		mFrame := metrics.Summarize(frames).Mean
		tdmaTime := mFrame/2 + 1
		t.Add(fmt.Sprintf("%g", rho), fmtF1(mSlots), fmtF1(mTxs),
			fmtF1(mFrame), fmtF1(tdmaTime), "1.0")
		ackT = append(ackT, mSlots)
		ackE = append(ackE, mTxs)
		tdmaT = append(tdmaT, tdmaTime)
	}
	f.Series["ackTime"] = ackT
	f.Series["ackEnergy"] = ackE
	f.Series["tdmaTime"] = tdmaT
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"both realisations of CFM pay density-dependent costs: ACK in energy and time, TDMA in frame latency",
		"a CFM with these cost functions retains its programming simplicity while pricing collisions honestly (paper §6)")
	return f, nil
}
