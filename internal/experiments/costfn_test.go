package experiments

import (
	"math"
	"testing"
)

func TestCostFunctionsShape(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{10, 40}
	f, err := CostFunctions(pre, 3)
	if err != nil {
		t.Fatal(err)
	}
	ackE := f.Series["ackEnergy"]
	tdmaT := f.Series["tdmaTime"]
	if len(ackE) != 2 || len(tdmaT) != 2 {
		t.Fatalf("series lengths wrong: %v", f.Series)
	}
	// Both cost functions grow with density.
	if !(ackE[1] > ackE[0]) {
		t.Fatalf("ACK energy should grow with density: %v", ackE)
	}
	if !(tdmaT[1] > tdmaT[0]) {
		t.Fatalf("TDMA latency should grow with density: %v", tdmaT)
	}
	for _, v := range append(append([]float64{}, ackE...), tdmaT...) {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("implausible cost value %v", v)
		}
	}
}

func TestCostFunctionsSeedsClamped(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{10}
	if _, err := CostFunctions(pre, 0); err != nil {
		t.Fatal(err)
	}
}
