package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"sensornet/internal/analytic"
	"sensornet/internal/engine"
	"sensornet/internal/faults"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
	"sensornet/internal/viz"
)

// degCell is the cached aggregate of one degradation grid cell: the
// mean, over replications, of one scheme's behaviour at one
// (crash rate, loss rate) point. Every field is finite, so the struct
// round-trips through the disk cache's JSON layer directly.
type degCell struct {
	// Coverage is the mean final reachability; ReachAtL the mean
	// reachability within the latency constraint.
	Coverage float64 `json:"coverage"`
	ReachAtL float64 `json:"reachAtL"`
	// Settle is the mean settling phase: the last phase in which any
	// node first received the payload (0 when the broadcast never
	// leaves the source).
	Settle     float64 `json:"settle"`
	Broadcasts float64 `json:"broadcasts"`
	// Delivered / LostColl / LostFault decompose reception outcomes per
	// run: decoded, destroyed by CAM collisions, and lost to the fault
	// plan (down nodes, lossy links).
	Delivered float64 `json:"delivered"`
	LostColl  float64 `json:"lostColl"`
	LostFault float64 `json:"lostFault"`
	// Crashed and Depleted are the mean realised node-fault counts.
	Crashed  float64 `json:"crashed"`
	Depleted float64 `json:"depleted"`
}

func encodeDegCell(v any) ([]byte, error) {
	cell, ok := v.(degCell)
	if !ok {
		return nil, fmt.Errorf("experiments: expected degCell, got %T", v)
	}
	return json.Marshal(cell)
}

func decodeDegCell(data []byte) (any, error) {
	var cell degCell
	err := json.Unmarshal(data, &cell)
	return cell, err
}

// settlePhase returns the last phase with a first reception.
func settlePhase(phaseNew []int) float64 {
	last := 0
	for i, n := range phaseNew {
		if n > 0 {
			last = i + 1
		}
	}
	return float64(last)
}

// degCellJob builds the cached job averaging one scheme's metrics over
// the preset's replications at one fault-rate point. Replications use
// sequential seeds so every cell of the grid sees the same deployments
// and — because the fault plan's streams derive from the run seed, not
// the rates — coupled fault draws: at a fixed replication the crashed
// set at a low rate is a subset of the crashed set at a high one.
func degCellJob(pre Preset, rho float64, schemeName string, scheme protocol.Protocol,
	crash, loss float64) engine.Job {

	cfg := pre.SimConfig(rho)
	cfg.Protocol = scheme
	cfg.Faults = &faults.Config{CrashRate: crash, LossRate: loss}
	key := engine.Fingerprint("deg-cell", CacheSalt,
		cfg.P, cfg.R, cfg.Rho, cfg.N, cfg.S, cfg.Model, cfg.Seed,
		cfg.Async, cfg.MaxPhases, schemeName, crash, loss,
		pre.Constraints.Latency, pre.Runs)
	return engine.JobFunc{
		JobName:  fmt.Sprintf("deg(%s,crash=%g,loss=%g)", schemeName, crash, loss),
		Key:      key,
		EncodeFn: encodeDegCell,
		DecodeFn: decodeDegCell,
		Fn: func(ctx context.Context) (any, error) {
			var cell degCell
			for r := 0; r < pre.Runs; r++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				run := cfg
				//lint:ignore seedderive sequential seeds pair replications across grid cells so rate sweeps share deployments and fault draws
				run.Seed = pre.Seed + int64(r)
				res, err := sim.Run(run)
				if err != nil {
					return nil, err
				}
				cell.Coverage += res.Timeline.FinalReachability()
				cell.ReachAtL += res.Timeline.ReachabilityAtPhase(pre.Constraints.Latency)
				cell.Settle += settlePhase(res.PhaseNew)
				cell.Broadcasts += float64(res.Broadcasts)
				cell.Delivered += float64(res.Delivered)
				cell.LostColl += float64(res.LostToCollision)
				cell.LostFault += float64(res.LostToFault)
				cell.Crashed += float64(res.Crashed)
				cell.Depleted += float64(res.Depleted)
			}
			n := float64(pre.Runs)
			cell.Coverage /= n
			cell.ReachAtL /= n
			cell.Settle /= n
			cell.Broadcasts /= n
			cell.Delivered /= n
			cell.LostColl /= n
			cell.LostFault /= n
			cell.Crashed /= n
			cell.Depleted /= n
			return cell, nil
		},
	}
}

// Degradation runs the graceful-degradation study on a default engine:
// see DegradationCtx.
func Degradation(pre Preset, rho float64, crashRates, lossRates []float64) (*FigureResult, error) {
	return DegradationCtx(context.Background(), defaultEngine(pre), pre, rho, crashRates, lossRates)
}

// degScheme pairs a compared scheme's display name with its protocol.
type degScheme struct {
	name  string
	proto protocol.Protocol
}

// degStudy is the normalised parameter set of one degradation study:
// the effective preset (horizon capped near the latency budget), the
// rate grids with defaults applied, the calibrated law, and the two
// schemes compared. Extracting it keeps the sharded job builder
// (DegradationJobs) and the figure assembly (DegradationCtx) agreed on
// job identity, so a shard process and the merge process address the
// same cache entries.
type degStudy struct {
	pre         Preset
	crash, loss []float64
	schemes     []degScheme
	law         analytic.OptimalProbabilityLaw
}

func newDegStudy(pre Preset, rho float64, crashRates, lossRates []float64) (*degStudy, error) {
	if pre.Runs < 1 {
		return nil, fmt.Errorf("experiments: degradation needs Runs >= 1, got %d", pre.Runs)
	}
	if len(crashRates) == 0 {
		crashRates = []float64{0, 0.1, 0.2, 0.4}
	}
	if len(lossRates) == 0 {
		lossRates = []float64{0, 0.1, 0.3}
	}
	if pre.MaxPhases == 0 {
		pre.MaxPhases = 2 * int(pre.Constraints.Latency)
		if pre.MaxPhases < 10 {
			pre.MaxPhases = 10
		}
	}
	law, err := analytic.CalibrateLaw(pre.P, pre.S, 60, pre.Constraints.Latency, 0.02)
	if err != nil {
		return nil, err
	}
	p := law.P(rho)
	return &degStudy{
		pre:   pre,
		crash: crashRates,
		loss:  lossRates,
		schemes: []degScheme{
			{"flooding", protocol.Flooding{}},
			{fmt.Sprintf("PB(p=%.2f)", p), protocol.Probability{P: p}},
		},
		law: law,
	}, nil
}

// jobs builds the study's cell-job batch, scheme-major in
// (schemes, crash, loss) order.
func (st *degStudy) jobs(rho float64) []engine.Job {
	var jobs []engine.Job
	for _, s := range st.schemes {
		for _, crash := range st.crash {
			for _, loss := range st.loss {
				jobs = append(jobs, degCellJob(st.pre, rho, s.name, s.proto, crash, loss))
			}
		}
	}
	return jobs
}

// DegradationCtx measures how flooding and the law-tuned PB_CAM degrade
// as node crashes and link loss intrude on the paper's collision-only
// failure model: coverage, latency-constrained reach, and settling time
// over a (crash rate × loss rate) grid at one density, averaged over
// the preset's replications with common random numbers. One cached
// engine job per (scheme, crash, loss) cell, so a killed study resumes
// from the cache. Crash phases are uniform over the horizon; when the
// preset leaves MaxPhases unset the study caps it near the latency
// budget so node death lands inside the broadcast window instead of
// long after it settles.
func DegradationCtx(ctx context.Context, eng *engine.Engine, pre Preset, rho float64,
	crashRates, lossRates []float64) (*FigureResult, error) {

	if err := surfaceEngineOK(eng); err != nil {
		return nil, err
	}
	st, err := newDegStudy(pre, rho, crashRates, lossRates)
	if err != nil {
		return nil, err
	}
	pre, crashRates, lossRates = st.pre, st.crash, st.loss
	law, schemes := st.law, st.schemes
	results, err := eng.Run(ctx, st.jobs(rho))
	if err != nil {
		return nil, err
	}

	f := &FigureResult{ID: "degradation",
		Title:  fmt.Sprintf("Graceful degradation under node crashes and link loss (rho = %g)", rho),
		Series: map[string][]float64{"crashRates": crashRates, "lossRates": lossRates}}
	chart := viz.NewChart("coverage vs crash rate")
	chart.XLabel, chart.YLabel = "crash rate", "coverage"
	idx := 0
	for _, s := range schemes {
		t := Table{Title: fmt.Sprintf("%s (mean of %d runs, horizon %d phases)",
			s.name, pre.Runs, pre.MaxPhases)}
		t.Header = []string{"crash", "loss", "coverage", "reach@L", "settle",
			"broadcasts", "delivered", "lost/coll", "lost/fault", "crashed"}
		coverage := make([]float64, 0, len(crashRates)*len(lossRates))
		for _, crash := range crashRates {
			for _, loss := range lossRates {
				cell, ok := results[idx].Value.(degCell)
				if !ok {
					return nil, fmt.Errorf("experiments: job %q returned %T, want degCell",
						results[idx].Name, results[idx].Value)
				}
				idx++
				t.Add(fmt.Sprintf("%.2f", crash), fmt.Sprintf("%.2f", loss),
					fmtF(cell.Coverage), fmtF(cell.ReachAtL), fmtF1(cell.Settle),
					fmtF1(cell.Broadcasts), fmtF1(cell.Delivered),
					fmtF1(cell.LostColl), fmtF1(cell.LostFault), fmtF1(cell.Crashed))
				coverage = append(coverage, cell.Coverage)
			}
		}
		f.Series["coverage:"+s.name] = coverage
		// One chart series per scheme at the clean-link column.
		clean := make([]float64, len(crashRates))
		for ci := range crashRates {
			clean[ci] = coverage[ci*len(lossRates)]
		}
		_ = chart.Add(s.name, crashRates, clean)
		f.Tables = append(f.Tables, t)
	}
	f.Charts = []string{chart.Render()}
	f.Notes = append(f.Notes,
		fmt.Sprintf("PB probability comes from the calibrated law p* = %.1f/rho", law.C),
		"replications share seeds across cells (common random numbers) and fault draws are coupled across rates, so the grid is comparable cell to cell",
		"coverage is cumulative reach: crashed nodes keep their delivered payload, but relay nothing after death")
	return f, nil
}
