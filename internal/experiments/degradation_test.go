package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func degPreset() Preset {
	pre := QuickSim()
	pre.Runs = 8
	return pre
}

func TestDegradationShape(t *testing.T) {
	pre := degPreset()
	crash := []float64{0, 0.3, 0.6}
	loss := []float64{0, 0.4}
	f, err := Degradation(pre, 20, crash, loss)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "degradation" || len(f.Tables) != 2 {
		t.Fatalf("figure shape: ID %q, %d tables", f.ID, len(f.Tables))
	}
	for _, tab := range f.Tables {
		if len(tab.Rows) != len(crash)*len(loss) {
			t.Fatalf("table %q has %d rows, want %d", tab.Title, len(tab.Rows), len(crash)*len(loss))
		}
		t.Logf("\n%s", tab)
	}
	for name, s := range f.Series {
		if strings.HasPrefix(name, "coverage:") && len(s) != len(crash)*len(loss) {
			t.Fatalf("series %q has %d points", name, len(s))
		}
	}
}

// TestDegradationDeterministic: two fresh runs of the study render
// byte-identical tables and series — the fault plans, deployments, and
// replication seeds are all pure functions of the preset.
func TestDegradationDeterministic(t *testing.T) {
	pre := degPreset()
	crash := []float64{0, 0.5}
	loss := []float64{0, 0.3}
	render := func() string {
		f, err := Degradation(pre, 20, crash, loss)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tab := range f.Tables {
			b.WriteString(tab.String())
		}
		for _, name := range []string{"coverage:flooding", "crashRates", "lossRates"} {
			fmt.Fprintf(&b, "%s=%v\n", name, f.Series[name])
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("degradation study is not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestDegradationMonotone: the acceptance property — mean coverage
// never improves as the crash rate or the loss rate rises, for either
// scheme. The coupled fault draws make this hold per-axis on the
// averaged grid.
func TestDegradationMonotone(t *testing.T) {
	pre := degPreset()
	crash := []float64{0, 0.25, 0.5, 0.75}
	loss := []float64{0, 0.25, 0.5}
	f, err := Degradation(pre, 20, crash, loss)
	if err != nil {
		t.Fatal(err)
	}
	for name, cov := range f.Series {
		if !strings.HasPrefix(name, "coverage:") {
			continue
		}
		at := func(ci, li int) float64 { return cov[ci*len(loss)+li] }
		const slack = 1e-9
		for li := range loss {
			for ci := 1; ci < len(crash); ci++ {
				if at(ci, li) > at(ci-1, li)+slack {
					t.Errorf("%s: coverage rose from %.4f to %.4f as crash rate %g -> %g (loss %g)",
						name, at(ci-1, li), at(ci, li), crash[ci-1], crash[ci], loss[li])
				}
			}
		}
		for ci := range crash {
			for li := 1; li < len(loss); li++ {
				if at(ci, li) > at(ci, li-1)+slack {
					t.Errorf("%s: coverage rose from %.4f to %.4f as loss rate %g -> %g (crash %g)",
						name, at(ci, li-1), at(ci, li), loss[li-1], loss[li], crash[ci])
				}
			}
		}
		// And the grid is not flat: the worst corner is strictly worse
		// than the clean corner.
		if !(at(len(crash)-1, len(loss)-1) < at(0, 0)) {
			t.Errorf("%s: faults did not degrade coverage (%.4f vs %.4f)",
				name, at(0, 0), at(len(crash)-1, len(loss)-1))
		}
	}
}
