// Integration tests for the experiments↔engine rewiring: determinism
// across worker counts, campaign cancellation, and campaign-level
// caching. External test package so that internal/export (which
// imports experiments) can verify CSV byte-identity without an import
// cycle.
package experiments_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/export"
)

func tinySimPreset() experiments.Preset {
	pre := experiments.QuickSim()
	pre.Rhos = []float64{30, 80}
	pre.Grid = []float64{0.05, 0.2, 0.6, 1}
	pre.Runs = 3
	return pre
}

// campaignArtifacts runs the full simulated campaign on an engine with
// the given worker count and returns the rendered report plus every
// figure's CSV bytes.
func campaignArtifacts(t *testing.T, workers int) (string, map[string][]byte) {
	t.Helper()
	pa := experiments.QuickAnalytic()
	pa.Rhos = []float64{40, 100}
	c := experiments.Campaign{
		Analytic: pa,
		Sim:      tinySimPreset(),
		Engine:   engine.New(engine.Config{Workers: workers}),
	}
	var report bytes.Buffer
	figs, err := c.RunContext(context.Background(), &report)
	if err != nil {
		t.Fatal(err)
	}
	csvs := make(map[string][]byte, len(figs))
	for _, f := range figs {
		var b bytes.Buffer
		if err := export.SeriesCSV(&b, f, pa.Rhos); err != nil {
			t.Fatal(err)
		}
		csvs[f.ID] = b.Bytes()
	}
	return report.String(), csvs
}

// TestCampaignByteIdenticalAcrossWorkerCounts is the acceptance
// property: with a fixed seed the campaign's figure CSVs (and the whole
// rendered report) are byte-identical between 1 worker and 8 workers.
func TestCampaignByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	report1, csv1 := campaignArtifacts(t, 1)
	report8, csv8 := campaignArtifacts(t, 8)
	if report1 != report8 {
		t.Fatal("campaign reports differ between 1 and 8 workers")
	}
	if len(csv1) != len(csv8) || len(csv1) == 0 {
		t.Fatalf("figure sets differ: %d vs %d", len(csv1), len(csv8))
	}
	for id, b1 := range csv1 {
		if !bytes.Equal(b1, csv8[id]) {
			t.Fatalf("figure %s CSV differs between 1 and 8 workers:\n%s\nvs\n%s",
				id, b1, csv8[id])
		}
	}
}

// TestCampaignOrderStable asserts the canonical emission order the CSV
// comparison implicitly depends on.
func TestCampaignOrderStable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	pa := experiments.QuickAnalytic()
	pa.Rhos = []float64{40, 100}
	c := experiments.Campaign{Analytic: pa, Sim: tinySimPreset(),
		Engine: engine.New(engine.Config{Workers: 8})}
	figs, err := c.RunContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12sim", "fig12"}
	if len(figs) != len(want) {
		t.Fatalf("got %d figures, want %d", len(figs), len(want))
	}
	for i, f := range figs {
		if f.ID != want[i] {
			t.Fatalf("figure %d is %s, want %s", i, f.ID, want[i])
		}
	}
}

// TestCampaignCancellationMidRun cancels a simulated campaign shortly
// after it starts: RunContext must return promptly with an error
// wrapping context.Canceled.
func TestCampaignCancellationMidRun(t *testing.T) {
	pre := experiments.PaperSim() // big enough to still be running
	pre.Rhos = []float64{60, 100, 140}
	c := experiments.Campaign{
		Analytic: experiments.QuickAnalytic(),
		Sim:      pre,
		Engine:   engine.New(engine.Config{Workers: 4}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.RunContext(ctx, nil)
	if err == nil {
		t.Fatal("cancelled campaign returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestCampaignCacheReusesSurfaces runs the same campaign twice on one
// cached engine and asserts the second pass is served from the cache
// while producing an identical report.
func TestCampaignCacheReusesSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	pa := experiments.QuickAnalytic()
	pa.Rhos = []float64{40, 100}
	cache := engine.NewCache(t.TempDir(), experiments.CacheSalt)
	eng := engine.New(engine.Config{Workers: 4, Cache: cache})
	c := experiments.Campaign{Analytic: pa, Sim: tinySimPreset(), Engine: eng}

	var first, second bytes.Buffer
	if _, err := c.RunContext(context.Background(), &first); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunContext(context.Background(), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("cached rerun produced a different report")
	}
	// Every surface row of the second pass (2 analytic + 2 sim) must be
	// a cache hit.
	if s := eng.Stats(); s.CacheHits < 4 {
		t.Fatalf("cache hits = %d, want >= 4 (stats %+v)", s.CacheHits, s)
	}
	if cs := cache.Stats(); cs.Stores < 4 {
		t.Fatalf("cache stores = %d, want >= 4", cs.Stores)
	}
}

// TestDegradationKillResumeByteIdentical is the crash-safety
// acceptance property: a degradation study context-cancelled halfway
// leaves its completed cells on disk; re-running with the same seed
// and cache directory completes from those cached rows and renders
// byte-identically to a never-interrupted run.
func TestDegradationKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated study in -short mode")
	}
	pre := experiments.QuickSim()
	pre.Runs = 3
	crash := []float64{0, 0.3}
	loss := []float64{0, 0.3}
	render := func(eng *engine.Engine, ctx context.Context) (string, error) {
		f, err := experiments.DegradationCtx(ctx, eng, pre, 20, crash, loss)
		if err != nil {
			return "", err
		}
		var b bytes.Buffer
		if err := f.Render(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	}

	// Reference: an uninterrupted run with no disk cache at all.
	want, err := render(engine.New(engine.Config{Workers: 1}), context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Kill the study after its second completed cell. Put runs before
	// the next job starts (workers=1), so both cells are on disk.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var done int
	killed := engine.New(engine.Config{
		Workers: 1,
		Cache:   engine.NewCache(dir, experiments.CacheSalt),
		OnEvent: func(ev engine.Event) {
			if ev.Kind == engine.EventDone {
				if done++; done == 2 {
					cancel()
				}
			}
		},
	})
	if _, err := render(killed, ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: err = %v, want context.Canceled", err)
	}

	// Resume: fresh engine, same cache dir, background context.
	resumed := engine.New(engine.Config{Workers: 1,
		Cache: engine.NewCache(dir, experiments.CacheSalt)})
	got, err := render(resumed, context.Background())
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if got != want {
		t.Fatalf("resumed study differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if s := resumed.Stats(); s.CacheHits < 2 {
		t.Fatalf("resume served %d cells from cache, want >= 2 (stats %+v)", s.CacheHits, s)
	}
}

// TestDiskCacheSurvivesEngineRestart exercises the JSON disk layer end
// to end: a fresh engine over the same cache directory must reuse the
// stored surface rows (including NaN round-tripping) and reproduce the
// report byte for byte.
func TestDiskCacheSurvivesEngineRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	dir := t.TempDir()
	pa := experiments.QuickAnalytic()
	pa.Rhos = []float64{40, 100}
	mk := func() experiments.Campaign {
		return experiments.Campaign{
			Analytic: pa, Sim: tinySimPreset(),
			Engine: engine.New(engine.Config{Workers: 4,
				Cache: engine.NewCache(dir, experiments.CacheSalt)}),
		}
	}
	var first, second bytes.Buffer
	if _, err := mk().RunContext(context.Background(), &first); err != nil {
		t.Fatal(err)
	}
	c2 := mk()
	if _, err := c2.RunContext(context.Background(), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("disk-cached rerun produced a different report")
	}
	if s := c2.Engine.Stats(); s.CacheHits < 4 {
		t.Fatalf("restarted engine cache hits = %d, want >= 4", s.CacheHits)
	}
	// The quick analytic surface contains infeasible (NaN) latency
	// cells at p=1 densities; reaching here means they round-tripped.
	if !strings.Contains(first.String(), "fig5") {
		t.Fatal("report missing fig5")
	}
}
