package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"sensornet/internal/analytic"
	"sensornet/internal/engine"
	"sensornet/internal/optimize"
	"sensornet/internal/sim"
)

// CacheSalt is the code-version salt mixed into every job fingerprint
// and into the engine.Cache address space: bump it whenever the
// analytic model, the simulator, or the sweep semantics change, so
// stale cache entries can never leak into a regenerated figure.
//
// v2: simulated sweeps share each replication's deployment across all
// grid probabilities (common random numbers) instead of resampling it
// per probability, and analytic surfaces shard per (density,
// probability) point instead of per density row.
//
// v3: the async engine's phase-boundary conventions were unified
// (boundary-valued receptions attribute to the phase they close, trace
// slots are node-local), which changes async simulation outputs.
const CacheSalt = "sensornet-exp-v3"

// defaultEngine builds the engine used by the context-free entry
// points, honouring the preset's worker bound.
func defaultEngine(pre Preset) *engine.Engine {
	return engine.New(engine.Config{Workers: pre.Workers})
}

// analyticPointKey fingerprints one analytic surface point: every field
// of the model config plus the probability and constraint levels.
func analyticPointKey(cfg analytic.Config, p float64, c optimize.Constraints) string {
	return engine.Fingerprint("analytic-point", CacheSalt,
		cfg.P, cfg.S, cfg.Rho, cfg.R, cfg.KMode, cfg.BinomialMix,
		cfg.CarrierSense, cfg.IntegrationPoints, cfg.MaxPhases,
		p, c.Latency, c.Reach, c.Budget)
}

// simRowKey fingerprints one simulated surface row. The worker count is
// deliberately excluded: it changes scheduling, never results.
func simRowKey(cfg sim.Config, grid []float64, c optimize.Constraints, runs int) string {
	return engine.Fingerprint("sim-row", CacheSalt,
		cfg.P, cfg.R, cfg.Rho, cfg.N, cfg.S, cfg.Model, cfg.Seed,
		cfg.Async, cfg.MaxPhases,
		grid, c.Latency, c.Reach, c.Budget, runs)
}

// pointJSON is the NaN-safe serialisation of optimize.Point: the
// constrained metrics are NaN when infeasible, which encoding/json
// rejects, so they round-trip as null.
type pointJSON struct {
	P             float64  `json:"p"`
	ReachAtL      *float64 `json:"reachAtL"`
	Latency       *float64 `json:"latency"`
	Broadcasts    *float64 `json:"broadcasts"`
	ReachAtBudget *float64 `json:"reachAtBudget"`
	SuccessRate   *float64 `json:"successRate"`
	Final         *float64 `json:"final"`
}

func toNullable(x float64) (*float64, error) {
	if math.IsNaN(x) {
		return nil, nil
	}
	if math.IsInf(x, 0) {
		return nil, fmt.Errorf("experiments: non-cacheable infinite metric")
	}
	return &x, nil
}

func fromNullable(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// encodePoints serialises a surface row for the disk cache layer.
func encodePoints(v any) ([]byte, error) {
	pts, ok := v.([]optimize.Point)
	if !ok {
		return nil, fmt.Errorf("experiments: expected []optimize.Point, got %T", v)
	}
	rows := make([]pointJSON, len(pts))
	for i, pt := range pts {
		var err error
		row := pointJSON{P: pt.P}
		if row.ReachAtL, err = toNullable(pt.ReachAtL); err != nil {
			return nil, err
		}
		if row.Latency, err = toNullable(pt.Latency); err != nil {
			return nil, err
		}
		if row.Broadcasts, err = toNullable(pt.Broadcasts); err != nil {
			return nil, err
		}
		if row.ReachAtBudget, err = toNullable(pt.ReachAtBudget); err != nil {
			return nil, err
		}
		if row.SuccessRate, err = toNullable(pt.SuccessRate); err != nil {
			return nil, err
		}
		if row.Final, err = toNullable(pt.Final); err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return json.Marshal(rows)
}

// decodePoints is the inverse of encodePoints.
func decodePoints(data []byte) (any, error) {
	var rows []pointJSON
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, err
	}
	pts := make([]optimize.Point, len(rows))
	for i, row := range rows {
		pts[i] = optimize.Point{
			P:             row.P,
			ReachAtL:      fromNullable(row.ReachAtL),
			Latency:       fromNullable(row.Latency),
			Broadcasts:    fromNullable(row.Broadcasts),
			ReachAtBudget: fromNullable(row.ReachAtBudget),
			SuccessRate:   fromNullable(row.SuccessRate),
			Final:         fromNullable(row.Final),
		}
	}
	return pts, nil
}

// analyticPointJob builds the cached job computing one analytic surface
// point (one grid probability at one density). Point-level sharding
// keeps every worker of a wide pool busy even when the preset sweeps
// few densities, and lets a warmed cache resume a partially computed
// row. The job's value is a 1-element []optimize.Point so the row cache
// codec is shared.
func analyticPointJob(pre Preset, rho, p float64) engine.Job {
	cfg := pre.AnalyticConfig(rho)
	return engine.JobFunc{
		JobName:  fmt.Sprintf("analytic-point(rho=%g,p=%g)", rho, p),
		Key:      analyticPointKey(cfg, p, pre.Constraints),
		EncodeFn: encodePoints,
		DecodeFn: decodePoints,
		Fn: func(ctx context.Context) (any, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return optimize.SweepAnalytic(cfg, []float64{p}, pre.Constraints)
		},
	}
}

// analyticPointJobs builds the full point-job batch of a preset's
// analytic surface, row-major in (Rhos, Grid) order.
func analyticPointJobs(pre Preset) []engine.Job {
	jobs := make([]engine.Job, 0, len(pre.Rhos)*len(pre.Grid))
	for _, rho := range pre.Rhos {
		for _, p := range pre.Grid {
			jobs = append(jobs, analyticPointJob(pre, rho, p))
		}
	}
	return jobs
}

// analyticSurfaceFromPoints reassembles point-job results (row-major in
// (Rhos, Grid) order, one 1-element []optimize.Point each) into a
// Surface.
func analyticSurfaceFromPoints(pre Preset, results []engine.Result) (*Surface, error) {
	if len(results) != len(pre.Rhos)*len(pre.Grid) {
		return nil, fmt.Errorf("experiments: %d point results for a %dx%d surface",
			len(results), len(pre.Rhos), len(pre.Grid))
	}
	s := &Surface{Pre: pre}
	for i := range pre.Rhos {
		row := make([]optimize.Point, 0, len(pre.Grid))
		for j := range pre.Grid {
			pts, ok := results[i*len(pre.Grid)+j].Value.([]optimize.Point)
			if !ok || len(pts) != 1 {
				return nil, fmt.Errorf("experiments: job %q returned %T, want 1-point []optimize.Point",
					results[i*len(pre.Grid)+j].Name, results[i*len(pre.Grid)+j].Value)
			}
			row = append(row, pts[0])
		}
		s.Points = append(s.Points, row)
	}
	return s, nil
}

// simRowJob builds the cached job computing one simulated surface row.
// Replications inside the row run through sim.RunManyCtx bounded by
// `workers`, so the engine's worker count composes with replication
// parallelism.
func simRowJob(pre Preset, rho float64, workers int) engine.Job {
	cfg := pre.SimConfig(rho)
	return engine.JobFunc{
		JobName:  fmt.Sprintf("sim-row(rho=%g)", rho),
		Key:      simRowKey(cfg, pre.Grid, pre.Constraints, pre.Runs),
		EncodeFn: encodePoints,
		DecodeFn: decodePoints,
		Fn: func(ctx context.Context) (any, error) {
			return optimize.SweepSimCtx(ctx, cfg, pre.Grid, pre.Constraints,
				pre.Runs, workers)
		},
	}
}

// surfaceFromResults assembles engine results (one []optimize.Point per
// density, in Rhos order) into a Surface.
func surfaceFromResults(pre Preset, results []engine.Result, simulated bool) (*Surface, error) {
	s := &Surface{Pre: pre, Simulated: simulated}
	for _, r := range results {
		pts, ok := r.Value.([]optimize.Point)
		if !ok {
			return nil, fmt.Errorf("experiments: job %q returned %T, want []optimize.Point",
				r.Name, r.Value)
		}
		s.Points = append(s.Points, pts)
	}
	return s, nil
}
