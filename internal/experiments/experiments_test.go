package experiments

import (
	"math"
	"strings"
	"testing"
)

// testSurface caches the quick analytic surface across tests in this
// package: computing it once keeps the suite fast.
var testSurface *Surface

func quickSurface(t *testing.T) *Surface {
	t.Helper()
	if testSurface == nil {
		s, err := AnalyticSurface(QuickAnalytic())
		if err != nil {
			t.Fatal(err)
		}
		testSurface = s
	}
	return testSurface
}

func TestPresetShapes(t *testing.T) {
	pa := PaperAnalytic()
	if len(pa.Rhos) != 7 || len(pa.Grid) != 100 {
		t.Fatalf("paper analytic preset wrong: %d rhos, %d grid", len(pa.Rhos), len(pa.Grid))
	}
	if pa.Constraints.Latency != 5 || pa.Constraints.Reach != 0.72 || pa.Constraints.Budget != 35 {
		t.Fatalf("paper analytic constraints wrong: %+v", pa.Constraints)
	}
	ps := PaperSim()
	if len(ps.Grid) != 20 || ps.Runs != 30 {
		t.Fatalf("paper sim preset wrong: %d grid, %d runs", len(ps.Grid), ps.Runs)
	}
	if ps.Constraints.Reach != 0.63 || ps.Constraints.Budget != 80 {
		t.Fatalf("paper sim constraints wrong: %+v", ps.Constraints)
	}
}

func TestSurfaceDimensions(t *testing.T) {
	s := quickSurface(t)
	if len(s.Points) != len(s.Pre.Rhos) {
		t.Fatalf("surface has %d rows, want %d", len(s.Points), len(s.Pre.Rhos))
	}
	for i, row := range s.Points {
		if len(row) != len(s.Pre.Grid) {
			t.Fatalf("row %d has %d points, want %d", i, len(row), len(s.Pre.Grid))
		}
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	f := Fig4(quickSurface(t))
	optP := f.Series["optimalP"]
	optV := f.Series["optimalValue"]
	if len(optP) != 4 {
		t.Fatalf("series length %d", len(optP))
	}
	// Optimal p decreases (weakly) with density and is small at 140.
	for i := 1; i < len(optP); i++ {
		if optP[i] > optP[i-1]+0.05 {
			t.Fatalf("optimal p not decreasing: %v", optP)
		}
	}
	if optP[len(optP)-1] > 0.2 {
		t.Fatalf("optimal p at rho=140 = %v, want small", optP[len(optP)-1])
	}
	// Achieved reachability roughly flat.
	lo, hi := optV[0], optV[0]
	for _, v := range optV {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 0.12 {
		t.Fatalf("optimal reachability not flat: %v", optV)
	}
	// Flooding trails the optimum at the highest density.
	flood := f.Series["flooding"]
	if flood[len(flood)-1] >= optV[len(optV)-1] {
		t.Fatalf("flooding %v should trail optimum %v", flood, optV)
	}
}

func TestFig5DualToFig4(t *testing.T) {
	s := quickSurface(t)
	f4 := Fig4(s)
	f5 := Fig5(s)
	// The paper's Fig. 5(b) optimal-p curve equals Fig. 4(b)'s when the
	// reach constraint equals the achieved optimum; with the fixed 0.72
	// constraint they still track closely.
	p4, p5 := f4.Series["optimalP"], f5.Series["optimalP"]
	for i := range p4 {
		if math.IsNaN(p5[i]) {
			continue
		}
		if math.Abs(p4[i]-p5[i]) > 0.15 {
			t.Fatalf("fig4/fig5 optimal p diverge at %d: %v vs %v", i, p4[i], p5[i])
		}
	}
	// Latency at optimum ~5 phases.
	for _, v := range f5.Series["optimalValue"] {
		if !math.IsNaN(v) && (v < 3 || v > 6) {
			t.Fatalf("optimal latency %v outside [3,6] phases", v)
		}
	}
}

func TestFig6EnergyOptimumSmall(t *testing.T) {
	f := Fig6(quickSurface(t))
	for i, p := range f.Series["optimalP"] {
		if math.IsNaN(p) {
			continue
		}
		if p > 0.15 {
			t.Fatalf("fig6 optimal p[%d] = %v, want within ~0.1", i, p)
		}
	}
}

func TestFig7BudgetShape(t *testing.T) {
	f := Fig7(quickSurface(t))
	optV := f.Series["optimalValue"]
	flood := f.Series["flooding"]
	for i := range optV {
		if flood[i] >= optV[i] {
			t.Fatalf("budgeted flooding should trail optimum: %v vs %v", flood[i], optV[i])
		}
	}
	// Flooding under a 35-broadcast budget reaches very little at high
	// density (paper: < 20%).
	if flood[len(flood)-1] > 0.3 {
		t.Fatalf("budgeted flooding at rho=140 = %v, want small", flood[len(flood)-1])
	}
}

func TestFig12RatioRoughlyConstant(t *testing.T) {
	f, err := Fig12(quickSurface(t))
	if err != nil {
		t.Fatal(err)
	}
	ratios := f.Series["ratio"]
	var clean []float64
	for _, r := range ratios {
		if !math.IsNaN(r) {
			clean = append(clean, r)
		}
	}
	if len(clean) < 3 {
		t.Fatalf("too few ratios: %v", ratios)
	}
	lo, hi := clean[0], clean[0]
	for _, r := range clean {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	// Paper: nearly constant (~11). Allow a generous band: the claim
	// is constancy, not the absolute value.
	if hi/lo > 2.0 {
		t.Fatalf("ratio not roughly constant: %v", ratios)
	}
}

func TestCFMBaseline(t *testing.T) {
	f, err := CFMBaseline(QuickAnalytic())
	if err != nil {
		t.Fatal(err)
	}
	loss := f.Series["collisionLoss"]
	// Collision loss grows with density.
	if !(loss[len(loss)-1] > loss[0]) {
		t.Fatalf("collision loss should grow with density: %v", loss)
	}
}

func TestCarrierSenseAblation(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{40, 100}
	pre.Grid = pre.Grid[:25] // p <= 0.5 is where the optima live
	f, err := CarrierSenseAblation(pre)
	if err != nil {
		t.Fatal(err)
	}
	plain, cs := f.Series["optimalP"], f.Series["optimalPCS"]
	for i := range plain {
		if cs[i] > plain[i]+0.05 {
			t.Fatalf("carrier sensing should push optimum down: %v vs %v", cs, plain)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "b"}}
	tb.Add("1", "2")
	tb.Add("3", "4")
	out := tb.String()
	for _, want := range []string{"demo", "a", "b", "1", "4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := Fig4(quickSurface(t))
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig4", "optimal", "rho=140"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q", want)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtF(math.NaN()) != "-" || fmtF1(math.NaN()) != "-" {
		t.Fatal("NaN should render as -")
	}
	if fmtF(0.5) != "0.500" || fmtF1(0.25) != "0.2" {
		t.Fatalf("formatting wrong: %s %s", fmtF(0.5), fmtF1(0.25))
	}
}

func TestCampaignAnalyticOnly(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{40, 100}
	c := Campaign{Analytic: pre, SkipSim: true}
	var b strings.Builder
	figs, err := c.Run(&b)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
	}
	for _, want := range []string{"fig4", "fig5", "fig6", "fig7", "fig12"} {
		if !ids[want] {
			t.Fatalf("campaign missing %s; got %v", want, ids)
		}
	}
	if !strings.Contains(b.String(), "fig6") {
		t.Fatal("campaign output not streamed")
	}
}

func TestSimFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	pre := QuickSim()
	pre.Rhos = []float64{30, 80}
	pre.Grid = []float64{0.05, 0.2, 0.6, 1}
	surf, err := SimSurface(pre)
	if err != nil {
		t.Fatal(err)
	}
	f8 := Fig8(surf)
	optV := f8.Series["optimalValue"]
	for _, v := range optV {
		if v <= 0 || v > 1 {
			t.Fatalf("simulated optimal reach %v implausible", v)
		}
	}
	// Denser network should not prefer a larger p.
	optP := f8.Series["optimalP"]
	if optP[1] > optP[0]+0.2 {
		t.Fatalf("simulated optimal p rising with density: %v", optP)
	}
	f12, err := SimSuccessRate(pre, surf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f12.Series["successRate"] {
		if r <= 0 || r >= 1 {
			t.Fatalf("simulated success rate %v implausible", r)
		}
	}
}
