package experiments

import (
	"fmt"

	"sensornet/internal/engine"
)

// needAnalytic and needSim map figure names onto the surface their
// rendering needs — also the cacheable job set the shard and
// distributed backends split.
var (
	needAnalytic = map[string]bool{"fig4": true, "fig5": true, "fig6": true,
		"fig7": true, "fig12": true}
	needSim = map[string]bool{"fig8": true, "fig9": true, "fig10": true,
		"fig11": true, "fig12sim": true}
)

// NeedsAnalyticSurface reports whether rendering the figure consumes
// the analytic (ρ, p) surface.
func NeedsAnalyticSurface(figure string) bool { return needAnalytic[figure] }

// NeedsSimSurface reports whether rendering the figure consumes the
// simulated surface.
func NeedsSimSurface(figure string) bool { return needSim[figure] }

// FigureJobs builds the cacheable job set behind the selected figure —
// the unit of work the -shard split, the -merge assembly, and the
// coordinator/worker backend all agree on. Both sides of a distributed
// run must call it with the same figure and presets, because the job
// fingerprints are the protocol's only job identity. workers bounds
// replication parallelism inside simulated rows; it never affects job
// identity.
func FigureJobs(figure string, pa, ps Preset, degRho float64,
	crashRates, lossRates, shootRhos []float64, skipSim bool, workers int) ([]engine.Job, error) {
	switch {
	case figure == "all":
		jobs := SurfaceJobs(pa, false, workers)
		if !skipSim {
			jobs = append(jobs, SurfaceJobs(ps, true, workers)...)
		}
		return jobs, nil
	case needAnalytic[figure]:
		return SurfaceJobs(pa, false, workers), nil
	case needSim[figure]:
		return SurfaceJobs(ps, true, workers), nil
	case figure == "degradation":
		return DegradationJobs(ps, degRho, crashRates, lossRates)
	case figure == "shootout":
		return ShootoutJobs(ps, shootRhos)
	default:
		return nil, fmt.Errorf("figure %q has no cacheable job set to distribute", figure)
	}
}
