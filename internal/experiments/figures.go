package experiments

import (
	"fmt"
	"math"

	"sensornet/internal/analytic"
	"sensornet/internal/optimize"
	"sensornet/internal/viz"
)

// figure assembles the standard two-table figure: the metric over the
// (p, ρ) grid, and the optimal probability per density with its
// achieved value.
func figure(s *Surface, id, title, metric string,
	val func(optimize.Point) float64,
	best func([]optimize.Point) (optimize.Optimum, bool)) *FigureResult {

	f := &FigureResult{ID: id, Title: title, Series: map[string][]float64{}}

	grid := Table{Title: fmt.Sprintf("%s vs broadcast probability and density", metric)}
	grid.Header = []string{"p"}
	for _, rho := range s.Pre.Rhos {
		grid.Header = append(grid.Header, fmt.Sprintf("rho=%g", rho))
	}
	for j, p := range s.Pre.Grid {
		row := []string{fmt.Sprintf("%.2f", p)}
		for i := range s.Pre.Rhos {
			row = append(row, fmtF(val(s.Points[i][j])))
		}
		grid.Add(row...)
	}

	opt := Table{Title: fmt.Sprintf("optimal probability and %s per density", metric)}
	opt.Header = []string{"rho", "optimal p", metric}
	var optP, optV []float64
	for i, rho := range s.Pre.Rhos {
		o, ok := best(s.Points[i])
		if !ok {
			opt.Add(fmt.Sprintf("%g", rho), "-", "-")
			optP = append(optP, math.NaN())
			optV = append(optV, math.NaN())
			continue
		}
		opt.Add(fmt.Sprintf("%g", rho), fmt.Sprintf("%.2f", o.P), fmtF(o.Value))
		optP = append(optP, o.P)
		optV = append(optV, o.Value)
	}
	f.Series["optimalP"] = optP
	f.Series["optimalValue"] = optV

	// The flooding column (p = 1) is the paper's baseline comparison.
	var flood []float64
	last := len(s.Pre.Grid) - 1
	for i := range s.Pre.Rhos {
		flood = append(flood, val(s.Points[i][last]))
	}
	f.Series["flooding"] = flood

	// Curve chart: the metric over p, one series per density.
	chart := viz.NewChart(fmt.Sprintf("%s vs p", metric))
	chart.XLabel, chart.YLabel = "p", metric
	for i, rho := range s.Pre.Rhos {
		ys := make([]float64, len(s.Pre.Grid))
		for j := range s.Pre.Grid {
			ys[j] = val(s.Points[i][j])
		}
		_ = chart.Add(fmt.Sprintf("rho=%g", rho), s.Pre.Grid, ys)
	}
	optChart := viz.NewChart("optimal p vs density")
	optChart.XLabel, optChart.YLabel = "rho", "p*"
	_ = optChart.Add("optimal p", s.Pre.Rhos, optP)
	f.Charts = []string{chart.Render(), optChart.Render()}

	f.Tables = []Table{grid, opt}
	return f
}

// Fig4 reproduces Fig. 4: analytic reachability of PB_CAM within the
// latency constraint, and the optimal probability curve.
func Fig4(s *Surface) *FigureResult {
	f := figure(s, "fig4", "Reachability of PB_CAM in 5 time phases (analytic)",
		"reachability",
		func(p optimize.Point) float64 { return p.ReachAtL },
		optimize.MaxReachAtLatency)
	f.Notes = append(f.Notes,
		"paper: optimal p decreases rapidly with density; achieved reachability ~flat (0.72 in the paper's calibration)",
		"paper: flooding (p=1) achieves ~0.55 of the optimum at rho=140")
	return f
}

// Fig5 reproduces Fig. 5: analytic latency to the reachability target.
func Fig5(s *Surface) *FigureResult {
	f := figure(s, "fig5",
		fmt.Sprintf("Latency of PB_CAM for %.0f%% reachability (analytic)", s.Pre.Constraints.Reach*100),
		"latency(phases)",
		func(p optimize.Point) float64 { return p.Latency },
		optimize.MinLatency)
	f.Notes = append(f.Notes,
		"paper: optimal probability curve identical to Fig. 4(b) (duality); ~5 phases at the optimum",
		"paper: flooding needs >8 phases at rho=140")
	return f
}

// Fig6 reproduces Fig. 6: analytic broadcast count (energy) to the
// reachability target.
func Fig6(s *Surface) *FigureResult {
	f := figure(s, "fig6",
		fmt.Sprintf("Energy (broadcast count) of PB_CAM for %.0f%% reachability (analytic)", s.Pre.Constraints.Reach*100),
		"broadcasts",
		func(p optimize.Point) float64 { return p.Broadcasts },
		optimize.MinBroadcasts)
	f.Notes = append(f.Notes,
		"paper: optimal p varies slowly within (0, 0.1] across the whole density range",
		"paper: optimal broadcast count stays within ~40; flooding costs ~N broadcasts")
	return f
}

// Fig7 reproduces Fig. 7: analytic reachability under the broadcast
// budget.
func Fig7(s *Surface) *FigureResult {
	f := figure(s, "fig7",
		fmt.Sprintf("Reachability of PB_CAM using <= %g broadcasts (analytic)", s.Pre.Constraints.Budget),
		"reachability",
		func(p optimize.Point) float64 { return p.ReachAtBudget },
		optimize.MaxReachAtBudget)
	f.Notes = append(f.Notes,
		"paper: optimal p close to 0 and near the Fig. 6(b) curve (duality); flooding reaches <20%")
	return f
}

// Fig8 reproduces Fig. 8, the simulated counterpart of Fig. 4.
func Fig8(s *Surface) *FigureResult {
	f := figure(s, "fig8", "Simulated reachability of PB_CAM in 5 time phases",
		"reachability",
		func(p optimize.Point) float64 { return p.ReachAtL },
		optimize.MaxReachAtLatency)
	f.Notes = append(f.Notes,
		"paper: matches Fig. 4 with achieved reachability ~0.63 across densities")
	return f
}

// Fig9 reproduces Fig. 9, the simulated counterpart of Fig. 5.
func Fig9(s *Surface) *FigureResult {
	f := figure(s, "fig9",
		fmt.Sprintf("Simulated latency of PB_CAM for %.0f%% reachability", s.Pre.Constraints.Reach*100),
		"latency(phases)",
		func(p optimize.Point) float64 { return p.Latency },
		optimize.MinLatency)
	f.Notes = append(f.Notes,
		"paper: optimal p close to Fig. 8(b); corresponding latency ~5 phases")
	return f
}

// Fig10 reproduces Fig. 10, the simulated counterpart of Fig. 6.
func Fig10(s *Surface) *FigureResult {
	f := figure(s, "fig10",
		fmt.Sprintf("Simulated energy cost of PB_CAM for %.0f%% reachability", s.Pre.Constraints.Reach*100),
		"broadcasts",
		func(p optimize.Point) float64 { return p.Broadcasts },
		optimize.MinBroadcasts)
	f.Notes = append(f.Notes,
		"paper: optimal p within 0.2 across densities; ~80 broadcasts at the optimum")
	return f
}

// Fig11 reproduces Fig. 11, the simulated counterpart of Fig. 7.
func Fig11(s *Surface) *FigureResult {
	f := figure(s, "fig11",
		fmt.Sprintf("Simulated reachability of PB_CAM using <= %g broadcasts", s.Pre.Constraints.Budget),
		"reachability",
		func(p optimize.Point) float64 { return p.ReachAtBudget },
		optimize.MaxReachAtBudget)
	f.Notes = append(f.Notes,
		"paper: optimal p almost within 0.2 across densities")
	return f
}

// Fig12 reproduces Fig. 12: the average broadcast success rate of
// simple flooding in CAM per density, compared against the optimal
// probability of Fig. 4(b). The paper observes their ratio is nearly
// constant (~11 in its calibration), suggesting density-free tuning.
func Fig12(s *Surface) (*FigureResult, error) {
	f := &FigureResult{ID: "fig12",
		Title:  "Flooding success rate vs optimal broadcast probability",
		Series: map[string][]float64{}}
	fig4 := Fig4(s)
	optP := fig4.Series["optimalP"]

	t := Table{Title: "success rate of flooding in CAM vs optimal p"}
	t.Header = []string{"rho", "success rate", "optimal p", "ratio"}
	var rates, ratios []float64
	for i, rho := range s.Pre.Rhos {
		cfg := s.Pre.AnalyticConfig(rho)
		cfg.Prob = 1
		cfg.TrackSuccessRate = true
		res, err := analytic.Run(cfg)
		if err != nil {
			return nil, err
		}
		rate := res.SuccessRate
		ratio := math.NaN()
		if rate > 0 {
			ratio = optP[i] / rate
		}
		rates = append(rates, rate)
		ratios = append(ratios, ratio)
		t.Add(fmt.Sprintf("%g", rho), fmtF(rate), fmtF(optP[i]), fmtF1(ratio))
	}
	f.Series["successRate"] = rates
	f.Series["optimalP"] = optP
	f.Series["ratio"] = ratios
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"paper: the ratio optimal-p/success-rate stays nearly constant across densities (~11)")
	return f, nil
}

// CFMBaseline reports the closed-form CFM flooding performance of §4
// next to the collision-aware analysis, quantifying how misleading CFM
// is at each density.
func CFMBaseline(pre Preset) (*FigureResult, error) {
	f := &FigureResult{ID: "cfm",
		Title:  "CFM flooding closed forms vs CAM flooding analysis",
		Series: map[string][]float64{}}
	t := Table{Title: "flooding under CFM vs CAM"}
	t.Header = []string{"rho", "CFM reach@5", "CAM reach@5", "CFM broadcasts", "CAM broadcasts to 72%"}
	var gap []float64
	for _, rho := range pre.Rhos {
		cfm := analytic.CFMFlooding(pre.P, rho)
		cfg := pre.AnalyticConfig(rho)
		cfg.Prob = 1
		cam, err := analytic.Run(cfg)
		if err != nil {
			return nil, err
		}
		camReach := cam.Timeline.ReachabilityAtPhase(pre.Constraints.Latency)
		camB, ok := cam.Timeline.BroadcastsToReach(pre.Constraints.Reach)
		if !ok {
			camB = math.NaN()
		}
		t.Add(fmt.Sprintf("%g", rho),
			fmtF(cfm.ReachabilityAtPhase(pre.Constraints.Latency)),
			fmtF(camReach),
			fmtF1(cfm.TotalBroadcasts()),
			fmtF1(camB))
		gap = append(gap, 1-camReach)
	}
	f.Series["collisionLoss"] = gap
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"CFM predicts full coverage in P phases at cost N; CAM exposes the collision collapse that motivates PB_CAM")
	return f, nil
}

// CarrierSenseAblation compares the plain Assumption-6 collision model
// with the Appendix A carrier-sensing model on the reachability metric.
func CarrierSenseAblation(pre Preset) (*FigureResult, error) {
	f := &FigureResult{ID: "carrier",
		Title:  "Ablation: collision scope (receiver range vs carrier sensing)",
		Series: map[string][]float64{}}
	t := Table{Title: "optimal reachability in latency budget, by collision model"}
	t.Header = []string{"rho", "CAM optimal p", "CAM reach", "CAM+CS optimal p", "CAM+CS reach"}
	var plainP, csP []float64
	for _, rho := range pre.Rhos {
		plainPts, err := optimize.SweepAnalytic(pre.AnalyticConfig(rho), pre.Grid, pre.Constraints)
		if err != nil {
			return nil, err
		}
		csCfg := pre.AnalyticConfig(rho)
		csCfg.CarrierSense = true
		csPts, err := optimize.SweepAnalytic(csCfg, pre.Grid, pre.Constraints)
		if err != nil {
			return nil, err
		}
		po, _ := optimize.MaxReachAtLatency(plainPts)
		co, _ := optimize.MaxReachAtLatency(csPts)
		t.Add(fmt.Sprintf("%g", rho),
			fmt.Sprintf("%.2f", po.P), fmtF(po.Value),
			fmt.Sprintf("%.2f", co.P), fmtF(co.Value))
		plainP = append(plainP, po.P)
		csP = append(csP, co.P)
	}
	f.Series["optimalP"] = plainP
	f.Series["optimalPCS"] = csP
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"Appendix A: widening the collision scope shifts the optimum to smaller p but preserves every qualitative trend")
	return f, nil
}
