package experiments

import (
	"fmt"
	"math/rand"

	"sensornet/internal/analytic"
	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// heteroProfile is the hotspot field used by the heterogeneity study:
// four times denser at the centre than at the edge.
func heteroProfile(r float64) float64 { return 4 - 3*r }

// Heterogeneity tests the limits of a single global broadcast
// probability: on a radially heterogeneous field (dense centre, sparse
// edge), a p tuned for the mean density is wrong almost everywhere,
// while the degree-adaptive rule p_i = C/degree_i re-tunes itself per
// neighbourhood. This realises the paper's remark that success-rate- or
// density-driven adaptation is "practically useful if the node density
// exhibits large spatio-temporal variation".
func Heterogeneity(pre Preset, meanRho float64) (*FigureResult, error) {
	f := &FigureResult{ID: "hetero",
		Title:  fmt.Sprintf("Heterogeneous field (hotspot profile, mean rho=%g)", meanRho),
		Series: map[string][]float64{}}

	law, err := analytic.CalibrateLaw(pre.P, pre.S, 60, pre.Constraints.Latency, 0.02)
	if err != nil {
		return nil, err
	}
	globalP := law.P(meanRho)

	schemes := []protocol.Protocol{
		protocol.Flooding{},
		protocol.Probability{P: globalP},
		protocol.DegreeAdaptive{C: law.C},
	}
	t := Table{Title: fmt.Sprintf("hotspot field, mean of %d runs", pre.Runs)}
	t.Header = []string{"scheme", "final reach", "reach@L", "broadcasts"}
	var reachAtL []float64
	for _, scheme := range schemes {
		var finals, reach, bcasts []float64
		for r := 0; r < pre.Runs; r++ {
			// Per-replication seeds go through the engine's derivation
			// helper so deployment sampling and protocol coin flips draw
			// from unrelated streams (the former Seed+r reused the
			// deployment stream as the protocol stream).
			dep, err := deploy.Generate(deploy.Config{
				P: pre.P, Rho: meanRho, Profile: heteroProfile,
			}, seededRand(engine.DeriveSeed(pre.Seed, "hetero-deploy", r)))
			if err != nil {
				return nil, err
			}
			cfg := pre.SimConfig(meanRho)
			cfg.Deployment = dep
			cfg.Protocol = scheme
			cfg.Seed = engine.DeriveSeed(pre.Seed, "hetero-run", r)
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			finals = append(finals, res.Timeline.FinalReachability())
			reach = append(reach, res.Timeline.ReachabilityAtPhase(pre.Constraints.Latency))
			bcasts = append(bcasts, float64(res.Broadcasts))
		}
		t.Add(scheme.Name(),
			fmtF(metrics.Summarize(finals).Mean),
			fmtF(metrics.Summarize(reach).Mean),
			fmtF1(metrics.Summarize(bcasts).Mean))
		reachAtL = append(reachAtL, metrics.Summarize(reach).Mean)
	}
	f.Series["reachAtL"] = reachAtL
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		fmt.Sprintf("global PB uses p = %.2f (law-tuned for the mean density); degree-adaptive uses C = %.1f per node", globalP, law.C),
		"per-node adaptation matches the globally tuned probability without ever measuring the field's density — flooding, with the same zero knowledge, collapses")
	return f, nil
}

// seededRand returns a fresh deterministic RNG for deployment sampling.
// Callers pass a seed already derived via engine.DeriveSeed — the
// interprocedural seedderive analysis verifies that at every call site,
// so the helper needs no suppression.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
