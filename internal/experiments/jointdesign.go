package experiments

import (
	"fmt"
	"math"

	"sensornet/internal/design"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// JointDesign optimises PB_CAM's two free parameters together — the
// broadcast probability p AND the backoff window s — under a fair
// latency budget expressed in slots (the paper fixes s = 3 and tunes
// only p). For each window size the analytic model picks the best p;
// the winning operating points are then validated by simulation.
//
// Finding: with the deadline counted in slots, shorter windows win —
// the extra relay rounds they buy outweigh their coarser contention
// resolution, and the probability absorbs the difference. The paper's
// s = 3 is a convention, not an optimum.
func JointDesign(pre Preset, rho float64, slotBudget float64, slots []int) (*FigureResult, error) {
	f := &FigureResult{ID: "joint",
		Title: fmt.Sprintf("Joint (p, s) design under a %g-slot latency budget (rho=%g)",
			slotBudget, rho),
		Series: map[string][]float64{}}

	const refSlots = 3
	refPhases := slotBudget / refSlots

	t := Table{Title: "analytic optimum per window size, validated by simulation"}
	t.Header = []string{"s", "best p", "analytic reach", "simulated reach"}
	var bestPs, anaReach, simReach []float64
	for _, s := range slots {
		alg := design.PBCAMJoint(pre.P, rho, pre.Grid, []float64{float64(s)}, refSlots)
		res, err := design.Tune(alg, design.MaxReachabilityAt(refPhases))
		if err != nil {
			return nil, err
		}
		bestP := res.Values[0]

		var reach []float64
		for r := 0; r < pre.Runs; r++ {
			cfg := pre.SimConfig(rho)
			cfg.S = s
			cfg.Protocol = protocol.Probability{P: bestP}
			//lint:ignore seedderive sequential seeds pair replications across slot counts (variance reduction by common random numbers)
			cfg.Seed = pre.Seed + int64(r)
			sr, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			reach = append(reach, sr.Timeline.ReachabilityAtPhase(slotBudget/float64(s)))
		}
		simMean := metrics.Summarize(reach).Mean
		t.Add(fmt.Sprintf("%d", s), fmt.Sprintf("%.2f", bestP),
			fmtF(res.Value), fmtF(simMean))
		bestPs = append(bestPs, bestP)
		anaReach = append(anaReach, res.Value)
		simReach = append(simReach, simMean)
	}
	f.Series["bestP"] = bestPs
	f.Series["analyticReach"] = anaReach
	f.Series["simReach"] = simReach
	f.Tables = []Table{t}

	// Identify the simulated winner.
	bestIdx, bestV := 0, math.Inf(-1)
	for i, v := range simReach {
		if v > bestV {
			bestIdx, bestV = i, v
		}
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("simulated winner: s = %d with reach %.3f — shorter windows buy more relay rounds per deadline", slots[bestIdx], bestV),
		"both engines agree on the ordering; the paper's s = 3 is a convention, not an optimum")
	return f, nil
}
