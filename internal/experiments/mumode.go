package experiments

import (
	"fmt"

	"sensornet/internal/buckets"
	"sensornet/internal/optimize"
)

// MuModeAblation quantifies the DESIGN.md "μ at non-integer K"
// decision: the paper evaluates μ(g(x)·p, s) at real-valued expected
// sender counts without saying how; this experiment compares the three
// interpolation modes plus the exact binomial mixture on the Fig. 4
// optimum at each density.
func MuModeAblation(pre Preset) (*FigureResult, error) {
	f := &FigureResult{ID: "mumode",
		Title:  "Ablation: real-valued mu evaluation mode",
		Series: map[string][]float64{}}

	type variant struct {
		name     string
		mode     buckets.KMode
		binomial bool
	}
	variants := []variant{
		{"linear", buckets.KLinear, false},
		{"poisson", buckets.KPoisson, false},
		{"round", buckets.KRound, false},
		{"binomial", buckets.KLinear, true},
	}

	t := Table{Title: "Fig. 4 optimum per mode"}
	t.Header = []string{"rho"}
	for _, v := range variants {
		t.Header = append(t.Header, v.name+" p*", v.name+" reach")
	}
	for _, v := range variants {
		f.Series[v.name+"P"] = nil
		f.Series[v.name+"Reach"] = nil
	}
	for _, rho := range pre.Rhos {
		row := []string{fmt.Sprintf("%g", rho)}
		for _, v := range variants {
			cfg := pre.AnalyticConfig(rho)
			cfg.KMode = v.mode
			cfg.BinomialMix = v.binomial
			pts, err := optimize.SweepAnalytic(cfg, pre.Grid, pre.Constraints)
			if err != nil {
				return nil, err
			}
			o, ok := optimize.MaxReachAtLatency(pts)
			if !ok {
				row = append(row, "-", "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", o.P), fmtF(o.Value))
			f.Series[v.name+"P"] = append(f.Series[v.name+"P"], o.P)
			f.Series[v.name+"Reach"] = append(f.Series[v.name+"Reach"], o.Value)
		}
		t.Add(row...)
	}
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		"the evaluation mode shifts the absolute reachability plateau but not its flatness, nor the decreasing shape of the optimal-p curve",
		"the binomial mixture (exact sender-count law) is the most conservative; linear interpolation is the default")
	return f, nil
}
