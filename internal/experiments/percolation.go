package experiments

import (
	"fmt"
	"math/rand"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/mathx"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// Percolation cross-validates the simulator against an independent
// known constant cited by the paper's related work: probability-based
// broadcast over a *grid* deployment with *collision-free*
// communication is site percolation on the square lattice, whose
// critical probability is ~0.593. The experiment sweeps p, records the
// final reachability of PB over CFM on a grid, and locates the sharp
// transition.
func Percolation(p int, grid []float64, runs int, seed int64) (*FigureResult, error) {
	if p < 4 {
		p = 4
	}
	if runs < 1 {
		runs = 1
	}
	f := &FigureResult{ID: "percolation",
		Title:  "Grid + CFM: the percolation transition of probability-based broadcast",
		Series: map[string][]float64{}}
	t := Table{Title: fmt.Sprintf("final reachability on a radius-%d lattice (mean of %d runs)", p, runs)}
	t.Header = []string{"p", "final reach"}

	dep, err := deploy.Generate(deploy.Config{P: p, Grid: true},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}

	var ps, reach []float64
	for _, prob := range grid {
		sum := 0.0
		for r := 0; r < runs; r++ {
			cfg := sim.Config{
				P: p, S: 1, Rho: 1, // Rho unused with an explicit deployment
				Model:      channel.CFM,
				Protocol:   protocol.Probability{P: prob},
				Seed:       engine.DeriveSeed(seed, "percolation", prob, r),
				Deployment: dep,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			sum += res.Timeline.FinalReachability()
		}
		mean := sum / float64(runs)
		ps = append(ps, prob)
		reach = append(reach, mean)
		t.Add(fmt.Sprintf("%.2f", prob), fmtF(mean))
	}
	f.Series["p"] = ps
	f.Series["reach"] = reach

	// Locate the transition: the p at which mean reachability crosses
	// one half.
	if cross, ok := mathx.FirstCrossing(ps, reach, 0.5); ok {
		f.Series["critical"] = []float64{cross}
		f.Notes = append(f.Notes, fmt.Sprintf(
			"reachability crosses 0.5 at p = %.3f; site percolation on the square lattice has p_c = 0.593",
			cross))
	} else {
		f.Series["critical"] = []float64{}
		f.Notes = append(f.Notes, "no transition located on this grid")
	}
	f.Tables = []Table{t}
	return f, nil
}
