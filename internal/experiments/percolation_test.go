package experiments

import (
	"math"
	"testing"

	"sensornet/internal/mathx"
)

func TestPercolationTransitionNearCritical(t *testing.T) {
	if testing.Short() {
		t.Skip("percolation sweep in -short mode")
	}
	grid := mathx.Range(0.35, 0.9, 0.05)
	f, err := Percolation(18, grid, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	crit := f.Series["critical"]
	if len(crit) != 1 {
		t.Fatalf("no transition found: %v", f.Series["reach"])
	}
	// Site percolation p_c = 0.593; finite-size effects blur the
	// transition on a radius-18 lattice.
	if crit[0] < 0.45 || crit[0] > 0.75 {
		t.Fatalf("critical p = %v, expected near 0.593", crit[0])
	}
	// The transition is sharp: reach well below 0.5 at p=0.35 and well
	// above at p=0.9.
	reach := f.Series["reach"]
	if reach[0] > 0.3 {
		t.Fatalf("subcritical reach %v too high", reach[0])
	}
	if reach[len(reach)-1] < 0.8 {
		t.Fatalf("supercritical reach %v too low", reach[len(reach)-1])
	}
}

func TestPercolationMonotoneInP(t *testing.T) {
	if testing.Short() {
		t.Skip("percolation sweep in -short mode")
	}
	grid := []float64{0.3, 0.6, 0.95}
	f, err := Percolation(12, grid, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	reach := f.Series["reach"]
	for i := 1; i < len(reach); i++ {
		if reach[i] < reach[i-1]-0.05 {
			t.Fatalf("mean reachability should rise with p: %v", reach)
		}
	}
}

func TestPercolationDegenerateArgs(t *testing.T) {
	f, err := Percolation(0, []float64{0.5}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series["reach"]) != 1 {
		t.Fatal("clamped args should still produce a sweep")
	}
	if math.IsNaN(f.Series["reach"][0]) {
		t.Fatal("NaN reach")
	}
}
