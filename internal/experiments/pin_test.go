package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"sensornet/internal/engine"
)

// jobsDigest hashes the ordered fingerprints of a job set, the same
// way the serving layer derives surface digests: the digest changes
// iff any job's identity (presets, grids, code-version salt) changes.
func jobsDigest(jobs []engine.Job) string {
	h := sha256.New()
	for _, j := range jobs {
		h.Write([]byte(j.Fingerprint()))
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// mustJobs unwraps a (jobs, error) builder result.
func mustJobs(jobs []engine.Job, err error) []engine.Job {
	if err != nil {
		panic(err)
	}
	return jobs
}

// TestExistingJobIdentityPinned pins the fingerprint digests of every
// pre-existing campaign's cacheable job set. Cached results are
// immutable under their fingerprints, so an unchanged digest proves
// existing CFM/CAM figure outputs are byte-for-byte reusable — no
// recomputation, no silent drift. If this test fails, either bump
// CacheSalt (results changed deliberately, invalidating old caches) or
// undo the accidental identity change.
func TestExistingJobIdentityPinned(t *testing.T) {
	pa, ps := PaperAnalytic(), PaperSim()
	for _, tc := range []struct {
		name   string
		digest string
		want   string
	}{
		{"analytic-surface",
			jobsDigest(SurfaceJobs(pa, false, 1)),
			"b6afe5f5e02ac10dc4803a8c46fa42c13766f6382feb611a7c0e9107713fc97b"},
		{"sim-surface",
			jobsDigest(SurfaceJobs(ps, true, 1)),
			"a832d424d661879d611763dee1c4e10f2e90d15e0caa8c491a2ed64ea5e770f0"},
		{"degradation",
			jobsDigest(mustJobs(DegradationJobs(ps, 60, nil, nil))),
			"6f8bf749901cd682bc07e57a8e0363ef23f34dd756a8b54ff4eab4838a643448"},
	} {
		if tc.digest != tc.want {
			t.Errorf("%s job identity drifted:\n got %s\nwant %s\n(cached results keyed by the old fingerprints are now unreachable)",
				tc.name, tc.digest, tc.want)
		}
	}
}

// TestShootoutJobIdentityPinned pins the new campaign's own job
// identity from birth, so future refactors can prove shootout caches
// stay valid the same way.
func TestShootoutJobIdentityPinned(t *testing.T) {
	got := jobsDigest(mustJobs(ShootoutJobs(PaperSim(), nil)))
	const want = "58288a3c201d918111561288714880df39a596e5587a1645e90f45cebf713b8d"
	if got != want {
		t.Errorf("shootout job identity drifted:\n got %s\nwant %s", got, want)
	}
}
