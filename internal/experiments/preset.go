// Package experiments reproduces every figure of the paper's evaluation
// (§4.2.3–§4.2.6 analytic, §5 simulated, Fig. 12's success-rate
// correlation) as runnable experiments that emit the same rows and
// series the paper plots.
package experiments

import (
	"context"

	"sensornet/internal/analytic"
	"sensornet/internal/channel"
	"sensornet/internal/engine"
	"sensornet/internal/mathx"
	"sensornet/internal/optimize"
	"sensornet/internal/sim"
)

// Preset bundles the shared parameters of an experiment campaign.
type Preset struct {
	// P is the field radius in transmission radii; S the slots per
	// phase.
	P, S int
	// Rhos are the densities swept (average neighbours per node).
	Rhos []float64
	// Grid is the broadcast-probability grid.
	Grid []float64
	// Constraints fixes the latency/reachability/budget levels.
	Constraints optimize.Constraints
	// Runs is the number of random simulation runs per grid point;
	// Workers bounds their parallelism (0 = unbounded).
	Runs    int
	Workers int
	// Seed is the base seed for simulated campaigns.
	Seed int64
	// MaxPhases caps execution length.
	MaxPhases int
	// CarrierSense switches both engines to the Appendix A model.
	CarrierSense bool
	// Async gives simulated nodes random phase offsets.
	Async bool
}

// PaperAnalytic is the configuration of §4.2.3: P = 5, s = 3,
// ρ ∈ {20..140}, p ∈ {0.01..1} step 0.01, latency budget 5 phases,
// reachability target 72%, broadcast budget 35.
func PaperAnalytic() Preset {
	return Preset{
		P: 5, S: 3,
		Rhos:        mathx.Range(20, 140, 20),
		Grid:        mathx.Range(0.01, 1, 0.01),
		Constraints: optimize.Constraints{Latency: 5, Reach: 0.72, Budget: 35},
	}
}

// PaperSim is the configuration of §5: the probability grid coarsens to
// step 0.05, 30 random runs per point, reachability target 63%, budget
// 80 broadcasts.
func PaperSim() Preset {
	p := PaperAnalytic()
	p.Grid = mathx.Range(0.05, 1, 0.05)
	p.Constraints = optimize.Constraints{Latency: 5, Reach: 0.63, Budget: 80}
	p.Runs = 30
	p.Seed = 1
	return p
}

// QuickAnalytic is a coarsened analytic preset for tests and benches.
func QuickAnalytic() Preset {
	p := PaperAnalytic()
	p.Rhos = []float64{20, 60, 100, 140}
	p.Grid = mathx.Range(0.02, 1, 0.02)
	return p
}

// QuickSim is a coarsened simulation preset for tests and benches.
func QuickSim() Preset {
	p := PaperSim()
	p.Rhos = []float64{20, 60, 100}
	p.Grid = mathx.Range(0.1, 1, 0.1)
	p.Runs = 4
	return p
}

func (pre Preset) AnalyticConfig(rho float64) analytic.Config {
	return analytic.Config{
		P: pre.P, S: pre.S, Rho: rho,
		CarrierSense: pre.CarrierSense,
		MaxPhases:    pre.MaxPhases,
	}
}

func (pre Preset) SimConfig(rho float64) sim.Config {
	model := channel.CAM
	if pre.CarrierSense {
		model = channel.CAMCarrierSense
	}
	return sim.Config{
		P: pre.P, S: pre.S, Rho: rho,
		Model:     model,
		Seed:      pre.Seed,
		Async:     pre.Async,
		MaxPhases: pre.MaxPhases,
	}
}

// Surface is a full (density × probability) metric sweep from one
// engine: the data behind every figure.
type Surface struct {
	Pre Preset
	// Points[i][j] holds the metrics at (Rhos[i], Grid[j]).
	Points [][]optimize.Point
	// Simulated records which engine produced the surface.
	Simulated bool
}

// AnalyticSurface sweeps the analytical model over the preset on a
// default engine.
func AnalyticSurface(pre Preset) (*Surface, error) {
	return AnalyticSurfaceCtx(context.Background(), defaultEngine(pre), pre)
}

// AnalyticSurfaceCtx sweeps the analytical model over the preset,
// submitting one cached job per (density, probability) point to eng.
// Points come back row-major in (Rhos, Grid) order regardless of the
// engine's worker count.
func AnalyticSurfaceCtx(ctx context.Context, eng *engine.Engine, pre Preset) (*Surface, error) {
	if err := surfaceEngineOK(eng); err != nil {
		return nil, err
	}
	results, err := eng.Run(ctx, SurfaceJobs(pre, false, eng.Workers()))
	if err != nil {
		return nil, err
	}
	return analyticSurfaceFromPoints(pre, results)
}

// SimSurface sweeps the simulator over the preset on a default engine.
func SimSurface(pre Preset) (*Surface, error) {
	return SimSurfaceCtx(context.Background(), defaultEngine(pre), pre)
}

// SimSurfaceCtx sweeps the simulator over the preset, submitting one
// cached job per density to eng; replications inside each row fan out
// up to the engine's worker bound. For a fixed preset seed the surface
// is identical for any worker count.
func SimSurfaceCtx(ctx context.Context, eng *engine.Engine, pre Preset) (*Surface, error) {
	if err := surfaceEngineOK(eng); err != nil {
		return nil, err
	}
	results, err := eng.Run(ctx, SurfaceJobs(pre, true, eng.Workers()))
	if err != nil {
		return nil, err
	}
	return surfaceFromResults(pre, results, true)
}
