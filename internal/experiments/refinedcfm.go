package experiments

import (
	"fmt"

	"sensornet/internal/analytic"
	"sensornet/internal/deploy"
	"sensornet/internal/engine"
	"sensornet/internal/metrics"
	"sensornet/internal/reliable"
)

// RefinedCFM closes the loop the paper's conclusion proposes: measure
// what reliable broadcasts really cost (internal/reliable), fit the
// density-dependent cost functions t_f(ρ), e_f(ρ), and plug them back
// into a collision-free model. The experiment contrasts three
// predictions of network-wide reliable flooding: the naive CFM (unit
// costs), the refined CFM (fitted costs), and — as the honest yardstick
// of how much reliability costs — the measured per-broadcast figures.
func RefinedCFM(pre Preset, seeds int) (*FigureResult, error) {
	if seeds < 2 {
		seeds = 2
	}
	f := &FigureResult{ID: "refinedcfm",
		Title:  "Refined CFM: density-priced collision-free analysis (paper §6)",
		Series: map[string][]float64{}}

	// Step 1: measure reliable-broadcast costs per density.
	var rhos, times, energies []float64
	for _, rho := range pre.Rhos {
		var slots, txs []float64
		for seed := int64(0); seed < int64(seeds); seed++ {
			// Deployment and ACK streams are derived, not computed: the
			// former seed*104729+int64(rho) collided whenever two
			// densities truncated to the same int64 and reused one ACK
			// stream across every density at a fixed seed.
			dep, err := deploy.Generate(deploy.Config{P: pre.P, Rho: rho},
				seededRand(engine.DeriveSeed(seed, "refinedcfm-deploy", rho)))
			if err != nil {
				return nil, err
			}
			ack, err := reliable.AckBroadcast(dep, 0, reliable.AckConfig{
				Window: pre.S, Adaptive: true,
				Seed: engine.DeriveSeed(seed, "refinedcfm-ack", rho),
			})
			if err != nil {
				return nil, err
			}
			if ack.Complete {
				slots = append(slots, float64(ack.Slots))
				txs = append(txs, float64(ack.Transmissions))
			}
		}
		rhos = append(rhos, rho)
		times = append(times, metrics.Summarize(slots).Mean)
		energies = append(energies, metrics.Summarize(txs).Mean)
	}

	// Step 2: fit the cost model.
	cm, err := analytic.FitCostModel(rhos, times, energies)
	if err != nil {
		return nil, err
	}

	// Step 3: predictions.
	t := Table{Title: "reliable flooding predictions, naive vs refined CFM"}
	t.Header = []string{"rho", "naive latency (phases)", "refined latency (phases)",
		"naive energy (tx)", "refined energy (e_a units)"}
	var refinedLat []float64
	for _, rho := range pre.Rhos {
		naive := analytic.CFMFlooding(pre.P, rho)
		refined := analytic.CFMFloodingWithCosts(pre.P, pre.S, rho, cm)
		nl, _ := naive.LatencyToReach(0.99)
		rl, _ := refined.LatencyToReach(0.99)
		t.Add(fmt.Sprintf("%g", rho), fmtF1(nl), fmtF1(rl),
			fmtF1(naive.TotalBroadcasts()), fmtF1(refined.TotalBroadcasts()))
		refinedLat = append(refinedLat, rl)
	}
	f.Series["refinedLatency"] = refinedLat
	f.Series["fitTimeAt100"] = []float64{cm.Time(100)}
	f.Series["fitEnergyAt100"] = []float64{cm.Energy(100)}
	f.Tables = []Table{t}
	f.Notes = append(f.Notes,
		fmt.Sprintf("fitted cost functions: t_f(100) = %.0f slots, e_f(100) = %.0f transmissions per reliable broadcast",
			cm.Time(100), cm.Energy(100)),
		"the refined CFM keeps collision-free programming semantics while exposing the density pressure the naive CFM hides")
	return f, nil
}
