package experiments

import (
	"fmt"
	"testing"

	"sensornet/internal/engine"
)

// TestRefinedCFMSeedStreams is the regression test for the PR 1-era
// bug that survived in RefinedCFM until PR 2: deriving the per-density
// deployment RNG as seed*104729+int64(rho). Under that scheme every
// density with the same int64 truncation (20.0 and 20.4) shared a
// stream, and the ACK stream ignored rho entirely. The engine
// derivation must give pairwise-distinct seeds across adjacent seeds
// and densities, including fractional densities, and must separate the
// deployment stream from the ACK stream.
func TestRefinedCFMSeedStreams(t *testing.T) {
	rhos := []float64{20, 20.4, 20.5, 21, 40, 60, 80, 100, 120, 140}
	seen := map[int64]string{}
	for seed := int64(0); seed < 5; seed++ {
		for _, rho := range rhos {
			for _, stream := range []string{"refinedcfm-deploy", "refinedcfm-ack"} {
				derived := engine.DeriveSeed(seed, stream, rho)
				key := fmt.Sprintf("%s(seed=%d, rho=%g)", stream, seed, rho)
				if prev, dup := seen[derived]; dup {
					t.Fatalf("derived seed %d collides: %s vs %s", derived, prev, key)
				}
				seen[derived] = key
			}
		}
	}

	// The old affine derivation collided on exactly this pair; pin the
	// counterexample so the bug class stays documented.
	old := func(seed int64, rho float64) int64 { return seed*104729 + int64(rho) }
	if old(1, 20.0) != old(1, 20.4) {
		t.Fatalf("expected the old derivation to collide for rho 20.0 vs 20.4")
	}
	if engine.DeriveSeed(1, "refinedcfm-deploy", 20.0) == engine.DeriveSeed(1, "refinedcfm-deploy", 20.4) {
		t.Fatalf("engine.DeriveSeed must separate rho 20.0 from 20.4")
	}
}

// TestRefinedCFMRuns exercises the experiment end to end on a tiny
// preset: it must fit a cost model and emit one refined-latency sample
// per density, deterministically.
func TestRefinedCFMRuns(t *testing.T) {
	pre := QuickAnalytic()
	pre.Rhos = []float64{20, 40, 60}

	a, err := RefinedCFM(pre, 2)
	if err != nil {
		t.Fatalf("RefinedCFM: %v", err)
	}
	if got := len(a.Series["refinedLatency"]); got != len(pre.Rhos) {
		t.Fatalf("refinedLatency has %d samples, want %d", got, len(pre.Rhos))
	}
	b, err := RefinedCFM(pre, 2)
	if err != nil {
		t.Fatalf("RefinedCFM (repeat): %v", err)
	}
	for i := range a.Series["refinedLatency"] {
		if a.Series["refinedLatency"][i] != b.Series["refinedLatency"][i] {
			t.Fatalf("RefinedCFM is not deterministic at index %d", i)
		}
	}
}
