package experiments

import (
	"fmt"

	"sensornet/internal/analytic"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// SchemeComparison benchmarks every broadcast scheme in the repository
// on the same deployments: the paper's two (flooding, PB_CAM with the
// law-tuned probability) plus the rest of the Williams taxonomy and the
// two adaptive schemes. One table per density.
func SchemeComparison(pre Preset, rhos []float64) (*FigureResult, error) {
	f := &FigureResult{ID: "schemes",
		Title:  "Broadcast scheme comparison under CAM",
		Series: map[string][]float64{}}

	law, err := analytic.CalibrateLaw(pre.P, pre.S, 60, pre.Constraints.Latency, 0.02)
	if err != nil {
		return nil, err
	}

	for _, rho := range rhos {
		t := Table{Title: fmt.Sprintf("rho = %g (mean of %d runs)", rho, pre.Runs)}
		t.Header = []string{"scheme", "final reach", "reach@L", "broadcasts", "success rate"}
		schemes := []protocol.Protocol{
			protocol.Flooding{},
			protocol.Probability{P: law.P(rho)},
			protocol.Counter{Threshold: 3},
			protocol.Distance{MinDist: 0.4},
			protocol.Area{MinExtra: 0.4, R: 1},
			protocol.DegreeAdaptive{C: law.C},
			protocol.Gossip{P: law.P(rho), K: 2},
		}
		for _, scheme := range schemes {
			var finals, reach, bcasts, rates []float64
			for r := 0; r < pre.Runs; r++ {
				cfg := pre.SimConfig(rho)
				cfg.Protocol = scheme
				//lint:ignore seedderive sequential seeds pair replications across schemes so every scheme sees the same deployments
				cfg.Seed = pre.Seed + int64(r)
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				finals = append(finals, res.Timeline.FinalReachability())
				reach = append(reach, res.Timeline.ReachabilityAtPhase(pre.Constraints.Latency))
				bcasts = append(bcasts, float64(res.Broadcasts))
				rates = append(rates, res.SuccessRate)
			}
			t.Add(scheme.Name(),
				fmtF(metrics.Summarize(finals).Mean),
				fmtF(metrics.Summarize(reach).Mean),
				fmtF1(metrics.Summarize(bcasts).Mean),
				fmtF(metrics.Summarize(rates).Mean))
		}
		f.Tables = append(f.Tables, t)
	}
	f.Series["lawC"] = []float64{law.C}
	f.Notes = append(f.Notes,
		fmt.Sprintf("PB probability and the degree-adaptive constant come from the calibrated law p* = %.1f/rho", law.C),
		"the adaptive schemes need no global density knowledge yet track the tuned PB operating point")
	return f, nil
}
