package experiments

import (
	"context"
	"errors"
	"fmt"

	"sensornet/internal/engine"
)

// errShardedSurface guards the surface-assembly entry points against
// sharded engines: a shard owns only part of the job set, so assembling
// a full surface from its results is impossible by construction.
var errShardedSurface = errors.New(
	"experiments: sharded engine computes jobs, it does not assemble surfaces: run SurfaceJobs/DegradationJobs through RunShard, then merge with an unsharded cache-only engine")

// surfaceEngineOK rejects engines whose results cannot assemble into a
// complete figure.
func surfaceEngineOK(eng *engine.Engine) error {
	if eng.Shard().Sharded() {
		return errShardedSurface
	}
	return nil
}

// SurfaceJobs returns the cacheable job set behind a preset's surface —
// the unit the shard layer distributes. The jobs (and their
// fingerprints) are exactly those AnalyticSurfaceCtx/SimSurfaceCtx
// submit, so shard processes and the merge process address the same
// cache entries. workers bounds the replication parallelism inside each
// simulated row; it never affects job identity.
func SurfaceJobs(pre Preset, simulated bool, workers int) []engine.Job {
	if !simulated {
		return analyticPointJobs(pre)
	}
	jobs := make([]engine.Job, len(pre.Rhos))
	for i, rho := range pre.Rhos {
		jobs[i] = simRowJob(pre, rho, workers)
	}
	return jobs
}

// DegradationJobs returns the cacheable cell-job set of the
// graceful-degradation study, normalised exactly as DegradationCtx
// normalises it (default rate grids, capped horizon, calibrated PB
// probability), so sharded cell computation and merged figure assembly
// agree on job identity.
func DegradationJobs(pre Preset, rho float64, crashRates, lossRates []float64) ([]engine.Job, error) {
	st, err := newDegStudy(pre, rho, crashRates, lossRates)
	if err != nil {
		return nil, err
	}
	return st.jobs(rho), nil
}

// ShardReport summarises one shard process's pass over a job set.
type ShardReport struct {
	// Spec is the engine's shard assignment.
	Spec engine.ShardSpec
	// Jobs is the size of the full job set; Owned the subset assigned
	// to this shard; Skipped the jobs left to other shards.
	Jobs, Owned, Skipped int
	// Computed counts owned jobs executed this pass; CacheHits the
	// owned jobs already present in the shared cache (a resumed or
	// re-run shard).
	Computed, CacheHits int
}

// String renders the report as the one-line summary the -shard CLI
// prints.
func (r ShardReport) String() string {
	return fmt.Sprintf("shard %s: %d/%d jobs owned (%d computed, %d cache hits, %d left to other shards)",
		r.Spec, r.Owned, r.Jobs, r.Computed, r.CacheHits, r.Skipped)
}

// RunShard drains a job set through a shard-configured engine: owned
// jobs compute (or cache-hit) into the shared cache, unowned jobs are
// skipped. The report describes what happened; the error, if any, is
// the engine's. Results are deliberately not assembled — the merge
// step does that from the cache once every shard has run.
func RunShard(ctx context.Context, eng *engine.Engine, jobs []engine.Job) (*ShardReport, error) {
	results, err := eng.Run(ctx, jobs)
	rep := &ShardReport{Spec: eng.Shard(), Jobs: len(jobs)}
	for _, res := range results {
		switch {
		case res.Skipped:
			rep.Skipped++
		case res.FromCache:
			rep.Owned++
			rep.CacheHits++
		case res.Err == nil && res.Attempts > 0:
			rep.Owned++
			rep.Computed++
		}
	}
	return rep, err
}
