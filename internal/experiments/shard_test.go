// Shard-layer tests: deterministic job→shard assignment over the real
// surface job sets, multi-process merge byte-identity through the
// shared cache, missing-shard detection, and kill-one-shard→resume.
// External test package, like engine_integration_test.go.
package experiments_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
)

// shardedEngine builds one shard process's engine over the shared
// cache directory.
func shardedEngine(dir string, idx, total int) *engine.Engine {
	return engine.New(engine.Config{
		Workers: 2,
		Cache:   engine.NewCache(dir, experiments.CacheSalt),
		Shard:   engine.ShardSpec{Index: idx, Total: total},
	})
}

// mergeEngine builds the merge/serve-side engine: unsharded and
// cache-only, so assembling a surface can never recompute shard work.
func mergeEngine(dir string) *engine.Engine {
	return engine.New(engine.Config{
		Workers:   2,
		Cache:     engine.NewCache(dir, experiments.CacheSalt),
		CacheOnly: true,
	})
}

// renderAnalyticFig assembles the analytic surface on eng and renders
// its Fig. 4, the byte-comparison artifact of the merge tests.
func renderAnalyticFig(ctx context.Context, eng *engine.Engine, pre experiments.Preset) (string, error) {
	surf, err := experiments.AnalyticSurfaceCtx(ctx, eng, pre)
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	if err := experiments.Fig4(surf).Render(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func renderSimFig(ctx context.Context, eng *engine.Engine, pre experiments.Preset) (string, error) {
	surf, err := experiments.SimSurfaceCtx(ctx, eng, pre)
	if err != nil {
		return "", err
	}
	var b bytes.Buffer
	if err := experiments.Fig8(surf).Render(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// TestSurfaceJobsShardAssignment: the real surface job sets partition
// deterministically — every job is owned by exactly one shard, and the
// assignment is a pure function of the fingerprint.
func TestSurfaceJobsShardAssignment(t *testing.T) {
	pa := experiments.QuickAnalytic()
	pa.Rhos = []float64{40, 100}
	for _, tc := range []struct {
		name string
		jobs []engine.Job
	}{
		{"analytic", experiments.SurfaceJobs(pa, false, 1)},
		{"sim", experiments.SurfaceJobs(tinySimPreset(), true, 1)},
	} {
		const total = 3
		for _, j := range tc.jobs {
			fp := j.Fingerprint()
			if fp == "" {
				t.Fatalf("%s job %q is uncacheable: surface jobs must shard", tc.name, j.Name())
			}
			s := engine.ShardOf(fp, total)
			owners := 0
			for idx := 0; idx < total; idx++ {
				spec := engine.ShardSpec{Index: idx, Total: total}
				if spec.Owns(fp) {
					owners++
					if idx != s {
						t.Fatalf("%s job %q: shard %d owns it but ShardOf says %d", tc.name, j.Name(), idx, s)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("%s job %q owned by %d shards, want exactly 1", tc.name, j.Name(), owners)
			}
			if s != engine.ShardOf(fp, total) {
				t.Fatalf("%s job %q: assignment not deterministic", tc.name, j.Name())
			}
		}
	}
}

// TestTwoShardMergeByteIdentical is the tentpole acceptance property:
// two shard processes over a shared cache directory, followed by an
// unsharded cache-only merge, render the exact bytes of a single
// uncached run — and the merge recomputes nothing.
func TestTwoShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep in -short mode")
	}
	pre := tinySimPreset()

	// Reference: one process, no cache involved anywhere.
	want, err := renderSimFig(context.Background(), engine.New(engine.Config{Workers: 2}), pre)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jobs := experiments.SurfaceJobs(pre, true, 2)
	owned := 0
	for idx := 0; idx < 2; idx++ {
		rep, err := experiments.RunShard(context.Background(), shardedEngine(dir, idx, 2), jobs)
		if err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		if rep.Owned+rep.Skipped != rep.Jobs {
			t.Fatalf("shard %d report does not partition the job set: %s", idx, rep)
		}
		owned += rep.Owned
	}
	if owned != len(jobs) {
		t.Fatalf("shards owned %d jobs in total, want all %d", owned, len(jobs))
	}

	cache := engine.NewCache(dir, experiments.CacheSalt)
	merged := engine.New(engine.Config{Workers: 2, Cache: cache, CacheOnly: true})
	got, err := renderSimFig(context.Background(), merged, pre)
	if err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	if got != want {
		t.Fatalf("merged figure differs from single-process run:\n%s\nvs\n%s", got, want)
	}
	if s := merged.Stats(); s.CacheHits != len(jobs) {
		t.Fatalf("merge served %d rows from cache, want all %d", s.CacheHits, len(jobs))
	}
	if cs := cache.Stats(); cs.Misses != 0 || cs.Stores != 0 {
		t.Fatalf("merge recomputed: cache stats %+v, want 0 misses and 0 stores", cs)
	}
}

// TestMergeReportsMissingShards: when only one shard has run, the merge
// fails with a *MissingError whose MissingShards names exactly the
// shards that never published.
func TestMergeReportsMissingShards(t *testing.T) {
	pre := experiments.QuickAnalytic()
	pre.Rhos = []float64{40, 100}
	jobs := experiments.SurfaceJobs(pre, false, 1)

	// Run only the shard owning the first job; derive the expected
	// missing shards from the same assignment the engine uses.
	const total = 2
	ran := engine.ShardOf(jobs[0].Fingerprint(), total)
	wantMissing := map[int]bool{}
	for _, j := range jobs {
		if s := engine.ShardOf(j.Fingerprint(), total); s != ran {
			wantMissing[s] = true
		}
	}
	if len(wantMissing) == 0 {
		t.Fatalf("degenerate fixture: shard %d owns all %d jobs", ran, len(jobs))
	}

	dir := t.TempDir()
	if _, err := experiments.RunShard(context.Background(), shardedEngine(dir, ran, total), jobs); err != nil {
		t.Fatal(err)
	}

	_, err := renderAnalyticFig(context.Background(), mergeEngine(dir), pre)
	var missing *engine.MissingError
	if !errors.As(err, &missing) {
		t.Fatalf("merge err = %v, want *engine.MissingError", err)
	}
	got := missing.MissingShards(total)
	if len(got) != len(wantMissing) {
		t.Fatalf("MissingShards(%d) = %v, want the %d unrun shard(s)", total, got, len(wantMissing))
	}
	for _, s := range got {
		if !wantMissing[s] {
			t.Fatalf("MissingShards(%d) = %v names shard %d, which published everything", total, got, s)
		}
		if s == ran {
			t.Fatalf("MissingShards(%d) = %v blames shard %d, which ran", total, got, ran)
		}
	}
}

// TestShardKillResumeByteIdentical: a shard process killed mid-pass
// leaves its completed jobs in the shared cache; re-running that shard
// resumes from them, and after the remaining shard runs, the merge is
// byte-identical to an uninterrupted single-process run.
func TestShardKillResumeByteIdentical(t *testing.T) {
	pre := experiments.QuickAnalytic()
	pre.Rhos = []float64{40, 100}
	jobs := experiments.SurfaceJobs(pre, false, 1)
	ownedBy0 := 0
	for _, j := range jobs {
		if engine.ShardOf(j.Fingerprint(), 2) == 0 {
			ownedBy0++
		}
	}

	want, err := renderAnalyticFig(context.Background(), engine.New(engine.Config{Workers: 1}), pre)
	if err != nil {
		t.Fatal(err)
	}

	// Kill shard 0 after its first completed job (skips never emit
	// EventDone, so the count below sees real computations only). Put
	// runs before the next job starts with workers=1, so that job is on
	// disk when the cancel lands.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var done int
	killed := engine.New(engine.Config{
		Workers: 1,
		Cache:   engine.NewCache(dir, experiments.CacheSalt),
		Shard:   engine.ShardSpec{Index: 0, Total: 2},
		OnEvent: func(ev engine.Event) {
			if ev.Kind == engine.EventDone {
				if done++; done == 1 {
					cancel()
				}
			}
		},
	})
	if _, err := experiments.RunShard(ctx, killed, jobs); ownedBy0 > 1 && !errors.Is(err, context.Canceled) {
		t.Fatalf("killed shard: err = %v, want context.Canceled", err)
	}

	// Resume shard 0 with a fresh engine over the same cache, then run
	// shard 1 as its own process would.
	rep0, err := experiments.RunShard(context.Background(), shardedEngine(dir, 0, 2), jobs)
	if err != nil {
		t.Fatalf("resumed shard 0: %v", err)
	}
	if rep0.Owned != ownedBy0 || rep0.CacheHits < 1 {
		t.Fatalf("resumed shard 0 report %s: want %d owned with the killed pass's job as a cache hit", rep0, ownedBy0)
	}
	if _, err := experiments.RunShard(context.Background(), shardedEngine(dir, 1, 2), jobs); err != nil {
		t.Fatalf("shard 1: %v", err)
	}

	merged := mergeEngine(dir)
	got, err := renderAnalyticFig(context.Background(), merged, pre)
	if err != nil {
		t.Fatalf("merge failed: %v", err)
	}
	if got != want {
		t.Fatalf("kill-resume merge differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if s := merged.Stats(); s.CacheHits != len(jobs) {
		t.Fatalf("merge served %d jobs from cache, want all %d", s.CacheHits, len(jobs))
	}
}

// TestShardedEngineRefusesSurfaceAssembly: surface (and degradation)
// assembly over a sharded engine is impossible by construction and must
// fail loudly instead of producing a partial figure.
func TestShardedEngineRefusesSurfaceAssembly(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, Shard: engine.ShardSpec{Index: 0, Total: 2}})
	ctx := context.Background()
	pre := experiments.QuickAnalytic()
	if _, err := experiments.AnalyticSurfaceCtx(ctx, eng, pre); err == nil || !strings.Contains(err.Error(), "sharded engine") {
		t.Errorf("AnalyticSurfaceCtx on a sharded engine: err = %v, want sharded-engine refusal", err)
	}
	if _, err := experiments.SimSurfaceCtx(ctx, eng, tinySimPreset()); err == nil || !strings.Contains(err.Error(), "sharded engine") {
		t.Errorf("SimSurfaceCtx on a sharded engine: err = %v, want sharded-engine refusal", err)
	}
	if _, err := experiments.DegradationCtx(ctx, eng, tinySimPreset(), 20, nil, nil); err == nil || !strings.Contains(err.Error(), "sharded engine") {
		t.Errorf("DegradationCtx on a sharded engine: err = %v, want sharded-engine refusal", err)
	}
}
