package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"sensornet/internal/analytic"
	"sensornet/internal/channel"
	"sensornet/internal/engine"
	"sensornet/internal/optimize"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
	"sensornet/internal/viz"
)

// shootCell is the cached aggregate of one shootout grid cell: the
// mean, over replications, of one suppression scheme's behaviour under
// one channel model at one density. Every field is finite, so the
// struct round-trips through the disk cache's JSON layer directly.
type shootCell struct {
	Coverage   float64 `json:"coverage"`
	ReachAtL   float64 `json:"reachAtL"`
	Settle     float64 `json:"settle"`
	Broadcasts float64 `json:"broadcasts"`
	Delivered  float64 `json:"delivered"`
	// LostColl counts receptions destroyed by collisions (zero under
	// CFM, SINR outages under the physical model).
	LostColl    float64 `json:"lostColl"`
	SuccessRate float64 `json:"successRate"`
}

func encodeShootCell(v any) ([]byte, error) {
	cell, ok := v.(shootCell)
	if !ok {
		return nil, fmt.Errorf("experiments: expected shootCell, got %T", v)
	}
	return json.Marshal(cell)
}

func decodeShootCell(data []byte) (any, error) {
	var cell shootCell
	err := json.Unmarshal(data, &cell)
	return cell, err
}

// shootScheme is one compared suppression scheme. The key is the
// stable identity that enters job fingerprints and the serving API;
// display and proto may depend on the density (the law-tuned PB does).
type shootScheme struct {
	key     string
	display func(rho float64) string
	proto   func(rho float64) protocol.Protocol
}

// ShootoutModels returns the channel models the shootout crosses, in
// table order.
func ShootoutModels() []channel.Model {
	return []channel.Model{channel.CFM, channel.CAM, channel.ModelSINR}
}

// DefaultShootoutRhos is the density pair the campaign sweeps when the
// caller passes none: a sparse and a dense field.
func DefaultShootoutRhos() []float64 { return []float64{40, 100} }

// shootStudy is the normalised parameter set of one shootout: the
// effective preset, the densities, the channel models crossed, the
// SINR parameters, and the schemes compared. Extracting it keeps the
// sharded job builder (ShootoutJobs) and the figure assembly
// (ShootoutCtx) agreed on job identity, so a shard process and the
// merge process address the same cache entries.
type shootStudy struct {
	pre     Preset
	rhos    []float64
	models  []channel.Model
	sinr    channel.SINRParams
	schemes []shootScheme
	law     analytic.OptimalProbabilityLaw
}

func newShootStudy(pre Preset, rhos []float64) (*shootStudy, error) {
	if pre.Runs < 1 {
		return nil, fmt.Errorf("experiments: shootout needs Runs >= 1, got %d", pre.Runs)
	}
	if len(rhos) == 0 {
		rhos = DefaultShootoutRhos()
	}
	for _, rho := range rhos {
		if rho <= 0 {
			return nil, fmt.Errorf("experiments: shootout density %g not positive", rho)
		}
	}
	if pre.MaxPhases == 0 {
		pre.MaxPhases = 2 * int(pre.Constraints.Latency)
		if pre.MaxPhases < 10 {
			pre.MaxPhases = 10
		}
	}
	law, err := analytic.CalibrateLaw(pre.P, pre.S, 60, pre.Constraints.Latency, 0.02)
	if err != nil {
		return nil, err
	}
	return &shootStudy{
		pre:    pre,
		rhos:   rhos,
		models: ShootoutModels(),
		sinr:   channel.DefaultSINRParams(),
		schemes: []shootScheme{
			{"flooding",
				func(float64) string { return "flooding" },
				func(float64) protocol.Protocol { return protocol.Flooding{} }},
			{"pb",
				func(rho float64) string { return fmt.Sprintf("PB(p=%.2f)", law.P(rho)) },
				func(rho float64) protocol.Protocol { return protocol.Probability{P: law.P(rho)} }},
			{"counter",
				func(float64) string { return "counter(c=3)" },
				func(float64) protocol.Protocol { return protocol.Counter{Threshold: 3} }},
			{"distance",
				func(float64) string { return "distance(d=0.4)" },
				func(float64) protocol.Protocol { return protocol.Distance{MinDist: 0.4} }},
		},
		law: law,
	}, nil
}

// cellJob builds the cached job averaging one scheme's metrics over
// the preset's replications under one channel model at one density.
// Replications use sequential seeds, so every scheme and every model
// at a fixed density sees the same deployments (common random
// numbers): the deployment stream is consumed before any model- or
// scheme-dependent draw.
func (st *shootStudy) cellJob(model channel.Model, rho float64, s shootScheme) engine.Job {
	pre := st.pre
	cfg := pre.SimConfig(rho)
	cfg.Model = model
	if model == channel.ModelSINR {
		cfg.SINR = st.sinr
	}
	cfg.Protocol = s.proto(rho)
	key := engine.Fingerprint("shoot-cell", CacheSalt,
		cfg.P, cfg.R, cfg.Rho, cfg.N, cfg.S, int(model), cfg.Seed,
		cfg.Async, cfg.MaxPhases, s.key,
		st.sinr.Alpha, st.sinr.Beta, st.sinr.N0,
		pre.Constraints.Latency, pre.Runs)
	return engine.JobFunc{
		JobName:  fmt.Sprintf("shoot(%s,%s,rho=%g)", model, s.key, rho),
		Key:      key,
		EncodeFn: encodeShootCell,
		DecodeFn: decodeShootCell,
		Fn: func(ctx context.Context) (any, error) {
			var cell shootCell
			for r := 0; r < pre.Runs; r++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				run := cfg
				//lint:ignore seedderive sequential seeds pair replications across cells so model and scheme comparisons share deployments
				run.Seed = pre.Seed + int64(r)
				res, err := sim.Run(run)
				if err != nil {
					return nil, err
				}
				cell.Coverage += res.Timeline.FinalReachability()
				cell.ReachAtL += res.Timeline.ReachabilityAtPhase(pre.Constraints.Latency)
				cell.Settle += settlePhase(res.PhaseNew)
				cell.Broadcasts += float64(res.Broadcasts)
				cell.Delivered += float64(res.Delivered)
				cell.LostColl += float64(res.LostToCollision)
				cell.SuccessRate += res.SuccessRate
			}
			n := float64(pre.Runs)
			cell.Coverage /= n
			cell.ReachAtL /= n
			cell.Settle /= n
			cell.Broadcasts /= n
			cell.Delivered /= n
			cell.LostColl /= n
			cell.SuccessRate /= n
			return cell, nil
		},
	}
}

// jobs builds the study's cell-job batch, model-major in
// (models, rhos, schemes) order — the positional contract ShootoutCtx
// consumes results under.
func (st *shootStudy) jobs() []engine.Job {
	var jobs []engine.Job
	for _, model := range st.models {
		for _, rho := range st.rhos {
			for _, s := range st.schemes {
				jobs = append(jobs, st.cellJob(model, rho, s))
			}
		}
	}
	return jobs
}

// ShootoutJobs returns the cacheable job set behind the shootout — the
// unit the shard layer and the coordinator/worker backend distribute.
func ShootoutJobs(pre Preset, rhos []float64) ([]engine.Job, error) {
	st, err := newShootStudy(pre, rhos)
	if err != nil {
		return nil, err
	}
	return st.jobs(), nil
}

// ShootoutScheme is one scheme's aggregate at a (model, density) cell,
// in the serving shape.
type ShootoutScheme struct {
	// Scheme is the stable key ("flooding", "pb", "counter",
	// "distance"); Display the human label with resolved parameters.
	Scheme  string `json:"scheme"`
	Display string `json:"display"`
	shootCell
}

// ShootoutRow compares every scheme at one (channel model, density)
// cell.
type ShootoutRow struct {
	Model string  `json:"model"`
	Rho   float64 `json:"rho"`
	// Schemes is in campaign scheme order.
	Schemes []ShootoutScheme `json:"schemes"`
	// Best maps each scheme-selector objective to the winning scheme
	// key (first-wins on ties, in scheme order).
	Best map[string]string `json:"best"`
}

// ShootoutData is the campaign's structured result: the cross of
// suppression schemes and channel models the serving mode publishes.
type ShootoutData struct {
	Models []string      `json:"models"`
	Rhos   []float64     `json:"rhos"`
	Rows   []ShootoutRow `json:"rows"`
}

// Row returns the row at (model, rho), or false if the campaign did
// not sweep that cell.
func (d *ShootoutData) Row(model string, rho float64) (ShootoutRow, bool) {
	for _, row := range d.Rows {
		//lint:ignore floateq rho is a swept grid value compared for identity, not a computed quantity
		if row.Model == model && row.Rho == rho {
			return row, true
		}
	}
	return ShootoutRow{}, false
}

// Shootout renders the shootout figure on a default engine: see
// ShootoutCtx.
func Shootout(pre Preset, rhos []float64) (*FigureResult, error) {
	return ShootoutCtx(context.Background(), defaultEngine(pre), pre, rhos)
}

// ShootoutDataCtx runs the scheme-model cross and returns the
// structured rows the serving mode publishes. One cached engine job
// per (model, density, scheme) cell, so a killed campaign resumes from
// the cache and a cache-only engine serves it without recomputation.
func ShootoutDataCtx(ctx context.Context, eng *engine.Engine, pre Preset,
	rhos []float64) (*ShootoutData, error) {

	if err := surfaceEngineOK(eng); err != nil {
		return nil, err
	}
	st, err := newShootStudy(pre, rhos)
	if err != nil {
		return nil, err
	}
	results, err := eng.Run(ctx, st.jobs())
	if err != nil {
		return nil, err
	}

	data := &ShootoutData{Rhos: st.rhos}
	for _, m := range st.models {
		data.Models = append(data.Models, m.String())
	}
	selectors := optimize.SchemeSelectors()
	idx := 0
	for _, model := range st.models {
		for _, rho := range st.rhos {
			row := ShootoutRow{Model: model.String(), Rho: rho,
				Best: make(map[string]string, len(selectors))}
			ms := make([]optimize.SchemeMetrics, 0, len(st.schemes))
			for _, s := range st.schemes {
				cell, ok := results[idx].Value.(shootCell)
				if !ok {
					return nil, fmt.Errorf("experiments: job %q returned %T, want shootCell",
						results[idx].Name, results[idx].Value)
				}
				idx++
				row.Schemes = append(row.Schemes, ShootoutScheme{
					Scheme: s.key, Display: s.display(rho), shootCell: cell})
				ms = append(ms, optimize.SchemeMetrics{
					Coverage: cell.Coverage, ReachAtL: cell.ReachAtL,
					Broadcasts: cell.Broadcasts, SuccessRate: cell.SuccessRate})
			}
			for _, sel := range selectors {
				if best := optimize.BestScheme(sel, ms); best >= 0 {
					row.Best[sel.Name] = st.schemes[best].key
				}
			}
			data.Rows = append(data.Rows, row)
		}
	}
	return data, nil
}

// ShootoutCtx renders the cross-scheme shootout: flooding, the
// law-tuned PB, counter-based, and distance-based suppression crossed
// over the CFM, CAM, and SINR channel models at each swept density.
// The CFM column shows each scheme's collision-free ceiling; CAM
// charges slot collisions; SINR replaces the binary collision rule
// with cumulative-interference decoding, so dense-field flooding
// degrades smoothly instead of cliff-dropping. When the preset leaves
// MaxPhases unset the study caps it near the latency budget, like the
// degradation study.
func ShootoutCtx(ctx context.Context, eng *engine.Engine, pre Preset,
	rhos []float64) (*FigureResult, error) {

	data, err := ShootoutDataCtx(ctx, eng, pre, rhos)
	if err != nil {
		return nil, err
	}
	st, err := newShootStudy(pre, rhos)
	if err != nil {
		return nil, err
	}
	pre = st.pre

	f := &FigureResult{ID: "shootout",
		Title:  "Suppression-scheme shootout across channel models",
		Series: map[string][]float64{"rhos": st.rhos}}
	chart := viz.NewChart("coverage vs density (SINR column)")
	chart.XLabel, chart.YLabel = "rho", "coverage"
	rowAt := 0
	for _, model := range data.Models {
		t := Table{Title: fmt.Sprintf("%s (mean of %d runs, horizon %d phases)",
			model, pre.Runs, pre.MaxPhases)}
		t.Header = []string{"rho", "scheme", "coverage", "reach@L", "settle",
			"broadcasts", "delivered", "lost/coll", "success"}
		for range st.rhos {
			row := data.Rows[rowAt]
			rowAt++
			for _, s := range row.Schemes {
				t.Add(fmt.Sprintf("%g", row.Rho), s.Display,
					fmtF(s.Coverage), fmtF(s.ReachAtL), fmtF1(s.Settle),
					fmtF1(s.Broadcasts), fmtF1(s.Delivered),
					fmtF1(s.LostColl), fmtF(s.SuccessRate))
			}
		}
		f.Tables = append(f.Tables, t)
	}
	// Per-(model, scheme) series, plus one chart tracking the physical
	// model's coverage ranking over density.
	for si, s := range st.schemes {
		for _, model := range data.Models {
			coverage := make([]float64, 0, len(st.rhos))
			for _, rho := range st.rhos {
				row, ok := data.Row(model, rho)
				if !ok {
					return nil, fmt.Errorf("experiments: shootout missing row (%s, %g)", model, rho)
				}
				coverage = append(coverage, row.Schemes[si].Coverage)
			}
			f.Series["coverage:"+model+":"+s.key] = coverage
			if model == channel.ModelSINR.String() {
				_ = chart.Add(s.key, st.rhos, coverage)
			}
		}
	}
	f.Charts = []string{chart.Render()}
	f.Notes = append(f.Notes,
		fmt.Sprintf("PB probability comes from the calibrated law p* = %.1f/rho", st.law.C),
		fmt.Sprintf("SINR decodes at alpha=%g, beta=%g, N0=%g with interference truncated at the 2R sensing range",
			st.sinr.Alpha, st.sinr.Beta, st.sinr.N0),
		"replications share seeds across cells (common random numbers), and deployments consume the stream before any model- or scheme-dependent draw, so every cell at a density sees the same fields")
	return f, nil
}
