package experiments

import (
	"context"
	"strings"
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/engine"
)

func shootTestPreset() Preset {
	p := QuickSim()
	p.Rhos = nil // the shootout sweeps its own densities
	p.Runs = 2
	return p
}

func TestShootoutJobsShape(t *testing.T) {
	pre := shootTestPreset()
	jobs, err := ShootoutJobs(pre, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ShootoutModels()) * len(DefaultShootoutRhos()) * 4
	if len(jobs) != want {
		t.Fatalf("ShootoutJobs: %d jobs, want %d (models x rhos x schemes)", len(jobs), want)
	}
	// Fingerprints are the distributed protocol's only job identity:
	// they must be unique and stable across builder calls.
	seen := make(map[string]bool)
	for _, j := range jobs {
		if seen[j.Fingerprint()] {
			t.Fatalf("duplicate fingerprint for job %q", j.Name())
		}
		seen[j.Fingerprint()] = true
	}
	again, err := ShootoutJobs(pre, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Fingerprint() != again[i].Fingerprint() {
			t.Fatalf("job %d fingerprint unstable across builder calls", i)
		}
	}

	if _, err := ShootoutJobs(Preset{}, nil); err == nil {
		t.Error("ShootoutJobs accepted Runs = 0")
	}
	if _, err := ShootoutJobs(pre, []float64{-5}); err == nil {
		t.Error("ShootoutJobs accepted a negative density")
	}
}

func TestShootoutDataStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	pre := shootTestPreset()
	rhos := []float64{30}
	data, err := ShootoutDataCtx(context.Background(), engine.New(engine.Config{Workers: 4}), pre, rhos)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Models) != 3 || data.Models[0] != "CFM" || data.Models[2] != "SINR" {
		t.Fatalf("models = %v", data.Models)
	}
	if len(data.Rows) != 3 {
		t.Fatalf("%d rows, want one per model", len(data.Rows))
	}
	for _, row := range data.Rows {
		if len(row.Schemes) != 4 {
			t.Fatalf("row (%s, %g): %d schemes", row.Model, row.Rho, len(row.Schemes))
		}
		keys := []string{"flooding", "pb", "counter", "distance"}
		for i, s := range row.Schemes {
			if s.Scheme != keys[i] {
				t.Fatalf("row (%s, %g) scheme %d = %q, want %q", row.Model, row.Rho, i, s.Scheme, keys[i])
			}
			if s.Coverage < 0 || s.Coverage > 1 {
				t.Fatalf("scheme %s coverage %g outside [0, 1]", s.Scheme, s.Coverage)
			}
		}
		for _, objective := range []string{"coverage", "reach", "energy", "efficiency"} {
			if row.Best[objective] == "" {
				t.Fatalf("row (%s, %g): no winner under %q", row.Model, row.Rho, objective)
			}
		}
		// Flooding transmits everywhere: no suppression scheme can beat
		// it on raw coverage under CFM, where broadcasts are free.
		if row.Model == "CFM" && row.Best["coverage"] != "flooding" {
			t.Errorf("CFM coverage winner = %q, want flooding (first-wins ties)", row.Best["coverage"])
		}
	}
	if _, ok := data.Row("SINR", 30); !ok {
		t.Error("Row(SINR, 30) not found")
	}
	if _, ok := data.Row("SINR", 99); ok {
		t.Error("Row(SINR, 99) found for an unswept density")
	}
}

// TestShootoutDeterministicAcrossWorkers pins the CRN contract: the
// figure (and the underlying cells) are identical for any engine
// worker count, because replication seeds are positional, not
// scheduling-dependent.
func TestShootoutDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	pre := shootTestPreset()
	rhos := []float64{30}
	var renders []string
	for _, workers := range []int{1, 4} {
		f, err := ShootoutCtx(context.Background(), engine.New(engine.Config{Workers: workers}), pre, rhos)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := f.Render(&b); err != nil {
			t.Fatal(err)
		}
		renders = append(renders, b.String())
	}
	if renders[0] != renders[1] {
		t.Fatal("shootout render differs between 1 and 4 workers")
	}
	if !strings.Contains(renders[0], "SINR") || !strings.Contains(renders[0], "flooding") {
		t.Fatalf("render missing expected content:\n%s", renders[0])
	}
}

// TestShootoutFigureJobsRoute pins the -figure shootout distribution
// path: FigureJobs must return exactly the campaign's jobs.
func TestShootoutFigureJobsRoute(t *testing.T) {
	pre := shootTestPreset()
	direct, err := ShootoutJobs(pre, []float64{25, 50})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := FigureJobs("shootout", QuickAnalytic(), pre, 60, nil, nil, []float64{25, 50}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != len(direct) {
		t.Fatalf("FigureJobs(shootout): %d jobs, want %d", len(routed), len(direct))
	}
	for i := range direct {
		if routed[i].Fingerprint() != direct[i].Fingerprint() {
			t.Fatalf("job %d: FigureJobs and ShootoutJobs disagree on identity", i)
		}
	}
}

// TestShootoutSINRDiffersFromCAM guards against the SINR column
// silently running the CAM resolver: at a dense field the physical
// model's graded interference must produce different aggregates than
// CAM's binary collisions for at least one scheme.
func TestShootoutSINRDiffersFromCAM(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign in -short mode")
	}
	pre := shootTestPreset()
	data, err := ShootoutDataCtx(context.Background(), engine.New(engine.Config{Workers: 4}), pre, []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	cam, ok1 := data.Row("CAM", 60)
	sinr, ok2 := data.Row(channel.ModelSINR.String(), 60)
	if !ok1 || !ok2 {
		t.Fatal("missing CAM or SINR row")
	}
	same := true
	for i := range cam.Schemes {
		if cam.Schemes[i].Delivered != sinr.Schemes[i].Delivered ||
			cam.Schemes[i].LostColl != sinr.Schemes[i].LostColl {
			same = false
		}
	}
	if same {
		t.Fatal("SINR aggregates identical to CAM at rho=60 for every scheme: the SINR resolver is not being exercised")
	}
}
