package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Table is a titled text table, the output unit of every experiment.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// fmtF formats a float with 3 decimals, rendering NaN as "-" (an
// infeasible constrained metric).
func fmtF(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// fmtF1 formats with 1 decimal.
func fmtF1(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// FigureResult is one reproduced figure: its tables plus the structured
// series tests and reports read.
type FigureResult struct {
	ID     string
	Title  string
	Tables []Table
	// Series holds named numeric columns indexed like Pre.Rhos (e.g.
	// "optimalP", "reach").
	Series map[string][]float64
	// Charts holds pre-rendered text plots of the figure's curves.
	Charts []string
	Notes  []string
}

// Render writes all tables, charts, and notes.
func (f FigureResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, t := range f.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	for _, c := range f.Charts {
		if _, err := fmt.Fprintln(w, c); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
