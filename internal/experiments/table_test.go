package experiments

import (
	"errors"
	"strings"
	"testing"
)

// failWriter errors after a fixed number of bytes, exercising render
// error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("disk full")
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errors.New("disk full")
	}
	return n, nil
}

func TestTableRenderPropagatesWriteErrors(t *testing.T) {
	tb := Table{Title: "t", Header: []string{"a"}}
	tb.Add("1")
	if err := tb.Render(&failWriter{left: 2}); err == nil {
		t.Fatal("write failure should propagate")
	}
}

func TestFigureRenderPropagatesWriteErrors(t *testing.T) {
	f := FigureResult{ID: "x", Title: "y",
		Tables: []Table{{Title: "t", Rows: [][]string{{"1"}}}},
		Charts: []string{"chart"},
		Notes:  []string{"n"}}
	var full strings.Builder
	if err := f.Render(&full); err != nil {
		t.Fatal(err)
	}
	total := full.Len()
	for _, budget := range []int{1, total / 3, 2 * total / 3, total - 1} {
		if err := f.Render(&failWriter{left: budget}); err == nil {
			t.Fatalf("budget %d of %d: write failure should propagate", budget, total)
		}
	}
	if err := f.Render(&failWriter{left: total + 10}); err != nil {
		t.Fatalf("sufficient budget should succeed: %v", err)
	}
}

func TestTableWithoutTitleOrHeader(t *testing.T) {
	tb := Table{}
	tb.Add("a", "b")
	out := tb.String()
	if !strings.Contains(out, "a") || strings.Contains(out, "---") {
		t.Fatalf("bare table render wrong:\n%s", out)
	}
}

func TestFigureChartsIncludedInRender(t *testing.T) {
	s := quickSurface(t)
	f := Fig4(s)
	if len(f.Charts) != 2 {
		t.Fatalf("fig4 should carry 2 charts, got %d", len(f.Charts))
	}
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "optimal p vs density") {
		t.Fatal("chart missing from rendered figure")
	}
}
