// Package export serialises experiment results to CSV and JSON so the
// regenerated figures can be plotted or diffed outside this repository.
package export

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"sensornet/internal/experiments"
	"sensornet/internal/metrics"
)

// SurfaceCSV writes a (density × probability) metric surface as tidy
// CSV: one row per (rho, p) pair with all metric columns. NaN values
// (infeasible constrained metrics) serialise as empty cells.
func SurfaceCSV(w io.Writer, s *experiments.Surface) error {
	if s == nil {
		return errors.New("export: nil surface")
	}
	cw := csv.NewWriter(w)
	header := []string{"rho", "p", "reach_at_latency", "latency",
		"broadcasts", "reach_at_budget", "success_rate", "final_reach"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, rho := range s.Pre.Rhos {
		for _, pt := range s.Points[i] {
			row := []string{
				formatF(rho), formatF(pt.P), formatF(pt.ReachAtL),
				formatF(pt.Latency), formatF(pt.Broadcasts),
				formatF(pt.ReachAtBudget), formatF(pt.SuccessRate),
				formatF(pt.Final),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesCSV writes a figure's named series as columns over the preset's
// density axis: one row per density, one column per series (sorted by
// name for stable output). Series that are not indexed by density
// (different length) are skipped.
func SeriesCSV(w io.Writer, f *experiments.FigureResult, rhos []float64) error {
	if f == nil {
		return errors.New("export: nil figure")
	}
	names := make([]string, 0, len(f.Series))
	for name, vals := range f.Series {
		if len(vals) == len(rhos) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"rho"}, names...)); err != nil {
		return err
	}
	for i, rho := range rhos {
		row := []string{formatF(rho)}
		for _, name := range names {
			row = append(row, formatF(f.Series[name][i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimelineCSV writes one timeline as phase-indexed CSV.
func TimelineCSV(w io.Writer, tl metrics.Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "cum_reach", "cum_broadcasts"}); err != nil {
		return err
	}
	for i := range tl.Phases {
		err := cw.Write([]string{
			formatF(tl.Phases[i]), formatF(tl.CumReach[i]), formatF(tl.CumBroadcasts[i]),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// figureJSON is the stable JSON shape of a figure result.
type figureJSON struct {
	ID     string               `json:"id"`
	Title  string               `json:"title"`
	Series map[string][]float64 `json:"series"`
	Notes  []string             `json:"notes,omitempty"`
}

// FigureJSON writes a figure's identity, series and notes as JSON.
// NaN values serialise as null via a float-to-pointer pass.
func FigureJSON(w io.Writer, f *experiments.FigureResult) error {
	if f == nil {
		return errors.New("export: nil figure")
	}
	clean := figureJSON{ID: f.ID, Title: f.Title, Notes: f.Notes,
		Series: map[string][]float64{}}
	// JSON cannot carry NaN; replace with -1 sentinels, documented in
	// the stream itself.
	hadNaN := false
	for name, vals := range f.Series {
		out := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				out[i] = -1
				hadNaN = true
			} else {
				out[i] = v
			}
		}
		clean.Series[name] = out
	}
	if hadNaN {
		clean.Notes = append(clean.Notes, "sentinel: -1 marks infeasible (NaN) entries")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(clean)
}

func formatF(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ""
	}
	return fmt.Sprintf("%g", v)
}
