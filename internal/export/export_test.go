package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sensornet/internal/experiments"
	"sensornet/internal/metrics"
	"sensornet/internal/optimize"
)

func testSurface() *experiments.Surface {
	pre := experiments.QuickAnalytic()
	pre.Rhos = []float64{20, 40}
	pre.Grid = []float64{0.1, 0.5}
	return &experiments.Surface{
		Pre: pre,
		Points: [][]optimize.Point{
			{{P: 0.1, ReachAtL: 0.5, Latency: math.NaN()}, {P: 0.5, ReachAtL: 0.8, Latency: 4}},
			{{P: 0.1, ReachAtL: 0.6, Latency: 6}, {P: 0.5, ReachAtL: 0.7, Latency: 5}},
		},
	}
}

func TestSurfaceCSVShape(t *testing.T) {
	var b bytes.Buffer
	if err := SurfaceCSV(&b, testSurface()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if rows[0][0] != "rho" || rows[0][1] != "p" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	// NaN latency serialises as empty.
	if rows[1][3] != "" {
		t.Fatalf("NaN cell = %q, want empty", rows[1][3])
	}
	if rows[2][3] != "4" {
		t.Fatalf("latency cell = %q, want 4", rows[2][3])
	}
}

func TestSurfaceCSVNil(t *testing.T) {
	if err := SurfaceCSV(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil surface should error")
	}
}

func TestSeriesCSV(t *testing.T) {
	f := &experiments.FigureResult{
		ID: "figX",
		Series: map[string][]float64{
			"optimalP": {0.5, 0.2},
			"value":    {0.8, math.NaN()},
			"oddball":  {1, 2, 3}, // wrong length: skipped
		},
	}
	var b bytes.Buffer
	if err := SeriesCSV(&b, f, []float64{20, 40}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if strings.Join(rows[0], ",") != "rho,optimalP,value" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[2][2] != "" {
		t.Fatalf("NaN entry should be empty, got %q", rows[2][2])
	}
}

func TestSeriesCSVNil(t *testing.T) {
	if err := SeriesCSV(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("nil figure should error")
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := metrics.Timeline{
		N:             10,
		Phases:        []float64{0, 1},
		CumReach:      []float64{0.1, 0.4},
		CumBroadcasts: []float64{0, 3},
	}
	var b bytes.Buffer
	if err := TimelineCSV(&b, tl); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[2][1] != "0.4" {
		t.Fatalf("timeline csv wrong: %v", rows)
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	f := &experiments.FigureResult{
		ID:    "fig4",
		Title: "demo",
		Series: map[string][]float64{
			"optimalP": {0.5, math.NaN()},
		},
		Notes: []string{"hello"},
	}
	var b bytes.Buffer
	if err := FigureJSON(&b, f); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string               `json:"id"`
		Series map[string][]float64 `json:"series"`
		Notes  []string             `json:"notes"`
	}
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "fig4" {
		t.Fatalf("id = %q", decoded.ID)
	}
	if decoded.Series["optimalP"][1] != -1 {
		t.Fatalf("NaN should serialise as -1 sentinel: %v", decoded.Series)
	}
	found := false
	for _, n := range decoded.Notes {
		if strings.Contains(n, "sentinel") {
			found = true
		}
	}
	if !found {
		t.Fatal("sentinel note missing")
	}
}

func TestFigureJSONNil(t *testing.T) {
	if err := FigureJSON(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil figure should error")
	}
}

func TestFigureJSONNoNaN(t *testing.T) {
	f := &experiments.FigureResult{ID: "x", Series: map[string][]float64{"a": {1, 2}}}
	var b bytes.Buffer
	if err := FigureJSON(&b, f); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "sentinel") {
		t.Fatal("sentinel note should only appear when NaNs were replaced")
	}
}
