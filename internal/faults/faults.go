// Package faults derives deterministic fault plans for simulation
// runs. The paper's CAM model makes collisions the only failure mode;
// real networked sensor systems also lose packets to fading and lose
// whole nodes to crashes, sleep schedules, and battery depletion — and
// the literature on transmit-only and lossy-channel broadcast shows
// protocol rankings can change once those processes enter the picture.
//
// A Plan realises four orthogonal fault processes on top of collision
// resolution:
//
//   - crash-stop: a node fails permanently at a pre-drawn phase;
//   - duty cycle: a node sleeps periodically (DutyOn awake phases,
//     DutyOff sleeping phases, per-node random offset);
//   - energy depletion: a node crash-stops once its cumulative
//     transmission energy spend exceeds a cap;
//   - link loss: an otherwise-successful reception is independently
//     lost with a fixed probability.
//
// Every random draw comes from streams seeded via engine.DeriveSeed,
// so one (seed, Config, n, horizon) tuple always yields a byte-identical
// fault timeline. Crash draws are additionally coupled across rates:
// the node-level uniforms are drawn before the rate threshold is
// applied, so at a fixed seed the crashed set at rate r is a subset of
// the crashed set at any r' > r and degradation sweeps are monotone by
// construction. The source (node 0) is exempt from node-level faults so
// every run has a broadcast to measure; its packets are still subject
// to link loss.
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"sensornet/internal/engine"
)

// Config parameterises a fault plan. The zero value disables every
// fault process.
type Config struct {
	// CrashRate is the probability that a node suffers an independent
	// crash-stop failure at a uniform phase within the horizon.
	CrashRate float64
	// LossRate is the probability that an otherwise-successful packet
	// reception is independently lost (fading or interference outside
	// the CAM collision model). Applied after collision resolution.
	LossRate float64
	// DutyOn and DutyOff give nodes a periodic sleep schedule: DutyOn
	// awake phases followed by DutyOff sleeping phases, at a per-node
	// random offset. DutyOff == 0 keeps nodes awake permanently;
	// DutyOff > 0 requires DutyOn >= 1.
	DutyOn, DutyOff int
	// EnergyCap crash-stops a node once its cumulative transmission
	// energy spend exceeds the cap (in the channel model's energy
	// units); the transmission that crosses the cap still completes.
	// 0 means unlimited energy.
	EnergyCap float64
}

// Enabled reports whether any fault process is active.
func (c Config) Enabled() bool {
	return c.CrashRate > 0 || c.LossRate > 0 || c.DutyOff > 0 || c.EnergyCap > 0
}

// Validate reports whether the configuration is realisable.
func (c Config) Validate() error {
	if c.CrashRate < 0 || c.CrashRate > 1 {
		return fmt.Errorf("faults: CrashRate %g outside [0, 1]", c.CrashRate)
	}
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("faults: LossRate %g outside [0, 1]", c.LossRate)
	}
	if c.DutyOn < 0 || c.DutyOff < 0 {
		return errors.New("faults: duty-cycle lengths must be >= 0")
	}
	if c.DutyOff > 0 && c.DutyOn < 1 {
		return errors.New("faults: DutyOff > 0 requires DutyOn >= 1")
	}
	if c.EnergyCap < 0 {
		return errors.New("faults: EnergyCap must be >= 0")
	}
	return nil
}

// Plan is the realised fault timeline of one run over n nodes and a
// phase horizon. Crash phases and duty offsets are fixed at
// construction; energy depletion unfolds as the simulator reports
// spends; loss decisions are drawn on demand from a dedicated stream in
// the simulator's deterministic consumption order. A nil *Plan is
// valid and fault-free, so callers can thread one unconditionally.
type Plan struct {
	cfg     Config
	horizon int32
	crashAt []int32 // crash-stop phase per node; -1 = never
	crashed int     // nodes with a realised crash in the horizon
	dutyOff []int32 // per-node duty-cycle phase offset

	spent    []float64
	depleted []bool
	nDeplete int

	loss *rand.Rand
}

// New realises a fault plan for n nodes over phases 1..horizon, drawing
// every schedule from streams derived off seed. Identical arguments
// yield identical plans.
func New(cfg Config, n, horizon int, seed int64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("faults: n must be >= 1, got %d", n)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("faults: horizon must be >= 1, got %d", horizon)
	}
	p := &Plan{
		cfg:      cfg,
		horizon:  int32(horizon),
		crashAt:  make([]int32, n),
		dutyOff:  make([]int32, n),
		spent:    make([]float64, n),
		depleted: make([]bool, n),
		loss:     rand.New(rand.NewSource(engine.DeriveSeed(seed, "faults", "loss"))),
	}
	// Node-level draws happen for every node regardless of the rate, so
	// plans at the same seed but different rates stay coupled (nested
	// crash sets, identical crash phases for shared crashes).
	crash := rand.New(rand.NewSource(engine.DeriveSeed(seed, "faults", "crash")))
	for i := range p.crashAt {
		u := crash.Float64()
		ph := int32(1 + crash.Intn(horizon))
		p.crashAt[i] = -1
		if i != 0 && u < cfg.CrashRate {
			p.crashAt[i] = ph
			p.crashed++
		}
	}
	duty := rand.New(rand.NewSource(engine.DeriveSeed(seed, "faults", "duty")))
	if period := cfg.DutyOn + cfg.DutyOff; period > 0 {
		for i := range p.dutyOff {
			p.dutyOff[i] = int32(duty.Intn(period))
		}
	}
	return p, nil
}

// Horizon returns the plan's phase horizon.
func (p *Plan) Horizon() int32 {
	if p == nil {
		return 0
	}
	return p.horizon
}

// CrashPhase returns the phase at which node u crash-stops, or -1 if it
// never does.
func (p *Plan) CrashPhase(u int32) int32 {
	if p == nil {
		return -1
	}
	return p.crashAt[u]
}

// Alive reports whether node u has neither crash-stopped nor depleted
// its energy budget by phase ph. Sleep is not death: see Awake.
func (p *Plan) Alive(u, ph int32) bool {
	if p == nil {
		return true
	}
	if p.depleted[u] {
		return false
	}
	return p.crashAt[u] < 0 || ph < p.crashAt[u]
}

// Awake reports whether node u's duty-cycle schedule has it awake in
// phase ph. The source never sleeps.
func (p *Plan) Awake(u, ph int32) bool {
	if p == nil || p.cfg.DutyOff == 0 || u == 0 {
		return true
	}
	period := int32(p.cfg.DutyOn + p.cfg.DutyOff)
	k := (ph + p.dutyOff[u]) % period
	return k < int32(p.cfg.DutyOn)
}

// Up reports whether node u can participate in phase ph: alive and
// awake.
func (p *Plan) Up(u, ph int32) bool {
	return p.Alive(u, ph) && p.Awake(u, ph)
}

// NextUp returns the first phase >= ph within the horizon in which node
// u is up, and false when u dies or the horizon ends first. Used to
// defer a sleeping node's pending transmission to its next waking
// phase.
func (p *Plan) NextUp(u, ph int32) (int32, bool) {
	if p == nil {
		return ph, true
	}
	for q := ph; q <= p.horizon; q++ {
		if !p.Alive(u, q) {
			return 0, false
		}
		if p.Awake(u, q) {
			return q, true
		}
	}
	return 0, false
}

// Spend charges one transmission's energy to node u, crash-stopping it
// once cumulative spend exceeds the cap (the crossing transmission
// still completes). It reports whether u survives the spend. The
// source's budget is unlimited.
func (p *Plan) Spend(u int32, cost float64) bool {
	if p == nil || p.cfg.EnergyCap <= 0 || u == 0 {
		return true
	}
	p.spent[u] += cost
	if !p.depleted[u] && p.spent[u] > p.cfg.EnergyCap {
		p.depleted[u] = true
		p.nDeplete++
	}
	return !p.depleted[u]
}

// Drop draws one per-packet loss decision from the plan's loss stream.
// Callers must draw in a deterministic order (the channel resolver
// does), and only for receptions that survived collision resolution.
func (p *Plan) Drop() bool {
	if p == nil || p.cfg.LossRate <= 0 {
		return false
	}
	return p.loss.Float64() < p.cfg.LossRate
}

// Stats summarises the plan's realised node-level faults.
type Stats struct {
	// Crashed counts nodes with a crash-stop somewhere in the horizon.
	Crashed int
	// Depleted counts nodes killed by energy-budget depletion so far.
	Depleted int
}

// Stats returns the plan's realised fault counts.
func (p *Plan) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{Crashed: p.crashed, Depleted: p.nDeplete}
}
