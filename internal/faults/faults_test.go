package faults

import (
	"testing"
)

func mustNew(t *testing.T, cfg Config, n, horizon int, seed int64) *Plan {
	t.Helper()
	p, err := New(cfg, n, horizon, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{CrashRate: -0.1},
		{CrashRate: 1.1},
		{LossRate: -0.1},
		{LossRate: 2},
		{DutyOn: -1},
		{DutyOff: -1},
		{DutyOff: 3}, // DutyOff > 0 needs DutyOn >= 1
		{EnergyCap: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", cfg)
		}
	}
	good := Config{CrashRate: 0.5, LossRate: 0.1, DutyOn: 2, DutyOff: 1, EnergyCap: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", good, err)
	}
	if (Config{}).Enabled() {
		t.Error("zero Config must be disabled")
	}
	if !good.Enabled() {
		t.Error("non-zero Config must be enabled")
	}
}

func TestNewArgumentChecks(t *testing.T) {
	if _, err := New(Config{}, 0, 10, 1); err == nil {
		t.Error("n = 0 should fail")
	}
	if _, err := New(Config{}, 5, 0, 1); err == nil {
		t.Error("horizon = 0 should fail")
	}
	if _, err := New(Config{CrashRate: 2}, 5, 10, 1); err == nil {
		t.Error("invalid config should fail")
	}
}

// TestDeterminism: identical (cfg, n, horizon, seed) yields identical
// crash schedules, duty schedules, and loss-draw sequences.
func TestDeterminism(t *testing.T) {
	cfg := Config{CrashRate: 0.4, LossRate: 0.3, DutyOn: 2, DutyOff: 2, EnergyCap: 5}
	const n, horizon, seed = 60, 40, 1234
	a := mustNew(t, cfg, n, horizon, seed)
	b := mustNew(t, cfg, n, horizon, seed)
	for u := int32(0); u < n; u++ {
		if a.CrashPhase(u) != b.CrashPhase(u) {
			t.Fatalf("node %d: crash phase %d vs %d", u, a.CrashPhase(u), b.CrashPhase(u))
		}
		for ph := int32(1); ph <= horizon; ph++ {
			if a.Up(u, ph) != b.Up(u, ph) {
				t.Fatalf("node %d phase %d: Up diverges", u, ph)
			}
		}
	}
	for i := 0; i < 500; i++ {
		if a.Drop() != b.Drop() {
			t.Fatalf("loss draw %d diverges", i)
		}
	}
	// A different seed must yield a different crash schedule.
	c := mustNew(t, cfg, n, horizon, seed+1)
	same := true
	for u := int32(0); u < n; u++ {
		if a.CrashPhase(u) != c.CrashPhase(u) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical crash schedules")
	}
}

// TestCrashCoupling: at a fixed seed the crashed set at a low rate is
// a subset of the crashed set at any higher rate, with identical crash
// phases for the shared nodes — the property that makes degradation
// sweeps monotone by construction.
func TestCrashCoupling(t *testing.T) {
	const n, horizon, seed = 200, 50, 99
	rates := []float64{0.1, 0.3, 0.5, 0.9}
	plans := make([]*Plan, len(rates))
	for i, r := range rates {
		plans[i] = mustNew(t, Config{CrashRate: r}, n, horizon, seed)
	}
	for i := 1; i < len(plans); i++ {
		lo, hi := plans[i-1], plans[i]
		if lo.Stats().Crashed > hi.Stats().Crashed {
			t.Errorf("rate %g crashed %d > rate %g crashed %d",
				rates[i-1], lo.Stats().Crashed, rates[i], hi.Stats().Crashed)
		}
		for u := int32(0); u < n; u++ {
			if lo.CrashPhase(u) < 0 {
				continue // not crashed at the lower rate
			}
			if hi.CrashPhase(u) != lo.CrashPhase(u) {
				t.Fatalf("node %d: crash at rate %g (phase %d) not preserved at rate %g (phase %d)",
					u, rates[i-1], lo.CrashPhase(u), rates[i], hi.CrashPhase(u))
			}
		}
	}
	// Sanity: the extreme rates realise different crash counts.
	if plans[0].Stats().Crashed >= plans[len(plans)-1].Stats().Crashed {
		t.Errorf("crash counts should grow with the rate: %d vs %d",
			plans[0].Stats().Crashed, plans[len(plans)-1].Stats().Crashed)
	}
}

// TestSourceExemption: node 0 never crashes, sleeps, or depletes, even
// at the extreme rates, so every run has a broadcast to measure.
func TestSourceExemption(t *testing.T) {
	p := mustNew(t, Config{CrashRate: 1, DutyOn: 1, DutyOff: 10, EnergyCap: 0.1}, 30, 20, 7)
	if got := p.CrashPhase(0); got != -1 {
		t.Errorf("source crash phase = %d, want -1", got)
	}
	for ph := int32(1); ph <= 20; ph++ {
		if !p.Up(0, ph) {
			t.Fatalf("source down at phase %d", ph)
		}
	}
	for i := 0; i < 10; i++ {
		if !p.Spend(0, 100) {
			t.Fatal("source energy budget must be unlimited")
		}
	}
	if p.Stats().Depleted != 0 {
		t.Errorf("source spends must not deplete: %+v", p.Stats())
	}
	// Every other node crashed at rate 1.
	if got := p.Stats().Crashed; got != 29 {
		t.Errorf("Crashed = %d, want 29", got)
	}
}

func TestCrashStopsParticipation(t *testing.T) {
	p := mustNew(t, Config{CrashRate: 1}, 10, 30, 3)
	for u := int32(1); u < 10; u++ {
		at := p.CrashPhase(u)
		if at < 1 || at > 30 {
			t.Fatalf("node %d crash phase %d outside horizon", u, at)
		}
		if at > 1 && !p.Up(u, at-1) {
			t.Errorf("node %d down before its crash phase", u)
		}
		if p.Up(u, at) || p.Up(u, at+5) {
			t.Errorf("node %d up at or after its crash phase", u)
		}
		if _, ok := p.NextUp(u, at); ok {
			t.Errorf("NextUp must fail from node %d's crash phase on", u)
		}
	}
}

func TestDutyCycle(t *testing.T) {
	p := mustNew(t, Config{DutyOn: 2, DutyOff: 3}, 20, 100, 11)
	for u := int32(1); u < 20; u++ {
		awake := 0
		for ph := int32(1); ph <= 100; ph++ {
			if p.Awake(u, ph) {
				awake++
			}
			// The schedule is periodic with period 5.
			if p.Awake(u, ph) != p.Awake(u, ph+5) {
				t.Fatalf("node %d: schedule not periodic at phase %d", u, ph)
			}
		}
		if awake != 40 {
			t.Errorf("node %d awake %d/100 phases, want 40 (2 of every 5)", u, awake)
		}
		// NextUp lands on an awake phase within one period.
		for ph := int32(1); ph <= 20; ph++ {
			up, ok := p.NextUp(u, ph)
			if !ok {
				t.Fatalf("node %d: NextUp(%d) failed inside the horizon", u, ph)
			}
			if up < ph || up >= ph+5 || !p.Awake(u, up) {
				t.Fatalf("node %d: NextUp(%d) = %d is not the next awake phase", u, ph, up)
			}
		}
	}
	// Offsets desynchronise the fleet: not every node shares node 1's
	// schedule.
	diverse := false
	for u := int32(2); u < 20; u++ {
		if p.Awake(u, 1) != p.Awake(1, 1) || p.Awake(u, 3) != p.Awake(1, 3) {
			diverse = true
			break
		}
	}
	if !diverse {
		t.Error("duty offsets left every node on the same schedule")
	}
}

func TestEnergyDepletion(t *testing.T) {
	p := mustNew(t, Config{EnergyCap: 2}, 5, 10, 1)
	// Two unit spends reach the cap without exceeding it.
	if !p.Spend(1, 1) || !p.Spend(1, 1) {
		t.Fatal("spends within the cap must not deplete")
	}
	if !p.Up(1, 5) {
		t.Fatal("node at exactly the cap is still up")
	}
	// The crossing spend depletes: the transmission completes but the
	// node is down afterwards.
	if p.Spend(1, 1) {
		t.Fatal("crossing spend must report depletion")
	}
	if p.Up(1, 5) || p.Alive(1, 5) {
		t.Fatal("depleted node must be down")
	}
	if got := p.Stats().Depleted; got != 1 {
		t.Fatalf("Depleted = %d, want 1", got)
	}
	// Depletion is idempotent.
	p.Spend(1, 1)
	if got := p.Stats().Depleted; got != 1 {
		t.Fatalf("Depleted double-counted: %d", got)
	}
}

// TestNilPlan: a nil *Plan is valid and fault-free everywhere, so
// callers can thread one unconditionally.
func TestNilPlan(t *testing.T) {
	var p *Plan
	if p.Horizon() != 0 {
		t.Error("nil Horizon")
	}
	if p.CrashPhase(3) != -1 {
		t.Error("nil CrashPhase")
	}
	if !p.Alive(3, 100) || !p.Awake(3, 100) || !p.Up(3, 100) {
		t.Error("nil plan must report every node up")
	}
	if up, ok := p.NextUp(3, 7); !ok || up != 7 {
		t.Errorf("nil NextUp = (%d, %v), want (7, true)", up, ok)
	}
	if !p.Spend(3, 1e9) {
		t.Error("nil Spend must never deplete")
	}
	if p.Drop() {
		t.Error("nil Drop must never lose packets")
	}
	if p.Stats() != (Stats{}) {
		t.Error("nil Stats must be zero")
	}
}

func TestLossRateExtremes(t *testing.T) {
	never := mustNew(t, Config{LossRate: 0, CrashRate: 0.1}, 5, 10, 1)
	always := mustNew(t, Config{LossRate: 1}, 5, 10, 1)
	for i := 0; i < 100; i++ {
		if never.Drop() {
			t.Fatal("LossRate 0 must never drop")
		}
		if !always.Drop() {
			t.Fatal("LossRate 1 must always drop")
		}
	}
}
