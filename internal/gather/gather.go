// Package gather implements aggregating data collection (convergecast)
// on top of the two communication models — the application class the
// paper's related work designs under CFM (in-network processing and
// data gathering) and the natural companion case study to broadcasting.
//
// Every node holds one reading; readings flow up a BFS tree rooted at
// the sink (node 0), each node unicasting its aggregated subtree value
// to its parent exactly once. Under CFM the schedule is trivial: one
// slot per depth level, deepest first, N-1 transmissions. Under CAM the
// same algorithm must spend extra slots and transmissions on contention
// windows and acknowledgment rounds — the package measures exactly how
// much, which is the CFM-vs-CAM cost gap for a unicast-heavy workload.
package gather

import (
	"errors"
	"math/rand"
	"sort"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
)

// Config parameterises one gathering round.
type Config struct {
	// Model selects the communication model (CFM or CAM; carrier
	// sensing follows the deployment's lists when chosen).
	Model channel.Model
	// Window is the contention window in slots for each CAM level
	// round (>= 1; ignored under CFM). Windows adapt upward to the
	// number of pending senders.
	Window int
	// MaxRoundsPerLevel caps the ARQ rounds spent on one tree level
	// (default 100).
	MaxRoundsPerLevel int
	// Seed drives slot choices.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Window < 1 {
		c.Window = 1
	}
	if c.MaxRoundsPerLevel == 0 {
		c.MaxRoundsPerLevel = 100
	}
}

// Result is the measured cost of one gathering round.
type Result struct {
	// Tree statistics.
	TreeNodes int // nodes connected to the sink (participants)
	Depth     int // BFS tree depth
	// Slots is the total time in slots.
	Slots int
	// Transmissions counts every data and ACK packet sent.
	Transmissions int
	// Delivered is the number of nodes whose reading (directly or in
	// an aggregate) arrived at the sink.
	Delivered int
	// Coverage is Delivered / TreeNodes.
	Coverage float64
}

// Run executes one gathering round over the deployment.
func Run(dep *deploy.Deployment, cfg Config) (*Result, error) {
	if dep == nil {
		return nil, errors.New("gather: nil deployment")
	}
	cfg.applyDefaults()
	if cfg.Model == channel.CAMCarrierSense && dep.Sensing == nil {
		return nil, errors.New("gather: carrier sense needs deploy.Config.WithSensing")
	}

	parent, depth, order := bfsTree(dep)
	res := &Result{TreeNodes: len(order)}
	for _, u := range order {
		if depth[u] > res.Depth {
			res.Depth = depth[u]
		}
	}
	if res.TreeNodes <= 1 {
		res.Delivered = res.TreeNodes
		res.Coverage = 1
		return res, nil
	}

	if cfg.Model == channel.CFM {
		runCFM(res, depth, order)
		return res, nil
	}
	if err := runCAM(dep, cfg, res, parent, depth, order); err != nil {
		return nil, err
	}
	return res, nil
}

// bfsTree builds the gathering tree: parent pointers, depths, and the
// BFS order of nodes connected to the sink.
func bfsTree(dep *deploy.Deployment) (parent []int32, depth []int, order []int32) {
	n := dep.N()
	parent = make([]int32, n)
	depth = make([]int, n)
	for i := range parent {
		parent[i] = -1
		depth[i] = -1
	}
	depth[0] = 0
	order = append(order, 0)
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, v := range dep.Neighbors[u] {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				parent[v] = u
				order = append(order, v)
			}
		}
	}
	return parent, depth, order
}

// runCFM costs the collision-free schedule: all nodes of one level
// transmit in a single slot (fully parallel atomic unicasts), deepest
// level first; every connected reading arrives.
func runCFM(res *Result, depth []int, order []int32) {
	res.Slots = res.Depth
	res.Transmissions = res.TreeNodes - 1
	res.Delivered = res.TreeNodes
	res.Coverage = 1
	_ = depth
	_ = order
}

// runCAM executes the collision-aware schedule: per level (deepest
// first), pending senders contend in adaptive windows, parents ACK the
// unicasts they decode in a mirrored ACK window, and unacknowledged
// senders retry. A node whose transmission never completes leaves its
// subtree's readings stranded.
func runCAM(dep *deploy.Deployment, cfg Config, res *Result, parent []int32, depth []int, order []int32) error {
	resolver, err := channel.NewResolver(cfg.Model, dep)
	if err != nil {
		return err
	}
	//lint:ignore seedderive Config.Seed is the caller-provided root seed for the convergecast contention stream
	rng := rand.New(rand.NewSource(cfg.Seed))

	byLevel := make([][]int32, res.Depth+1)
	for _, u := range order {
		byLevel[depth[u]] = append(byLevel[depth[u]], u)
	}
	completed := make([]bool, dep.N())
	completed[0] = true

	for level := res.Depth; level >= 1; level-- {
		pending := append([]int32(nil), byLevel[level]...)
		for round := 0; round < cfg.MaxRoundsPerLevel && len(pending) > 0; round++ {
			window := cfg.Window
			if len(pending) > window {
				window = len(pending)
			}
			// Data window.
			bySlot := make([][]channel.Unicast, window)
			for _, u := range pending {
				s := rng.Intn(window)
				bySlot[s] = append(bySlot[s], channel.Unicast{From: u, To: parent[u]})
				res.Transmissions++
			}
			res.Slots += window
			received := make(map[int32]bool)
			for _, txs := range bySlot {
				resolver.ResolveSlotUnicast(txs, func(u channel.Unicast) {
					received[u.From] = true
				}, nil)
			}
			// ACK window: each parent that decoded at least one child
			// broadcasts a single batch ACK listing them; children
			// are confirmed iff they decode their parent's ACK, which
			// contends under the same collision rules.
			ackParents := make(map[int32]bool)
			for u := range received {
				ackParents[parent[u]] = true
			}
			parents := make([]int32, 0, len(ackParents))
			for p := range ackParents {
				parents = append(parents, p)
			}
			sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
			ackBySlot := make([][]int32, window)
			for _, p := range parents {
				s := rng.Intn(window)
				ackBySlot[s] = append(ackBySlot[s], p)
				res.Transmissions++
			}
			res.Slots += window
			acked := make(map[int32]bool)
			for _, txs := range ackBySlot {
				resolver.ResolveSlot(txs, func(from, to int32) {
					if received[to] && parent[to] == from {
						acked[to] = true
					}
				})
			}
			next := pending[:0]
			for _, u := range pending {
				if acked[u] {
					completed[u] = true
				} else {
					next = append(next, u)
				}
			}
			pending = next
		}
	}

	// A reading reaches the sink iff every edge on its path completed.
	for _, u := range order {
		ok := true
		for v := u; v != 0; v = parent[v] {
			if !completed[v] {
				ok = false
				break
			}
		}
		if ok {
			res.Delivered++
		}
	}
	res.Coverage = float64(res.Delivered) / float64(res.TreeNodes)
	return nil
}
