package gather

import (
	"math/rand"
	"testing"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
)

func genDep(t testing.TB, rho float64, seed int64) *deploy.Deployment {
	t.Helper()
	dep, err := deploy.Generate(deploy.Config{P: 4, Rho: rho},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestNilDeployment(t *testing.T) {
	if _, err := Run(nil, Config{Model: channel.CFM}); err == nil {
		t.Fatal("nil deployment should error")
	}
}

func TestCarrierSenseNeedsSensingLists(t *testing.T) {
	dep := genDep(t, 15, 1)
	if _, err := Run(dep, Config{Model: channel.CAMCarrierSense}); err == nil {
		t.Fatal("carrier sense without sensing lists should error")
	}
}

func TestCFMGatherExactCosts(t *testing.T) {
	dep := genDep(t, 20, 2)
	res, err := Run(dep, Config{Model: channel.CFM})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 || res.Delivered != res.TreeNodes {
		t.Fatalf("CFM gather must deliver everything: %+v", res)
	}
	if res.Transmissions != res.TreeNodes-1 {
		t.Fatalf("CFM transmissions = %d, want N-1 = %d",
			res.Transmissions, res.TreeNodes-1)
	}
	if res.Slots != res.Depth {
		t.Fatalf("CFM slots = %d, want depth %d", res.Slots, res.Depth)
	}
}

func TestCAMGatherDeliversMostReadings(t *testing.T) {
	dep := genDep(t, 25, 3)
	res, err := Run(dep, Config{Model: channel.CAM, Window: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.95 {
		t.Fatalf("CAM gather with ARQ should deliver nearly all: %+v", res)
	}
}

func TestCAMCostsExceedCFM(t *testing.T) {
	// The headline of the unicast case study: the CFM schedule is a
	// lower bound that CAM contention can only exceed.
	dep := genDep(t, 30, 4)
	cfm, err := Run(dep, Config{Model: channel.CFM})
	if err != nil {
		t.Fatal(err)
	}
	cam, err := Run(dep, Config{Model: channel.CAM, Window: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cam.Slots <= cfm.Slots {
		t.Fatalf("CAM slots %d should exceed CFM's %d", cam.Slots, cfm.Slots)
	}
	if cam.Transmissions <= cfm.Transmissions {
		t.Fatalf("CAM transmissions %d should exceed CFM's %d",
			cam.Transmissions, cfm.Transmissions)
	}
}

func TestGatherTimeGapGrowsWithDensity(t *testing.T) {
	// Contention windows scale with level population, so the CAM/CFM
	// *time* gap widens with density (the per-node retransmission
	// count stays roughly constant thanks to load-matched windows).
	gap := func(rho float64) float64 {
		total := 0.0
		for seed := int64(0); seed < 3; seed++ {
			dep := genDep(t, rho, 50+seed)
			cfm, err := Run(dep, Config{Model: channel.CFM})
			if err != nil {
				t.Fatal(err)
			}
			cam, err := Run(dep, Config{Model: channel.CAM, Window: 3, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			total += float64(cam.Slots) / float64(cfm.Slots)
		}
		return total / 3
	}
	lo, hi := gap(10), gap(50)
	if hi <= lo {
		t.Fatalf("CAM/CFM time gap should grow with density: %v vs %v", lo, hi)
	}
}

func TestGatherDeterministicForSeed(t *testing.T) {
	dep := genDep(t, 25, 6)
	a, err := Run(dep, Config{Model: channel.CAM, Window: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(dep, Config{Model: channel.CAM, Window: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same-seed gathers differ: %+v vs %+v", a, b)
	}
}

func TestGatherSingleNode(t *testing.T) {
	dep, err := deploy.Generate(deploy.Config{P: 1, N: 1},
		rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(dep, Config{Model: channel.CAM, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 || res.Transmissions != 0 {
		t.Fatalf("single-node gather should be free: %+v", res)
	}
}

func TestGatherTreeCoversComponent(t *testing.T) {
	dep := genDep(t, 20, 8)
	res, err := Run(dep, Config{Model: channel.CFM})
	if err != nil {
		t.Fatal(err)
	}
	if res.TreeNodes != dep.ReachableFromSource() {
		t.Fatalf("tree has %d nodes, component has %d",
			res.TreeNodes, dep.ReachableFromSource())
	}
}

func TestGatherRoundCapLimitsCoverage(t *testing.T) {
	dep := genDep(t, 60, 9)
	res, err := Run(dep, Config{Model: channel.CAM, Window: 1,
		MaxRoundsPerLevel: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage >= 1 {
		t.Fatalf("one contention round at rho=60 should strand readings: %+v", res)
	}
	full, err := Run(dep, Config{Model: channel.CAM, Window: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full.Coverage <= res.Coverage {
		t.Fatalf("more rounds should not reduce coverage: %v vs %v",
			full.Coverage, res.Coverage)
	}
}

func BenchmarkGatherCAMRho40(b *testing.B) {
	dep := genDep(b, 40, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Run(dep, Config{Model: channel.CAM, Window: 3, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
