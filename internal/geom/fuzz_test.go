package geom

import (
	"math"
	"testing"
)

// FuzzLensArea checks the core geometric invariants under arbitrary
// inputs: symmetry in the radii, bounds, and monotone decay with
// distance. These invariants keep the ring recursion of the analytical
// framework well-posed for every configuration a caller can construct.
func FuzzLensArea(f *testing.F) {
	f.Add(1.0, 1.0, 0.5)
	f.Add(2.0, 0.5, 3.0)
	f.Add(0.0, 1.0, 0.0)
	f.Add(5.0, 5.0, 10.0)
	f.Fuzz(func(t *testing.T, r1, r2, d float64) {
		if math.IsNaN(r1) || math.IsNaN(r2) || math.IsNaN(d) ||
			math.IsInf(r1, 0) || math.IsInf(r2, 0) || math.IsInf(d, 0) {
			t.Skip()
		}
		if math.Abs(r1) > 1e6 || math.Abs(r2) > 1e6 || math.Abs(d) > 1e6 {
			t.Skip()
		}
		a := LensArea(r1, r2, d)
		if math.IsNaN(a) || a < 0 {
			t.Fatalf("LensArea(%v,%v,%v) = %v", r1, r2, d, a)
		}
		if b := LensArea(r2, r1, d); math.Abs(a-b) > 1e-6*(1+a) {
			t.Fatalf("asymmetric: %v vs %v", a, b)
		}
		bound := DiskArea(math.Min(math.Max(r1, 0), math.Max(r2, 0)))
		if a > bound*(1+1e-9)+1e-9 {
			t.Fatalf("area %v exceeds bound %v", a, bound)
		}
		if farther := LensArea(r1, r2, math.Abs(d)+0.25); farther > a+1e-6*(1+a) {
			t.Fatalf("area grew with distance: %v -> %v", a, farther)
		}
	})
}

// FuzzTransmissionAreas checks the disk-partition identity for every
// ring index and offset the analytical engine can request.
func FuzzTransmissionAreas(f *testing.F) {
	f.Add(1, 0.0)
	f.Add(3, 0.5)
	f.Add(5, 1.0)
	f.Fuzz(func(t *testing.T, j int, x float64) {
		if j < 1 || j > 50 || math.IsNaN(x) || x < 0 || x > 1 {
			t.Skip()
		}
		rp := RingPartition{R: 1, P: 50}
		a := rp.TransmissionAreas(j, x)
		sum := a[0] + a[1] + a[2]
		if math.Abs(sum-math.Pi) > 1e-6 {
			t.Fatalf("partition broken at j=%d x=%v: sum=%v", j, x, sum)
		}
		for i, v := range a {
			if v < 0 {
				t.Fatalf("negative share %d at j=%d x=%v: %v", i, j, x, v)
			}
		}
	})
}
