// Package geom implements the planar geometry used by the analytical
// framework of the paper: circle–circle intersection areas (Eq. 1), the
// partition of a node's transmission disk across the concentric rings of
// the deployment field (Fig. 3), and the carrier-sensing annulus areas of
// Appendix A.
package geom

import "math"

// Point is a position in the deployment plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It is
// the comparison-friendly form used by neighbour queries.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the distance of p from the origin.
func (p Point) Norm() float64 {
	return math.Hypot(p.X, p.Y)
}

// DiskArea returns the area of a disk of radius r (0 for r <= 0).
func DiskArea(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return math.Pi * r * r
}

// AnnulusArea returns the area of the annulus with inner radius r1 and
// outer radius r2 (0 when r2 <= r1).
func AnnulusArea(r1, r2 float64) float64 {
	if r2 <= r1 {
		return 0
	}
	return DiskArea(r2) - DiskArea(r1)
}

// LensArea returns the intersection area of a circle of radius r1
// centred at the origin and a circle of radius r2 whose centre lies at
// distance d. Degenerate configurations (containment, disjoint circles,
// non-positive radii) are handled exactly.
func LensArea(r1, r2, d float64) float64 {
	if r1 <= 0 || r2 <= 0 {
		return 0
	}
	if d < 0 {
		d = -d
	}
	if d >= r1+r2 {
		return 0
	}
	if d <= math.Abs(r1-r2) {
		return DiskArea(math.Min(r1, r2))
	}
	// Circular segment decomposition. Clamp the acos arguments against
	// round-off at tangency.
	a1 := clampUnit((d*d + r1*r1 - r2*r2) / (2 * d * r1))
	a2 := clampUnit((d*d + r2*r2 - r1*r1) / (2 * d * r2))
	alpha := math.Acos(a1)
	beta := math.Acos(a2)
	tri := 0.5 * math.Sqrt(math.Max(0,
		(-d+r1+r2)*(d+r1-r2)*(d-r1+r2)*(d+r1+r2)))
	area := r1*r1*alpha + r2*r2*beta - tri
	// Near-tangency round-off can push the formula a hair past the
	// contained-disk bound; clamp so downstream partitions stay exact.
	if bound := DiskArea(math.Min(r1, r2)); area > bound {
		area = bound
	}
	if area < 0 {
		area = 0
	}
	return area
}

func clampUnit(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}

// F is the paper's f(D1, D2, x) (Eq. 1): the intersection area of circle
// L1 of radius d1 centred at the origin with circle L2 of radius d2 whose
// centre sits at signed distance x from the border of L1 (positive
// outside, negative inside), i.e. at distance d1 + x from the origin.
func F(d1, d2, x float64) float64 {
	return LensArea(d1, d2, d1+x)
}
