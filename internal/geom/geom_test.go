package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPointDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if p.Dist(q) != 5 {
		t.Fatalf("Dist = %v, want 5", p.Dist(q))
	}
	if p.Dist2(q) != 25 {
		t.Fatalf("Dist2 = %v, want 25", p.Dist2(q))
	}
	if q.Norm() != 5 {
		t.Fatalf("Norm = %v, want 5", q.Norm())
	}
}

func TestDiskAndAnnulusArea(t *testing.T) {
	if !almostEqual(DiskArea(2), 4*math.Pi, 1e-12) {
		t.Fatal("disk area wrong")
	}
	if DiskArea(-1) != 0 || DiskArea(0) != 0 {
		t.Fatal("non-positive radius should give 0")
	}
	if !almostEqual(AnnulusArea(1, 2), 3*math.Pi, 1e-12) {
		t.Fatal("annulus area wrong")
	}
	if AnnulusArea(2, 1) != 0 {
		t.Fatal("inverted annulus should give 0")
	}
}

func TestLensAreaDisjoint(t *testing.T) {
	if got := LensArea(1, 1, 2.5); got != 0 {
		t.Fatalf("disjoint circles area = %v, want 0", got)
	}
	if got := LensArea(1, 1, 2); got != 0 {
		t.Fatalf("tangent circles area = %v, want 0", got)
	}
}

func TestLensAreaContainment(t *testing.T) {
	if got := LensArea(5, 1, 2); !almostEqual(got, math.Pi, 1e-12) {
		t.Fatalf("contained circle area = %v, want pi", got)
	}
	if got := LensArea(1, 5, 2); !almostEqual(got, math.Pi, 1e-12) {
		t.Fatalf("containing circle area = %v, want pi", got)
	}
	if got := LensArea(3, 3, 0); !almostEqual(got, 9*math.Pi, 1e-12) {
		t.Fatalf("coincident circles area = %v, want 9pi", got)
	}
}

func TestLensAreaEqualCirclesClosedForm(t *testing.T) {
	// Two unit circles at distance d: 2 acos(d/2) - (d/2)·sqrt(4-d²).
	for _, d := range []float64{0.1, 0.5, 1, 1.5, 1.9} {
		want := 2*math.Acos(d/2) - d/2*math.Sqrt(4-d*d)
		got := LensArea(1, 1, d)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("LensArea(1,1,%v) = %v, want %v", d, got, want)
		}
	}
}

func TestLensAreaNegativeDistance(t *testing.T) {
	if LensArea(1, 1, -0.5) != LensArea(1, 1, 0.5) {
		t.Fatal("lens area should depend on |d|")
	}
}

func TestLensAreaNonPositiveRadius(t *testing.T) {
	if LensArea(0, 1, 0.5) != 0 || LensArea(1, -2, 0.5) != 0 {
		t.Fatal("non-positive radius should give 0 area")
	}
}

func TestLensAreaSymmetryProperty(t *testing.T) {
	f := func(r1Raw, r2Raw, dRaw uint16) bool {
		r1 := 0.1 + float64(r1Raw%500)/100
		r2 := 0.1 + float64(r2Raw%500)/100
		d := float64(dRaw%1200) / 100
		return almostEqual(LensArea(r1, r2, d), LensArea(r2, r1, d), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLensAreaMonotoneInDistanceProperty(t *testing.T) {
	f := func(r1Raw, r2Raw, dRaw uint16) bool {
		r1 := 0.1 + float64(r1Raw%500)/100
		r2 := 0.1 + float64(r2Raw%500)/100
		d := float64(dRaw%1000) / 100
		return LensArea(r1, r2, d)+1e-9 >= LensArea(r1, r2, d+0.05)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLensAreaBoundedProperty(t *testing.T) {
	f := func(r1Raw, r2Raw, dRaw uint16) bool {
		r1 := 0.1 + float64(r1Raw%500)/100
		r2 := 0.1 + float64(r2Raw%500)/100
		d := float64(dRaw%1500) / 100
		a := LensArea(r1, r2, d)
		bound := DiskArea(math.Min(r1, r2))
		return a >= 0 && a <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLensAreaMonteCarlo(t *testing.T) {
	// Independent verification by rejection sampling.
	rng := rand.New(rand.NewSource(7))
	r1, r2, d := 2.0, 1.3, 1.7
	want := LensArea(r1, r2, d)
	const samples = 400000
	hits := 0
	// Sample in the bounding box of circle 2 (centred at (d, 0)).
	for i := 0; i < samples; i++ {
		x := d + (rng.Float64()*2-1)*r2
		y := (rng.Float64()*2 - 1) * r2
		if x*x+y*y <= r1*r1 && (x-d)*(x-d)+y*y <= r2*r2 {
			hits++
		}
	}
	got := float64(hits) / samples * (2 * r2) * (2 * r2)
	if !almostEqual(got, want, 0.05) {
		t.Fatalf("Monte Carlo lens area %v vs analytic %v", got, want)
	}
}

func TestFMatchesLensArea(t *testing.T) {
	// f(D1, D2, x) places the second centre at distance D1 + x.
	if F(2, 1, 0.5) != LensArea(2, 1, 2.5) {
		t.Fatal("F should delegate with d = D1 + x")
	}
	// Negative x: centre inside L1.
	if F(2, 1, -0.5) != LensArea(2, 1, 1.5) {
		t.Fatal("F with negative x wrong")
	}
}
