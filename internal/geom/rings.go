package geom

import "math"

// RingPartition describes the paper's decomposition of the circular
// deployment field of radius P·r into P concentric rings of width r
// (§4.2.2). Ring j (1-indexed) spans radii [(j-1)·r, j·r].
type RingPartition struct {
	R float64 // transmission radius r (= ring width)
	P int     // number of rings
}

// FieldRadius returns the radius P·r of the whole deployment field.
func (rp RingPartition) FieldRadius() float64 {
	return float64(rp.P) * rp.R
}

// FieldArea returns the area of the whole deployment field.
func (rp RingPartition) FieldArea() float64 {
	return DiskArea(rp.FieldRadius())
}

// RingArea returns C_j = π r² (j² - (j-1)²), the area of ring j. Rings
// outside 1..P have zero area.
func (rp RingPartition) RingArea(j int) float64 {
	if j < 1 || j > rp.P {
		return 0
	}
	fj := float64(j)
	return math.Pi * rp.R * rp.R * (fj*fj - (fj-1)*(fj-1))
}

// RingOf returns the 1-indexed ring containing a point at distance d
// from the centre, clamped to [1, P]. Points exactly on a boundary
// belong to the outer ring, matching the half-open spans [(j-1)r, jr).
func (rp RingPartition) RingOf(d float64) int {
	if d < 0 {
		d = -d
	}
	j := int(d/rp.R) + 1
	if j < 1 {
		j = 1
	}
	if j > rp.P {
		j = rp.P
	}
	return j
}

// TransmissionAreas returns A(x, j-1), A(x, j), A(x, j+1): the split of
// the transmission disk of a node in ring j, at distance x in [0, r]
// from the ring's inner boundary, across the only three rings it can
// reach (Fig. 3). The three areas always sum to π r².
//
// For j = 1 the "ring 0" share is zero, and for j = P the "ring P+1"
// share covers area outside the field; callers weight it by the (zero)
// node count there.
func (rp RingPartition) TransmissionAreas(j int, x float64) [3]float64 {
	r := rp.R
	var a [3]float64
	a[0] = F(r*float64(j-1), r, x)        // A(x, j-1)
	a[1] = F(r*float64(j), r, x-r) - a[0] // A(x, j)
	a[2] = DiskArea(r) - a[0] - a[1]      // A(x, j+1)
	for i := range a {
		if a[i] < 0 { // guard against round-off at ring boundaries
			a[i] = 0
		}
	}
	return a
}

// CarrierSenseAreas returns B(x, j-2) .. B(x, j+2): the split, across
// rings, of the carrier-sensing annulus (between radii r and 2r from the
// node) for a node in ring j at distance x from the ring's inner
// boundary (Appendix A). The five areas sum to the annulus area 3π r².
func (rp RingPartition) CarrierSenseAreas(j int, x float64) [5]float64 {
	r := rp.R
	a := rp.TransmissionAreas(j, x)
	var b [5]float64
	// Cumulative intersections of the 2r sensing disk with the growing
	// inner disks, minus the parts already attributed.
	b[0] = F(r*float64(j-2), 2*r, x+r)
	b[1] = F(r*float64(j-1), 2*r, x) - b[0] - a[0]
	b[2] = F(r*float64(j), 2*r, x-r) - (b[0] + b[1]) - (a[0] + a[1])
	b[3] = F(r*float64(j+1), 2*r, x-2*r) - (b[0] + b[1] + b[2]) - (a[0] + a[1] + a[2])
	b[4] = DiskArea(2*r) - (b[0] + b[1] + b[2] + b[3]) - (a[0] + a[1] + a[2])
	for i := range b {
		if b[i] < 0 {
			b[i] = 0
		}
	}
	return b
}
