package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingAreaValues(t *testing.T) {
	rp := RingPartition{R: 1, P: 5}
	// C_j = pi (2j - 1) for r = 1.
	for j := 1; j <= 5; j++ {
		want := math.Pi * float64(2*j-1)
		if got := rp.RingArea(j); !almostEqual(got, want, 1e-12) {
			t.Errorf("RingArea(%d) = %v, want %v", j, got, want)
		}
	}
	if rp.RingArea(0) != 0 || rp.RingArea(6) != 0 {
		t.Fatal("out-of-range rings should have zero area")
	}
}

func TestRingAreasSumToField(t *testing.T) {
	rp := RingPartition{R: 2.5, P: 7}
	sum := 0.0
	for j := 1; j <= rp.P; j++ {
		sum += rp.RingArea(j)
	}
	if !almostEqual(sum, rp.FieldArea(), 1e-9) {
		t.Fatalf("ring areas sum to %v, field area %v", sum, rp.FieldArea())
	}
}

func TestFieldRadius(t *testing.T) {
	rp := RingPartition{R: 3, P: 5}
	if rp.FieldRadius() != 15 {
		t.Fatalf("FieldRadius = %v, want 15", rp.FieldRadius())
	}
}

func TestRingOf(t *testing.T) {
	rp := RingPartition{R: 1, P: 5}
	cases := []struct {
		d    float64
		want int
	}{
		{0, 1}, {0.5, 1}, {0.999, 1}, {1, 2}, {2.5, 3}, {4.999, 5},
		{5, 5}, {7, 5}, {-0.5, 1},
	}
	for _, c := range cases {
		if got := rp.RingOf(c.d); got != c.want {
			t.Errorf("RingOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestTransmissionAreasPartitionProperty(t *testing.T) {
	rp := RingPartition{R: 1, P: 5}
	f := func(jRaw, xRaw uint16) bool {
		j := int(jRaw)%rp.P + 1
		x := float64(xRaw%1001) / 1000 // x in [0, 1] = [0, r]
		a := rp.TransmissionAreas(j, x)
		sum := a[0] + a[1] + a[2]
		if !almostEqual(sum, DiskArea(rp.R), 1e-9) {
			return false
		}
		return a[0] >= 0 && a[1] >= 0 && a[2] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTransmissionAreasInnerRing(t *testing.T) {
	rp := RingPartition{R: 1, P: 5}
	// Node at the exact centre: whole disk lies inside ring 1.
	a := rp.TransmissionAreas(1, 0)
	if a[0] != 0 {
		t.Fatalf("ring-0 share should be 0, got %v", a[0])
	}
	if !almostEqual(a[1], math.Pi, 1e-9) {
		t.Fatalf("ring-1 share = %v, want pi", a[1])
	}
	if !almostEqual(a[2], 0, 1e-9) {
		t.Fatalf("ring-2 share = %v, want 0", a[2])
	}
}

func TestTransmissionAreasMonteCarlo(t *testing.T) {
	// Verify the three ring shares against direct area sampling for a
	// node in ring 3 at x = 0.4.
	rp := RingPartition{R: 1, P: 5}
	j, x := 3, 0.4
	want := rp.TransmissionAreas(j, x)
	d := rp.R*float64(j-1) + x // distance of the node from the origin
	rng := rand.New(rand.NewSource(11))
	const samples = 500000
	var hits [3]int
	for i := 0; i < samples; i++ {
		// Uniform point in the node's transmission disk.
		px := (rng.Float64()*2 - 1) * rp.R
		py := (rng.Float64()*2 - 1) * rp.R
		if px*px+py*py > rp.R*rp.R {
			i--
			continue
		}
		rho := math.Hypot(d+px, py)
		switch k := rp.RingOf(rho); {
		case k == j-1 && rho < rp.R*float64(j-1):
			hits[0]++
		case rho >= rp.R*float64(j-1) && rho < rp.R*float64(j):
			hits[1]++
		default:
			hits[2]++
		}
	}
	disk := DiskArea(rp.R)
	for i := range hits {
		got := float64(hits[i]) / samples * disk
		if !almostEqual(got, want[i], 0.03) {
			t.Errorf("share %d: Monte Carlo %v vs analytic %v", i, got, want[i])
		}
	}
}

func TestCarrierSenseAreasPartitionProperty(t *testing.T) {
	rp := RingPartition{R: 1, P: 6}
	f := func(jRaw, xRaw uint16) bool {
		j := int(jRaw)%rp.P + 1
		x := float64(xRaw%1001) / 1000
		b := rp.CarrierSenseAreas(j, x)
		sum := 0.0
		for _, v := range b {
			if v < 0 {
				return false
			}
			sum += v
		}
		// The sensing annulus between r and 2r has area 3 pi r².
		return almostEqual(sum, 3*math.Pi*rp.R*rp.R, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCarrierSenseAreasCentreNode(t *testing.T) {
	rp := RingPartition{R: 1, P: 5}
	b := rp.CarrierSenseAreas(1, 0)
	// From the centre, the annulus [r, 2r] covers exactly ring 2.
	if !almostEqual(b[3], 3*math.Pi, 1e-9) {
		t.Fatalf("ring j+1 share = %v, want 3pi", b[3])
	}
	for i, v := range b {
		if i != 3 && !almostEqual(v, 0, 1e-9) {
			t.Errorf("share %d = %v, want 0", i, v)
		}
	}
}

func TestCarrierSenseAreasMonteCarlo(t *testing.T) {
	rp := RingPartition{R: 1, P: 6}
	j, x := 4, 0.7
	want := rp.CarrierSenseAreas(j, x)
	d := rp.R*float64(j-1) + x
	rng := rand.New(rand.NewSource(13))
	const samples = 600000
	var hits [5]int
	count := 0
	for count < samples {
		px := (rng.Float64()*2 - 1) * 2 * rp.R
		py := (rng.Float64()*2 - 1) * 2 * rp.R
		rr := px*px + py*py
		if rr > 4*rp.R*rp.R || rr <= rp.R*rp.R {
			continue // keep only points in the sensing annulus
		}
		count++
		rho := math.Hypot(d+px, py)
		ring := int(rho/rp.R) + 1 // 1-indexed ring, unclamped
		idx := ring - (j - 2)
		if idx < 0 {
			idx = 0
		}
		if idx > 4 {
			idx = 4
		}
		hits[idx]++
	}
	annulus := 3 * math.Pi * rp.R * rp.R
	for i := range hits {
		got := float64(hits[i]) / samples * annulus
		if !almostEqual(got, want[i], 0.05) {
			t.Errorf("annulus share %d: Monte Carlo %v vs analytic %v", i, got, want[i])
		}
	}
}

func BenchmarkTransmissionAreas(b *testing.B) {
	rp := RingPartition{R: 1, P: 5}
	for i := 0; i < b.N; i++ {
		rp.TransmissionAreas(1+i%5, float64(i%100)/100)
	}
}

func BenchmarkCarrierSenseAreas(b *testing.B) {
	rp := RingPartition{R: 1, P: 5}
	for i := 0; i < b.N; i++ {
		rp.CarrierSenseAreas(1+i%5, float64(i%100)/100)
	}
}
