package lint

import (
	"encoding/json"
	"os"
)

// ArtifactSchema identifies the findings-artifact format. The version
// bumps only on breaking changes; fields are otherwise only ever added
// (consumers must ignore unknown keys). The plain -json output stays a
// bare findings array and is versioned implicitly by the Finding
// fields, which never change meaning.
const ArtifactSchema = "sensorlint.findings/2"

// Artifact is the versioned machine-readable record of one sensorlint
// run, written by -artifact and archived by scripts/check.sh next to
// the bench output. Findings are post-fix but pre-baseline: the
// artifact records what the tree actually contains, while Baselined
// says how many of those the ratchet absorbed.
type Artifact struct {
	Schema string `json:"schema"`
	Checks []struct {
		Name string `json:"name"`
		Doc  string `json:"doc"`
	} `json:"checks"`
	Packages  int       `json:"packages"`
	Findings  []Finding `json:"findings"`
	Baselined int       `json:"baselined"`
	Fixed     int       `json:"fixed"`
}

// WriteArtifact writes the artifact JSON to path.
func WriteArtifact(path string, analyzers []*Analyzer, packages int, findings []Finding, baselined, fixed int) error {
	a := Artifact{
		Schema:    ArtifactSchema,
		Packages:  packages,
		Findings:  findings,
		Baselined: baselined,
		Fixed:     fixed,
	}
	if a.Findings == nil {
		a.Findings = []Finding{}
	}
	for _, an := range analyzers {
		a.Checks = append(a.Checks, struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		}{an.Name, an.Doc})
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
