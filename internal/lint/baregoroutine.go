package lint

import (
	"go/ast"
	"strings"
)

// BareGoroutine flags `go` statements outside internal/engine and
// cmd/. The engine's worker pool is the sanctioned concurrency
// surface: it bounds parallelism, propagates cancellation, and keeps
// result order canonical so outputs stay byte-identical across worker
// counts. A goroutine spawned anywhere else is unbounded, invisible to
// the pool's accounting, and a standing invitation to ordering races.
// Binaries keep the usual latitude for signal handling and shutdown.
var BareGoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc:  "go statement outside internal/engine's worker pool and cmd/",
	Run:  runBareGoroutine,
}

func runBareGoroutine(p *Pass) {
	if p.Rel() == "internal/engine" || strings.HasPrefix(p.Rel(), "cmd/") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "bare goroutine outside internal/engine: route the work through the engine pool so it is bounded, cancellable, and deterministic in output order")
			}
			return true
		})
	}
}
