package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline support: -baseline file ratcheting. A baseline freezes the
// findings present when the ratchet was adopted; Lint runs then report
// only findings NOT in the baseline, so legacy debt is tolerated while
// new code must come up clean. Entries match on (file, check, message)
// as a multiset — line numbers are deliberately excluded so unrelated
// edits that shift a legacy finding up or down the file do not break
// the ratchet. Removing the last finding of a kind leaves its baseline
// entry stale; -write-baseline rewrites the file to the current (ideally
// smaller) set, and an empty or missing baseline means everything is
// reported — the state this repository maintains on main
// (TestDriverRepoIsClean asserts it).

// baselineKey is the ratchet identity of one finding.
type baselineKey struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so `-baseline sensorlint.baseline` can be in
// the standing invocation before any debt exists.
func LoadBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[baselineKey]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []baselineKey
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	out := map[baselineKey]int{}
	for _, e := range entries {
		out[e]++
	}
	return out, nil
}

// FilterBaseline removes findings frozen in the baseline (multiset
// semantics: a baseline entry absorbs at most one finding each) and
// reports how many were absorbed.
func FilterBaseline(findings []Finding, baseline map[baselineKey]int) (fresh []Finding, absorbed int) {
	remaining := make(map[baselineKey]int, len(baseline))
	for k, n := range baseline {
		remaining[k] = n
	}
	for _, f := range findings {
		k := baselineKey{File: f.File, Check: f.Check, Message: f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			absorbed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, absorbed
}

// WriteBaseline freezes the given findings as the new baseline. An
// empty set writes an empty array — an explicit record that the tree
// is clean — keeping the file diffable as debt is paid down.
func WriteBaseline(path string, findings []Finding) error {
	entries := make([]baselineKey, 0, len(findings))
	for _, f := range findings {
		entries = append(entries, baselineKey{File: f.File, Check: f.Check, Message: f.Message})
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
