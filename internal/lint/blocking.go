package lint

import (
	"go/ast"
	"go/token"
)

// computeBlocking classifies every module function that may block:
// directly (a channel operation, a select without default, time.Sleep,
// an outbound network call, or a write to an http.ResponseWriter — a
// network write once headers flush), or transitively by calling a
// blocking module function. Code spawned with `go` does not block the
// spawner, so GoStmt subtrees are excluded both from the base facts and
// from propagation. The returned reason is one level deep — enough for
// a diagnostic a reader can act on without chasing the whole chain.
func computeBlocking(g *callGraph) map[*funcNode]string {
	out := map[*funcNode]string{}
	for _, fn := range g.funcs {
		if r := baseBlocking(fn); r != "" {
			out[fn] = r
		}
	}
	for changed := true; changed; {
		changed = false
		for callee, r := range out {
			for _, cs := range g.in[callee] {
				if cs.caller == nil || out[cs.caller] != "" || cs.inGo {
					continue
				}
				out[cs.caller] = "calls " + callee.decl.Name.Name + ", which " + shortReason(r)
				changed = true
			}
		}
	}
	return out
}

// shortReason trims a propagated reason to its base fact so chained
// diagnostics stay one level deep ("calls writeJSON, which writes the
// HTTP response" rather than a growing "calls X, which calls Y, which
// ...").
func shortReason(r string) string {
	for i := 0; i+7 <= len(r); i++ {
		if r[i:i+7] == "which " {
			return r[i+7:]
		}
	}
	return r
}

// baseBlocking reports why fn blocks directly, or "".
func baseBlocking(fn *funcNode) string {
	if fn.decl.Body == nil {
		return ""
	}
	rw := respWriterParams(fn)
	reason := ""
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // spawning is not blocking
		case *ast.SendStmt:
			reason = "sends on a channel"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = "receives from a channel"
			}
		case *ast.RangeStmt:
			// `range ch` blocks; without full type info treat a range
			// over a bare identifier of channel type as unknown — the
			// common loops here range over slices/maps, so stay silent.
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				reason = "blocks in select"
			}
		case *ast.CallExpr:
			reason = blockingCall(fn, n, rw)
		}
		return reason == ""
	})
	return reason
}

// blockingCall reports why one call expression blocks, or "".
func blockingCall(fn *funcNode, call *ast.CallExpr, rw map[*ast.Ident]bool) string {
	if _, ok := fn.pkg.isPkgCall(call, "time", "Sleep"); ok {
		return "calls time.Sleep"
	}
	if name, ok := fn.pkg.isPkgCall(call, "net/http", "Get", "Post", "PostForm", "Head"); ok {
		return "performs network I/O (http." + name + ")"
	}
	if name, ok := fn.pkg.isPkgCall(call, "net", "Dial", "DialTimeout", "Listen"); ok {
		return "performs network I/O (net." + name + ")"
	}
	if len(rw) > 0 && mentionsRespWriter(fn, call, rw) {
		return "writes the HTTP response"
	}
	return ""
}

// respWriterParams collects the declared parameters of fn whose type is
// spelled http.ResponseWriter (resolved by import path, so a renamed
// import still counts). The loader stubs net/http, so this is a purely
// syntactic judgment — which is exactly as much as the handlers need.
// The map keys are the declaring idents; matching goes through Defs/
// Uses objects.
func respWriterParams(fn *funcNode) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	if fn.decl.Type.Params == nil {
		return out
	}
	for _, field := range fn.decl.Type.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ResponseWriter" {
			continue
		}
		if fn.pkg.importedPkg(sel.X) != "net/http" {
			continue
		}
		for _, name := range field.Names {
			out[name] = true
		}
	}
	return out
}

// mentionsRespWriter reports whether any part of call (receiver or
// arguments) references one of fn's ResponseWriter parameters. Any
// such call is assumed to write the response: in this codebase nothing
// takes a ResponseWriter without eventually writing to it.
func mentionsRespWriter(fn *funcNode, call *ast.CallExpr, rw map[*ast.Ident]bool) bool {
	objs := map[interface{ Pos() token.Pos }]bool{}
	for id := range rw {
		if obj := fn.pkg.Info.Defs[id]; obj != nil {
			objs[obj] = true
		}
	}
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := fn.pkg.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
