package lint

import (
	"go/ast"
	"strings"
)

// CachePut guards the PR 5/6 byte-identity contract for the result
// cache: internal/engine owns the on-disk layout (content fingerprints
// written by Cache.Put via storeDisk), so every other layer must route
// result ingestion through Cache.Put or ResultSink.IngestResult. A raw
// file write aimed at a cache directory from outside the engine would
// produce entries without fingerprints, which the byte-identity
// verifier then reads as corruption.
//
// Detection is lexical by necessity (the loader stubs the os package):
// a call to an os file-writing function — os.WriteFile, os.Create,
// os.OpenFile, os.Rename, os.MkdirAll — whose path argument mentions a
// cache-named identifier or field (cacheDir, c.cacheDir, CachePath,
// ...) outside internal/engine is reported.
var CachePut = &Analyzer{
	Name: "cacheput",
	Doc:  "raw file write into the cache directory outside internal/engine; use Cache.Put / IngestResult",
	Run:  runCachePut,
}

func runCachePut(p *Pass) {
	if p.Rel() == "internal/engine" {
		return // the engine is the one owner of the cache layout
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := p.IsPkgCall(call, "os",
				"WriteFile", "Create", "OpenFile", "Rename", "MkdirAll")
			if !ok {
				return true
			}
			// Any argument mentioning a cache path counts: for Rename
			// the write target is the second argument, not the first.
			for _, arg := range call.Args {
				if mentionsCache(arg) {
					p.Reportf(call.Pos(), "os.%s into the cache directory bypasses Cache.Put fingerprinting; route result ingestion through engine Cache.Put / IngestResult", name)
					break
				}
			}
			return true
		})
	}
}

// mentionsCache reports whether the path expression references a
// cache-named identifier or field.
func mentionsCache(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		default:
			return true
		}
		if strings.Contains(strings.ToLower(name), "cache") {
			found = true
		}
		return !found
	})
	return found
}
