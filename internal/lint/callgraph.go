package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// callGraph is the module-local call graph: one node per function or
// method declaration in the loaded packages, with the call sites that
// could be resolved statically. Resolution is by type object identity,
// which works across packages because module-internal imports are
// loaded from source (the same *types.Func a callee's Defs records is
// the one a caller's Uses records). Calls through interfaces resolve
// to the interface's method object — never to a concrete declaration —
// so they simply do not appear as edges; analyses that need a complete
// call-site set must check provable() first.
type callGraph struct {
	funcs map[types.Object]*funcNode
	decls map[*ast.FuncDecl]*funcNode
	// in lists the known call sites targeting each node.
	in map[*funcNode][]callSite
	// ifaceMethods is the set of method names declared by any interface
	// type in the module. A method sharing a name with one may be
	// invoked through that interface, making its visible call-site set
	// incomplete.
	ifaceMethods map[string]bool
}

// funcNode is one declared function or method.
type funcNode struct {
	obj  types.Object // the *types.Func behind the declaration
	decl *ast.FuncDecl
	pkg  *Package
	// escapes records that the function's name was used as a value
	// (assigned, passed, returned) somewhere in the module: it may be
	// called through that value with arguments the graph cannot see.
	escapes bool

	flow *localFlow // lazily built local-variable flow, see seedtaint.go
}

// callSite is one resolved call of callee. caller is nil for calls in
// package-level initializer expressions. inGo marks a call lexically
// inside a `go` statement: it runs on another goroutine and therefore
// does not block the caller.
type callSite struct {
	call   *ast.CallExpr
	caller *funcNode
	pkg    *Package
	callee *funcNode
	inGo   bool
}

// buildCallGraph constructs the graph over the loaded packages.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		funcs:        map[types.Object]*funcNode{},
		decls:        map[*ast.FuncDecl]*funcNode{},
		in:           map[*funcNode][]callSite{},
		ifaceMethods: map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[fn.Name]
				if obj == nil {
					continue
				}
				n := &funcNode{obj: obj, decl: fn, pkg: pkg}
				g.funcs[obj] = n
				g.decls[fn] = n
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if it, ok := n.(*ast.InterfaceType); ok {
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							g.ifaceMethods[name.Name] = true
						}
					}
				}
				return true
			})
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			// Idents in callee position are calls; any other use of a
			// declared function's name makes it escape.
			called := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id := calleeIdent(call.Fun); id != nil {
						called[id] = true
					}
				}
				return true
			})
			for _, d := range f.Decls {
				var caller *funcNode
				if fd, ok := d.(*ast.FuncDecl); ok {
					caller = g.decls[fd]
				}
				var goRanges [][2]token.Pos
				ast.Inspect(d, func(n ast.Node) bool {
					if gs, ok := n.(*ast.GoStmt); ok {
						goRanges = append(goRanges, [2]token.Pos{gs.Pos(), gs.End()})
					}
					return true
				})
				inGo := func(pos token.Pos) bool {
					for _, r := range goRanges {
						if pos >= r[0] && pos < r[1] {
							return true
						}
					}
					return false
				}
				ast.Inspect(d, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						id := calleeIdent(n.Fun)
						if id == nil {
							return true
						}
						callee := g.funcs[pkg.Info.Uses[id]]
						if callee == nil {
							return true
						}
						g.in[callee] = append(g.in[callee],
							callSite{call: n, caller: caller, pkg: pkg, callee: callee, inGo: inGo(n.Pos())})
					case *ast.Ident:
						if called[n] {
							return true
						}
						if fn := g.funcs[pkg.Info.Uses[n]]; fn != nil {
							fn.escapes = true
						}
					}
					return true
				})
			}
		}
	}
	return g
}

// calleeIdent unwraps a call's Fun expression to the identifier that
// names the callee: plain calls, method/package-qualified calls, and
// explicitly instantiated generics.
func calleeIdent(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.ParenExpr:
		return calleeIdent(e.X)
	case *ast.IndexExpr:
		return calleeIdent(e.X)
	case *ast.IndexListExpr:
		return calleeIdent(e.X)
	}
	return nil
}

// provable reports whether fn's visible call sites are its complete
// call-site set (excluding test files, which are outside the lint
// contract by design). That requires the module to be the only
// possible caller — the function lives under internal/ or in a main
// package, or is unexported — and the function to be called only by
// name: no escapes, no interface dispatch, and a body to analyze.
func (g *callGraph) provable(fn *funcNode) bool {
	if fn.escapes || fn.decl.Body == nil {
		return false
	}
	if fn.decl.Recv != nil && g.ifaceMethods[fn.decl.Name.Name] {
		return false // may be dispatched through an interface
	}
	if !fn.decl.Name.IsExported() {
		return true
	}
	if fn.pkg.Rel == "internal" || inDirPrefix(fn.pkg.Rel, "internal") {
		return true
	}
	return fn.pkg.Types != nil && fn.pkg.Types.Name() == "main"
}

func inDirPrefix(rel, dir string) bool {
	return rel == dir || len(rel) > len(dir) && rel[:len(dir)] == dir && rel[len(dir)] == '/'
}

// paramObjs returns the declared parameter objects of fn, flattened in
// order (the receiver is not included).
func paramObjs(fn *funcNode) []types.Object {
	var out []types.Object
	if fn.decl.Type.Params == nil {
		return nil
	}
	for _, field := range fn.decl.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, fn.pkg.Info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter: nothing can flow through it
		}
	}
	return out
}

// variadic reports whether fn's last parameter is variadic.
func variadic(fn *funcNode) bool {
	params := fn.decl.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	_, ok := params.List[len(params.List)-1].Type.(*ast.Ellipsis)
	return ok
}
