package lint

import (
	"go/ast"
	"strings"
)

// CtxBg flags context.Background() / context.TODO() in internal
// packages. The engine's cancellation contract (SIGINT aborts a
// campaign mid-flight, PR 1) only holds if contexts flow down from the
// caller, so library code must accept a ctx parameter. The one blessed
// exception is the documented convenience-wrapper pattern, where a
// function X exists solely to call its context-taking twin:
//
//	func RunMany(cfg Config, runs, workers int) (*Aggregate, error) {
//		return RunManyCtx(context.Background(), cfg, runs, workers)
//	}
//
// A Background()/TODO() call is exempt when it appears as an argument
// to a call of <X>Ctx or <X>Context (case-insensitive) from inside X.
var CtxBg = &Analyzer{
	Name: "ctxbg",
	Doc:  "context.Background/TODO in internal code outside the XxxCtx wrapper pattern",
	Run:  runCtxBg,
}

func runCtxBg(p *Pass) {
	if !strings.HasPrefix(p.Rel(), "internal/") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Arguments of calls to this function's Ctx/Context twin
			// are exempt regions.
			var exempt []ast.Expr
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isCtxTwin(fn.Name.Name, call) {
					exempt = append(exempt, call.Args...)
				}
				return true
			})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := p.IsPkgCall(call, "context", "Background", "TODO")
				if !ok {
					return true
				}
				for _, e := range exempt {
					if call.Pos() >= e.Pos() && call.End() <= e.End() {
						return true
					}
				}
				p.Reportf(call.Pos(), "context.%s() in internal code: accept a ctx parameter (or add a %sCtx wrapper) so cancellation reaches this call", name, fn.Name.Name)
				return true
			})
		}
	}
}

// isCtxTwin reports whether call invokes the Ctx/Context twin of the
// function named outer: RunMany → RunManyCtx, Run → (c.)RunContext,
// SimSuccessRate → simSuccessRateCtx.
func isCtxTwin(outer string, call *ast.CallExpr) bool {
	var callee string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	default:
		return false
	}
	return strings.EqualFold(callee, outer+"Ctx") || strings.EqualFold(callee, outer+"Context")
}
