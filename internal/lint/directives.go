package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// directive is one parsed //lint:ignore comment. A directive suppresses
// findings of its named check on the comment's own line (trailing form)
// and on the line directly below it (standalone form).
type directive struct {
	check  string
	reason string
	pos    token.Position
	used   bool
	// malformed carries a parse problem ("" when well-formed); the
	// runner reports it under the "ignore" pseudo-check.
	malformed string
	// fix, when non-nil, mechanically repairs the malformed directive
	// (currently: prefix normalization for near-miss spellings).
	fix *Fix
}

// ignoreCheck is the pseudo-check name used for problems with the
// suppression directives themselves (malformed, unknown check, unused).
// It cannot itself be suppressed: a broken suppression must be fixed,
// not silenced.
const ignoreCheck = "ignore"

const directivePrefix = "//lint:ignore"

// nearMissPrefix matches misspellings of the directive prefix —
// "// lint:ignore", "//lint: ignore", "//Lint:Ignore" — which Go
// treats as ordinary comments, so the suppression silently does
// nothing. They are reported as malformed, with a normalization fix.
var nearMissPrefix = regexp.MustCompile(`(?i)^//\s*lint\s*:\s*ignore\b`)

// parseDirectives extracts every //lint:ignore directive from the
// package's sources. known maps valid check names (nil disables the
// unknown-name validation, used when running a single analyzer in
// tests).
func parseDirectives(pkg *Package, known map[string]bool) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					loc := nearMissPrefix.FindStringIndex(c.Text)
					if loc == nil {
						continue
					}
					at := pkg.fset.Position(c.Slash)
					out = append(out, &directive{
						pos:       at,
						malformed: "spelled " + quote(c.Text[:loc[1]]) + "; the exact form //lint:ignore is required (anything else suppresses nothing)",
						fix: &Fix{
							Description: "normalize the directive prefix to //lint:ignore",
							Edits: []TextEdit{{
								File: at.Filename, Start: at.Offset, End: at.Offset + loc[1],
								New: directivePrefix,
							}},
						},
					})
					continue
				}
				d := &directive{pos: pkg.fset.Position(c.Slash)}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.malformed = "missing check name and reason; want //lint:ignore <check> <reason>"
				case len(fields) == 1:
					d.check = fields[0]
					d.malformed = "missing reason; every suppression must say why it is safe"
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				if d.malformed == "" && known != nil && !known[d.check] {
					d.malformed = "unknown check " + quote(d.check)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func quote(s string) string { return "\"" + s + "\"" }

// applyDirectives filters findings through the package's directives.
// It returns the surviving findings plus one "ignore" finding per
// malformed directive. Unused directives are only reported when
// reportUnused is set (the full check set ran, so "matched nothing"
// actually means the suppression is stale).
func applyDirectives(findings []Finding, dirs []*directive, reportUnused bool) []Finding {
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs {
			if d.malformed != "" || d.check != f.Check || d.pos.Filename != f.File {
				continue
			}
			if f.Line == d.pos.Line || f.Line == d.pos.Line+1 {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		switch {
		case d.malformed != "":
			out = append(out, Finding{
				File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
				Check:   ignoreCheck,
				Message: "malformed //lint:ignore directive: " + d.malformed,
				Fix:     d.fix,
			})
		case !d.used && reportUnused:
			out = append(out, Finding{
				File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
				Check:   ignoreCheck,
				Message: "unused //lint:ignore directive for check " + quote(d.check) + ": it suppresses nothing, delete it",
			})
		}
	}
	return out
}
