package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main is the sensorlint driver, factored here so cmd/sensorlint stays
// a one-line shim and tests can run the whole CLI in-process. It lints
// the requested packages and returns the process exit code: 0 clean,
// 1 findings, 2 usage or load failure.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sensorlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	rootFlag := fs.String("root", ".", "module root directory (must contain go.mod)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sensorlint [-json] [-checks c1,c2] [-root dir] [packages]\n\n"+
			"Packages are module-root-relative patterns (default ./...). Checks:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := Analyzers()
	fullSet := true
	if *checksFlag != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "sensorlint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
		fullSet = len(analyzers) == len(Analyzers())
	}

	loader, err := NewLoader(*rootFlag)
	if err != nil {
		fmt.Fprintf(stderr, "sensorlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "sensorlint: %v\n", err)
		return 2
	}
	findings := RelativeTo(Lint(pkgs, analyzers, fullSet), loader.Root)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "sensorlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "sensorlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}
