package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main is the sensorlint driver, factored here so cmd/sensorlint stays
// a one-line shim and tests can run the whole CLI in-process. It lints
// the requested packages and returns the process exit code: 0 clean,
// 1 findings, 2 usage or load failure.
//
// -fix applies the mechanical suggested fixes (floateq rewrites,
// directive normalization) and re-lints the patched tree, so the exit
// code and output reflect what remains. -baseline filters findings
// through a frozen ratchet file; -write-baseline refreezes it.
// -artifact writes the versioned machine-readable record of the run.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sensorlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	rootFlag := fs.String("root", ".", "module root directory (must contain go.mod)")
	fixFlag := fs.Bool("fix", false, "apply mechanical suggested fixes, then re-lint")
	baselineFlag := fs.String("baseline", "", "ratchet file: frozen findings are absorbed, new code must be clean")
	writeBaseline := fs.Bool("write-baseline", false, "refreeze -baseline to the current findings and exit 0")
	artifactFlag := fs.String("artifact", "", "write the versioned findings artifact (JSON) to this path")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sensorlint [-json] [-checks c1,c2] [-root dir] [-fix] [-baseline file [-write-baseline]] [-artifact file] [packages]\n\n"+
			"Packages are module-root-relative patterns (default ./...). Checks:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baselineFlag == "" {
		fmt.Fprintln(stderr, "sensorlint: -write-baseline needs -baseline to name the file")
		return 2
	}

	analyzers := Analyzers()
	fullSet := true
	if *checksFlag != "" {
		byName := map[string]*Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checksFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "sensorlint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
		fullSet = len(analyzers) == len(Analyzers())
	}

	run := func() ([]Finding, int, string, error) {
		loader, err := NewLoader(*rootFlag)
		if err != nil {
			return nil, 0, "", err
		}
		pkgs, err := loader.LoadAll(fs.Args())
		if err != nil {
			return nil, 0, "", err
		}
		return Lint(pkgs, analyzers, fullSet), len(pkgs), loader.Root, nil
	}

	findings, npkgs, root, err := run()
	if err != nil {
		fmt.Fprintf(stderr, "sensorlint: %v\n", err)
		return 2
	}

	fixed := 0
	if *fixFlag {
		var errs []error
		fixed, errs = ApplyFixes(findings)
		for _, e := range errs {
			fmt.Fprintf(stderr, "sensorlint: %v\n", e)
		}
		if fixed > 0 {
			fmt.Fprintf(stderr, "sensorlint: fixed %d finding(s); re-linting\n", fixed)
			if findings, npkgs, root, err = run(); err != nil {
				fmt.Fprintf(stderr, "sensorlint: %v\n", err)
				return 2
			}
		}
	}
	findings = RelativeTo(findings, root)

	if *writeBaseline {
		if err := WriteBaseline(*baselineFlag, findings); err != nil {
			fmt.Fprintf(stderr, "sensorlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "sensorlint: froze %d finding(s) into %s\n", len(findings), *baselineFlag)
		return 0
	}

	absorbed := 0
	fresh := findings
	if *baselineFlag != "" {
		baseline, err := LoadBaseline(*baselineFlag)
		if err != nil {
			fmt.Fprintf(stderr, "sensorlint: %v\n", err)
			return 2
		}
		fresh, absorbed = FilterBaseline(findings, baseline)
	}

	if *artifactFlag != "" {
		if err := WriteArtifact(*artifactFlag, analyzers, npkgs, findings, absorbed, fixed); err != nil {
			fmt.Fprintf(stderr, "sensorlint: %v\n", err)
			return 2
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []Finding{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintf(stderr, "sensorlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(fresh) > 0 {
		if !*jsonOut {
			suffix := ""
			if absorbed > 0 {
				suffix = fmt.Sprintf(" (%d more absorbed by the baseline)", absorbed)
			}
			fmt.Fprintf(stderr, "sensorlint: %d finding(s) in %d package(s)%s\n", len(fresh), npkgs, suffix)
		}
		return 1
	}
	return 0
}
