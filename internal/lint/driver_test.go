package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestDriverRepoIsClean is the acceptance gate: the repository must
// lint clean (every finding fixed or suppressed with a written reason)
// from PR 2 onward, and the committed ratchet file must stay empty —
// main carries no baselined debt; the baseline exists for downstream
// forks and for freezing debt mid-migration, never for parking it.
// A failure here is not a test bug — fix or justify the reported line.
func TestDriverRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-root", filepath.Join("..", "..")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sensorlint over the repo: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	baseline, err := LoadBaseline(filepath.Join("..", "..", "sensorlint.baseline"))
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if len(baseline) != 0 {
		t.Fatalf("main must carry an empty baseline, found %d frozen finding(s)", len(baseline))
	}
}

// smokeModule writes a throwaway module with one deliberately dirty
// library package and returns its root.
func smokeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "foo")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(root, "go.mod"): "module lintsmoke\n\ngo 1.22\n",
		filepath.Join(dir, "foo.go"): `package foo

import "time"

func Stamp() time.Time { return time.Now() }

func Spawn(f func()) { go f() }
`,
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestDriverJSONShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-root", smokeModule(t), "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\n%s", code, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want nodeterm + baregoroutine:\n%s", len(findings), stdout.String())
	}
	checks := map[string]bool{}
	for _, f := range findings {
		checks[f.Check] = true
		if f.File != filepath.Join("internal", "foo", "foo.go") || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Fatalf("malformed finding: %+v", f)
		}
	}
	if !checks["nodeterm"] || !checks["baregoroutine"] {
		t.Fatalf("wrong checks fired: %v", checks)
	}
}

func TestDriverChecksSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-root", smokeModule(t), "-checks", "floateq", "-json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("floateq-only run over a float-free module: exit %d\n%s%s",
			code, stdout.String(), stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil || len(findings) != 0 {
		t.Fatalf("want an empty JSON array, got %q (err %v)", stdout.String(), err)
	}
}

func TestDriverUnknownCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-root", smokeModule(t), "-checks", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
}
