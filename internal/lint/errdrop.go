package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded errors on the paths where a swallowed
// failure silently corrupts or loses results: cache writes
// (Cache.Put, IngestResult, storeDisk, os.WriteFile, os.Rename),
// result encoding (Encode, EncodeResult), and HTTP response writes.
// A discard is a blank assignment (`_ = c.Put(...)`,
// `_, _ = w.Write(...)`) or a bare expression statement whose call
// returns an error by contract. Errors on these paths must be checked
// or the degradation must be justified with a //lint:ignore reason —
// PR 5's byte-identity audit traced a shard mismatch to exactly such a
// swallowed cache-write failure mode.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error on a cache-write, encode, or HTTP-response path",
	Run:  runErrDrop,
}

// errDropCallees are the method/function names whose returned error is
// load-bearing on the guarded paths. The set is deliberately small and
// specific: generic error-discard linting is go vet's job, this check
// encodes which drops corrupt *results*.
var errDropCallees = map[string]string{
	"Put":          "a cache write",
	"IngestResult": "result ingestion",
	"storeDisk":    "a cache disk write",
	"WriteFile":    "a file write",
	"Rename":       "a file rename",
	"Encode":       "result encoding",
	"EncodeResult": "result encoding",
}

func runErrDrop(p *Pass) {
	report := func(pos ast.Node, e ast.Expr) {
		name, desc := errDropCall(e)
		if name == "" || !returnsError(p, e) {
			return
		}
		p.Reportf(pos.Pos(), "%s error from %s is dropped; check it or suppress with a reason for the deliberate degrade", desc, name)
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				report(n, n.X)
			case *ast.AssignStmt:
				if allBlank(n.Lhs) && len(n.Rhs) == 1 {
					report(n, n.Rhs[0])
				}
			}
			return true
		})
	}
}

// returnsError reports whether the call may return an error. Calls the
// checker fully resolved (module-internal callees) are judged by their
// actual result types — so the void Cache.Put is never flagged — while
// calls into stubbed stdlib packages (json Encode, os WriteFile) have
// no type information and are presumed to return one: that is their
// documented contract, and presuming otherwise would silently disable
// the check.
func returnsError(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return true
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errDropCall reports the callee name and path description when e is a
// call on the guarded list.
func errDropCall(e ast.Expr) (name, desc string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	var callee string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
	case *ast.Ident:
		callee = fun.Name
	default:
		return "", ""
	}
	if d, ok := errDropCallees[callee]; ok {
		return callee, d
	}
	return "", ""
}

// allBlank reports whether every left-hand side is the blank
// identifier — i.e. the statement exists only to discard results.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}
