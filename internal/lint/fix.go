package lint

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix carried by findings to the
// files on disk and returns how many findings were repaired. Edits are
// grouped per file and applied in one pass back-to-front so earlier
// offsets stay valid. Identical edits collapse (several findings in one
// file may each want the same import insertion); overlapping distinct
// edits are a conflict, and the whole file is skipped rather than
// half-patched — rerunning after the first -fix pass converges.
//
// Finding file paths must still be absolute (ApplyFixes runs before
// RelativeTo); edit offsets index the file bytes as the loader saw
// them, so a file modified since loading fails its length check and is
// skipped.
func ApplyFixes(findings []Finding) (fixed int, errs []error) {
	type edit struct {
		TextEdit
		finding int // index into findings, to count repaired findings
	}
	perFile := map[string][]edit{}
	for i, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			perFile[e.File] = append(perFile[e.File], edit{e, i})
		}
	}

	repaired := map[int]bool{}
	for _, file := range sortedKeys(perFile) {
		edits := perFile[file]
		// Dedupe identical edits, keeping every finding they repair.
		sort.SliceStable(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			if edits[i].End != edits[j].End {
				return edits[i].End < edits[j].End
			}
			return edits[i].New < edits[j].New
		})
		uniq := edits[:0]
		for _, e := range edits {
			if len(uniq) > 0 && uniq[len(uniq)-1].TextEdit == e.TextEdit {
				repaired[e.finding] = true
				continue
			}
			uniq = append(uniq, e)
		}
		edits = uniq

		conflict := false
		for i := 1; i < len(edits); i++ {
			if edits[i].Start < edits[i-1].End {
				conflict = true
				break
			}
		}
		if conflict {
			errs = append(errs, fmt.Errorf("lint: overlapping fixes in %s; rerun after applying the rest", file))
			continue
		}

		data, err := os.ReadFile(file)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		bad := false
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(data) {
				bad = true
				break
			}
		}
		if bad {
			errs = append(errs, fmt.Errorf("lint: %s changed since loading; rerun to fix it", file))
			continue
		}
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			data = append(data[:e.Start], append([]byte(e.New), data[e.End:]...)...)
			repaired[e.finding] = true
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			errs = append(errs, err)
			continue
		}
	}
	return len(repaired), errs
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
