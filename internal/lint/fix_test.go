package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixModule builds a throwaway module around one testdata/fix case:
// the case's in.go becomes internal/app/subject.go, and a minimal
// internal/mathx provides the AlmostEqual target the floateq rewrites
// import. Returns the module root and the subject file path.
func fixModule(t *testing.T, name string) (root, subject string) {
	t.Helper()
	root = t.TempDir()
	in, err := os.ReadFile(filepath.Join("testdata", "fix", name, "in.go"))
	if err != nil {
		t.Fatal(err)
	}
	subject = filepath.Join(root, "internal", "app", "subject.go")
	files := map[string][]byte{
		filepath.Join(root, "go.mod"): []byte("module fixmod\n\ngo 1.22\n"),
		filepath.Join(root, "internal", "mathx", "eq.go"): []byte(`package mathx

// AlmostEqual stands in for the real epsilon helper so the re-lint
// pass after -fix can resolve the inserted import from source.
func AlmostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
`),
		subject: in,
	}
	for path, content := range files {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root, subject
}

// runFixGolden runs the driver with -fix over one fix case and
// compares the patched subject file byte-for-byte against the case's
// fixed.go.golden. The driver must exit 0: the in.go violations are
// all mechanically fixable, so the re-lint pass after patching has to
// come up clean.
func runFixGolden(t *testing.T, name string) {
	t.Helper()
	root, subject := fixModule(t, name)
	var stdout, stderr bytes.Buffer
	code := Main([]string{"-root", root, "-fix"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sensorlint -fix: exit %d, want 0 (fixed tree must re-lint clean)\nstdout:\n%sstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "re-linting") {
		t.Fatalf("driver never applied a fix:\n%s", stderr.String())
	}
	got, err := os.ReadFile(subject)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fix", name, "fixed.go.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-fix output diverges from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestFixFloatEq: ==/!= rewrites to mathx.AlmostEqual and math.IsNaN,
// including the import insertion (two findings wanting the identical
// import edit must collapse to one).
func TestFixFloatEq(t *testing.T) { runFixGolden(t, "floateq") }

// TestFixDirective: a "// lint:ignore" near-miss is normalized to the
// exact prefix, after which the directive actually suppresses its
// finding and the re-lint pass is clean.
func TestFixDirective(t *testing.T) { runFixGolden(t, "directive") }

// TestDriverBaselineRatchet exercises the ratchet lifecycle:
// -write-baseline freezes the current debt, a baselined run absorbs
// exactly that debt (exit 0, nothing printed), and new findings are
// still reported because they match no frozen entry.
func TestDriverBaselineRatchet(t *testing.T) {
	root := smokeModule(t)
	bl := filepath.Join(root, "sensorlint.baseline")

	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-root", root, "-baseline", bl, "-write-baseline"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline: exit %d\n%s", code, stderr.String())
	}

	art := filepath.Join(root, "artifact.json")
	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"-root", root, "-baseline", bl, "-artifact", art}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run: exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("baselined run still printed findings:\n%s", stdout.String())
	}
	var a Artifact
	if data, err := os.ReadFile(art); err != nil {
		t.Fatal(err)
	} else if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if a.Baselined != 2 || len(a.Findings) != 2 {
		t.Fatalf("artifact must record the absorbed debt: baselined=%d findings=%d, want 2/2", a.Baselined, len(a.Findings))
	}

	fresh := filepath.Join(root, "internal", "foo", "fresh.go")
	content := "package foo\n\nimport \"time\"\n\nfunc Fresh() time.Time { return time.Now() }\n"
	if err := os.WriteFile(fresh, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := Main([]string{"-root", root, "-baseline", bl, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("new debt must not be absorbed: exit %d, want 1\n%s", code, stderr.String())
	}
	var findings []Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Check != "nodeterm" ||
		findings[0].File != filepath.Join("internal", "foo", "fresh.go") {
		t.Fatalf("want exactly the fresh nodeterm finding, got:\n%s", stdout.String())
	}
}

// TestDriverArtifact checks the versioned findings artifact: schema
// tag, the full check table, and the finding/counter fields.
func TestDriverArtifact(t *testing.T) {
	root := smokeModule(t)
	art := filepath.Join(root, "artifact.json")
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-root", root, "-artifact", art, "-json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if a.Schema != ArtifactSchema {
		t.Fatalf("schema %q, want %q", a.Schema, ArtifactSchema)
	}
	analyzers := Analyzers()
	if len(a.Checks) != len(analyzers) {
		t.Fatalf("artifact lists %d checks, want %d", len(a.Checks), len(analyzers))
	}
	for i, c := range a.Checks {
		if c.Name != analyzers[i].Name || c.Doc == "" {
			t.Fatalf("check %d = %+v, want %q with its doc line", i, c, analyzers[i].Name)
		}
	}
	if a.Packages != 1 || len(a.Findings) != 2 || a.Baselined != 0 || a.Fixed != 0 {
		t.Fatalf("artifact counters off: packages=%d findings=%d baselined=%d fixed=%d",
			a.Packages, len(a.Findings), a.Baselined, a.Fixed)
	}
	for _, f := range a.Findings {
		if f.File == "" || f.Line <= 0 || f.Check == "" || f.Message == "" {
			t.Fatalf("malformed artifact finding: %+v", f)
		}
	}
}
