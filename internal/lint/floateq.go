package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands. The
// analytic and simulated surfaces are full of accumulated float sums;
// exact comparison on them encodes an accident of rounding, not a
// property. internal/mathx owns the epsilon and NaN helpers and is the
// one package allowed to compare floats exactly (its interpolation
// code legitimately tests for degenerate duplicated knots).
//
// Typing is best-effort: the loader stubs stdlib imports, so an
// operand whose type only the stdlib knows is silently skipped rather
// than guessed at.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= on floating-point values; compare via an epsilon or math.IsNaN",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if p.Rel() == "internal/mathx" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(b.X)) && !isFloat(p.TypeOf(b.Y)) {
				return true
			}
			if render(p.Fset, b.X) == render(p.Fset, b.Y) {
				p.ReportFix(b.Pos(), floatEqFix(p, b),
					"x %s x on floats is a NaN test in disguise; say math.IsNaN explicitly", b.Op)
				return true
			}
			p.ReportFix(b.Pos(), floatEqFix(p, b),
				"exact %s on floating-point values compares rounding accidents; use an epsilon (internal/mathx) or restructure", b.Op)
			return true
		})
	}
}

// floatEqFix builds the mechanical repair for one flagged comparison:
// a self-compare becomes math.IsNaN (negated for ==), anything else
// becomes mathx.AlmostEqual (negated for !=). The fix carries an
// import-insertion edit when the file lacks the needed import; a file
// with no parenthesized import block gets no fix rather than a broken
// one.
func floatEqFix(p *Pass, b *ast.BinaryExpr) *Fix {
	x, y := render(p.Fset, b.X), render(p.Fset, b.Y)
	if x == "" || y == "" {
		return nil
	}
	var repl, desc, path string
	self := x == y
	if self {
		path = "math"
		desc = "replace float self-comparison with math.IsNaN"
	} else {
		path = mathxPath(p.Pkg)
		desc = "replace exact float comparison with mathx.AlmostEqual"
	}
	imp, qual, ok := importEdit(p, b.Pos(), path)
	if !ok {
		return nil
	}
	if self {
		repl = qual + ".IsNaN(" + x + ")"
		if b.Op == token.EQL {
			repl = "!" + repl
		}
	} else {
		repl = qual + ".AlmostEqual(" + x + ", " + y + ")"
		if b.Op == token.NEQ {
			repl = "!" + repl
		}
	}
	start, end := p.Fset.Position(b.Pos()), p.Fset.Position(b.End())
	fix := &Fix{
		Description: desc,
		Edits: []TextEdit{{
			File: start.Filename, Start: start.Offset, End: end.Offset, New: repl,
		}},
	}
	if imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	}
	return fix
}

// mathxPath is the module-qualified import path of internal/mathx.
func mathxPath(pkg *Package) string {
	mod := pkg.ImportPath
	if pkg.Rel != "" {
		mod = strings.TrimSuffix(mod, "/"+pkg.Rel)
	}
	return mod + "/internal/mathx"
}

// importEdit resolves how the file containing pos refers to `path`:
// already imported (no edit, possibly a renamed qualifier), importable
// by extending a parenthesized import block (an insertion edit), or
// not fixable (ok=false: no import block to extend).
func importEdit(p *Pass, pos token.Pos, path string) (edit *TextEdit, qual string, ok bool) {
	file := p.Pkg.fileAt(pos)
	if file == nil {
		return nil, "", false
	}
	base := path[strings.LastIndex(path, "/")+1:]
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return nil, imp.Name.Name, imp.Name.Name != "_" && imp.Name.Name != "."
		}
		return nil, base, true
	}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		at := p.Fset.Position(gd.Lparen)
		return &TextEdit{
			File: at.Filename, Start: at.Offset + 1, End: at.Offset + 1,
			New: "\n\t\"" + path + "\"\n",
		}, base, true
	}
	return nil, "", false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
