package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. The
// analytic and simulated surfaces are full of accumulated float sums;
// exact comparison on them encodes an accident of rounding, not a
// property. internal/mathx owns the epsilon and NaN helpers and is the
// one package allowed to compare floats exactly (its interpolation
// code legitimately tests for degenerate duplicated knots).
//
// Typing is best-effort: the loader stubs stdlib imports, so an
// operand whose type only the stdlib knows is silently skipped rather
// than guessed at.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "exact ==/!= on floating-point values; compare via an epsilon or math.IsNaN",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if p.Rel() == "internal/mathx" {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(b.X)) && !isFloat(p.TypeOf(b.Y)) {
				return true
			}
			if render(p.Fset, b.X) == render(p.Fset, b.Y) {
				p.Reportf(b.Pos(), "x %s x on floats is a NaN test in disguise; say math.IsNaN explicitly", b.Op)
				return true
			}
			p.Reportf(b.Pos(), "exact %s on floating-point values compares rounding accidents; use an epsilon (internal/mathx) or restructure", b.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
