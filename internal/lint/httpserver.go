package lint

import (
	"go/ast"
)

// HTTPServer enforces the repo's listener hygiene on every net/http
// server we start (the tuning-query server in serve mode, the dist
// coordinator): no bare http.ListenAndServe — it offers neither
// timeouts nor a handle to stop — and every http.Server literal must
// bound header reads (ReadTimeout or ReadHeaderTimeout) and belong to
// a package that wires graceful Shutdown. Without timeouts one stalled
// client pins a connection forever; without Shutdown a SIGINT tears
// down mid-request work the lease protocol then has to repair.
var HTTPServer = &Analyzer{
	Name: "httpserver",
	Doc:  "net/http servers must set read timeouts and wire graceful Shutdown",
	Run:  runHTTPServer,
}

func runHTTPServer(p *Pass) {
	var serverLits []*ast.CompositeLit
	hasShutdown := false
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn, ok := p.IsPkgCall(n, "net/http", "ListenAndServe", "ListenAndServeTLS"); ok {
					p.Reportf(n.Pos(), "http.%s starts a server with no timeouts and no way to stop it: build an http.Server with ReadHeaderTimeout and call its Shutdown on cancellation", fn)
				}
				// Any method call named Shutdown counts as the package
				// wiring graceful teardown; the check is syntactic because
				// stdlib types are stubbed in this loader.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Shutdown" {
					hasShutdown = true
				}
			case *ast.CompositeLit:
				if sel, ok := n.Type.(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Server" && p.ImportedPkg(sel.X) == "net/http" {
					serverLits = append(serverLits, n)
				}
			}
			return true
		})
	}
	for _, lit := range serverLits {
		if !hasTimeoutField(lit) {
			p.Reportf(lit.Pos(), "http.Server without ReadTimeout or ReadHeaderTimeout: one stalled client holds its connection forever")
		}
		if !hasShutdown {
			p.Reportf(lit.Pos(), "package builds an http.Server but never calls Shutdown: wire graceful teardown so cancellation drains in-flight requests")
		}
	}
}

// hasTimeoutField reports whether the http.Server literal sets a
// read-side timeout.
func hasTimeoutField(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok &&
			(id.Name == "ReadTimeout" || id.Name == "ReadHeaderTimeout") {
			return true
		}
	}
	return false
}
