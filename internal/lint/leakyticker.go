package lint

import (
	"go/ast"
)

// LeakyTicker flags timer constructions that leak under repetition,
// aimed at the worker retry/poll loops and the coordinator lease
// sweep:
//
//   - `time.After` inside a for/range loop allocates a timer every
//     iteration that is not collected until it fires — a steady
//     garbage stream in a long-lived poll loop. Hoist a time.NewTimer
//     and Reset it per iteration (stopping it on the other select arm)
//     or use a time.NewTicker.
//   - `time.Tick` anywhere: the returned ticker can never be stopped.
//   - `time.NewTicker`/`time.NewTimer` assigned to a local whose Stop
//     method is never called in the same function (a `defer t.Stop()`
//     counts).
var LeakyTicker = &Analyzer{
	Name: "leakyticker",
	Doc:  "time.After in loops, unstoppable time.Tick, and tickers without a Stop",
	Run:  runLeakyTicker,
}

func runLeakyTicker(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTimerLeaks(p, fd.Body)
		}
	}
}

func checkTimerLeaks(p *Pass, body *ast.BlockStmt) {
	// stopped collects every receiver a .Stop() is called on, by
	// object identity, anywhere in the function (defer included).
	stopped := map[any]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Stop" || len(call.Args) != 0 {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := p.Pkg.Info.Uses[id]; obj != nil {
				stopped[obj] = true
			}
		}
		return true
	})

	// loopDepth tracks how many enclosing for/range loops surround the
	// node being visited, via a manual walk.
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.FuncLit:
			// A closure runs on its own schedule: restart the loop
			// depth at its body rather than inheriting the caller's.
			walk(n.Body, 0)
			return
		case *ast.CallExpr:
			if _, ok := p.IsPkgCall(n, "time", "Tick"); ok {
				p.Reportf(n.Pos(), "time.Tick's ticker can never be stopped and leaks; use time.NewTicker with a defer Stop")
			}
			if _, ok := p.IsPkgCall(n, "time", "After"); ok && loopDepth > 0 {
				p.Reportf(n.Pos(), "time.After in a loop allocates an uncollectable timer per iteration; hoist a time.NewTimer and Reset it, or use time.NewTicker")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name, ok := p.IsPkgCall(call, "time", "NewTicker", "NewTimer")
				if !ok || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Pkg.Info.Defs[id]
				if obj == nil {
					obj = p.Pkg.Info.Uses[id]
				}
				if obj != nil && !stopped[obj] {
					p.Reportf(call.Pos(), "time.%s result is never stopped in this function; add a defer %s.Stop()", name, id.Name)
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c, loopDepth)
		}
	}
	walk(body, 0)
}

// childNodes returns n's direct AST children, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true // skip n itself, descend once
		}
		out = append(out, c)
		return false // do not descend past direct children
	})
	return out
}
