// Package lint is a stdlib-only static-analysis framework that encodes
// this repository's correctness contracts as executable checks. The
// reproduction's core promise is bit-for-bit determinism: PB_CAM
// surfaces and figure CSVs must be byte-identical across worker counts
// at a fixed seed. That property is easy to break silently — one ad-hoc
// `seed*K+rho` derivation, one `time.Now()` in a library, one bare
// goroutine racing an aggregation — so instead of relying on review-time
// vigilance the invariants live here, as analyzers the verify tier runs
// over `./...` on every change (see cmd/sensorlint).
//
// The framework deliberately uses only go/ast, go/parser, go/token and
// go/types: no external analysis dependencies. Findings can be silenced
// with an in-source directive carrying a written justification:
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or on the line directly above it.
// Directives with no reason, with an unknown check name, or that match
// no finding are themselves reported, so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position. Fix, when
// non-nil, carries a mechanical suggested repair the driver can apply
// with -fix. The JSON field set is part of the stable findings schema
// (see DESIGN.md §12): existing fields never change meaning, new
// fields are only ever added with omitempty.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Fix     *Fix   `json:"fix,omitempty"`
}

// Fix is a mechanical suggested repair: a set of byte-range edits that
// together implement Description. Edits must not overlap.
type Fix struct {
	Description string     `json:"description"`
	Edits       []TextEdit `json:"edits"`
}

// TextEdit replaces file bytes [Start, End) with New. Offsets are
// 0-based byte offsets into the file as loaded.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Analyzer is one named check run over a loaded package.
type Analyzer struct {
	// Name is the check identifier used in reports and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of what the check enforces.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass)
}

// Pass hands one analyzer one loaded package plus a report sink. Mod
// exposes the whole loaded module for the interprocedural analyses
// (call graph, seed taint); when analyzing a single package it is a
// one-package module.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Mod      *Module

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix records a finding at pos carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// Rel returns the package directory relative to the module root
// ("internal/sim", "cmd/experiments", "" for the root package).
// Allowlists key off this, so they are independent of the module name.
func (p *Pass) Rel() string { return p.Pkg.Rel }

// InDir reports whether the package sits at rel or anywhere below it.
func (p *Pass) InDir(rel string) bool {
	return p.Pkg.Rel == rel || strings.HasPrefix(p.Pkg.Rel, rel+"/")
}

// ImportedPkg resolves the base of a selector expression to the import
// path of the package it names, or "" if the expression is not a
// package qualifier. Resolution prefers type information (robust
// against renamed imports and shadowing) and falls back to the
// enclosing file's import table when the checker could not resolve the
// identifier.
func (p *Pass) ImportedPkg(e ast.Expr) string { return p.Pkg.importedPkg(e) }

// importedPkg is ImportedPkg at the package level, usable by the
// module-wide analyses that run without a Pass.
func (pkg *Package) importedPkg(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := pkg.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // resolved to something local: shadowed
	}
	file := pkg.fileAt(id.Pos())
	if file == nil {
		return ""
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// IsPkgCall reports whether call invokes pkgPath.fn (e.g. "math/rand",
// "NewSource") through a package qualifier.
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgPath string, fns ...string) (string, bool) {
	return p.Pkg.isPkgCall(call, pkgPath, fns...)
}

func (pkg *Package) isPkgCall(call *ast.CallExpr, pkgPath string, fns ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg.importedPkg(sel.X) != pkgPath {
		return "", false
	}
	for _, fn := range fns {
		if sel.Sel.Name == fn {
			return fn, true
		}
	}
	return "", false
}

// TypeOf returns the checked type of e, or nil when the checker could
// not type it (partial information is expected: stdlib imports are
// stubbed by the loader).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// sortFindings orders findings by file, line, column, check for stable
// text and JSON output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
