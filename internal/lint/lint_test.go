package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// loadTestPkg loads one testdata package under a pretend root-relative
// path, so allowlists behave as they would in the real tree.
func loadTestPkg(t *testing.T, name, rel string) *Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirAs(filepath.Join("testdata", "src", name), rel)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// checkGolden compares findings (with file paths relative to the
// testdata package dir) against testdata/golden/<name>.txt. Run
// `go test ./internal/lint -update` to regenerate after intentional
// analyzer changes.
func checkGolden(t *testing.T, name string, findings []Finding) {
	t.Helper()
	var b strings.Builder
	for _, f := range RelativeTo(findings, filepath.Join("testdata", "src", name)) {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// one runs a single analyzer over one testdata package, asserting the
// positive cases actually fire: a golden file full of findings proves
// the check catches the bug class it exists for.
func one(t *testing.T, a *Analyzer, name, rel string) {
	t.Helper()
	pkg := loadTestPkg(t, name, rel)
	findings := Lint([]*Package{pkg}, []*Analyzer{a}, false)
	if len(findings) == 0 {
		t.Fatalf("%s found nothing in testdata/src/%s; the analyzer is a no-op", a.Name, name)
	}
	checkGolden(t, name, findings)
}

// none asserts an allowlisted package produces zero findings.
func none(t *testing.T, a *Analyzer, name, rel string) {
	t.Helper()
	pkg := loadTestPkg(t, name, rel)
	if findings := Lint([]*Package{pkg}, []*Analyzer{a}, false); len(findings) != 0 {
		t.Fatalf("%s must be silent for %s loaded as %q, got:\n%v", a.Name, name, rel, findings)
	}
}

func TestSeedDerive(t *testing.T)       { one(t, SeedDerive, "seedderive", "internal/experiments") }
func TestSeedDeriveEngine(t *testing.T) { none(t, SeedDerive, "seedderive_engine", "internal/engine") }

// The faults package mints per-stream seeds with engine.DeriveSeed; the
// analyzer recognises the idiom without suppressions or a package
// exemption.
func TestSeedDeriveFaults(t *testing.T) { none(t, SeedDerive, "seedderive_faults", "internal/faults") }

// The interprocedural cases: helpers proven safe through their call
// sites, arithmetic hiding behind one call, escapes and local flow.
func TestSeedDeriveInterproc(t *testing.T) {
	one(t, SeedDerive, "seedderive_interproc", "internal/experiments")
}

func TestCachePut(t *testing.T) { one(t, CachePut, "cacheput", "internal/dist") }

// internal/engine owns the cache layout, so the same writes there are
// sanctioned.
func TestCachePutEngineExempt(t *testing.T) { none(t, CachePut, "cacheput", "internal/engine") }

func TestErrDrop(t *testing.T)     { one(t, ErrDrop, "errdrop", "internal/dist") }
func TestLockHeld(t *testing.T)    { one(t, LockHeld, "lockheld", "internal/dist") }
func TestLeakyTicker(t *testing.T) { one(t, LeakyTicker, "leakyticker", "internal/dist") }

func TestNoDeterm(t *testing.T)      { one(t, NoDeterm, "nodeterm", "internal/protocol") }
func TestNoDetermTrace(t *testing.T) { none(t, NoDeterm, "nodeterm_trace", "internal/trace") }

// nodeterm only polices library code: the same violations in a binary
// package are the binary's business.
func TestNoDetermCmdExempt(t *testing.T) { none(t, NoDeterm, "nodeterm", "cmd/experiments") }

func TestCtxBg(t *testing.T) { one(t, CtxBg, "ctxbg", "internal/sim") }

// ctxbg is scoped to internal/*: root-package and cmd code may build
// root contexts.
func TestCtxBgRootExempt(t *testing.T) { none(t, CtxBg, "ctxbg", "cmd/experiments") }

func TestFloatEq(t *testing.T)      { one(t, FloatEq, "floateq", "internal/metrics") }
func TestFloatEqMathx(t *testing.T) { none(t, FloatEq, "floateq_mathx", "internal/mathx") }

func TestBareGoroutine(t *testing.T) { one(t, BareGoroutine, "baregoroutine", "internal/sim") }
func TestBareGoroutineEngine(t *testing.T) {
	none(t, BareGoroutine, "baregoroutine", "internal/engine")
}
func TestBareGoroutineCmd(t *testing.T) { none(t, BareGoroutine, "baregoroutine_cmd", "cmd/tool") }

// httpserver applies everywhere — the real servers live in cmd, so the
// binary package gets no exemption.
func TestHTTPServer(t *testing.T)   { one(t, HTTPServer, "httpserver", "cmd/experiments") }
func TestHTTPServerOK(t *testing.T) { none(t, HTTPServer, "httpserver_ok", "cmd/experiments") }

// TestLoaderEdgeCases pins three loader contracts at once: generic
// code type-checks and lints without crashing, //go:build-tagged files
// are parsed and linted rather than silently skipped, and _test.go
// files stay excluded. The golden holds exactly the tagged file's
// nodeterm finding — nothing from generics.go, nothing from the
// deliberately dirty excluded_test.go.
func TestLoaderEdgeCases(t *testing.T) {
	pkg := loadTestPkg(t, "loader_edge", "internal/loaderedge")
	if got := len(pkg.Files); got != 2 {
		t.Fatalf("loaded %d files, want 2 (generics.go + tagged.go; excluded_test.go must stay out)", got)
	}
	checkGolden(t, "loader_edge", Lint([]*Package{pkg}, Analyzers(), true))
}

// TestSuppressDirectives runs the full check set with unused-directive
// reporting on, exercising both directive placements, the malformed
// forms, and staleness.
func TestSuppressDirectives(t *testing.T) {
	pkg := loadTestPkg(t, "suppress", "internal/experiments")
	checkGolden(t, "suppress", Lint([]*Package{pkg}, Analyzers(), true))
}
