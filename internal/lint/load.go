package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (partially) type-checked package.
type Package struct {
	// Rel is the package directory relative to the module root; "" for
	// the root package itself.
	Rel string
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Dir is the absolute directory.
	Dir string
	// Files holds the parsed non-test sources, in file-name order.
	// Test files are excluded by design: sensorlint checks library and
	// binary code, while tests legitimately pin fixed seeds and compare
	// floats bit-for-bit in determinism assertions.
	Files []*ast.File
	// Info carries type information. It is intentionally partial:
	// stdlib imports are stubbed (see Loader), so expressions whose
	// types depend on stdlib results may be untyped. Analyzers treat a
	// missing type as "unknown", never as a finding.
	Info *types.Info
	// Types is the checked package object (may be incomplete).
	Types *types.Package
	// TypeErrors collects checker diagnostics; they are expected (the
	// stub importer guarantees unresolved stdlib members) and only
	// surface in debug output.
	TypeErrors []error

	fset *token.FileSet
}

// fileAt returns the parsed file containing pos.
func (p *Package) fileAt(pos token.Pos) *ast.File {
	tf := p.fset.File(pos)
	if tf == nil {
		return nil
	}
	for _, f := range p.Files {
		if p.fset.File(f.Pos()) == tf {
			return f
		}
	}
	return nil
}

// Loader parses and type-checks packages under one module root without
// leaving the standard library. Module-internal imports are loaded
// recursively from source; every other import resolves to an empty stub
// package. That keeps the tool hermetic and fast at the cost of partial
// type information for stdlib-derived expressions — an explicit trade
// documented on Package.Info.
type Loader struct {
	Fset   *token.FileSet
	Root   string // absolute module root
	Module string // module path from go.mod

	pkgs    map[string]*Package       // by Rel
	loading map[string]bool           // cycle guard, by Rel
	stubs   map[string]*types.Package // by import path
}

// NewLoader roots a loader at dir, which must contain go.mod (parent
// directories are not searched: the tool is always invoked from, or
// pointed at, the module root).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		Root:    abs,
		Module:  module,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		stubs:   map[string]*types.Package{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: cannot find module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadAll walks every package under the given root-relative patterns
// ("./..." style; "x/..." walks the subtree at x, anything else names a
// single package directory) and returns them in Rel order.
func (l *Loader) LoadAll(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rels := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "." {
			pat = ""
		}
		dir := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(dir) {
				rels[pat] = true
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				rel, err := filepath.Rel(l.Root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				rels[filepath.ToSlash(rel)] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}
	var out []*Package
	for rel := range rels {
		pkg, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and checks the package at rel, memoized.
func (l *Loader) load(rel string) (*Package, error) {
	if pkg, ok := l.pkgs[rel]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	pkg, err := l.loadDirAs(dir, rel)
	if err != nil {
		return nil, err
	}
	l.pkgs[rel] = pkg
	return pkg, nil
}

// LoadDirAs loads the single package in dir, recording it under the
// given root-relative path. Tests use this to check allowlisting:
// a testdata package loaded as "internal/engine" must be exempt from
// the engine-allowlisted analyzers.
func (l *Loader) LoadDirAs(dir, rel string) (*Package, error) {
	return l.loadDirAs(dir, rel)
}

func (l *Loader) loadDirAs(dir, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	importPath := l.Module
	if rel != "" {
		importPath = l.Module + "/" + rel
	}
	pkg := &Package{
		Rel:        rel,
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		fset:       l.Fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	l.loading[rel] = true
	tpkg, _ := conf.Check(importPath, l.Fset, files, pkg.Info) // errors collected above
	delete(l.loading, rel)
	pkg.Types = tpkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking: module-internal
// paths load recursively from source, everything else (stdlib, absent
// third parties) becomes an empty stub so checking proceeds with
// partial information instead of failing.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		if l.loading[rel] {
			return l.stub(path), nil // import cycle: invalid Go, let vet complain
		}
		pkg, err := l.load(rel)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stub(path), nil
}

func (l *Loader) stub(path string) *types.Package {
	if p, ok := l.stubs[path]; ok {
		return p
	}
	name := path[strings.LastIndex(path, "/")+1:]
	p := types.NewPackage(path, name)
	p.MarkComplete()
	l.stubs[path] = p
	return p
}
