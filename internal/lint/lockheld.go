package lint

import (
	"go/ast"
	"go/token"
)

// LockHeld flags blocking operations performed while a mutex is held.
// The coordinator and serve handlers follow a strict discipline —
// mutate state under the lock, release it, then write the HTTP
// response — because an Encode to a stalled client would otherwise
// hold up every heartbeat and lease renewal behind one slow reader.
// A blocking operation is a channel send/receive, a select without
// default, time.Sleep, an outbound network call, a write to an
// http.ResponseWriter, or a call to a module function that
// (transitively) does one of those; see blocking.go.
//
// Two lock shapes are recognized: `mu.Lock()` paired with a later
// `mu.Unlock()` in the same statement list (the region between them is
// locked), and `mu.Lock()` followed by `defer mu.Unlock()` (the rest
// of the function is locked). Receivers are matched textually
// ("c.mu"), which is exact for the field-on-receiver locks used here.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "blocking operation (network write, channel op, sleep) while holding a mutex",
	Run:  runLockHeld,
}

func runLockHeld(p *Pass) {
	blocking := p.Mod.Blocking()
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockRegions(p, fd.Body.List, map[string]bool{}, blocking)
		}
	}
}

// lockCall matches `key.Lock()` / `key.RLock()` (lock=true) or the
// corresponding Unlock calls, returning the textual receiver key.
func lockCall(stmt ast.Stmt) (key string, lock, unlock bool) {
	expr, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false, false
	}
	return lockCallExpr(expr.X)
}

func lockCallExpr(e ast.Expr) (key string, lock, unlock bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// exprKey renders an ident/selector chain ("c.mu") for textual lock
// matching; other shapes yield "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return ""
}

// scanLockRegions walks one statement list tracking which locks are
// held. Statements executed while any lock is held are inspected for
// blocking operations; statements outside any region are recursed into
// to find nested regions.
func scanLockRegions(p *Pass, stmts []ast.Stmt, held map[string]bool, blocking map[*funcNode]string) {
	for _, stmt := range stmts {
		if key, lock, unlock := lockCall(stmt); key != "" {
			if lock {
				held[key] = true
			} else if unlock {
				delete(held, key)
			}
			continue
		}
		if def, ok := stmt.(*ast.DeferStmt); ok {
			if key, _, unlock := lockCallExpr(def.Call); unlock && held[key] {
				continue // defer mu.Unlock(): region runs to function end
			}
		}
		if len(held) > 0 {
			reportBlockingIn(p, stmt, held, blocking)
			continue
		}
		// Not locked here: look inside nested statement lists for
		// their own lock regions.
		for _, body := range nestedStmtLists(stmt) {
			scanLockRegions(p, body, map[string]bool{}, blocking)
		}
	}
}

// nestedStmtLists returns the statement lists directly inside stmt.
func nestedStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(s.Stmt)...)
	}
	return out
}

// reportBlockingIn inspects one statement executed under held locks
// and reports every blocking operation in it. Goroutine spawns do not
// block and function literals may run after the lock is released, so
// both subtrees are skipped.
func reportBlockingIn(p *Pass, stmt ast.Stmt, held map[string]bool, blocking map[*funcNode]string) {
	locks := ""
	for k := range held {
		if locks == "" || k < locks {
			locks = k // deterministic: report the lexically first lock
		}
	}
	fn := enclosingNode(p, stmt)
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "%s held while sending on a channel; shrink the critical section", locks)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.Reportf(n.Pos(), "%s held while receiving from a channel; shrink the critical section", locks)
				return false
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				p.Reportf(n.Pos(), "%s held while blocking in select; shrink the critical section", locks)
				return false
			}
		case *ast.CallExpr:
			if key, _, unlock := lockCallExpr(n); unlock && held[key] {
				return false
			}
			var rw map[*ast.Ident]bool
			if fn != nil {
				rw = respWriterParams(fn)
			}
			if fn != nil {
				if r := blockingCall(fn, n, rw); r != "" {
					p.Reportf(n.Pos(), "%s held while %s; shrink the critical section", locks, verbPhrase(r))
					return false
				}
			}
			if id := calleeIdent(n.Fun); id != nil {
				if callee := p.Mod.Graph().funcs[p.Pkg.Info.Uses[id]]; callee != nil {
					if r, ok := blocking[callee]; ok {
						p.Reportf(n.Pos(), "%s held across %s, which %s; unlock before the call",
							locks, callee.decl.Name.Name, shortReason(r))
						return false
					}
				}
			}
		}
		return true
	})
}

// verbPhrase rewrites a baseBlocking reason ("calls time.Sleep") into
// the progressive form the lockheld message uses ("calling
// time.Sleep").
func verbPhrase(r string) string {
	switch {
	case len(r) > 6 && r[:6] == "calls ":
		return "calling " + r[6:]
	case len(r) > 9 && r[:9] == "performs ":
		return "performing " + r[9:]
	case len(r) > 7 && r[:7] == "writes ":
		return "writing " + r[7:]
	}
	return r
}

// enclosingNode finds the funcNode whose declaration contains stmt.
func enclosingNode(p *Pass, stmt ast.Stmt) *funcNode {
	for decl, fn := range p.Mod.Graph().decls {
		if fn.pkg == p.Pkg && decl.Pos() <= stmt.Pos() && stmt.End() <= decl.End() {
			return fn
		}
	}
	return nil
}
