package lint

// Module aggregates every loaded package so interprocedural analyses
// (the call graph, seed taint, blocking propagation) are computed once
// per run and shared across per-package passes. Lint is
// single-threaded, so the lazy initialization needs no locking.
type Module struct {
	Pkgs []*Package

	graph    *callGraph
	taint    *seedTaint
	blocking map[*funcNode]string
}

// NewModule wraps the loaded packages for cross-package analysis.
func NewModule(pkgs []*Package) *Module { return &Module{Pkgs: pkgs} }

// Graph returns the module-local call graph, built on first use.
func (m *Module) Graph() *callGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m.Pkgs)
	}
	return m.graph
}

// SeedTaint returns the interprocedural seed-taint result, computed on
// first use.
func (m *Module) SeedTaint() *seedTaint {
	if m.taint == nil {
		m.taint = computeSeedTaint(m.Graph())
	}
	return m.taint
}

// Blocking returns, for every function that (transitively) performs a
// blocking operation — channel send/receive, select without default,
// time.Sleep, an outbound network call, or a write to an
// http.ResponseWriter — a one-phrase reason. Computed on first use.
func (m *Module) Blocking() map[*funcNode]string {
	if m.blocking == nil {
		m.blocking = computeBlocking(m.Graph())
	}
	return m.blocking
}
