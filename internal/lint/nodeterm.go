package lint

import (
	"go/ast"
	"strings"
)

// nodetermAllowed lists the library packages that are allowed to touch
// wall-clock time and process environment: the engine owns retry
// backoff and job timing, trace timestamps its spans, and dist owns
// lease deadlines and worker liveness. Everything else in internal/*
// must stay a pure function of its inputs, or the replay guarantee
// (same seed, same bytes, any worker count) dies. Determinism of
// results is unaffected by dist's clocks: job outputs are content
// addressed, so scheduling timing cannot change the bytes.
var nodetermAllowed = map[string]bool{
	"internal/engine": true,
	"internal/trace":  true,
	"internal/dist":   true,
}

// globalRandFns are the math/rand top-level functions that draw from
// the shared, implicitly-seeded global generator. Constructors
// (New, NewSource, NewZipf) are deterministic and excluded — they are
// seedderive's business instead.
var globalRandFns = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
	"Uint32", "Uint64", "Float32", "Float64",
	"ExpFloat64", "NormFloat64", "Perm", "Shuffle", "Seed", "Read",
}

// NoDeterm flags nondeterministic inputs — wall-clock reads, the global
// math/rand generator, and environment lookups — in library code.
// Binaries (cmd/, examples/) may read the clock and environment at the
// edge; libraries must have such values injected.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "wall-clock, global math/rand, and env reads in library code break replayability",
	Run:  runNoDeterm,
}

func runNoDeterm(p *Pass) {
	rel := p.Rel()
	if !(rel == "" || strings.HasPrefix(rel, "internal/")) || nodetermAllowed[rel] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := p.IsPkgCall(call, "time", "Now", "Since", "Until"); ok {
				p.Reportf(call.Pos(), "time.%s in library code is nondeterministic; take the instant (or an engine-owned clock) as a parameter", fn)
			}
			if fn, ok := p.IsPkgCall(call, "os", "Getenv", "LookupEnv", "Environ"); ok {
				p.Reportf(call.Pos(), "os.%s in library code hides an input; plumb configuration through the caller", fn)
			}
			if fn, ok := p.IsPkgCall(call, "math/rand", globalRandFns...); ok {
				p.Reportf(call.Pos(), "rand.%s draws from the shared global generator; use an injected *rand.Rand seeded via engine.DeriveSeed", fn)
			}
			return true
		})
	}
}
