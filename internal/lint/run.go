package lint

import (
	"path/filepath"
	"sort"
)

// Analyzers returns the full registered check set, in name order. The
// "ignore" pseudo-check (problems with suppression directives
// themselves) is implicit and always on.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		BareGoroutine, CachePut, CtxBg, ErrDrop, FloatEq, HTTPServer,
		LeakyTicker, LockHeld, NoDeterm, SeedDerive,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// Lint runs the analyzers over every package, applies each package's
// //lint:ignore directives, and returns the surviving findings sorted
// by position. reportUnused should be true only when the full check
// set ran: with a subset active, a directive that matched nothing may
// simply belong to a disabled check.
func Lint(pkgs []*Package, analyzers []*Analyzer, reportUnused bool) []Finding {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	mod := NewModule(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.fset, Pkg: pkg, Mod: mod, findings: &findings}
			a.Run(pass)
		}
		out = append(out, applyDirectives(findings, parseDirectives(pkg, known), reportUnused)...)
	}
	sortFindings(out)
	return out
}

// RelativeTo rewrites finding file paths relative to base, for stable,
// readable output; paths that cannot be relativized are left alone.
func RelativeTo(findings []Finding, base string) []Finding {
	out := make([]Finding, len(findings))
	for i, f := range findings {
		if rel, err := filepath.Rel(base, f.File); err == nil {
			f.File = filepath.ToSlash(rel)
		}
		out[i] = f
	}
	return out
}
