package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SeedDerive flags ad-hoc seed derivation outside internal/engine. PR 1
// established that affine maps of nearby seeds (`seed*7919+int64(rho)`)
// collide or correlate across nearby parameter values, and replaced
// them with the splitmix64-based engine.DeriveSeed — then PR 2 found
// the same pattern had survived in refinedcfm. Two rules:
//
//  1. Any rand.NewSource call outside internal/engine is reported,
//     unless its argument is a direct engine.DeriveSeed call — the
//     blessed way to mint an independent stream seed (internal/faults
//     seeds its crash/duty/loss streams exactly this way). If the
//     argument contains arithmetic it is a derivation bug to fix with
//     engine.DeriveSeed; if it merely forwards a caller-provided root
//     seed, suppress with a reason saying so.
//  2. Arithmetic (+ - * / % ^ etc.) on a seed-named operand (`seed`,
//     `cfg.Seed`, `baseSeed`, ...) is reported wherever it occurs: the
//     sum of two seeds is not an independent seed.
var SeedDerive = &Analyzer{
	Name: "seedderive",
	Doc:  "ad-hoc seed arithmetic and raw rand.NewSource outside internal/engine; use engine.DeriveSeed",
	Run:  runSeedDerive,
}

func runSeedDerive(p *Pass) {
	if p.Rel() == "internal/engine" {
		return
	}
	for _, f := range p.Pkg.Files {
		// flaggedArgs tracks arguments of already-reported NewSource
		// calls so rule 2 does not report the same expression twice.
		flaggedArgs := map[ast.Node]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, ok := p.IsPkgCall(n, "math/rand", "NewSource"); !ok {
					return true
				}
				if len(n.Args) == 1 && derivedSeedArg(p, n.Args[0]) {
					return true // stream seed minted by engine.DeriveSeed
				}
				if len(n.Args) == 1 && containsArith(n.Args[0]) {
					flaggedArgs[n.Args[0]] = true
					p.Reportf(n.Pos(), "seed derived by inline arithmetic collides across nearby parameters; derive it with engine.DeriveSeed(base, parts...)")
				} else {
					p.Reportf(n.Pos(), "raw rand.NewSource outside internal/engine: derive per-stream seeds with engine.DeriveSeed, or suppress if this seeds the root RNG from a caller-provided seed")
				}
			case *ast.BinaryExpr:
				if !arithOp(n.Op) || !mentionsSeed(n) {
					return true
				}
				for arg := range flaggedArgs {
					if n.Pos() >= arg.Pos() && n.End() <= arg.End() {
						return false
					}
				}
				p.Reportf(n.Pos(), "arithmetic on a seed yields correlated or colliding streams; derive child seeds with engine.DeriveSeed(base, parts...)")
				return false // one report per expression tree
			}
			return true
		})
	}
}

// derivedSeedArg reports whether e is a direct engine.DeriveSeed(...)
// call: collision-resistant by construction, so a rand.NewSource
// wrapped around it needs no suppression. The check keys off the
// resolved import path, not the qualifier spelling, so renamed imports
// neither defeat nor spoof it.
func derivedSeedArg(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DeriveSeed" {
		return false
	}
	path := p.ImportedPkg(sel.X)
	return path == "internal/engine" || strings.HasSuffix(path, "/internal/engine")
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.XOR, token.OR, token.AND, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

// containsArith reports whether the expression tree contains any
// arithmetic binary operator.
func containsArith(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && arithOp(b.Op) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsSeed reports whether either operand of the (possibly nested)
// arithmetic expression is seed-named: the identifier or field `seed`
// or anything ending in `Seed` (`cfg.Seed`, `baseSeed`). The plural
// `seeds` — a count, not a seed — deliberately does not match.
func mentionsSeed(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		default:
			return true
		}
		if strings.EqualFold(name, "seed") || strings.HasSuffix(name, "Seed") {
			found = true
		}
		return !found
	})
	return found
}
