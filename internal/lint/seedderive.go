package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// SeedDerive flags ad-hoc seed derivation outside internal/engine. PR 1
// established that affine maps of nearby seeds (`seed*7919+int64(rho)`)
// collide or correlate across nearby parameter values, and replaced
// them with the splitmix64-based engine.DeriveSeed — then PR 2 found
// the same pattern had survived in refinedcfm. Two rules:
//
//  1. Any rand.NewSource call outside internal/engine is reported,
//     unless its argument is a direct engine.DeriveSeed call — the
//     blessed way to mint an independent stream seed (internal/faults
//     seeds its crash/duty/loss streams exactly this way). If the
//     argument contains arithmetic it is a derivation bug to fix with
//     engine.DeriveSeed; if it merely forwards a caller-provided root
//     seed, suppress with a reason saying so.
//  2. Arithmetic (+ - * / % ^ etc.) on a seed-named operand (`seed`,
//     `cfg.Seed`, `baseSeed`, ...) is reported wherever it occurs: the
//     sum of two seeds is not an independent seed.
//
// v2 makes rule 1 interprocedural via the module seed-taint analysis
// (see seedtaint.go). A NewSource argument is silent when *provably*
// safe: a DeriveSeed call, an integer constant, or a parameter whose
// complete call-site set passes only safe values — so forwarding
// helpers called correctly everywhere need no suppression. And a third
// rule closes the indirection gap rule 1 left open:
//
//  3. An arithmetic-derived argument at a call site whose parameter
//     flows (transitively) into a rand.NewSource is reported at the
//     call site, even though the NewSource itself hides inside a
//     helper.
var SeedDerive = &Analyzer{
	Name: "seedderive",
	Doc:  "ad-hoc seed arithmetic and raw rand.NewSource outside internal/engine; use engine.DeriveSeed",
	Run:  runSeedDerive,
}

func runSeedDerive(p *Pass) {
	if p.Rel() == "internal/engine" {
		return
	}
	taint := p.Mod.SeedTaint()
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			decl, _ := d.(*ast.FuncDecl) // nil in package-level initializers
			// flaggedArgs tracks expressions already reported by rule 1
			// or rule 3 so rule 2 does not report inside them again.
			flaggedArgs := map[ast.Node]bool{}
			ast.Inspect(d, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if _, ok := p.IsPkgCall(n, "math/rand", "NewSource"); ok {
						if len(n.Args) == 1 && taint.Safe(p.Pkg, decl, n.Args[0]) {
							return true // provably a derived, constant, or proven-safe seed
						}
						if len(n.Args) == 1 && containsArith(n.Args[0]) {
							flaggedArgs[n.Args[0]] = true
							p.Reportf(n.Pos(), "seed derived by inline arithmetic collides across nearby parameters; derive it with engine.DeriveSeed(base, parts...)")
						} else {
							p.Reportf(n.Pos(), "raw rand.NewSource outside internal/engine: derive per-stream seeds with engine.DeriveSeed, or suppress if this seeds the root RNG from a caller-provided seed")
						}
						return true
					}
					// Rule 3: arithmetic flowing into a parameter that
					// reaches a NewSource inside the callee. Seed-named
					// operands are left to rule 2 (one report, not two).
					for i, arg := range n.Args {
						if !containsArith(arg) || mentionsSeed(arg) {
							continue
						}
						if callee, ok := taint.SinkParam(p.Pkg, n, i); ok {
							flaggedArgs[arg] = true
							p.Reportf(arg.Pos(), "arithmetic-derived value seeds rand.NewSource inside %s; derive it with engine.DeriveSeed(base, parts...)", callee)
						}
					}
				case *ast.BinaryExpr:
					if !arithOp(n.Op) || !mentionsSeed(n) {
						return true
					}
					for arg := range flaggedArgs {
						if n.Pos() >= arg.Pos() && n.End() <= arg.End() {
							return false
						}
					}
					p.Reportf(n.Pos(), "arithmetic on a seed yields correlated or colliding streams; derive child seeds with engine.DeriveSeed(base, parts...)")
					return false // one report per expression tree
				}
				return true
			})
		}
	}
}

func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.XOR, token.OR, token.AND, token.AND_NOT, token.SHL, token.SHR:
		return true
	}
	return false
}

// containsArith reports whether the expression tree contains any
// arithmetic binary operator.
func containsArith(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && arithOp(b.Op) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsSeed reports whether either operand of the (possibly nested)
// arithmetic expression is seed-named: the identifier or field `seed`
// or anything ending in `Seed` (`cfg.Seed`, `baseSeed`). The plural
// `seeds` — a count, not a seed — deliberately does not match.
func mentionsSeed(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		default:
			return true
		}
		if strings.EqualFold(name, "seed") || strings.HasSuffix(name, "Seed") {
			found = true
		}
		return !found
	})
	return found
}
