package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// seedTaint is the interprocedural seed analysis behind seedderive v2.
// It answers two questions the intraprocedural pass cannot:
//
//  1. Is this rand.NewSource argument *provably* a safe seed — an
//     engine.DeriveSeed result, an integer constant, or a parameter
//     that only ever receives such values at its (complete) call-site
//     set? Provably safe sources need neither a finding nor a
//     suppression, so forwarding helpers like
//
//     func seededRand(seed int64) *rand.Rand {
//     return rand.New(rand.NewSource(seed))
//     }
//
//     are blessed when every caller passes engine.DeriveSeed(...).
//
//  2. Which parameters are seed sinks — values that flow (possibly
//     through further calls) into a rand.NewSource — so a call site
//     passing an arithmetic-derived value to one can be flagged even
//     though the NewSource hides behind indirection?
//
// The lattice per parameter is two-point: safe (top, optimistic start)
// or tainted. A greatest-fixpoint sweep marks a parameter tainted when
// any visible call site passes a non-safe expression, when the
// function's call-site set is incomplete (exported outside internal/,
// escaping as a value, interface-dispatchable method), or when it has
// no visible call sites at all — a helper nobody calls must not be
// blessed on zero evidence. Local variables transfer safety only
// through plain single-value assignments; compound assignment,
// increment/decrement, and address-taking all taint, so the sequential
// `seed++` ladders rule 2 polices cannot sneak through a local.
type seedTaint struct {
	g       *callGraph
	tainted map[types.Object]bool // parameters that may carry an unproven seed
	sink    map[types.Object]bool // parameters that reach a rand.NewSource
}

// computeSeedTaint runs both fixpoints over the call graph.
func computeSeedTaint(g *callGraph) *seedTaint {
	t := &seedTaint{g: g, tainted: map[types.Object]bool{}, sink: map[types.Object]bool{}}

	// Initialization: parameters are safe only when the call-site set
	// is complete and non-empty; variadic tails are never tracked.
	for _, fn := range g.funcs {
		params := paramObjs(fn)
		complete := g.provable(fn) && len(g.in[fn]) > 0
		for i, p := range params {
			if p == nil {
				continue
			}
			if !complete || (variadic(fn) && i == len(params)-1) {
				t.tainted[p] = true
			}
		}
	}

	// Greatest fixpoint: one sweep can only add taint, so iteration
	// terminates.
	for changed := true; changed; {
		changed = false
		for fn, sites := range g.in {
			params := paramObjs(fn)
			for _, cs := range sites {
				if t.taintCallSite(cs, fn, params) {
					changed = true
				}
			}
		}
	}

	t.computeSinks()
	return t
}

// taintCallSite marks parameters of fn tainted by one call site,
// reporting whether anything changed.
func (t *seedTaint) taintCallSite(cs callSite, fn *funcNode, params []types.Object) bool {
	args := cs.call.Args
	changed := false
	mark := func(p types.Object) {
		if p != nil && !t.tainted[p] {
			t.tainted[p] = true
			changed = true
		}
	}
	if len(args) != len(params) || cs.call.Ellipsis != token.NoPos {
		// Arity mismatch (variadic spread, multi-value forwarding):
		// nothing maps positionally, so trust nothing.
		for _, p := range params {
			mark(p)
		}
		return changed
	}
	for i, arg := range args {
		p := params[i]
		if p == nil || t.tainted[p] {
			continue
		}
		if !t.safeExpr(arg, cs.caller, cs.pkg, map[types.Object]bool{}) {
			mark(p)
		}
	}
	return changed
}

// safeExpr reports whether e is a provably safe seed expression inside
// caller (nil for package-level contexts). seen guards local-variable
// cycles; an assignment cycle resolves optimistically, consistent with
// the greatest fixpoint.
func (t *seedTaint) safeExpr(e ast.Expr, caller *funcNode, pkg *Package, seen map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.safeExpr(e.X, caller, pkg, seen)
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return t.safeExpr(e.X, caller, pkg, seen)
		}
		return false
	case *ast.CallExpr:
		if isDeriveSeedCall(pkg, e) {
			return true
		}
		// A pure type conversion is transparent: int64(x) is as safe
		// as x.
		if len(e.Args) == 1 {
			if id := calleeIdent(e.Fun); id != nil {
				if _, isType := pkg.Info.Uses[id].(*types.TypeName); isType {
					return t.safeExpr(e.Args[0], caller, pkg, seen)
				}
			}
		}
		return false
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if obj == nil {
			return false
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true
		}
		if caller == nil {
			return false
		}
		if isParamOf(caller, obj) {
			return !t.tainted[obj]
		}
		// Local variable: safe when every assignment reaching it is.
		if seen[obj] {
			return true
		}
		lf := caller.localFlow()
		if lf.bad[obj] {
			return false
		}
		rhs := lf.assigns[obj]
		if len(rhs) == 0 {
			return false
		}
		seen[obj] = true
		for _, r := range rhs {
			if !t.safeExpr(r, caller, pkg, seen) {
				return false
			}
		}
		delete(seen, obj)
		return true
	}
	return false
}

// Safe reports whether e, appearing inside the given declaration (nil
// for package level) of pkg, is a provably safe seed expression.
func (t *seedTaint) Safe(pkg *Package, decl *ast.FuncDecl, e ast.Expr) bool {
	var caller *funcNode
	if decl != nil {
		caller = t.g.decls[decl]
	}
	return t.safeExpr(e, caller, pkg, map[types.Object]bool{})
}

// SinkParam reports whether the i'th parameter of the function called
// by call (resolved module-locally) flows into a rand.NewSource. The
// callee's name is returned for diagnostics.
func (t *seedTaint) SinkParam(pkg *Package, call *ast.CallExpr, i int) (string, bool) {
	id := calleeIdent(call.Fun)
	if id == nil {
		return "", false
	}
	fn := t.g.funcs[pkg.Info.Uses[id]]
	if fn == nil {
		return "", false
	}
	params := paramObjs(fn)
	if i >= len(params) || params[i] == nil || len(call.Args) != len(params) {
		return "", false
	}
	return fn.decl.Name.Name, t.sink[params[i]]
}

// computeSinks marks parameters that (transitively) reach a
// rand.NewSource argument: directly inside their own function, or by
// being forwarded into another sink parameter. Monotone fixpoint.
func (t *seedTaint) computeSinks() {
	for changed := true; changed; {
		changed = false
		for _, fn := range t.g.funcs {
			if fn.decl.Body == nil {
				continue
			}
			for _, p := range paramObjs(fn) {
				if p == nil || t.sink[p] {
					continue
				}
				if t.paramReachesSink(fn, p) {
					t.sink[p] = true
					changed = true
				}
			}
		}
	}
}

// paramReachesSink reports whether parameter p of fn flows into a
// NewSource argument or a known sink parameter within fn's body,
// following plain local assignments.
func (t *seedTaint) paramReachesSink(fn *funcNode, p types.Object) bool {
	found := false
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, isNewSource := fn.pkg.isPkgCall(call, "math/rand", "NewSource"); isNewSource {
			for _, arg := range call.Args {
				if t.exprUses(arg, fn, p, map[types.Object]bool{}) {
					found = true
				}
			}
			return true
		}
		id := calleeIdent(call.Fun)
		if id == nil {
			return true
		}
		callee := t.g.funcs[fn.pkg.Info.Uses[id]]
		if callee == nil {
			return true
		}
		params := paramObjs(callee)
		if len(call.Args) != len(params) {
			return true
		}
		for i, arg := range call.Args {
			if params[i] != nil && t.sink[params[i]] && t.exprUses(arg, fn, p, map[types.Object]bool{}) {
				found = true
			}
		}
		return true
	})
	return found
}

// exprUses reports whether e mentions object p directly or through a
// chain of plain local assignments.
func (t *seedTaint) exprUses(e ast.Expr, fn *funcNode, p types.Object, seen map[types.Object]bool) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fn.pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if obj == p {
			used = true
			return false
		}
		if _, isVar := obj.(*types.Var); isVar && !seen[obj] {
			seen[obj] = true
			for _, rhs := range fn.localFlow().assigns[obj] {
				if t.exprUses(rhs, fn, p, seen) {
					used = true
					return false
				}
			}
		}
		return true
	})
	return used
}

// isParamOf reports whether obj is one of fn's declared parameters.
func isParamOf(fn *funcNode, obj types.Object) bool {
	for _, p := range paramObjs(fn) {
		if p != nil && p == obj {
			return true
		}
	}
	return false
}

// isDeriveSeedCall reports whether e is a direct engine.DeriveSeed
// call, resolved by import path so renamed imports neither defeat nor
// spoof it.
func isDeriveSeedCall(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DeriveSeed" {
		return false
	}
	path := pkg.importedPkg(sel.X)
	return path == "internal/engine" || strings.HasSuffix(path, "/internal/engine")
}

// localFlow records how a function's local variables are assigned:
// assigns maps a variable to the right-hand sides of its plain
// assignments, bad marks variables mutated in ways the taint analysis
// does not model (compound assignment, ++/--, address taken,
// multi-value unpacking, range assignment).
type localFlow struct {
	assigns map[types.Object][]ast.Expr
	bad     map[types.Object]bool
}

// localFlow builds (once) the assignment map for fn's body.
func (fn *funcNode) localFlow() *localFlow {
	if fn.flow != nil {
		return fn.flow
	}
	lf := &localFlow{assigns: map[types.Object][]ast.Expr{}, bad: map[types.Object]bool{}}
	fn.flow = lf
	if fn.decl.Body == nil {
		return lf
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := fn.pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return fn.pkg.Info.Uses[id]
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			plain := n.Tok == token.ASSIGN || n.Tok == token.DEFINE
			for i, lhs := range n.Lhs {
				obj := objOf(lhs)
				if obj == nil {
					continue
				}
				if !plain || len(n.Lhs) != len(n.Rhs) {
					lf.bad[obj] = true
					continue
				}
				lf.assigns[obj] = append(lf.assigns[obj], n.Rhs[i])
			}
		case *ast.IncDecStmt:
			if obj := objOf(n.X); obj != nil {
				lf.bad[obj] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := objOf(n.X); obj != nil {
					lf.bad[obj] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e != nil {
					if obj := objOf(e); obj != nil {
						lf.bad[obj] = true
					}
				}
			}
		}
		return true
	})
	return lf
}
