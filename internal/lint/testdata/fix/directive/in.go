package fixdemo

import "time"

// The suppression below is a near-miss spelling ("// lint:ignore"),
// which Go treats as an ordinary comment: it suppresses nothing. -fix
// normalizes the prefix, after which the directive takes effect and
// the re-lint pass comes up clean.

func stamp() time.Time {
	// lint:ignore nodeterm wall-clock decorates log lines only
	return time.Now()
}
