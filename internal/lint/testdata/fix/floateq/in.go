package fixdemo

import (
	"math"
)

// Convergence helpers carrying the exact float comparisons -fix must
// rewrite. The fixed.go.golden file next to this one is the byte-exact
// expected output after one `sensorlint -fix` pass.

func converged(a, b float64) bool {
	return a == b
}

func hasNaN(x float64) bool {
	return x != x
}

func distinct(a, b float64) bool {
	return math.Abs(a-b) > 1 && a != b
}
