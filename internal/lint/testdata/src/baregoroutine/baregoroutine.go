// Package baregoroutine is lint testdata: go statements outside the
// engine pool.
package baregoroutine

func fanOut(jobs []func()) {
	done := make(chan struct{}, len(jobs))
	for _, job := range jobs {
		go func(f func()) { // want: bare goroutine
			defer func() { done <- struct{}{} }()
			f()
		}(job)
	}
	for range jobs {
		<-done
	}
}

func fireAndForget(f func()) {
	go f() // want: bare goroutine
}

// A suppressed goroutine with a written reason is clean.
func justified(f func()) {
	//lint:ignore baregoroutine testdata: bounded and joined by the caller
	go f()
}
