// Package main is lint testdata loaded under the rel path cmd/tool:
// binaries keep the usual latitude (signal handlers, shutdown), so the
// goroutine below may not be reported.
package main

func main() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
