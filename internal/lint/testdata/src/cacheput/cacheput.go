// Package cacheput is lint testdata: raw file writes aimed at a cache
// directory from outside internal/engine, and the sanctioned routes
// that must stay silent.
package cacheput

import (
	"os"
	"path/filepath"
)

type sink interface {
	IngestResult(fp string, payload []byte) error
	Put(fp string, v any, encode func(any) ([]byte, error))
}

type server struct {
	cacheDir string
	out      string
	s        sink
}

// Raw writes into cache-named paths bypass fingerprinting.
func (s *server) bad(fp string, payload []byte) error {
	if err := os.MkdirAll(s.cacheDir, 0o755); err != nil { // want: os.MkdirAll into the cache directory
		return err
	}
	return os.WriteFile(filepath.Join(s.cacheDir, fp+".json"), payload, 0o644) // want: os.WriteFile into the cache directory
}

func badRename(cachePath string, tmp string) error {
	return os.Rename(tmp, cachePath) // want: os.Rename into the cache directory
}

func badCreate(cacheFile string) (*os.File, error) {
	return os.Create(cacheFile) // want: os.Create into the cache directory
}

// The sanctioned ingestion routes.
func (s *server) good(fp string, payload []byte) error {
	return s.s.IngestResult(fp, payload)
}

// Writes to non-cache paths are out of scope.
func (s *server) goodOther(name string, data []byte) error {
	return os.WriteFile(filepath.Join(s.out, name), data, 0o644)
}
