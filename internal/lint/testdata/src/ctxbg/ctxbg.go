// Package ctxbg is lint testdata: context.Background/TODO in internal
// code, with the blessed XxxCtx wrapper pattern as the exemption.
package ctxbg

import "context"

type runner struct{}

func (runner) SweepCtx(ctx context.Context, n int) error     { return ctx.Err() }
func (runner) SweepContext(ctx context.Context, n int) error { return ctx.Err() }

// Sweep is the documented wrapper pattern: allowed.
func (r runner) Sweep(n int) error {
	return r.SweepCtx(context.Background(), n)
}

// sweep delegates to the Context-suffixed twin, lower-cased: allowed.
func sweep(r runner, n int) error {
	return r.SweepContext(context.Background(), n)
}

// Orphan builds a context out of thin air mid-library: flagged.
func Orphan(r runner, n int) error {
	ctx := context.Background() // want: ctxbg
	return r.SweepCtx(ctx, n)
}

// Todo is no better: flagged.
func Todo(r runner, n int) error {
	return r.SweepCtx(context.TODO(), n) // wrapper twin is SweepCtx, not TodoCtx: flagged
}

// Mismatch delegates to something that is not its own Ctx twin:
// flagged.
func Mismatch(r runner, n int) error {
	return r.SweepCtx(context.Background(), n)
}
