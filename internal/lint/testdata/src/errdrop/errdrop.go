// Package errdrop is lint testdata: discarded errors on the
// cache-write, encode, and HTTP-response paths, alongside the checked
// and genuinely void calls that must stay silent.
package errdrop

import (
	"encoding/json"
	"net/http"
	"os"
)

type store struct{}

func (store) Put(fp string, payload []byte) error          { return nil }
func (store) IngestResult(fp string, payload []byte) error { return nil }

// memCache's Put returns nothing: the checker proves there is no error
// to drop, so the name match alone must not fire.
type memCache struct{}

func (memCache) Put(fp string, v any) {}

func drops(w http.ResponseWriter, s store, fp string, payload []byte) {
	_ = json.NewEncoder(w).Encode(payload)       // want: result encoding error from Encode is dropped
	json.NewEncoder(w).Encode(payload)           // want: result encoding error from Encode is dropped
	_ = s.Put(fp, payload)                       // want: a cache write error from Put is dropped
	s.IngestResult(fp, payload)                  // want: result ingestion error from IngestResult is dropped
	_ = os.WriteFile("out.json", payload, 0o644) // want: a file write error from WriteFile is dropped
}

func checked(w http.ResponseWriter, s store, fp string, payload []byte) error {
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		return err
	}
	if err := s.Put(fp, payload); err != nil {
		return err
	}
	return os.WriteFile("out.json", payload, 0o644)
}

func voidPut(m memCache, fp string, payload []byte) {
	m.Put(fp, payload) // provably returns no error
}

func justified(s store, fp string, payload []byte) {
	//lint:ignore errdrop testdata: deliberate best-effort write
	_ = s.Put(fp, payload)
}
