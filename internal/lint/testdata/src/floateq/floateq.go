// Package floateq is lint testdata: exact floating-point comparisons
// and the comparisons that must stay legal.
package floateq

type point struct{ X, Y float64 }

func equal(a, b float64) bool {
	return a == b // want: exact ==
}

func notEqual(a float32, b float32) bool {
	return a != b // want: exact !=
}

func nanTest(x float64) bool {
	return x != x // want: NaN test in disguise
}

func fieldCompare(p, q point) bool {
	return p.X == q.X // want: exact ==
}

func mixed(n int, x float64) bool {
	return float64(n) == x // want: exact ==
}

func sentinel(r float64) float64 {
	//lint:ignore floateq testdata: zero is the unset sentinel
	if r == 0 {
		return 1
	}
	return r
}

// Negatives: integer and string comparisons, float ordering, and
// epsilon-style comparison.
func negatives(i, j int, s string, a, b float64) bool {
	if i == j || s == "x" {
		return true
	}
	if a < b || a > b {
		return false
	}
	d := a - b
	return d < 1e-9 && d > -1e-9
}
