// Package floateq_mathx is lint testdata loaded under the rel path
// internal/mathx: the epsilon-helper package is allowed to compare
// floats exactly, so nothing here may be reported.
package floateq_mathx

func dupKnot(xs []float64, i int) bool {
	return xs[i] == xs[i-1]
}
