// Package httpserver exercises the httpserver analyzer: bare
// ListenAndServe helpers, a timeout-less http.Server literal, and a
// package that never wires Shutdown.
package httpserver

import (
	"net/http"
)

func startBare() error {
	return http.ListenAndServe(":8080", nil) // want: no timeouts, no stop handle
}

func startBareTLS() error {
	return http.ListenAndServeTLS(":8443", "cert.pem", "key.pem", nil) // want: same, TLS variant
}

func startNoTimeouts(h http.Handler) error {
	srv := &http.Server{ // want: no read timeout, and the package never calls Shutdown
		Addr:    ":9090",
		Handler: h,
	}
	return srv.ListenAndServe()
}
