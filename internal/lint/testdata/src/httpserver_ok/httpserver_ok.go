// Package httpserverok is the clean counterpart for the httpserver
// analyzer: the server bounds header reads and the package drains
// gracefully via Shutdown on cancellation.
package httpserverok

import (
	"context"
	"net/http"
	"time"
)

func serve(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
