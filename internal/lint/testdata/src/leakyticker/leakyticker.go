// Package leakyticker is lint testdata: timers that leak under
// repetition — time.After in poll loops, unstoppable time.Tick,
// never-stopped tickers — and the hoisted-timer idiom that must stay
// silent.
package leakyticker

import (
	"context"
	"time"
)

// A timer per iteration, uncollectable until each fires.
func badAfterLoop(ctx context.Context, poll time.Duration) {
	for {
		select {
		case <-time.After(poll): // want: time.After in a loop
		case <-ctx.Done():
			return
		}
	}
}

// The closure body is a loop too, even though the closure itself is not.
func badAfterClosure(ctx context.Context, poll time.Duration) func() {
	return func() {
		for range [8]int{} {
			<-time.After(poll) // want: time.After in a loop
		}
	}
}

// time.Tick's ticker can never be stopped, loop or not.
func badTick(poll time.Duration) <-chan time.Time {
	return time.Tick(poll) // want: time.Tick's ticker can never be stopped
}

// A ticker constructed and abandoned.
func badNoStop(ctx context.Context, poll time.Duration) {
	t := time.NewTicker(poll) // want: time.NewTicker result is never stopped
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
	}
}

// The hoisted reusable timer: one allocation, reset per iteration.
func goodHoisted(ctx context.Context, poll time.Duration) {
	t := time.NewTimer(poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			t.Reset(poll)
		case <-ctx.Done():
			return
		}
	}
}

// A ticker with a deferred Stop.
func goodTicker(ctx context.Context, poll time.Duration) {
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
	}
}

// A single timeout outside any loop is the intended use of time.After.
func goodSingleAfter(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return false
	case <-ctx.Done():
		return true
	}
}
