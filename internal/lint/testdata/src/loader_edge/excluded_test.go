package loaderedge

import "time"

// Test files are excluded from linting by design (tests legitimately
// pin seeds and compare floats exactly). If the loader ever started
// picking this file up, the loader_edge golden would grow a second
// nodeterm finding and the edge-case test would fail.

func testOnlyStamp() time.Time { return time.Now() }
