package loaderedge

// Generic code the loader must type-check without crashing. The
// explicitly instantiated call in Doubled exercises calleeIdent's
// IndexExpr unwrapping in the call-graph builder; none of this should
// produce findings.

type Pair[T any] struct{ A, B T }

func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

func Doubled(xs []int) []int {
	return Map[int, int](xs, func(x int) int { return x * 2 })
}
