//go:build sensornet_tagged

package loaderedge

import "time"

// Build-tagged files are linted regardless of their constraints: a
// determinism bug behind a tag is still a bug, and the loader must not
// silently skip this file. The golden file proves the finding below
// surfaces.

func TaggedStamp() time.Time { return time.Now() } // want nodeterm
