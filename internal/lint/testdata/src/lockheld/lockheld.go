// Package lockheld is lint testdata: blocking operations under a held
// mutex in the shapes the coordinator/serve handlers use, plus the
// compute-under-lock-write-after pattern that must stay silent.
package lockheld

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

type coord struct {
	mu    sync.Mutex
	state int
	ch    chan int
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// The response is written while the deferred unlock still holds the
// lock: one stalled client reader blocks every other handler.
func (c *coord) badDeferred(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state++
	writeJSON(w, http.StatusOK, c.state) // want: c.mu held while writing the HTTP response
}

// Blocking operations between a sequential Lock/Unlock pair.
func (c *coord) badSequential(v int) {
	c.mu.Lock()
	c.state = v
	c.ch <- v                    // want: c.mu held while sending on a channel
	time.Sleep(time.Millisecond) // want: c.mu held while calling time.Sleep
	c.mu.Unlock()
}

// Direct response writes under the lock are as bad as helper calls.
func (c *coord) badDirect(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.WriteHeader(http.StatusOK) // want: c.mu held while writing the HTTP response
}

// The sanctioned shape: mutate under the lock, release, then write.
func (c *coord) good(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.state++
	s := c.state
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, s)
}

// Spawning under the lock does not block the spawner.
func (c *coord) goodSpawn(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state = v
	//lint:ignore baregoroutine testdata: lifecycle is irrelevant to the lockheld case under test
	go func() { c.ch <- v }()
}
