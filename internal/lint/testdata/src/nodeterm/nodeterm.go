// Package nodeterm is lint testdata: nondeterministic inputs in
// library code, plus the deterministic look-alikes the analyzer must
// not touch.
package nodeterm

import (
	"math/rand"
	"os"
	"time"
)

func clock() time.Time {
	return time.Now() // want: time.Now
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want: time.Since
}

func env() string {
	return os.Getenv("SENSORNET_DEBUG") // want: os.Getenv
}

func globalDraw() float64 {
	return rand.Float64() // want: global generator
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: global generator
}

// Negatives: constructing a seeded generator is deterministic (that is
// seedderive's territory, not nodeterm's), methods on an injected
// *rand.Rand are fine, and fixed durations read no clock.
func negatives(rng *rand.Rand) (float64, time.Duration) {
	_ = rand.New(rand.NewSource(1))
	return rng.Float64(), 5 * time.Second
}
