// Package nodeterm_trace is lint testdata loaded under the rel path
// internal/trace: allowlisted for wall-clock reads (span timestamps),
// so nothing here may be reported.
package nodeterm_trace

import "time"

func stamp() time.Time {
	return time.Now()
}
