// Package seedderive is lint testdata: every construct the seedderive
// analyzer must flag, plus the patterns it must leave alone.
package seedderive

import (
	"math/rand"

	mrand "math/rand"
)

// Computed argument: the classic affine derivation bug.
func affine(seed int64, rho float64) *rand.Rand {
	return rand.New(rand.NewSource(seed*104729 + int64(rho))) // want: inline arithmetic
}

// Raw construction from a forwarded seed: flagged, suppressible.
func raw(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want: raw rand.NewSource
}

// Renamed import must still resolve to math/rand.
func renamed(seed int64) mrand.Source {
	return mrand.NewSource(seed) // want: raw rand.NewSource
}

// Seed arithmetic away from any NewSource call.
func arith(baseSeed int64, r int) int64 {
	derived := baseSeed + int64(r) // want: arithmetic on a seed
	return derived
}

type config struct{ Seed int64 }

// Field access spelled ...Seed counts as a seed operand.
func fieldArith(cfg config, i int) int64 {
	return cfg.Seed * int64(i) // want: arithmetic on a seed
}

// A suppressed root construction is clean.
func suppressed(seed int64) *rand.Rand {
	//lint:ignore seedderive testdata: caller-provided root seed
	return rand.New(rand.NewSource(seed))
}

// Negatives: comparisons and increments are not derivations, and the
// plural `seeds` is a count, not a seed.
func negatives(seeds int) int {
	total := 0
	for seed := 0; seed < seeds; seed++ {
		total += seeds - 1
	}
	return total
}
