// Package seedderive is lint testdata: every construct the seedderive
// analyzer must flag, plus the patterns it must leave alone.
package seedderive

import (
	"math/rand"

	mrand "math/rand"

	"sensornet/internal/engine"
)

// Computed argument: the classic affine derivation bug.
func affine(seed int64, rho float64) *rand.Rand {
	return rand.New(rand.NewSource(seed*104729 + int64(rho))) // want: inline arithmetic
}

// Raw construction from a forwarded seed: flagged, suppressible.
func raw(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want: raw rand.NewSource
}

// Renamed import must still resolve to math/rand.
func renamed(seed int64) mrand.Source {
	return mrand.NewSource(seed) // want: raw rand.NewSource
}

// Seed arithmetic away from any NewSource call.
func arith(baseSeed int64, r int) int64 {
	derived := baseSeed + int64(r) // want: arithmetic on a seed
	return derived
}

type config struct{ Seed int64 }

// Field access spelled ...Seed counts as a seed operand.
func fieldArith(cfg config, i int) int64 {
	return cfg.Seed * int64(i) // want: arithmetic on a seed
}

// A suppressed root construction is clean.
func suppressed(seed int64) *rand.Rand {
	//lint:ignore seedderive testdata: caller-provided root seed
	return rand.New(rand.NewSource(seed))
}

// Negatives: comparisons and increments are not derivations, and the
// plural `seeds` is a count, not a seed.
func negatives(seeds int) int {
	total := 0
	for seed := 0; seed < seeds; seed++ {
		total += seeds - 1
	}
	return total
}

// The blessed idiom: a stream seed minted directly by
// engine.DeriveSeed is collision-resistant by construction and needs
// no suppression.
func derivedStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(engine.DeriveSeed(seed, "stream")))
}

type fakeDeriver struct{}

func (fakeDeriver) DeriveSeed(seed int64, parts ...string) int64 { return seed }

// Spoofing the method name does not help: DeriveSeed must resolve to a
// package import of internal/engine.
func spoofed(seed int64) *rand.Rand {
	var engine2 fakeDeriver
	return rand.New(rand.NewSource(engine2.DeriveSeed(seed, "stream"))) // want: raw rand.NewSource
}
