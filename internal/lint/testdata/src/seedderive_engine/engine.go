// Package seedderive_engine is lint testdata loaded under the rel path
// internal/engine: the one package allowed to construct sources and do
// seed mixing, so none of this may be reported.
package seedderive_engine

import "math/rand"

func mix(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed*31 + int64(i)))
}
