// Package seedderive_faults is lint testdata loaded under the rel path
// internal/faults: it mirrors the real package's seed plumbing — one
// independent stream per fault process, every stream seed minted by
// engine.DeriveSeed — which must lint clean with no suppressions.
package seedderive_faults

import (
	"math/rand"

	"sensornet/internal/engine"
)

type plan struct {
	crash, duty, loss *rand.Rand
}

func newPlan(seed int64) *plan {
	return &plan{
		crash: rand.New(rand.NewSource(engine.DeriveSeed(seed, "faults", "crash"))),
		duty:  rand.New(rand.NewSource(engine.DeriveSeed(seed, "faults", "duty"))),
		loss:  rand.New(rand.NewSource(engine.DeriveSeed(seed, "faults", "loss"))),
	}
}
