// Package seedderive_interproc is lint testdata for the v2
// interprocedural taint: helpers whose seeds are proven safe through
// their call sites, arithmetic hiding one call behind the NewSource,
// and the escape/taint conditions that keep the analysis sound.
package seedderive_interproc

import (
	"math/rand"

	"sensornet/internal/engine"
)

// blessed is a forwarding helper whose every call site passes an
// engine.DeriveSeed result or an integer constant, so the taint
// analysis proves its parameter safe: no finding, no suppression.
func blessed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func useBlessedDerived(root int64) *rand.Rand {
	return blessed(engine.DeriveSeed(root, "deploy"))
}

func useBlessedConst() *rand.Rand {
	return blessed(1)
}

// sink's parameter reaches the NewSource, and one caller feeds it
// arithmetic: rule 3 reports the call site, and the now-tainted
// parameter means the helper's own NewSource is no longer proven.
func sink(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want: raw rand.NewSource (tainted by useSinkArith)
}

func useSinkArith(base int64, i int) *rand.Rand {
	return sink(base*31 + int64(i)) // want: arithmetic-derived value seeds rand.NewSource inside sink
}

// escaped is only ever called with safe values, but its name is taken
// as a function value: the visible call-site set is incomplete, so the
// parameter stays tainted.
func escaped(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want: raw rand.NewSource
}

var escapedRef = escaped

func useEscaped(root int64) *rand.Rand {
	return escaped(engine.DeriveSeed(root, "x"))
}

// localDerive routes the derived seed through a local variable; plain
// single assignments preserve safety.
func localDerive(base int64) rand.Source {
	s := engine.DeriveSeed(base, "local")
	return rand.NewSource(s)
}

// localMutated increments the local, which the flow analysis refuses
// to model: the source is reported even though the initializer was
// safe.
func localMutated(base int64) rand.Source {
	s := engine.DeriveSeed(base, "local")
	s++
	return rand.NewSource(s) // want: raw rand.NewSource
}
