// Package suppress is lint testdata for the directive machinery
// itself: well-formed suppressions in both placements, plus the
// malformed and stale forms that must be reported under "ignore".
package suppress

import "math/rand"

// Standalone directive on the line above the finding: suppressed.
func above(seed int64) rand.Source {
	//lint:ignore seedderive testdata: root seed forwarded verbatim
	return rand.NewSource(seed)
}

// Trailing directive on the finding's own line: suppressed.
func trailing(seed int64) rand.Source {
	return rand.NewSource(seed) //lint:ignore seedderive testdata: root seed forwarded verbatim
}

// A directive with no reason must be reported, and it suppresses
// nothing: the finding below it survives.
func noReason(seed int64) rand.Source {
	//lint:ignore seedderive
	return rand.NewSource(seed)
}

// A directive naming an unknown check must be reported.
func unknownCheck(seed int64) rand.Source {
	//lint:ignore notacheck testdata: this check does not exist
	return rand.NewSource(seed)
}

// A directive that matches no finding is stale and must be reported.
func stale() int {
	//lint:ignore floateq testdata: nothing here compares floats
	return 42
}

// A directive for the wrong check does not suppress: both the finding
// and the stale directive are reported.
func wrongCheck(seed int64) rand.Source {
	//lint:ignore baregoroutine testdata: wrong check name for this line
	return rand.NewSource(seed)
}
