package mathx

import "math"

// logFactCacheSize bounds the precomputed log-factorial table. Sender
// counts in the broadcast analysis stay well below this.
const logFactCacheSize = 2048

var logFactTable = buildLogFactTable()

func buildLogFactTable() []float64 {
	t := make([]float64, logFactCacheSize)
	for i := 2; i < logFactCacheSize; i++ {
		t[i] = t[i-1] + math.Log(float64(i))
	}
	return t
}

// LogFactorial returns ln(n!). For n beyond the cached table it falls
// back to the log-gamma function. Negative n yields NaN.
func LogFactorial(n int) float64 {
	switch {
	case n < 0:
		return math.NaN()
	case n < logFactCacheSize:
		return logFactTable[n]
	default:
		lg, _ := math.Lgamma(float64(n) + 1)
		return lg
	}
}

// LogBinomial returns ln C(n, k). Out-of-range k yields -Inf (a zero
// binomial coefficient in log space).
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64. Large arguments lose integer
// precision but keep the correct magnitude, which is all the probability
// calculations require.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LogBinomial(n, k))
}

// LogFallingFactorial returns ln(n · (n-1) ··· (n-k+1)) = ln(n!/(n-k)!).
// It is -Inf when k > n and 0 when k == 0.
func LogFallingFactorial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(n-k)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logp := LogBinomial(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logp)
}

// PoissonPMF returns P(X = k) for X ~ Poisson(lambda). A non-positive
// lambda concentrates all mass at k = 0.
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if lambda <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(lambda) - lambda - LogFactorial(k))
}
