package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmallValues(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !almostEqual(got, w, 1e-9*w) {
			t.Errorf("exp(LogFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
}

func TestLogFactorialNegative(t *testing.T) {
	if !math.IsNaN(LogFactorial(-1)) {
		t.Fatal("LogFactorial(-1) should be NaN")
	}
}

func TestLogFactorialBeyondCache(t *testing.T) {
	// Recurrence ln((n+1)!) = ln(n!) + ln(n+1) must hold across the
	// cache boundary.
	n := logFactCacheSize - 1
	lhs := LogFactorial(n + 1)
	rhs := LogFactorial(n) + math.Log(float64(n+1))
	if !almostEqual(lhs, rhs, 1e-6) {
		t.Fatalf("cache boundary mismatch: %v vs %v", lhs, rhs)
	}
}

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		got := Binomial(c.n, c.k)
		if !almostEqual(got, c.want, 1e-6*math.Max(1, c.want)) {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n%60) + 1
		kk := int(k) % (nn + 1)
		a := LogBinomial(nn, kk)
		b := LogBinomial(nn, nn-kk)
		return almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascalProperty(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		nn := int(n%40) + 2
		kk := int(k)%(nn-1) + 1
		sum := Binomial(nn-1, kk-1) + Binomial(nn-1, kk)
		return almostEqual(Binomial(nn, kk), sum, 1e-6*sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogFallingFactorial(t *testing.T) {
	// 7*6*5 = 210.
	got := math.Exp(LogFallingFactorial(7, 3))
	if !almostEqual(got, 210, 1e-9*210) {
		t.Fatalf("falling factorial 7^(3) = %v, want 210", got)
	}
	if LogFallingFactorial(3, 5) != math.Inf(-1) {
		t.Fatal("k > n should give -Inf")
	}
	if LogFallingFactorial(5, 0) != 0 {
		t.Fatal("k = 0 should give 0")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		sum := 0.0
		for k := 0; k <= 30; k++ {
			sum += BinomialPMF(30, p, k)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("BinomialPMF(30, %v, ·) sums to %v", p, sum)
		}
	}
}

func TestBinomialPMFMeanProperty(t *testing.T) {
	f := func(pRaw uint16, nRaw uint8) bool {
		p := float64(pRaw%1000) / 1000
		n := int(nRaw%50) + 1
		mean := 0.0
		for k := 0; k <= n; k++ {
			mean += float64(k) * BinomialPMF(n, p, k)
		}
		return almostEqual(mean, float64(n)*p, 1e-6*float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMFOutOfRange(t *testing.T) {
	if BinomialPMF(5, 0.5, -1) != 0 || BinomialPMF(5, 0.5, 6) != 0 {
		t.Fatal("out-of-range k should have zero mass")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lam := range []float64{0.1, 1, 4, 20} {
		sum := 0.0
		for k := 0; k < 400; k++ {
			sum += PoissonPMF(lam, k)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("PoissonPMF(%v, ·) sums to %v", lam, sum)
		}
	}
}

func TestPoissonPMFZeroLambda(t *testing.T) {
	if PoissonPMF(0, 0) != 1 {
		t.Fatal("lambda=0 should put all mass at k=0")
	}
	if PoissonPMF(0, 1) != 0 {
		t.Fatal("lambda=0, k=1 should be 0")
	}
	if PoissonPMF(2, -1) != 0 {
		t.Fatal("negative k should be 0")
	}
}

func BenchmarkLogBinomial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LogBinomial(500, i%500)
	}
}
