// Package mathx provides the small numerical toolbox the analytical
// framework needs: one-dimensional quadrature, log-domain combinatorics,
// linear interpolation, grid sweeps, and crossing-point searches.
//
// The repository is restricted to the standard library, so the handful of
// routines that a scientific-computing dependency would normally supply
// are implemented here. All functions are deterministic and allocation
// conscious so they can sit inside the hot loops of parameter sweeps.
package mathx
