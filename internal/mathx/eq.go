package mathx

import "math"

// Epsilon is the default tolerance for AlmostEqual: generous enough to
// absorb the rounding drift of the surface sums (thousands of
// accumulated float64 additions), tight enough that genuinely distinct
// reachabilities and costs never alias.
const Epsilon = 1e-9

// AlmostEqual reports whether a and b agree to within Epsilon,
// relatively for large magnitudes and absolutely near zero. NaN
// compares unequal to everything, matching ==; infinities are equal
// only to themselves. This is the comparison the floateq check
// suggests in place of exact == on floats.
func AlmostEqual(a, b float64) bool {
	if a == b {
		return true // fast path; also handles equal infinities
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= Epsilon {
		return true
	}
	return diff <= Epsilon*math.Max(math.Abs(a), math.Abs(b))
}
