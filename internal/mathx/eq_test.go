package mathx

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 1.5, 1.5, true},
		{"zero", 0, 0, true},
		{"near zero absolute", 0, 1e-12, true},
		{"tiny drift", 1.0, 1.0 + 1e-12, true},
		{"relative drift large magnitude", 1e12, 1e12 * (1 + 1e-10), true},
		{"genuinely different", 0.1, 0.2, false},
		{"different large", 1e12, 1.001e12, false},
		{"nan left", math.NaN(), 1, false},
		{"nan both", math.NaN(), math.NaN(), false},
		{"inf equal", math.Inf(1), math.Inf(1), true},
		{"inf opposite", math.Inf(1), math.Inf(-1), false},
		{"inf vs finite", math.Inf(1), 1e300, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("%s: AlmostEqual(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestAlmostEqualSymmetric(t *testing.T) {
	pairs := [][2]float64{{1, 1 + 1e-12}, {1e12, 1e12 + 1}, {0.1, 0.2}, {0, -1e-12}}
	for _, p := range pairs {
		if AlmostEqual(p[0], p[1]) != AlmostEqual(p[1], p[0]) {
			t.Errorf("AlmostEqual not symmetric for %v", p)
		}
	}
}
