package mathx

import "math"

// Range returns the arithmetic sequence start, start+step, ... not
// exceeding stop (inclusive up to floating-point slack). It mirrors the
// parameter grids of the paper, e.g. Range(0.01, 1, 0.01) for the
// analytic probability sweep.
func Range(start, stop, step float64) []float64 {
	if step <= 0 || stop < start {
		return nil
	}
	n := int(math.Floor((stop-start)/step + 1e-9))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, start+float64(i)*step)
	}
	return out
}

// ArgMax returns the index and value of the maximum of ys. NaN entries
// are skipped. The boolean result is false when every entry is NaN or the
// slice is empty.
func ArgMax(ys []float64) (int, float64, bool) {
	best, bestV, found := -1, math.Inf(-1), false
	for i, v := range ys {
		if math.IsNaN(v) {
			continue
		}
		if !found || v > bestV {
			best, bestV, found = i, v, true
		}
	}
	return best, bestV, found
}

// ArgMin returns the index and value of the minimum of ys. NaN entries
// are skipped, which lets sweeps mark infeasible parameter points as NaN.
func ArgMin(ys []float64) (int, float64, bool) {
	best, bestV, found := -1, math.Inf(1), false
	for i, v := range ys {
		if math.IsNaN(v) {
			continue
		}
		if !found || v < bestV {
			best, bestV, found = i, v, true
		}
	}
	return best, bestV, found
}

// IsFinite reports whether v is neither NaN nor infinite.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// LinearFit returns the least-squares line y = slope·x + intercept
// through the points (xs[i], ys[i]). It needs at least two distinct x
// values; otherwise ok is false.
func LinearFit(xs, ys []float64) (slope, intercept float64, ok bool) {
	n := len(xs)
	if n < 2 || n != len(ys) {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	slope = (float64(n)*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / float64(n)
	return slope, intercept, true
}
