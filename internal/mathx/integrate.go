package mathx

import (
	"errors"
	"math"
)

// ErrBadInterval is returned when an integration interval is invalid
// (NaN endpoints or non-positive subdivision counts).
var ErrBadInterval = errors.New("mathx: invalid integration interval")

// Func is a scalar function of one real variable.
type Func func(x float64) float64

// SimpsonN integrates f over [a, b] with the composite Simpson rule using
// n subintervals (n is rounded up to the next even number, minimum 2).
// It is the workhorse for the ring-recursion integrals of Eq. (4), whose
// integrands are smooth on each ring, so a fixed-resolution rule with a
// few hundred points is both fast and accurate.
func SimpsonN(f Func, a, b float64, n int) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// Trapezoid integrates f over [a, b] with the composite trapezoid rule
// using n subintervals. It is used as an independent cross-check of
// SimpsonN in tests and for integrands with limited smoothness.
func Trapezoid(f Func, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// AdaptiveSimpson integrates f over [a, b] to the requested absolute
// tolerance using recursive Simpson subdivision with Richardson
// acceleration. maxDepth bounds the recursion; 20 is ample for the smooth
// integrands in this repository.
func AdaptiveSimpson(f Func, a, b, tol float64, maxDepth int) float64 {
	if a == b {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpsonAux(f, a, b, fa, fb, fm, whole, tol, maxDepth)
}

func adaptiveSimpsonAux(f Func, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}
