package mathx

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSimpsonNPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return 3*x*x*x - 2*x*x + x - 7 }
	got := SimpsonN(f, -1, 2, 2)
	want := func(x float64) float64 { return 0.75*x*x*x*x - 2.0/3.0*x*x*x + 0.5*x*x - 7*x }
	w := want(2) - want(-1)
	if !almostEqual(got, w, 1e-12) {
		t.Fatalf("SimpsonN cubic = %v, want %v", got, w)
	}
}

func TestSimpsonNSine(t *testing.T) {
	got := SimpsonN(math.Sin, 0, math.Pi, 200)
	if !almostEqual(got, 2, 1e-8) {
		t.Fatalf("integral of sin over [0,pi] = %v, want 2", got)
	}
}

func TestSimpsonNReversedInterval(t *testing.T) {
	got := SimpsonN(math.Sin, math.Pi, 0, 200)
	if !almostEqual(got, -2, 1e-8) {
		t.Fatalf("reversed interval = %v, want -2", got)
	}
}

func TestSimpsonNEmptyInterval(t *testing.T) {
	if got := SimpsonN(math.Exp, 1.5, 1.5, 100); got != 0 {
		t.Fatalf("empty interval = %v, want 0", got)
	}
}

func TestSimpsonNOddSubdivisionsRoundedUp(t *testing.T) {
	a := SimpsonN(math.Sin, 0, 1, 11)
	b := SimpsonN(math.Sin, 0, 1, 12)
	if a != b {
		t.Fatalf("odd n should round up: %v != %v", a, b)
	}
}

func TestSimpsonNNaNEndpoint(t *testing.T) {
	if got := SimpsonN(math.Sin, math.NaN(), 1, 10); !math.IsNaN(got) {
		t.Fatalf("NaN endpoint = %v, want NaN", got)
	}
}

func TestTrapezoidConvergesToSimpson(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x * x) }
	s := SimpsonN(f, 0, 2, 2000)
	tr := Trapezoid(f, 0, 2, 200000)
	if !almostEqual(s, tr, 1e-7) {
		t.Fatalf("Simpson %v vs trapezoid %v disagree", s, tr)
	}
}

func TestTrapezoidSmallN(t *testing.T) {
	got := Trapezoid(func(x float64) float64 { return x }, 0, 1, 0)
	if !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("trapezoid with n<1 = %v, want 0.5", got)
	}
}

func TestAdaptiveSimpsonAgainstKnownIntegrals(t *testing.T) {
	cases := []struct {
		name string
		f    Func
		a, b float64
		want float64
	}{
		{"sin", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"recip", func(x float64) float64 { return 1 / x }, 1, math.E, 1},
		{"sqrt", math.Sqrt, 0, 4, 16.0 / 3.0},
	}
	for _, c := range cases {
		got := AdaptiveSimpson(c.f, c.a, c.b, 1e-10, 30)
		if !almostEqual(got, c.want, 1e-7) {
			t.Errorf("%s: adaptive = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAdaptiveSimpsonDefaultTolerance(t *testing.T) {
	got := AdaptiveSimpson(math.Sin, 0, math.Pi, 0, 20)
	if !almostEqual(got, 2, 1e-6) {
		t.Fatalf("adaptive with tol<=0 = %v, want 2", got)
	}
}

func TestAdaptiveSimpsonEmptyInterval(t *testing.T) {
	if got := AdaptiveSimpson(math.Exp, 2, 2, 1e-9, 20); got != 0 {
		t.Fatalf("empty interval = %v, want 0", got)
	}
}

func BenchmarkSimpsonN200(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x) * math.Cos(3*x) }
	for i := 0; i < b.N; i++ {
		SimpsonN(f, 0, 3, 200)
	}
}

func BenchmarkAdaptiveSimpson(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x) * math.Cos(3*x) }
	for i := 0; i < b.N; i++ {
		AdaptiveSimpson(f, 0, 3, 1e-9, 25)
	}
}
