package mathx

import "math"

// Lerp linearly interpolates between a (t = 0) and b (t = 1). t outside
// [0, 1] extrapolates.
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InterpAt evaluates the piecewise-linear function through the points
// (xs[i], ys[i]) at x. xs must be strictly increasing. Outside the domain
// the nearest endpoint value is returned (no extrapolation): that is the
// right behaviour for timelines that are constant before the first and
// after the last recorded phase.
func InterpAt(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return math.NaN()
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return Lerp(ys[lo], ys[hi], t)
}

// FirstCrossing returns the smallest x at which the piecewise-linear
// function through (xs[i], ys[i]) reaches the level y, assuming ys is
// non-decreasing. The boolean result reports whether the level is reached
// at all. xs must be strictly increasing.
func FirstCrossing(xs, ys []float64, y float64) (float64, bool) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0, false
	}
	if ys[0] >= y {
		return xs[0], true
	}
	for i := 1; i < n; i++ {
		if ys[i] >= y {
			if ys[i] == ys[i-1] {
				return xs[i], true
			}
			t := (y - ys[i-1]) / (ys[i] - ys[i-1])
			return Lerp(xs[i-1], xs[i], t), true
		}
	}
	return 0, false
}
