package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestLerp(t *testing.T) {
	if Lerp(2, 4, 0.5) != 3 {
		t.Fatal("midpoint lerp failed")
	}
	if Lerp(2, 4, 0) != 2 || Lerp(2, 4, 1) != 4 {
		t.Fatal("endpoint lerp failed")
	}
	if Lerp(2, 4, 2) != 6 {
		t.Fatal("extrapolation failed")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp failed")
	}
}

func TestInterpAtExactKnots(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{10, 20, 40}
	for i := range xs {
		if got := InterpAt(xs, ys, xs[i]); got != ys[i] {
			t.Errorf("InterpAt at knot %d = %v, want %v", i, got, ys[i])
		}
	}
}

func TestInterpAtBetweenKnots(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{10, 20, 40}
	if got := InterpAt(xs, ys, 2); got != 30 {
		t.Fatalf("InterpAt(2) = %v, want 30", got)
	}
	if got := InterpAt(xs, ys, 0.25); got != 12.5 {
		t.Fatalf("InterpAt(0.25) = %v, want 12.5", got)
	}
}

func TestInterpAtOutsideDomainClamps(t *testing.T) {
	xs := []float64{1, 2}
	ys := []float64{5, 9}
	if got := InterpAt(xs, ys, 0); got != 5 {
		t.Fatalf("left of domain = %v, want 5", got)
	}
	if got := InterpAt(xs, ys, 10); got != 9 {
		t.Fatalf("right of domain = %v, want 9", got)
	}
}

func TestInterpAtDegenerateInputs(t *testing.T) {
	if !math.IsNaN(InterpAt(nil, nil, 1)) {
		t.Fatal("empty input should give NaN")
	}
	if !math.IsNaN(InterpAt([]float64{1, 2}, []float64{1}, 1)) {
		t.Fatal("mismatched input should give NaN")
	}
}

func TestInterpAtLargeGridBinarySearch(t *testing.T) {
	n := 1000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(2 * i)
	}
	for _, x := range []float64{0.5, 123.25, 998.75} {
		if got := InterpAt(xs, ys, x); !almostEqual(got, 2*x, 1e-9) {
			t.Errorf("InterpAt(%v) = %v, want %v", x, got, 2*x)
		}
	}
}

func TestFirstCrossingBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{0, 0.5, 0.5, 1}
	x, ok := FirstCrossing(xs, ys, 0.25)
	if !ok || !almostEqual(x, 1.5, 1e-12) {
		t.Fatalf("crossing 0.25 = %v,%v; want 1.5,true", x, ok)
	}
	x, ok = FirstCrossing(xs, ys, 0.5)
	if !ok || !almostEqual(x, 2, 1e-12) {
		t.Fatalf("crossing 0.5 = %v,%v; want 2,true", x, ok)
	}
	// Level reached on a flat segment: first x achieving it.
	x, ok = FirstCrossing(xs, ys, 0.75)
	if !ok || !almostEqual(x, 3.5, 1e-12) {
		t.Fatalf("crossing 0.75 = %v,%v; want 3.5,true", x, ok)
	}
}

func TestFirstCrossingUnreachable(t *testing.T) {
	if _, ok := FirstCrossing([]float64{0, 1}, []float64{0, 0.4}, 0.5); ok {
		t.Fatal("unreachable level should report false")
	}
}

func TestFirstCrossingAtFirstSample(t *testing.T) {
	x, ok := FirstCrossing([]float64{3, 4}, []float64{0.9, 1}, 0.5)
	if !ok || x != 3 {
		t.Fatalf("level below first sample should return first x, got %v,%v", x, ok)
	}
}

func TestFirstCrossingEmpty(t *testing.T) {
	if _, ok := FirstCrossing(nil, nil, 0.5); ok {
		t.Fatal("empty series should report false")
	}
}

// Property: for any non-decreasing series, InterpAt(FirstCrossing(y)) == y
// whenever the level is strictly inside the value range.
func TestFirstCrossingInterpInverseProperty(t *testing.T) {
	f := func(raw []uint8, levelRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		ys := make([]float64, len(raw))
		acc := 0.0
		for i, r := range raw {
			acc += float64(r)
			ys[i] = acc
		}
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		sort.Float64s(ys)
		level := ys[0] + (ys[len(ys)-1]-ys[0])*float64(levelRaw%100)/100
		x, ok := FirstCrossing(xs, ys, level)
		if !ok {
			return level > ys[len(ys)-1]
		}
		v := InterpAt(xs, ys, x)
		return v+1e-6 >= level
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeGrid(t *testing.T) {
	g := Range(0.01, 1, 0.01)
	if len(g) != 100 {
		t.Fatalf("analytic p-grid length = %d, want 100", len(g))
	}
	if !almostEqual(g[0], 0.01, 1e-12) || !almostEqual(g[99], 1.0, 1e-9) {
		t.Fatalf("grid endpoints wrong: %v .. %v", g[0], g[99])
	}
	g = Range(20, 140, 20)
	if len(g) != 7 || g[3] != 80 {
		t.Fatalf("density grid wrong: %v", g)
	}
}

func TestRangeDegenerate(t *testing.T) {
	if Range(1, 0, 0.1) != nil {
		t.Fatal("stop < start should give nil")
	}
	if Range(0, 1, 0) != nil {
		t.Fatal("zero step should give nil")
	}
	g := Range(5, 5, 1)
	if len(g) != 1 || g[0] != 5 {
		t.Fatalf("single-point grid wrong: %v", g)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	ys := []float64{1, math.NaN(), 5, 2}
	i, v, ok := ArgMax(ys)
	if !ok || i != 2 || v != 5 {
		t.Fatalf("ArgMax = %d,%v,%v", i, v, ok)
	}
	i, v, ok = ArgMin(ys)
	if !ok || i != 0 || v != 1 {
		t.Fatalf("ArgMin = %d,%v,%v", i, v, ok)
	}
}

func TestArgMaxAllNaN(t *testing.T) {
	if _, _, ok := ArgMax([]float64{math.NaN(), math.NaN()}); ok {
		t.Fatal("all-NaN should report not found")
	}
	if _, _, ok := ArgMin(nil); ok {
		t.Fatal("empty should report not found")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.5) || IsFinite(math.NaN()) || IsFinite(math.Inf(1)) {
		t.Fatal("IsFinite misclassifies")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	m, b, ok := LinearFit(xs, ys)
	if !ok || !almostEqual(m, 2, 1e-12) || !almostEqual(b, 1, 1e-12) {
		t.Fatalf("fit = %v, %v, %v", m, b, ok)
	}
}

func TestLinearFitNoisyData(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0.1, 0.9, 2.1, 2.9, 4.1} // ~ y = x
	m, b, ok := LinearFit(xs, ys)
	if !ok || math.Abs(m-1) > 0.1 || math.Abs(b) > 0.2 {
		t.Fatalf("noisy fit = %v, %v", m, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, ok := LinearFit([]float64{1}, []float64{1}); ok {
		t.Fatal("single point should fail")
	}
	if _, _, ok := LinearFit([]float64{2, 2}, []float64{1, 5}); ok {
		t.Fatal("vertical data should fail")
	}
	if _, _, ok := LinearFit([]float64{1, 2}, []float64{1}); ok {
		t.Fatal("mismatched lengths should fail")
	}
}
