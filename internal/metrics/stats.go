package metrics

import (
	"math"
	"sort"

	"sensornet/internal/mathx"
)

// Summary aggregates a sample of scalar observations (one per simulation
// run) into the statistics the experiment tables report.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	// CI95 is the half-width of the normal-approximation 95%
	// confidence interval of the mean.
	CI95 float64
}

// finite reports whether x is an admissible observation: NaN marks an
// infeasible run and ±Inf an unbounded one, and every aggregator here
// must treat the two the same way — FeasibleFraction already counted
// Inf as infeasible, so admitting it into moments or percentiles would
// let one unbounded observation poison Mean/StdDev/CI95 while the
// feasibility column claims it was excluded.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Summarize computes a Summary over xs, skipping non-finite entries
// (runs where a constrained metric was infeasible or unbounded). A
// summary over zero finite observations has Count 0 and NaN moments.
func Summarize(xs []float64) Summary {
	s := Summary{Mean: math.NaN(), StdDev: math.NaN(),
		Min: math.NaN(), Max: math.NaN(), CI95: math.NaN()}
	sum := 0.0
	for _, x := range xs {
		if !finite(x) {
			continue
		}
		if s.Count == 0 {
			s.Min, s.Max = x, x
		} else {
			s.Min = math.Min(s.Min, x)
			s.Max = math.Max(s.Max, x)
		}
		sum += x
		s.Count++
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = sum / float64(s.Count)
	if s.Count == 1 {
		s.StdDev = 0
		s.CI95 = 0
		return s
	}
	var ss float64
	for _, x := range xs {
		if !finite(x) {
			continue
		}
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.Count-1))
	s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(s.Count))
	return s
}

// Median returns the median of the finite entries of xs (NaN when none).
func Median(xs []float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if finite(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	n := len(clean)
	if n%2 == 1 {
		return clean[n/2]
	}
	return (clean[n/2-1] + clean[n/2]) / 2
}

// Percentile returns the q-th percentile (0 <= q <= 100) of the
// finite entries of xs, linearly interpolating between order
// statistics (NaN when there are none). q outside [0, 100] clamps.
// This backs the serving latency tier: p50/p90/p99 over request
// durations.
func Percentile(xs []float64, q float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if finite(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	if q <= 0 {
		return clean[0]
	}
	if q >= 100 {
		return clean[len(clean)-1]
	}
	rank := q / 100 * float64(len(clean)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(clean) {
		return clean[lo]
	}
	return clean[lo] + frac*(clean[lo+1]-clean[lo])
}

// FeasibleFraction returns the fraction of entries that are finite: the
// share of runs for which a constrained metric was achievable.
func FeasibleFraction(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if finite(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// MeanTimeline averages a set of run timelines pointwise onto a common
// integer phase grid spanning the longest run. Reachability and
// broadcast counts of runs that terminated early are extended with their
// final values, matching how repeated-run averages are reported in the
// paper's simulation section.
func MeanTimeline(runs []Timeline) Timeline {
	if len(runs) == 0 {
		return Timeline{}
	}
	maxPhase := 0.0
	for _, r := range runs {
		if d := r.Duration(); d > maxPhase {
			maxPhase = d
		}
	}
	n := int(math.Ceil(maxPhase)) + 1
	out := Timeline{
		N:             0,
		Phases:        make([]float64, n),
		CumReach:      make([]float64, n),
		CumBroadcasts: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		out.Phases[i] = float64(i)
	}
	for _, r := range runs {
		out.N += r.N
		for i := 0; i < n; i++ {
			out.CumReach[i] += r.ReachabilityAtPhase(out.Phases[i])
			out.CumBroadcasts[i] += mathx.InterpAt(r.Phases, r.CumBroadcasts, out.Phases[i])
		}
	}
	k := float64(len(runs))
	out.N /= k
	for i := 0; i < n; i++ {
		out.CumReach[i] /= k
		out.CumBroadcasts[i] /= k
	}
	return out
}
