package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.Count != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almostEqual(s.StdDev, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", s.StdDev)
	}
	if !almostEqual(s.CI95, 1.96*2/math.Sqrt(3), 1e-12) {
		t.Fatalf("ci95 = %v", s.CI95)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.Count != 2 || s.Mean != 2 {
		t.Fatalf("NaN-skipping summary wrong: %+v", s)
	}
}

func TestSummarizeEmptyAndAllNaN(t *testing.T) {
	for _, xs := range [][]float64{nil, {math.NaN(), math.NaN()}} {
		s := Summarize(xs)
		if s.Count != 0 || !math.IsNaN(s.Mean) {
			t.Fatalf("empty summary wrong: %+v", s)
		}
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.Count != 1 || s.Mean != 5 || s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeMeanWithinRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if Median([]float64{1, math.NaN(), 3}) != 2 {
		t.Fatal("median should skip NaN")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	for _, tc := range []struct{ q, want float64 }{
		{0, 10}, {50, 30}, {100, 50},
		{25, 20}, {90, 46}, {-5, 10}, {110, 50},
	} {
		if got := Percentile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Percentile([]float64{math.NaN(), 7}, 99); got != 7 {
		t.Fatalf("percentile should skip NaN, got %v", got)
	}
	if got := Percentile([]float64{5}, 50); got != 5 {
		t.Fatalf("single-sample percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

// TestNonFiniteSkippedConsistently pins the cross-function contract:
// NaN (infeasible) and ±Inf (unbounded) are excluded by every
// aggregator, so the moments, order statistics, and FeasibleFraction
// all describe the same finite subsample. Before the fix, ±Inf slipped
// into Summarize/Median/Percentile while FeasibleFraction excluded it:
// one infinite observation made Mean/StdDev/CI95 infinite (or NaN, via
// Inf−Inf) and dragged every upper percentile to +Inf.
func TestNonFiniteSkippedConsistently(t *testing.T) {
	xs := []float64{1, math.Inf(1), 3, math.NaN(), 5, math.Inf(-1)}

	s := Summarize(xs)
	if s.Count != 3 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary admitted non-finite entries: %+v", s)
	}
	if !almostEqual(s.StdDev, 2, 1e-12) || math.IsInf(s.CI95, 0) || math.IsNaN(s.CI95) {
		t.Fatalf("moments poisoned by non-finite entries: %+v", s)
	}

	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %v, want 3 (finite subsample only)", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("Percentile(100) = %v, want 5, not +Inf", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("Percentile(0) = %v, want 1, not -Inf", got)
	}

	if got := FeasibleFraction(xs); got != 0.5 {
		t.Fatalf("FeasibleFraction = %v, want 0.5", got)
	}

	// All-non-finite input degrades exactly like all-NaN input.
	inf := []float64{math.Inf(1), math.Inf(-1)}
	if s := Summarize(inf); s.Count != 0 || !math.IsNaN(s.Mean) {
		t.Fatalf("all-Inf summary should be empty: %+v", s)
	}
	if !math.IsNaN(Median(inf)) || !math.IsNaN(Percentile(inf, 50)) {
		t.Fatal("all-Inf median/percentile should be NaN")
	}
	if got := FeasibleFraction(inf); got != 0 {
		t.Fatalf("all-Inf feasible fraction = %v, want 0", got)
	}
}

func TestFeasibleFraction(t *testing.T) {
	if got := FeasibleFraction([]float64{1, math.NaN(), 2, math.Inf(1)}); got != 0.5 {
		t.Fatalf("feasible fraction = %v, want 0.5", got)
	}
	if !math.IsNaN(FeasibleFraction(nil)) {
		t.Fatal("empty input should be NaN")
	}
}

func TestMeanTimelineSingleRunIdentityOnGrid(t *testing.T) {
	tl := sample()
	m := MeanTimeline([]Timeline{tl})
	if m.N != tl.N {
		t.Fatalf("N = %v, want %v", m.N, tl.N)
	}
	for i, ph := range m.Phases {
		if got, want := m.CumReach[i], tl.ReachabilityAtPhase(ph); !almostEqual(got, want, 1e-12) {
			t.Errorf("reach at phase %v = %v, want %v", ph, got, want)
		}
	}
}

func TestMeanTimelineTwoRuns(t *testing.T) {
	a := Timeline{N: 10, Phases: []float64{0, 1}, CumReach: []float64{0.1, 0.5},
		CumBroadcasts: []float64{0, 2}}
	b := Timeline{N: 10, Phases: []float64{0, 1, 2}, CumReach: []float64{0.1, 0.3, 0.9},
		CumBroadcasts: []float64{0, 4, 8}}
	m := MeanTimeline([]Timeline{a, b})
	if len(m.Phases) != 3 {
		t.Fatalf("mean grid length = %d, want 3", len(m.Phases))
	}
	if !almostEqual(m.CumReach[1], 0.4, 1e-12) {
		t.Fatalf("mean reach@1 = %v, want 0.4", m.CumReach[1])
	}
	// Run a is extended with its final value at phase 2.
	if !almostEqual(m.CumReach[2], (0.5+0.9)/2, 1e-12) {
		t.Fatalf("mean reach@2 = %v, want 0.7", m.CumReach[2])
	}
	if !almostEqual(m.CumBroadcasts[2], (2.0+8.0)/2, 1e-12) {
		t.Fatalf("mean broadcasts@2 = %v, want 5", m.CumBroadcasts[2])
	}
}

func TestMeanTimelineEmpty(t *testing.T) {
	m := MeanTimeline(nil)
	if len(m.Phases) != 0 {
		t.Fatal("empty input should give empty timeline")
	}
}

func TestMeanTimelineValid(t *testing.T) {
	m := MeanTimeline([]Timeline{sample(), sample()})
	if !m.Valid() {
		t.Fatal("mean of valid timelines should be valid")
	}
}
