// Package metrics extracts the paper's four performance metrics from
// broadcast execution timelines and aggregates them across runs.
//
// Both the analytical framework and the simulator reduce an execution to
// the same Timeline shape: cumulative reachability and cumulative
// broadcast count sampled at phase boundaries. All four metrics of
// §4.1 — reachability under a latency constraint, latency under a
// reachability constraint, energy under a reachability constraint, and
// reachability under an energy constraint — are then pure reads of that
// timeline, using the paper's convention that arrivals are evenly
// distributed inside a phase (fractional-phase interpolation).
package metrics

import (
	"math"

	"sensornet/internal/mathx"
)

// Timeline records one broadcast execution (analytic expectation or a
// simulated run) sampled at phase boundaries. Index i corresponds to the
// end of phase Phases[i]; Phases[0] is the 0 anchor before the source
// broadcasts.
type Timeline struct {
	// N is the total number of nodes in the network (source included).
	N float64
	// Phases holds the sample times in units of time phases, starting
	// at 0 and strictly increasing (0, 1, 2, ...).
	Phases []float64
	// CumReach holds the cumulative reachability (fraction of N that
	// holds the packet) at each sample time. Non-decreasing.
	CumReach []float64
	// CumBroadcasts holds the cumulative number of transmissions
	// performed by each sample time. Non-decreasing.
	CumBroadcasts []float64
}

// Valid reports whether the timeline is structurally consistent:
// non-empty, equal lengths, strictly increasing phases and
// non-decreasing series.
func (t Timeline) Valid() bool {
	n := len(t.Phases)
	if n == 0 || len(t.CumReach) != n || len(t.CumBroadcasts) != n || t.N <= 0 {
		return false
	}
	for i := 1; i < n; i++ {
		if t.Phases[i] <= t.Phases[i-1] {
			return false
		}
		if t.CumReach[i] < t.CumReach[i-1]-1e-12 {
			return false
		}
		if t.CumBroadcasts[i] < t.CumBroadcasts[i-1]-1e-9 {
			return false
		}
	}
	return true
}

// ReachabilityAtPhase returns the reachability achieved by time phase L
// (metric 1 of §4.1: reachability under a latency constraint).
func (t Timeline) ReachabilityAtPhase(l float64) float64 {
	return mathx.InterpAt(t.Phases, t.CumReach, l)
}

// LatencyToReach returns the (fractional) number of phases needed to
// reach reachability r (metric 3: latency under a reachability
// constraint). ok is false when the execution never reaches r.
func (t Timeline) LatencyToReach(r float64) (latency float64, ok bool) {
	return mathx.FirstCrossing(t.Phases, t.CumReach, r)
}

// BroadcastsToReach returns the cumulative number of broadcasts spent by
// the moment reachability r is first achieved (metric 4: energy under a
// reachability constraint). ok is false when r is never achieved.
func (t Timeline) BroadcastsToReach(r float64) (broadcasts float64, ok bool) {
	phase, ok := t.LatencyToReach(r)
	if !ok {
		return 0, false
	}
	return mathx.InterpAt(t.Phases, t.CumBroadcasts, phase), true
}

// ReachabilityAtBudget returns the reachability achieved by the moment
// the cumulative broadcast count crosses budget b (metric 5:
// reachability under an energy constraint). When the whole execution
// spends fewer than b broadcasts, the final reachability is returned.
func (t Timeline) ReachabilityAtBudget(b float64) float64 {
	phase, ok := mathx.FirstCrossing(t.Phases, t.CumBroadcasts, b)
	if !ok {
		return t.FinalReachability()
	}
	return mathx.InterpAt(t.Phases, t.CumReach, phase)
}

// FinalReachability returns the reachability when the execution
// terminates.
func (t Timeline) FinalReachability() float64 {
	if len(t.CumReach) == 0 {
		return math.NaN()
	}
	return t.CumReach[len(t.CumReach)-1]
}

// TotalBroadcasts returns the total number of transmissions performed
// over the whole execution.
func (t Timeline) TotalBroadcasts() float64 {
	if len(t.CumBroadcasts) == 0 {
		return math.NaN()
	}
	return t.CumBroadcasts[len(t.CumBroadcasts)-1]
}

// Duration returns the last sampled phase time.
func (t Timeline) Duration() float64 {
	if len(t.Phases) == 0 {
		return math.NaN()
	}
	return t.Phases[len(t.Phases)-1]
}
