package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// sample builds the timeline of a small execution: 100 nodes, source
// broadcast in phase 1 reaching 10%, then growth to 70% by phase 4.
func sample() Timeline {
	return Timeline{
		N:             100,
		Phases:        []float64{0, 1, 2, 3, 4},
		CumReach:      []float64{0.01, 0.10, 0.40, 0.60, 0.70},
		CumBroadcasts: []float64{0, 1, 6, 20, 32},
	}
}

func TestTimelineValid(t *testing.T) {
	if !sample().Valid() {
		t.Fatal("sample timeline should be valid")
	}
}

func TestTimelineInvalidShapes(t *testing.T) {
	tl := sample()
	tl.CumReach = tl.CumReach[:3]
	if tl.Valid() {
		t.Fatal("length mismatch should be invalid")
	}
	tl = sample()
	tl.Phases[2] = tl.Phases[1]
	if tl.Valid() {
		t.Fatal("non-increasing phases should be invalid")
	}
	tl = sample()
	tl.CumReach[3] = 0.2
	if tl.Valid() {
		t.Fatal("decreasing reachability should be invalid")
	}
	tl = sample()
	tl.N = 0
	if tl.Valid() {
		t.Fatal("zero N should be invalid")
	}
	if (Timeline{}).Valid() {
		t.Fatal("empty timeline should be invalid")
	}
}

func TestReachabilityAtPhase(t *testing.T) {
	tl := sample()
	if got := tl.ReachabilityAtPhase(2); got != 0.40 {
		t.Fatalf("reach@2 = %v, want 0.40", got)
	}
	if got := tl.ReachabilityAtPhase(2.5); !almostEqual(got, 0.50, 1e-12) {
		t.Fatalf("reach@2.5 = %v, want 0.50", got)
	}
	// Beyond the run: final value.
	if got := tl.ReachabilityAtPhase(9); got != 0.70 {
		t.Fatalf("reach@9 = %v, want 0.70", got)
	}
}

func TestLatencyToReach(t *testing.T) {
	tl := sample()
	l, ok := tl.LatencyToReach(0.40)
	if !ok || !almostEqual(l, 2, 1e-12) {
		t.Fatalf("latency to 0.40 = %v,%v; want 2,true", l, ok)
	}
	l, ok = tl.LatencyToReach(0.25)
	if !ok || !almostEqual(l, 1.5, 1e-12) {
		t.Fatalf("latency to 0.25 = %v,%v; want 1.5,true", l, ok)
	}
	if _, ok = tl.LatencyToReach(0.9); ok {
		t.Fatal("unreachable target should report false")
	}
}

func TestBroadcastsToReach(t *testing.T) {
	tl := sample()
	// Reach 0.25 at phase 1.5; broadcasts interpolate 1..6 -> 3.5.
	b, ok := tl.BroadcastsToReach(0.25)
	if !ok || !almostEqual(b, 3.5, 1e-12) {
		t.Fatalf("broadcasts to 0.25 = %v,%v; want 3.5,true", b, ok)
	}
	if _, ok = tl.BroadcastsToReach(0.95); ok {
		t.Fatal("unreachable target should report false")
	}
}

func TestReachabilityAtBudget(t *testing.T) {
	tl := sample()
	// Budget 6 is crossed exactly at phase 2 -> reach 0.40.
	if got := tl.ReachabilityAtBudget(6); !almostEqual(got, 0.40, 1e-12) {
		t.Fatalf("reach@budget6 = %v, want 0.40", got)
	}
	// Budget 13 is crossed at phase 2.5 -> reach 0.50.
	if got := tl.ReachabilityAtBudget(13); !almostEqual(got, 0.50, 1e-12) {
		t.Fatalf("reach@budget13 = %v, want 0.50", got)
	}
	// Budget beyond total spend -> final reachability.
	if got := tl.ReachabilityAtBudget(1000); got != 0.70 {
		t.Fatalf("reach@budget1000 = %v, want 0.70", got)
	}
}

func TestFinalValues(t *testing.T) {
	tl := sample()
	if tl.FinalReachability() != 0.70 {
		t.Fatal("final reachability wrong")
	}
	if tl.TotalBroadcasts() != 32 {
		t.Fatal("total broadcasts wrong")
	}
	if tl.Duration() != 4 {
		t.Fatal("duration wrong")
	}
	empty := Timeline{}
	if !math.IsNaN(empty.FinalReachability()) || !math.IsNaN(empty.TotalBroadcasts()) ||
		!math.IsNaN(empty.Duration()) {
		t.Fatal("empty timeline should yield NaN terminal values")
	}
}

// Property: the dual metrics are consistent — if latency to reach R is L,
// then reachability at phase L is at least R.
func TestDualityProperty(t *testing.T) {
	f := func(incRaw []uint8, targetRaw uint8) bool {
		if len(incRaw) < 2 {
			return true
		}
		if len(incRaw) > 12 {
			incRaw = incRaw[:12]
		}
		tl := Timeline{N: 100}
		reach, bc := 0.01, 0.0
		tl.Phases = append(tl.Phases, 0)
		tl.CumReach = append(tl.CumReach, reach)
		tl.CumBroadcasts = append(tl.CumBroadcasts, 0)
		for i, inc := range incRaw {
			reach = math.Min(1, reach+float64(inc)/1000)
			bc += float64(inc) / 10
			tl.Phases = append(tl.Phases, float64(i+1))
			tl.CumReach = append(tl.CumReach, reach)
			tl.CumBroadcasts = append(tl.CumBroadcasts, bc)
		}
		target := 0.01 + float64(targetRaw)/256*(reach-0.01)
		l, ok := tl.LatencyToReach(target)
		if !ok {
			return target > reach
		}
		return tl.ReachabilityAtPhase(l)+1e-9 >= target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: reachability at budget is monotone in the budget.
func TestBudgetMonotoneProperty(t *testing.T) {
	tl := sample()
	prev := -1.0
	for b := 0.0; b <= 40; b += 0.5 {
		got := tl.ReachabilityAtBudget(b)
		if got < prev-1e-12 {
			t.Fatalf("reach@budget not monotone at %v: %v < %v", b, got, prev)
		}
		prev = got
	}
}
