// Package optimize sweeps the broadcast probability p and locates the
// optima the paper reports: for each density it finds the p that
// maximises reachability under a latency constraint (Fig. 4), minimises
// latency under a reachability constraint (Fig. 5), minimises the
// broadcast count under a reachability constraint (Fig. 6), and
// maximises reachability under a broadcast budget (Fig. 7) — and the
// simulated counterparts (Figs. 8–11).
//
// One model evaluation per grid point yields a full timeline, from which
// all four metrics are read, so a sweep costs a single pass regardless
// of how many objectives are inspected.
package optimize

import (
	"context"
	"fmt"
	"math"

	"sensornet/internal/analytic"
	"sensornet/internal/deploy"
	"sensornet/internal/mathx"
	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// Constraints fixes the three constraint levels of §4.1's metrics.
type Constraints struct {
	// Latency is the phase budget for metric 1 (paper: 5 phases).
	Latency float64
	// Reach is the reachability target for metrics 3 and 4 (paper:
	// 0.72 analytic, 0.63 simulated).
	Reach float64
	// Budget is the broadcast budget for metric 5 (paper: 35 analytic,
	// 80 simulated).
	Budget float64
}

// Point holds the four metric values at one probability grid point.
// Infeasible constrained metrics are NaN.
type Point struct {
	P             float64
	ReachAtL      float64 // metric 1: reachability within Latency phases
	Latency       float64 // metric 3: phases to reach Reach
	Broadcasts    float64 // metric 4: broadcasts to reach Reach
	ReachAtBudget float64 // metric 5: reachability within Budget broadcasts
	SuccessRate   float64 // measured/modelled broadcast success rate
	Final         float64 // terminal reachability
}

func pointFromTimeline(p float64, tl metrics.Timeline, c Constraints) Point {
	pt := Point{P: p}
	pt.ReachAtL = tl.ReachabilityAtPhase(c.Latency)
	if l, ok := tl.LatencyToReach(c.Reach); ok {
		pt.Latency = l
	} else {
		pt.Latency = math.NaN()
	}
	if b, ok := tl.BroadcastsToReach(c.Reach); ok {
		pt.Broadcasts = b
	} else {
		pt.Broadcasts = math.NaN()
	}
	pt.ReachAtBudget = tl.ReachabilityAtBudget(c.Budget)
	pt.Final = tl.FinalReachability()
	return pt
}

// SweepAnalytic evaluates the analytical model over the probability
// grid. base.Prob is overridden per grid point.
func SweepAnalytic(base analytic.Config, grid []float64, c Constraints) ([]Point, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("optimize: empty probability grid")
	}
	out := make([]Point, 0, len(grid))
	for _, p := range grid {
		cfg := base
		cfg.Prob = p
		res, err := analytic.Run(cfg)
		if err != nil {
			return nil, err
		}
		pt := pointFromTimeline(p, res.Timeline, c)
		pt.SuccessRate = res.SuccessRate
		out = append(out, pt)
	}
	return out, nil
}

// SweepSim evaluates the simulator over the probability grid, averaging
// `runs` random runs per point (metrics are averaged per-run, matching
// the paper's 30-run averages; infeasible runs are skipped NaN-style).
// base.Protocol is overridden with PB_CAM at each grid probability.
//
// Deployments are common random numbers across the grid: unless
// base.Deployment pins one explicitly, the sweep samples each
// replication's deployment once (sim.ReplicationDeployments) and reuses
// it at every probability, so grid points differ only in protocol coin
// flips — the variance-reduction pairing the optimizer's argmax wants —
// and the sweep pays the neighbour-index build once per replication
// instead of once per (replication, probability) pair.
func SweepSim(base sim.Config, grid []float64, c Constraints, runs, workers int) ([]Point, error) {
	return SweepSimCtx(context.Background(), base, grid, c, runs, workers)
}

// SweepSimCtx is SweepSim with cooperative cancellation, checked
// between grid points and between replications.
func SweepSimCtx(ctx context.Context, base sim.Config, grid []float64, c Constraints, runs, workers int) ([]Point, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("optimize: empty probability grid")
	}
	var deps []*deploy.Deployment
	if base.Deployment == nil {
		var err error
		deps, err = sim.ReplicationDeployments(base, runs)
		if err != nil {
			return nil, err
		}
	}
	out := make([]Point, 0, len(grid))
	for _, p := range grid {
		cfg := base
		cfg.Protocol = protocol.Probability{P: p}
		var agg *sim.Aggregate
		var err error
		if deps != nil {
			agg, err = sim.RunManyDeploymentsCtx(ctx, cfg, deps, workers)
		} else {
			agg, err = sim.RunManyCtx(ctx, cfg, runs, workers)
		}
		if err != nil {
			return nil, err
		}
		pt := Point{P: p}
		pt.ReachAtL = metrics.Summarize(agg.ReachabilityAtPhase(c.Latency)).Mean
		pt.Latency = meanOrNaN(agg.LatencyToReach(c.Reach))
		pt.Broadcasts = meanOrNaN(agg.BroadcastsToReach(c.Reach))
		pt.ReachAtBudget = metrics.Summarize(agg.ReachabilityAtBudget(c.Budget)).Mean
		pt.SuccessRate = metrics.Summarize(agg.SuccessRates()).Mean
		finals := make([]float64, len(agg.Runs))
		for i, r := range agg.Runs {
			finals[i] = r.Timeline.FinalReachability()
		}
		pt.Final = metrics.Summarize(finals).Mean
		out = append(out, pt)
	}
	return out, nil
}

// meanOrNaN averages the feasible samples but reports NaN when fewer
// than half the runs were feasible: an operating point that mostly
// fails its constraint is not a usable optimum.
func meanOrNaN(xs []float64) float64 {
	s := metrics.Summarize(xs)
	if s.Count*2 < len(xs) || s.Count == 0 {
		return math.NaN()
	}
	return s.Mean
}

// Optimum is a located optimal probability and its objective value.
type Optimum struct {
	P     float64
	Value float64
}

// MaxReachAtLatency returns the grid point maximising metric 1.
func MaxReachAtLatency(pts []Point) (Optimum, bool) {
	return pick(pts, func(p Point) float64 { return p.ReachAtL }, true)
}

// MinLatency returns the grid point minimising metric 3.
func MinLatency(pts []Point) (Optimum, bool) {
	return pick(pts, func(p Point) float64 { return p.Latency }, false)
}

// MinBroadcasts returns the grid point minimising metric 4.
func MinBroadcasts(pts []Point) (Optimum, bool) {
	return pick(pts, func(p Point) float64 { return p.Broadcasts }, false)
}

// MaxReachAtBudget returns the grid point maximising metric 5.
func MaxReachAtBudget(pts []Point) (Optimum, bool) {
	return pick(pts, func(p Point) float64 { return p.ReachAtBudget }, true)
}

func pick(pts []Point, val func(Point) float64, maximise bool) (Optimum, bool) {
	ys := make([]float64, len(pts))
	for i, p := range pts {
		ys[i] = val(p)
	}
	var idx int
	var v float64
	var ok bool
	if maximise {
		idx, v, ok = mathx.ArgMax(ys)
	} else {
		idx, v, ok = mathx.ArgMin(ys)
	}
	if !ok {
		return Optimum{}, false
	}
	return Optimum{P: pts[idx].P, Value: v}, true
}
