package optimize

import (
	"math"
	"testing"

	"sensornet/internal/analytic"
	"sensornet/internal/channel"
	"sensornet/internal/mathx"
	"sensornet/internal/sim"
)

func paperConstraints() Constraints {
	return Constraints{Latency: 5, Reach: 0.72, Budget: 35}
}

func analyticBase(rho float64) analytic.Config {
	return analytic.Config{P: 5, S: 3, Rho: rho}
}

func TestSweepAnalyticEmptyGrid(t *testing.T) {
	if _, err := SweepAnalytic(analyticBase(60), nil, paperConstraints()); err == nil {
		t.Fatal("empty grid should error")
	}
}

func TestSweepAnalyticPropagatesErrors(t *testing.T) {
	bad := analyticBase(60)
	bad.P = 0
	if _, err := SweepAnalytic(bad, []float64{0.1}, paperConstraints()); err == nil {
		t.Fatal("invalid base config should error")
	}
}

func TestSweepAnalyticGridOrderPreserved(t *testing.T) {
	grid := []float64{0.1, 0.3, 0.7}
	pts, err := SweepAnalytic(analyticBase(60), grid, paperConstraints())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range grid {
		if pts[i].P != p {
			t.Fatalf("point %d has p=%v, want %v", i, pts[i].P, p)
		}
	}
}

func TestAnalyticOptimaMatchPaperShape(t *testing.T) {
	grid := mathx.Range(0.02, 1, 0.02)
	c := paperConstraints()

	optReach := map[float64]Optimum{}
	for _, rho := range []float64{20, 80, 140} {
		pts, err := SweepAnalytic(analyticBase(rho), grid, c)
		if err != nil {
			t.Fatal(err)
		}
		o, ok := MaxReachAtLatency(pts)
		if !ok {
			t.Fatalf("rho %v: no optimum", rho)
		}
		optReach[rho] = o
	}
	// Fig. 4(b): optimal p decreases with density...
	if !(optReach[20].P > optReach[80].P && optReach[80].P >= optReach[140].P) {
		t.Fatalf("optimal p not decreasing: %v", optReach)
	}
	// ...and the achieved reachability stays roughly flat.
	if math.Abs(optReach[20].Value-optReach[140].Value) > 0.12 {
		t.Fatalf("optimal reach not flat: %v vs %v",
			optReach[20].Value, optReach[140].Value)
	}
}

func TestDualityOfLatencyAndReachOptima(t *testing.T) {
	// Fig. 5(b) equals Fig. 4(b): the p minimising latency-to-R* is
	// the p maximising reach-in-L when R* is the optimal reach level.
	grid := mathx.Range(0.02, 1, 0.02)
	rho := 80.0
	pts, err := SweepAnalytic(analyticBase(rho), grid, paperConstraints())
	if err != nil {
		t.Fatal(err)
	}
	reachOpt, _ := MaxReachAtLatency(pts)
	// Re-sweep with the reach constraint set to the achieved optimum.
	c2 := paperConstraints()
	c2.Reach = reachOpt.Value - 1e-9
	pts2, err := SweepAnalytic(analyticBase(rho), grid, c2)
	if err != nil {
		t.Fatal(err)
	}
	latOpt, ok := MinLatency(pts2)
	if !ok {
		t.Fatal("no latency optimum")
	}
	if math.Abs(latOpt.P-reachOpt.P) > 0.1 {
		t.Fatalf("duality broken: latency-optimal p %v vs reach-optimal p %v",
			latOpt.P, reachOpt.P)
	}
	if math.Abs(latOpt.Value-5) > 0.3 {
		t.Fatalf("latency at optimum %v, want ~5 phases", latOpt.Value)
	}
}

func TestEnergyOptimumSmallAndDensityInsensitive(t *testing.T) {
	// Fig. 6(b): energy-optimal p stays in (0, ~0.1] across densities.
	grid := mathx.Range(0.01, 0.5, 0.01)
	for _, rho := range []float64{40, 100, 140} {
		pts, err := SweepAnalytic(analyticBase(rho), grid, paperConstraints())
		if err != nil {
			t.Fatal(err)
		}
		o, ok := MinBroadcasts(pts)
		if !ok {
			t.Fatalf("rho %v: no energy optimum", rho)
		}
		if o.P > 0.15 {
			t.Fatalf("rho %v: energy-optimal p = %v, want small", rho, o.P)
		}
	}
}

func TestBudgetOptimumNearEnergyOptimum(t *testing.T) {
	// Fig. 7(b) ~ Fig. 6(b): the duals share their optimal p region.
	grid := mathx.Range(0.01, 0.5, 0.01)
	pts, err := SweepAnalytic(analyticBase(100), grid, paperConstraints())
	if err != nil {
		t.Fatal(err)
	}
	energy, ok1 := MinBroadcasts(pts)
	budget, ok2 := MaxReachAtBudget(pts)
	if !ok1 || !ok2 {
		t.Fatal("missing optima")
	}
	if math.Abs(energy.P-budget.P) > 0.1 {
		t.Fatalf("dual optima diverge: energy %v vs budget %v", energy.P, budget.P)
	}
}

func TestInfeasiblePointsAreNaN(t *testing.T) {
	// p = 0.01 at a low density cannot reach 72%.
	pts, err := SweepAnalytic(analyticBase(20), []float64{0.01}, paperConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(pts[0].Latency) || !math.IsNaN(pts[0].Broadcasts) {
		t.Fatalf("expected NaN for infeasible point, got %+v", pts[0])
	}
}

func TestPickSkipsNaN(t *testing.T) {
	pts := []Point{
		{P: 0.1, Latency: math.NaN()},
		{P: 0.2, Latency: 6},
		{P: 0.3, Latency: 4},
	}
	o, ok := MinLatency(pts)
	if !ok || o.P != 0.3 || o.Value != 4 {
		t.Fatalf("MinLatency = %+v, %v", o, ok)
	}
}

func TestPickAllNaN(t *testing.T) {
	pts := []Point{{P: 0.1, Latency: math.NaN()}}
	if _, ok := MinLatency(pts); ok {
		t.Fatal("all-NaN sweep should report no optimum")
	}
}

func TestMeanOrNaNMajorityRule(t *testing.T) {
	if !math.IsNaN(meanOrNaN([]float64{1, math.NaN(), math.NaN(), math.NaN()})) {
		t.Fatal("mostly-infeasible samples should be NaN")
	}
	if got := meanOrNaN([]float64{1, 3, math.NaN()}); got != 2 {
		t.Fatalf("majority-feasible mean = %v, want 2", got)
	}
	if !math.IsNaN(meanOrNaN(nil)) {
		t.Fatal("empty should be NaN")
	}
}

func TestSweepSimSmall(t *testing.T) {
	base := sim.Config{P: 4, S: 3, Rho: 30, Model: channel.CAM, Seed: 77}
	grid := []float64{0.1, 0.5, 1}
	pts, err := SweepSim(base, grid, Constraints{Latency: 5, Reach: 0.5, Budget: 30}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if pt.ReachAtL < 0 || pt.ReachAtL > 1 {
			t.Fatalf("reach@L %v outside [0,1]", pt.ReachAtL)
		}
		if pt.SuccessRate < 0 || pt.SuccessRate > 1 {
			t.Fatalf("success rate %v outside [0,1]", pt.SuccessRate)
		}
	}
}

func TestSweepSimEmptyGrid(t *testing.T) {
	if _, err := SweepSim(sim.Config{P: 4, S: 3, Rho: 30}, nil, Constraints{}, 2, 1); err == nil {
		t.Fatal("empty grid should error")
	}
}

func TestSweepSimPropagatesErrors(t *testing.T) {
	if _, err := SweepSim(sim.Config{P: 0, S: 3}, []float64{0.5}, Constraints{}, 2, 1); err == nil {
		t.Fatal("invalid sim config should error")
	}
}
