package optimize

import "math"

// invPhi is the inverse golden ratio, the contraction factor of the
// golden-section search.
var invPhi = (math.Sqrt(5) - 1) / 2

// RefineMax sharpens a grid optimum of a unimodal objective by
// golden-section search on [lo, hi], evaluating f at most maxEvals
// times (beyond the two initial probes). It returns the refined
// argument and value. The four §4.1 metrics are unimodal in p on the
// regions around their optima, so a coarse sweep plus RefineMax reaches
// fine precision at a fraction of a dense grid's cost.
func RefineMax(f func(float64) float64, lo, hi float64, maxEvals int) (x, v float64) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if maxEvals < 2 {
		maxEvals = 2
	}
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	evals := 2
	for evals < maxEvals && (b-a) > 1e-9 {
		if fc >= fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
		evals++
	}
	if fc >= fd {
		return c, fc
	}
	return d, fd
}

// RefineMin is RefineMax on the negated objective.
func RefineMin(f func(float64) float64, lo, hi float64, maxEvals int) (x, v float64) {
	x, neg := RefineMax(func(t float64) float64 { return -f(t) }, lo, hi, maxEvals)
	return x, -neg
}

// RefineOptimum takes a completed sweep and a located grid optimum and
// refines it over the bracketing grid interval, re-evaluating the
// model through eval (which must return the metric being optimised,
// NaN for infeasible points). maximise selects the direction.
func RefineOptimum(pts []Point, opt Optimum, eval func(p float64) float64, maximise bool, maxEvals int) Optimum {
	if len(pts) < 2 {
		return opt
	}
	// Find the bracketing neighbours of the grid optimum.
	idx := -1
	for i, pt := range pts {
		//lint:ignore floateq opt.P is a verbatim copy of one pts[i].P; this recovers that point's index by identity
		if pt.P == opt.P {
			idx = i
			break
		}
	}
	if idx < 0 {
		return opt
	}
	lo, hi := opt.P, opt.P
	if idx > 0 {
		lo = pts[idx-1].P
	}
	if idx < len(pts)-1 {
		hi = pts[idx+1].P
	}
	safe := func(p float64) float64 {
		v := eval(p)
		if math.IsNaN(v) {
			if maximise {
				return math.Inf(-1)
			}
			return math.Inf(1)
		}
		return v
	}
	var x, v float64
	if maximise {
		x, v = RefineMax(safe, lo, hi, maxEvals)
	} else {
		x, v = RefineMin(safe, lo, hi, maxEvals)
	}
	if math.IsInf(v, 0) {
		return opt
	}
	better := (maximise && v > opt.Value) || (!maximise && v < opt.Value)
	if !better {
		return opt
	}
	return Optimum{P: x, Value: v}
}
