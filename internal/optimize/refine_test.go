package optimize

import (
	"math"
	"testing"

	"sensornet/internal/analytic"
)

func TestRefineMaxQuadratic(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }
	x, v := RefineMax(f, 0, 1, 60)
	if math.Abs(x-0.3) > 1e-6 {
		t.Fatalf("argmax = %v, want 0.3", x)
	}
	if v > 0 || v < -1e-10 {
		t.Fatalf("max value = %v, want ~0", v)
	}
}

func TestRefineMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 0.7) * (x - 0.7) }
	x, v := RefineMin(f, 0, 1, 60)
	if math.Abs(x-0.7) > 1e-6 {
		t.Fatalf("argmin = %v, want 0.7", x)
	}
	if v < 0 || v > 1e-10 {
		t.Fatalf("min value = %v, want ~0", v)
	}
}

func TestRefineMaxReversedBounds(t *testing.T) {
	f := func(x float64) float64 { return -x * x }
	x, _ := RefineMax(f, 1, -1, 60)
	if math.Abs(x) > 1e-4 {
		t.Fatalf("argmax with reversed bounds = %v, want 0", x)
	}
}

func TestRefineMaxBudgetRespected(t *testing.T) {
	calls := 0
	f := func(x float64) float64 { calls++; return -x * x }
	RefineMax(f, 0, 1, 10)
	if calls > 10 {
		t.Fatalf("used %d evaluations, cap was 10", calls)
	}
}

func TestRefineOptimumSharpensGridResult(t *testing.T) {
	// Coarse sweep of the analytic reachability at rho=100, then
	// refinement: the refined value must be at least the grid value
	// and the refined p must stay within the bracketing interval.
	cfg := analytic.Config{P: 5, S: 3, Rho: 100}
	c := Constraints{Latency: 5, Reach: 0.72, Budget: 35}
	grid := []float64{0.02, 0.06, 0.1, 0.14, 0.2, 0.3, 0.5, 1}
	pts, err := SweepAnalytic(cfg, grid, c)
	if err != nil {
		t.Fatal(err)
	}
	gridOpt, ok := MaxReachAtLatency(pts)
	if !ok {
		t.Fatal("no grid optimum")
	}
	eval := func(p float64) float64 {
		cc := cfg
		cc.Prob = p
		res, err := analytic.Run(cc)
		if err != nil {
			return math.NaN()
		}
		return res.Timeline.ReachabilityAtPhase(c.Latency)
	}
	refined := RefineOptimum(pts, gridOpt, eval, true, 20)
	if refined.Value < gridOpt.Value {
		t.Fatalf("refinement regressed: %v < %v", refined.Value, gridOpt.Value)
	}
	if refined.P < 0.02 || refined.P > 1 {
		t.Fatalf("refined p %v escaped the grid", refined.P)
	}
}

func TestRefineOptimumDegenerateCases(t *testing.T) {
	eval := func(p float64) float64 { return p }
	if got := RefineOptimum(nil, Optimum{P: 0.5, Value: 0.5}, eval, true, 10); got.P != 0.5 {
		t.Fatal("empty sweep should return the input optimum")
	}
	pts := []Point{{P: 0.1}, {P: 0.2}}
	if got := RefineOptimum(pts, Optimum{P: 0.9, Value: 1}, eval, true, 10); got.P != 0.9 {
		t.Fatal("optimum not on the grid should be returned unchanged")
	}
}

func TestRefineOptimumAllInfeasible(t *testing.T) {
	pts := []Point{{P: 0.1}, {P: 0.2}, {P: 0.3}}
	eval := func(p float64) float64 { return math.NaN() }
	got := RefineOptimum(pts, Optimum{P: 0.2, Value: 5}, eval, false, 10)
	if got.P != 0.2 || got.Value != 5 {
		t.Fatalf("all-NaN refinement should keep the grid optimum, got %+v", got)
	}
}

func TestRefineOptimumMinimise(t *testing.T) {
	pts := []Point{{P: 0.1}, {P: 0.5}, {P: 0.9}}
	eval := func(p float64) float64 { return (p - 0.45) * (p - 0.45) }
	got := RefineOptimum(pts, Optimum{P: 0.5, Value: eval(0.5)}, eval, false, 40)
	if math.Abs(got.P-0.45) > 1e-4 {
		t.Fatalf("refined argmin %v, want 0.45", got.P)
	}
}
