package optimize

import "math"

// SchemeMetrics summarises one broadcast scheme's behaviour at a fixed
// (channel model, density) cell: the comparison unit of the shootout
// campaign. Unlike Point, which sweeps one protocol over a probability
// grid, SchemeMetrics compares distinct suppression schemes head to
// head.
type SchemeMetrics struct {
	// Coverage is terminal reachability; ReachAtL the reachability
	// within the latency constraint.
	Coverage float64
	ReachAtL float64
	// Broadcasts is the mean transmission count (the energy proxy).
	Broadcasts float64
	// SuccessRate is the mean per-transmission neighbour decode
	// fraction.
	SuccessRate float64
}

// Efficiency is coverage bought per broadcast — the reach/energy
// trade-off in one number. Zero-broadcast cells (a scheme that never
// transmits) score zero rather than Inf: covering nobody cheaply is
// not efficient.
func (m SchemeMetrics) Efficiency() float64 {
	if m.Broadcasts <= 0 || math.IsNaN(m.Coverage) {
		return 0
	}
	return m.Coverage / m.Broadcasts
}

// SchemeSelector is a named objective over competing schemes: the
// registry entry behind the shootout's "best scheme" columns.
type SchemeSelector struct {
	// Name addresses the selector ("coverage", "reach", "energy",
	// "efficiency").
	Name string
	// Description states the objective.
	Description string
	// Better reports whether a strictly beats b under the objective.
	// Ties are NOT better: callers iterating in scheme order keep the
	// first of tied schemes, making the winner deterministic.
	Better func(a, b SchemeMetrics) bool
}

// SchemeSelectors lists the shootout objectives addressable by name.
func SchemeSelectors() []SchemeSelector {
	return []SchemeSelector{
		{"coverage", "maximise terminal reachability",
			func(a, b SchemeMetrics) bool { return a.Coverage > b.Coverage }},
		{"reach", "maximise reachability within the latency budget",
			func(a, b SchemeMetrics) bool { return a.ReachAtL > b.ReachAtL }},
		{"energy", "minimise broadcasts (ignoring what they bought)",
			func(a, b SchemeMetrics) bool { return a.Broadcasts < b.Broadcasts }},
		{"efficiency", "maximise coverage per broadcast",
			func(a, b SchemeMetrics) bool { return a.Efficiency() > b.Efficiency() }},
	}
}

// SchemeSelectorByName resolves an objective name against the registry.
func SchemeSelectorByName(name string) (SchemeSelector, bool) {
	for _, s := range SchemeSelectors() {
		if s.Name == name {
			return s, true
		}
	}
	return SchemeSelector{}, false
}

// BestScheme returns the index of the winning entry under the
// selector, first-wins on ties. It returns -1 for an empty slice.
func BestScheme(sel SchemeSelector, ms []SchemeMetrics) int {
	best := -1
	for i, m := range ms {
		if best < 0 || sel.Better(m, ms[best]) {
			best = i
		}
	}
	return best
}
