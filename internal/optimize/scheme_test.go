package optimize

import (
	"math"
	"testing"
)

func TestSchemeSelectorsRegistry(t *testing.T) {
	names := []string{"coverage", "reach", "energy", "efficiency"}
	sels := SchemeSelectors()
	if len(sels) != len(names) {
		t.Fatalf("%d selectors, want %d", len(sels), len(names))
	}
	for i, want := range names {
		if sels[i].Name != want || sels[i].Description == "" || sels[i].Better == nil {
			t.Fatalf("selector %d = %+v, want name %q with description and Better", i, sels[i].Name, want)
		}
		if s, ok := SchemeSelectorByName(want); !ok || s.Name != want {
			t.Fatalf("SchemeSelectorByName(%q) = %v, %v", want, s.Name, ok)
		}
	}
	if _, ok := SchemeSelectorByName("nope"); ok {
		t.Error("SchemeSelectorByName accepted an unknown name")
	}
}

func TestBestSchemeObjectives(t *testing.T) {
	ms := []SchemeMetrics{
		{Coverage: 0.9, ReachAtL: 0.5, Broadcasts: 100, SuccessRate: 0.3}, // flooding-ish
		{Coverage: 0.8, ReachAtL: 0.7, Broadcasts: 20, SuccessRate: 0.6},  // tuned
		{Coverage: 0.8, ReachAtL: 0.7, Broadcasts: 30, SuccessRate: 0.5},  // tied on reach
	}
	for _, tc := range []struct {
		objective string
		want      int
	}{
		{"coverage", 0},
		{"reach", 1}, // first-wins over the index-2 tie
		{"energy", 1},
		{"efficiency", 1}, // 0.8/20 beats 0.9/100 and 0.8/30
	} {
		sel, ok := SchemeSelectorByName(tc.objective)
		if !ok {
			t.Fatalf("missing selector %q", tc.objective)
		}
		if got := BestScheme(sel, ms); got != tc.want {
			t.Errorf("BestScheme(%s) = %d, want %d", tc.objective, got, tc.want)
		}
	}
	if got := BestScheme(SchemeSelectors()[0], nil); got != -1 {
		t.Errorf("BestScheme on empty slice = %d, want -1", got)
	}
}

func TestSchemeEfficiencyGuards(t *testing.T) {
	if e := (SchemeMetrics{Coverage: 0.5, Broadcasts: 0}).Efficiency(); e != 0 {
		t.Errorf("zero-broadcast efficiency = %g, want 0 (not Inf)", e)
	}
	if e := (SchemeMetrics{Coverage: math.NaN(), Broadcasts: 10}).Efficiency(); e != 0 {
		t.Errorf("NaN-coverage efficiency = %g, want 0", e)
	}
	if e := (SchemeMetrics{Coverage: 0.8, Broadcasts: 20}).Efficiency(); math.Abs(e-0.04) > 1e-12 {
		t.Errorf("efficiency = %g, want 0.04", e)
	}
}
