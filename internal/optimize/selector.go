package optimize

// Selector is a named optimisation objective over a swept probability
// row: the registry entry behind the serving mode's metric= query
// parameter.
type Selector struct {
	// Name addresses the selector ("reach", "latency", "energy",
	// "budget").
	Name string
	// Description states the objective in the paper's terms.
	Description string
	// Pick locates the optimal grid point; false when no point is
	// feasible under the constraints the surface was swept with.
	Pick func([]Point) (Optimum, bool)
}

// Selectors lists the four paper metrics addressable by name, in the
// figure order of §4.2.
func Selectors() []Selector {
	return []Selector{
		{"reach", "maximise reachability within the latency budget (metric 1, Fig. 4/8)", MaxReachAtLatency},
		{"latency", "minimise phases to the reachability target (metric 3, Fig. 5/9)", MinLatency},
		{"energy", "minimise broadcasts to the reachability target (metric 4, Fig. 6/10)", MinBroadcasts},
		{"budget", "maximise reachability within the broadcast budget (metric 5, Fig. 7/11)", MaxReachAtBudget},
	}
}

// SelectorByName resolves a metric name against the registry.
func SelectorByName(name string) (Selector, bool) {
	for _, s := range Selectors() {
		if s.Name == name {
			return s, true
		}
	}
	return Selector{}, false
}
