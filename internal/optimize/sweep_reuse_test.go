package optimize

import (
	"math"
	"testing"

	"sensornet/internal/metrics"
	"sensornet/internal/protocol"
	"sensornet/internal/sim"
)

// TestSweepSimMatchesExplicitDeployments pins SweepSim's common-random-
// numbers contract: the sweep must equal running sim.Run by hand with
// replication i's seed and the deployment ReplicationDeployments hands
// out for it, shared across every grid probability. Exact equality —
// the sweep is the same runs in the same aggregation order, so every
// derived metric matches bit for bit (NaN positions included).
func TestSweepSimMatchesExplicitDeployments(t *testing.T) {
	base := sim.Config{P: 4, S: 3, Rho: 40, Seed: 900}
	grid := []float64{0.2, 0.5, 1}
	cons := Constraints{Latency: 5, Reach: 0.63, Budget: 80}
	const runs, workers = 4, 2

	got, err := SweepSim(base, grid, cons, runs, workers)
	if err != nil {
		t.Fatal(err)
	}

	deps, err := sim.ReplicationDeployments(base, runs)
	if err != nil {
		t.Fatal(err)
	}
	for gi, p := range grid {
		results := make([]*sim.Result, runs)
		for i := 0; i < runs; i++ {
			cfg := base
			cfg.Protocol = protocol.Probability{P: p}
			cfg.Seed = base.Seed + int64(i)
			cfg.Deployment = deps[i]
			r, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = r
		}
		agg := &sim.Aggregate{Runs: results}
		want := Point{P: p}
		want.ReachAtL = metrics.Summarize(agg.ReachabilityAtPhase(cons.Latency)).Mean
		want.Latency = meanOrNaN(agg.LatencyToReach(cons.Reach))
		want.Broadcasts = meanOrNaN(agg.BroadcastsToReach(cons.Reach))
		want.ReachAtBudget = metrics.Summarize(agg.ReachabilityAtBudget(cons.Budget)).Mean
		want.SuccessRate = metrics.Summarize(agg.SuccessRates()).Mean
		finals := make([]float64, len(agg.Runs))
		for i, r := range agg.Runs {
			finals[i] = r.Timeline.FinalReachability()
		}
		want.Final = metrics.Summarize(finals).Mean

		for name, pair := range map[string][2]float64{
			"P":             {got[gi].P, want.P},
			"ReachAtL":      {got[gi].ReachAtL, want.ReachAtL},
			"Latency":       {got[gi].Latency, want.Latency},
			"Broadcasts":    {got[gi].Broadcasts, want.Broadcasts},
			"ReachAtBudget": {got[gi].ReachAtBudget, want.ReachAtBudget},
			"SuccessRate":   {got[gi].SuccessRate, want.SuccessRate},
			"Final":         {got[gi].Final, want.Final},
		} {
			sweep, manual := pair[0], pair[1]
			if math.IsNaN(sweep) && math.IsNaN(manual) {
				continue
			}
			if sweep != manual {
				t.Errorf("p=%v %s: sweep %v, manual %v", p, name, sweep, manual)
			}
		}
	}
}

// TestSweepSimHonoursExplicitDeployment checks the opt-out: a sweep
// whose base pins Config.Deployment must use that deployment for every
// replication, matching plain RunMany on the same config.
func TestSweepSimHonoursExplicitDeployment(t *testing.T) {
	base := sim.Config{P: 4, S: 3, Rho: 40, Seed: 901}
	deps, err := sim.ReplicationDeployments(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	base.Deployment = deps[0]
	cons := Constraints{Latency: 5, Reach: 0.63, Budget: 80}

	got, err := SweepSim(base, []float64{0.4}, cons, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Protocol = protocol.Probability{P: 0.4}
	agg, err := sim.RunMany(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.Summarize(agg.ReachabilityAtPhase(cons.Latency)).Mean
	if got[0].ReachAtL != want {
		t.Fatalf("ReachAtL: sweep %v, RunMany %v", got[0].ReachAtL, want)
	}
}
