package protocol

import (
	"fmt"
	"math/rand"
)

// DegreeAdaptive is the density-free tuning the paper's Fig. 12
// discussion points towards, using only Assumption-3 local knowledge:
// each node rebroadcasts with probability min(1, C/degree). Because the
// latency-optimal global probability scales like 1/ρ (Fig. 4b), a
// single constant C makes the scheme near-optimal at every density —
// and heterogeneous fields tune themselves patch by patch.
type DegreeAdaptive struct {
	// C is the target expected number of rebroadcasters per
	// neighbourhood. The analytic optimum sits around p*·ρ ≈ 12-13 for
	// the paper's configuration (see analytic.OptimalProbabilityLaw).
	C float64
}

// Name implements Protocol.
func (d DegreeAdaptive) Name() string { return fmt.Sprintf("degree(%.3g)", d.C) }

// NewState implements Protocol.
func (d DegreeAdaptive) NewState(int) State { return degreeState{c: d.C} }

type degreeState struct{ c float64 }

func (s degreeState) OnFirstReceive(_, _ int32, _ float64, ctx Ctx, rng *rand.Rand) bool {
	if ctx.Degree <= 0 {
		return false
	}
	p := s.c / float64(ctx.Degree)
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

func (degreeState) OnDuplicate(int32, int32, float64, Ctx) bool { return true }

// Gossip is the two-phase GOSSIP(p, k) scheme of Haas et al.: flood
// unconditionally for the first K phases (so the broadcast survives its
// fragile early hops), then fall back to probability P.
type Gossip struct {
	// P is the steady-state broadcast probability.
	P float64
	// K is the number of initial flooding phases.
	K int32
}

// Name implements Protocol.
func (g Gossip) Name() string { return fmt.Sprintf("gossip(%.3g,%d)", g.P, g.K) }

// NewState implements Protocol.
func (g Gossip) NewState(int) State { return gossipState{p: g.P, k: g.K} }

type gossipState struct {
	p float64
	k int32
}

func (s gossipState) OnFirstReceive(_, _ int32, _ float64, ctx Ctx, rng *rand.Rand) bool {
	if ctx.Phase <= s.k {
		return true
	}
	return rng.Float64() < s.p
}

func (gossipState) OnDuplicate(int32, int32, float64, Ctx) bool { return true }
