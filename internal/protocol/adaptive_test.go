package protocol

import (
	"math/rand"
	"testing"
)

func TestDegreeAdaptiveIsolatedNodeSilent(t *testing.T) {
	s := DegreeAdaptive{C: 12}.NewState(1)
	rng := rand.New(rand.NewSource(1))
	if s.OnFirstReceive(0, 0, 1, Ctx{Degree: 0}, rng) {
		t.Fatal("zero-degree node must stay silent")
	}
}

func TestDegreeAdaptiveLowDegreeAlwaysBroadcasts(t *testing.T) {
	s := DegreeAdaptive{C: 12}.NewState(1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if !s.OnFirstReceive(0, 0, 1, Ctx{Degree: 5}, rng) {
			t.Fatal("degree below C must always broadcast")
		}
	}
}

func TestDegreeAdaptiveEmpiricalRate(t *testing.T) {
	s := DegreeAdaptive{C: 12}.NewState(1)
	rng := rand.New(rand.NewSource(3))
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.OnFirstReceive(0, 0, 1, Ctx{Degree: 120}, rng) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.09 || rate > 0.11 {
		t.Fatalf("empirical rate %v, want ~0.1 (= 12/120)", rate)
	}
}

func TestDegreeAdaptiveNeverCancels(t *testing.T) {
	s := DegreeAdaptive{C: 12}.NewState(1)
	if !s.OnDuplicate(0, 0, 1, Ctx{}) {
		t.Fatal("degree-adaptive keeps pending broadcasts")
	}
}

func TestGossipFloodsEarlyPhases(t *testing.T) {
	s := Gossip{P: 0, K: 2}.NewState(1)
	rng := rand.New(rand.NewSource(4))
	for phase := int32(1); phase <= 2; phase++ {
		if !s.OnFirstReceive(0, 0, 1, Ctx{Phase: phase}, rng) {
			t.Fatalf("phase %d within K must flood", phase)
		}
	}
	for i := 0; i < 50; i++ {
		if s.OnFirstReceive(0, 0, 1, Ctx{Phase: 3}, rng) {
			t.Fatal("p=0 beyond K must never broadcast")
		}
	}
}

func TestGossipSteadyStateRate(t *testing.T) {
	s := Gossip{P: 0.4, K: 1}.NewState(1)
	rng := rand.New(rand.NewSource(5))
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.OnFirstReceive(0, 0, 1, Ctx{Phase: 9}, rng) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.39 || rate > 0.41 {
		t.Fatalf("steady-state rate %v, want ~0.4", rate)
	}
}

func TestGossipNeverCancels(t *testing.T) {
	s := Gossip{P: 0.5, K: 1}.NewState(1)
	if !s.OnDuplicate(0, 0, 1, Ctx{}) {
		t.Fatal("gossip keeps pending broadcasts")
	}
}

func TestAdaptiveNames(t *testing.T) {
	da := DegreeAdaptive{C: 12}
	if da.Name() != "degree(12)" {
		t.Fatalf("name = %q", da.Name())
	}
	g := Gossip{P: 0.25, K: 2}
	if g.Name() != "gossip(0.25,2)" {
		t.Fatalf("name = %q", g.Name())
	}
}
