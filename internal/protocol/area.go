package protocol

import (
	"fmt"
	"math/rand"

	"sensornet/internal/geom"
)

// Area is the area-based suppression scheme from the broadcast taxonomy
// the paper cites (Williams et al.): a node rebroadcasts only while the
// additional area its transmission would cover — beyond what the
// transmitters it has already heard cover — stays above MinExtra times
// the full disk area π r².
//
// Following the standard single-coverage approximation, the covered
// area is estimated from the closest heard transmitter: a sender at
// distance d already covers the lens of two radius-R disks at distance
// d, so the node's marginal contribution is π R² minus that lens.
type Area struct {
	// MinExtra is the minimal marginal-coverage fraction in [0, 1]
	// that keeps a rebroadcast alive. 0 never suppresses; values near
	// 0.4 suppress nodes that heard a transmitter closer than ~R/2.
	MinExtra float64
	// R is the transmission radius of the deployment.
	R float64
}

// Name implements Protocol.
func (a Area) Name() string { return fmt.Sprintf("area(%.3g)", a.MinExtra) }

// NewState implements Protocol.
func (a Area) NewState(n int) State {
	return &areaState{minExtra: a.MinExtra, r: a.R, minDist: make([]float64, n)}
}

type areaState struct {
	minExtra float64
	r        float64
	minDist  []float64 // closest heard transmitter; 0 = none yet
}

// extraFraction returns the marginal coverage fraction for a node whose
// closest heard transmitter is at distance d.
func (s *areaState) extraFraction(d float64) float64 {
	full := geom.DiskArea(s.r)
	//lint:ignore floateq a zero-radius disk has exactly zero area; this guards the degenerate config, not a rounding outcome
	if full == 0 {
		return 0
	}
	covered := geom.LensArea(s.r, s.r, d)
	return (full - covered) / full
}

func (s *areaState) observe(node int32, dist float64) float64 {
	//lint:ignore floateq exact zero is the "no transmitter heard yet" sentinel (real distances are strictly positive)
	if s.minDist[node] == 0 || dist < s.minDist[node] {
		s.minDist[node] = dist
	}
	return s.minDist[node]
}

func (s *areaState) OnFirstReceive(node, _ int32, dist float64, _ Ctx, _ *rand.Rand) bool {
	return s.extraFraction(s.observe(node, dist)) >= s.minExtra
}

func (s *areaState) OnDuplicate(node, _ int32, dist float64, _ Ctx) bool {
	return s.extraFraction(s.observe(node, dist)) >= s.minExtra
}
