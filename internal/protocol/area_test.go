package protocol

import (
	"math"
	"math/rand"
	"testing"
)

func TestAreaZeroThresholdNeverSuppresses(t *testing.T) {
	s := Area{MinExtra: 0, R: 1}.NewState(2)
	rng := rand.New(rand.NewSource(1))
	if !s.OnFirstReceive(0, 1, 0.01, Ctx{}, rng) {
		t.Fatal("threshold 0 must never suppress")
	}
	if !s.OnDuplicate(0, 1, 0.0, Ctx{}) {
		t.Fatal("threshold 0 must keep pending broadcasts")
	}
}

func TestAreaCoincidentTransmitterSuppresses(t *testing.T) {
	// A transmitter at distance ~0 covers the whole disk: marginal
	// coverage ~0.
	s := Area{MinExtra: 0.05, R: 1}.NewState(1)
	rng := rand.New(rand.NewSource(2))
	if s.OnFirstReceive(0, 0, 1e-9, Ctx{}, rng) {
		t.Fatal("coincident transmitter should suppress")
	}
}

func TestAreaDistantTransmitterKeeps(t *testing.T) {
	// At distance R, the lens covers ~39% of the disk: marginal ~0.61.
	s := Area{MinExtra: 0.5, R: 1}.NewState(1)
	rng := rand.New(rand.NewSource(3))
	if !s.OnFirstReceive(0, 0, 1.0, Ctx{}, rng) {
		t.Fatal("edge-of-range transmitter should not suppress at 0.5")
	}
}

func TestAreaExtraFractionMonotone(t *testing.T) {
	s := &areaState{minExtra: 0, r: 1, minDist: make([]float64, 1)}
	prev := -1.0
	for d := 0.0; d <= 1.0; d += 0.05 {
		f := s.extraFraction(d)
		if f < prev {
			t.Fatalf("marginal coverage not monotone at %v: %v < %v", d, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v outside [0,1]", f)
		}
		prev = f
	}
}

func TestAreaExtraFractionKnownValue(t *testing.T) {
	// Two unit disks at distance 1: lens = 2π/3 - √3/2, so the
	// marginal fraction is 1 - lens/π ≈ 0.609.
	s := &areaState{r: 1, minDist: make([]float64, 1)}
	want := 1 - (2*math.Pi/3-math.Sqrt(3)/2)/math.Pi
	if got := s.extraFraction(1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("extraFraction(1) = %v, want %v", got, want)
	}
}

func TestAreaTracksClosestTransmitter(t *testing.T) {
	s := Area{MinExtra: 0.5, R: 1}.NewState(1)
	rng := rand.New(rand.NewSource(4))
	if !s.OnFirstReceive(0, 0, 0.95, Ctx{}, rng) {
		t.Fatal("first distant reception should keep")
	}
	// A closer duplicate drags the marginal coverage down for good.
	if s.OnDuplicate(0, 0, 0.1, Ctx{}) {
		t.Fatal("close duplicate should suppress")
	}
	// A later distant duplicate must not resurrect the broadcast:
	// the closest-heard distance is sticky.
	if s.OnDuplicate(0, 0, 0.99, Ctx{}) {
		t.Fatal("suppression must be sticky once a close transmitter was heard")
	}
}

func TestAreaDegenerateRadius(t *testing.T) {
	s := Area{MinExtra: 0.1, R: 0}.NewState(1)
	rng := rand.New(rand.NewSource(5))
	if s.OnFirstReceive(0, 0, 0.5, Ctx{}, rng) {
		t.Fatal("zero radius should always suppress (no coverage to add)")
	}
}

func TestAreaName(t *testing.T) {
	a := Area{MinExtra: 0.4}
	if a.Name() != "area(0.4)" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestAreaStateIsPerNode(t *testing.T) {
	s := Area{MinExtra: 0.5, R: 1}.NewState(3)
	rng := rand.New(rand.NewSource(6))
	// Node 0 hears a very close transmitter; node 2 a distant one.
	if s.OnFirstReceive(0, 1, 0.05, Ctx{}, rng) {
		t.Fatal("node 0 should be suppressed")
	}
	if !s.OnFirstReceive(2, 1, 0.95, Ctx{}, rng) {
		t.Fatal("node 2 must be unaffected by node 0's observations")
	}
	st := s.(*areaState)
	if st.minDist[1] != 0 {
		t.Fatal("untouched node gained state")
	}
}
