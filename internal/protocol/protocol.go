// Package protocol implements the broadcast schemes the paper studies
// and the suppression schemes it lists as future work.
//
// All schemes share the slotted-jitter execution of §4.2: a node that
// first receives the packet decides whether to rebroadcast, and if so
// transmits once in a uniformly random slot of its next time phase.
// Duplicates heard before that transmission may cancel it (the
// counter-based and distance-based schemes of Williams et al., which
// the paper cites as the other members of the broadcast taxonomy).
package protocol

import (
	"fmt"
	"math/rand"
)

// Protocol is a broadcast scheme factory. Implementations must be
// immutable; per-run mutable state lives in the State they create.
type Protocol interface {
	// Name identifies the scheme in tables and logs.
	Name() string
	// NewState allocates per-run state for a network of n nodes.
	NewState(n int) State
}

// Ctx carries the local information a scheme may consult when making a
// decision: the current time phase and the deciding node's neighbour
// count. Both are available to a real node (phases by counting since
// its first reception, degree from Assumption 3's neighbour knowledge).
type Ctx struct {
	// Phase is the time phase in which the triggering packet arrived.
	Phase int32
	// Degree is the deciding node's neighbour count.
	Degree int
}

// State is the per-run decision logic of a scheme. The simulator calls
// OnFirstReceive exactly once per node (when it first decodes the
// packet) and OnDuplicate for every further packet the node decodes
// while its own transmission is still pending.
type State interface {
	// OnFirstReceive reports whether the node should schedule a
	// broadcast in its next phase. dist is the distance to the
	// transmitter it decoded.
	OnFirstReceive(node, from int32, dist float64, ctx Ctx, rng *rand.Rand) bool
	// OnDuplicate reports whether a pending broadcast should be kept
	// after hearing one more duplicate.
	OnDuplicate(node, from int32, dist float64, ctx Ctx) bool
}

// Flooding is simple flooding: every node rebroadcasts exactly once
// after its first reception (PB_CAM with p = 1).
type Flooding struct{}

// Name implements Protocol.
func (Flooding) Name() string { return "flooding" }

// NewState implements Protocol.
func (Flooding) NewState(int) State { return floodingState{} }

type floodingState struct{}

func (floodingState) OnFirstReceive(int32, int32, float64, Ctx, *rand.Rand) bool { return true }
func (floodingState) OnDuplicate(int32, int32, float64, Ctx) bool                { return true }

// Probability is the probability-based scheme PB_CAM: after first
// reception a node rebroadcasts with probability P, otherwise stays
// silent forever.
type Probability struct {
	// P is the broadcast probability in [0, 1].
	P float64
}

// Name implements Protocol.
func (p Probability) Name() string { return fmt.Sprintf("pb(%.3g)", p.P) }

// NewState implements Protocol.
func (p Probability) NewState(int) State { return probabilityState{p: p.P} }

type probabilityState struct{ p float64 }

func (s probabilityState) OnFirstReceive(_, _ int32, _ float64, _ Ctx, rng *rand.Rand) bool {
	return rng.Float64() < s.p
}
func (probabilityState) OnDuplicate(int32, int32, float64, Ctx) bool { return true }

// Counter is the counter-based suppression scheme: a pending broadcast
// is cancelled once the node has heard the packet Threshold times in
// total (first reception included).
type Counter struct {
	// Threshold is the number of receptions that suppresses the
	// rebroadcast; must be >= 2 to ever transmit.
	Threshold int
}

// Name implements Protocol.
func (c Counter) Name() string { return fmt.Sprintf("counter(%d)", c.Threshold) }

// NewState implements Protocol.
func (c Counter) NewState(n int) State {
	return &counterState{threshold: c.Threshold, heard: make([]int32, n)}
}

type counterState struct {
	threshold int
	heard     []int32
}

func (s *counterState) OnFirstReceive(node, _ int32, _ float64, _ Ctx, _ *rand.Rand) bool {
	s.heard[node] = 1
	return s.threshold >= 2
}

func (s *counterState) OnDuplicate(node, _ int32, _ float64, _ Ctx) bool {
	s.heard[node]++
	return int(s.heard[node]) < s.threshold
}

// Distance is the distance-based suppression scheme: a broadcast is
// cancelled when any heard transmitter is closer than MinDist (the
// additional coverage a nearby rebroadcast adds is negligible).
type Distance struct {
	// MinDist is the suppression distance in the deployment's length
	// units (typically a fraction of the transmission radius).
	MinDist float64
}

// Name implements Protocol.
func (d Distance) Name() string { return fmt.Sprintf("distance(%.3g)", d.MinDist) }

// NewState implements Protocol.
func (d Distance) NewState(int) State { return distanceState{minDist: d.MinDist} }

type distanceState struct{ minDist float64 }

func (s distanceState) OnFirstReceive(_, _ int32, dist float64, _ Ctx, _ *rand.Rand) bool {
	return dist >= s.minDist
}
func (s distanceState) OnDuplicate(_, _ int32, dist float64, _ Ctx) bool {
	return dist >= s.minDist
}
