package protocol

import (
	"math/rand"
	"testing"
)

func TestFloodingAlwaysBroadcasts(t *testing.T) {
	s := Flooding{}.NewState(10)
	rng := rand.New(rand.NewSource(1))
	for i := int32(0); i < 10; i++ {
		if !s.OnFirstReceive(i, 0, 0.5, Ctx{}, rng) {
			t.Fatal("flooding must always rebroadcast")
		}
		if !s.OnDuplicate(i, 0, 0.5, Ctx{}) {
			t.Fatal("flooding never cancels")
		}
	}
}

func TestProbabilityZeroAndOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s0 := Probability{P: 0}.NewState(1)
	s1 := Probability{P: 1}.NewState(1)
	for i := 0; i < 100; i++ {
		if s0.OnFirstReceive(0, 0, 1, Ctx{}, rng) {
			t.Fatal("p=0 must never broadcast")
		}
		if !s1.OnFirstReceive(0, 0, 1, Ctx{}, rng) {
			t.Fatal("p=1 must always broadcast")
		}
	}
}

func TestProbabilityEmpiricalRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Probability{P: 0.3}.NewState(1)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.OnFirstReceive(0, 0, 1, Ctx{}, rng) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.29 || rate > 0.31 {
		t.Fatalf("empirical rate %v, want ~0.3", rate)
	}
}

func TestProbabilityNeverCancels(t *testing.T) {
	s := Probability{P: 0.5}.NewState(1)
	if !s.OnDuplicate(0, 0, 1, Ctx{}) {
		t.Fatal("PB keeps pending broadcasts regardless of duplicates")
	}
}

func TestCounterSuppressesAtThreshold(t *testing.T) {
	s := Counter{Threshold: 3}.NewState(4)
	rng := rand.New(rand.NewSource(4))
	if !s.OnFirstReceive(2, 0, 1, Ctx{}, rng) {
		t.Fatal("first reception should schedule a broadcast")
	}
	if !s.OnDuplicate(2, 1, 1, Ctx{}) { // heard 2 of 3
		t.Fatal("below threshold should keep the broadcast")
	}
	if s.OnDuplicate(2, 3, 1, Ctx{}) { // heard 3 of 3
		t.Fatal("reaching the threshold should cancel")
	}
}

func TestCounterThresholdOneNeverBroadcasts(t *testing.T) {
	s := Counter{Threshold: 1}.NewState(1)
	rng := rand.New(rand.NewSource(5))
	if s.OnFirstReceive(0, 0, 1, Ctx{}, rng) {
		t.Fatal("threshold 1 suppresses immediately")
	}
}

func TestCounterStateIsPerNode(t *testing.T) {
	s := Counter{Threshold: 3}.NewState(3)
	rng := rand.New(rand.NewSource(6))
	s.OnFirstReceive(0, 1, 1, Ctx{}, rng)
	s.OnFirstReceive(1, 0, 1, Ctx{}, rng)
	s.OnDuplicate(0, 2, 1, Ctx{})      // node 0 heard 2
	if s.OnDuplicate(0, 2, 1, Ctx{}) { // node 0 heard 3: cancel
		t.Fatal("node 0 should cancel at its own threshold")
	}
	if !s.OnDuplicate(1, 2, 1, Ctx{}) { // node 1 heard only 2: keep
		t.Fatal("node 1 must be unaffected by node 0's duplicates")
	}
}

func TestDistanceSuppression(t *testing.T) {
	s := Distance{MinDist: 0.4}.NewState(1)
	rng := rand.New(rand.NewSource(7))
	if s.OnFirstReceive(0, 0, 0.2, Ctx{}, rng) {
		t.Fatal("close transmitter should suppress")
	}
	if !s.OnFirstReceive(0, 0, 0.9, Ctx{}, rng) {
		t.Fatal("distant transmitter should not suppress")
	}
	if s.OnDuplicate(0, 0, 0.1, Ctx{}) {
		t.Fatal("close duplicate should cancel")
	}
	if !s.OnDuplicate(0, 0, 0.8, Ctx{}) {
		t.Fatal("distant duplicate should keep")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		p    Protocol
		want string
	}{
		{Flooding{}, "flooding"},
		{Probability{P: 0.25}, "pb(0.25)"},
		{Counter{Threshold: 4}, "counter(4)"},
		{Distance{MinDist: 0.5}, "distance(0.5)"},
	}
	for _, c := range cases {
		if got := c.p.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
