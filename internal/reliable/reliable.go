// Package reliable implements the two CFM realisations the paper
// sketches in §3.2.1 — acknowledgment-with-retransmission over a
// CSMA-style collision-aware channel, and TDMA slot assignment — and
// measures their actual time and energy costs.
//
// These measurements make the paper's concluding proposal concrete:
// model CFM's per-transmission costs t_f and e_f as functions of node
// density, so that CFM-level algorithm design can account for the real
// price of reliability without exposing collision details.
package reliable

import (
	"errors"
	"math/rand"

	"sensornet/internal/channel"
	"sensornet/internal/deploy"
)

// AckConfig parameterises the ACK/retransmit realisation of one
// reliable local broadcast: the sender transmits the payload, the
// neighbours acknowledge in randomly chosen slots of an ACK window,
// and unacknowledged neighbours trigger retransmission rounds.
type AckConfig struct {
	// Window is the number of ACK slots per round (>= 1).
	Window int
	// Adaptive scales each round's ACK window up to the number of
	// still-unacknowledged neighbours (slotted-ALOHA-style load
	// matching); without it, dense neighbourhoods take astronomically
	// many rounds — which is §3.2.1's point, but rarely what a caller
	// wants to wait for.
	Adaptive bool
	// MaxRounds caps the retransmission rounds (default 200).
	MaxRounds int
	// Seed drives the neighbours' slot choices.
	Seed int64
}

func (c *AckConfig) applyDefaults() {
	if c.MaxRounds == 0 {
		c.MaxRounds = 200
	}
}

// Validate reports whether the configuration is usable.
func (c AckConfig) Validate() error {
	if c.Window < 1 {
		return errors.New("reliable: Window must be >= 1")
	}
	if c.MaxRounds < 0 {
		return errors.New("reliable: MaxRounds must be >= 0")
	}
	return nil
}

// AckResult is the measured cost of one reliable local broadcast under
// the ACK/retransmit scheme.
type AckResult struct {
	// Neighbors is the number of receivers that had to be covered.
	Neighbors int
	// Rounds is the number of data transmissions performed.
	Rounds int
	// Slots is the total time in slots (data slot + ACK window, per
	// round): the empirical t_f.
	Slots int
	// Transmissions counts every packet sent (data + all ACK
	// attempts): the empirical e_f in units of e_a.
	Transmissions int
	// Complete reports whether every neighbour was acknowledged within
	// MaxRounds.
	Complete bool
}

// AckBroadcast performs one reliable broadcast from source to all its
// neighbours over the deployment's CAM channel and returns the measured
// cost. ACKs are unicasts back to the source and collide with each
// other under Assumption 6, which is exactly why this realisation of
// CFM gets expensive in dense neighbourhoods.
func AckBroadcast(dep *deploy.Deployment, source int32, cfg AckConfig) (AckResult, error) {
	if err := cfg.Validate(); err != nil {
		return AckResult{}, err
	}
	cfg.applyDefaults()
	resolver, err := channel.NewResolver(channel.CAM, dep)
	if err != nil {
		return AckResult{}, err
	}
	//lint:ignore seedderive AckConfig.Seed is the caller-provided root seed for this broadcast's contention stream
	rng := rand.New(rand.NewSource(cfg.Seed))

	neighbors := dep.Neighbors[source]
	res := AckResult{Neighbors: len(neighbors)}
	if len(neighbors) == 0 {
		res.Complete = true
		return res, nil
	}

	acked := make(map[int32]bool, len(neighbors))
	for round := 0; round < cfg.MaxRounds; round++ {
		res.Rounds++
		// Data slot: the source transmits alone, so every neighbour
		// decodes (re)transmissions reliably.
		res.Slots++
		res.Transmissions++

		// ACK window: every still-unacknowledged neighbour picks a
		// uniformly random slot and unicasts an ACK to the source.
		window := cfg.Window
		if unacked := len(neighbors) - len(acked); cfg.Adaptive && unacked > window {
			window = unacked
		}
		bySlot := make([][]channel.Unicast, window)
		for _, v := range neighbors {
			if !acked[v] {
				s := rng.Intn(window)
				bySlot[s] = append(bySlot[s], channel.Unicast{From: v, To: source})
				res.Transmissions++
			}
		}
		res.Slots += window
		for _, txs := range bySlot {
			resolver.ResolveSlotUnicast(txs, func(u channel.Unicast) {
				acked[u.From] = true
			}, nil)
		}
		if len(acked) == len(neighbors) {
			res.Complete = true
			return res, nil
		}
	}
	res.Complete = len(acked) == len(neighbors)
	return res, nil
}
