package reliable

import (
	"math/rand"
	"testing"

	"sensornet/internal/deploy"
)

func genDep(t testing.TB, rho float64, sensing bool, seed int64) *deploy.Deployment {
	t.Helper()
	dep, err := deploy.Generate(deploy.Config{P: 3, Rho: rho, WithSensing: sensing},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestAckConfigValidation(t *testing.T) {
	dep := genDep(t, 10, false, 1)
	if _, err := AckBroadcast(dep, 0, AckConfig{Window: 0}); err == nil {
		t.Fatal("window 0 should error")
	}
	if _, err := AckBroadcast(dep, 0, AckConfig{Window: 3, MaxRounds: -1}); err == nil {
		t.Fatal("negative rounds should error")
	}
}

func TestAckBroadcastCompletes(t *testing.T) {
	dep := genDep(t, 20, false, 2)
	res, err := AckBroadcast(dep, 0, AckConfig{Window: 4, Adaptive: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("ack broadcast did not complete: %+v", res)
	}
	if res.Neighbors != dep.Degree(0) {
		t.Fatalf("neighbours %d, want %d", res.Neighbors, dep.Degree(0))
	}
	// Costs are at least one data transmission plus one ACK per
	// neighbour.
	if res.Transmissions < res.Neighbors+1 {
		t.Fatalf("transmissions %d too low for %d neighbours",
			res.Transmissions, res.Neighbors)
	}
	if res.Slots < 1+4 {
		t.Fatalf("slots %d too low", res.Slots)
	}
}

func TestAckBroadcastIsolatedSource(t *testing.T) {
	single, err := deploy.Generate(deploy.Config{P: 1, N: 1},
		rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := AckBroadcast(single, 0, AckConfig{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Transmissions != 0 {
		t.Fatalf("isolated source should trivially complete: %+v", res)
	}
}

func TestAckCostGrowsWithDensity(t *testing.T) {
	// The §3.2.1 claim: acknowledging a broadcast causes significant
	// traffic, and it gets worse with density.
	cost := func(rho float64) float64 {
		total := 0
		for seed := int64(0); seed < 5; seed++ {
			dep := genDep(t, rho, false, seed)
			res, err := AckBroadcast(dep, 0, AckConfig{Window: 4, Adaptive: true, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("rho=%v seed=%d incomplete", rho, seed)
			}
			total += res.Transmissions
		}
		return float64(total) / 5
	}
	lo, hi := cost(10), cost(60)
	if hi <= lo {
		t.Fatalf("ack cost should grow with density: %v vs %v", lo, hi)
	}
	// Superlinear growth: 6x the neighbours should cost clearly more
	// than 6x the transmissions of the sparse case.
	if hi < 4*lo {
		t.Logf("note: growth milder than expected: %v -> %v", lo, hi)
	}
}

func TestAckRoundsBoundedByMaxRounds(t *testing.T) {
	dep := genDep(t, 80, false, 4)
	res, err := AckBroadcast(dep, 0, AckConfig{Window: 1, MaxRounds: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Fatalf("rounds %d exceed cap", res.Rounds)
	}
	// With one ACK slot and ~80 contenders, 3 rounds cannot finish.
	if res.Complete {
		t.Fatal("expected incomplete under a tiny round cap")
	}
}

func TestAckAdaptiveBeatsFixedWindow(t *testing.T) {
	// Load-matched windows finish where a tiny fixed window stalls.
	dep := genDep(t, 50, false, 11)
	fixed, err := AckBroadcast(dep, 0, AckConfig{Window: 2, MaxRounds: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AckBroadcast(dep, 0, AckConfig{Window: 2, Adaptive: true, MaxRounds: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Complete {
		t.Fatal("a 2-slot fixed window should stall at rho=50")
	}
	if !adaptive.Complete {
		t.Fatal("the adaptive window should complete")
	}
}

func TestAckDeterministicForSeed(t *testing.T) {
	dep := genDep(t, 30, false, 5)
	a, _ := AckBroadcast(dep, 0, AckConfig{Window: 4, Seed: 9})
	b, _ := AckBroadcast(dep, 0, AckConfig{Window: 4, Seed: 9})
	if a != b {
		t.Fatalf("same-seed results differ: %+v vs %+v", a, b)
	}
}

func TestBuildTDMARequiresSensing(t *testing.T) {
	dep := genDep(t, 10, false, 6)
	if _, err := BuildTDMA(dep); err == nil {
		t.Fatal("TDMA without sensing lists should error")
	}
	if _, err := BuildTDMA(nil); err == nil {
		t.Fatal("nil deployment should error")
	}
}

func TestBuildTDMAValidSchedule(t *testing.T) {
	dep := genDep(t, 15, true, 7)
	sched, err := BuildTDMA(dep)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Verify(dep) {
		t.Fatal("schedule has two-hop conflicts")
	}
	if sched.FrameLen < 1 {
		t.Fatal("empty frame")
	}
	for _, s := range sched.Slot {
		if s < 0 || s >= sched.FrameLen {
			t.Fatalf("slot %d outside frame %d", s, sched.FrameLen)
		}
	}
}

func TestTDMAFrameGrowsWithDensity(t *testing.T) {
	frame := func(rho float64) int {
		dep := genDep(t, rho, true, 8)
		sched, err := BuildTDMA(dep)
		if err != nil {
			t.Fatal(err)
		}
		return sched.FrameLen
	}
	lo, hi := frame(5), frame(40)
	if hi <= lo {
		t.Fatalf("frame length should grow with density: %d vs %d", lo, hi)
	}
}

func TestTDMAVerifyDetectsConflicts(t *testing.T) {
	dep := genDep(t, 15, true, 9)
	sched, err := BuildTDMA(dep)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the schedule: give two conflicting nodes the same slot.
	if len(dep.Neighbors[0]) == 0 {
		t.Skip("source isolated in this draw")
	}
	v := dep.Neighbors[0][0]
	sched.Slot[v] = sched.Slot[0]
	if sched.Verify(dep) {
		t.Fatal("Verify missed an injected conflict")
	}
	short := TDMASchedule{Slot: sched.Slot[:1], FrameLen: 1}
	if short.Verify(dep) {
		t.Fatal("Verify should reject wrong-length schedules")
	}
}

func TestTDMACostModel(t *testing.T) {
	sched := TDMASchedule{FrameLen: 10}
	tf, ef := sched.Cost()
	if tf != 6 || ef != 1 {
		t.Fatalf("cost = (%v, %v), want (6, 1)", tf, ef)
	}
}

func TestTDMAVsAckTradeoff(t *testing.T) {
	// TDMA pays time (frame wait) but almost no energy; ACK pays both,
	// increasingly with density. At moderate density, TDMA's energy is
	// strictly lower.
	dep := genDep(t, 40, true, 10)
	sched, err := BuildTDMA(dep)
	if err != nil {
		t.Fatal(err)
	}
	_, tdmaEnergy := sched.Cost()
	ack, err := AckBroadcast(dep, 0, AckConfig{Window: 4, Adaptive: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if float64(ack.Transmissions) <= tdmaEnergy {
		t.Fatalf("ACK energy %d should exceed TDMA's %v", ack.Transmissions, tdmaEnergy)
	}
}

func BenchmarkAckBroadcastRho60(b *testing.B) {
	dep := genDep(b, 60, false, 1)
	for i := 0; i < b.N; i++ {
		if _, err := AckBroadcast(dep, 0, AckConfig{Window: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTDMARho60(b *testing.B) {
	dep := genDep(b, 60, true, 1)
	for i := 0; i < b.N; i++ {
		if _, err := BuildTDMA(dep); err != nil {
			b.Fatal(err)
		}
	}
}
