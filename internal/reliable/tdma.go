package reliable

import (
	"errors"

	"sensornet/internal/deploy"
)

// TDMASchedule assigns every node a slot that is unique within two
// transmission radii, so any node's broadcast reaches all its
// neighbours collision-free — the multi-packet-reception realisation
// of CFM the paper mentions (§3.2.1). The price is the frame length:
// a node must wait for its slot in every frame, and frames grow with
// density.
type TDMASchedule struct {
	// Slot[i] is node i's transmission slot within a frame.
	Slot []int
	// FrameLen is the number of slots per frame (the number of colours
	// used by the conflict-graph colouring).
	FrameLen int
}

// BuildTDMA greedily colours the two-hop conflict graph of the
// deployment (nodes within 2R conflict: their concurrent broadcasts
// could meet at a common receiver). The deployment must be generated
// with WithSensing so the (R, 2R] lists exist.
func BuildTDMA(dep *deploy.Deployment) (TDMASchedule, error) {
	if dep == nil {
		return TDMASchedule{}, errors.New("reliable: nil deployment")
	}
	if dep.Sensing == nil {
		return TDMASchedule{}, errors.New("reliable: TDMA needs deploy.Config.WithSensing")
	}
	n := dep.N()
	slot := make([]int, n)
	for i := range slot {
		slot[i] = -1
	}
	frame := 0
	used := make([]bool, 0, 64)
	for u := 0; u < n; u++ {
		used = used[:0]
		for len(used) < frame {
			used = append(used, false)
		}
		mark := func(v int32) {
			if s := slot[v]; s >= 0 {
				for s >= len(used) {
					used = append(used, false)
				}
				used[s] = true
			}
		}
		for _, v := range dep.Neighbors[u] {
			mark(v)
		}
		for _, v := range dep.Sensing[u] {
			mark(v)
		}
		s := 0
		for s < len(used) && used[s] {
			s++
		}
		slot[u] = s
		if s+1 > frame {
			frame = s + 1
		}
	}
	return TDMASchedule{Slot: slot, FrameLen: frame}, nil
}

// Verify checks that no two conflicting nodes (within 2R) share a
// slot. It recomputes conflicts from positions, independently of the
// neighbour lists used during construction.
func (t TDMASchedule) Verify(dep *deploy.Deployment) bool {
	if len(t.Slot) != dep.N() {
		return false
	}
	n := dep.N()
	limit := 4 * dep.R * dep.R
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dep.Pos[i].Dist2(dep.Pos[j]) <= limit && t.Slot[i] == t.Slot[j] {
				return false
			}
		}
	}
	return true
}

// Cost returns the modelled per-reliable-broadcast cost under the
// schedule: expected waiting time of half a frame plus the transmission
// slot (t_f in slots), and exactly one transmission (e_f = 1 e_a).
func (t TDMASchedule) Cost() (timeSlots, energy float64) {
	return float64(t.FrameLen)/2 + 1, 1
}
