// Serving-path benchmarks: the latency tier's per-request cost. All
// three run against a prebuilt snapshot over a warmed in-memory cache,
// so they measure exactly what a steady-state production hit pays —
// mux dispatch, ETag derivation, and one pre-encoded []byte write.
package serve_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/serve"
)

var benchSrv struct {
	once sync.Once
	srv  *serve.Server
	err  error
}

// benchServer builds (once) a warm server over a memory-only cache:
// a computing engine fills the cache, a cache-only engine over the
// same *Cache serves it, and both snapshots are prebuilt.
func benchServer(b *testing.B) *serve.Server {
	b.Helper()
	benchSrv.once.Do(func() {
		pa := experiments.QuickAnalytic()
		pa.Rhos = []float64{40, 100}
		ps := experiments.QuickSim()
		ps.Rhos = []float64{40}
		ps.Grid = []float64{0.05, 0.2, 0.6, 1}
		ps.Runs = 2

		shootRhos := []float64{40}

		cache := engine.NewCache("", experiments.CacheSalt)
		fill := engine.New(engine.Config{Workers: 4, Cache: cache})
		jobs := experiments.SurfaceJobs(pa, false, 4)
		jobs = append(jobs, experiments.SurfaceJobs(ps, true, 4)...)
		shootJobs, err := experiments.ShootoutJobs(ps, shootRhos)
		if err != nil {
			benchSrv.err = err
			return
		}
		jobs = append(jobs, shootJobs...)
		if _, benchSrv.err = fill.Run(b.Context(), jobs); benchSrv.err != nil {
			return
		}
		eng := engine.New(engine.Config{Workers: 4, Cache: cache, CacheOnly: true})
		if benchSrv.srv, benchSrv.err = serve.New(eng, pa, ps,
			serve.WithShootoutRhos(shootRhos)); benchSrv.err != nil {
			return
		}
		benchSrv.err = benchSrv.srv.Warm(b.Context())
	})
	if benchSrv.err != nil {
		b.Fatal(benchSrv.err)
	}
	return benchSrv.srv
}

func benchRequest(b *testing.B, url string) {
	srv := benchServer(b)
	req := httptest.NewRequest("GET", url, nil)
	// One untimed warm-up hit so a -benchtime=1x smoke (b.N == 1)
	// measures the steady state, not first-call lazy initialisation
	// (mux routing caches and the like).
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, req)
	if warm.Code != http.StatusOK {
		b.Fatalf("GET %s: status %d", url, warm.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("GET %s: status %d", url, rec.Code)
		}
	}
}

// BenchmarkServeOptimal is one steady-state tuning query.
func BenchmarkServeOptimal(b *testing.B) {
	benchRequest(b, "/api/optimal?surface=analytic&metric=reach&rho=40")
}

// BenchmarkServeSurfaceRow is one steady-state single-density slice.
func BenchmarkServeSurfaceRow(b *testing.B) {
	benchRequest(b, "/api/surface?surface=analytic&rho=100")
}

// BenchmarkServeSurfaceFull is the full-surface dump — the largest
// pre-encoded body on the fast path.
func BenchmarkServeSurfaceFull(b *testing.B) {
	benchRequest(b, "/api/surface?surface=analytic")
}

// BenchmarkServeShootoutCell is one steady-state shootout cell query
// (single model, single density) off the pre-encoded snapshot.
func BenchmarkServeShootoutCell(b *testing.B) {
	benchRequest(b, "/api/shootout?model=SINR&rho=40")
}
