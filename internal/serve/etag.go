package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"

	"sensornet/internal/experiments"
)

// ETags are content-addressed, like everything else in the serving
// path: a surface's identity is the ordered list of its job
// fingerprints, which already encode every parameter that can change a
// cached result (presets, grids, code-version salt). A response body is
// a pure function of that digest plus the normalised query parameters,
// so the ETag is a strong validator — and because cache entries are
// immutable under their fingerprints, a validator once issued never
// goes stale. That is what lets If-None-Match short-circuit BEFORE any
// cache read: a match proves the client already holds the exact bytes.

// surfaceDigest hashes the ordered fingerprints of the jobs behind a
// preset's surface.
func surfaceDigest(pre experiments.Preset, simulated bool) string {
	h := sha256.New()
	for _, j := range experiments.SurfaceJobs(pre, simulated, 1) {
		h.Write([]byte(j.Fingerprint()))
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// etagOf derives the quoted strong ETag for one response shape from
// the surface digest and the normalised query parameters.
func etagOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// rhoKey normalises a density for ETag derivation, so 60, 60.0 and 6e1
// validate against the same entity.
func rhoKey(rho float64) string { return strconv.FormatFloat(rho, 'g', -1, 64) }

// etagMatch implements the strong If-None-Match comparison: the header
// is a comma-separated list of entity tags, or *. Weak tags (W/...)
// never strong-match.
func etagMatch(header, etag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// notModified answers 304 if the request's If-None-Match matches etag,
// reporting whether the handler is done. Handlers set the ETag header
// themselves on their 200 path, so error responses carry no validator.
func notModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}
