// ETag/If-None-Match tests: surface and optimal responses carry strong
// content-addressed validators, a matching If-None-Match answers 304
// without touching the cache, and validators separate exactly the
// requests whose bodies differ.
package serve_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"sensornet/internal/engine"
	"sensornet/internal/experiments"
	"sensornet/internal/serve"
)

// warmAnalyticOnly computes just the analytic surface jobs into dir —
// enough for the ETag tests, without the slower simulated rows.
func warmAnalyticOnly(t *testing.T, dir string, pa experiments.Preset) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 4,
		Cache: engine.NewCache(dir, experiments.CacheSalt)})
	if _, err := eng.Run(context.Background(), experiments.SurfaceJobs(pa, false, 4)); err != nil {
		t.Fatal(err)
	}
}

// getETag performs one request with an optional If-None-Match header
// and returns the status, ETag, and body size.
func getETag(t *testing.T, srv *serve.Server, url, ifNoneMatch string) (int, string, int) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("ETag"), rec.Body.Len()
}

func TestETagRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated warm-up in -short mode")
	}
	dir := t.TempDir()
	pa, ps := testPresets()
	warmCache(t, dir, pa, ps)
	srv, cache := newServer(t, dir)

	for _, url := range []string{
		"/api/surface?surface=analytic",
		"/api/surface?surface=analytic&rho=40",
		"/api/surface?surface=sim&rho=30",
		"/api/optimal?surface=analytic&metric=reach&rho=40",
		"/api/optimal?surface=sim&metric=energy&rho=80",
	} {
		code, etag, size := getETag(t, srv, url, "")
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		if len(etag) < 4 || etag[0] != '"' || etag[len(etag)-1] != '"' {
			t.Fatalf("GET %s: malformed ETag %q", url, etag)
		}
		if size == 0 {
			t.Fatalf("GET %s: empty body", url)
		}

		misses := cache.Stats().Misses
		code2, etag2, size2 := getETag(t, srv, url, etag)
		if code2 != http.StatusNotModified {
			t.Fatalf("GET %s If-None-Match: status %d, want 304", url, code2)
		}
		if etag2 != etag {
			t.Fatalf("GET %s: 304 ETag %q != %q", url, etag2, etag)
		}
		if size2 != 0 {
			t.Fatalf("GET %s: 304 carried a %d-byte body", url, size2)
		}
		// The validator short-circuits before any cache read: that is the
		// point of content addressing the entity identity.
		if after := cache.Stats().Misses; after != misses {
			t.Fatalf("GET %s: 304 path touched the cache (%d -> %d misses)", url, misses, after)
		}
	}
}

// TestETagSeparatesEntities: validators must differ wherever bodies
// can — across endpoints, densities, and metrics.
func TestETagSeparatesEntities(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, _ := newServer(t, dir)

	urls := []string{
		"/api/surface?surface=analytic",
		"/api/surface?surface=analytic&rho=40",
		"/api/surface?surface=analytic&rho=100",
		"/api/optimal?surface=analytic&metric=reach&rho=40",
		"/api/optimal?surface=analytic&metric=energy&rho=40",
		"/api/optimal?surface=analytic&metric=reach&rho=100",
	}
	seen := map[string]string{}
	for _, url := range urls {
		code, etag, _ := getETag(t, srv, url, "")
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		if prev, dup := seen[etag]; dup {
			t.Fatalf("ETag collision: %s and %s share %q", prev, url, etag)
		}
		seen[etag] = url
	}

	// Normalised densities validate identically: 40 vs 40.0 vs 4e1.
	_, tag1, _ := getETag(t, srv, "/api/surface?surface=analytic&rho=40", "")
	_, tag2, _ := getETag(t, srv, "/api/surface?surface=analytic&rho=40.0", "")
	_, tag3, _ := getETag(t, srv, "/api/surface?surface=analytic&rho=4e1", "")
	if tag1 != tag2 || tag1 != tag3 {
		t.Fatalf("equivalent densities got distinct ETags: %q %q %q", tag1, tag2, tag3)
	}
}

func TestETagMatchSemantics(t *testing.T) {
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	srv, _ := newServer(t, dir)
	const url = "/api/surface?surface=analytic&rho=40"

	_, etag, _ := getETag(t, srv, url, "")

	// * matches anything; lists match if any member matches; a stale or
	// weak validator does not.
	for header, want := range map[string]int{
		"*":                    http.StatusNotModified,
		`"stale", ` + etag:     http.StatusNotModified,
		`"stale"`:              http.StatusOK,
		"W/" + etag:            http.StatusOK,
		`"stale-1", "stale-2"`: http.StatusOK,
	} {
		code, _, _ := getETag(t, srv, url, header)
		if code != want {
			t.Errorf("If-None-Match %q: status %d, want %d", header, code, want)
		}
	}
}

func TestETagAbsentOnErrors(t *testing.T) {
	// A cold cache 503s; no validator may be attached to an error body,
	// or clients would revalidate into a 304 against nothing.
	srv, _ := newServer(t, t.TempDir())
	code, etag, _ := getETag(t, srv, "/api/surface?surface=analytic", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("cold surface: status %d, want 503", code)
	}
	if etag != "" {
		t.Fatalf("503 carried ETag %q", etag)
	}

	// But the validator issued while the cache was warm still 304s on a
	// cold cache: content addressing makes entities immutable, so a
	// client that has the bytes needs no re-read.
	dir := t.TempDir()
	pa, _ := testPresets()
	warmAnalyticOnly(t, dir, pa)
	warmSrv, _ := newServer(t, dir)
	_, warmTag, _ := getETag(t, warmSrv, "/api/surface?surface=analytic", "")

	coldSrv, _ := newServer(t, t.TempDir())
	code, _, _ = getETag(t, coldSrv, "/api/surface?surface=analytic", warmTag)
	if code != http.StatusNotModified {
		t.Fatalf("cold revalidation: status %d, want 304", code)
	}

	// Bad parameters never 304 and never carry a tag.
	code, etag, _ = getETag(t, srv, "/api/surface?surface=nope", "*")
	if code != http.StatusBadRequest || etag != "" {
		t.Fatalf("bad surface: status %d etag %q", code, etag)
	}
	code, etag, _ = getETag(t, srv, "/api/surface?surface=analytic&rho=77", "*")
	if code != http.StatusNotFound || etag != "" {
		t.Fatalf("unknown rho: status %d etag %q", code, etag)
	}
}
